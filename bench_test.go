// Repository-level benchmarks: one per table and figure of the paper's
// evaluation (§7), plus ablations for the design choices DESIGN.md calls
// out. Each benchmark runs the full protocol (serial baseline, 3-worker
// speculative miner, 3-worker fork-join validator) on deterministic
// simulated time and reports the paper's metric — speedup over serial — as
// custom benchmark metrics (miner-x, validator-x).
//
// cmd/blockbench regenerates the same data as formatted tables; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package contractstm_test

import (
	"fmt"
	"testing"

	"contractstm/internal/bench"
	"contractstm/internal/chain"
	"contractstm/internal/engine"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/types"
	"contractstm/internal/validator"
	"contractstm/internal/workload"
)

// benchCfg is the evaluation configuration: 3 workers, like the paper.
func benchCfg() bench.Config { return bench.Config{Workers: 3} }

// sweepSizes returns the block-size sweep, trimmed under -short.
func sweepSizes(b *testing.B) []int {
	if testing.Short() {
		return []int{10, 50, 200}
	}
	return bench.BlockSizes
}

// sweepConflicts returns the conflict sweep, trimmed under -short.
func sweepConflicts(b *testing.B) []int {
	if testing.Short() {
		return []int{0, 50, 100}
	}
	return bench.ConflictPercents
}

func reportPoint(b *testing.B, m bench.Measurement) {
	b.ReportMetric(m.MinerSpeedup, "miner-x")
	b.ReportMetric(m.ValidatorSpeedup, "validator-x")
	b.ReportMetric(float64(m.Retries), "retries")
	b.ReportMetric(float64(m.CriticalPath), "critpath")
}

func measurePoint(b *testing.B, p workload.Params, cfg bench.Config) bench.Measurement {
	b.Helper()
	b.ReportAllocs()
	var m bench.Measurement
	var err error
	for i := 0; i < b.N; i++ {
		m, err = bench.Measure(p, cfg)
		if err != nil {
			b.Fatalf("measure: %v", err)
		}
	}
	return m
}

// BenchmarkFig1 regenerates Figure 1: for each of the four benchmarks, the
// speedup-vs-block-size series (15% conflict) and the speedup-vs-conflict
// series (200 transactions).
func BenchmarkFig1(b *testing.B) {
	for _, kind := range workload.Kinds() {
		kind := kind
		b.Run(kind.String()+"/BlockSize", func(b *testing.B) {
			for _, n := range sweepSizes(b) {
				n := n
				b.Run(fmt.Sprintf("tx=%d", n), func(b *testing.B) {
					m := measurePoint(b, workload.Params{
						Kind: kind, Transactions: n,
						ConflictPercent: bench.SweepConflictFixed, Seed: bench.DefaultSeed,
					}, benchCfg())
					reportPoint(b, m)
				})
			}
		})
		b.Run(kind.String()+"/Conflict", func(b *testing.B) {
			for _, c := range sweepConflicts(b) {
				c := c
				b.Run(fmt.Sprintf("pct=%d", c), func(b *testing.B) {
					m := measurePoint(b, workload.Params{
						Kind: kind, Transactions: bench.SweepTransactionsFixed,
						ConflictPercent: c, Seed: bench.DefaultSeed,
					}, benchCfg())
					reportPoint(b, m)
				})
			}
		})
	}
}

// BenchmarkEngineComparison runs every paper benchmark under every
// execution engine (serial, speculative, OCC) on the block-size sweep —
// the extensible-substrate counterpart of Figure 1. The serial baseline is
// shared, so the per-engine miner-x metrics are directly comparable.
func BenchmarkEngineComparison(b *testing.B) {
	for _, kind := range workload.Kinds() {
		for _, ek := range engine.Kinds() {
			kind, ek := kind, ek
			b.Run(fmt.Sprintf("%v/%v", kind, ek), func(b *testing.B) {
				cfg := benchCfg()
				cfg.Engine = ek
				for _, n := range sweepSizes(b) {
					n := n
					b.Run(fmt.Sprintf("tx=%d", n), func(b *testing.B) {
						m := measurePoint(b, workload.Params{
							Kind: kind, Transactions: n,
							ConflictPercent: bench.SweepConflictFixed, Seed: bench.DefaultSeed,
						}, cfg)
						reportPoint(b, m)
						b.ReportMetric(float64(m.Rounds), "rounds")
					})
				}
			})
		}
	}
}

// BenchmarkTable1 regenerates Table 1: per-benchmark average speedups over
// both sweeps, plus the paper's headline overall averages (paper: miner
// 1.33x, validator 1.69x).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	sizes, conflicts := sweepSizes(b), sweepConflicts(b)
	var table bench.Table1
	for i := 0; i < b.N; i++ {
		var err error
		_, table, err = bench.RunAll(benchCfg(), sizes, conflicts)
		if err != nil {
			b.Fatalf("RunAll: %v", err)
		}
	}
	b.ReportMetric(table.OverallMiner, "miner-x")
	b.ReportMetric(table.OverallValidator, "validator-x")
	for _, row := range table.Rows {
		b.ReportMetric(row.MinerConflictAvg, row.Kind.String()+"-miner-conflict-x")
		b.ReportMetric(row.ValidatorBlockSizeAvg, row.Kind.String()+"-validator-blocksize-x")
	}
}

// BenchmarkAppendixB regenerates Appendix B: absolute running times (mean
// over measured runs) for the serial miner, parallel miner and validator.
// The mean virtual-time per variant is exposed as metrics for one
// representative point per benchmark; cmd/blockbench -appendixb prints the
// full charts.
func BenchmarkAppendixB(b *testing.B) {
	for _, kind := range workload.Kinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			m := measurePoint(b, workload.Params{
				Kind: kind, Transactions: bench.SweepTransactionsFixed,
				ConflictPercent: bench.SweepConflictFixed, Seed: bench.DefaultSeed,
			}, benchCfg())
			b.ReportMetric(m.SerialTime.Mean(), "serial-gastime")
			b.ReportMetric(m.MinerTime.Mean(), "miner-gastime")
			b.ReportMetric(m.ValidatorTime.Mean(), "validator-gastime")
		})
	}
}

// BenchmarkAblationLazyVsEager compares the paper's primary eager design
// (§3) against its sketched lazy alternative on the Mixed workload.
func BenchmarkAblationLazyVsEager(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy stm.Policy
	}{{"Eager", stm.PolicyEager}, {"Lazy", stm.PolicyLazy}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Policy = tc.policy
			m := measurePoint(b, workload.Params{
				Kind: workload.KindMixed, Transactions: bench.SweepTransactionsFixed,
				ConflictPercent: 30, Seed: bench.DefaultSeed,
			}, cfg)
			reportPoint(b, m)
		})
	}
}

// BenchmarkAblationNoIncrementMode shows what Ballot's conflict curve
// would look like without commutative increment locks: vote-count updates
// become exclusive and every vote for one proposal serializes. This is the
// mechanism behind the paper's observation that Ballot "suffers little
// from the extra data conflict".
func BenchmarkAblationNoIncrementMode(b *testing.B) {
	for _, tc := range []struct {
		name        string
		noIncrement bool
	}{{"WithIncrementMode", false}, {"ExclusiveOnly", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var minerX, validatorX float64
			for i := 0; i < b.N; i++ {
				wl, err := workload.Generate(workload.Params{
					Kind: workload.KindBallot, Transactions: bench.SweepTransactionsFixed,
					ConflictPercent: bench.SweepConflictFixed, Seed: bench.DefaultSeed,
				})
				if err != nil {
					b.Fatalf("generate: %v", err)
				}
				wl.World.Store().SetNoIncrement(tc.noIncrement)
				parent := chain.GenesisHeader(types.HashString("bench-genesis"))
				runner := func() runtime.Runner {
					return runtime.NewSimRunnerInterference(bench.DefaultInterferencePerMille)
				}
				serial, err := miner.MineParallel(runner(), wl.World, parent, wl.Calls, miner.Config{Workers: 1})
				if err != nil {
					b.Fatalf("serial: %v", err)
				}
				wl.Reset()
				mres, err := miner.MineParallel(runner(), wl.World, parent, wl.Calls, miner.Config{Workers: 3})
				if err != nil {
					b.Fatalf("mine: %v", err)
				}
				wl.Reset()
				vres, err := validator.Validate(runner(), wl.World, mres.Block, validator.Config{Workers: 3})
				if err != nil {
					b.Fatalf("validate: %v", err)
				}
				minerX = float64(serial.Makespan) / float64(mres.Makespan)
				validatorX = float64(serial.Makespan) / float64(vres.Makespan)
			}
			b.ReportMetric(minerX, "miner-x")
			b.ReportMetric(validatorX, "validator-x")
		})
	}
}

// BenchmarkAblationCoarseLocks reproduces §3's argument against
// region-granularity locking: "a more traditional implementation of
// speculative actions might associate locks with memory regions … such a
// coarse-grained approach could lead to many false conflicts". With
// object-level locks, every Ballot vote conflicts with every other vote
// even though they commute.
func BenchmarkAblationCoarseLocks(b *testing.B) {
	for _, tc := range []struct {
		name   string
		coarse bool
	}{{"AbstractLocks", false}, {"RegionLocks", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var minerX, validatorX float64
			for i := 0; i < b.N; i++ {
				wl, err := workload.Generate(workload.Params{
					Kind: workload.KindBallot, Transactions: bench.SweepTransactionsFixed,
					ConflictPercent: bench.SweepConflictFixed, Seed: bench.DefaultSeed,
				})
				if err != nil {
					b.Fatalf("generate: %v", err)
				}
				wl.World.Store().SetCoarseLocks(tc.coarse)
				parent := chain.GenesisHeader(types.HashString("bench-genesis"))
				runner := func() runtime.Runner {
					return runtime.NewSimRunnerInterference(bench.DefaultInterferencePerMille)
				}
				serial, err := miner.MineParallel(runner(), wl.World, parent, wl.Calls, miner.Config{Workers: 1})
				if err != nil {
					b.Fatalf("serial: %v", err)
				}
				wl.Reset()
				mres, err := miner.MineParallel(runner(), wl.World, parent, wl.Calls, miner.Config{Workers: 3})
				if err != nil {
					b.Fatalf("mine: %v", err)
				}
				wl.Reset()
				vres, err := validator.Validate(runner(), wl.World, mres.Block, validator.Config{Workers: 3})
				if err != nil {
					b.Fatalf("validate: %v", err)
				}
				minerX = float64(serial.Makespan) / float64(mres.Makespan)
				validatorX = float64(serial.Makespan) / float64(vres.Makespan)
			}
			b.ReportMetric(minerX, "miner-x")
			b.ReportMetric(validatorX, "validator-x")
		})
	}
}

// BenchmarkValidatorThreadScaling exercises §4's claim that "the validator
// can exploit whatever degree of parallelism it has available": the same
// mined block validated with 1..6 workers.
func BenchmarkValidatorThreadScaling(b *testing.B) {
	wl, err := workload.Generate(workload.Params{
		Kind: workload.KindMixed, Transactions: bench.SweepTransactionsFixed,
		ConflictPercent: bench.SweepConflictFixed, Seed: bench.DefaultSeed,
	})
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	parent := chain.GenesisHeader(types.HashString("bench-genesis"))
	runner := func() runtime.Runner {
		return runtime.NewSimRunnerInterference(bench.DefaultInterferencePerMille)
	}
	serial, err := miner.MineParallel(runner(), wl.World, parent, wl.Calls, miner.Config{Workers: 1})
	if err != nil {
		b.Fatalf("serial: %v", err)
	}
	wl.Reset()
	mres, err := miner.MineParallel(runner(), wl.World, parent, wl.Calls, miner.Config{Workers: 3})
	if err != nil {
		b.Fatalf("mine: %v", err)
	}
	for _, workers := range []int{1, 2, 3, 4, 6} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var speedup float64
			for i := 0; i < b.N; i++ {
				wl.Reset()
				vres, err := validator.Validate(runner(), wl.World, mres.Block, validator.Config{Workers: workers})
				if err != nil {
					b.Fatalf("validate: %v", err)
				}
				speedup = float64(serial.Makespan) / float64(vres.Makespan)
			}
			b.ReportMetric(speedup, "validator-x")
		})
	}
}

// BenchmarkMinerRealTime measures actual wall-clock mining throughput on
// OS threads (no virtual time): transactions per second of the real
// speculative runtime. On a single-core host this shows overheads, not
// speedups; it exists so multi-core users can observe real parallelism.
func BenchmarkMinerRealTime(b *testing.B) {
	wl, err := workload.Generate(workload.Params{
		Kind: workload.KindMixed, Transactions: 100,
		ConflictPercent: bench.SweepConflictFixed, Seed: bench.DefaultSeed,
	})
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	parent := chain.GenesisHeader(types.HashString("bench-genesis"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl.Reset()
		b.StartTimer()
		if _, err := miner.MineParallel(runtime.NewOSRunner(nil), wl.World, parent, wl.Calls, miner.Config{Workers: 3}); err != nil {
			b.Fatalf("mine: %v", err)
		}
	}
}
