module contractstm

go 1.22
