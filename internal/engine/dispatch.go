package engine

import (
	"sync/atomic"

	"contractstm/internal/runtime"
)

// This file is the shared work-dispatch core: a lock-free shared cursor
// over a known-up-front work list, plus first-error capture. Both parallel
// engines (speculative and OCC) dispatch through it, so the hot path —
// claim an index, record a result — performs no mutex operations at all.

// firstError captures the first failure reported by any worker; later
// reports are dropped. The zero value is ready to use.
type firstError struct {
	p atomic.Pointer[error]
}

// set records err if it is the first one.
func (f *firstError) set(err error) {
	if err == nil {
		return
	}
	f.p.CompareAndSwap(nil, &err)
}

// get returns the recorded error, or nil.
func (f *firstError) get() error {
	if p := f.p.Load(); p != nil {
		return *p
	}
	return nil
}

// runDispatch executes body(th, i) for every i in [0, n) on `workers`
// threads of the pool. Work distribution is a lock-free shared cursor:
// workers never block on the queue (all work is known up front), so no
// parking protocol is needed here; blocking, if any, happens inside the
// body (for example abstract-lock acquisition). A body error stops further
// dispatch and is returned alongside the pool's makespan; in-flight bodies
// still finish.
func runDispatch(pool runtime.Runner, workers, n int, body func(th runtime.Thread, i int) error) (uint64, error) {
	var cursor atomic.Int64
	var failed atomic.Bool
	var fail firstError
	makespan, err := pool.Run(workers, func(th runtime.Thread) {
		for {
			if failed.Load() {
				return
			}
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			if err := body(th, i); err != nil {
				fail.set(err)
				failed.Store(true)
				return
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return makespan, fail.get()
}
