package engine

import (
	"fmt"

	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// SerialEngine executes the block one transaction at a time, in block
// order, with no locks and no speculation — the paper's baseline "serial
// miner that runs the block without parallelization". It still records
// each transaction's would-be lock set (the validator's cheap trace
// machinery) so it can publish a schedule: counters are assigned in block
// order, making the serial order itself the happens-before structure. That
// is what lets serially-mined blocks flow through the same parallel
// validator as everything else.
type SerialEngine struct{}

var _ Engine = SerialEngine{}

// Kind implements Engine.
func (SerialEngine) Kind() Kind { return KindSerial }

// ExecuteBlock implements Engine.
func (SerialEngine) ExecuteBlock(runner runtime.Runner, w *contract.World, calls []contract.Call, opts Options) (Result, error) {
	n := len(calls)
	commitOrder := make([]int, n)
	for i := range commitOrder {
		commitOrder[i] = i
	}
	traces := make([]stm.Trace, n)
	receipts, makespan, err := runSerialLoop(runner, w, calls, commitOrder, stm.BeginReplay,
		func(i int, tx *stm.Tx) { traces[i] = tx.TraceResult(); tx.Recycle() })
	if err != nil {
		return Result{}, err
	}

	profiles := profilesFromTraces(n, traces, commitOrder)
	schedule, graph, err := sched.BuildSchedule(n, profiles)
	if err != nil {
		return Result{}, fmt.Errorf("engine: building schedule: %w", err)
	}
	res := Result{
		Receipts: receipts,
		Profiles: profiles,
		Schedule: schedule,
		Graph:    graph,
		Makespan: makespan,
		Stats:    Stats{Rounds: 1, ConflictPairs: conflictPairsOf(schedule)},
	}
	res.Stats.tally(receipts)
	return res, nil
}

// OrderedRun is the outcome of RunOrdered.
type OrderedRun struct {
	Receipts []contract.Receipt
	Makespan uint64
}

// RunOrdered runs calls one at a time in the order given by order (or
// block order when order is nil), in the bare serial regime: no locks, no
// traces, no schedule — only inverse logging so a contract throw can
// revert its own effects. It is the reference implementation tests use to
// check that every parallel engine is serializable, and the replay tool
// for a published serial order S.
func RunOrdered(runner runtime.Runner, w *contract.World, calls []contract.Call, order []types.TxID) (OrderedRun, error) {
	idx := make([]int, 0, len(calls))
	if order == nil {
		for i := range calls {
			idx = append(idx, i)
		}
	} else {
		if len(order) != len(calls) {
			return OrderedRun{}, fmt.Errorf("engine: order has %d entries for %d calls", len(order), len(calls))
		}
		for _, tx := range order {
			if int(tx) >= len(calls) {
				return OrderedRun{}, fmt.Errorf("engine: order entry %s out of range", tx)
			}
			idx = append(idx, int(tx))
		}
	}
	receipts, makespan, err := runSerialLoop(runner, w, calls, idx, stm.BeginSerial, nil)
	if err != nil {
		return OrderedRun{}, err
	}
	return OrderedRun{Receipts: receipts, Makespan: makespan}, nil
}

// runSerialLoop is the one serial execution loop: run calls[idx...] in
// order on a single thread, beginning each transaction via begin and
// invoking after (if non-nil) on the settled transaction.
func runSerialLoop(
	runner runtime.Runner, w *contract.World, calls []contract.Call, idx []int,
	begin func(types.TxID, runtime.Thread, *gas.Meter, gas.Schedule) *stm.Tx,
	after func(i int, tx *stm.Tx),
) ([]contract.Receipt, uint64, error) {
	receipts := make([]contract.Receipt, len(calls))
	makespan, err := runner.Run(1, func(th runtime.Thread) {
		for _, i := range idx {
			call := calls[i]
			id := types.TxID(i)
			tx := begin(id, th, gas.NewMeter(call.GasLimit), w.Schedule())
			out := contract.Execute(w, tx, call)
			if out.Kind == contract.OutcomeRetry {
				// Serial transactions cannot conflict; a retry here is a bug.
				panic(fmt.Sprintf("engine: serial execution of %s demanded retry: %s", id, out.Reason))
			}
			receipts[i] = contract.ReceiptFor(id, out)
			if after != nil {
				after(i, tx)
			}
		}
	})
	if err != nil {
		return nil, 0, fmt.Errorf("engine: serial run: %w", err)
	}
	return receipts, makespan, nil
}
