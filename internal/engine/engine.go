// Package engine is the pluggable block-execution layer: one contract —
// execute a block's transactions against a world and return receipts plus
// the paper's publishable schedule metadata (S, H, profiles) — behind which
// several execution strategies live:
//
//   - SerialEngine: one transaction at a time, the paper's baseline;
//   - SpeculativeEngine: the paper's Algorithm 1, speculative execution on
//     a thread pool with abstract locks and deadlock abort-and-retry;
//   - OCCEngine: an optimistic batch strategy in the style of Block-STM:
//     execute every pending transaction against a stable snapshot with
//     buffered writes and recorded read/write sets, then validate and
//     commit in deterministic rounds.
//
// Every engine derives the same (S, H, profiles) schedule from its
// execution, so blocks sealed from any engine's result are accepted by the
// deterministic fork-join validator unchanged. The package also hosts that
// validator's replay core (Replay), so the per-transaction execution loop
// exists exactly once in the codebase.
//
// The miner (internal/miner) and validator (internal/validator) are thin
// adapters over this package; internal/node, internal/bench and the cmd/
// tools select engines by Kind.
package engine

import (
	"fmt"

	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// Kind selects an execution engine.
type Kind int

const (
	// KindSpeculative is the paper's Algorithm 1 (the default).
	KindSpeculative Kind = iota + 1
	// KindSerial executes one transaction at a time.
	KindSerial
	// KindOCC executes the batch optimistically with validate-and-commit
	// rounds.
	KindOCC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSpeculative:
		return "speculative"
	case KindSerial:
		return "serial"
	case KindOCC:
		return "occ"
	default:
		return fmt.Sprintf("engine(%d)", int(k))
	}
}

// Kinds lists every engine in presentation order.
func Kinds() []Kind {
	return []Kind{KindSerial, KindSpeculative, KindOCC}
}

// ParseKind resolves an engine name as used by command-line flags.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "speculative", "spec", "stm":
		return KindSpeculative, nil
	case "serial":
		return KindSerial, nil
	case "occ":
		return KindOCC, nil
	default:
		return 0, fmt.Errorf("engine: unknown engine %q (want serial, speculative or occ)", s)
	}
}

// New returns the engine implementing k.
func New(k Kind) (Engine, error) {
	switch k {
	case KindSpeculative:
		return SpeculativeEngine{}, nil
	case KindSerial:
		return SerialEngine{}, nil
	case KindOCC:
		return OCCEngine{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown kind %v", k)
	}
}

// MustNew is New for statically-known kinds.
func MustNew(k Kind) Engine {
	e, err := New(k)
	if err != nil {
		panic(err)
	}
	return e
}

// Options tunes a block execution. The zero value selects sane defaults.
type Options struct {
	// Workers is the thread-pool size (the paper's evaluation uses 3).
	Workers int
	// Policy selects eager (default) or lazy speculative writes
	// (SpeculativeEngine only).
	Policy stm.Policy
	// MaxRetries bounds abort-and-retry cycles per transaction
	// (SpeculativeEngine); 0 means DefaultMaxRetries. Exceeding it fails
	// the run (it indicates a livelock bug rather than ordinary
	// contention).
	MaxRetries int
	// RetryBackoff is the simulated work performed before re-attempting an
	// aborted transaction, scaled linearly by attempt number
	// (SpeculativeEngine).
	RetryBackoff gas.Gas
	// MaxRounds bounds OCC validate-and-commit rounds; 0 means one round
	// per transaction (the structural worst case, since every round
	// commits at least one transaction).
	MaxRounds int
}

// DefaultMaxRetries bounds speculative retry loops; deadlock victims
// release all locks before retrying, so progress only requires modest
// patience.
const DefaultMaxRetries = 1000

// DefaultRetryBackoff is the default per-attempt backoff work.
const DefaultRetryBackoff gas.Gas = 50

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Policy == 0 {
		o.Policy = stm.PolicyEager
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = DefaultMaxRetries
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	return o
}

// Stats aggregates a run's execution behaviour across engines; fields not
// meaningful for an engine stay zero.
type Stats struct {
	// Retries counts discarded execution attempts: deadlock-victim aborts
	// for the speculative engine, failed validations (re-executions) for
	// the OCC engine.
	Retries int
	// RetriedTxs lists the transactions that needed at least one retry;
	// transaction pools use this as conflict feedback (§7.3).
	RetriedTxs []types.TxID
	// Committed and Reverted count final transaction outcomes.
	Committed int
	Reverted  int
	// Rounds counts OCC validate-and-commit rounds (1 for other engines).
	Rounds int
	// LockStats echoes the speculative lock manager's counters.
	LockStats stm.Stats
	// ConflictPairs lists the (earlier, later) transaction pairs connected
	// by a happens-before edge in the derived schedule — the block's
	// observed contention structure. Transaction pools feed it back into
	// packing decisions (txpool.PolicyLockHint); unlike RetriedTxs it is
	// populated by every engine, including the serial one, because the
	// edges fall out of the published schedule rather than the execution
	// strategy.
	ConflictPairs [][2]types.TxID
}

// conflictPairsOf extracts a schedule's happens-before edges as feedback
// pairs (edges are already deduplicated by the schedule builder).
func conflictPairsOf(s sched.Schedule) [][2]types.TxID {
	if len(s.Edges) == 0 {
		return nil
	}
	out := make([][2]types.TxID, len(s.Edges))
	for i, e := range s.Edges {
		out[i] = [2]types.TxID{e.From, e.To}
	}
	return out
}

// Result is a completed block execution: everything a miner needs to seal
// a block whose schedule any validator will accept.
type Result struct {
	// Receipts is the per-transaction execution digest, indexed by TxID.
	Receipts []contract.Receipt
	// Profiles is the per-transaction lock profile (§4), indexed by TxID.
	Profiles []stm.Profile
	// Schedule is the derived serial order S and happens-before edges H.
	Schedule sched.Schedule
	// Graph is the derived happens-before graph (diagnostics; the block
	// carries its edge list).
	Graph *sched.Graph
	// Makespan is the run's duration in the runner's time unit (virtual
	// gas-time for SimRunner, nanoseconds for OSRunner).
	Makespan uint64
	// Stats aggregates execution counters.
	Stats Stats
}

// Engine executes whole blocks. Implementations must be stateless values:
// one engine may serve many concurrent executions.
type Engine interface {
	// Kind identifies the engine.
	Kind() Kind
	// ExecuteBlock runs calls against w (which must hold the parent
	// state) and returns receipts, the publishable schedule metadata,
	// stats and the makespan. On success the world has advanced to the
	// block's post-state; on error the world state is unspecified and
	// callers should restore a snapshot.
	ExecuteBlock(runner runtime.Runner, w *contract.World, calls []contract.Call, opts Options) (Result, error)
}

// tally fills outcome counters from final receipts (Committed/Reverted are
// derivable, so the hot execution path never synchronizes on them).
func (s *Stats) tally(receipts []contract.Receipt) {
	for _, r := range receipts {
		if r.Reverted {
			s.Reverted++
		} else {
			s.Committed++
		}
	}
}

// profilesFromTraces synthesizes publishable lock profiles from per-
// transaction read/write sets and a commit order: each lock's use counter
// is assigned in commit order, which is exactly how the speculative lock
// manager numbers committing holders. BuildHappensBefore then reconstructs
// the commit order's conflict structure, so the validator accepts the
// derived schedule.
func profilesFromTraces(n int, traces []stm.Trace, commitOrder []int) []stm.Profile {
	counters := make(map[stm.LockID]uint64)
	profiles := make([]stm.Profile, n)
	for _, i := range commitOrder {
		entries := make([]stm.ProfileEntry, 0, len(traces[i].Entries))
		for _, e := range traces[i].Entries {
			counters[e.Lock]++
			entries = append(entries, stm.ProfileEntry{Lock: e.Lock, Mode: e.Mode, Counter: counters[e.Lock]})
		}
		profiles[i] = stm.Profile{Tx: types.TxID(i), Entries: entries}
	}
	return profiles
}
