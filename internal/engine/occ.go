package engine

import (
	"fmt"

	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// OCCEngine executes the whole batch optimistically, in the style of
// Block-STM: no abstract locks and no blocking. Each round runs every
// still-pending transaction in parallel against the stable committed
// state, with all writes buffered in a per-transaction isolated overlay
// and every storage access recorded in a read/write set keyed by the same
// abstract locks the speculative engine uses. A deterministic
// validate-and-commit pass then walks the pending transactions in block
// order: a transaction whose read/write set is compatible with everything
// committed earlier in the same round commits (its buffered writes are
// applied); an incompatible one is discarded and re-executed next round
// against the newly committed state.
//
// The commit order is a conflict-serializable order by construction, so
// assigning each lock's use counters in commit order yields profiles whose
// derived (S, H) schedule replays to identical receipts and state — the
// validator accepts OCC blocks exactly as it accepts speculative ones.
//
// Progress is structural: the first pending transaction of every round
// validates against an empty committed set, so each round commits at least
// one transaction and a block of n transactions needs at most n rounds.
type OCCEngine struct{}

var _ Engine = OCCEngine{}

// Kind implements Engine.
func (OCCEngine) Kind() Kind { return KindOCC }

// occAttempt is one transaction's latest optimistic execution.
type occAttempt struct {
	receipt contract.Receipt
	trace   stm.Trace
	writes  *stm.Overlay
}

// ExecuteBlock implements Engine.
func (OCCEngine) ExecuteBlock(runner runtime.Runner, w *contract.World, calls []contract.Call, opts Options) (Result, error) {
	opts = opts.withDefaults()
	n := len(calls)
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = n
	}
	costs := w.Schedule()

	attempts := make([]occAttempt, n)
	retried := make([]bool, n)
	commitOrder := make([]int, 0, n)
	pending := make([]int, 0, n)
	for i := 0; i < n; i++ {
		pending = append(pending, i)
	}
	// Round-scoped scratch, hoisted so every round after the first reuses
	// the same storage: the deferred-id buffer (swapped with pending each
	// round) and the committed read/write-set map (cleared in place).
	deferred := make([]int, 0, n)
	committed := make(map[stm.LockID]stm.Mode)

	var stats Stats
	var makespan uint64
	for len(pending) > 0 {
		stats.Rounds++
		if stats.Rounds > maxRounds {
			return Result{}, fmt.Errorf("engine: occ exceeded %d rounds with %d transactions pending", maxRounds, len(pending))
		}

		// Execution phase: every pending transaction runs against the
		// stable committed state. All writes are buffered, so workers
		// share the world read-only and need no coordination beyond the
		// dispatch cursor.
		workers := opts.Workers
		if workers > len(pending) {
			workers = len(pending)
		}
		pool := runner
		if workers > 1 {
			pool = runtime.WithStartupWork(runner, costs.PoolStartup)
		}
		round := pending
		execSpan, err := runDispatch(pool, workers, len(round), func(th runtime.Thread, k int) error {
			i := round[k]
			call := calls[i]
			id := types.TxID(i)
			tx := stm.BeginOCC(id, th, gas.NewMeter(call.GasLimit), costs)
			out := contract.Execute(w, tx, call)
			if out.Kind == contract.OutcomeRetry {
				// The OCC regime never blocks, so it can never deadlock.
				return fmt.Errorf("engine: occ execution of %s demanded retry: %s", id, out.Reason)
			}
			// A deferred transaction's prior attempt was discarded in the
			// commit phase, so its trace storage is free to reuse here.
			attempts[i] = occAttempt{
				receipt: contract.ReceiptFor(id, out),
				trace:   tx.TraceResultInto(attempts[i].trace.Entries),
				writes:  tx.PendingWrites(),
			}
			tx.Recycle()
			return nil
		})
		if err != nil {
			return Result{}, fmt.Errorf("engine: occ round %d: %w", stats.Rounds, err)
		}
		makespan += execSpan

		// Validate-and-commit phase: deterministic, in block order, on a
		// single thread (the paper-style sequential commit point; its cost
		// is charged to the makespan like every other phase).
		deferred = deferred[:0]
		commitSpan, err := runner.Run(1, func(th runtime.Thread) {
			clear(committed)
			for _, i := range round {
				tr := attempts[i].trace
				th.Work(costs.OCCValidate * gas.Gas(len(tr.Entries)+1))
				conflict := false
				for _, e := range tr.Entries {
					if m, ok := committed[e.Lock]; ok && !stm.Compatible(m, e.Mode) {
						conflict = true
						break
					}
				}
				if conflict {
					deferred = append(deferred, i)
					retried[i] = true
					stats.Retries++
					// The attempt is discarded; recycle its overlay now so
					// next round's re-execution draws from the pool.
					if wr := attempts[i].writes; wr != nil {
						attempts[i].writes = nil
						wr.Release()
					}
					continue
				}
				for _, e := range tr.Entries {
					if m, ok := committed[e.Lock]; ok {
						committed[e.Lock] = stm.Combine(m, e.Mode)
					} else {
						committed[e.Lock] = e.Mode
					}
				}
				if wr := attempts[i].writes; wr != nil {
					if wr.Len() > 0 {
						th.Work(costs.OCCValidate * gas.Gas(wr.Len()))
						wr.Apply()
					}
					attempts[i].writes = nil
					wr.Release()
				}
				commitOrder = append(commitOrder, i)
			}
		})
		if err != nil {
			return Result{}, fmt.Errorf("engine: occ commit round %d: %w", stats.Rounds, err)
		}
		makespan += commitSpan
		// Double-buffer the pending/deferred id slices: round aliases the
		// buffer we are about to refill, so swap rather than re-slice.
		pending, deferred = deferred, pending
	}

	receipts := make([]contract.Receipt, n)
	traces := make([]stm.Trace, n)
	for i := 0; i < n; i++ {
		receipts[i] = attempts[i].receipt
		traces[i] = attempts[i].trace
	}
	for i, r := range retried {
		if r {
			stats.RetriedTxs = append(stats.RetriedTxs, types.TxID(i))
		}
	}
	stats.tally(receipts)

	profiles := profilesFromTraces(n, traces, commitOrder)
	schedule, graph, err := sched.BuildSchedule(n, profiles)
	if err != nil {
		return Result{}, fmt.Errorf("engine: building schedule: %w", err)
	}
	stats.ConflictPairs = conflictPairsOf(schedule)
	return Result{
		Receipts: receipts,
		Profiles: profiles,
		Schedule: schedule,
		Graph:    graph,
		Makespan: makespan,
		Stats:    stats,
	}, nil
}
