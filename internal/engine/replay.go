package engine

import (
	"contractstm/internal/contract"
	"contractstm/internal/forkjoin"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// ReplayRun is the outcome of Replay: re-derived receipts and traces for
// the validator's comparisons, plus the run's makespan.
type ReplayRun struct {
	Receipts []contract.Receipt
	Traces   []stm.Trace
	Makespan uint64
}

// Replay is the validator-side execution core (the paper's Algorithm 2):
// compile the published schedule's fork-join plan into dependency-counted
// tasks and re-execute the block in parallel with no locks, no conflict
// detection and no rollback machinery, recording per-transaction traces
// for comparison against the miner's published profiles. It is the one
// place the replay execution loop lives; the validator package layers the
// §4-§5 safety checks on top.
func Replay(runner runtime.Runner, w *contract.World, calls []contract.Call, plan sched.Plan, workers int) (ReplayRun, error) {
	n := len(calls)
	costs := w.Schedule()
	receipts := make([]contract.Receipt, n)
	traces := make([]stm.Trace, n)

	tasks := make([]forkjoin.Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = forkjoin.Task{
			Preds: plan.Preds[i],
			Run: func(th runtime.Thread) {
				// Task setup plus one join per happens-before predecessor:
				// the only synchronization the validator pays for (§4).
				th.Work(costs.TaskSetup + costs.JoinOverhead*gas.Gas(len(plan.Preds[i])))
				call := calls[i]
				id := types.TxID(i)
				tx := stm.BeginReplay(id, th, gas.NewMeter(call.GasLimit), costs)
				out := contract.Execute(w, tx, call)
				receipts[i] = contract.ReceiptFor(id, out)
				traces[i] = tx.TraceResult()
				tx.Recycle()
			},
		}
	}
	pool := runner
	if workers > 1 {
		pool = runtime.WithStartupWork(runner, costs.PoolStartup)
	}
	makespan, err := forkjoin.Run(pool, workers, tasks)
	if err != nil {
		return ReplayRun{}, err
	}
	return ReplayRun{Receipts: receipts, Traces: traces, Makespan: makespan}, nil
}
