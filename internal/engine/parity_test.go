package engine_test

// Engine parity: every engine must be a drop-in execution strategy. For
// every workload kind, a block sealed from any engine's result must pass
// the deterministic fork-join validator, and every engine's outcome must
// equal the serial execution of its own published order S (the paper's
// serializability contract). On conflict-free blocks — where no
// serialization order is observable — all engines must additionally
// produce identical receipts and state roots. (With conflicts present,
// engines legitimately discover different serializable orders: the
// speculative engine's order is whatever the lock contention resolved to,
// the OCC engine's is its commit order, the serial engine's is block
// order.)

import (
	"fmt"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/validator"
	"contractstm/internal/workload"
)

// allKinds enumerates every workload, including the extension workloads
// (Token's hot account and Delegation's multi-key read sets stress OCC's
// validate-and-commit rounds harder than the paper's benchmarks).
func allKinds() []workload.Kind {
	return append(workload.Kinds(), workload.KindToken, workload.KindDelegation)
}

func genesis() chain.Header {
	return chain.GenesisHeader(types.HashString("engine-parity"))
}

func TestEngineParityAcrossWorkloads(t *testing.T) {
	for _, kind := range allKinds() {
		for _, conflict := range []int{0, 30, 80} {
			kind, conflict := kind, conflict
			t.Run(fmt.Sprintf("%v/conflict=%d", kind, conflict), func(t *testing.T) {
				wl, err := workload.Generate(workload.Params{
					Kind: kind, Transactions: 60, ConflictPercent: conflict, Seed: 7,
				})
				if err != nil {
					t.Fatalf("generate: %v", err)
				}

				for _, ek := range engine.Kinds() {
					wl.Reset()
					eng := engine.MustNew(ek)
					res, err := eng.ExecuteBlock(runtime.NewSimRunner(), wl.World, wl.Calls,
						engine.Options{Workers: 3})
					if err != nil {
						t.Fatalf("%v: ExecuteBlock: %v", ek, err)
					}
					root, err := wl.World.StateRoot()
					if err != nil {
						t.Fatalf("%v: state root: %v", ek, err)
					}

					// Every engine's sealed block must pass validation
					// against a fresh parent-state world.
					wl.Reset()
					block := chain.Seal(genesis(), wl.Calls, res.Receipts, res.Schedule, res.Profiles, root)
					if _, err := validator.Validate(runtime.NewSimRunner(), wl.World, block,
						validator.Config{Workers: 3}); err != nil {
						t.Fatalf("%v: sealed block rejected: %v", ek, err)
					}

					// Every engine's outcome must equal the serial
					// execution of its own published order S.
					wl.Reset()
					replay, err := engine.RunOrdered(runtime.NewSimRunner(), wl.World, wl.Calls, res.Schedule.Order)
					if err != nil {
						t.Fatalf("%v: RunOrdered: %v", ek, err)
					}
					replayRoot, err := wl.World.StateRoot()
					if err != nil {
						t.Fatalf("%v: replay state root: %v", ek, err)
					}
					if replayRoot != root {
						t.Fatalf("%v not serializable in its order S: %s != %s", ek, replayRoot.Short(), root.Short())
					}
					for i := range res.Receipts {
						if replay.Receipts[i].Reverted != res.Receipts[i].Reverted ||
							replay.Receipts[i].GasUsed != res.Receipts[i].GasUsed {
							t.Fatalf("%v receipt %d: replay %+v != engine %+v", ek, i, replay.Receipts[i], res.Receipts[i])
						}
					}
				}
			})
		}
	}
}

func TestEnginesAgreeOnConflictFreeBlocks(t *testing.T) {
	// With no data conflicts there is no observable serialization order,
	// so all three engines must produce byte-identical receipts and state
	// roots for every workload.
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			wl, err := workload.Generate(workload.Params{
				Kind: kind, Transactions: 60, ConflictPercent: 0, Seed: 7,
			})
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			type outcome struct {
				receipts  []contract.Receipt
				stateRoot types.Hash
			}
			outcomes := make(map[engine.Kind]outcome)
			for _, ek := range engine.Kinds() {
				wl.Reset()
				res, err := engine.MustNew(ek).ExecuteBlock(runtime.NewSimRunner(), wl.World, wl.Calls,
					engine.Options{Workers: 3})
				if err != nil {
					t.Fatalf("%v: ExecuteBlock: %v", ek, err)
				}
				root, err := wl.World.StateRoot()
				if err != nil {
					t.Fatalf("%v: state root: %v", ek, err)
				}
				outcomes[ek] = outcome{receipts: res.Receipts, stateRoot: root}
			}
			ref := outcomes[engine.KindSerial]
			for _, ek := range engine.Kinds() {
				got := outcomes[ek]
				if got.stateRoot != ref.stateRoot {
					t.Fatalf("%v state root %s != serial %s", ek, got.stateRoot.Short(), ref.stateRoot.Short())
				}
				for i := range ref.receipts {
					if got.receipts[i].Reverted != ref.receipts[i].Reverted ||
						got.receipts[i].GasUsed != ref.receipts[i].GasUsed {
						t.Fatalf("%v receipt %d = %+v, serial %+v", ek, i, got.receipts[i], ref.receipts[i])
					}
				}
			}
		})
	}
}

func TestEngineSerializableInScheduleOrder(t *testing.T) {
	// Each engine's published serial order S must reproduce its receipts
	// and state when executed serially — the paper's core serializability
	// claim, extended to every engine.
	for _, ek := range engine.Kinds() {
		ek := ek
		t.Run(ek.String(), func(t *testing.T) {
			wl, err := workload.Generate(workload.Params{
				Kind: workload.KindMixed, Transactions: 48, ConflictPercent: 50, Seed: 11,
			})
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			eng := engine.MustNew(ek)
			res, err := eng.ExecuteBlock(runtime.NewSimRunner(), wl.World, wl.Calls,
				engine.Options{Workers: 3})
			if err != nil {
				t.Fatalf("ExecuteBlock: %v", err)
			}
			root, err := wl.World.StateRoot()
			if err != nil {
				t.Fatalf("state root: %v", err)
			}

			wl.Reset()
			replay, err := engine.RunOrdered(runtime.NewSimRunner(), wl.World, wl.Calls, res.Schedule.Order)
			if err != nil {
				t.Fatalf("RunOrdered: %v", err)
			}
			replayRoot, err := wl.World.StateRoot()
			if err != nil {
				t.Fatalf("replay state root: %v", err)
			}
			if replayRoot != root {
				t.Fatalf("serial replay of S diverged: %s != %s", replayRoot.Short(), root.Short())
			}
			for i := range res.Receipts {
				if replay.Receipts[i].Reverted != res.Receipts[i].Reverted ||
					replay.Receipts[i].GasUsed != res.Receipts[i].GasUsed {
					t.Fatalf("receipt %d: replay %+v != engine %+v", i, replay.Receipts[i], res.Receipts[i])
				}
			}
		})
	}
}

func TestEngineDeterministicOnSimRunner(t *testing.T) {
	for _, ek := range engine.Kinds() {
		ek := ek
		t.Run(ek.String(), func(t *testing.T) {
			run := func() (types.Hash, uint64) {
				wl, err := workload.Generate(workload.Params{
					Kind: workload.KindAuction, Transactions: 40, ConflictPercent: 40, Seed: 3,
				})
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				eng := engine.MustNew(ek)
				res, err := eng.ExecuteBlock(runtime.NewSimRunner(), wl.World, wl.Calls,
					engine.Options{Workers: 3})
				if err != nil {
					t.Fatalf("ExecuteBlock: %v", err)
				}
				root, err := wl.World.StateRoot()
				if err != nil {
					t.Fatalf("state root: %v", err)
				}
				return root, res.Makespan
			}
			r1, m1 := run()
			r2, m2 := run()
			if r1 != r2 || m1 != m2 {
				t.Fatalf("nondeterministic: (%s, %d) vs (%s, %d)", r1.Short(), m1, r2.Short(), m2)
			}
		})
	}
}

func TestOCCEngineRetriesUnderConflict(t *testing.T) {
	// A conflict-heavy auction block must force OCC re-execution rounds;
	// the stats must reflect them.
	wl, err := workload.Generate(workload.Params{
		Kind: workload.KindAuction, Transactions: 40, ConflictPercent: 80, Seed: 5,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := engine.OCCEngine{}.ExecuteBlock(runtime.NewSimRunner(), wl.World, wl.Calls,
		engine.Options{Workers: 3})
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	if res.Stats.Rounds < 2 {
		t.Fatalf("expected multiple OCC rounds at 80%% conflict, got %d", res.Stats.Rounds)
	}
	if res.Stats.Retries == 0 || len(res.Stats.RetriedTxs) == 0 {
		t.Fatalf("expected OCC retries, got stats %+v", res.Stats)
	}
}

func TestEngineParityOnOSThreads(t *testing.T) {
	// Real goroutines exercise the lock-free dispatch cursor and the OCC
	// round structure under genuine concurrency (run under -race in CI).
	// Whatever serializable order a parallel engine discovers, its block
	// must validate and its outcome must match the serial execution of its
	// published order S.
	wl, err := workload.Generate(workload.Params{
		Kind: workload.KindMixed, Transactions: 45, ConflictPercent: 40, Seed: 13,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for _, ek := range engine.Kinds() {
		wl.Reset()
		res, err := engine.MustNew(ek).ExecuteBlock(runtime.NewOSRunner(nil), wl.World, wl.Calls,
			engine.Options{Workers: 4})
		if err != nil {
			t.Fatalf("%v: ExecuteBlock: %v", ek, err)
		}
		root, err := wl.World.StateRoot()
		if err != nil {
			t.Fatalf("%v: state root: %v", ek, err)
		}

		wl.Reset()
		block := chain.Seal(genesis(), wl.Calls, res.Receipts, res.Schedule, res.Profiles, root)
		if _, err := validator.Validate(runtime.NewOSRunner(nil), wl.World, block,
			validator.Config{Workers: 4}); err != nil {
			t.Fatalf("%v: sealed block rejected: %v", ek, err)
		}

		wl.Reset()
		if _, err := engine.RunOrdered(runtime.NewOSRunner(nil), wl.World, wl.Calls, res.Schedule.Order); err != nil {
			t.Fatalf("%v: RunOrdered: %v", ek, err)
		}
		replayRoot, err := wl.World.StateRoot()
		if err != nil {
			t.Fatalf("%v: replay state root: %v", ek, err)
		}
		if replayRoot != root {
			t.Fatalf("%v not serializable in its order S on OS threads: %s != %s",
				ek, replayRoot.Short(), root.Short())
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, ek := range engine.Kinds() {
		got, err := engine.ParseKind(ek.String())
		if err != nil || got != ek {
			t.Fatalf("ParseKind(%q) = %v, %v", ek.String(), got, err)
		}
	}
	if _, err := engine.ParseKind("warp-drive"); err == nil {
		t.Fatal("ParseKind accepted nonsense")
	}
}
