package engine

import (
	"fmt"
	"sync/atomic"

	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// SpeculativeEngine is the paper's Algorithm 1, MineInParallel: execute
// the block's transactions speculatively on a thread pool as atomic
// actions, resolving conflicts by blocking on abstract locks and by
// aborting and retrying deadlock victims; then derive the happens-before
// graph H from the committed lock profiles and topologically sort it into
// the serial order S.
type SpeculativeEngine struct{}

var _ Engine = SpeculativeEngine{}

// Kind implements Engine.
func (SpeculativeEngine) Kind() Kind { return KindSpeculative }

// ExecuteBlock implements Engine.
func (SpeculativeEngine) ExecuteBlock(runner runtime.Runner, w *contract.World, calls []contract.Call, opts Options) (Result, error) {
	opts = opts.withDefaults()
	n := len(calls)
	mgr := stm.NewManager(w.Schedule())

	receipts := make([]contract.Receipt, n)
	profiles := make([]stm.Profile, n)
	// attempts[i] counts discarded speculative attempts of transaction i.
	// Each slot is written only by the worker currently owning i (retries
	// stay on their worker), so plain stores suffice; the total is
	// aggregated atomically for the cross-worker Retries counter.
	attempts := make([]int, n)
	var totalRetries atomic.Int64

	// Parallel pools pay dispatch latency; the single-threaded baseline
	// does not (the paper's serial miner runs in-line, not on a pool).
	pool := runner
	if opts.Workers > 1 {
		pool = runtime.WithStartupWork(runner, w.Schedule().PoolStartup)
	}
	makespan, err := runDispatch(pool, opts.Workers, n, func(th runtime.Thread, i int) error {
		call := calls[i]
		id := types.TxID(i)
		attempt := 0
		for {
			tx := stm.BeginSpeculative(mgr, id, th, gas.NewMeter(call.GasLimit), opts.Policy)
			tx.SetRetries(attempt)
			out := contract.Execute(w, tx, call)
			if out.Kind == contract.OutcomeRetry {
				attempt++
				totalRetries.Add(1)
				if attempt > opts.MaxRetries {
					return fmt.Errorf("engine: %s exceeded %d retries: %s", id, opts.MaxRetries, out.Reason)
				}
				th.Work(opts.RetryBackoff * gas.Gas(attempt))
				continue
			}
			receipts[i] = contract.ReceiptFor(id, out)
			profiles[i] = tx.Profile()
			attempts[i] = attempt
			return nil
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("engine: speculative run: %w", err)
	}

	stats := Stats{Retries: int(totalRetries.Load()), Rounds: 1, LockStats: mgr.Stats()}
	for i, a := range attempts {
		if a > 0 {
			stats.RetriedTxs = append(stats.RetriedTxs, types.TxID(i))
		}
	}
	stats.tally(receipts)

	schedule, graph, err := sched.BuildSchedule(n, profiles)
	if err != nil {
		return Result{}, fmt.Errorf("engine: building schedule: %w", err)
	}
	stats.ConflictPairs = conflictPairsOf(schedule)
	return Result{
		Receipts: receipts,
		Profiles: profiles,
		Schedule: schedule,
		Graph:    graph,
		Makespan: makespan,
		Stats:    stats,
	}, nil
}
