package engine_test

// Nested contract calls under buffered execution: a nested frame must see
// its ancestors' buffered writes (read-your-parent's-writes), and nested
// appends must chain off the parent's buffered length instead of
// re-planning the same index. Regression tests for the OCC overlay chain;
// run across every engine so the buffered regimes are held to the serial
// semantics.

import (
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/storage"
	"contractstm/internal/types"
	"contractstm/internal/validator"
)

// echoContract reads shared state on behalf of callers.
type echoContract struct {
	addr types.Address
	cell *storage.Cell
	log  *storage.Array
}

func (c *echoContract) ContractAddress() types.Address { return c.addr }

func (c *echoContract) Invoke(env *contract.Env, fn string, args []any) any {
	switch fn {
	case "readCell":
		n, err := c.cell.ReadUint(env.Ex())
		env.Do(err)
		return n
	case "append":
		_, err := c.log.Push(env.Ex(), args[0].(uint64))
		env.Do(err)
		return nil
	default:
		env.Throw("echo: unknown function %q", fn)
		return nil
	}
}

// writerContract writes state and then observes it through a nested call.
type writerContract struct {
	addr types.Address
	echo types.Address
	cell *storage.Cell
	bump *storage.Cell
	log  *storage.Array
}

func (c *writerContract) ContractAddress() types.Address { return c.addr }

func (c *writerContract) Invoke(env *contract.Env, fn string, args []any) any {
	switch fn {
	case "writeThenAsk":
		// The nested callee must observe the parent's buffered write.
		env.Do(c.cell.Write(env.Ex(), args[0].(uint64)))
		got, err := env.CallContract(c.echo, "readCell")
		env.Do(err)
		env.Require(got == args[0], "nested call read a stale cell value")
		return got
	case "writeThenBump":
		// An increment after a buffered write must fold into it, and the
		// read-back must see both (the lazy/OCC delta-after-Put rule).
		env.Do(c.bump.Write(env.Ex(), args[0].(uint64)))
		env.Do(c.bump.AddUint(env.Ex(), 5))
		n, err := c.bump.ReadUint(env.Ex())
		env.Do(err)
		env.Require(n == args[0].(uint64)+5, "increment after write was lost")
		return n
	case "pushThenPush":
		// Parent appends, then the nested callee appends to the same
		// array: both elements must survive (distinct planned indices).
		_, err := c.log.Push(env.Ex(), args[0].(uint64))
		env.Do(err)
		_, nerr := env.CallContract(c.echo, "append", args[1].(uint64))
		env.Do(nerr)
		n, lerr := c.log.Len(env.Ex())
		env.Do(lerr)
		return uint64(n)
	default:
		env.Throw("writer: unknown function %q", fn)
		return nil
	}
}

func nestedWorld(t *testing.T) (*contract.World, []contract.Call) {
	t.Helper()
	w, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	cell, err := storage.NewCell(w.Store(), "nested/cell", uint64(1))
	if err != nil {
		t.Fatalf("NewCell: %v", err)
	}
	bump, err := storage.NewCell(w.Store(), "nested/bump", uint64(0))
	if err != nil {
		t.Fatalf("NewCell: %v", err)
	}
	log, err := storage.NewArray(w.Store(), "nested/log")
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	echoAddr := types.AddressFromUint64(0xEC0)
	writerAddr := types.AddressFromUint64(0x317)
	if err := w.Deploy(&echoContract{addr: echoAddr, cell: cell, log: log}); err != nil {
		t.Fatalf("deploy echo: %v", err)
	}
	if err := w.Deploy(&writerContract{addr: writerAddr, echo: echoAddr, cell: cell, bump: bump, log: log}); err != nil {
		t.Fatalf("deploy writer: %v", err)
	}
	sender := types.AddressFromUint64(0x5E4D)
	// The three calls touch disjoint state, so every engine commits them
	// in an equivalent order and the final roots must agree.
	calls := []contract.Call{
		{Sender: sender, Contract: writerAddr, Function: "writeThenAsk", Args: []any{uint64(42)}, GasLimit: 200_000},
		{Sender: sender, Contract: writerAddr, Function: "pushThenPush", Args: []any{uint64(7), uint64(8)}, GasLimit: 200_000},
		{Sender: sender, Contract: writerAddr, Function: "writeThenBump", Args: []any{uint64(10)}, GasLimit: 200_000},
	}
	return w, calls
}

func TestNestedCallsSeeParentWritesUnderEveryEngine(t *testing.T) {
	var serialRoot types.Hash
	for _, ek := range engine.Kinds() {
		ek := ek
		t.Run(ek.String(), func(t *testing.T) {
			w, calls := nestedWorld(t)
			res, err := engine.MustNew(ek).ExecuteBlock(runtime.NewSimRunner(), w, calls,
				engine.Options{Workers: 3})
			if err != nil {
				t.Fatalf("ExecuteBlock: %v", err)
			}
			for i, r := range res.Receipts {
				if r.Reverted {
					t.Fatalf("tx %d reverted under %v: %s", i, ek, r.Reason)
				}
			}
			root, err := w.StateRoot()
			if err != nil {
				t.Fatalf("state root: %v", err)
			}
			if ek == engine.KindSerial {
				serialRoot = root
			} else if root != serialRoot {
				t.Fatalf("%v state root %s != serial %s", ek, root.Short(), serialRoot.Short())
			}

			// The sealed block must validate from the parent state.
			vw, _ := nestedWorld(t)
			block := chain.Seal(chain.GenesisHeader(types.HashString("nested")), calls,
				res.Receipts, res.Schedule, res.Profiles, root)
			if _, err := validator.Validate(runtime.NewSimRunner(), vw, block,
				validator.Config{Workers: 3}); err != nil {
				t.Fatalf("%v block rejected: %v", ek, err)
			}
		})
	}

	// The lazy write policy buffers in overlays too — hold it to the same
	// semantics.
	t.Run("speculative-lazy", func(t *testing.T) {
		w, calls := nestedWorld(t)
		res, err := engine.SpeculativeEngine{}.ExecuteBlock(runtime.NewSimRunner(), w, calls,
			engine.Options{Workers: 3, Policy: stm.PolicyLazy})
		if err != nil {
			t.Fatalf("ExecuteBlock: %v", err)
		}
		for i, r := range res.Receipts {
			if r.Reverted {
				t.Fatalf("tx %d reverted under lazy policy: %s", i, r.Reason)
			}
		}
		root, err := w.StateRoot()
		if err != nil {
			t.Fatalf("state root: %v", err)
		}
		if root != serialRoot {
			t.Fatalf("lazy state root %s != serial %s", root.Short(), serialRoot.Short())
		}
	})
}
