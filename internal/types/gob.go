package types

import (
	"encoding/gob"
	"sync"
)

var gobOnce sync.Once

// RegisterWireValues registers, once, the scalar value kinds that cross
// gob serialization boundaries as interface contents: contract call
// arguments (block wire codec, mempool save file) and boosted-storage
// values (state snapshots). Every gob-speaking layer calls this instead
// of keeping its own copy of the list, so adding a value kind is a
// one-place change.
func RegisterWireValues() {
	gobOnce.Do(func() {
		gob.Register(uint64(0))
		gob.Register(int(0))
		gob.Register(false)
		gob.Register("")
		gob.Register(Address{})
		gob.Register(Hash{})
		gob.Register(Amount(0))
	})
}
