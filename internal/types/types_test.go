package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddressFromUint64Deterministic(t *testing.T) {
	a := AddressFromUint64(42)
	b := AddressFromUint64(42)
	if a != b {
		t.Fatalf("same seed produced different addresses: %s vs %s", a, b)
	}
}

func TestAddressFromUint64Distinct(t *testing.T) {
	seen := make(map[Address]uint64)
	for i := uint64(0); i < 10_000; i++ {
		a := AddressFromUint64(i)
		if prev, dup := seen[a]; dup {
			t.Fatalf("collision: seeds %d and %d both map to %s", prev, i, a)
		}
		seen[a] = i
	}
}

func TestParseAddressRoundTrip(t *testing.T) {
	orig := AddressFromUint64(7)
	parsed, err := ParseAddress(orig.String())
	if err != nil {
		t.Fatalf("ParseAddress(%q): %v", orig.String(), err)
	}
	if parsed != orig {
		t.Fatalf("round trip mismatch: %s != %s", parsed, orig)
	}
}

func TestParseAddressBareHex(t *testing.T) {
	orig := AddressFromUint64(9)
	bare := strings.TrimPrefix(orig.String(), "0x")
	parsed, err := ParseAddress(bare)
	if err != nil {
		t.Fatalf("ParseAddress(%q): %v", bare, err)
	}
	if parsed != orig {
		t.Fatalf("round trip mismatch: %s != %s", parsed, orig)
	}
}

func TestParseAddressErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not hex", "0xzz"},
		{"too short", "0xabcd"},
		{"too long", "0x" + strings.Repeat("ab", AddressLen+1)},
		{"empty", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseAddress(tc.in); err == nil {
				t.Fatalf("ParseAddress(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestAddressIsZero(t *testing.T) {
	if !ZeroAddress.IsZero() {
		t.Fatal("ZeroAddress.IsZero() = false")
	}
	if AddressFromUint64(1).IsZero() {
		t.Fatal("non-zero address reported as zero")
	}
}

func TestAddressCompare(t *testing.T) {
	a := Address{0: 1}
	b := Address{0: 2}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatalf("Compare ordering wrong: a<b=%d b>a=%d a=a=%d", a.Compare(b), b.Compare(a), a.Compare(a))
	}
}

func TestAddressBytesIsCopy(t *testing.T) {
	a := AddressFromUint64(3)
	got := a.Bytes()
	got[0] ^= 0xff
	if a.Bytes()[0] == got[0] {
		t.Fatal("Bytes() returned a view into the address, want a copy")
	}
}

func TestHashBytesMatchesHashString(t *testing.T) {
	if HashBytes([]byte("hello")) != HashString("hello") {
		t.Fatal("HashBytes and HashString disagree on identical input")
	}
}

func TestHashConcatEqualsJoinedHash(t *testing.T) {
	joined := HashBytes([]byte("foobarbaz"))
	parts := HashConcat([]byte("foo"), []byte("bar"), []byte("baz"))
	if joined != parts {
		t.Fatalf("HashConcat = %s, want %s", parts, joined)
	}
}

func TestParseHashRoundTrip(t *testing.T) {
	orig := HashString("state root")
	parsed, err := ParseHash(orig.String())
	if err != nil {
		t.Fatalf("ParseHash: %v", err)
	}
	if parsed != orig {
		t.Fatalf("round trip mismatch: %s != %s", parsed, orig)
	}
}

func TestParseHashErrors(t *testing.T) {
	if _, err := ParseHash("0x1234"); err == nil {
		t.Fatal("short hash parsed without error")
	}
	if _, err := ParseHash("0xgg" + strings.Repeat("00", HashLen-1)); err == nil {
		t.Fatal("non-hex hash parsed without error")
	}
}

func TestHashShortPrefix(t *testing.T) {
	h := HashString("x")
	if !strings.HasPrefix(h.String(), h.Short()) {
		t.Fatalf("Short() %q is not a prefix of String() %q", h.Short(), h.String())
	}
}

func TestAmountAdd(t *testing.T) {
	sum, err := Amount(2).Add(3)
	if err != nil || sum != 5 {
		t.Fatalf("2+3 = %d, %v; want 5, nil", sum, err)
	}
}

func TestAmountAddOverflow(t *testing.T) {
	if _, err := Amount(^uint64(0)).Add(1); err == nil {
		t.Fatal("max+1 did not overflow")
	}
}

func TestAmountSub(t *testing.T) {
	d, err := Amount(5).Sub(3)
	if err != nil || d != 2 {
		t.Fatalf("5-3 = %d, %v; want 2, nil", d, err)
	}
}

func TestAmountSubUnderflow(t *testing.T) {
	if _, err := Amount(3).Sub(5); err == nil {
		t.Fatal("3-5 did not underflow")
	}
}

func TestMustAddPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd did not panic on overflow")
		}
	}()
	Amount(^uint64(0)).MustAdd(1)
}

// Property: Add and Sub are inverses whenever Add succeeds.
func TestAmountAddSubInverseProperty(t *testing.T) {
	prop := func(a, b uint64) bool {
		sum, err := Amount(a).Add(Amount(b))
		if err != nil {
			return true // overflow: nothing to invert
		}
		back, err := sum.Sub(Amount(b))
		return err == nil && back == Amount(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric and consistent with equality.
func TestHashCompareProperty(t *testing.T) {
	prop := func(x, y [8]byte) bool {
		var a, b Hash
		copy(a[:], x[:])
		copy(b[:], y[:])
		c := a.Compare(b)
		return c == -b.Compare(a) && ((c == 0) == (a == b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTxIDString(t *testing.T) {
	if TxID(17).String() != "tx17" {
		t.Fatalf("TxID(17).String() = %q", TxID(17).String())
	}
}

func TestUintBytesBigEndian(t *testing.T) {
	b := Uint64Bytes(0x0102030405060708)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Uint64Bytes byte %d = %#x, want %#x", i, b[i], want[i])
		}
	}
	b4 := Uint32Bytes(0x01020304)
	want4 := []byte{1, 2, 3, 4}
	for i := range want4 {
		if b4[i] != want4[i] {
			t.Fatalf("Uint32Bytes byte %d = %#x, want %#x", i, b4[i], want4[i])
		}
	}
}
