// Package types defines the primitive value types shared by every layer of
// the system: account addresses, cryptographic hashes, currency amounts and
// transaction identifiers.
//
// The types mirror the simplified Ethereum model used by the paper: an
// Address uniquely identifies an account (client or contract), a Hash is a
// 32-byte SHA-256 digest, and Amount is an unsigned currency quantity
// (the analogue of wei).
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// AddressLen is the byte length of an Address. The paper's model uses
// Ethereum addresses (20 bytes); we keep the same width.
const AddressLen = 20

// HashLen is the byte length of a Hash (SHA-256).
const HashLen = 32

// Address uniquely identifies an account: either an external client or a
// deployed smart contract.
type Address [AddressLen]byte

// ZeroAddress is the all-zero address. Like Solidity's address(0) it is used
// as a sentinel for "no address" (for example, an unset delegate in Ballot).
var ZeroAddress Address

// AddressFromUint64 derives a deterministic address from an integer seed.
// Workload generators use it to mint stable per-actor addresses.
func AddressFromUint64(n uint64) Address {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], n)
	sum := sha256.Sum256(buf[:])
	var a Address
	copy(a[:], sum[:AddressLen])
	return a
}

// ParseAddress decodes a 0x-prefixed or bare hex string into an Address.
func ParseAddress(s string) (Address, error) {
	s = strings.TrimPrefix(s, "0x")
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Address{}, fmt.Errorf("parse address %q: %w", s, err)
	}
	if len(raw) != AddressLen {
		return Address{}, fmt.Errorf("parse address %q: got %d bytes, want %d", s, len(raw), AddressLen)
	}
	var a Address
	copy(a[:], raw)
	return a, nil
}

// IsZero reports whether a is the zero address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// Bytes returns a copy of the address bytes.
func (a Address) Bytes() []byte {
	out := make([]byte, AddressLen)
	copy(out, a[:])
	return out
}

// String renders the address as 0x-prefixed hex.
func (a Address) String() string { return "0x" + hex.EncodeToString(a[:]) }

// Short renders an abbreviated address (0x + first 4 bytes) for logs.
func (a Address) Short() string { return "0x" + hex.EncodeToString(a[:4]) }

// Compare orders addresses lexicographically, returning -1, 0 or +1.
func (a Address) Compare(b Address) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Hash is a 32-byte SHA-256 digest. It is used for block hashes, state roots
// and document hashcodes (EtherDoc).
type Hash [HashLen]byte

// ZeroHash is the all-zero hash.
var ZeroHash Hash

// HashBytes computes the SHA-256 digest of data.
func HashBytes(data []byte) Hash { return sha256.Sum256(data) }

// HashString computes the SHA-256 digest of a string.
func HashString(s string) Hash { return sha256.Sum256([]byte(s)) }

// HashConcat digests the concatenation of the given byte slices without
// intermediate allocation of the joined buffer.
func HashConcat(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// ParseHash decodes a 0x-prefixed or bare hex string into a Hash.
func ParseHash(s string) (Hash, error) {
	s = strings.TrimPrefix(s, "0x")
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Hash{}, fmt.Errorf("parse hash %q: %w", s, err)
	}
	if len(raw) != HashLen {
		return Hash{}, fmt.Errorf("parse hash %q: got %d bytes, want %d", s, len(raw), HashLen)
	}
	var h Hash
	copy(h[:], raw)
	return h, nil
}

// IsZero reports whether h is the zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// Bytes returns a copy of the hash bytes.
func (h Hash) Bytes() []byte {
	out := make([]byte, HashLen)
	copy(out, h[:])
	return out
}

// String renders the hash as 0x-prefixed hex.
func (h Hash) String() string { return "0x" + hex.EncodeToString(h[:]) }

// Short renders an abbreviated hash (0x + first 4 bytes) for logs.
func (h Hash) Short() string { return "0x" + hex.EncodeToString(h[:4]) }

// Compare orders hashes lexicographically, returning -1, 0 or +1.
func (h Hash) Compare(other Hash) int {
	for i := range h {
		switch {
		case h[i] < other[i]:
			return -1
		case h[i] > other[i]:
			return 1
		}
	}
	return 0
}

// Amount is a non-negative currency quantity, the analogue of wei.
// Arithmetic helpers return explicit errors on overflow/underflow so contract
// code can convert them into aborts instead of silently wrapping.
type Amount uint64

// Errors returned by Amount arithmetic.
var (
	ErrAmountOverflow  = errors.New("types: amount overflow")
	ErrAmountUnderflow = errors.New("types: amount underflow")
)

// Add returns a+b or ErrAmountOverflow.
func (a Amount) Add(b Amount) (Amount, error) {
	sum := a + b
	if sum < a {
		return 0, fmt.Errorf("%d + %d: %w", a, b, ErrAmountOverflow)
	}
	return sum, nil
}

// Sub returns a-b or ErrAmountUnderflow.
func (a Amount) Sub(b Amount) (Amount, error) {
	if b > a {
		return 0, fmt.Errorf("%d - %d: %w", a, b, ErrAmountUnderflow)
	}
	return a - b, nil
}

// MustAdd is Add that panics on overflow; for test fixtures only.
func (a Amount) MustAdd(b Amount) Amount {
	sum, err := a.Add(b)
	if err != nil {
		panic(err)
	}
	return sum
}

// String renders the amount in decimal.
func (a Amount) String() string { return fmt.Sprintf("%d", uint64(a)) }

// TxID identifies a transaction within a block. The miner assigns IDs by
// position in the submitted block (0-based), so a TxID doubles as the
// transaction's index in the block's original order.
type TxID uint32

// String renders the id as "tx<N>".
func (id TxID) String() string { return fmt.Sprintf("tx%d", uint32(id)) }

// Uint64Bytes encodes n in big-endian order; shared helper for hashing.
func Uint64Bytes(n uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], n)
	return buf[:]
}

// Uint32Bytes encodes n in big-endian order; shared helper for hashing.
func Uint32Bytes(n uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], n)
	return buf[:]
}
