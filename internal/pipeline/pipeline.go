// Package pipeline coordinates the staged block-production lifecycle:
// select → execute+seal → persist → publish, with the persist stage
// running asynchronously so the disk sync of block N overlaps the
// execution of block N+1 — the same overlap the paper extracts inside a
// block, applied across blocks.
//
// The Producer owns the pipeline invariants, not the stages themselves
// (the node owns those):
//
//   - a bounded in-flight window: at most Depth blocks may be sealed but
//     not yet durable; Admit blocks when the window is full, which is the
//     back-pressure that stops a fast executor from racing an unbounded
//     WAL queue;
//   - ordered completion: durability verdicts are handed to the producer
//     in height order (the group-commit writer guarantees it), so publish
//     hooks fire in height order too;
//   - fail-stop abort: the first persist failure latches the producer —
//     nothing new is admitted — and schedules the owner's abort callback,
//     which rolls back every sealed-not-durable block and requeues its
//     calls. A block sealed concurrently with the latch (the executor was
//     mid-seal when the verdict landed) is caught by a follow-up abort
//     pass: every failed completion schedules one, and passes run until
//     none are pending.
//
// A Producer with Depth 1 admits one block at a time, which is the
// synchronous path: seal, wait durable, publish, repeat.
package pipeline

import (
	"errors"
	"sync"
)

// ErrLatched reports an operation on a producer stopped by a persist
// failure (or shutdown); the underlying cause is wrapped.
var ErrLatched = errors.New("pipeline: producer latched")

// Producer enforces the pipeline window and failure discipline. The zero
// value is not usable; see New.
type Producer struct {
	mu   sync.Mutex
	cond *sync.Cond
	// depth is the window: max admitted-and-unresolved blocks.
	depth int
	// reserved counts admitted entries whose verdict (durable, failed or
	// released) has not landed yet.
	reserved int
	// err is the latched first failure.
	err error
	// noAbort suppresses abort passes (crash simulation: the owner is
	// gone, rolling back its world would be work for nobody).
	noAbort bool
	// onFail is the owner's abort pass: roll back every sealed-not-
	// durable block and requeue its calls. Runs on its own goroutine,
	// never under p.mu.
	onFail       func(cause error)
	abortPending int
	abortRunning bool
}

// New returns a producer with the given window depth (min 1). onFail is
// the owner's abort pass; it must tolerate running with nothing left to
// roll back (a follow-up pass after a clean sweep).
func New(depth int, onFail func(error)) *Producer {
	if depth < 1 {
		depth = 1
	}
	p := &Producer{depth: depth, onFail: onFail}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Depth returns the window size.
func (p *Producer) Depth() int { return p.depth }

// Admit reserves a window slot, blocking while the pipeline is full. It
// fails once the producer is latched — after a persist failure nothing
// new may build on the doomed suffix.
func (p *Producer) Admit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.err == nil && p.reserved >= p.depth {
		p.cond.Wait()
	}
	if p.err != nil {
		return p.latchedErrLocked()
	}
	p.reserved++
	return nil
}

// Release returns an admitted slot unused (selection found nothing, or
// sealing failed before the persist stage).
func (p *Producer) Release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reserved--
	p.cond.Broadcast()
}

// Complete resolves one admitted entry with its durability verdict. A
// failure latches the producer and schedules an abort pass; every
// subsequent failed completion schedules another, so an entry sealed
// while an earlier pass was already running is still rolled back.
func (p *Producer) Complete(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reserved--
	if err != nil {
		if p.err == nil {
			p.err = err
		}
		if !p.noAbort {
			p.abortPending++
			if !p.abortRunning {
				p.abortRunning = true
				go p.abortLoop()
			}
		}
	}
	p.cond.Broadcast()
}

// abortLoop runs owner abort passes until none are pending, then quits.
func (p *Producer) abortLoop() {
	for {
		p.mu.Lock()
		if p.abortPending == 0 {
			p.abortRunning = false
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		p.abortPending = 0
		cause := p.err
		p.mu.Unlock()
		p.onFail(cause)
	}
}

// Latch stops the producer with err without scheduling abort passes —
// the crash-simulation path, where the owner's state dies with it.
func (p *Producer) Latch(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		p.err = err
	}
	p.noAbort = true
	p.cond.Broadcast()
}

// Flush blocks until every admitted entry is resolved and any abort
// passes have finished, then reports the latched error, if any. After a
// latch it still waits the stragglers out: their verdicts arrive promptly
// (a latched writer fails everything queued), and returning before the
// last abort pass would hand the caller a world mid-rollback.
func (p *Producer) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.reserved > 0 || p.abortRunning || p.abortPending > 0 {
		p.cond.Wait()
	}
	if p.err != nil {
		return p.latchedErrLocked()
	}
	return nil
}

// Err reports the latched failure, if any.
func (p *Producer) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		return nil
	}
	return p.latchedErrLocked()
}

// InFlight reports admitted-and-unresolved entries (sealed-not-durable,
// plus at most one block currently in its select/seal stage).
func (p *Producer) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reserved
}

func (p *Producer) latchedErrLocked() error {
	return errors.Join(ErrLatched, p.err)
}
