package pipeline

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPipelineWindowBackPressure: Admit blocks once Depth entries are
// unresolved and unblocks as verdicts land.
func TestPipelineWindowBackPressure(t *testing.T) {
	p := New(2, func(error) {})
	if err := p.Admit(); err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	if err := p.Admit(); err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	admitted := make(chan struct{})
	go func() {
		if err := p.Admit(); err != nil {
			t.Errorf("admit 3: %v", err)
		}
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("third admit slipped past a full window")
	case <-time.After(20 * time.Millisecond):
	}
	p.Complete(nil)
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("admit still blocked after a completion freed the window")
	}
	p.Complete(nil)
	p.Complete(nil)
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if p.InFlight() != 0 {
		t.Fatalf("in-flight %d after flush", p.InFlight())
	}
}

// TestPipelineFailureLatchesAndAborts: the first failed verdict runs the
// abort pass, later admits fail with the latched cause, and a failure
// landing during an abort pass schedules another.
func TestPipelineFailureLatchesAndAborts(t *testing.T) {
	cause := errors.New("disk on fire")
	var passes atomic.Int32
	started := make(chan struct{})
	var release sync.WaitGroup
	release.Add(1)
	p := New(4, func(err error) {
		if !errors.Is(err, cause) {
			t.Errorf("abort pass got %v", err)
		}
		if passes.Add(1) == 1 {
			close(started)
			release.Wait() // first pass stalls until the straggler lands
		}
	})
	for i := 0; i < 3; i++ {
		if err := p.Admit(); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}
	p.Complete(cause) // first failure: pass 1 starts and stalls
	<-started
	p.Complete(cause) // straggler arrives mid-pass: must schedule pass 2
	release.Done()
	p.Complete(nil) // last entry resolves clean (already durable)
	if err := p.Flush(); !errors.Is(err, ErrLatched) || !errors.Is(err, cause) {
		t.Fatalf("flush: %v, want latched cause", err)
	}
	if err := p.Admit(); !errors.Is(err, ErrLatched) {
		t.Fatalf("admit after latch: %v", err)
	}
	if got := passes.Load(); got < 2 {
		t.Fatalf("%d abort passes, want >= 2 (straggler needs its own)", got)
	}
}

// TestPipelineLatchSuppressesAbort: the crash path stops the producer
// without running rollbacks.
func TestPipelineLatchSuppressesAbort(t *testing.T) {
	var passes atomic.Int32
	p := New(2, func(error) { passes.Add(1) })
	if err := p.Admit(); err != nil {
		t.Fatalf("admit: %v", err)
	}
	p.Latch(errors.New("killed"))
	p.Complete(errors.New("writer closed")) // verdict for the admitted entry
	if err := p.Flush(); !errors.Is(err, ErrLatched) {
		t.Fatalf("flush: %v", err)
	}
	if passes.Load() != 0 {
		t.Fatal("abort pass ran on the crash path")
	}
}

// TestPipelineReleaseFreesSlot: an admitted-but-unsealed slot (empty
// pool) goes back without a verdict.
func TestPipelineReleaseFreesSlot(t *testing.T) {
	p := New(1, func(error) {})
	if err := p.Admit(); err != nil {
		t.Fatalf("admit: %v", err)
	}
	p.Release()
	if err := p.Admit(); err != nil {
		t.Fatalf("re-admit: %v", err)
	}
	p.Complete(nil)
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}
