// Package codec provides the flat binary wire format primitives shared by
// the chain block codec and the persistence snapshot codec: a pooled
// scratch buffer, little-endian append helpers, a bounds-checked reader,
// and the common format header (magic, kind, version, body length).
//
// The format is deliberately dumb: length-prefixed, little-endian, no
// reflection, no varints. Every encoder appends into a single contiguous
// buffer (usually pooled), every decoder walks a byte slice with explicit
// bounds checks and never panics on malformed input. Encoding the same
// value always produces the same bytes, so round-tripping is
// byte-identical — the property the fuzz harnesses pin.
//
// # Stream layout
//
// Every flat stream starts with a 7-byte header:
//
//	offset 0: Magic (0xF0)
//	offset 1: kind  (KindBlock, KindSnapshot, KindChain)
//	offset 2: version (currently 1)
//	offset 3: uint32 little-endian body length
//	offset 7: body (exactly body-length bytes)
//
// Magic is chosen from the byte range [0x80, 0xF7] that no gob stream can
// begin with: gob frames every message with an unsigned varint byte count,
// whose first byte is either the count itself (0x01..0x7F) or the negated
// length of the count's big-endian bytes (0xF8..0xFF). Sniffing the first
// byte of a payload therefore distinguishes flat from legacy gob with
// zero ambiguity, which is how the one-release read-compat fallback works.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Magic is the first byte of every flat stream. See the package comment
// for why this byte can never begin a gob stream.
const Magic byte = 0xF0

// Stream kinds. A decoder checks the kind byte so a snapshot payload fed
// to the block decoder fails loudly instead of misparsing.
const (
	KindBlock    byte = 1
	KindSnapshot byte = 2
	KindChain    byte = 3
)

// Version is the current flat format version, bumped on any layout change.
const Version byte = 1

// HeaderLen is the byte length of the stream header.
const HeaderLen = 7

// Errors reported by the decoder primitives.
var (
	// ErrTruncated reports input that ends before the declared structure.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrFormat reports structurally invalid input: bad magic, wrong kind,
	// unsupported version, or a field value outside its domain.
	ErrFormat = errors.New("codec: invalid format")
)

// IsFlat reports whether a payload beginning with first is flat-encoded
// (as opposed to legacy gob). See the package comment for the sniffing
// argument.
func IsFlat(first byte) bool { return first == Magic }

// Buffer is a pooled scratch buffer for single-allocation encodes. Use
// Get/Release around an encode; the encoded bytes must be copied (or
// written out) before Release — holding b.B past Release aliases the next
// user's scratch space.
type Buffer struct {
	B []byte
}

var bufPool = sync.Pool{
	New: func() any { return &Buffer{B: make([]byte, 0, 4096)} },
}

// GetBuffer returns an empty pooled buffer.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// Release returns the buffer to the pool. The caller must not touch b or
// b.B afterwards.
func (b *Buffer) Release() {
	// Don't pool pathological one-off giants: a single 64 MB block would
	// otherwise pin 64 MB per P forever.
	if cap(b.B) > 8<<20 {
		b.B = nil
	}
	bufPool.Put(b)
}

// AppendHeader appends the 7-byte stream header with a zero body length
// and returns the extended slice plus the header's offset; FinishHeader
// patches the length once the body is appended.
func AppendHeader(dst []byte, kind byte) ([]byte, int) {
	start := len(dst)
	dst = append(dst, Magic, kind, Version, 0, 0, 0, 0)
	return dst, start
}

// FinishHeader patches the body length of the header at start, where the
// body is everything appended after the header.
func FinishHeader(buf []byte, start int) {
	binary.LittleEndian.PutUint32(buf[start+3:start+HeaderLen], uint32(len(buf)-start-HeaderLen))
}

// ParseHeader validates the header of a complete flat payload (magic,
// kind, version, and that the body length matches the remaining bytes
// exactly) and returns the body.
func ParseHeader(payload []byte, kind byte) ([]byte, error) {
	if len(payload) < HeaderLen {
		return nil, fmt.Errorf("%w: %d header bytes, need %d", ErrTruncated, len(payload), HeaderLen)
	}
	if payload[0] != Magic {
		return nil, fmt.Errorf("%w: magic 0x%02x, want 0x%02x", ErrFormat, payload[0], Magic)
	}
	if payload[1] != kind {
		return nil, fmt.Errorf("%w: stream kind %d, want %d", ErrFormat, payload[1], kind)
	}
	if payload[2] != Version {
		return nil, fmt.Errorf("%w: flat version %d, want %d", ErrFormat, payload[2], Version)
	}
	bodyLen := binary.LittleEndian.Uint32(payload[3:HeaderLen])
	if uint64(bodyLen) != uint64(len(payload)-HeaderLen) {
		return nil, fmt.Errorf("%w: declared body %d bytes, have %d", ErrFormat, bodyLen, len(payload)-HeaderLen)
	}
	return payload[HeaderLen:], nil
}

// Append helpers: little-endian, length-prefixed where variable.

// AppendU8 appends one byte.
func AppendU8(dst []byte, v byte) []byte { return append(dst, v) }

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendU32 appends v little-endian.
func AppendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendU64 appends v little-endian.
func AppendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendString appends a uint32 length prefix and the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uint32 length prefix and the raw bytes.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = AppendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// Reader walks a flat body with explicit bounds checks. All methods
// return ErrTruncated-wrapping errors instead of panicking, so arbitrary
// (fuzzer, network, disk) input is safe to feed in.
type Reader struct {
	data []byte
	off  int
}

// NewReader returns a reader over body.
func NewReader(body []byte) *Reader { return &Reader{data: body} }

// Remaining reports how many bytes are left unread.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Done returns an error unless the input was consumed exactly. Decoders
// call it last so trailing garbage fails the decode — required for the
// re-encode-byte-identical property.
func (r *Reader) Done() error {
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrFormat, n)
	}
	return nil
}

// Take returns the next n bytes as a subslice of the input (zero-copy;
// copy before retaining past the input's lifetime).
func (r *Reader) Take(n int) ([]byte, error) {
	if n < 0 || r.Remaining() < n {
		return nil, fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, r.Remaining())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// U8 reads one byte.
func (r *Reader) U8() (byte, error) {
	b, err := r.Take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Bool reads a strict bool: 0 or 1, anything else is ErrFormat (so a
// decoded value re-encodes to the identical byte).
func (r *Reader) Bool() (bool, error) {
	b, err := r.U8()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, fmt.Errorf("%w: bool byte 0x%02x", ErrFormat, b)
	}
	return b == 1, nil
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() (uint32, error) {
	b, err := r.Take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() (uint64, error) {
	b, err := r.Take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// String reads a uint32-length-prefixed string.
func (r *Reader) String() (string, error) {
	b, err := r.lengthPrefixed()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Bytes reads a uint32-length-prefixed byte slice (copied, safe to
// retain).
func (r *Reader) Bytes() ([]byte, error) {
	b, err := r.lengthPrefixed()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

func (r *Reader) lengthPrefixed() ([]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	return r.Take(int(n))
}

// Count reads a uint32 element count and rejects counts that could not
// possibly fit in the remaining input given a minimum encoded size per
// element — the guard that keeps a fuzzer's 4-billion-element header from
// provoking a giant allocation.
func (r *Reader) Count(minElemSize int) (int, error) {
	n, err := r.U32()
	if err != nil {
		return 0, err
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if int64(n)*int64(minElemSize) > int64(r.Remaining()) {
		return 0, fmt.Errorf("%w: %d elements declared, %d bytes remain", ErrFormat, n, r.Remaining())
	}
	return int(n), nil
}
