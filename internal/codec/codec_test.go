package codec

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	buf, start := AppendHeader(nil, KindBlock)
	buf = AppendU64(buf, 42)
	buf = AppendString(buf, "hello")
	FinishHeader(buf, start)

	body, err := ParseHeader(buf, KindBlock)
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	r := NewReader(body)
	if v, err := r.U64(); err != nil || v != 42 {
		t.Fatalf("U64 = %d, %v", v, err)
	}
	if s, err := r.String(); err != nil || s != "hello" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	good, start := AppendHeader(nil, KindBlock)
	FinishHeader(good, start)

	cases := map[string][]byte{
		"short":      good[:3],
		"bad magic":  append([]byte{0x00}, good[1:]...),
		"bad kind":   {Magic, KindSnapshot, Version, 0, 0, 0, 0},
		"bad ver":    {Magic, KindBlock, 99, 0, 0, 0, 0},
		"bad length": {Magic, KindBlock, Version, 5, 0, 0, 0},
		"trailing":   append(append([]byte(nil), good...), 0xAA),
	}
	for name, payload := range cases {
		if _, err := ParseHeader(payload, KindBlock); err == nil {
			t.Errorf("%s: ParseHeader accepted %x", name, payload)
		}
	}
}

func TestReaderBounds(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if _, err := r.U64(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("U64 on 3 bytes: %v", err)
	}
	r = NewReader([]byte{2})
	if _, err := r.Bool(); !errors.Is(err, ErrFormat) {
		t.Fatalf("Bool(2): %v", err)
	}
	// A declared count that cannot fit must be refused before allocation.
	huge := AppendU32(nil, 0xFFFFFFFF)
	r = NewReader(huge)
	if _, err := r.Count(4); !errors.Is(err, ErrFormat) {
		t.Fatalf("Count(huge): %v", err)
	}
}

// TestMagicNeverStartsGob pins the sniffing invariant: no gob stream can
// begin with the flat magic byte. Gob frames each message with an
// unsigned varint byte count whose first byte is in [0x01,0x7F] or
// [0xF8,0xFF]; Magic sits in the unreachable middle band.
func TestMagicNeverStartsGob(t *testing.T) {
	if Magic >= 0x01 && Magic <= 0x7F || Magic >= 0xF8 {
		t.Fatalf("Magic 0x%02x lies inside gob's reachable first-byte range", Magic)
	}
	samples := []any{uint32(1), "x", []byte{0xF0, 0xF0}, struct{ A, B uint64 }{1, 2}}
	for _, v := range samples {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatalf("gob encode %T: %v", v, err)
		}
		if IsFlat(buf.Bytes()[0]) {
			t.Fatalf("gob stream for %T begins with the flat magic byte", v)
		}
	}
}

func TestBufferPoolReuse(t *testing.T) {
	b := GetBuffer()
	b.B = append(b.B, 1, 2, 3)
	b.Release()
	c := GetBuffer()
	if len(c.B) != 0 {
		t.Fatalf("pooled buffer not reset: len %d", len(c.B))
	}
	c.Release()
}
