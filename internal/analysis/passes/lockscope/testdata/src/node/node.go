// Package node is a lockscope fixture: a mutex named exactly "mu" is
// the short-scope bookkeeping lock and must not be held across blocking
// work, while releasing before the blocking call is fine and a
// select with a default never blocks.
package node

import (
	"sync"
	"time"
)

// T carries the checked short-scope lock.
type T struct {
	mu sync.Mutex
}

// Sleepy blocks on the clock while holding the bookkeeping lock.
func (t *T) Sleepy() {
	t.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding t.mu`
	t.mu.Unlock()
}

// Send parks on an unbuffered channel under the lock.
func (t *T) Send(ch chan int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch <- 1 // want `channel send while holding t.mu`
}

// Good releases before blocking: no finding.
func (t *T) Good() {
	t.mu.Lock()
	n := 1
	_ = n
	t.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// TryNotify uses a non-blocking send: select with default never parks,
// so holding mu across it is fine.
func (t *T) TryNotify(ch chan int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}
