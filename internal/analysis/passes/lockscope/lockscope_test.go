package lockscope_test

import (
	"testing"

	"contractstm/internal/analysis/analysistest"
	"contractstm/internal/analysis/passes/lockscope"
)

func TestLockscope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockscope.Analyzer, "node")
}
