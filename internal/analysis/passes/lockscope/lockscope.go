// Package lockscope enforces the repo's two-tier mutex convention:
// a mutex field or variable named exactly "mu" is a short-scope
// bookkeeping lock and must never be held across engine execution,
// persistence I/O or a blocking channel operation.
//
// The convention comes from the node's mu/execMu split (PR 1): status
// queries must stay responsive while a block mines, so node.mu guards
// only cheap in-memory bookkeeping while execMu — deliberately NOT
// named "mu" — serializes the long world-mutating work. The pass makes
// the naming convention load-bearing: name a lock "mu" and chainvet
// polices its scope; name it anything else (execMu, routeMu) and you
// have declared it a long-hold lock.
//
// Blocking operations are a curated set (see blockingCall):
//
//   - channel sends, receives, range-over-channel, and selects without
//     a default clause ((*sync.Cond).Wait is exempt — it releases the
//     lock it guards; a select WITH default is non-blocking by
//     construction, the event-broker idiom);
//   - exported calls into the execution packages engine, miner and
//     validator — a block execution is never an "instant";
//   - the persist.Log / persist.Writer methods that reach an fsync, and
//     the os.File write/sync surface;
//   - time.Sleep, sync.WaitGroup.Wait, and the cooperative scheduler's
//     Thread.Park.
//
// The analysis is intra-procedural and flow-aware per function: Lock()
// opens a window, Unlock() closes it, defer Unlock() keeps it open to
// the end of the function, and every branch of if/switch/select is
// walked with its own copy of the held set. Package persist itself is
// exempt: persist.Log.mu IS the I/O-serialization lock — its whole job
// is to be held across the fsync — and the node-side rule (mirror hot
// fields into atomics rather than call into the Log under mu) is what
// this pass enforces everywhere else.
package lockscope

import (
	"go/ast"
	"go/types"
	"strings"

	"contractstm/internal/analysis"
)

// Analyzer is the lockscope pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "forbid holding a short-scope \"mu\" mutex across execution, I/O or blocking channel ops",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.PkgBase() == "persist" {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					newChecker(pass).block(fn.Body, newHeld())
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					newChecker(pass).block(fn.Body, newHeld())
				}
				return false // the literal's own walk covers its body
			}
			return true
		})
	}
	return nil
}

// held is the set of locked "mu" expressions at a program point, keyed
// by the rendered receiver expression ("n.mu", "w.mu", "mu").
type held struct {
	locks map[string]bool
}

func newHeld() *held { return &held{locks: map[string]bool{}} }

func (h *held) clone() *held {
	c := newHeld()
	for k := range h.locks {
		c.locks[k] = true
	}
	return c
}

func (h *held) any() (string, bool) {
	for k := range h.locks {
		return k, true
	}
	return "", false
}

// merge keeps a lock held if it is held on either branch — the pass
// reports may-hold, the conservative direction for a correctness lint.
func (h *held) merge(o *held) {
	for k := range o.locks {
		h.locks[k] = true
	}
}

type checker struct {
	pass     *analysis.Pass
	reported map[ast.Node]bool
}

func newChecker(pass *analysis.Pass) *checker {
	return &checker{pass: pass, reported: map[ast.Node]bool{}}
}

// block walks stmts in order, threading the held set through, and
// returns the set at the end of the block.
func (c *checker) block(b *ast.BlockStmt, h *held) *held {
	for _, stmt := range b.List {
		h = c.stmt(stmt, h)
	}
	return h
}

func (c *checker) stmt(s ast.Stmt, h *held) *held {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if name, ok := c.lockOp(s.X); ok {
			h.locks[name] = true
			return h
		}
		if name, ok := c.unlockOp(s.X); ok {
			delete(h.locks, name)
			return h
		}
		c.expr(s.X, h)
	case *ast.DeferStmt:
		if name, ok := c.unlockOp(s.Call); ok {
			// defer mu.Unlock(): the lock stays held to the end of the
			// function; the window is the whole remaining body.
			_ = name
			return h
		}
		c.expr(s.Call, h)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, h)
		}
		for _, e := range s.Lhs {
			c.expr(e, h)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, h)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			h = c.stmt(s.Init, h)
		}
		c.expr(s.Cond, h)
		then := c.block(s.Body, h.clone())
		els := h.clone()
		if s.Else != nil {
			els = c.stmt(s.Else, els)
		}
		then.merge(els)
		return then
	case *ast.BlockStmt:
		return c.block(s, h)
	case *ast.ForStmt:
		if s.Init != nil {
			h = c.stmt(s.Init, h)
		}
		if s.Cond != nil {
			c.expr(s.Cond, h)
		}
		body := c.block(s.Body, h.clone())
		h.merge(body)
		return h
	case *ast.RangeStmt:
		// Ranging over a channel blocks on each receive.
		if t := c.pass.TypesInfo.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				c.blockingOp(s, h, "range over channel")
			}
		}
		c.expr(s.X, h)
		body := c.block(s.Body, h.clone())
		h.merge(body)
		return h
	case *ast.SendStmt:
		c.blockingOp(s, h, "channel send")
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			c.blockingOp(s, h, "select without default")
		}
		out := newHeld()
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := h.clone()
			for _, st := range cc.Body {
				branch = c.stmt(st, branch)
			}
			out.merge(branch)
		}
		out.merge(h)
		return out
	case *ast.SwitchStmt:
		if s.Init != nil {
			h = c.stmt(s.Init, h)
		}
		if s.Tag != nil {
			c.expr(s.Tag, h)
		}
		return c.caseClauses(s.Body, h)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			h = c.stmt(s.Init, h)
		}
		return c.caseClauses(s.Body, h)
	case *ast.GoStmt:
		// The goroutine body runs without the caller's locks; its
		// literal is analyzed independently by run.
		for _, arg := range s.Call.Args {
			c.expr(arg, h)
		}
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, h)
	case *ast.IncDecStmt:
		c.expr(s.X, h)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, h)
					}
				}
			}
		}
	}
	return h
}

func (c *checker) caseClauses(body *ast.BlockStmt, h *held) *held {
	out := h.clone()
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := h.clone()
		for _, st := range cc.Body {
			branch = c.stmt(st, branch)
		}
		out.merge(branch)
	}
	return out
}

// expr scans an expression for blocking operations while locks are
// held. Function literals are skipped — they run when called, not
// here — except that calling one inline would be caught as a call.
func (c *checker) expr(e ast.Expr, h *held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				c.blockingOp(n, h, "channel receive")
			}
		case *ast.CallExpr:
			if why, ok := c.blockingCall(n); ok {
				c.blockingOp(n, h, why)
			}
		}
		return true
	})
}

// blockingOp reports one finding if any "mu" is held at the operation.
func (c *checker) blockingOp(n ast.Node, h *held, what string) {
	if c.reported[n] {
		return
	}
	if name, ok := h.any(); ok {
		c.reported[n] = true
		c.pass.Reportf(n.Pos(),
			"%s while holding %s: a mutex named \"mu\" is a short-scope bookkeeping lock and must not be held across execution, I/O or blocking channel ops (split it like node.mu/execMu, or rename it to declare it long-hold)",
			what, name)
	}
}

// lockOp matches `<expr>.mu.Lock()` / `.RLock()` (or a bare local
// `mu.Lock()`), returning the rendered lock expression.
func (c *checker) lockOp(e ast.Expr) (string, bool) {
	return c.muCall(e, "Lock", "RLock")
}

func (c *checker) unlockOp(e ast.Expr) (string, bool) {
	return c.muCall(e, "Unlock", "RUnlock")
}

func (c *checker) muCall(e ast.Expr, names ...string) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return "", false
	}
	// The receiver must be something named exactly "mu" of a sync mutex
	// type: a field selector (n.mu) or a plain identifier.
	recv := sel.X
	var name string
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		if r.Sel.Name != "mu" {
			return "", false
		}
		name = renderExpr(r)
	case *ast.Ident:
		if r.Name != "mu" {
			return "", false
		}
		name = r.Name
	default:
		return "", false
	}
	t := c.pass.TypesInfo.TypeOf(recv)
	if t == nil || !isSyncMutex(t) {
		return "", false
	}
	return name, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isSyncMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// renderExpr prints a selector chain like "n.mu"; unrenderable parts
// collapse to "_".
func renderExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderExpr(e.X)
	case *ast.StarExpr:
		return renderExpr(e.X)
	}
	return "_"
}

// persistBlocking are the persist.Log / persist.Writer methods that can
// reach an fsync or otherwise stall on the disk or the writer queue.
var persistBlocking = map[string]bool{
	"Append": true, "AppendGroup": true, "WriteSnapshot": true,
	"InstallSnapshot": true, "EnsureGenesis": true, "SavePool": true,
	"TakePool": true, "Blocks": true, "Close": true, "Open": true,
	"Flush": true,
}

// osFileBlocking is the os.File surface that reaches the disk.
var osFileBlocking = map[string]bool{
	"Sync": true, "Write": true, "WriteString": true, "WriteAt": true,
	"Read": true, "ReadAt": true, "ReadFrom": true, "Create": true,
	"OpenFile": true, "Rename": true, "WriteFile": true, "ReadFile": true,
	"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true,
}

// blockingCall classifies a call as blocking per the curated set.
func (c *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	var fn *types.Func
	if ok {
		fn, _ = c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	} else if id, isIdent := call.Fun.(*ast.Ident); isIdent {
		fn, _ = c.pass.TypesInfo.Uses[id].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Path()
	name := fn.Name()
	base := pkg
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	switch base {
	case "engine", "miner", "validator":
		// No std package shares these base names, so base matching is
		// unambiguous — and it lets the analysistest fixtures stand in
		// for the real packages.
		if fn.Exported() {
			return "call into block execution (" + base + "." + name + ")", true
		}
	case "persist":
		if persistBlocking[name] {
			return "persistence I/O (persist." + recvName(fn) + name + ")", true
		}
	}
	switch pkg {
	case "os":
		if osFileBlocking[name] {
			return "file I/O (os." + recvName(fn) + name + ")", true
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		// Cond.Wait is deliberately NOT here: it releases the mutex it
		// guards for the duration of the wait.
		if name == "Wait" && strings.Contains(recvString(fn), "WaitGroup") {
			return "sync.WaitGroup.Wait", true
		}
	}
	// The cooperative scheduler's park point (internal/runtime; the std
	// runtime package exports no Park, so the name is unambiguous).
	if base == "runtime" && name == "Park" {
		return "Thread.Park", true
	}
	return "", false
}

// recvName renders "Type)." for methods, "" for functions — purely for
// readable findings.
func recvName(fn *types.Func) string {
	if s := recvString(fn); s != "" {
		return s + "."
	}
	return ""
}

func recvString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
