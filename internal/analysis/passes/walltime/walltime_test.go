package walltime_test

import (
	"testing"

	"contractstm/internal/analysis/analysistest"
	"contractstm/internal/analysis/passes/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), walltime.Analyzer, "miner")
}
