// Package walltime bans wall-clock and randomness reads in
// consensus-critical packages.
//
// Mining and validation must derive the identical (S, H, profiles)
// schedule from the identical block on every node: a time.Now read or a
// math/rand draw inside engine, stm, sched, chain, validator or miner
// is a value no two replicas agree on, so anything it influences — a
// retry decision, a selection order, an encoded field — is a consensus
// split waiting for load to expose it. Benchmarks and tests are exempt
// (_test.go files are skipped); production timing belongs in the stats
// and bench layers, which sit outside the replayed core.
package walltime

import (
	"go/ast"
	"go/types"

	"contractstm/internal/analysis"
)

// Analyzer is the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/time.Since/time.Until and math/rand in consensus-critical packages",
	Run:  run,
}

// bannedTimeFuncs are the wall-clock reads; time.Duration arithmetic
// and time.Sleep (which never feeds a value into a schedule) stay
// legal.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.ConsensusCritical(pass.PkgBase()) {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(),
					"consensus-critical package %s imports %s: randomness cannot appear in a deterministically replayed schedule",
					pass.PkgBase(), imp.Path.Value)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && bannedTimeFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s in consensus-critical package %s: wall-clock values differ across replicas and must not influence schedules, commitments or encodings",
					fn.Name(), pass.PkgBase())
			}
			return true
		})
	}
	return nil
}
