// Package miner is a walltime fixture: wall-clock reads and randomness
// must not reach consensus-critical code, while plain time arithmetic
// on caller-provided values is fine.
package miner

import (
	"math/rand" // want `consensus-critical package miner imports "math/rand"`
	"time"
)

// Seed mixes wall time and randomness into a schedule seed.
func Seed() int64 {
	return time.Now().UnixNano() + int64(rand.Int()) // want `time.Now in consensus-critical package miner`
}

// Span works on values handed in by the caller: no finding.
func Span(a, b time.Time) time.Duration {
	return b.Sub(a)
}
