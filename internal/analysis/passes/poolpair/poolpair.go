// Package poolpair pairs sync.Pool acquisitions with their releases.
//
// PR 6 moved the hot path onto pooled objects — codec scratch buffers,
// OCC overlays, trace-seen maps. A pooled object that misses its
// Put/Release on some path is not a leak the GC forgives cheaply: it
// silently re-allocates on every block and erodes the 0 allocs/op SLO
// the perf CI lane pins. Worse, a *double* release aliases scratch
// space across users; the discipline only works if every acquire has
// exactly one owner responsible for exactly one release.
//
// The pass checks, per function, that every pooled acquisition either:
//
//   - transfers ownership out (returned, stored into a field, global,
//     map/slice element, or passed to another function — including the
//     acquire-helper idiom where a constructor returns the pooled
//     object and its CALLERS carry the obligation), or
//   - is released on every return path: a defer of Release/Recycle/
//     Put, or a release call dominating each return.
//
// Acquisitions are (*sync.Pool).Get calls, calls to same-package
// functions that return a Get result, and the curated cross-package
// acquirers (codec.GetBuffer). The release vocabulary is Release,
// Recycle, and (*sync.Pool).Put. The pass runs in the pooled packages:
// codec, stm, chain, persist.
package poolpair

import (
	"go/ast"
	"go/types"

	"contractstm/internal/analysis"
)

// Analyzer is the poolpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc:  "require a Put/Release on every path for each sync.Pool-backed acquisition",
	Run:  run,
}

// pooledPackages are where the pooled-object discipline binds.
var pooledPackages = map[string]bool{
	"codec": true, "stm": true, "chain": true, "persist": true,
}

// crossPackageAcquirers maps fully qualified function names to true:
// cross-package helpers known to hand out pooled objects.
var crossPackageAcquirers = map[string]bool{
	"contractstm/internal/codec.GetBuffer": true,
	// Fixture stand-in so the analysistest corpus can exercise the
	// cross-package path without importing the real codec.
	"codec.GetBuffer": true,
}

// releaseNames are the methods that return an object to its pool.
var releaseNames = map[string]bool{
	"Release": true, "Recycle": true, "Put": true,
}

func run(pass *analysis.Pass) error {
	if !pooledPackages[pass.PkgBase()] {
		return nil
	}
	acq := localAcquirers(pass)
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, acq, fn.Body)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					checkFunc(pass, acq, fn.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// localAcquirers finds this package's functions that return a pooled
// object: any function whose body contains a (*sync.Pool).Get call and
// that has at least one result. Their callers inherit the release
// obligation.
func localAcquirers(pass *analysis.Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isPoolGet(pass.TypesInfo, call) {
					found = true
				}
				return !found
			})
			if !found {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = true
			}
		}
	}
	return out
}

// isPoolGet matches a direct (*sync.Pool).Get call.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return true
}

// isAcquire reports whether call yields a pooled object this function
// must account for.
func isAcquire(pass *analysis.Pass, acq map[*types.Func]bool, call *ast.CallExpr) bool {
	if isPoolGet(pass.TypesInfo, call) {
		return true
	}
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return false
	}
	if acq[fn] {
		return true
	}
	if fn.Pkg() != nil && crossPackageAcquirers[fn.Pkg().Path()+"."+fn.Name()] {
		return true
	}
	return false
}

// checkFunc verifies each acquisition bound to a local variable in one
// function body.
func checkFunc(pass *analysis.Pass, acq map[*types.Func]bool, body *ast.BlockStmt) {
	// Find `v := acquire()` / `v = acquire()` bindings at any depth.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isAcquire(pass, acq, call) {
			return true
		}
		// Type-assertion wrappers (pool.Get().(*T)) appear as the call
		// nested in the assert; handled below via the assert branch.
		if len(as.Lhs) != 1 {
			return true
		}
		v := bindingVar(pass.TypesInfo, as.Lhs[0])
		if v == nil {
			// Bound to a field/index: ownership escapes into the
			// structure, whose lifecycle owns the release.
			return true
		}
		verify(pass, body, as, v, call)
		return true
	})
	// And assert-wrapped bindings: v := pool.Get().(*T).
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		ta, ok := as.Rhs[0].(*ast.TypeAssertExpr)
		if !ok {
			return true
		}
		call, ok := ta.X.(*ast.CallExpr)
		if !ok || !isAcquire(pass, acq, call) {
			return true
		}
		v := bindingVar(pass.TypesInfo, as.Lhs[0])
		if v == nil {
			return true
		}
		verify(pass, body, as, v, call)
		return true
	})
}

// bindingVar resolves the left-hand side to a plain local variable, or
// nil when the target is a field, index or global (escape).
func bindingVar(info *types.Info, lhs ast.Expr) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() || v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

// verify walks the function body after the acquisition and reports if
// some path reaches a return (or the end of the function) with the
// object neither released nor escaped.
func verify(pass *analysis.Pass, body *ast.BlockStmt, bind *ast.AssignStmt, v *types.Var, acqCall *ast.CallExpr) {
	spine := findSpine(body, bind)
	if spine == nil {
		return
	}
	w := &walker{pass: pass, v: v, bind: bind}
	st := state{}
	var last ast.Stmt = bind
	// Walk forward from the binding: first the remainder of its own
	// block, then — popping outward — the remainder of each enclosing
	// block after the statement that contained it, out to the end of
	// the function body.
	for level := len(spine) - 1; level >= 0; level-- {
		fr := spine[level]
		rest := fr.block.List[fr.idx+1:]
		for _, s := range rest {
			st = w.stmt(s, st)
			last = s
		}
	}
	if w.leaked {
		report(pass, acqCall, v)
		return
	}
	if !st.resolved && !terminates(last) {
		// Fell off the end of the function unresolved.
		report(pass, acqCall, v)
	}
}

// frame is one level of the binding's enclosing-block chain.
type frame struct {
	block *ast.BlockStmt
	idx   int
}

// findSpine returns the chain of blocks from the function body down to
// the statement list directly containing bind, with the index of the
// (possibly transitively) containing statement at each level.
func findSpine(body *ast.BlockStmt, bind ast.Stmt) []frame {
	for i, s := range body.List {
		if s == bind {
			return []frame{{body, i}}
		}
		var sub []frame
		ast.Inspect(s, func(n ast.Node) bool {
			if sub != nil {
				return false
			}
			if b, ok := n.(*ast.BlockStmt); ok {
				if sp := findSpine(b, bind); sp != nil {
					sub = sp
					return false
				}
			}
			return true
		})
		if sub != nil {
			return append([]frame{{body, i}}, sub...)
		}
	}
	return nil
}

// terminates reports whether control cannot fall out of the bottom of
// stmt — enough precision to silence the end-of-function check.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		if n := len(s.List); n > 0 {
			return terminates(s.List[n-1])
		}
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		thenT := false
		if n := len(s.Body.List); n > 0 {
			thenT = terminates(s.Body.List[n-1])
		}
		return thenT && terminates(s.Else)
	}
	return false
}

func report(pass *analysis.Pass, acqCall *ast.CallExpr, v *types.Var) {
	pass.Reportf(acqCall.Pos(),
		"pooled object %s is not released on every path: add `defer %s.Release()` (or Put/Recycle), or transfer ownership out — a missed release re-allocates on the hot path every block",
		v.Name(), v.Name())
}

// state is the per-path tracking: resolved means the object has been
// released or has escaped on this path.
type state struct {
	resolved bool
}

type walker struct {
	pass *analysis.Pass
	v    *types.Var
	bind *ast.AssignStmt
	// leaked records that some return was reached unresolved.
	leaked bool
}

// block walks a statement list, threading path state.
func (w *walker) block(b *ast.BlockStmt, st state) state {
	for _, s := range b.List {
		st = w.stmt(s, st)
	}
	return st
}

func (w *walker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.DeferStmt:
		if w.isRelease(s.Call) {
			st.resolved = true
		} else if w.mentions(s.Call) {
			// Deferred call consuming v (e.g. defer save(v)): escape.
			st.resolved = true
		}
		return st
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.isRelease(call) || w.mentionsCallArgs(call) {
				st.resolved = true
			}
		}
		return st
	case *ast.AssignStmt:
		// v assigned into a field/global/map/slice, or consumed by a
		// call on the RHS: escape. v reassigned: the old object is
		// gone — treat reassignment from another acquire as a fresh
		// binding handled by its own verify.
		for _, rhs := range s.Rhs {
			if w.mentionsExpr(rhs) {
				st.resolved = true
			}
		}
		return st
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if w.mentionsExpr(r) {
				st.resolved = true
			}
		}
		if !st.resolved {
			w.leaked = true
		}
		return st
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		then := w.block(s.Body, st)
		els := st
		if s.Else != nil {
			els = w.stmt(s.Else, els)
		}
		// Resolved after the if only if resolved on both arms (an arm
		// ending in return doesn't rejoin, but merging with && is the
		// conservative direction either way).
		return state{resolved: then.resolved && els.resolved}
	case *ast.BlockStmt:
		return w.block(s, st)
	case *ast.ForStmt:
		w.block(s.Body, st)
		return st
	case *ast.RangeStmt:
		w.block(s.Body, st)
		return st
	case *ast.SwitchStmt:
		return w.clauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		return w.clauses(s.Body, st)
	case *ast.SelectStmt:
		return w.clauses(s.Body, st)
	case *ast.GoStmt:
		if w.mentions(s.Call) {
			st.resolved = true // handed to a goroutine: its problem now
		}
		return st
	case *ast.SendStmt:
		if w.mentionsExpr(s.Value) {
			st.resolved = true
		}
		return st
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	}
	return st
}

func (w *walker) clauses(body *ast.BlockStmt, st state) state {
	all := true
	any := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cc := clause.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
		case *ast.CommClause:
			stmts = cc.Body
		default:
			continue
		}
		branch := st
		for _, s := range stmts {
			branch = w.stmt(s, branch)
		}
		all = all && branch.resolved
		any = true
	}
	if !any {
		return st
	}
	return state{resolved: st.resolved || all}
}

// isRelease matches v.Release()/v.Recycle(), pool.Put(v), or
// Release(v)-shaped calls.
func (w *walker) isRelease(call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && releaseNames[sel.Sel.Name] {
		if w.isV(sel.X) {
			return true
		}
		for _, a := range call.Args {
			if w.isV(a) {
				return true
			}
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok && releaseNames[id.Name] {
		for _, a := range call.Args {
			if w.isV(a) {
				return true
			}
		}
	}
	return false
}

func (w *walker) isV(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	return w.pass.TypesInfo.ObjectOf(id) == w.v
}

// mentionsCallArgs reports whether v is passed to a (non-release) call:
// ownership transfer.
func (w *walker) mentionsCallArgs(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if w.mentionsExpr(a) {
			return true
		}
	}
	// A method call ON v that is not a release (e.g. v.Apply()) is not
	// an escape; the object stays owned here.
	return false
}

func (w *walker) mentions(call *ast.CallExpr) bool { return w.mentionsCallArgs(call) }

// mentionsExpr reports whether v appears anywhere in e.
func (w *walker) mentionsExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.pass.TypesInfo.ObjectOf(id) == w.v {
			found = true
		}
		return !found
	})
	return found
}
