package poolpair_test

import (
	"testing"

	"contractstm/internal/analysis/analysistest"
	"contractstm/internal/analysis/passes/poolpair"
)

func TestPoolpair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolpair.Analyzer, "codec")
}
