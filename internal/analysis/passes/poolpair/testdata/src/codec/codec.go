// Package codec is a poolpair fixture: every pooled acquisition must be
// released on every path, or ownership must provably leave the function
// (returned, deferred, handed to another call).
package codec

import "sync"

// Buffer is the pooled scratch object.
type Buffer struct{ b []byte }

var bufPool = sync.Pool{New: func() interface{} { return new(Buffer) }}

// GetBuffer is the package's acquire helper; its callers inherit the
// release obligation.
func GetBuffer() *Buffer { return bufPool.Get().(*Buffer) }

// Release returns the buffer to the pool.
func (b *Buffer) Release() { bufPool.Put(b) }

// Leak releases on one arm only: the fall-through path drops the object.
func Leak(cond bool) {
	b := GetBuffer() // want `pooled object b is not released on every path`
	if cond {
		b.Release()
	}
}

// DirectLeak acquires straight from the pool and only conditionally
// returns it.
func DirectLeak(cond bool) {
	b := bufPool.Get().(*Buffer) // want `pooled object b is not released on every path`
	if cond {
		bufPool.Put(b)
	}
}

// Balanced defers the release: every return path is covered.
func Balanced(cond bool) int {
	b := GetBuffer()
	defer b.Release()
	if cond {
		return 1
	}
	return len(b.b)
}

// Handoff transfers ownership to the caller: its obligation now.
func Handoff() *Buffer {
	return GetBuffer()
}
