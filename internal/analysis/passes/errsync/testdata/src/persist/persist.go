// Package persist is an errsync fixture: Close/Sync errors are the only
// crash-safety signal the durability layer gets, so dropping one on the
// floor must fire; checking it or recording the discard with `_ =` must
// not.
package persist

import "os"

// Drop silently discards the Close error.
func Drop(f *os.File) {
	f.Close() // want `Close result silently discarded`
}

// DropSync silently discards the Sync error.
func DropSync(f *os.File) {
	f.Sync() // want `Sync result silently discarded`
}

// Checked propagates both: no finding.
func Checked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// Deliberate records the discard: no finding.
func Deliberate(f *os.File) {
	_ = f.Close()
}
