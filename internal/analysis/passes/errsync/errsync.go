// Package errsync forbids silently discarded Close/Sync/Flush errors
// in the persistence layer.
//
// The durability story ("publish only after durable") rests on fsync
// results actually being observed: an os.File Sync or Close whose error
// vanishes in an expression statement can acknowledge a block the disk
// never accepted. In package persist every error-returning Close, Sync
// or Flush call must be checked or explicitly discarded with `_ =` —
// the assignment is the in-tree record that dropping the error was a
// decision, typically on a cleanup path where a prior error already
// carries the failure. Deferred calls are exempt: `defer f.Close()` on
// an error path is the idiom for releasing descriptors whose write
// errors have already been surfaced by Sync.
package errsync

import (
	"go/ast"
	"go/types"

	"contractstm/internal/analysis"
)

// Analyzer is the errsync pass.
var Analyzer = &analysis.Analyzer{
	Name: "errsync",
	Doc:  "forbid unchecked Close/Sync/Flush error returns in the persistence layer",
	Run:  run,
}

// watched are the fsync-bearing method names whose errors must not be
// dropped on the floor.
var watched = map[string]bool{
	"Close": true,
	"Sync":  true,
	"Flush": true,
}

func run(pass *analysis.Pass) error {
	if pass.PkgBase() != "persist" {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !watched[sel.Sel.Name] {
				return true
			}
			if !returnsError(pass.TypesInfo, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s result silently discarded in the persistence layer: check it, or write `_ = x.%s()` to record the drop as deliberate",
				sel.Sel.Name, sel.Sel.Name)
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's (only or last) result is an
// error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
