package errsync_test

import (
	"testing"

	"contractstm/internal/analysis/analysistest"
	"contractstm/internal/analysis/passes/errsync"
)

func TestErrsync(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errsync.Analyzer, "persist")
}
