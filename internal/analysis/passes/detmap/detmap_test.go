package detmap_test

import (
	"testing"

	"contractstm/internal/analysis/analysistest"
	"contractstm/internal/analysis/passes/detmap"
)

// TestDetmap covers the firing case plus the two non-firing idioms:
// collect-then-sort and keyless counting.
func TestDetmap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detmap.Analyzer, "engine")
}

// TestDetmapAllowDirective proves a justified //chainvet:allow silences
// the finding (the fixture carries no want and must stay silent).
func TestDetmapAllowDirective(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detmap.Analyzer, "stm")
}
