// Package detmap flags map iteration in consensus-critical packages.
//
// Go randomizes map iteration order per run. The paper's protocol
// requires the validator to reproduce the miner's (S, H, profiles)
// schedule bit-for-bit, so any map range whose element order can leak
// into a returned schedule, a commitment hash or a codec append is a
// consensus-splitting bug — two replicas would derive different bytes
// from the same block. Rather than attempt an unsound taint analysis,
// the pass flags EVERY map range in engine, stm, sched, chain,
// validator and miner, with two mechanical exemptions:
//
//   - collect-then-sort: the loop only accumulates into slices that are
//     later passed to sort.* / slices.Sort* in the same function (the
//     canonical deterministic-iteration idiom, e.g. Overlay.Apply);
//   - keyless ranges (`for range m`), which observe only the count.
//
// Anything else needs either a real fix (sorted keys) or a
// //chainvet:allow(detmap) directive whose justification proves the
// iteration order cannot reach a schedule, commitment or encoding —
// e.g. a pure ∀/∃ predicate over the elements.
package detmap

import (
	"go/ast"
	"go/types"

	"contractstm/internal/analysis"
)

// Analyzer is the detmap pass.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "flag nondeterministic map iteration in consensus-critical packages unless collect-then-sort",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.ConsensusCritical(pass.PkgBase()) {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc flags the map ranges in one function body. Nested function
// literals are visited by the outer Inspect as their own "functions";
// their ranges are checked against the literal's body, which is where
// a sort call would have to sit to make the idiom local.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Nested literals are checked as their own functions by the
			// outer walk; descending here would double-report.
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if rs.Key == nil && rs.Value == nil {
			// `for range m` observes only len(m): order-free.
			return true
		}
		if collectThenSort(pass, body, rs) {
			return true
		}
		pass.Reportf(rs.Pos(),
			"map iteration order is nondeterministic and this is consensus-critical package %s: iterate sorted keys, or annotate //chainvet:allow(detmap) with a proof the order cannot reach a schedule, commitment or encoding",
			pass.PkgBase())
		return true
	})
}

// collectThenSort reports whether every side effect of the range body
// is an append into collector slices that are each sorted later in the
// enclosing function — the sorted-key idiom:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)
func collectThenSort(pass *analysis.Pass, body *ast.BlockStmt, rs *ast.RangeStmt) bool {
	collectors := collectorVars(pass, rs)
	if len(collectors) == 0 {
		return false
	}
	sorted := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		fn, ok := calleeFunc(pass.TypesInfo, call)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if v, ok := asVar(pass.TypesInfo, call.Args[0]); ok {
			sorted[v] = true
		}
		return true
	})
	for v := range collectors {
		if !sorted[v] {
			return false
		}
	}
	return true
}

// collectorVars returns the variables the range body accumulates into
// via `x = append(x, ...)`, provided the body does nothing else: any
// other statement disqualifies the idiom (a call, a hash write, a
// second assignment could all observe the order).
func collectorVars(pass *analysis.Pass, rs *ast.RangeStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return nil
		}
		v, ok := asVar(pass.TypesInfo, as.Lhs[0])
		if !ok {
			return nil
		}
		out[v] = true
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// calleeFunc resolves a call's static callee, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, ok := info.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		return fn, ok
	case *ast.IndexExpr: // generic instantiation, e.g. slices.SortFunc[...]
		return calleeFunc(info, &ast.CallExpr{Fun: fun.X})
	}
	return nil, false
}

// asVar resolves an expression to the variable it names, if it is a
// plain identifier.
func asVar(info *types.Info, e ast.Expr) (*types.Var, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	return v, ok
}
