// Package stm is a detmap fixture for the suppression directive: the
// iteration below would fire, but a justified //chainvet:allow silences
// it, so this package expects zero diagnostics (and the directive is
// used, so no unused-directive finding either).
package stm

// AllTrue is an order-insensitive ∀-predicate over the map's values.
func AllTrue(m map[string]bool) bool {
	//chainvet:allow(detmap) conjunction over values: the verdict is identical under any iteration order and nothing per-element escapes
	for _, v := range m {
		if !v {
			return false
		}
	}
	return true
}
