// Package engine is a detmap fixture: its import-path base matches a
// consensus-critical package, so raw map iteration that escapes must
// fire while the collect-then-sort idiom and keyless counting must not.
package engine

import "sort"

// BuildSchedule leaks raw iteration order into the returned schedule.
func BuildSchedule(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts before anything escapes: no finding.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count never touches element identity: keyless range, no finding.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
