// codec.go is the sanctioned read-compat gob fallback file for package
// chain: its import must not fire.
package chain

import "encoding/gob"

// Frame is the wire frame the fallback decoder registers.
type Frame struct{ N int }

func init() { gob.Register(Frame{}) }
