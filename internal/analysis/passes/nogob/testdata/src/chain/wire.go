// wire.go is NOT on the sanctioned list: a fresh gob import here is a
// new dependency on reflection-driven encoding and must fire.
package chain

import (
	"bytes"
	"encoding/gob" // want `new encoding/gob import in chain/wire.go`
)

// DecodeFrame decodes a frame the slow, forbidden way.
func DecodeFrame(b []byte) (Frame, error) {
	var f Frame
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f)
	return f, err
}
