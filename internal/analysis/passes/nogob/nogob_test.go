package nogob_test

import (
	"testing"

	"contractstm/internal/analysis/analysistest"
	"contractstm/internal/analysis/passes/nogob"
)

// TestNogob: the sanctioned fallback file imports gob silently, any
// other file in the same package fires.
func TestNogob(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nogob.Analyzer, "chain")
}
