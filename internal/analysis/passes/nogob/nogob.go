// Package nogob freezes the set of encoding/gob import sites.
//
// PR 6 made the flat binary codec the default wire format and demoted
// gob to a one-release read-compat fallback, confined to five
// sanctioned files. gob is reflection-driven and its output is not a
// stable function of the value alone (type registration order leaks
// into the stream), which is why it was retired from every consensus
// surface. This pass fails the build for any OTHER file importing
// encoding/gob, so the planned retirement shrinks the sanctioned list
// instead of silently growing new dependents.
package nogob

import (
	"path/filepath"

	"contractstm/internal/analysis"
)

// Analyzer is the nogob pass.
var Analyzer = &analysis.Analyzer{
	Name: "nogob",
	Doc:  "forbid encoding/gob imports outside the sanctioned read-compat fallback files",
	Run:  run,
}

// sanctioned maps package-path base -> file base names still allowed to
// import encoding/gob: the PR 6 fallback surface. Retiring gob means
// deleting entries here and watching the pass flag the stragglers.
var sanctioned = map[string]map[string]bool{
	"types":   {"gob.go": true},
	"persist": {"pool.go": true, "snapshot.go": true},
	"chain":   {"codec.go": true},
	"storage": {"persist.go": true},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.SourceFiles() {
		for _, imp := range f.Imports {
			if imp.Path.Value != `"encoding/gob"` {
				continue
			}
			file := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			if sanctioned[pass.PkgBase()][file] {
				continue
			}
			pass.Reportf(imp.Pos(),
				"new encoding/gob import in %s/%s: gob is a read-compat fallback confined to the sanctioned PR 6 files; encode with internal/codec instead",
				pass.PkgBase(), file)
		}
	}
	return nil
}
