// Package analysis is the core of chainvet, the repo's static-analysis
// suite: a deliberately small mirror of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) built on the
// standard library's go/ast and go/types, so the checker carries zero
// module dependencies.
//
// The suite machine-checks invariants that the design docs previously
// only stated in prose. The paper's protocol (PODC'17 Dickerson-
// Gazzillo-Herlihy-Koskinen) is only sound if validators replay the
// miner's happens-before schedule deterministically: any nondeterminism
// that leaks into a schedule, commitment hash or wire encoding is a
// consensus-splitting bug. The passes under internal/analysis/passes
// each encode one such invariant:
//
//	detmap    — no unsorted map iteration in consensus-critical packages
//	walltime  — no wall-clock or math/rand reads in those packages
//	nogob     — no new encoding/gob imports outside the sanctioned
//	            read-compat fallback files
//	lockscope — short-scope bookkeeping mutexes (fields named "mu") are
//	            never held across execution, I/O or channel operations
//	poolpair  — every sync.Pool acquire has a Put/Release on all paths
//	errsync   — no silently discarded Close/Sync errors in the
//	            persistence layer
//
// Findings are suppressed only by an in-tree directive that names the
// pass and carries a written justification:
//
//	//chainvet:allow(detmap) holders is a pure ∀-predicate; iteration
//	// order cannot reach a schedule.
//
// See directive.go for the exact placement rules and docs/LINTS.md for
// the per-pass rationale.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. Run inspects a single
// type-checked package through the Pass and reports findings via
// Pass.Reportf; it returns an error only for internal failures, never
// for findings.
type Analyzer struct {
	// Name identifies the pass in findings and in
	// //chainvet:allow(<name>) directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant and why
	// violating it is a bug.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package; Pkg.Path is the canonical import
	// path (for a "pkg [pkg.test]" vet unit, the part before the space).
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pass:    p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// PkgBase returns the last element of the package's canonical import
// path — what the repo-specific package predicates match on.
func (p *Pass) PkgBase() string { return pathBase(p.Pkg.Path()) }

// IsTestFile reports whether the file sits in a _test.go file. The
// determinism invariants bind production code; tests may freely use
// wall clocks, randomness and unsorted iteration.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// SourceFiles returns the package's non-test files, the set every pass
// inspects.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !p.IsTestFile(f) {
			out = append(out, f)
		}
	}
	return out
}

// ConsensusCritical reports whether a package (by path base) is one
// whose outputs feed schedules, commitments or wire encodings — the
// packages where detmap and walltime bind. The mempool qualifies
// because its selection order feeds block contents: admission verdicts
// and queue order must be deterministic in the submission sequence
// (the clock is injected, never read). The importer qualifies because
// its verdict election must depend only on block heights — a clock or
// iteration-order dependence could make two followers elect different
// first errors for the same bad window. The replica qualifies because
// it applies upstream blocks through validation and materializes
// historical state — any nondeterminism there is chain divergence on a
// follower.
func ConsensusCritical(base string) bool {
	switch base {
	case "engine", "stm", "sched", "chain", "validator", "miner", "mempool", "importer", "replica":
		return true
	}
	return false
}

// pathBase returns the last slash-separated element of an import path,
// with any vet test-variant suffix ("pkg [pkg.test]") stripped first.
func pathBase(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// A Diagnostic is one finding, positioned and attributed to its pass.
type Diagnostic struct {
	Pass    string         `json:"pass"`
	Pos     token.Position `json:"-"`
	Message string         `json:"message"`

	// Flattened position for the -json output mode.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// fill populates the flattened position fields from Pos.
func (d *Diagnostic) fill() {
	d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Message)
}

// A Target is one type-checked package ready for analysis — the unit
// the driver, the vet-tool shim and the analysistest harness all hand
// to Run.
type Target struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Run applies every analyzer to the target and returns the raw
// findings (before directive filtering), sorted by position.
func Run(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.TypesInfo,
			report:    func(d Diagnostic) { d.fill(); diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	Sort(diags)
	return diags, nil
}

// Sort orders diagnostics by file, line, column, then pass name.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
}
