package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive. A finding is silenced only by an in-tree
// comment naming the pass and justifying the exception:
//
//	//chainvet:allow(detmap) reason the iteration is a pure predicate
//	//chainvet:allow(detmap,lockscope) reason spanning two passes
//
// Placement: either trailing on the flagged line, or on a directive-
// only comment line in the contiguous comment block directly above it.
// A directive without a written reason is itself a finding, as is a
// directive that suppresses nothing (stale exceptions must not outlive
// the code they excused) or one naming an unknown pass. Directive
// findings carry the pseudo-pass name "chainvet" and cannot themselves
// be suppressed.

const directivePrefix = "//chainvet:allow("

// directivePass is the pseudo-pass attributed to directive hygiene
// findings.
const directivePass = "chainvet"

// A directive is one parsed //chainvet:allow comment.
type directive struct {
	passes []string
	reason string
	pos    token.Position
	// groupEnd is the last line of the comment group the directive sits
	// in: a directive block covers the code line directly below it, so
	// the justification may continue over following comment lines.
	groupEnd int
	used     bool
}

// parseDirectives extracts every chainvet:allow directive from the
// files, reporting malformed ones through report.
func parseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := text[len(directivePrefix):]
				close := strings.IndexByte(rest, ')')
				if close < 0 {
					report(Diagnostic{Pass: directivePass, Pos: pos,
						Message: "malformed chainvet:allow directive: missing ')'"})
					continue
				}
				var passes []string
				for _, p := range strings.Split(rest[:close], ",") {
					p = strings.TrimSpace(p)
					if p == "" {
						continue
					}
					if known != nil && !known[p] {
						report(Diagnostic{Pass: directivePass, Pos: pos,
							Message: "chainvet:allow names unknown pass " + quote(p)})
						continue
					}
					passes = append(passes, p)
				}
				reason := strings.TrimSpace(rest[close+1:])
				if reason == "" {
					report(Diagnostic{Pass: directivePass, Pos: pos,
						Message: "chainvet:allow directive without a justification: every exception must say why it is sound"})
					continue
				}
				if len(passes) == 0 {
					continue
				}
				out = append(out, &directive{
					passes:   passes,
					reason:   reason,
					pos:      pos,
					groupEnd: fset.Position(cg.End()).Line,
				})
			}
		}
	}
	return out
}

func quote(s string) string { return `"` + s + `"` }

// Filter applies the suppression directives found in t.Files to diags:
// suppressed findings are dropped, and directive hygiene findings
// (missing reason, unknown pass, unused directive) are appended. known
// is the set of valid pass names.
func Filter(t *Target, diags []Diagnostic, known map[string]bool) []Diagnostic {
	var kept []Diagnostic
	var meta []Diagnostic
	dirs := parseDirectives(t.Fset, t.Files, known, func(d Diagnostic) { d.fill(); meta = append(meta, d) })

	// directiveLines[file][line] = directives anchored there. A
	// directive on its own line anchors to the next non-directive line
	// below it (comment blocks stack); a trailing directive anchors to
	// its own line.
	byFile := map[string][]*directive{}
	for _, d := range dirs {
		byFile[d.pos.Filename] = append(byFile[d.pos.Filename], d)
	}

	for _, diag := range diags {
		if covers(byFile[diag.Pos.Filename], diag) {
			continue
		}
		kept = append(kept, diag)
	}
	for _, d := range dirs {
		if !d.used {
			meta = append(meta, Diagnostic{
				Pass: directivePass, Pos: d.pos,
				Message: "unused chainvet:allow(" + strings.Join(d.passes, ",") + ") directive: the exception no longer matches a finding; delete it",
			})
		}
	}
	for i := range meta {
		meta[i].fill()
	}
	kept = append(kept, meta...)
	Sort(kept)
	return kept
}

// covers reports whether any directive in dirs suppresses diag, marking
// the directive used. A directive covers findings for its passes on its
// own line (trailing comment) and on the code line directly below the
// comment group it belongs to (leading comment block, justification
// free to continue across the group's lines).
func covers(dirs []*directive, diag Diagnostic) bool {
	for _, d := range dirs {
		if !hasPass(d.passes, diag.Pass) {
			continue
		}
		if diag.Pos.Line == d.pos.Line || diag.Pos.Line == d.groupEnd+1 {
			d.used = true
			return true
		}
	}
	return false
}

func hasPass(passes []string, name string) bool {
	for _, p := range passes {
		if p == name {
			return true
		}
	}
	return false
}
