package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"

	"contractstm/internal/analysis"
)

// This file implements the `go vet -vettool` unit protocol, which the
// go command speaks to external vet tools (the same contract
// golang.org/x/tools/go/analysis/unitchecker implements):
//
//   - `tool -flags` prints a JSON description of the tool's flags;
//   - `tool <unit>.cfg` analyzes one package unit described by the JSON
//     config the go command wrote, prints findings to stderr, writes
//     the (for chainvet, empty — no cross-package facts) .vetx output
//     file, and exits non-zero iff there were findings.
//
// The go command invokes the tool once per package in the build graph,
// with VetxOnly set for pure dependencies.

// VetConfig mirrors cmd/go's vetConfig JSON.
type VetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// RunUnit executes one vet unit from the cfg file and returns the
// findings (already directive-filtered). The caller prints and picks
// the exit code.
func RunUnit(cfgPath string, analyzers []*analysis.Analyzer, known map[string]bool) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("vet unit: %w", err)
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("vet unit %s: %w", cfgPath, err)
	}
	// The go command caches and re-feeds vetx facts; chainvet has none,
	// but the output file must exist for the cache entry.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("chainvet: no facts\n"), 0o666); err != nil {
			return nil, fmt.Errorf("vet unit: writing vetx: %w", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, fmt.Errorf("vet unit: %w", err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("vet unit: no export data for %q", path)
		}
		return os.Open(file)
	})
	target, err := Check(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("vet unit %s: %w", cfg.ImportPath, err)
	}
	diags, err := analysis.Run(target, analyzers)
	if err != nil {
		return nil, fmt.Errorf("vet unit %s: %w", cfg.ImportPath, err)
	}
	return analysis.Filter(target, diags, known), nil
}
