// Package driver loads, type-checks and analyzes packages for the
// chainvet suite without importing golang.org/x/tools: package metadata
// and export data come from `go list -export -json`, types come from
// the standard library's gc importer reading the build cache's export
// files, and syntax comes from go/parser. The same Target then feeds
// the shared analysis.Run/Filter pipeline the vet-tool shim and the
// analysistest harness use.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"contractstm/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// A Loaded is one root package parsed and type-checked, ready to run
// analyzers over.
type Loaded struct {
	Path   string
	Target *analysis.Target
}

// Load resolves patterns (e.g. "./...") through the go tool, then
// parses and type-checks every root (non-dependency) package. Export
// data for the dependency closure comes from `go list -export`, so the
// build cache does the heavy lifting and only root packages are
// type-checked from source.
func Load(dir string, patterns []string) ([]*Loaded, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("driver: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pkg := p
			roots = append(roots, &pkg)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(f)
	})

	var loaded []*Loaded
	for _, p := range roots {
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("driver: %w", err)
			}
			files = append(files, f)
		}
		target, err := Check(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("driver: %s: %w", p.ImportPath, err)
		}
		loaded = append(loaded, &Loaded{Path: p.ImportPath, Target: target})
	}
	return loaded, nil
}

// Check type-checks one package's parsed files into an analysis Target.
// Shared by Load, the vet shim and analysistest.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*analysis.Target, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Target{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// Run loads patterns, applies the analyzers to every root package and
// returns the directive-filtered findings.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer, known map[string]bool) ([]analysis.Diagnostic, error) {
	loaded, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var all []analysis.Diagnostic
	for _, l := range loaded {
		diags, err := analysis.Run(l.Target, analyzers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.Path, err)
		}
		all = append(all, analysis.Filter(l.Target, diags, known)...)
	}
	analysis.Sort(all)
	return all, nil
}
