package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// Directive hygiene: a directive with no justification, one naming an
// unknown pass, and one suppressing nothing are themselves findings —
// under the pseudo-pass "chainvet", which no directive can silence.
func TestDirectiveHygiene(t *testing.T) {
	const src = `package p

//chainvet:allow(detmap) justified: the fold is order-insensitive
func unused() {}

//chainvet:allow(nosuchpass) some reason
func unknown() {}

//chainvet:allow(walltime)
func bare() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	target := &Target{Fset: fset, Files: []*ast.File{f}}
	known := map[string]bool{"detmap": true, "walltime": true}

	got := Filter(target, nil, known)
	wantSubstrings := []string{
		`unused chainvet:allow(detmap) directive`,
		`unknown pass "nosuchpass"`,
		`directive without a justification`,
	}
	if len(got) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d:\n%v", len(got), len(wantSubstrings), got)
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range got {
			if d.Pass != "chainvet" {
				t.Errorf("hygiene finding attributed to pass %q, want chainvet: %s", d.Pass, d)
			}
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding containing %q in:\n%v", want, got)
		}
	}
}

// A directive covers its own line (trailing form) and the first line
// after its comment group (leading form) — and nothing further away:
// a finding two lines below must survive, and a different pass's
// finding on the covered line must survive too.
func TestDirectiveAnchoring(t *testing.T) {
	const src = `package p

func f() {
	x := 1 //chainvet:allow(detmap) trailing: covers this line
	y := 2
	z := 3
	_, _, _ = x, y, z
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	target := &Target{Fset: fset, Files: []*ast.File{f}}
	known := map[string]bool{"detmap": true, "walltime": true}

	onLine := Diagnostic{Pass: "detmap", Pos: token.Position{Filename: "p.go", Line: 4}, Message: "on the directive line"}
	otherPass := Diagnostic{Pass: "walltime", Pos: token.Position{Filename: "p.go", Line: 4}, Message: "other pass, same line"}
	twoBelow := Diagnostic{Pass: "detmap", Pos: token.Position{Filename: "p.go", Line: 6}, Message: "two lines below the directive"}
	got := Filter(target, []Diagnostic{onLine, otherPass, twoBelow}, known)
	for _, d := range got {
		if d.Message == onLine.Message {
			t.Errorf("directive failed to suppress the finding on its own line")
		}
	}
	found := map[string]bool{}
	for _, d := range got {
		found[d.Message] = true
	}
	if !found[otherPass.Message] {
		t.Errorf("directive for detmap suppressed a walltime finding")
	}
	if !found[twoBelow.Message] {
		t.Errorf("directive suppressed a finding two lines below its group")
	}
}
