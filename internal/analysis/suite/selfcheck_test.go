package suite_test

import (
	"path/filepath"
	"testing"

	"contractstm/internal/analysis/driver"
	"contractstm/internal/analysis/suite"
)

// The repo must stay clean under its own suite: every invariant either
// holds or carries an in-tree justified //chainvet:allow. A finding here
// means new code broke an invariant (fix it) or added an unjustified or
// stale exception (justify or delete it).
func TestRepoIsCleanUnderChainvet(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(root, []string{"./..."}, suite.Analyzers(), suite.Known())
	if err != nil {
		t.Fatalf("chainvet over the repo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
