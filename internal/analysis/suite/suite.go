// Package suite registers the chainvet passes. cmd/chainvet, the vet
// unit shim and the self-check test all consume this one list, so a new
// pass added here is everywhere at once.
package suite

import (
	"contractstm/internal/analysis"
	"contractstm/internal/analysis/passes/detmap"
	"contractstm/internal/analysis/passes/errsync"
	"contractstm/internal/analysis/passes/lockscope"
	"contractstm/internal/analysis/passes/nogob"
	"contractstm/internal/analysis/passes/poolpair"
	"contractstm/internal/analysis/passes/walltime"
)

// Analyzers returns the full chainvet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detmap.Analyzer,
		walltime.Analyzer,
		nogob.Analyzer,
		lockscope.Analyzer,
		poolpair.Analyzer,
		errsync.Analyzer,
	}
}

// Known returns the valid pass-name set for directive validation.
func Known() map[string]bool {
	m := map[string]bool{}
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}
