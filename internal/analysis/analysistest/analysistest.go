// Package analysistest runs chainvet analyzers over fixture packages
// and checks their findings against // want annotations — the same
// contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the in-repo driver so fixtures need no external dependency.
//
// Fixtures live under <pass>/testdata/src/<pkgpath>/*.go and are real,
// type-checked Go packages (standard-library imports resolve through
// the build cache). The fixture's package path is <pkgpath>, which is
// how path-sensitive passes are exercised: a fixture directory named
// "engine" IS a consensus-critical package as far as the suite's
// predicates are concerned.
//
// Expectations are trailing comments on the offending line:
//
//	for k := range m { // want `map iteration order`
//
// The quoted text is a regexp matched against the finding's message;
// several want clauses on one line expect several findings. Findings
// already suppressed by //chainvet:allow directives never reach the
// matcher (the harness applies the same Filter as the real driver), so
// a fixture exercising the directive simply carries no want.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"contractstm/internal/analysis"
	"contractstm/internal/analysis/driver"
	"contractstm/internal/analysis/suite"
)

// TestData returns the testdata directory of the calling test's
// package.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run analyzes the fixture package at dir/src/<pkgpath> with the
// analyzer and reports mismatches against its // want annotations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	target, err := loadFixture(filepath.Join(dir, "src", filepath.FromSlash(pkgpath)), pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags, err := analysis.Run(target, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	diags = analysis.Filter(target, diags, suite.Known())
	checkWants(t, target, diags)
}

// loadFixture parses and type-checks one fixture directory as package
// pkgpath.
func loadFixture(dir, pkgpath string) (*analysis.Target, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var imports []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports = append(imports, strings.Trim(imp.Path.Value, `"`))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	exports, err := stdExports(imports)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("fixture imports %q: only standard-library imports are supported in fixtures", path)
		}
		return os.Open(f)
	})
	return driver.Check(fset, pkgpath, files, imp)
}

var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

// stdExports resolves export-data files for the given standard-library
// import paths (plus their dependency closure) via go list, caching
// across fixtures.
func stdExports(paths []string) (map[string]string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for _, p := range paths {
		if _, ok := exportCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, missing...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exportCache[p.ImportPath] = p.Export
			}
		}
	}
	out := map[string]string{}
	for k, v := range exportCache {
		out[k] = v
	}
	return out, nil
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)")

// A want is one expected finding.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkWants compares findings against the fixtures' // want comments.
func checkWants(t *testing.T, target *analysis.Target, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range target.Files {
		filename := target.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := target.Fset.Position(c.Pos()).Line
				for _, pat := range splitPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", filename, line, pat, err)
					}
					wants = append(wants, &want{file: filename, line: line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitPatterns extracts the quoted (double- or back-quoted) regexps
// from a want clause.
func splitPatterns(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '`':
			if j := strings.IndexByte(s[i+1:], '`'); j >= 0 {
				out = append(out, s[i+1:i+1+j])
				i += j + 1
			}
		case '"':
			if j := strings.IndexByte(s[i+1:], '"'); j >= 0 {
				out = append(out, s[i+1:i+1+j])
				i += j + 1
			}
		}
	}
	return out
}
