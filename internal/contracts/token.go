package contracts

import (
	"contractstm/internal/contract"
	"contractstm/internal/storage"
	"contractstm/internal/types"
)

// Token is a minimal fungible-token contract (ERC-20-style transfer and
// allowance, no events). It is not one of the paper's benchmarks; it
// exists for the examples and the extension benchmarks, and it is a nice
// stress of the boosted layer: debits are exclusive (they check balances)
// while credits commute, so transfers with disjoint payers parallelize.
type Token struct {
	addr   types.Address
	issuer types.Address
	// balances maps holder → amount.
	balances *storage.Map
	// allowances maps owner|spender → amount.
	allowances *storage.Map
	// supply is the fixed total supply.
	supply *storage.Cell
}

var _ contract.Contract = (*Token)(nil)

// NewToken deploys a token minting the full supply to issuer.
func NewToken(w *contract.World, addr, issuer types.Address, supply uint64) (*Token, error) {
	store := w.Store()
	prefix := "token:" + addr.Short()
	balances, err := storage.NewMap(store, prefix+"/balances")
	if err != nil {
		return nil, err
	}
	allowances, err := storage.NewMap(store, prefix+"/allowances")
	if err != nil {
		return nil, err
	}
	supplyCell, err := storage.NewCell(store, prefix+"/supply", supply)
	if err != nil {
		return nil, err
	}
	t := &Token{addr: addr, issuer: issuer, balances: balances, allowances: allowances, supply: supplyCell}
	if err := w.Deploy(t); err != nil {
		return nil, err
	}
	if err := initRaw(w, func(ex *setupExec) error {
		return balances.Put(ex, storage.KeyAddr(issuer), supply)
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// ContractAddress implements contract.Contract.
func (t *Token) ContractAddress() types.Address { return t.addr }

// Invoke implements contract.Contract.
func (t *Token) Invoke(env *contract.Env, fn string, args []any) any {
	switch fn {
	case "transfer":
		t.transfer(env, env.Msg().Sender, mustAddr(env, args, 0), mustUint(env, args, 1))
		return nil
	case "approve":
		t.approve(env, mustAddr(env, args, 0), mustUint(env, args, 1))
		return nil
	case "transferFrom":
		t.transferFrom(env, mustAddr(env, args, 0), mustAddr(env, args, 1), mustUint(env, args, 2))
		return nil
	case "balanceOf":
		n, err := t.balances.GetUint(env.Ex(), storage.KeyAddr(mustAddr(env, args, 0)))
		env.Do(err)
		return n
	case "totalSupply":
		n, err := t.supply.ReadUint(env.Ex())
		env.Do(err)
		return n
	default:
		env.Throw("token: unknown function %q", fn)
		return nil
	}
}

// SeedBalance moves amount from the issuer's pool to addr at genesis
// (benchmark fixture). It fails if the remaining issued supply is short.
func (t *Token) SeedBalance(w *contract.World, addr types.Address, amount uint64) error {
	return initRaw(w, func(ex *setupExec) error {
		if err := t.balances.SubUint(ex, storage.KeyAddr(t.issuer), amount); err != nil {
			return err
		}
		return t.balances.AddUint(ex, storage.KeyAddr(addr), amount)
	})
}

func (t *Token) transfer(env *contract.Env, from, to types.Address, amount uint64) {
	env.UseGas(50)
	if amount == 0 {
		return
	}
	err := t.balances.SubUint(env.Ex(), storage.KeyAddr(from), amount)
	env.Do(err) // underflow throws via Do
	env.Do(t.balances.AddUint(env.Ex(), storage.KeyAddr(to), amount))
}

func (t *Token) approve(env *contract.Env, spender types.Address, amount uint64) {
	env.UseGas(40)
	key := storage.KeyAddr(env.Msg().Sender) + "|" + storage.KeyAddr(spender)
	env.Do(t.allowances.Put(env.Ex(), key, amount))
}

func (t *Token) transferFrom(env *contract.Env, from, to types.Address, amount uint64) {
	env.UseGas(60)
	key := storage.KeyAddr(from) + "|" + storage.KeyAddr(env.Msg().Sender)
	allowed, err := t.allowances.GetUint(env.Ex(), key)
	env.Do(err)
	if allowed < amount {
		env.Throw("transferFrom: allowance %d < %d", allowed, amount)
	}
	env.Do(t.allowances.Put(env.Ex(), key, allowed-amount))
	t.transfer(env, from, to, amount)
}
