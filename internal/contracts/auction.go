package contracts

import (
	"fmt"

	"contractstm/internal/contract"
	"contractstm/internal/storage"
	"contractstm/internal/types"
)

// SimpleAuction is the open-auction contract from the Solidity
// documentation, the paper's second benchmark. The owner (beneficiary)
// initiates the auction; participants bid; outbid participants withdraw
// their returns via the withdraw pattern.
type SimpleAuction struct {
	addr        types.Address
	beneficiary *storage.Cell
	// highestBidder and highestBid are single cells: every bid reads and
	// writes both, so contending bids serialize on them.
	highestBidder *storage.Cell
	highestBid    *storage.Cell
	// pendingReturns maps outbid bidders to withdrawable amounts; distinct
	// bidders use distinct keys, so withdrawals are parallel-friendly.
	pendingReturns *storage.Map
	ended          *storage.Cell
}

var _ contract.Contract = (*SimpleAuction)(nil)

// NewSimpleAuction deploys an auction paying out to beneficiary.
func NewSimpleAuction(w *contract.World, addr, beneficiary types.Address) (*SimpleAuction, error) {
	store := w.Store()
	prefix := "auction:" + addr.Short()
	mk := func(name string, init any) (*storage.Cell, error) {
		return storage.NewCell(store, prefix+"/"+name, init)
	}
	benef, err := mk("beneficiary", beneficiary)
	if err != nil {
		return nil, err
	}
	bidder, err := mk("highestBidder", types.ZeroAddress)
	if err != nil {
		return nil, err
	}
	bid, err := mk("highestBid", uint64(0))
	if err != nil {
		return nil, err
	}
	pending, err := storage.NewMap(store, prefix+"/pendingReturns")
	if err != nil {
		return nil, err
	}
	ended, err := mk("ended", false)
	if err != nil {
		return nil, err
	}
	a := &SimpleAuction{
		addr:           addr,
		beneficiary:    benef,
		highestBidder:  bidder,
		highestBid:     bid,
		pendingReturns: pending,
		ended:          ended,
	}
	if err := w.Deploy(a); err != nil {
		return nil, err
	}
	return a, nil
}

// ContractAddress implements contract.Contract.
func (a *SimpleAuction) ContractAddress() types.Address { return a.addr }

// Invoke implements contract.Contract.
func (a *SimpleAuction) Invoke(env *contract.Env, fn string, args []any) any {
	switch fn {
	case "bid":
		a.bid(env, uint64(mustAmount(env, args, 0)))
		return nil
	case "bidPlusOne":
		return a.bidPlusOne(env)
	case "withdraw":
		return a.withdraw(env)
	case "auctionEnd":
		a.auctionEnd(env)
		return nil
	case "highest":
		n, err := a.highestBid.ReadUint(env.Ex())
		env.Do(err)
		return n
	default:
		env.Throw("auction: unknown function %q", fn)
		return nil
	}
}

// bid places a bid of `amount`. If it does not beat the highest bid, it
// throws; otherwise the previous highest bidder's stake becomes
// withdrawable.
func (a *SimpleAuction) bid(env *contract.Env, amount uint64) {
	env.UseGas(70)
	a.requireOpen(env)
	highest, err := a.highestBid.ReadUint(env.Ex())
	env.Do(err)
	if amount <= highest {
		env.Throw("bid %d does not beat highest bid %d", amount, highest)
	}
	prevBidder, err := a.highestBidder.Read(env.Ex())
	env.Do(err)
	if prev := prevBidder.(types.Address); !prev.IsZero() {
		// Credit the outbid bidder: a commutative increment.
		env.Do(a.pendingReturns.AddUint(env.Ex(), storage.KeyAddr(prev), highest))
	}
	env.Do(a.highestBidder.Write(env.Ex(), env.Msg().Sender))
	env.Do(a.highestBid.Write(env.Ex(), amount))
}

// bidPlusOne reads the current highest bid and bids exactly one more: the
// paper's conflict workload, in which every contending transaction touches
// the same two cells.
func (a *SimpleAuction) bidPlusOne(env *contract.Env) any {
	env.UseGas(30)
	highest, err := a.highestBid.ReadUint(env.Ex())
	env.Do(err)
	a.bid(env, highest+1)
	return highest + 1
}

// withdraw pays out the sender's pending return, if any, returning the
// amount withdrawn. Distinct senders touch distinct map keys, so a block
// of withdrawals is highly parallel — the paper's base workload for this
// contract.
//
// Translation note: like the paper's prototype (which emulates msg/send
// rather than modelling a global ether ledger, §6), the payout is the
// zeroing of the pending return; routing it through a world-level balance
// ledger would serialize every withdrawal on the auction's own account —
// a bottleneck the paper's benchmark does not have.
func (a *SimpleAuction) withdraw(env *contract.Env) any {
	env.UseGas(60)
	sender := env.Msg().Sender
	amount, err := a.pendingReturns.GetUint(env.Ex(), storage.KeyAddr(sender))
	env.Do(err)
	if amount == 0 {
		return uint64(0)
	}
	env.Do(a.pendingReturns.Put(env.Ex(), storage.KeyAddr(sender), uint64(0)))
	env.UseGas(30) // emulated send, per the paper's prototype
	return amount
}

// auctionEnd closes the auction and pays the beneficiary.
func (a *SimpleAuction) auctionEnd(env *contract.Env) {
	env.UseGas(50)
	a.requireOpen(env)
	benef, err := a.beneficiary.Read(env.Ex())
	env.Do(err)
	if env.Msg().Sender != benef.(types.Address) {
		env.Throw("auctionEnd: only the beneficiary may end the auction")
	}
	env.Do(a.ended.Write(env.Ex(), true))
	if _, err := a.highestBid.ReadUint(env.Ex()); err != nil {
		env.Do(err)
	}
	env.UseGas(30) // emulated send of the winning bid, per the paper
}

func (a *SimpleAuction) requireOpen(env *contract.Env) {
	ended, err := a.ended.Read(env.Ex())
	env.Do(err)
	if ended.(bool) {
		env.Throw("auction already ended")
	}
}

// SeedBid installs an initial bid at genesis (benchmark fixture: "the
// contract state is initialized by several bidders entering a bid",
// §7.1). The bidder's stake is registered in pendingReturns when outbid by
// the seeding sequence; callers seed in increasing amounts.
func (a *SimpleAuction) SeedBid(w *contract.World, bidder types.Address, amount uint64) error {
	return initRaw(w, func(ex *setupExec) error {
		highest, err := a.highestBid.ReadUint(ex)
		if err != nil {
			return err
		}
		if amount <= highest {
			return fmt.Errorf("seed bid %d does not beat %d", amount, highest)
		}
		prev, err := a.highestBidder.Read(ex)
		if err != nil {
			return err
		}
		if p := prev.(types.Address); !p.IsZero() {
			if err := a.pendingReturns.AddUint(ex, storage.KeyAddr(p), highest); err != nil {
				return err
			}
		}
		if err := a.highestBidder.Write(ex, bidder); err != nil {
			return err
		}
		return a.highestBid.Write(ex, amount)
	})
}
