package contracts

import (
	"contractstm/internal/contract"
	"contractstm/internal/storage"
	"contractstm/internal/types"
)

// Purchase states, mirroring the Solidity example's enum.
const (
	purchaseCreated  uint64 = 0
	purchaseLocked   uint64 = 1
	purchaseInactive uint64 = 2
)

// Purchase is the "Safe Remote Purchase" contract from the Solidity
// documentation (the same corpus the paper's benchmarks are drawn from,
// §7.1). A seller escrows 2×value; the buyer matches it and confirms
// receipt; the deposits unwind so both parties have an incentive to finish.
//
// Unlike SimpleAuction (whose sends the paper's prototype emulates),
// Purchase uses the world's real balance ledger — its transfers are
// checked debits and commutative credits on world/balances — so it also
// serves as an end-to-end test of currency movement under speculation.
type Purchase struct {
	addr   types.Address
	seller *storage.Cell
	buyer  *storage.Cell
	value  *storage.Cell
	state  *storage.Cell
}

var _ contract.Contract = (*Purchase)(nil)

// NewPurchase deploys a purchase escrow for an item of the given value.
// The seller's 2×value deposit must already sit in the contract's account
// (the Solidity constructor is payable); use World.Mint or a funding
// transfer at genesis.
func NewPurchase(w *contract.World, addr, seller types.Address, value uint64) (*Purchase, error) {
	store := w.Store()
	prefix := "purchase:" + addr.Short()
	sellerCell, err := storage.NewCell(store, prefix+"/seller", seller)
	if err != nil {
		return nil, err
	}
	buyerCell, err := storage.NewCell(store, prefix+"/buyer", types.ZeroAddress)
	if err != nil {
		return nil, err
	}
	valueCell, err := storage.NewCell(store, prefix+"/value", value)
	if err != nil {
		return nil, err
	}
	stateCell, err := storage.NewCell(store, prefix+"/state", purchaseCreated)
	if err != nil {
		return nil, err
	}
	p := &Purchase{addr: addr, seller: sellerCell, buyer: buyerCell, value: valueCell, state: stateCell}
	if err := w.Deploy(p); err != nil {
		return nil, err
	}
	return p, nil
}

// ContractAddress implements contract.Contract.
func (p *Purchase) ContractAddress() types.Address { return p.addr }

// Invoke implements contract.Contract.
func (p *Purchase) Invoke(env *contract.Env, fn string, args []any) any {
	switch fn {
	case "abort":
		p.abort(env)
		return nil
	case "confirmPurchase":
		p.confirmPurchase(env)
		return nil
	case "confirmReceived":
		p.confirmReceived(env)
		return nil
	case "state":
		s, err := p.state.ReadUint(env.Ex())
		env.Do(err)
		return s
	default:
		env.Throw("purchase: unknown function %q", fn)
		return nil
	}
}

// abort lets the seller reclaim the escrow before a buyer commits.
func (p *Purchase) abort(env *contract.Env) {
	env.UseGas(40)
	p.requireState(env, purchaseCreated)
	seller := p.sellerAddr(env)
	if env.Msg().Sender != seller {
		env.Throw("abort: only the seller may abort")
	}
	env.Do(p.state.Write(env.Ex(), purchaseInactive))
	v := p.itemValue(env)
	env.Transfer(seller, types.Amount(2*v)) // refund the seller's escrow
}

// confirmPurchase locks the sale: the buyer must attach exactly 2×value
// (the Solidity `require(msg.value == 2 * value)`).
func (p *Purchase) confirmPurchase(env *contract.Env) {
	env.UseGas(60)
	p.requireState(env, purchaseCreated)
	v := p.itemValue(env)
	if uint64(env.Msg().Value) != 2*v {
		env.Throw("confirmPurchase: must attach exactly 2x value (%d), got %d", 2*v, env.Msg().Value)
	}
	env.Do(p.buyer.Write(env.Ex(), env.Msg().Sender))
	env.Do(p.state.Write(env.Ex(), purchaseLocked))
}

// confirmReceived completes the sale: the buyer gets their deposit (value)
// back and the seller receives 3×value (deposit + price).
func (p *Purchase) confirmReceived(env *contract.Env) {
	env.UseGas(60)
	p.requireState(env, purchaseLocked)
	buyer := p.buyerAddr(env)
	if env.Msg().Sender != buyer {
		env.Throw("confirmReceived: only the buyer may confirm")
	}
	env.Do(p.state.Write(env.Ex(), purchaseInactive))
	v := p.itemValue(env)
	env.Transfer(buyer, types.Amount(v))
	env.Transfer(p.sellerAddr(env), types.Amount(3*v))
}

func (p *Purchase) requireState(env *contract.Env, want uint64) {
	s, err := p.state.ReadUint(env.Ex())
	env.Do(err)
	if s != want {
		env.Throw("purchase: invalid state %d, want %d", s, want)
	}
}

func (p *Purchase) sellerAddr(env *contract.Env) types.Address {
	v, err := p.seller.Read(env.Ex())
	env.Do(err)
	return v.(types.Address)
}

func (p *Purchase) buyerAddr(env *contract.Env) types.Address {
	v, err := p.buyer.Read(env.Ex())
	env.Do(err)
	return v.(types.Address)
}

func (p *Purchase) itemValue(env *contract.Env) uint64 {
	n, err := p.value.ReadUint(env.Ex())
	env.Do(err)
	return n
}
