package contracts

import (
	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/storage"
	"contractstm/internal/types"
)

// The struct types this package stores in boosted objects must be
// registered for state-snapshot serialization (the persistence layer
// gob-encodes stored values as interface contents).
func init() {
	storage.RegisterValueType(Voter{})
	storage.RegisterValueType(DocMeta{})
}

// setupExec is a minimal stm.Executor for constructor/genesis effects:
// contract deployment happens before mining starts, outside any
// transaction, so it needs no locks, no gas and no undo — exactly like the
// paper's benchmarks, which put contracts "into an initial state" before
// measuring.
type setupExec struct {
	sched gas.Schedule
}

var _ stm.Executor = (*setupExec)(nil)

func (s *setupExec) Access(stm.LockID, stm.Mode, gas.Gas) error { return nil }
func (s *setupExec) LogUndo(func())                             {}
func (s *setupExec) Overlay() *stm.Overlay                      { return nil }
func (s *setupExec) ChargeStep(uint64) error                    { return nil }
func (s *setupExec) Thread() runtime.Thread                     { return nil }
func (s *setupExec) Schedule() gas.Schedule                     { return s.sched }

// initRaw runs constructor effects directly against storage.
func initRaw(w *contract.World, body func(ex *setupExec) error) error {
	return body(&setupExec{sched: w.Schedule()})
}

// Setup returns a non-transactional executor for test fixtures and genesis
// state (minting balances, seeding auction bids, registering voters).
func Setup(w *contract.World) stm.Executor {
	return &setupExec{sched: w.Schedule()}
}

// mustAddr extracts an address argument or throws.
func mustAddr(env *contract.Env, args []any, i int) (a types.Address) {
	if i >= len(args) {
		env.Throw("missing argument %d", i)
	}
	a, ok := args[i].(types.Address)
	if !ok {
		env.Throw("argument %d: want address, got %T", i, args[i])
	}
	return a
}

// mustUint extracts a uint64 argument or throws.
func mustUint(env *contract.Env, args []any, i int) uint64 {
	if i >= len(args) {
		env.Throw("missing argument %d", i)
	}
	n, ok := args[i].(uint64)
	if !ok {
		env.Throw("argument %d: want uint64, got %T", i, args[i])
	}
	return n
}

// mustHash extracts a hash argument or throws.
func mustHash(env *contract.Env, args []any, i int) (h types.Hash) {
	if i >= len(args) {
		env.Throw("missing argument %d", i)
	}
	h, ok := args[i].(types.Hash)
	if !ok {
		env.Throw("argument %d: want hash, got %T", i, args[i])
	}
	return h
}

// mustAmount extracts an amount argument or throws.
func mustAmount(env *contract.Env, args []any, i int) types.Amount {
	if i >= len(args) {
		env.Throw("missing argument %d", i)
	}
	switch v := args[i].(type) {
	case types.Amount:
		return v
	case uint64:
		return types.Amount(v)
	default:
		env.Throw("argument %d: want amount, got %T", i, args[i])
		return 0
	}
}
