package contracts

import (
	"testing"

	"contractstm/internal/contract"
	"contractstm/internal/types"
)

var (
	purchaseAddr = types.AddressFromUint64(0xF00)
	seller       = types.AddressFromUint64(0x5E11)
	buyer        = types.AddressFromUint64(0xB0B)
)

// newTestPurchase deploys the escrow with the seller's 2x deposit already
// in the contract account and the buyer funded.
func newTestPurchase(t *testing.T, w *contract.World, value uint64) *Purchase {
	t.Helper()
	p, err := NewPurchase(w, purchaseAddr, seller, value)
	if err != nil {
		t.Fatalf("NewPurchase: %v", err)
	}
	if err := w.Mint(Setup(w), purchaseAddr, types.Amount(2*value)); err != nil {
		t.Fatalf("escrow mint: %v", err)
	}
	if err := w.Mint(Setup(w), buyer, types.Amount(10*value)); err != nil {
		t.Fatalf("buyer mint: %v", err)
	}
	return p
}

func TestPurchaseHappyPath(t *testing.T) {
	w := newWorld(t)
	newTestPurchase(t, w, 100)

	if got := mustCommit(t, run(t, w, seller, purchaseAddr, "state")); got.(uint64) != 0 {
		t.Fatalf("initial state = %v", got)
	}
	// Buyer locks the sale with exactly 2x value attached.
	out := runValue(t, w, buyer, purchaseAddr, "confirmPurchase", 200)
	mustCommit(t, out)
	if got := mustCommit(t, run(t, w, seller, purchaseAddr, "state")); got.(uint64) != 1 {
		t.Fatalf("state after purchase = %v", got)
	}
	// Buyer confirms receipt: buyer gets 100 back, seller gets 300.
	mustCommit(t, run(t, w, buyer, purchaseAddr, "confirmReceived"))
	if got := readBalance(t, w, seller); got != 300 {
		t.Fatalf("seller balance = %d, want 300", got)
	}
	// Buyer: 1000 funded - 200 attached + 100 refund = 900.
	if got := readBalance(t, w, buyer); got != 900 {
		t.Fatalf("buyer balance = %d, want 900", got)
	}
	// Contract drained.
	if got := readBalance(t, w, purchaseAddr); got != 0 {
		t.Fatalf("contract balance = %d, want 0", got)
	}
}

func TestPurchaseWrongDeposit(t *testing.T) {
	w := newWorld(t)
	newTestPurchase(t, w, 100)
	out := runValue(t, w, buyer, purchaseAddr, "confirmPurchase", 150)
	mustRevert(t, out, "exactly 2x value")
	// The attached 150 must have been refunded by the revert.
	if got := readBalance(t, w, buyer); got != 1000 {
		t.Fatalf("buyer balance = %d, want 1000 after revert", got)
	}
}

func TestPurchaseAbort(t *testing.T) {
	w := newWorld(t)
	newTestPurchase(t, w, 100)
	mustRevert(t, run(t, w, buyer, purchaseAddr, "abort"), "only the seller")
	mustCommit(t, run(t, w, seller, purchaseAddr, "abort"))
	if got := readBalance(t, w, seller); got != 200 {
		t.Fatalf("seller refund = %d, want 200", got)
	}
	// After abort, purchases revert.
	mustRevert(t, runValue(t, w, buyer, purchaseAddr, "confirmPurchase", 200), "invalid state")
}

func TestPurchaseConfirmByStrangerRejected(t *testing.T) {
	w := newWorld(t)
	newTestPurchase(t, w, 100)
	mustCommit(t, runValue(t, w, buyer, purchaseAddr, "confirmPurchase", 200))
	stranger := types.AddressFromUint64(0xBAD)
	mustRevert(t, run(t, w, stranger, purchaseAddr, "confirmReceived"), "only the buyer")
}

func TestPurchaseDoubleConfirmRejected(t *testing.T) {
	w := newWorld(t)
	newTestPurchase(t, w, 100)
	mustCommit(t, runValue(t, w, buyer, purchaseAddr, "confirmPurchase", 200))
	mustCommit(t, run(t, w, buyer, purchaseAddr, "confirmReceived"))
	mustRevert(t, run(t, w, buyer, purchaseAddr, "confirmReceived"), "invalid state")
}
