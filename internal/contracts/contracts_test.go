package contracts

import (
	"strings"
	"testing"

	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

var (
	ballotAddr  = types.AddressFromUint64(0xB0)
	auctionAddr = types.AddressFromUint64(0xA0)
	docAddr     = types.AddressFromUint64(0xD0)
	tokenAddr   = types.AddressFromUint64(0xE0)
	chair       = types.AddressFromUint64(0xC0)
	alice       = types.AddressFromUint64(1)
	bob         = types.AddressFromUint64(2)
	carol       = types.AddressFromUint64(3)
)

func newWorld(t *testing.T) *contract.World {
	t.Helper()
	w, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

// run executes one call serially and returns the outcome.
func run(t *testing.T, w *contract.World, sender types.Address, target types.Address, fn string, args ...any) contract.Outcome {
	t.Helper()
	return runCall(t, w, contract.Call{
		Sender: sender, Contract: target, Function: fn, Args: args, GasLimit: 1_000_000,
	})
}

// runValue executes one call with currency attached (Solidity msg.value).
func runValue(t *testing.T, w *contract.World, sender, target types.Address, fn string, value uint64, args ...any) contract.Outcome {
	t.Helper()
	return runCall(t, w, contract.Call{
		Sender: sender, Contract: target, Function: fn, Args: args,
		Value: types.Amount(value), GasLimit: 1_000_000,
	})
}

func runCall(t *testing.T, w *contract.World, call contract.Call) contract.Outcome {
	t.Helper()
	var out contract.Outcome
	_, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSerial(0, th, gas.NewMeter(call.GasLimit), w.Schedule())
		out = contract.Execute(w, tx, call)
	})
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	return out
}

// readBalance reads an account's world balance inside a serial transaction.
func readBalance(t *testing.T, w *contract.World, a types.Address) uint64 {
	t.Helper()
	var out uint64
	_, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSerial(0, th, gas.NewMeter(1_000_000), w.Schedule())
		amt, err := w.BalanceOf(tx, a)
		if err != nil {
			t.Errorf("BalanceOf: %v", err)
		}
		out = uint64(amt)
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	return out
}

func mustCommit(t *testing.T, out contract.Outcome) any {
	t.Helper()
	if out.Kind != contract.OutcomeCommitted {
		t.Fatalf("outcome = %s (%s), want committed", out.Kind, out.Reason)
	}
	return out.Result
}

func mustRevert(t *testing.T, out contract.Outcome, reasonFragment string) {
	t.Helper()
	if out.Kind != contract.OutcomeReverted {
		t.Fatalf("outcome = %s, want reverted", out.Kind)
	}
	if !strings.Contains(out.Reason, reasonFragment) {
		t.Fatalf("reason = %q, want fragment %q", out.Reason, reasonFragment)
	}
}

// --- Ballot ---------------------------------------------------------------

func newTestBallot(t *testing.T, w *contract.World, proposals ...string) *Ballot {
	t.Helper()
	if len(proposals) == 0 {
		proposals = []string{"p0", "p1", "p2"}
	}
	b, err := NewBallot(w, ballotAddr, chair, proposals)
	if err != nil {
		t.Fatalf("NewBallot: %v", err)
	}
	return b
}

func TestBallotVote(t *testing.T) {
	w := newWorld(t)
	newTestBallot(t, w)
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", alice))
	mustCommit(t, run(t, w, alice, ballotAddr, "vote", uint64(1)))
	winner := mustCommit(t, run(t, w, chair, ballotAddr, "winningProposal"))
	if winner.(uint64) != 1 {
		t.Fatalf("winner = %v, want 1", winner)
	}
	name := mustCommit(t, run(t, w, chair, ballotAddr, "winnerName"))
	if name.(string) != "p1" {
		t.Fatalf("winner name = %v", name)
	}
}

func TestBallotDoubleVoteThrows(t *testing.T) {
	w := newWorld(t)
	newTestBallot(t, w)
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", alice))
	mustCommit(t, run(t, w, alice, ballotAddr, "vote", uint64(0)))
	mustRevert(t, run(t, w, alice, ballotAddr, "vote", uint64(1)), "already voted")
	// The failed vote must not have counted.
	winner := mustCommit(t, run(t, w, chair, ballotAddr, "winningProposal"))
	if winner.(uint64) != 0 {
		t.Fatalf("winner = %v, want 0", winner)
	}
}

func TestBallotVoteOutOfRangeThrowsAndRollsBack(t *testing.T) {
	w := newWorld(t)
	newTestBallot(t, w)
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", alice))
	rootBefore, _ := w.StateRoot()
	mustRevert(t, run(t, w, alice, ballotAddr, "vote", uint64(99)), "out of range")
	rootAfter, _ := w.StateRoot()
	if rootBefore != rootAfter {
		t.Fatal("reverted vote left state changes (voted flag not rolled back)")
	}
	// Alice can still vote correctly afterwards.
	mustCommit(t, run(t, w, alice, ballotAddr, "vote", uint64(2)))
}

func TestBallotGiveRightToVoteOnlyChair(t *testing.T) {
	w := newWorld(t)
	newTestBallot(t, w)
	mustRevert(t, run(t, w, alice, ballotAddr, "giveRightToVote", bob), "not chairperson")
}

func TestBallotUnregisteredVoterAddsNoWeight(t *testing.T) {
	w := newWorld(t)
	newTestBallot(t, w)
	// Solidity semantics: an unregistered voter has weight 0; the vote
	// "succeeds" but adds no count.
	mustCommit(t, run(t, w, bob, ballotAddr, "vote", uint64(1)))
	winner := mustCommit(t, run(t, w, chair, ballotAddr, "winningProposal"))
	if winner.(uint64) != 0 {
		t.Fatalf("zero-weight vote moved the winner: %v", winner)
	}
	// And the voter is now marked voted, so a second attempt throws.
	mustRevert(t, run(t, w, bob, ballotAddr, "vote", uint64(1)), "already voted")
}

func TestBallotDelegateBeforeDelegateVoted(t *testing.T) {
	w := newWorld(t)
	newTestBallot(t, w)
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", alice))
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", bob))
	// Alice delegates to Bob before Bob votes: Bob's weight becomes 2.
	mustCommit(t, run(t, w, alice, ballotAddr, "delegate", bob))
	mustCommit(t, run(t, w, bob, ballotAddr, "vote", uint64(2)))
	winner := mustCommit(t, run(t, w, chair, ballotAddr, "winningProposal"))
	if winner.(uint64) != 2 {
		t.Fatalf("winner = %v, want 2", winner)
	}
	// Verify weight 2 landed: one more vote on p1 cannot overtake.
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", carol))
	mustCommit(t, run(t, w, carol, ballotAddr, "vote", uint64(1)))
	winner = mustCommit(t, run(t, w, chair, ballotAddr, "winningProposal"))
	if winner.(uint64) != 2 {
		t.Fatalf("winner after carol = %v, want 2 (weight 2 vs 1)", winner)
	}
}

func TestBallotDelegateAfterDelegateVoted(t *testing.T) {
	w := newWorld(t)
	newTestBallot(t, w)
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", alice))
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", bob))
	mustCommit(t, run(t, w, bob, ballotAddr, "vote", uint64(1)))
	// Alice delegates after Bob voted: her weight goes straight to p1.
	mustCommit(t, run(t, w, alice, ballotAddr, "delegate", bob))
	winner := mustCommit(t, run(t, w, chair, ballotAddr, "winningProposal"))
	if winner.(uint64) != 1 {
		t.Fatalf("winner = %v, want 1", winner)
	}
}

func TestBallotDelegationChainFollowed(t *testing.T) {
	w := newWorld(t)
	newTestBallot(t, w)
	for _, v := range []types.Address{alice, bob, carol} {
		mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", v))
	}
	mustCommit(t, run(t, w, bob, ballotAddr, "delegate", carol))
	// Alice delegates to Bob, which must forward to Carol.
	mustCommit(t, run(t, w, alice, ballotAddr, "delegate", bob))
	mustCommit(t, run(t, w, carol, ballotAddr, "vote", uint64(0)))
	// Carol's vote now carries weight 3; verify by out-voting attempt.
	winner := mustCommit(t, run(t, w, chair, ballotAddr, "winningProposal"))
	if winner.(uint64) != 0 {
		t.Fatalf("winner = %v, want 0", winner)
	}
}

func TestBallotSelfDelegationThrows(t *testing.T) {
	w := newWorld(t)
	newTestBallot(t, w)
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", alice))
	mustRevert(t, run(t, w, alice, ballotAddr, "delegate", alice), "loop")
}

func TestBallotBackDelegationFollowsSolidityQuirk(t *testing.T) {
	// Faithful Solidity behaviour: with alice→bob in place, bob delegating
	// to alice exits the chain walk early (alice's delegate IS msg.sender)
	// and does NOT throw; bob's weight lands on alice's recorded vote
	// (proposal 0 by default) because alice counts as having voted.
	w := newWorld(t)
	newTestBallot(t, w)
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", alice))
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", bob))
	mustCommit(t, run(t, w, alice, ballotAddr, "delegate", bob))
	mustCommit(t, run(t, w, bob, ballotAddr, "delegate", alice))
	winner := mustCommit(t, run(t, w, chair, ballotAddr, "winningProposal"))
	if winner.(uint64) != 0 {
		t.Fatalf("winner = %v, want 0 (bob's weight on alice's default vote)", winner)
	}
}

func TestBallotDoubleDelegateThrows(t *testing.T) {
	w := newWorld(t)
	newTestBallot(t, w)
	mustCommit(t, run(t, w, chair, ballotAddr, "giveRightToVote", alice))
	mustCommit(t, run(t, w, alice, ballotAddr, "delegate", bob))
	mustRevert(t, run(t, w, alice, ballotAddr, "delegate", carol), "already voted")
}

// --- SimpleAuction ---------------------------------------------------------

func newTestAuction(t *testing.T, w *contract.World) *SimpleAuction {
	t.Helper()
	a, err := NewSimpleAuction(w, auctionAddr, chair)
	if err != nil {
		t.Fatalf("NewSimpleAuction: %v", err)
	}
	return a
}

func TestAuctionBidAndOutbid(t *testing.T) {
	w := newWorld(t)
	newTestAuction(t, w)
	mustCommit(t, run(t, w, alice, auctionAddr, "bid", uint64(100)))
	mustCommit(t, run(t, w, bob, auctionAddr, "bid", uint64(200)))
	highest := mustCommit(t, run(t, w, chair, auctionAddr, "highest"))
	if highest.(uint64) != 200 {
		t.Fatalf("highest = %v", highest)
	}
	// Low bid throws.
	mustRevert(t, run(t, w, carol, auctionAddr, "bid", uint64(150)), "does not beat")
}

func TestAuctionWithdrawAfterOutbid(t *testing.T) {
	w := newWorld(t)
	a := newTestAuction(t, w)
	_ = a
	// Fund the auction so withdrawals can pay out.
	_, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		if err := w.Mint(Setup(w), auctionAddr, 10_000); err != nil {
			t.Errorf("Mint: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	mustCommit(t, run(t, w, alice, auctionAddr, "bid", uint64(100)))
	mustCommit(t, run(t, w, bob, auctionAddr, "bid", uint64(200)))
	got := mustCommit(t, run(t, w, alice, auctionAddr, "withdraw"))
	if got.(uint64) != 100 {
		t.Fatalf("withdraw = %v, want 100", got)
	}
	// Second withdraw returns 0.
	got = mustCommit(t, run(t, w, alice, auctionAddr, "withdraw"))
	if got.(uint64) != 0 {
		t.Fatalf("second withdraw = %v, want 0", got)
	}
}

func TestAuctionBidPlusOne(t *testing.T) {
	w := newWorld(t)
	newTestAuction(t, w)
	mustCommit(t, run(t, w, alice, auctionAddr, "bid", uint64(10)))
	got := mustCommit(t, run(t, w, bob, auctionAddr, "bidPlusOne"))
	if got.(uint64) != 11 {
		t.Fatalf("bidPlusOne = %v, want 11", got)
	}
	highest := mustCommit(t, run(t, w, chair, auctionAddr, "highest"))
	if highest.(uint64) != 11 {
		t.Fatalf("highest = %v, want 11", highest)
	}
}

func TestAuctionEnd(t *testing.T) {
	w := newWorld(t)
	newTestAuction(t, w)
	_, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		if err := w.Mint(Setup(w), auctionAddr, 10_000); err != nil {
			t.Errorf("Mint: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	mustCommit(t, run(t, w, alice, auctionAddr, "bid", uint64(100)))
	mustRevert(t, run(t, w, alice, auctionAddr, "auctionEnd"), "only the beneficiary")
	mustCommit(t, run(t, w, chair, auctionAddr, "auctionEnd"))
	mustRevert(t, run(t, w, bob, auctionAddr, "bid", uint64(500)), "already ended")
	mustRevert(t, run(t, w, chair, auctionAddr, "auctionEnd"), "already ended")
}

func TestAuctionSeedBid(t *testing.T) {
	w := newWorld(t)
	a := newTestAuction(t, w)
	if err := w.Mint(Setup(w), auctionAddr, 10_000); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	if err := a.SeedBid(w, alice, 50); err != nil {
		t.Fatalf("SeedBid: %v", err)
	}
	if err := a.SeedBid(w, bob, 70); err != nil {
		t.Fatalf("SeedBid: %v", err)
	}
	if err := a.SeedBid(w, carol, 60); err == nil {
		t.Fatal("non-increasing seed bid accepted")
	}
	highest := mustCommit(t, run(t, w, chair, auctionAddr, "highest"))
	if highest.(uint64) != 70 {
		t.Fatalf("highest = %v, want 70", highest)
	}
	// Alice (outbid by the seed sequence) has a pending return.
	got := mustCommit(t, run(t, w, alice, auctionAddr, "withdraw"))
	if got.(uint64) != 50 {
		t.Fatalf("withdraw = %v, want 50", got)
	}
}

// --- EtherDoc ----------------------------------------------------------------

func newTestEtherDoc(t *testing.T, w *contract.World) *EtherDoc {
	t.Helper()
	e, err := NewEtherDoc(w, docAddr)
	if err != nil {
		t.Fatalf("NewEtherDoc: %v", err)
	}
	return e
}

func doc(s string) types.Hash { return types.HashString(s) }

func TestEtherDocCreateAndExists(t *testing.T) {
	w := newWorld(t)
	newTestEtherDoc(t, w)
	if got := mustCommit(t, run(t, w, alice, docAddr, "documentExists", doc("d1"))); got.(bool) {
		t.Fatal("unregistered document exists")
	}
	mustCommit(t, run(t, w, alice, docAddr, "createDocument", doc("d1")))
	if got := mustCommit(t, run(t, w, bob, docAddr, "documentExists", doc("d1"))); !got.(bool) {
		t.Fatal("registered document does not exist")
	}
	mustRevert(t, run(t, w, bob, docAddr, "createDocument", doc("d1")), "already exists")
	owner := mustCommit(t, run(t, w, bob, docAddr, "getOwner", doc("d1")))
	if owner.(types.Address) != alice {
		t.Fatalf("owner = %v, want alice", owner)
	}
}

func TestEtherDocTransferOwnership(t *testing.T) {
	w := newWorld(t)
	newTestEtherDoc(t, w)
	mustCommit(t, run(t, w, alice, docAddr, "createDocument", doc("d1")))
	mustRevert(t, run(t, w, bob, docAddr, "transferOwnership", doc("d1"), carol), "not the owner")
	mustCommit(t, run(t, w, alice, docAddr, "transferOwnership", doc("d1"), bob))
	owner := mustCommit(t, run(t, w, carol, docAddr, "getOwner", doc("d1")))
	if owner.(types.Address) != bob {
		t.Fatalf("owner = %v, want bob", owner)
	}
	aliceCount := mustCommit(t, run(t, w, chair, docAddr, "countForOwner", alice))
	bobCount := mustCommit(t, run(t, w, chair, docAddr, "countForOwner", bob))
	if aliceCount.(uint64) != 0 || bobCount.(uint64) != 1 {
		t.Fatalf("counts = %v/%v, want 0/1", aliceCount, bobCount)
	}
}

func TestEtherDocTransferMissingDocThrows(t *testing.T) {
	w := newWorld(t)
	newTestEtherDoc(t, w)
	mustRevert(t, run(t, w, alice, docAddr, "transferOwnership", doc("nope"), bob), "no such document")
}

func TestEtherDocSeed(t *testing.T) {
	w := newWorld(t)
	e := newTestEtherDoc(t, w)
	if err := e.SeedDocument(w, doc("d1"), alice); err != nil {
		t.Fatalf("SeedDocument: %v", err)
	}
	if got := mustCommit(t, run(t, w, bob, docAddr, "documentExists", doc("d1"))); !got.(bool) {
		t.Fatal("seeded document missing")
	}
	count := mustCommit(t, run(t, w, chair, docAddr, "countForOwner", alice))
	if count.(uint64) != 1 {
		t.Fatalf("count = %v, want 1", count)
	}
}

// --- Token -------------------------------------------------------------------

func newTestToken(t *testing.T, w *contract.World) *Token {
	t.Helper()
	tok, err := NewToken(w, tokenAddr, alice, 1000)
	if err != nil {
		t.Fatalf("NewToken: %v", err)
	}
	return tok
}

func TestTokenTransfer(t *testing.T) {
	w := newWorld(t)
	newTestToken(t, w)
	mustCommit(t, run(t, w, alice, tokenAddr, "transfer", bob, uint64(300)))
	got := mustCommit(t, run(t, w, chair, tokenAddr, "balanceOf", bob))
	if got.(uint64) != 300 {
		t.Fatalf("bob balance = %v", got)
	}
	mustRevert(t, run(t, w, bob, tokenAddr, "transfer", carol, uint64(9999)), "underflow")
	supply := mustCommit(t, run(t, w, chair, tokenAddr, "totalSupply"))
	if supply.(uint64) != 1000 {
		t.Fatalf("supply = %v", supply)
	}
}

func TestTokenApproveTransferFrom(t *testing.T) {
	w := newWorld(t)
	newTestToken(t, w)
	mustCommit(t, run(t, w, alice, tokenAddr, "approve", bob, uint64(100)))
	mustCommit(t, run(t, w, bob, tokenAddr, "transferFrom", alice, carol, uint64(60)))
	got := mustCommit(t, run(t, w, chair, tokenAddr, "balanceOf", carol))
	if got.(uint64) != 60 {
		t.Fatalf("carol balance = %v", got)
	}
	// Remaining allowance 40: a 50 transfer must throw.
	mustRevert(t, run(t, w, bob, tokenAddr, "transferFrom", alice, carol, uint64(50)), "allowance")
}

func TestVoterAndDocMetaEncodeDistinct(t *testing.T) {
	v1 := Voter{Weight: 1, Voted: true, Vote: 2}
	v2 := Voter{Weight: 1, Voted: true, Vote: 3}
	if string(v1.EncodeValue()) == string(v2.EncodeValue()) {
		t.Fatal("Voter encodings collide")
	}
	d1 := DocMeta{Owner: alice, Exists: true}
	d2 := DocMeta{Owner: alice, Exists: false}
	if string(d1.EncodeValue()) == string(d2.EncodeValue()) {
		t.Fatal("DocMeta encodings collide")
	}
}
