// Package contracts contains the smart contracts used by the paper's
// evaluation — Ballot, SimpleAuction and EtherDoc — hand-translated from
// Solidity to Go against the boosted-storage API, following the same
// methodology as the paper's Scala translation (§6): every contract
// function runs as one speculative transaction, Solidity mappings become
// boosted maps, struct types become immutable value types, and throw
// becomes Env.Throw.
//
// A small Token contract (not in the paper) is included for the examples.
//
// Translation notes that matter for concurrency:
//
//   - Ballot's proposals array of structs is split into a names array and a
//     voteCounts array so that "voteCount += weight" can use the boosted
//     increment operation; concurrent votes for the same proposal commute,
//     which reproduces the paper's observation that Ballot barely suffers
//     from added data conflict.
//   - EtherDoc's per-owner document count is deliberately translated as a
//     read-modify-write (Get+Put) rather than an increment: it reproduces
//     the naive translation whose transfers all contend on the same shared
//     entry, matching the paper's "we expect a faster drop-off … because
//     each contending transaction touches the same shared data".
package contracts

import (
	"fmt"

	"contractstm/internal/contract"
	"contractstm/internal/storage"
	"contractstm/internal/types"
)

// Voter is Ballot's per-address record (Appendix A of the paper).
// Voter values are immutable: functions store fresh copies.
type Voter struct {
	// Weight is accumulated by delegation; 0 means "may not vote".
	Weight uint64
	// Voted reports whether the voter already cast (or delegated) a vote.
	Voted bool
	// Delegate is the address the vote was delegated to, if any.
	Delegate types.Address
	// Vote is the index of the voted proposal.
	Vote uint64
}

// EncodeValue implements storage.Encoder.
func (v Voter) EncodeValue() []byte {
	out := make([]byte, 0, 8+1+types.AddressLen+8)
	out = append(out, types.Uint64Bytes(v.Weight)...)
	if v.Voted {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, v.Delegate[:]...)
	return append(out, types.Uint64Bytes(v.Vote)...)
}

// Ballot is the voting-with-delegation contract from the Solidity
// documentation, the paper's first benchmark.
type Ballot struct {
	addr        types.Address
	chairperson *storage.Cell
	voters      *storage.Map
	// proposalNames[i] / voteCounts[i] together form Solidity's
	// proposals[i] struct; see the package comment.
	proposalNames *storage.Array
	voteCounts    *storage.Array
}

var _ contract.Contract = (*Ballot)(nil)

// NewBallot deploys a Ballot chaired by chairperson with the given
// proposal names. The chairperson gets weight 1, per the Solidity
// constructor.
func NewBallot(w *contract.World, addr, chairperson types.Address, proposalNames []string) (*Ballot, error) {
	store := w.Store()
	prefix := "ballot:" + addr.Short()
	chairCell, err := storage.NewCell(store, prefix+"/chairperson", chairperson)
	if err != nil {
		return nil, err
	}
	voters, err := storage.NewMap(store, prefix+"/voters")
	if err != nil {
		return nil, err
	}
	names, err := storage.NewArray(store, prefix+"/proposalNames")
	if err != nil {
		return nil, err
	}
	counts, err := storage.NewArray(store, prefix+"/voteCounts")
	if err != nil {
		return nil, err
	}
	b := &Ballot{
		addr:          addr,
		chairperson:   chairCell,
		voters:        voters,
		proposalNames: names,
		voteCounts:    counts,
	}
	if err := w.Deploy(b); err != nil {
		return nil, err
	}
	// Constructor effects, applied at genesis (non-transactional setup).
	if err := initRaw(w, func(ex *setupExec) error {
		if err := voters.Put(ex, storage.KeyAddr(chairperson), Voter{Weight: 1}); err != nil {
			return err
		}
		for _, name := range proposalNames {
			if _, err := names.Push(ex, name); err != nil {
				return err
			}
			if _, err := counts.Push(ex, uint64(0)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("ballot constructor: %w", err)
	}
	return b, nil
}

// ContractAddress implements contract.Contract.
func (b *Ballot) ContractAddress() types.Address { return b.addr }

// Invoke implements contract.Contract.
func (b *Ballot) Invoke(env *contract.Env, fn string, args []any) any {
	switch fn {
	case "giveRightToVote":
		b.giveRightToVote(env, mustAddr(env, args, 0))
		return nil
	case "delegate":
		b.delegate(env, mustAddr(env, args, 0))
		return nil
	case "vote":
		b.vote(env, mustUint(env, args, 0))
		return nil
	case "winningProposal":
		return b.winningProposal(env)
	case "winnerName":
		return b.winnerName(env)
	default:
		env.Throw("ballot: unknown function %q", fn)
		return nil
	}
}

// giveRightToVote grants voter a unit voting weight; chairperson only.
func (b *Ballot) giveRightToVote(env *contract.Env, voter types.Address) {
	env.UseGas(40)
	chair, err := b.chairperson.Read(env.Ex())
	env.Do(err)
	v := b.getVoter(env, voter)
	if env.Msg().Sender != chair.(types.Address) || v.Voted {
		env.Throw("giveRightToVote: not chairperson or voter already voted")
	}
	v.Weight = 1
	env.Do(b.voters.Put(env.Ex(), storage.KeyAddr(voter), v))
}

// delegate transfers the sender's vote to `to`, following delegation
// chains and rejecting loops, per the Solidity original.
func (b *Ballot) delegate(env *contract.Env, to types.Address) {
	env.UseGas(60)
	senderAddr := env.Msg().Sender
	sender := b.getVoter(env, senderAddr)
	if sender.Voted {
		env.Throw("delegate: sender already voted")
	}
	// Forward the delegation while `to` also delegated. Each hop reads
	// another voter record (and burns gas, bounding the walk).
	for {
		d := b.getVoter(env, to)
		if d.Delegate.IsZero() || d.Delegate == senderAddr {
			break
		}
		to = d.Delegate
		env.UseGas(20)
	}
	if to == senderAddr {
		env.Throw("delegate: delegation loop")
	}
	sender.Voted = true
	sender.Delegate = to
	env.Do(b.voters.Put(env.Ex(), storage.KeyAddr(senderAddr), sender))
	d := b.getVoter(env, to)
	if d.Voted {
		// Delegate already voted: add directly to that proposal's count.
		env.Do(b.voteCounts.AddUint(env.Ex(), int(d.Vote), sender.Weight))
	} else {
		d.Weight += sender.Weight
		env.Do(b.voters.Put(env.Ex(), storage.KeyAddr(to), d))
	}
}

// vote casts the sender's weight for the proposal. A second vote throws —
// the race the paper's Listing 1 highlights as needing serializability.
func (b *Ballot) vote(env *contract.Env, proposal uint64) {
	env.UseGas(80)
	senderAddr := env.Msg().Sender
	sender := b.getVoter(env, senderAddr)
	if sender.Voted {
		env.Throw("vote: already voted")
	}
	sender.Voted = true
	sender.Vote = proposal
	env.Do(b.voters.Put(env.Ex(), storage.KeyAddr(senderAddr), sender))
	// Out-of-range proposals throw via the array bounds check, mirroring
	// Solidity's automatic revert. The count update is a boosted increment:
	// concurrent votes for one proposal commute.
	env.Do(b.voteCounts.AddUint(env.Ex(), int(proposal), sender.Weight))
}

// winningProposal scans all proposals for the highest count.
func (b *Ballot) winningProposal(env *contract.Env) uint64 {
	env.UseGas(30)
	n, err := b.voteCounts.Len(env.Ex())
	env.Do(err)
	var winner, winning uint64
	for p := 0; p < n; p++ {
		count, err := b.voteCounts.GetUint(env.Ex(), p)
		env.Do(err)
		env.UseGas(5)
		if count > winning {
			winning = count
			winner = uint64(p)
		}
	}
	return winner
}

// winnerName returns the winning proposal's name.
func (b *Ballot) winnerName(env *contract.Env) string {
	w := b.winningProposal(env)
	name, err := b.proposalNames.Get(env.Ex(), int(w))
	env.Do(err)
	return name.(string)
}

// SeedVoter registers a voter with unit weight at genesis (benchmark
// fixture: "the contract is put into an initial state where voters are
// already registered", §7.1).
func (b *Ballot) SeedVoter(w *contract.World, voter types.Address) error {
	return initRaw(w, func(ex *setupExec) error {
		return b.voters.Put(ex, storage.KeyAddr(voter), Voter{Weight: 1})
	})
}

// getVoter loads a Voter record (zero record when absent, like Solidity's
// default-initialized mapping values).
func (b *Ballot) getVoter(env *contract.Env, addr types.Address) Voter {
	v, ok, err := b.voters.Get(env.Ex(), storage.KeyAddr(addr))
	env.Do(err)
	if !ok {
		return Voter{}
	}
	voter, isVoter := v.(Voter)
	if !isVoter {
		env.Throw("ballot: corrupt voter record for %s", addr.Short())
	}
	return voter
}
