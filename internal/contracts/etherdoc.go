package contracts

import (
	"contractstm/internal/contract"
	"contractstm/internal/storage"
	"contractstm/internal/types"
)

// DocMeta is EtherDoc's per-document record.
type DocMeta struct {
	// Owner is the current document owner.
	Owner types.Address
	// Exists distinguishes registered documents (mapping values default to
	// the zero record in Solidity).
	Exists bool
}

// EncodeValue implements storage.Encoder.
func (d DocMeta) EncodeValue() []byte {
	out := make([]byte, 0, types.AddressLen+1)
	out = append(out, d.Owner[:]...)
	if d.Exists {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// EtherDoc is the "proof of existence" DAPP from the paper's third
// benchmark: it tracks per-document metadata (hashcode → owner) and
// supports creation, existence checks and ownership transfer.
type EtherDoc struct {
	addr types.Address
	// docs maps document hashcodes to metadata; distinct documents use
	// distinct abstract locks.
	docs *storage.Map
	// ownerDocCount maps owners to how many documents they hold. Its
	// updates are deliberately translated as read-modify-write (Get+Put,
	// exclusive) rather than boosted increments — see the package comment:
	// this reproduces the contention the paper observes when every
	// transfer targets the same new owner.
	ownerDocCount *storage.Map
	// totalDocs counts registered documents.
	totalDocs *storage.Cell
}

var _ contract.Contract = (*EtherDoc)(nil)

// NewEtherDoc deploys an empty document registry.
func NewEtherDoc(w *contract.World, addr types.Address) (*EtherDoc, error) {
	store := w.Store()
	prefix := "etherdoc:" + addr.Short()
	docs, err := storage.NewMap(store, prefix+"/docs")
	if err != nil {
		return nil, err
	}
	counts, err := storage.NewMap(store, prefix+"/ownerDocCount")
	if err != nil {
		return nil, err
	}
	total, err := storage.NewCell(store, prefix+"/totalDocs", uint64(0))
	if err != nil {
		return nil, err
	}
	e := &EtherDoc{addr: addr, docs: docs, ownerDocCount: counts, totalDocs: total}
	if err := w.Deploy(e); err != nil {
		return nil, err
	}
	return e, nil
}

// ContractAddress implements contract.Contract.
func (e *EtherDoc) ContractAddress() types.Address { return e.addr }

// Invoke implements contract.Contract.
func (e *EtherDoc) Invoke(env *contract.Env, fn string, args []any) any {
	switch fn {
	case "createDocument":
		e.createDocument(env, mustHash(env, args, 0))
		return nil
	case "documentExists":
		return e.documentExists(env, mustHash(env, args, 0))
	case "getOwner":
		return e.getOwner(env, mustHash(env, args, 0))
	case "transferOwnership":
		e.transferOwnership(env, mustHash(env, args, 0), mustAddr(env, args, 1))
		return nil
	case "countForOwner":
		n, err := e.ownerDocCount.GetUint(env.Ex(), storage.KeyAddr(mustAddr(env, args, 0)))
		env.Do(err)
		return n
	default:
		env.Throw("etherdoc: unknown function %q", fn)
		return nil
	}
}

// createDocument registers a new document owned by the sender.
func (e *EtherDoc) createDocument(env *contract.Env, hash types.Hash) {
	env.UseGas(70)
	if e.loadDoc(env, hash).Exists {
		env.Throw("createDocument: document already exists")
	}
	sender := env.Msg().Sender
	env.Do(e.docs.Put(env.Ex(), storage.KeyHash(hash), DocMeta{Owner: sender, Exists: true}))
	e.bumpOwnerCount(env, sender, 1)
	env.Do(e.totalDocs.AddUint(env.Ex(), 1))
}

// documentExists checks a document by hashcode — the paper's base
// workload: "transactions consist of owners checking the existence of the
// document by hashcode".
func (e *EtherDoc) documentExists(env *contract.Env, hash types.Hash) bool {
	env.UseGas(40)
	return e.loadDoc(env, hash).Exists
}

// getOwner returns the document's owner.
func (e *EtherDoc) getOwner(env *contract.Env, hash types.Hash) types.Address {
	env.UseGas(30)
	doc := e.loadDoc(env, hash)
	if !doc.Exists {
		env.Throw("getOwner: no such document")
	}
	return doc.Owner
}

// transferOwnership moves a document to a new owner — the paper's
// conflict workload ("transactions that transfer ownership to the contract
// creator": every contending transfer read-modify-writes the same
// ownerDocCount entry).
func (e *EtherDoc) transferOwnership(env *contract.Env, hash types.Hash, newOwner types.Address) {
	env.UseGas(60)
	doc := e.loadDoc(env, hash)
	if !doc.Exists {
		env.Throw("transferOwnership: no such document")
	}
	if doc.Owner != env.Msg().Sender {
		env.Throw("transferOwnership: sender is not the owner")
	}
	if doc.Owner == newOwner {
		return
	}
	e.bumpOwnerCount(env, doc.Owner, -1)
	e.bumpOwnerCount(env, newOwner, 1)
	doc.Owner = newOwner
	env.Do(e.docs.Put(env.Ex(), storage.KeyHash(hash), doc))
}

// bumpOwnerCount adjusts an owner's document count via Get+Put: an
// exclusive read-modify-write by design (see the field comment).
func (e *EtherDoc) bumpOwnerCount(env *contract.Env, owner types.Address, delta int64) {
	cur, err := e.ownerDocCount.GetUint(env.Ex(), storage.KeyAddr(owner))
	env.Do(err)
	next := uint64(int64(cur) + delta)
	if delta < 0 && cur == 0 {
		env.Throw("etherdoc: owner count underflow for %s", owner.Short())
	}
	env.Do(e.ownerDocCount.Put(env.Ex(), storage.KeyAddr(owner), next))
}

func (e *EtherDoc) loadDoc(env *contract.Env, hash types.Hash) DocMeta {
	v, ok, err := e.docs.Get(env.Ex(), storage.KeyHash(hash))
	env.Do(err)
	if !ok {
		return DocMeta{}
	}
	doc, isDoc := v.(DocMeta)
	if !isDoc {
		env.Throw("etherdoc: corrupt document record")
	}
	return doc
}

// SeedDocument registers a document at genesis (benchmark fixture: "the
// contract is initialized with a number of documents and owners").
func (e *EtherDoc) SeedDocument(w *contract.World, hash types.Hash, owner types.Address) error {
	return initRaw(w, func(ex *setupExec) error {
		if err := e.docs.Put(ex, storage.KeyHash(hash), DocMeta{Owner: owner, Exists: true}); err != nil {
			return err
		}
		cur, err := e.ownerDocCount.GetUint(ex, storage.KeyAddr(owner))
		if err != nil {
			return err
		}
		if err := e.ownerDocCount.Put(ex, storage.KeyAddr(owner), cur+1); err != nil {
			return err
		}
		return e.totalDocs.AddUint(ex, 1)
	})
}
