package storage

import (
	"testing"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

func TestNoIncrementModeDowngradesAdds(t *testing.T) {
	s := NewStore()
	m := mustMap(t, s, "abl/m")
	a := mustArray(t, s, "abl/a")
	c := mustCell(t, s, "abl/c", uint64(0))
	s.SetNoIncrement(true)

	mgr := stm.NewManager(gas.DefaultSchedule())
	_, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), stm.PolicyEager)
		if err := m.AddUint(tx, "k", 1); err != nil {
			t.Errorf("map add: %v", err)
		}
		if _, err := a.Push(tx, uint64(0)); err != nil {
			t.Errorf("push: %v", err)
		}
		if err := a.AddUint(tx, 0, 1); err != nil {
			t.Errorf("array add: %v", err)
		}
		if err := c.AddUint(tx, 1); err != nil {
			t.Errorf("cell add: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
		for _, e := range tx.Profile().Entries {
			if e.Mode == stm.ModeIncrement {
				t.Errorf("lock %s still in increment mode under no-increment ablation", e.Lock)
			}
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestCoarseLocksCollapseToObjectLock(t *testing.T) {
	s := NewStore()
	m := mustMap(t, s, "abl/m")
	s.SetCoarseLocks(true)

	mgr := stm.NewManager(gas.DefaultSchedule())
	_, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), stm.PolicyEager)
		if err := m.Put(tx, "k1", uint64(1)); err != nil {
			t.Errorf("put k1: %v", err)
		}
		if err := m.Put(tx, "k2", uint64(2)); err != nil {
			t.Errorf("put k2: %v", err)
		}
		if err := m.AddUint(tx, "k3", 3); err != nil {
			t.Errorf("add k3: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
		p := tx.Profile()
		if len(p.Entries) != 1 {
			t.Fatalf("coarse mode produced %d locks, want 1 object lock: %+v", len(p.Entries), p.Entries)
		}
		if p.Entries[0].Lock.Key != "" || p.Entries[0].Mode != stm.ModeExclusive {
			t.Fatalf("object lock = %+v, want key-less exclusive", p.Entries[0])
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestCoarseLocksCreateFalseConflicts(t *testing.T) {
	// Two workers writing DISTINCT keys of one map: fine-grained locks let
	// them overlap; coarse locks serialize them. Measured via simulated
	// makespan.
	measure := func(coarse bool) uint64 {
		s := NewStore()
		m := mustMap(t, s, "abl/m")
		s.SetCoarseLocks(coarse)
		mgr := stm.NewManager(gas.DefaultSchedule())
		ms, err := runtime.NewSimRunner().Run(2, func(th runtime.Thread) {
			key := "k" + KeyUint(uint64(th.ID()))
			tx := stm.BeginSpeculative(mgr, types.TxID(th.ID()), th, gas.NewMeter(1_000_000), stm.PolicyEager)
			if err := m.Put(tx, key, uint64(7)); err != nil {
				t.Errorf("put: %v", err)
			}
			th.Work(500)
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
			}
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return ms
	}
	fine := measure(false)
	coarse := measure(true)
	if coarse <= fine {
		t.Fatalf("coarse locks (%d) should be slower than fine-grained (%d) on disjoint keys", coarse, fine)
	}
	if coarse < 2*fine*8/10 {
		t.Fatalf("coarse locks should roughly serialize: %d vs fine %d", coarse, fine)
	}
}

func TestCoarseLocksStillSerializable(t *testing.T) {
	// Same state root under coarse and fine locking for a commuting
	// workload (correctness is unaffected; only concurrency is lost).
	build := func(coarse bool) types.Hash {
		s := NewStore()
		m := mustMap(t, s, "abl/m")
		s.SetCoarseLocks(coarse)
		mgr := stm.NewManager(gas.DefaultSchedule())
		_, err := runtime.NewSimRunner().Run(3, func(th runtime.Thread) {
			for i := 0; i < 5; i++ {
				tx := stm.BeginSpeculative(mgr, types.TxID(th.ID()*10+i), th, gas.NewMeter(1_000_000), stm.PolicyEager)
				if err := m.AddUint(tx, "k"+KeyUint(uint64(th.ID())), uint64(i)); err != nil {
					t.Errorf("add: %v", err)
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
				}
			}
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		root, err := s.StateRoot()
		if err != nil {
			t.Fatalf("root: %v", err)
		}
		return root
	}
	if build(true) != build(false) {
		t.Fatal("coarse and fine locking disagree on final state")
	}
}
