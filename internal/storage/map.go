package storage

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"contractstm/internal/crypto"
	"contractstm/internal/stm"
)

// Map is a boosted hash table: the translation of a Solidity mapping
// (§6: "Solidity mapping objects are implemented as boosted hashtables,
// where key values are used to index abstract locks").
//
// Concurrency: the abstract lock for key k is {Scope: name, Key: k}; the raw
// table is additionally guarded by a plain mutex because Go maps do not
// tolerate concurrent access even to distinct keys. The mutex is held only
// for the raw operation, never across a lock wait.
type Map struct {
	name  string
	id    uint64
	store *Store
	raw   rawMap
}

type rawMap struct {
	mu sync.Mutex
	m  map[string]any
}

// NewMap creates a boosted map registered in s under the given name (which
// becomes its lock scope and state-root prefix).
func NewMap(s *Store, name string) (*Map, error) {
	m := &Map{name: name, store: s, raw: rawMap{m: make(map[string]any)}}
	id, err := s.register(name, m)
	if err != nil {
		return nil, err
	}
	m.id = id
	return m, nil
}

// Name returns the map's lock scope.
func (m *Map) Name() string { return m.name }

func (m *Map) lock(key string) stm.LockID {
	if m.store.coarse() {
		return stm.LockID{Scope: m.name}
	}
	return stm.LockID{Scope: m.name, Key: key}
}

// Get returns the value bound to key, or (nil, false) when absent.
// A shared-mode storage operation.
func (m *Map) Get(ex stm.Executor, key string) (any, bool, error) {
	if err := ex.Access(m.lock(key), stm.ModeShared, ex.Schedule().MapRead); err != nil {
		return nil, false, err
	}
	if ov := ex.Overlay(); ov != nil {
		if v, deleted, ok := ov.Get(m.overlayKey(key)); ok {
			if n, isUint := v.(uint64); isUint && n == 0 {
				return nil, false, nil // canonical zero: see rawPut
			}
			return v, !deleted, nil
		}
		if d, buffered := ov.Delta(m.overlayKey(key)); buffered {
			// Read-your-increments: a buffered delta is visible to the
			// buffering transaction as raw value plus delta. Deltas are
			// only buffered against verified uint64 counters.
			base, _ := m.rawGet(key)
			n, _ := base.(uint64)
			n = uint64(int64(n) + d)
			if n == 0 {
				return nil, false, nil // canonical zero
			}
			return n, true, nil
		}
	}
	v, ok := m.rawGet(key)
	return v, ok, nil
}

// Contains reports whether key is bound. A shared-mode storage operation.
func (m *Map) Contains(ex stm.Executor, key string) (bool, error) {
	_, ok, err := m.Get(ex, key)
	return ok, err
}

// Put binds key to val. An exclusive-mode storage operation whose inverse
// restores the prior binding (or absence).
func (m *Map) Put(ex stm.Executor, key string, val any) error {
	if err := ex.Access(m.lock(key), stm.ModeExclusive, ex.Schedule().MapWrite); err != nil {
		return err
	}
	if ov := ex.Overlay(); ov != nil {
		ov.Put(m.overlayKey(key), val, false, func(v any, deleted bool) {
			m.applyOverlay(key, v, deleted)
		})
		return nil
	}
	prev, had := m.rawGet(key)
	ex.LogUndo(func() {
		if had {
			m.rawPut(key, prev)
		} else {
			m.rawDelete(key)
		}
	})
	m.rawPut(key, val)
	return nil
}

// Delete removes key's binding. An exclusive-mode storage operation whose
// inverse re-adds the binding.
func (m *Map) Delete(ex stm.Executor, key string) error {
	if err := ex.Access(m.lock(key), stm.ModeExclusive, ex.Schedule().MapDelete); err != nil {
		return err
	}
	if ov := ex.Overlay(); ov != nil {
		ov.Put(m.overlayKey(key), nil, true, func(v any, deleted bool) {
			m.applyOverlay(key, v, deleted)
		})
		return nil
	}
	prev, had := m.rawGet(key)
	if !had {
		return nil
	}
	ex.LogUndo(func() { m.rawPut(key, prev) })
	m.rawDelete(key)
	return nil
}

// AddUint adds delta to the uint64 counter bound to key (missing keys count
// as zero). An increment-mode operation: concurrent AddUints on the same
// key commute, which is what keeps Ballot's vote tallies parallel. The
// inverse subtracts delta.
func (m *Map) AddUint(ex stm.Executor, key string, delta uint64) error {
	if err := ex.Access(m.lock(key), m.addMode(), ex.Schedule().MapWrite); err != nil {
		return err
	}
	// Buffered regimes (lazy and OCC) record the increment as a delta
	// entry, not an absolute value: deltas from different transactions
	// accumulate at apply time, so commutativity survives buffering — and
	// an increment never clobbers (or is clobbered by) a buffered write
	// to the same slot, because delta-after-Put folds into the buffered
	// value.
	if ov := ex.Overlay(); ov != nil {
		if _, err := m.effectiveUint(ov, key); err != nil {
			return err
		}
		ov.Add(m.overlayKey(key), int64(delta), func(d int64) { m.rawAdd(key, d) })
		return nil
	}
	if cur, had := m.rawGet(key); had {
		if _, ok := cur.(uint64); !ok {
			return fmt.Errorf("%w: %s[%q] holds %T", ErrNotCounter, m.name, key, cur)
		}
	}
	// Plain subtraction is a correct inverse in any interleaving of
	// commuting adds because the raw layer canonicalizes zero counters to
	// absent bindings (EVM storage semantics); see rawAdd/rawPut.
	ex.LogUndo(func() { m.rawAdd(key, -int64(delta)) })
	m.rawAdd(key, int64(delta))
	return nil
}

// addMode returns the lock mode for AddUint: increment normally, but
// exclusive under either ablation (no-increment or coarse region locks,
// which cannot see commutativity).
func (m *Map) addMode() stm.Mode {
	if m.store.coarse() {
		return stm.ModeExclusive
	}
	return m.store.incrementMode()
}

// SubUint subtracts delta from the uint64 counter bound to key, failing
// with ErrUnderflow if the counter is smaller than delta. Unlike AddUint
// this is NOT commutative (it observes the current value), so it takes the
// lock exclusively. The inverse adds delta back.
func (m *Map) SubUint(ex stm.Executor, key string, delta uint64) error {
	if err := ex.Access(m.lock(key), stm.ModeExclusive, ex.Schedule().MapWrite); err != nil {
		return err
	}
	if ov := ex.Overlay(); ov != nil {
		base, err := m.effectiveUint(ov, key)
		if err != nil {
			return err
		}
		if base < delta {
			return fmt.Errorf("%s[%q]: %d - %d: %w", m.name, key, base, delta, ErrUnderflow)
		}
		ov.Add(m.overlayKey(key), -int64(delta), func(d int64) { m.rawAdd(key, d) })
		return nil
	}
	cur, had := m.rawGet(key)
	var base uint64
	if had {
		b, ok := cur.(uint64)
		if !ok {
			return fmt.Errorf("%w: %s[%q] holds %T", ErrNotCounter, m.name, key, cur)
		}
		base = b
	}
	if base < delta {
		return fmt.Errorf("%s[%q]: %d - %d: %w", m.name, key, base, delta, ErrUnderflow)
	}
	ex.LogUndo(func() { m.rawAdd(key, int64(delta)) })
	m.rawAdd(key, -int64(delta))
	return nil
}

// effectiveUint reads the counter at key as seen through an overlay: a
// buffered absolute value, raw plus a buffered delta, or raw (absent
// counts as zero). It fails with ErrNotCounter on non-uint64 slots.
func (m *Map) effectiveUint(ov *stm.Overlay, key string) (uint64, error) {
	if v, deleted, ok := ov.Get(m.overlayKey(key)); ok {
		if deleted {
			return 0, nil
		}
		n, isUint := v.(uint64)
		if !isUint {
			return 0, fmt.Errorf("%w: %s[%q] holds %T", ErrNotCounter, m.name, key, v)
		}
		return n, nil
	}
	var base uint64
	if cur, had := m.rawGet(key); had {
		n, isUint := cur.(uint64)
		if !isUint {
			return 0, fmt.Errorf("%w: %s[%q] holds %T", ErrNotCounter, m.name, key, cur)
		}
		base = n
	}
	d, _ := ov.Delta(m.overlayKey(key))
	return uint64(int64(base) + d), nil
}

// GetUint reads the counter at key (0 when absent). Shared mode.
func (m *Map) GetUint(ex stm.Executor, key string) (uint64, error) {
	v, ok, err := m.Get(ex, key)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	n, isUint := v.(uint64)
	if !isUint {
		return 0, fmt.Errorf("%w: %s[%q] holds %T", ErrNotCounter, m.name, key, v)
	}
	return n, nil
}

func (m *Map) overlayKey(key string) stm.OverlayKey {
	return stm.OverlayKey{Obj: m.id, Key: key}
}

func (m *Map) applyOverlay(key string, v any, deleted bool) {
	if deleted {
		m.rawDelete(key)
		return
	}
	m.rawPut(key, v)
}

// raw accessors, each a short critical section on the raw mutex.

func (m *Map) rawGet(key string) (any, bool) {
	m.raw.mu.Lock()
	defer m.raw.mu.Unlock()
	v, ok := m.raw.m[key]
	return v, ok
}

// rawPut stores a binding. Like EVM storage, writing the zero counter
// clears the slot: uint64(0) and "absent" are one canonical state, which is
// what makes subtraction a correct inverse for commutative adds in every
// abort interleaving.
func (m *Map) rawPut(key string, v any) {
	m.raw.mu.Lock()
	defer m.raw.mu.Unlock()
	if n, isUint := v.(uint64); isUint && n == 0 {
		delete(m.raw.m, key)
		return
	}
	m.raw.m[key] = v
}

func (m *Map) rawDelete(key string) {
	m.raw.mu.Lock()
	defer m.raw.mu.Unlock()
	delete(m.raw.m, key)
}

func (m *Map) rawAdd(key string, delta int64) {
	m.raw.mu.Lock()
	defer m.raw.mu.Unlock()
	var cur uint64
	if v, ok := m.raw.m[key]; ok {
		cur, _ = v.(uint64)
	}
	next := uint64(int64(cur) + delta)
	if next == 0 {
		delete(m.raw.m, key) // canonical zero: see rawPut
		return
	}
	m.raw.m[key] = next
}

// Len returns the raw size (diagnostics/tests only; not transactional).
func (m *Map) Len() int {
	m.raw.mu.Lock()
	defer m.raw.mu.Unlock()
	return len(m.raw.m)
}

// objectName implements object.
func (m *Map) objectName() string { return m.name }

// stateEntries implements object.
func (m *Map) stateEntries(dst []crypto.StateEntry) ([]crypto.StateEntry, error) {
	m.raw.mu.Lock()
	keys := make([]string, 0, len(m.raw.m))
	for k := range m.raw.m {
		keys = append(keys, k)
	}
	vals := make(map[string]any, len(m.raw.m))
	for k, v := range m.raw.m {
		vals[k] = v
	}
	m.raw.mu.Unlock()

	sort.Strings(keys)
	for _, k := range keys {
		enc, err := encodeValue(vals[k])
		if err != nil {
			return nil, fmt.Errorf("key %q: %w", k, err)
		}
		dst = append(dst, crypto.StateEntry{Key: []byte(m.name + "\x00" + k), Value: enc})
	}
	return dst, nil
}

// snapshot implements object.
func (m *Map) snapshot() any {
	m.raw.mu.Lock()
	defer m.raw.mu.Unlock()
	cp := make(map[string]any, len(m.raw.m))
	for k, v := range m.raw.m {
		cp[k] = v
	}
	return cp
}

// restore implements object.
func (m *Map) restore(snap any) {
	src := snap.(map[string]any)
	m.raw.mu.Lock()
	defer m.raw.mu.Unlock()
	m.raw.m = make(map[string]any, len(src))
	for k, v := range src {
		m.raw.m[k] = v
	}
}

// itoa is a tiny helper shared with Array for index keys in diagnostics.
func itoa(i int) string { return strconv.Itoa(i) }
