package storage

import (
	"errors"
	"testing"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// withTx runs body with a fresh speculative transaction on a single
// simulated thread and a generous meter. The returned tx is left to body to
// commit or abort.
func withTx(t *testing.T, policy stm.Policy, body func(tx *stm.Tx)) {
	t.Helper()
	mgr := stm.NewManager(gas.DefaultSchedule())
	_, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSpeculative(mgr, 0, th, gas.NewMeter(10_000_000), policy)
		body(tx)
	})
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
}

func mustMap(t *testing.T, s *Store, name string) *Map {
	t.Helper()
	m, err := NewMap(s, name)
	if err != nil {
		t.Fatalf("NewMap(%s): %v", name, err)
	}
	return m
}

func mustArray(t *testing.T, s *Store, name string) *Array {
	t.Helper()
	a, err := NewArray(s, name)
	if err != nil {
		t.Fatalf("NewArray(%s): %v", name, err)
	}
	return a
}

func mustCell(t *testing.T, s *Store, name string, init any) *Cell {
	t.Helper()
	c, err := NewCell(s, name, init)
	if err != nil {
		t.Fatalf("NewCell(%s): %v", name, err)
	}
	return c
}

func TestMapPutGetDelete(t *testing.T) {
	s := NewStore()
	m := mustMap(t, s, "test/m")
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		if err := m.Put(tx, "k", uint64(7)); err != nil {
			t.Errorf("Put: %v", err)
		}
		v, ok, err := m.Get(tx, "k")
		if err != nil || !ok || v.(uint64) != 7 {
			t.Errorf("Get = (%v,%v,%v)", v, ok, err)
		}
		has, err := m.Contains(tx, "missing")
		if err != nil || has {
			t.Errorf("Contains(missing) = (%v,%v)", has, err)
		}
		if err := m.Delete(tx, "k"); err != nil {
			t.Errorf("Delete: %v", err)
		}
		if _, ok, _ := m.Get(tx, "k"); ok {
			t.Error("key visible after delete")
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestMapAbortRestoresState(t *testing.T) {
	s := NewStore()
	m := mustMap(t, s, "test/m")
	// Seed initial state.
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		if err := m.Put(tx, "existing", uint64(1)); err != nil {
			t.Errorf("seed put: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("seed commit: %v", err)
		}
	})
	rootBefore, err := s.StateRoot()
	if err != nil {
		t.Fatalf("StateRoot: %v", err)
	}
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		_ = m.Put(tx, "existing", uint64(99)) // overwrite
		_ = m.Put(tx, "new", uint64(5))       // insert
		_ = m.Delete(tx, "existing")          // then delete
		if err := tx.Abort(); err != nil {
			t.Errorf("abort: %v", err)
		}
	})
	rootAfter, err := s.StateRoot()
	if err != nil {
		t.Fatalf("StateRoot: %v", err)
	}
	if rootBefore != rootAfter {
		t.Fatal("abort did not restore the exact prior state")
	}
}

func TestMapAddUintAndInverse(t *testing.T) {
	s := NewStore()
	m := mustMap(t, s, "test/m")
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		if err := m.AddUint(tx, "c", 5); err != nil {
			t.Errorf("AddUint: %v", err)
		}
		if err := m.AddUint(tx, "c", 3); err != nil {
			t.Errorf("AddUint: %v", err)
		}
		n, err := m.GetUint(tx, "c")
		if err != nil || n != 8 {
			t.Errorf("GetUint = (%d,%v), want 8", n, err)
		}
		if err := tx.Abort(); err != nil {
			t.Errorf("abort: %v", err)
		}
	})
	// After abort the counter must be back to 0 (inverse adds applied).
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		n, err := m.GetUint(tx, "c")
		if err != nil || n != 0 {
			t.Errorf("after abort GetUint = (%d,%v), want 0", n, err)
		}
		_ = tx.Commit()
	})
}

func TestMapAddUintTypeError(t *testing.T) {
	s := NewStore()
	m := mustMap(t, s, "test/m")
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		_ = m.Put(tx, "s", "not a counter")
		if err := m.AddUint(tx, "s", 1); !errors.Is(err, ErrNotCounter) {
			t.Errorf("AddUint on string = %v, want ErrNotCounter", err)
		}
		if _, err := m.GetUint(tx, "s"); !errors.Is(err, ErrNotCounter) {
			t.Errorf("GetUint on string = %v, want ErrNotCounter", err)
		}
		_ = tx.Abort()
	})
}

func TestMapLazyReadYourWrites(t *testing.T) {
	s := NewStore()
	m := mustMap(t, s, "test/m")
	withTx(t, stm.PolicyLazy, func(tx *stm.Tx) {
		if err := m.Put(tx, "k", uint64(42)); err != nil {
			t.Errorf("Put: %v", err)
		}
		// Raw table untouched until commit.
		if m.Len() != 0 {
			t.Error("lazy put reached raw storage before commit")
		}
		v, ok, err := m.Get(tx, "k")
		if err != nil || !ok || v.(uint64) != 42 {
			t.Errorf("read-your-writes Get = (%v,%v,%v)", v, ok, err)
		}
		if err := m.Delete(tx, "k"); err != nil {
			t.Errorf("Delete: %v", err)
		}
		if _, ok, _ := m.Get(tx, "k"); ok {
			t.Error("buffered delete not visible to Get")
		}
		_ = m.Put(tx, "k2", uint64(1))
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if m.Len() != 1 {
		t.Fatalf("after lazy commit Len = %d, want 1", m.Len())
	}
}

func TestMapLazyAbortIsFree(t *testing.T) {
	s := NewStore()
	m := mustMap(t, s, "test/m")
	withTx(t, stm.PolicyLazy, func(tx *stm.Tx) {
		_ = m.Put(tx, "k", uint64(1))
		if err := tx.Abort(); err != nil {
			t.Errorf("abort: %v", err)
		}
	})
	if m.Len() != 0 {
		t.Fatal("aborted lazy write reached storage")
	}
}

func TestArrayPushGetSetLen(t *testing.T) {
	s := NewStore()
	a := mustArray(t, s, "test/a")
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		i0, err := a.Push(tx, uint64(10))
		if err != nil || i0 != 0 {
			t.Errorf("Push = (%d,%v)", i0, err)
		}
		i1, err := a.Push(tx, uint64(20))
		if err != nil || i1 != 1 {
			t.Errorf("Push = (%d,%v)", i1, err)
		}
		n, err := a.Len(tx)
		if err != nil || n != 2 {
			t.Errorf("Len = (%d,%v)", n, err)
		}
		if err := a.Set(tx, 0, uint64(11)); err != nil {
			t.Errorf("Set: %v", err)
		}
		v, err := a.GetUint(tx, 0)
		if err != nil || v != 11 {
			t.Errorf("GetUint(0) = (%d,%v)", v, err)
		}
		_ = tx.Commit()
	})
}

func TestArrayOutOfRange(t *testing.T) {
	s := NewStore()
	a := mustArray(t, s, "test/a")
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		if _, err := a.Get(tx, 0); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("Get(0) on empty = %v, want ErrOutOfRange", err)
		}
		if err := a.Set(tx, 3, uint64(1)); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("Set(3) = %v, want ErrOutOfRange", err)
		}
		if err := a.AddUint(tx, 0, 1); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("AddUint(0) = %v, want ErrOutOfRange", err)
		}
		_ = tx.Abort()
	})
}

func TestArrayAbortUndoesPushesAndSets(t *testing.T) {
	s := NewStore()
	a := mustArray(t, s, "test/a")
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		_, _ = a.Push(tx, uint64(1))
		_ = tx.Commit()
	})
	rootBefore, _ := s.StateRoot()
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		_ = a.Set(tx, 0, uint64(9))
		_, _ = a.Push(tx, uint64(2))
		_, _ = a.Push(tx, uint64(3))
		_ = a.AddUint(tx, 0, 100)
		if err := tx.Abort(); err != nil {
			t.Errorf("abort: %v", err)
		}
	})
	rootAfter, _ := s.StateRoot()
	if rootBefore != rootAfter {
		t.Fatal("abort did not undo array mutations")
	}
}

func TestArrayAddUint(t *testing.T) {
	s := NewStore()
	a := mustArray(t, s, "test/a")
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		_, _ = a.Push(tx, uint64(5))
		if err := a.AddUint(tx, 0, 7); err != nil {
			t.Errorf("AddUint: %v", err)
		}
		v, err := a.GetUint(tx, 0)
		if err != nil || v != 12 {
			t.Errorf("GetUint = (%d,%v), want 12", v, err)
		}
		_ = tx.Commit()
	})
}

func TestArrayLazySetBuffered(t *testing.T) {
	s := NewStore()
	a := mustArray(t, s, "test/a")
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		_, _ = a.Push(tx, uint64(1))
		_ = tx.Commit()
	})
	withTx(t, stm.PolicyLazy, func(tx *stm.Tx) {
		if err := a.Set(tx, 0, uint64(2)); err != nil {
			t.Errorf("Set: %v", err)
		}
		v, err := a.GetUint(tx, 0)
		if err != nil || v != 2 {
			t.Errorf("read-your-writes GetUint = (%d,%v), want 2", v, err)
		}
		_ = tx.Abort()
	})
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		v, err := a.GetUint(tx, 0)
		if err != nil || v != 1 {
			t.Errorf("after lazy abort GetUint = (%d,%v), want 1", v, err)
		}
		_ = tx.Commit()
	})
}

func TestCellReadWriteAdd(t *testing.T) {
	s := NewStore()
	c := mustCell(t, s, "test/c", uint64(100))
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		v, err := c.ReadUint(tx)
		if err != nil || v != 100 {
			t.Errorf("ReadUint = (%d,%v)", v, err)
		}
		if err := c.Write(tx, uint64(200)); err != nil {
			t.Errorf("Write: %v", err)
		}
		if err := c.AddUint(tx, 50); err != nil {
			t.Errorf("AddUint: %v", err)
		}
		v, _ = c.ReadUint(tx)
		if v != 250 {
			t.Errorf("value = %d, want 250", v)
		}
		_ = tx.Abort()
	})
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		v, err := c.ReadUint(tx)
		if err != nil || v != 100 {
			t.Errorf("after abort ReadUint = (%d,%v), want 100", v, err)
		}
		_ = tx.Commit()
	})
}

func TestCellAddUintTypeError(t *testing.T) {
	s := NewStore()
	c := mustCell(t, s, "test/c", "text")
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		if err := c.AddUint(tx, 1); !errors.Is(err, ErrNotCounter) {
			t.Errorf("AddUint = %v, want ErrNotCounter", err)
		}
		_ = tx.Abort()
	})
}

func TestCellLazy(t *testing.T) {
	s := NewStore()
	c := mustCell(t, s, "test/c", uint64(1))
	withTx(t, stm.PolicyLazy, func(tx *stm.Tx) {
		_ = c.Write(tx, uint64(9))
		v, err := c.ReadUint(tx)
		if err != nil || v != 9 {
			t.Errorf("read-your-writes = (%d,%v)", v, err)
		}
		_ = tx.Commit()
	})
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		v, _ := c.ReadUint(tx)
		if v != 9 {
			t.Errorf("after lazy commit = %d, want 9", v)
		}
		_ = tx.Commit()
	})
}

func TestDuplicateObjectNames(t *testing.T) {
	s := NewStore()
	mustMap(t, s, "dup")
	if _, err := NewArray(s, "dup"); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate name error = %v", err)
	}
}

func TestStateRootChangesWithState(t *testing.T) {
	s := NewStore()
	m := mustMap(t, s, "m")
	c := mustCell(t, s, "c", uint64(0))
	root0, err := s.StateRoot()
	if err != nil {
		t.Fatalf("StateRoot: %v", err)
	}
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		_ = m.Put(tx, "k", uint64(1))
		_ = tx.Commit()
	})
	root1, _ := s.StateRoot()
	if root0 == root1 {
		t.Fatal("map write did not change state root")
	}
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		_ = c.Write(tx, uint64(5))
		_ = tx.Commit()
	})
	root2, _ := s.StateRoot()
	if root1 == root2 {
		t.Fatal("cell write did not change state root")
	}
}

func TestStateRootDeterministic(t *testing.T) {
	build := func() types.Hash {
		s := NewStore()
		m := mustMap(t, s, "m")
		a := mustArray(t, s, "a")
		withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
			for i := 0; i < 20; i++ {
				_ = m.Put(tx, KeyUint(uint64(i)), uint64(i*i))
				_, _ = a.Push(tx, uint64(i))
			}
			_ = tx.Commit()
		})
		root, err := s.StateRoot()
		if err != nil {
			t.Fatalf("StateRoot: %v", err)
		}
		return root
	}
	if build() != build() {
		t.Fatal("identical construction produced different roots")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewStore()
	m := mustMap(t, s, "m")
	a := mustArray(t, s, "a")
	c := mustCell(t, s, "c", uint64(7))
	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		_ = m.Put(tx, "k", uint64(1))
		_, _ = a.Push(tx, uint64(2))
		_ = tx.Commit()
	})
	snap := s.Snapshot()
	rootBefore, _ := s.StateRoot()

	withTx(t, stm.PolicyEager, func(tx *stm.Tx) {
		_ = m.Put(tx, "k", uint64(100))
		_ = m.Put(tx, "k2", uint64(3))
		_, _ = a.Push(tx, uint64(4))
		_ = c.Write(tx, uint64(0))
		_ = tx.Commit()
	})
	if r, _ := s.StateRoot(); r == rootBefore {
		t.Fatal("mutations did not change root (test is vacuous)")
	}
	s.Restore(snap)
	if r, _ := s.StateRoot(); r != rootBefore {
		t.Fatal("restore did not reproduce the snapshot root")
	}
}

func TestEncodeValueKinds(t *testing.T) {
	vals := []any{nil, true, false, uint64(7), int(3), "str",
		types.AddressFromUint64(1), types.HashString("h"), types.Amount(9)}
	seen := map[string]bool{}
	for _, v := range vals {
		enc, err := encodeValue(v)
		if err != nil {
			t.Fatalf("encodeValue(%v): %v", v, err)
		}
		if seen[string(enc)] {
			t.Fatalf("encoding collision for %v", v)
		}
		seen[string(enc)] = true
	}
	if _, err := encodeValue(int(-1)); err == nil {
		t.Fatal("negative int encoded without error")
	}
	if _, err := encodeValue(3.14); err == nil {
		t.Fatal("float encoded without error")
	}
}

type testStruct struct{ a, b uint64 }

func (t testStruct) EncodeValue() []byte {
	out := append([]byte{}, KeyUint(t.a)...)
	return append(out, KeyUint(t.b)...)
}

func TestEncodeValueEncoderInterface(t *testing.T) {
	e1, err := encodeValue(testStruct{a: 1, b: 2})
	if err != nil {
		t.Fatalf("encodeValue(struct): %v", err)
	}
	e2, _ := encodeValue(testStruct{a: 1, b: 3})
	if string(e1) == string(e2) {
		t.Fatal("struct encodings collide")
	}
}

func TestKeyUintOrderMatchesNumeric(t *testing.T) {
	if !(KeyUint(1) < KeyUint(2) && KeyUint(255) < KeyUint(256)) {
		t.Fatal("KeyUint is not order-preserving")
	}
}
