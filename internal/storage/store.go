// Package storage implements boosted storage objects — the paper's state
// variables: mappings, arrays and scalar cells — on top of the stm layer.
//
// Every operation maps to an abstract lock chosen so that operations on
// distinct locks commute (§3 "Storage Operations"):
//
//   - Map: one lock per key ("binding Alice's address … commutes with
//     binding Bob's");
//   - Array: one lock per index plus a length lock;
//   - Cell: a single lock.
//
// Operation modes follow commutativity: reads are shared, writes exclusive,
// and numeric "+= d" updates use increment mode (its inverse is "-= d"),
// which is what lets all Ballot votes for one proposal proceed in parallel.
//
// Each mutation registers an inverse with the executing transaction (eager
// policy) or lands in the transaction-local overlay (lazy policy); reads are
// overlay-aware. The same code therefore serves the speculative miner, the
// serial baseline and the validator's lock-free replay.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"contractstm/internal/crypto"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// Errors returned by storage operations.
var (
	// ErrOutOfRange reports an array access beyond the current length; the
	// contract layer converts it into a throw, like Solidity's automatic
	// revert on out-of-bounds indexing.
	ErrOutOfRange = errors.New("storage: index out of range")
	// ErrNotCounter reports AddUint on a slot that does not hold a uint64.
	ErrNotCounter = errors.New("storage: value is not a uint64 counter")
	// ErrUnderflow reports SubUint below zero.
	ErrUnderflow = errors.New("storage: counter underflow")
	// ErrDuplicateName reports two objects created with the same name.
	ErrDuplicateName = errors.New("storage: duplicate object name")
)

// object is the interface all boosted objects implement for the Store.
type object interface {
	// objectName returns the lock scope / state-root prefix.
	objectName() string
	// stateEntries appends canonical (key, value) pairs, sorted by key.
	stateEntries(dst []crypto.StateEntry) ([]crypto.StateEntry, error)
	// snapshot returns a deep copy of the raw contents.
	snapshot() any
	// restore replaces the raw contents with a snapshot deep copy.
	restore(snap any)
}

// Store owns a set of boosted objects and provides state commitments and
// snapshot/restore. One Store models the persistent contract state of one
// simulated chain; benchmarks restore a snapshot between the serial,
// mining and validation runs of the same block.
type Store struct {
	mu      sync.Mutex
	objects []object
	byName  map[string]object
	nextID  uint64
	// noIncrement downgrades increment-mode operations to exclusive; an
	// ablation switch showing what the paper's Ballot result would look
	// like without commutative boosting (see bench_test.go).
	noIncrement bool
	// coarseLocks switches every object to a single object-level lock,
	// reproducing the "more traditional implementation" the paper argues
	// against (§3): locks on memory regions rather than semantic units,
	// producing false conflicts between commuting operations.
	coarseLocks bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byName: make(map[string]object)}
}

// register adds an object and allocates its overlay id.
func (s *Store) register(name string, obj object) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[name]; dup {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	id := s.nextID
	s.nextID++
	s.objects = append(s.objects, obj)
	s.byName[name] = obj
	return id, nil
}

// StateRoot computes a deterministic commitment over every object's
// canonical contents. It must not be called while transactions are in
// flight.
func (s *Store) StateRoot() (types.Hash, error) {
	s.mu.Lock()
	objs := make([]object, len(s.objects))
	copy(objs, s.objects)
	s.mu.Unlock()

	sort.Slice(objs, func(i, j int) bool { return objs[i].objectName() < objs[j].objectName() })
	var entries []crypto.StateEntry
	for _, o := range objs {
		var err error
		entries, err = o.stateEntries(entries)
		if err != nil {
			return types.Hash{}, fmt.Errorf("state entries of %q: %w", o.objectName(), err)
		}
	}
	return crypto.StateRootOf(entries), nil
}

// Snapshot captures a deep copy of all objects' contents. Values stored in
// boosted objects must be treated as immutable (store fresh structs rather
// than mutating in place); under that convention the copy is exact.
type Snapshot struct {
	contents []any
}

// Snapshot captures the current state.
func (s *Store) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{contents: make([]any, len(s.objects))}
	for i, o := range s.objects {
		snap.contents[i] = o.snapshot()
	}
	return snap
}

// Restore rewinds all objects to a snapshot taken from this store. Objects
// created after the snapshot keep their (newer) contents.
func (s *Store) Restore(snap Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range snap.contents {
		if i < len(s.objects) {
			s.objects[i].restore(c)
		}
	}
}

// SetNoIncrement toggles the increment-mode ablation: when enabled, every
// AddUint acquires its abstract lock exclusively instead of in increment
// mode, so commuting updates conflict. Benchmarks only.
func (s *Store) SetNoIncrement(disable bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noIncrement = disable
}

// incrementMode returns the lock mode for commutative adds under the
// store's current ablation setting.
func (s *Store) incrementMode() stm.Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.noIncrement {
		return stm.ModeExclusive
	}
	return stm.ModeIncrement
}

// SetCoarseLocks toggles the lock-granularity ablation: when enabled,
// every operation on an object maps to one object-level abstract lock
// (reads shared, all updates exclusive), like region/page locking. The
// paper predicts — and BenchmarkAblationCoarseLocks confirms — that the
// resulting false conflicts destroy most of the available concurrency.
func (s *Store) SetCoarseLocks(coarse bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.coarseLocks = coarse
}

// coarse reports whether object-level locking is in force.
func (s *Store) coarse() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coarseLocks
}

// Objects returns the registered object names, sorted (diagnostics).
func (s *Store) Objects() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
