package storage

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"contractstm/internal/types"
)

// Snapshot serialization: a Snapshot's contents are positional (indexed by
// registration order), which is useless across process restarts, so the
// wire form pairs every object's contents with its name. Decoding aligns
// the named contents back to the decoding store's objects — recovery
// requires the same genesis setup to have registered the same objects,
// and any mismatch is an error rather than silent state corruption.

// snapshotEntry is one object's named contents on the wire.
type snapshotEntry struct {
	Name    string
	Content any
}

// nilValue stands in for nil on the wire: gob refuses to encode nil
// interface values, but an empty cell or an unset array element is
// legitimately nil.
type nilValue struct{}

// wireContent replaces nils inside the supported content shapes (cell
// scalar, map contents, array contents) with the nilValue sentinel.
func wireContent(c any) any {
	switch x := c.(type) {
	case nil:
		return nilValue{}
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, v := range x {
			if v == nil {
				v = nilValue{}
			}
			out[k] = v
		}
		return out
	case []any:
		out := make([]any, len(x))
		for i, v := range x {
			if v == nil {
				v = nilValue{}
			}
			out[i] = v
		}
		return out
	default:
		return c
	}
}

// localContent is wireContent's inverse.
func localContent(c any) any {
	switch x := c.(type) {
	case nilValue:
		return nil
	case map[string]any:
		for k, v := range x {
			if _, isNil := v.(nilValue); isNil {
				x[k] = nil
			}
		}
		return x
	case []any:
		for i, v := range x {
			if _, isNil := v.(nilValue); isNil {
				x[i] = nil
			}
		}
		return x
	default:
		return c
	}
}

var persistRegisterOnce sync.Once

// registerPersistTypes registers the value shapes every boosted object can
// hold: the container types (map contents, array contents), the nil
// sentinel, and the shared scalar kinds. Contract-defined struct values
// register themselves via RegisterValueType.
func registerPersistTypes() {
	persistRegisterOnce.Do(func() {
		gob.Register(map[string]any{})
		gob.Register([]any{})
		gob.Register(nilValue{})
	})
	types.RegisterWireValues()
}

// RegisterValueType registers a concrete type contracts store in boosted
// objects (for example Ballot's Voter record) so snapshots holding such
// values can round-trip through EncodeSnapshot/DecodeSnapshot. Contract
// packages call it from init; registering the same type twice is harmless.
func RegisterValueType(v any) {
	gob.Register(v)
}

// EncodeSnapshot renders a snapshot taken from s as self-describing bytes
// (object names paired with contents) for durable persistence.
func (s *Store) EncodeSnapshot(snap Snapshot) ([]byte, error) {
	registerPersistTypes()
	s.mu.Lock()
	names := make([]string, len(s.objects))
	for i, o := range s.objects {
		names[i] = o.objectName()
	}
	s.mu.Unlock()
	if len(snap.contents) != len(names) {
		return nil, fmt.Errorf("storage: snapshot has %d objects, store has %d", len(snap.contents), len(names))
	}
	entries := make([]snapshotEntry, len(names))
	for i, name := range names {
		entries[i] = snapshotEntry{Name: name, Content: wireContent(snap.contents[i])}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("storage: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses bytes produced by EncodeSnapshot into a Snapshot
// aligned with s's current objects, matched by name. The object sets must
// agree exactly: a recovering process rebuilds its genesis world with the
// same deterministic setup, so any difference means the bytes belong to a
// different world.
func (s *Store) DecodeSnapshot(data []byte) (Snapshot, error) {
	registerPersistTypes()
	var entries []snapshotEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
		return Snapshot{}, fmt.Errorf("storage: decode snapshot: %w", err)
	}
	byName := make(map[string]any, len(entries))
	for _, e := range entries {
		if _, dup := byName[e.Name]; dup {
			return Snapshot{}, fmt.Errorf("storage: snapshot names %q twice", e.Name)
		}
		byName[e.Name] = e.Content
	}

	s.mu.Lock()
	objs := make([]object, len(s.objects))
	copy(objs, s.objects)
	s.mu.Unlock()

	if len(objs) != len(entries) {
		return Snapshot{}, fmt.Errorf("storage: snapshot has %d objects, store has %d", len(entries), len(objs))
	}
	snap := Snapshot{contents: make([]any, len(objs))}
	for i, o := range objs {
		content, ok := byName[o.objectName()]
		if !ok {
			return Snapshot{}, fmt.Errorf("storage: snapshot missing object %q", o.objectName())
		}
		snap.contents[i] = localContent(content)
	}
	return snap, nil
}
