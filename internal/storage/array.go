package storage

import (
	"fmt"
	"sync"

	"contractstm/internal/crypto"
	"contractstm/internal/stm"
)

// Array is a boosted dynamically-sized array, the translation of a Solidity
// dynamic array such as Ballot's proposals.
//
// Locks: element i maps to {Scope: name, Key: KeyUint(i)}; the length maps
// to {Scope: name, Key: "#len"}. Push takes the length lock exclusively
// (two pushes do not commute: they assign different indices) plus the new
// element's lock; Len takes the length lock shared; element reads/writes
// take only their element lock, so they commute with operations on other
// indices and — importantly — with each other across indices.
type Array struct {
	name  string
	id    uint64
	store *Store

	mu  sync.Mutex
	raw []any
}

// lenLockKey is the reserved key for the length lock. Element keys are
// 8-byte big-endian indices, so "#len" cannot collide.
const lenLockKey = "#len"

// NewArray creates a boosted array registered in s under name.
func NewArray(s *Store, name string) (*Array, error) {
	a := &Array{name: name, store: s}
	id, err := s.register(name, a)
	if err != nil {
		return nil, err
	}
	a.id = id
	return a, nil
}

// Name returns the array's lock scope.
func (a *Array) Name() string { return a.name }

func (a *Array) elemLock(i int) stm.LockID {
	if a.store.coarse() {
		return stm.LockID{Scope: a.name}
	}
	return stm.LockID{Scope: a.name, Key: KeyUint(uint64(i))}
}

func (a *Array) lenLock() stm.LockID {
	if a.store.coarse() {
		return stm.LockID{Scope: a.name}
	}
	return stm.LockID{Scope: a.name, Key: lenLockKey}
}

// Len returns the array length. Shared mode on the length lock.
func (a *Array) Len(ex stm.Executor) (int, error) {
	if err := ex.Access(a.lenLock(), stm.ModeShared, ex.Schedule().ArrayRead); err != nil {
		return 0, err
	}
	if ov := ex.Overlay(); ov != nil {
		return a.effectiveLen(ov), nil
	}
	return a.rawLen(), nil
}

// effectiveLen returns the length as seen through an overlay: buffered
// pushes extend the raw length.
func (a *Array) effectiveLen(ov *stm.Overlay) int {
	if v, _, ok := ov.Get(a.lenOverlayKey()); ok {
		if n, isInt := v.(int); isInt {
			return n
		}
	}
	return a.rawLen()
}

func (a *Array) lenOverlayKey() stm.OverlayKey {
	return stm.OverlayKey{Obj: a.id, Key: lenLockKey}
}

// applyElem returns the commit-time apply closure for element i: a write
// into the existing raw range, or an append for an index this transaction
// pushed. Overlay applies run in key order, so buffered pushes append in
// index order and land exactly at their planned slots.
func (a *Array) applyElem(i int) func(val any, deleted bool) {
	return func(val any, deleted bool) {
		if i < a.rawLen() {
			a.rawSet(i, val)
			return
		}
		a.rawAppend(val)
	}
}

// Get returns element i or ErrOutOfRange. Shared mode on the element lock.
func (a *Array) Get(ex stm.Executor, i int) (any, error) {
	if err := ex.Access(a.elemLock(i), stm.ModeShared, ex.Schedule().ArrayRead); err != nil {
		return nil, err
	}
	if ov := ex.Overlay(); ov != nil {
		if v, deleted, ok := ov.Get(a.overlayKey(i)); ok && !deleted {
			return v, nil
		}
		if d, buffered := ov.Delta(a.overlayKey(i)); buffered {
			base, _ := a.rawGet(i)
			n, _ := base.(uint64)
			return uint64(int64(n) + d), nil
		}
	}
	v, ok := a.rawGet(i)
	if !ok {
		return nil, fmt.Errorf("%s[%d] with len %d: %w", a.name, i, a.rawLen(), ErrOutOfRange)
	}
	return v, nil
}

// Set writes element i or returns ErrOutOfRange. Exclusive mode; the
// inverse restores the previous element.
func (a *Array) Set(ex stm.Executor, i int, v any) error {
	if err := ex.Access(a.elemLock(i), stm.ModeExclusive, ex.Schedule().ArrayWrite); err != nil {
		return err
	}
	if ov := ex.Overlay(); ov != nil {
		if i < 0 || i >= a.effectiveLen(ov) {
			return fmt.Errorf("%s[%d] with len %d: %w", a.name, i, a.effectiveLen(ov), ErrOutOfRange)
		}
		ov.Put(a.overlayKey(i), v, false, a.applyElem(i))
		return nil
	}
	if i < 0 || i >= a.rawLen() {
		return fmt.Errorf("%s[%d] with len %d: %w", a.name, i, a.rawLen(), ErrOutOfRange)
	}
	prev, _ := a.rawGet(i)
	ex.LogUndo(func() { a.rawSet(i, prev) })
	a.rawSet(i, v)
	return nil
}

// Push appends v and returns its index. Exclusive on the length lock and
// the new element's lock; the inverse (eager policy) truncates.
func (a *Array) Push(ex stm.Executor, v any) (int, error) {
	if err := ex.Access(a.lenLock(), stm.ModeExclusive, ex.Schedule().ArrayPush); err != nil {
		return 0, err
	}
	// Buffered regimes plan the index from the effective length (raw plus
	// this family's buffered pushes). Two transactions can never commit
	// the same planned index: a lazy transaction holds the length lock
	// exclusively until its overlay is applied, and an OCC transaction
	// carries the exclusive length lock in its read/write set, so the
	// commit round's validation rejects the second planner.
	if ov := ex.Overlay(); ov != nil {
		i := a.effectiveLen(ov)
		if err := ex.Access(a.elemLock(i), stm.ModeExclusive, ex.Schedule().ArrayWrite); err != nil {
			return 0, err
		}
		ov.Put(a.overlayKey(i), v, false, a.applyElem(i))
		ov.Put(a.lenOverlayKey(), i+1, false, func(any, bool) {})
		return i, nil
	}
	i := a.rawLen()
	if err := ex.Access(a.elemLock(i), stm.ModeExclusive, ex.Schedule().ArrayWrite); err != nil {
		return 0, err
	}
	ex.LogUndo(func() { a.rawTruncate(i) })
	a.rawAppend(v)
	return i, nil
}

// AddUint adds delta to the uint64 element at i (increment mode: concurrent
// adds to one slot commute; inverse subtracts).
func (a *Array) AddUint(ex stm.Executor, i int, delta uint64) error {
	mode := a.store.incrementMode()
	if a.store.coarse() {
		mode = stm.ModeExclusive
	}
	if err := ex.Access(a.elemLock(i), mode, ex.Schedule().ArrayWrite); err != nil {
		return err
	}
	if ov := ex.Overlay(); ov != nil {
		if i < 0 || i >= a.effectiveLen(ov) {
			return fmt.Errorf("%s[%d] with len %d: %w", a.name, i, a.effectiveLen(ov), ErrOutOfRange)
		}
		eff, _ := a.rawGet(i)
		if v, deleted, ok := ov.Get(a.overlayKey(i)); ok && !deleted {
			eff = v
		}
		if _, isUint := eff.(uint64); !isUint {
			return fmt.Errorf("%w: %s[%d] holds %T", ErrNotCounter, a.name, i, eff)
		}
		ov.Add(a.overlayKey(i), int64(delta), func(d int64) { a.rawAdd(i, d) })
		return nil
	}
	cur, ok := a.rawGet(i)
	if !ok {
		return fmt.Errorf("%s[%d] with len %d: %w", a.name, i, a.rawLen(), ErrOutOfRange)
	}
	if _, isUint := cur.(uint64); !isUint {
		return fmt.Errorf("%w: %s[%d] holds %T", ErrNotCounter, a.name, i, cur)
	}
	ex.LogUndo(func() { a.rawAdd(i, -int64(delta)) })
	a.rawAdd(i, int64(delta))
	return nil
}

// GetUint reads the uint64 element at i. Shared mode.
func (a *Array) GetUint(ex stm.Executor, i int) (uint64, error) {
	v, err := a.Get(ex, i)
	if err != nil {
		return 0, err
	}
	n, ok := v.(uint64)
	if !ok {
		return 0, fmt.Errorf("%w: %s[%d] holds %T", ErrNotCounter, a.name, i, v)
	}
	return n, nil
}

func (a *Array) overlayKey(i int) stm.OverlayKey {
	return stm.OverlayKey{Obj: a.id, Key: KeyUint(uint64(i))}
}

// raw accessors.

func (a *Array) rawLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.raw)
}

func (a *Array) rawGet(i int) (any, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if i < 0 || i >= len(a.raw) {
		return nil, false
	}
	return a.raw[i], true
}

func (a *Array) rawSet(i int, v any) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if i >= 0 && i < len(a.raw) {
		a.raw[i] = v
	}
}

func (a *Array) rawAppend(v any) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.raw = append(a.raw, v)
}

func (a *Array) rawTruncate(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n >= 0 && n <= len(a.raw) {
		a.raw = a.raw[:n]
	}
}

func (a *Array) rawAdd(i int, delta int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if i < 0 || i >= len(a.raw) {
		return
	}
	cur, _ := a.raw[i].(uint64)
	a.raw[i] = uint64(int64(cur) + delta)
}

// objectName implements object.
func (a *Array) objectName() string { return a.name }

// stateEntries implements object.
func (a *Array) stateEntries(dst []crypto.StateEntry) ([]crypto.StateEntry, error) {
	a.mu.Lock()
	cp := make([]any, len(a.raw))
	copy(cp, a.raw)
	a.mu.Unlock()

	for i, v := range cp {
		enc, err := encodeValue(v)
		if err != nil {
			return nil, fmt.Errorf("index %d: %w", i, err)
		}
		dst = append(dst, crypto.StateEntry{Key: []byte(a.name + "\x00" + KeyUint(uint64(i))), Value: enc})
	}
	// Commit to the length so truncation is tamper-evident even for empty
	// arrays.
	dst = append(dst, crypto.StateEntry{
		Key:   []byte(a.name + "\x00" + lenLockKey),
		Value: appendUint(0x02, uint64(len(cp))),
	})
	return dst, nil
}

// snapshot implements object.
func (a *Array) snapshot() any {
	a.mu.Lock()
	defer a.mu.Unlock()
	cp := make([]any, len(a.raw))
	copy(cp, a.raw)
	return cp
}

// restore implements object.
func (a *Array) restore(snap any) {
	src := snap.([]any)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.raw = make([]any, len(src))
	copy(a.raw, src)
}
