package storage

import (
	"fmt"
	"sync"

	"contractstm/internal/crypto"
	"contractstm/internal/stm"
)

// Cell is a boosted scalar state variable (a single Solidity field such as
// SimpleAuction's highestBid). It has exactly one abstract lock, so any two
// non-commuting operations on it conflict — which is precisely why the
// paper's bidPlusOne transactions serialize.
type Cell struct {
	name  string
	id    uint64
	store *Store

	mu  sync.Mutex
	raw any
}

// NewCell creates a boosted cell registered in s under name, holding initial.
func NewCell(s *Store, name string, initial any) (*Cell, error) {
	c := &Cell{name: name, store: s, raw: initial}
	id, err := s.register(name, c)
	if err != nil {
		return nil, err
	}
	c.id = id
	return c, nil
}

// Name returns the cell's lock scope.
func (c *Cell) Name() string { return c.name }

func (c *Cell) lock() stm.LockID { return stm.LockID{Scope: c.name} }

// Read returns the cell's value. Shared mode.
func (c *Cell) Read(ex stm.Executor) (any, error) {
	if err := ex.Access(c.lock(), stm.ModeShared, ex.Schedule().CellRead); err != nil {
		return nil, err
	}
	if ov := ex.Overlay(); ov != nil {
		if v, deleted, ok := ov.Get(c.overlayKey()); ok && !deleted {
			return v, nil
		}
		if d, buffered := ov.Delta(c.overlayKey()); buffered {
			// Read-your-increments; deltas are only buffered against
			// verified uint64 counters.
			n, _ := c.rawRead().(uint64)
			return uint64(int64(n) + d), nil
		}
	}
	return c.rawRead(), nil
}

// Write replaces the cell's value. Exclusive mode; the inverse restores the
// previous value.
func (c *Cell) Write(ex stm.Executor, v any) error {
	if err := ex.Access(c.lock(), stm.ModeExclusive, ex.Schedule().CellWrite); err != nil {
		return err
	}
	if ov := ex.Overlay(); ov != nil {
		ov.Put(c.overlayKey(), v, false, func(val any, deleted bool) {
			c.rawWrite(val)
		})
		return nil
	}
	prev := c.rawRead()
	ex.LogUndo(func() { c.rawWrite(prev) })
	c.rawWrite(v)
	return nil
}

// AddUint adds delta to the cell's uint64 value. Increment mode; inverse
// subtracts.
func (c *Cell) AddUint(ex stm.Executor, delta uint64) error {
	mode := c.store.incrementMode()
	if c.store.coarse() {
		mode = stm.ModeExclusive
	}
	if err := ex.Access(c.lock(), mode, ex.Schedule().CellAdd); err != nil {
		return err
	}
	// Buffered regimes (lazy and OCC) record the increment as an
	// accumulating delta entry; see Map.AddUint for the commutativity
	// argument.
	if ov := ex.Overlay(); ov != nil {
		eff := c.rawRead()
		if v, deleted, ok := ov.Get(c.overlayKey()); ok && !deleted {
			eff = v
		}
		if _, isUint := eff.(uint64); !isUint {
			return fmt.Errorf("%w: cell %s holds %T", ErrNotCounter, c.name, eff)
		}
		ov.Add(c.overlayKey(), int64(delta), func(d int64) { c.rawAdd(d) })
		return nil
	}
	if _, ok := c.rawRead().(uint64); !ok {
		return fmt.Errorf("%w: cell %s holds %T", ErrNotCounter, c.name, c.rawRead())
	}
	ex.LogUndo(func() { c.rawAdd(-int64(delta)) })
	c.rawAdd(int64(delta))
	return nil
}

// ReadUint reads the cell as a uint64 counter. Shared mode.
func (c *Cell) ReadUint(ex stm.Executor) (uint64, error) {
	v, err := c.Read(ex)
	if err != nil {
		return 0, err
	}
	n, ok := v.(uint64)
	if !ok {
		return 0, fmt.Errorf("%w: cell %s holds %T", ErrNotCounter, c.name, v)
	}
	return n, nil
}

func (c *Cell) overlayKey() stm.OverlayKey {
	return stm.OverlayKey{Obj: c.id}
}

func (c *Cell) rawRead() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.raw
}

func (c *Cell) rawWrite(v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.raw = v
}

func (c *Cell) rawAdd(delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, _ := c.raw.(uint64)
	c.raw = uint64(int64(cur) + delta)
}

// objectName implements object.
func (c *Cell) objectName() string { return c.name }

// stateEntries implements object.
func (c *Cell) stateEntries(dst []crypto.StateEntry) ([]crypto.StateEntry, error) {
	enc, err := encodeValue(c.rawRead())
	if err != nil {
		return nil, err
	}
	return append(dst, crypto.StateEntry{Key: []byte(c.name), Value: enc}), nil
}

// snapshot implements object.
func (c *Cell) snapshot() any { return c.rawRead() }

// restore implements object.
func (c *Cell) restore(snap any) { c.rawWrite(snap) }
