package storage

import (
	"strings"
	"testing"

	"contractstm/internal/types"
)

// buildStore assembles a store with one of each object kind and some
// contents, bypassing the transactional layer (raw accessors are exact
// for quiescent state).
func buildStore(t *testing.T) (*Store, *Map, *Cell) {
	t.Helper()
	s := NewStore()
	m, err := NewMap(s, "t/map")
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	a, err := NewArray(s, "t/array")
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	c, err := NewCell(s, "t/cell", nil)
	if err != nil {
		t.Fatalf("NewCell: %v", err)
	}
	m.rawPut("balance", uint64(41))
	m.rawPut("owner", types.AddressFromUint64(9))
	m.rawPut("label", "hello")
	a.mu.Lock()
	a.raw = append(a.raw, uint64(7), nil, "x")
	a.mu.Unlock()
	return s, m, c
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	src, _, _ := buildStore(t)
	data, err := src.EncodeSnapshot(src.Snapshot())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	srcRoot, err := src.StateRoot()
	if err != nil {
		t.Fatalf("state root: %v", err)
	}

	// A freshly built store (same genesis setup, empty-ish contents)
	// restores the encoded state and reaches the identical commitment.
	dst, dm, dc := buildStore(t)
	dm.rawPut("balance", uint64(999)) // diverge first
	dm.rawDelete("label")
	dc.rawWrite("junk")
	snap, err := dst.DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	dst.Restore(snap)
	dstRoot, err := dst.StateRoot()
	if err != nil {
		t.Fatalf("state root: %v", err)
	}
	if dstRoot != srcRoot {
		t.Fatalf("restored root %s != source %s", dstRoot.Short(), srcRoot.Short())
	}
	// Nil contents survived (cell nil, array hole).
	if v := dc.rawRead(); v != nil {
		t.Fatalf("cell restored to %v, want nil", v)
	}
	if got, _ := dm.rawGet("balance"); got.(uint64) != 41 {
		t.Fatalf("balance restored to %v", got)
	}
}

func TestSnapshotDecodeRejectsForeignStore(t *testing.T) {
	src, _, _ := buildStore(t)
	data, err := src.EncodeSnapshot(src.Snapshot())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	other := NewStore()
	if _, err := NewMap(other, "different/map"); err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	if _, err := other.DecodeSnapshot(data); err == nil {
		t.Fatal("foreign snapshot decoded into a mismatched store")
	}

	// Same names but fewer objects: also a mismatch.
	subset := NewStore()
	if _, err := NewMap(subset, "t/map"); err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	if _, err := subset.DecodeSnapshot(data); err == nil || !strings.Contains(err.Error(), "objects") {
		t.Fatalf("subset store decode: %v", err)
	}
}

func TestSnapshotDecodeRejectsGarbage(t *testing.T) {
	s, _, _ := buildStore(t)
	if _, err := s.DecodeSnapshot([]byte("not gob")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := s.DecodeSnapshot(nil); err == nil {
		t.Fatal("empty input decoded")
	}
}
