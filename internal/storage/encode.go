package storage

import (
	"encoding/binary"
	"fmt"

	"contractstm/internal/types"
)

// Encoder lets struct values stored in boosted objects participate in state
// commitments. Contract struct types (for example Ballot's Voter) implement
// it with a canonical, deterministic byte encoding.
type Encoder interface {
	EncodeValue() []byte
}

// encodeValue canonically encodes the value kinds contracts may store:
// nil, bool, uint64, int (non-negative), string, types.Address, types.Hash,
// types.Amount, and any Encoder. Each encoding is tagged with a kind byte
// so values of different types never collide.
func encodeValue(v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return []byte{0x00}, nil
	case bool:
		if x {
			return []byte{0x01, 1}, nil
		}
		return []byte{0x01, 0}, nil
	case uint64:
		return appendUint(0x02, x), nil
	case int:
		if x < 0 {
			return nil, fmt.Errorf("storage: negative int value %d not supported", x)
		}
		return appendUint(0x03, uint64(x)), nil
	case string:
		out := make([]byte, 0, 1+len(x))
		out = append(out, 0x04)
		return append(out, x...), nil
	case types.Address:
		out := make([]byte, 0, 1+types.AddressLen)
		out = append(out, 0x05)
		return append(out, x[:]...), nil
	case types.Hash:
		out := make([]byte, 0, 1+types.HashLen)
		out = append(out, 0x06)
		return append(out, x[:]...), nil
	case types.Amount:
		return appendUint(0x07, uint64(x)), nil
	case Encoder:
		out := []byte{0x08}
		return append(out, x.EncodeValue()...), nil
	default:
		return nil, fmt.Errorf("storage: cannot encode value of type %T", v)
	}
}

func appendUint(tag byte, x uint64) []byte {
	var buf [9]byte
	buf[0] = tag
	binary.BigEndian.PutUint64(buf[1:], x)
	return buf[:]
}

// Key helpers: boosted map keys are strings; contracts use these to derive
// canonical keys from domain types.

// KeyAddr derives a map key from an address.
func KeyAddr(a types.Address) string { return string(a[:]) }

// KeyHash derives a map key from a hash.
func KeyHash(h types.Hash) string { return string(h[:]) }

// KeyUint derives a map key from an integer (big-endian, fixed width, so
// lexicographic order equals numeric order).
func KeyUint(n uint64) string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], n)
	return string(buf[:])
}
