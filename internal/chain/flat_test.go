package chain

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"contractstm/internal/codec"
	"contractstm/internal/types"
)

func TestFlatIsDefaultWireFormat(t *testing.T) {
	data, err := MarshalBlock(sealSample(2, types.HashString("s")))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !codec.IsFlat(data[0]) {
		t.Fatalf("MarshalBlock emitted first byte 0x%02x, want flat magic", data[0])
	}
}

func TestDecodeGobFallback(t *testing.T) {
	// A gob-era peer or data dir must still decode for one release.
	orig := sealSample(5, types.HashString("s"))
	legacy, err := MarshalBlockGob(orig)
	if err != nil {
		t.Fatalf("gob marshal: %v", err)
	}
	if codec.IsFlat(legacy[0]) {
		t.Fatal("gob stream sniffs as flat")
	}
	got, err := UnmarshalBlock(legacy)
	if err != nil {
		t.Fatalf("unmarshal legacy: %v", err)
	}
	if got.Header.Hash() != orig.Header.Hash() {
		t.Fatal("legacy round trip changed the header hash")
	}
	// Args must come back with their concrete types through gob too.
	if _, ok := got.Calls[0].Args[0].(uint64); !ok {
		t.Fatalf("legacy arg type %T", got.Calls[0].Args[0])
	}
}

func TestErrTooLargeReportsObservedSize(t *testing.T) {
	data, err := MarshalBlock(sealSample(4, types.HashString("s")))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	budget := int64(len(data)) / 2
	_, err = decodeBlockCapped(bytes.NewReader(data), budget)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	// The error must name the block's actual size, not just the cap.
	if want := fmt.Sprintf("%d-byte block", len(data)); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not report the observed size %q", err, want)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("%d-byte cap", budget)) {
		t.Fatalf("error %q does not report the cap", err)
	}

	// The []byte path reports the same way.
	big := make([]byte, MaxWireBlock+1)
	_, err = UnmarshalBlock(big)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize buffer: got %v, want ErrTooLarge", err)
	}
	if want := fmt.Sprintf("%d-byte block", len(big)); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not report the observed size %q", err, want)
	}
}

// FuzzCodecBlock pins the flat codec's round-trip identity: any payload
// that decodes must re-encode to the identical bytes, and decoding must
// never panic on arbitrary input.
func FuzzCodecBlock(f *testing.F) {
	seed := func(n int) []byte {
		b := sealSample(n, types.HashString("s"))
		data, err := MarshalBlock(b)
		if err != nil {
			f.Fatalf("marshal: %v", err)
		}
		return data
	}
	f.Add(seed(1))
	f.Add(seed(6))
	allArgs := sealSample(1, types.HashString("s"))
	allArgs.Calls[0].Args = []any{uint64(7), int(-3), true, "text",
		types.AddressFromUint64(9), types.HashString("h"), types.Amount(12)}
	allArgs = Seal(GenesisHeader(types.HashString("g")), allArgs.Calls, allArgs.Receipts,
		allArgs.Schedule, allArgs.Profiles, allArgs.Header.StateRoot)
	if data, err := MarshalBlock(allArgs); err == nil {
		f.Add(data)
	}
	f.Add([]byte{codec.Magic})
	f.Add([]byte{codec.Magic, codec.KindBlock, codec.Version, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeFlatBlock(data)
		if err != nil {
			return
		}
		re, err := AppendBlockWire(nil, b)
		if err != nil {
			t.Fatalf("decoded block failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs:\n in: %x\nout: %x", data, re)
		}
	})
}
