package chain

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"contractstm/internal/types"
)

// The WAL recovery path feeds disk bytes straight into DecodeBlock, so
// decoding must be total: any malformed input returns an error, never
// panics, and never allocates past the MaxWireBlock budget.

func TestDecodeBlockTruncatedStreams(t *testing.T) {
	data, err := MarshalBlock(sealSample(4, types.HashString("s")))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// Every proper prefix must fail cleanly; step to keep the test quick.
	step := len(data)/97 + 1
	for cut := 0; cut < len(data); cut += step {
		if _, err := UnmarshalBlock(data[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(data))
		}
	}
}

func TestDecodeBlockWrongWireVersion(t *testing.T) {
	registerWireTypes()
	var buf bytes.Buffer
	wb := wireBlock{Version: wireVersion + 1, Block: sealSample(2, types.HashString("s"))}
	if err := gob.NewEncoder(&buf).Encode(wb); err != nil {
		t.Fatalf("encode: %v", err)
	}
	_, err := UnmarshalBlock(buf.Bytes())
	if err == nil {
		t.Fatal("wrong wire version decoded without error")
	}
}

func TestDecodeBlockOverBudget(t *testing.T) {
	data, err := MarshalBlock(sealSample(4, types.HashString("s")))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// A stream larger than the budget must fail with ErrTooLarge, not
	// hang or over-allocate. decodeBlockCapped is DecodeBlock with the
	// budget exposed, so the test does not need a real 64 MB block.
	if _, err := decodeBlockCapped(bytes.NewReader(data), int64(len(data))/2); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	// At or above its real size the same stream decodes fine.
	if _, err := decodeBlockCapped(bytes.NewReader(data), int64(len(data))); err != nil {
		t.Fatalf("within budget: %v", err)
	}
}

func TestDecodeBlockBitFlips(t *testing.T) {
	data, err := MarshalBlock(sealSample(3, types.HashString("s")))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// Flip one byte at a time; decode must never panic, and whatever it
	// accepts must still be commitment-consistent. (A flip inside the
	// header's state root can legitimately decode — the state root is
	// the validator's to check, by re-execution — which is exactly why
	// the WAL recovery path replays blocks through the validator.)
	step := len(data)/61 + 1
	for i := 0; i < len(data); i += step {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		got, err := UnmarshalBlock(mut)
		if err == nil {
			if verr := VerifyCommitments(got); verr != nil {
				t.Fatalf("bit flip at %d decoded a block failing commitments: %v", i, verr)
			}
		}
	}
}

func TestChainNewAtPrunes(t *testing.T) {
	// A checkpoint-rooted chain answers like a genesis chain above the
	// base and "not held" below it.
	c := New(types.HashString("genesis"))
	var checkpoint Header
	for i := 0; i < 4; i++ {
		b := Seal(c.Head().Header, sampleCalls(2), sampleReceipts(2), sampleSchedule(2), sampleProfiles(2),
			types.HashString("s"))
		if err := c.Append(b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if i == 2 {
			checkpoint = b.Header
		}
	}

	p := NewAt(checkpoint)
	if p.Base() != 3 || p.Head().Header.Hash() != checkpoint.Hash() {
		t.Fatalf("base %d head %s, want 3 %s", p.Base(), p.Head().Header.Hash().Short(), checkpoint.Hash().Short())
	}
	if _, ok := p.BlockAt(1); ok {
		t.Fatal("pruned chain served a block below its base")
	}
	if _, ok := p.HashAt(2); ok {
		t.Fatal("pruned chain hashed a block below its base")
	}
	if h, ok := p.HashAt(3); !ok || h != checkpoint.Hash() {
		t.Fatal("checkpoint height not served")
	}
	// The continuation block appends onto the checkpoint like any head.
	next, _ := c.BlockAt(4)
	if err := p.Append(next); err != nil {
		t.Fatalf("append onto checkpoint: %v", err)
	}
	if got, ok := p.BlockAt(4); !ok || got.Header.Hash() != next.Header.Hash() {
		t.Fatal("appended block not served")
	}
	if p.Length() != 2 {
		t.Fatalf("pruned chain holds %d blocks, want 2", p.Length())
	}
}

func FuzzDecodeBlock(f *testing.F) {
	valid, err := MarshalBlock(sealSample(3, types.HashString("s")))
	if err != nil {
		f.Fatalf("marshal: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not gob"))
	withVersion := func(v uint32) []byte {
		registerWireTypes()
		var buf bytes.Buffer
		_ = gob.NewEncoder(&buf).Encode(wireBlock{Version: v})
		return buf.Bytes()
	}
	f.Add(withVersion(0))
	f.Add(withVersion(^uint32(0)))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and never accept a block whose commitments do
		// not hold (DecodeBlock verifies them internally, so a nil error
		// implies a self-consistent block).
		b, err := UnmarshalBlock(data)
		if err == nil {
			if verr := VerifyCommitments(b); verr != nil {
				t.Fatalf("decode accepted a block failing commitments: %v", verr)
			}
		}
	})
}
