package chain

import (
	"errors"
	"testing"

	"contractstm/internal/contract"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

func sampleCalls(n int) []contract.Call {
	calls := make([]contract.Call, n)
	for i := range calls {
		calls[i] = contract.Call{
			Sender:   types.AddressFromUint64(uint64(i + 1)),
			Contract: types.AddressFromUint64(1000),
			Function: "f",
			Args:     []any{uint64(i)},
			GasLimit: 10_000,
		}
	}
	return calls
}

func sampleReceipts(n int) []contract.Receipt {
	rs := make([]contract.Receipt, n)
	for i := range rs {
		rs[i] = contract.Receipt{Tx: types.TxID(i), GasUsed: 100}
	}
	return rs
}

func sampleProfiles(n int) []stm.Profile {
	ps := make([]stm.Profile, n)
	for i := range ps {
		ps[i] = stm.Profile{Tx: types.TxID(i), Entries: []stm.ProfileEntry{
			{Lock: stm.LockID{Scope: "m", Key: "k"}, Mode: stm.ModeIncrement, Counter: uint64(i + 1)},
		}}
	}
	return ps
}

func sampleSchedule(n int) sched.Schedule {
	order := make([]types.TxID, n)
	for i := range order {
		order[i] = types.TxID(i)
	}
	return sched.Schedule{Order: order}
}

func sealSample(n int, stateRoot types.Hash) Block {
	return Seal(GenesisHeader(types.HashString("genesis")), sampleCalls(n), sampleReceipts(n),
		sampleSchedule(n), sampleProfiles(n), stateRoot)
}

func TestSealProducesConsistentCommitments(t *testing.T) {
	b := sealSample(5, types.HashString("state"))
	if err := VerifyCommitments(b); err != nil {
		t.Fatalf("VerifyCommitments on sealed block: %v", err)
	}
	if b.Header.Number != 1 {
		t.Fatalf("number = %d, want 1", b.Header.Number)
	}
}

func TestHeaderHashSensitivity(t *testing.T) {
	base := sealSample(3, types.HashString("state")).Header
	mutants := []func(h Header) Header{
		func(h Header) Header { h.Number++; return h },
		func(h Header) Header { h.ParentHash = types.HashString("x"); return h },
		func(h Header) Header { h.TxRoot = types.HashString("x"); return h },
		func(h Header) Header { h.ReceiptRoot = types.HashString("x"); return h },
		func(h Header) Header { h.StateRoot = types.HashString("x"); return h },
		func(h Header) Header { h.ScheduleHash = types.HashString("x"); return h },
	}
	for i, mut := range mutants {
		if mut(base).Hash() == base.Hash() {
			t.Fatalf("mutant %d did not change the header hash", i)
		}
	}
}

func TestVerifyCommitmentsDetectsTampering(t *testing.T) {
	t.Run("call tampered", func(t *testing.T) {
		b := sealSample(4, types.HashString("s"))
		b.Calls[2].Args = []any{uint64(999)}
		if err := VerifyCommitments(b); !errors.Is(err, ErrBadCommitment) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("receipt tampered", func(t *testing.T) {
		b := sealSample(4, types.HashString("s"))
		b.Receipts[0].Reverted = true
		if err := VerifyCommitments(b); !errors.Is(err, ErrBadCommitment) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("schedule order tampered", func(t *testing.T) {
		b := sealSample(4, types.HashString("s"))
		b.Schedule.Order[0], b.Schedule.Order[1] = b.Schedule.Order[1], b.Schedule.Order[0]
		if err := VerifyCommitments(b); !errors.Is(err, ErrBadCommitment) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("profile counter tampered", func(t *testing.T) {
		b := sealSample(4, types.HashString("s"))
		b.Profiles[1].Entries[0].Counter = 77
		if err := VerifyCommitments(b); !errors.Is(err, ErrBadCommitment) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("profile mode tampered", func(t *testing.T) {
		b := sealSample(4, types.HashString("s"))
		b.Profiles[1].Entries[0].Mode = stm.ModeExclusive
		if err := VerifyCommitments(b); !errors.Is(err, ErrBadCommitment) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("receipt count mismatch", func(t *testing.T) {
		b := sealSample(4, types.HashString("s"))
		b.Receipts = b.Receipts[:3]
		if err := VerifyCommitments(b); !errors.Is(err, ErrBadCommitment) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestChainAppendAndLinkage(t *testing.T) {
	genesisRoot := types.HashString("genesis")
	c := New(genesisRoot)
	if c.Length() != 1 {
		t.Fatalf("new chain length = %d", c.Length())
	}
	b1 := Seal(c.Head().Header, sampleCalls(2), sampleReceipts(2), sampleSchedule(2), sampleProfiles(2), types.HashString("s1"))
	if err := c.Append(b1); err != nil {
		t.Fatalf("append b1: %v", err)
	}
	b2 := Seal(c.Head().Header, sampleCalls(3), sampleReceipts(3), sampleSchedule(3), sampleProfiles(3), types.HashString("s2"))
	if err := c.Append(b2); err != nil {
		t.Fatalf("append b2: %v", err)
	}
	if c.Length() != 3 {
		t.Fatalf("length = %d, want 3", c.Length())
	}
	got, ok := c.BlockAt(1)
	if !ok || got.Header.Hash() != b1.Header.Hash() {
		t.Fatal("BlockAt(1) mismatch")
	}
	if _, ok := c.BlockAt(9); ok {
		t.Fatal("BlockAt(9) returned a block")
	}
}

func TestChainRejectsBadParent(t *testing.T) {
	c := New(types.HashString("g"))
	wrongParent := GenesisHeader(types.HashString("other"))
	b := Seal(wrongParent, sampleCalls(1), sampleReceipts(1), sampleSchedule(1), sampleProfiles(1), types.HashString("s"))
	if err := c.Append(b); !errors.Is(err, ErrBadParent) {
		t.Fatalf("err = %v, want ErrBadParent", err)
	}
}

func TestChainRejectsBadNumber(t *testing.T) {
	c := New(types.HashString("g"))
	b := Seal(c.Head().Header, sampleCalls(1), sampleReceipts(1), sampleSchedule(1), sampleProfiles(1), types.HashString("s"))
	b.Header.Number = 5
	if err := c.Append(b); !errors.Is(err, ErrBadNumber) {
		t.Fatalf("err = %v, want ErrBadNumber", err)
	}
}

func TestScheduleHashCoversEdges(t *testing.T) {
	s1 := sampleSchedule(3)
	s2 := sampleSchedule(3)
	s2.Edges = []sched.Edge{{From: 0, To: 1}}
	if ScheduleHashOf(s1, nil) == ScheduleHashOf(s2, nil) {
		t.Fatal("edges not covered by schedule hash")
	}
}

func TestScheduleHashCoversLockIdentity(t *testing.T) {
	p1 := []stm.Profile{{Tx: 0, Entries: []stm.ProfileEntry{{Lock: stm.LockID{Scope: "a", Key: "b"}, Mode: stm.ModeShared, Counter: 1}}}}
	p2 := []stm.Profile{{Tx: 0, Entries: []stm.ProfileEntry{{Lock: stm.LockID{Scope: "ab", Key: ""}, Mode: stm.ModeShared, Counter: 1}}}}
	s := sampleSchedule(1)
	if ScheduleHashOf(s, p1) == ScheduleHashOf(s, p2) {
		t.Fatal("lock scope/key boundary not covered by schedule hash")
	}
}

func TestEmptyBlock(t *testing.T) {
	b := Seal(GenesisHeader(types.ZeroHash), nil, nil, sched.Schedule{}, nil, types.HashString("s"))
	if err := VerifyCommitments(b); err != nil {
		t.Fatalf("empty block invalid: %v", err)
	}
}
