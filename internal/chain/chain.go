// Package chain implements the blockchain substrate: hash-linked blocks
// carrying transactions, receipts, a state commitment — and, following the
// paper's proposal, the scheduling metadata (serial order S, happens-before
// edges H, and per-transaction lock profiles) that lets validators replay
// the miner's parallel schedule deterministically (§4: "A miner includes
// these profiles in the blockchain along with usual information").
package chain

import (
	"errors"
	"fmt"
	"sync"

	"contractstm/internal/contract"
	"contractstm/internal/crypto"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// Errors reported by chain operations.
var (
	// ErrBadParent reports a block whose parent hash does not match the
	// chain tip.
	ErrBadParent = errors.New("chain: parent hash mismatch")
	// ErrBadNumber reports a block with a non-consecutive height.
	ErrBadNumber = errors.New("chain: block number mismatch")
	// ErrBadCommitment reports header commitments that do not match the
	// block body (tx root, receipt root or schedule hash).
	ErrBadCommitment = errors.New("chain: header commitment mismatch")
)

// Header is a block's consensus-critical summary.
type Header struct {
	// Number is the block height (genesis is 0).
	Number uint64 `json:"number"`
	// ParentHash links to the previous block.
	ParentHash types.Hash `json:"parentHash"`
	// TxRoot commits to the transaction list.
	TxRoot types.Hash `json:"txRoot"`
	// ReceiptRoot commits to the execution receipts.
	ReceiptRoot types.Hash `json:"receiptRoot"`
	// StateRoot commits to the post-state of executing the block.
	StateRoot types.Hash `json:"stateRoot"`
	// ScheduleHash commits to the published fork-join schedule (S, H,
	// profiles). This is the paper's extension to the block format.
	ScheduleHash types.Hash `json:"scheduleHash"`
}

// Hash returns the block hash: the digest of the canonical header encoding.
func (h Header) Hash() types.Hash {
	return types.HashConcat(
		types.Uint64Bytes(h.Number),
		h.ParentHash[:],
		h.TxRoot[:],
		h.ReceiptRoot[:],
		h.StateRoot[:],
		h.ScheduleHash[:],
	)
}

// Block is a full block: header, body, and the paper's schedule metadata.
type Block struct {
	Header Header `json:"header"`
	// Calls is the transaction list in original (submission) order; TxID i
	// refers to Calls[i].
	Calls []contract.Call `json:"calls"`
	// Receipts is the per-transaction execution digest, indexed by TxID.
	Receipts []contract.Receipt `json:"receipts"`
	// Schedule is the serial order S and happens-before edges H.
	Schedule sched.Schedule `json:"schedule"`
	// Profiles is the per-transaction lock profile registered at commit,
	// indexed by TxID.
	Profiles []stm.Profile `json:"profiles"`
}

// TxRootOf commits to a transaction list.
func TxRootOf(calls []contract.Call) types.Hash {
	leaves := make([]types.Hash, len(calls))
	for i, c := range calls {
		leaves[i] = types.HashBytes(c.EncodeForHash())
	}
	return crypto.MerkleRoot(leaves)
}

// ReceiptRootOf commits to a receipt list.
func ReceiptRootOf(receipts []contract.Receipt) types.Hash {
	leaves := make([]types.Hash, len(receipts))
	for i, r := range receipts {
		leaves[i] = types.HashBytes(r.EncodeForHash())
	}
	return crypto.MerkleRoot(leaves)
}

// ScheduleHashOf commits to the published schedule: S, H and the profiles,
// all canonically encoded.
func ScheduleHashOf(s sched.Schedule, profiles []stm.Profile) types.Hash {
	var buf []byte
	buf = append(buf, types.Uint32Bytes(uint32(len(s.Order)))...)
	for _, tx := range s.Order {
		buf = append(buf, types.Uint32Bytes(uint32(tx))...)
	}
	buf = append(buf, types.Uint32Bytes(uint32(len(s.Edges)))...)
	for _, e := range s.Edges {
		buf = append(buf, types.Uint32Bytes(uint32(e.From))...)
		buf = append(buf, types.Uint32Bytes(uint32(e.To))...)
	}
	buf = append(buf, types.Uint32Bytes(uint32(len(profiles)))...)
	for _, p := range profiles {
		buf = append(buf, types.Uint32Bytes(uint32(p.Tx))...)
		buf = append(buf, types.Uint32Bytes(uint32(len(p.Entries)))...)
		for _, e := range p.Entries {
			buf = append(buf, types.Uint32Bytes(uint32(len(e.Lock.Scope)))...)
			buf = append(buf, e.Lock.Scope...)
			buf = append(buf, types.Uint32Bytes(uint32(len(e.Lock.Key)))...)
			buf = append(buf, e.Lock.Key...)
			buf = append(buf, byte(e.Mode))
			buf = append(buf, types.Uint64Bytes(e.Counter)...)
		}
	}
	return types.HashBytes(buf)
}

// Seal fills in the header commitments from the block body and returns the
// completed block. parent is the previous block's header.
func Seal(parent Header, calls []contract.Call, receipts []contract.Receipt,
	s sched.Schedule, profiles []stm.Profile, stateRoot types.Hash) Block {
	b := Block{
		Calls:    calls,
		Receipts: receipts,
		Schedule: s,
		Profiles: profiles,
	}
	b.Header = Header{
		Number:       parent.Number + 1,
		ParentHash:   parent.Hash(),
		TxRoot:       TxRootOf(calls),
		ReceiptRoot:  ReceiptRootOf(receipts),
		StateRoot:    stateRoot,
		ScheduleHash: ScheduleHashOf(s, profiles),
	}
	return b
}

// VerifyCommitments checks that a block's header commitments match its
// body. It does not re-execute anything; that is the validator's job.
func VerifyCommitments(b Block) error {
	if got := TxRootOf(b.Calls); got != b.Header.TxRoot {
		return fmt.Errorf("%w: tx root %s != %s", ErrBadCommitment, got.Short(), b.Header.TxRoot.Short())
	}
	if got := ReceiptRootOf(b.Receipts); got != b.Header.ReceiptRoot {
		return fmt.Errorf("%w: receipt root %s != %s", ErrBadCommitment, got.Short(), b.Header.ReceiptRoot.Short())
	}
	if got := ScheduleHashOf(b.Schedule, b.Profiles); got != b.Header.ScheduleHash {
		return fmt.Errorf("%w: schedule hash %s != %s", ErrBadCommitment, got.Short(), b.Header.ScheduleHash.Short())
	}
	if len(b.Receipts) != len(b.Calls) {
		return fmt.Errorf("%w: %d receipts for %d calls", ErrBadCommitment, len(b.Receipts), len(b.Calls))
	}
	if len(b.Profiles) != len(b.Calls) {
		return fmt.Errorf("%w: %d profiles for %d calls", ErrBadCommitment, len(b.Profiles), len(b.Calls))
	}
	return nil
}

// Chain is an append-only hash-linked sequence of blocks. A chain is
// normally rooted at genesis, but it can also be rooted at a trusted
// checkpoint header (NewAt) — a state snapshot's header — in which case
// blocks below the checkpoint are pruned: height queries under the base
// answer "not held" rather than failing.
type Chain struct {
	mu sync.Mutex
	// base is the height of blocks[0]: 0 for a genesis-rooted chain, the
	// snapshot height for a checkpoint-rooted one.
	base   uint64
	blocks []Block
}

// GenesisHeader is the fixed header blocks build on; Number 0 with a
// distinguished state root supplied by the caller.
func GenesisHeader(stateRoot types.Hash) Header {
	return Header{Number: 0, StateRoot: stateRoot}
}

// New creates a chain whose genesis commits to the given initial state.
func New(stateRoot types.Hash) *Chain {
	return NewAt(GenesisHeader(stateRoot))
}

// NewAt creates a chain rooted at a trusted checkpoint header: the
// snapshot fast-sync and snapshot recovery paths resume a chain at a
// state snapshot's height without holding the blocks underneath it. The
// checkpoint block is header-only, exactly like genesis; for h.Number 0
// this is New.
func NewAt(h Header) *Chain {
	return &Chain{base: h.Number, blocks: []Block{{Header: h}}}
}

// Base returns the height of the oldest block the chain holds: 0 for a
// genesis-rooted chain, the checkpoint height for a pruned one.
func (c *Chain) Base() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base
}

// Head returns the latest block.
func (c *Chain) Head() Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocks[len(c.blocks)-1]
}

// Length returns the number of blocks held, including the root
// (genesis or checkpoint) block. For a genesis-rooted chain this is
// head height + 1.
func (c *Chain) Length() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blocks)
}

// BlockAt returns the block at the given height. Heights below the base
// of a pruned chain answer "not held", like heights above the head.
func (c *Chain) BlockAt(n uint64) (Block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < c.base || n-c.base >= uint64(len(c.blocks)) {
		return Block{}, false
	}
	return c.blocks[n-c.base], true
}

// HashAt returns the hash of the block at the given height, if any. It is
// the cheap membership probe import paths use for duplicate and fork
// detection before paying for re-execution.
func (c *Chain) HashAt(n uint64) (types.Hash, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < c.base || n-c.base >= uint64(len(c.blocks)) {
		return types.Hash{}, false
	}
	return c.blocks[n-c.base].Header.Hash(), true
}

// ErrRewindPastBase reports a RewindTo below the oldest held block.
var ErrRewindPastBase = errors.New("chain: rewind below chain base")

// RewindTo drops every block above height, making it the new head. It is
// the pipelined miner's abort primitive: blocks sealed but never made
// durable are un-appended so the chain tracks what the WAL can actually
// recover. Rewinding below the base (the root the chain cannot reopen) is
// refused; rewinding at or above the head is a no-op.
func (c *Chain) RewindTo(height uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if height < c.base {
		return fmt.Errorf("%w: rewind to %d, base %d", ErrRewindPastBase, height, c.base)
	}
	if keep := height - c.base + 1; keep < uint64(len(c.blocks)) {
		c.blocks = c.blocks[:keep]
	}
	return nil
}

// Append verifies linkage and commitments, then appends the block.
func (c *Chain) Append(b Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	head := c.blocks[len(c.blocks)-1]
	if b.Header.Number != head.Header.Number+1 {
		return fmt.Errorf("%w: got %d, want %d", ErrBadNumber, b.Header.Number, head.Header.Number+1)
	}
	if b.Header.ParentHash != head.Header.Hash() {
		return fmt.Errorf("%w: got %s, want %s", ErrBadParent, b.Header.ParentHash.Short(), head.Header.Hash().Short())
	}
	if err := VerifyCommitments(b); err != nil {
		return err
	}
	c.blocks = append(c.blocks, b)
	return nil
}
