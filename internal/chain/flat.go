package chain

import (
	"fmt"

	"contractstm/internal/codec"
	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// Flat block encoding: the default wire format for blocks since the flat
// codec replaced gob (see internal/codec for the stream header and the
// sniffing rules; DESIGN.md "Wire codec" for the full layout). The body
// after the 7-byte codec header is:
//
//	header    u64 number, 5 × 32-byte hashes (parent, tx, receipt, state,
//	          schedule roots)
//	calls     u32 count; each: 20-byte sender, 20-byte contract,
//	          string function, u32 arg count, tagged args, u64 value,
//	          u64 gas limit
//	receipts  u32 count; each: u32 tx, bool reverted, u64 gas, string reason
//	schedule  u32 order length, u32 per id; u32 edge count, (u32,u32) per edge
//	profiles  u32 count; each: u32 tx, u32 entry count; each entry:
//	          string scope, string key, u8 mode, u64 counter
//
// Call arguments carry the same type tags as contract.Call.EncodeForHash
// (0x01 uint64 … 0x07 Amount); an argument outside the supported wire set
// is an encode error — unlike the hash path's 0xff fallback, the wire
// must round-trip losslessly.

// Argument type tags, mirroring contract.encodeArg.
const (
	argUint64  byte = 0x01
	argInt     byte = 0x02
	argBool    byte = 0x03
	argString  byte = 0x04
	argAddress byte = 0x05
	argHash    byte = 0x06
	argAmount  byte = 0x07
)

// AppendBlockWire appends b's complete wire encoding (codec header plus
// flat body) to dst and returns the extended slice. This is the
// zero-extra-copy primitive the WAL group commit uses to pack many blocks
// into one pooled buffer; EncodeBlock and MarshalBlock are wrappers.
func AppendBlockWire(dst []byte, b Block) ([]byte, error) {
	dst, start := codec.AppendHeader(dst, codec.KindBlock)
	var err error
	if dst, err = appendFlatBody(dst, b); err != nil {
		return nil, fmt.Errorf("chain: encode block %d: %w", b.Header.Number, err)
	}
	codec.FinishHeader(dst, start)
	return dst, nil
}

func appendFlatBody(dst []byte, b Block) ([]byte, error) {
	dst = appendFlatHeader(dst, b.Header)

	dst = codec.AppendU32(dst, uint32(len(b.Calls)))
	for _, c := range b.Calls {
		dst = append(dst, c.Sender[:]...)
		dst = append(dst, c.Contract[:]...)
		dst = codec.AppendString(dst, c.Function)
		dst = codec.AppendU32(dst, uint32(len(c.Args)))
		var err error
		for _, a := range c.Args {
			if dst, err = appendFlatArg(dst, a); err != nil {
				return nil, err
			}
		}
		dst = codec.AppendU64(dst, uint64(c.Value))
		dst = codec.AppendU64(dst, uint64(c.GasLimit))
	}

	dst = codec.AppendU32(dst, uint32(len(b.Receipts)))
	for _, r := range b.Receipts {
		dst = codec.AppendU32(dst, uint32(r.Tx))
		dst = codec.AppendBool(dst, r.Reverted)
		dst = codec.AppendU64(dst, uint64(r.GasUsed))
		dst = codec.AppendString(dst, r.Reason)
	}

	dst = codec.AppendU32(dst, uint32(len(b.Schedule.Order)))
	for _, id := range b.Schedule.Order {
		dst = codec.AppendU32(dst, uint32(id))
	}
	dst = codec.AppendU32(dst, uint32(len(b.Schedule.Edges)))
	for _, e := range b.Schedule.Edges {
		dst = codec.AppendU32(dst, uint32(e.From))
		dst = codec.AppendU32(dst, uint32(e.To))
	}

	dst = codec.AppendU32(dst, uint32(len(b.Profiles)))
	for _, p := range b.Profiles {
		dst = codec.AppendU32(dst, uint32(p.Tx))
		dst = codec.AppendU32(dst, uint32(len(p.Entries)))
		for _, e := range p.Entries {
			if int(e.Mode) < 0 || int(e.Mode) > 0xFF {
				return nil, fmt.Errorf("profile mode %d out of byte range", e.Mode)
			}
			dst = codec.AppendString(dst, e.Lock.Scope)
			dst = codec.AppendString(dst, e.Lock.Key)
			dst = codec.AppendU8(dst, byte(e.Mode))
			dst = codec.AppendU64(dst, e.Counter)
		}
	}
	return dst, nil
}

func appendFlatHeader(dst []byte, h Header) []byte {
	dst = codec.AppendU64(dst, h.Number)
	dst = append(dst, h.ParentHash[:]...)
	dst = append(dst, h.TxRoot[:]...)
	dst = append(dst, h.ReceiptRoot[:]...)
	dst = append(dst, h.StateRoot[:]...)
	dst = append(dst, h.ScheduleHash[:]...)
	return dst
}

func appendFlatArg(dst []byte, a any) ([]byte, error) {
	switch x := a.(type) {
	case uint64:
		return codec.AppendU64(append(dst, argUint64), x), nil
	case int:
		return codec.AppendU64(append(dst, argInt), uint64(x)), nil
	case bool:
		return codec.AppendBool(append(dst, argBool), x), nil
	case string:
		return codec.AppendString(append(dst, argString), x), nil
	case types.Address:
		return append(append(dst, argAddress), x[:]...), nil
	case types.Hash:
		return append(append(dst, argHash), x[:]...), nil
	case types.Amount:
		return codec.AppendU64(append(dst, argAmount), uint64(x)), nil
	default:
		return nil, fmt.Errorf("call argument type %T has no wire encoding", a)
	}
}

// decodeFlatBlock parses a complete flat block payload (header included)
// without verifying commitments; callers decide whether to verify.
func decodeFlatBlock(payload []byte) (Block, error) {
	body, err := codec.ParseHeader(payload, codec.KindBlock)
	if err != nil {
		return Block{}, err
	}
	r := codec.NewReader(body)
	b, err := readFlatBody(r)
	if err != nil {
		return Block{}, err
	}
	if err := r.Done(); err != nil {
		return Block{}, err
	}
	return b, nil
}

func readFlatBody(r *codec.Reader) (Block, error) {
	var b Block
	var err error
	if b.Header, err = readFlatHeader(r); err != nil {
		return Block{}, err
	}

	// Minimum encoded sizes guard element counts against allocation bombs
	// (see codec.Reader.Count).
	const (
		minCall    = types.AddressLen*2 + 4 + 4 + 8 + 8
		minReceipt = 4 + 1 + 8 + 4
		minProfile = 4 + 4
		minEntry   = 4 + 4 + 1 + 8
	)

	nCalls, err := r.Count(minCall)
	if err != nil {
		return Block{}, fmt.Errorf("calls: %w", err)
	}
	b.Calls = make([]contract.Call, nCalls)
	for i := range b.Calls {
		if err := readFlatCall(r, &b.Calls[i]); err != nil {
			return Block{}, fmt.Errorf("call %d: %w", i, err)
		}
	}

	nReceipts, err := r.Count(minReceipt)
	if err != nil {
		return Block{}, fmt.Errorf("receipts: %w", err)
	}
	b.Receipts = make([]contract.Receipt, nReceipts)
	for i := range b.Receipts {
		rc := &b.Receipts[i]
		var tx uint32
		if tx, err = r.U32(); err == nil {
			rc.Tx = types.TxID(tx)
			rc.Reverted, err = r.Bool()
		}
		if err == nil {
			var g uint64
			g, err = r.U64()
			rc.GasUsed = gas.Gas(g)
		}
		if err == nil {
			rc.Reason, err = r.String()
		}
		if err != nil {
			return Block{}, fmt.Errorf("receipt %d: %w", i, err)
		}
	}

	nOrder, err := r.Count(4)
	if err != nil {
		return Block{}, fmt.Errorf("schedule order: %w", err)
	}
	b.Schedule.Order = make([]types.TxID, nOrder)
	for i := range b.Schedule.Order {
		id, err := r.U32()
		if err != nil {
			return Block{}, fmt.Errorf("schedule order %d: %w", i, err)
		}
		b.Schedule.Order[i] = types.TxID(id)
	}
	nEdges, err := r.Count(8)
	if err != nil {
		return Block{}, fmt.Errorf("schedule edges: %w", err)
	}
	b.Schedule.Edges = make([]sched.Edge, nEdges)
	for i := range b.Schedule.Edges {
		from, err := r.U32()
		if err == nil {
			var to uint32
			to, err = r.U32()
			b.Schedule.Edges[i] = sched.Edge{From: types.TxID(from), To: types.TxID(to)}
		}
		if err != nil {
			return Block{}, fmt.Errorf("schedule edge %d: %w", i, err)
		}
	}

	nProfiles, err := r.Count(minProfile)
	if err != nil {
		return Block{}, fmt.Errorf("profiles: %w", err)
	}
	b.Profiles = make([]stm.Profile, nProfiles)
	for i := range b.Profiles {
		p := &b.Profiles[i]
		tx, err := r.U32()
		if err != nil {
			return Block{}, fmt.Errorf("profile %d: %w", i, err)
		}
		p.Tx = types.TxID(tx)
		nEntries, err := r.Count(minEntry)
		if err != nil {
			return Block{}, fmt.Errorf("profile %d entries: %w", i, err)
		}
		p.Entries = make([]stm.ProfileEntry, nEntries)
		for j := range p.Entries {
			e := &p.Entries[j]
			if e.Lock.Scope, err = r.String(); err == nil {
				e.Lock.Key, err = r.String()
			}
			if err == nil {
				var m byte
				m, err = r.U8()
				e.Mode = stm.Mode(m)
			}
			if err == nil {
				e.Counter, err = r.U64()
			}
			if err != nil {
				return Block{}, fmt.Errorf("profile %d entry %d: %w", i, j, err)
			}
		}
	}
	return b, nil
}

func readFlatHeader(r *codec.Reader) (Header, error) {
	var h Header
	var err error
	if h.Number, err = r.U64(); err != nil {
		return Header{}, err
	}
	for _, dst := range []*types.Hash{&h.ParentHash, &h.TxRoot, &h.ReceiptRoot, &h.StateRoot, &h.ScheduleHash} {
		raw, err := r.Take(types.HashLen)
		if err != nil {
			return Header{}, err
		}
		copy(dst[:], raw)
	}
	return h, nil
}

func readFlatCall(r *codec.Reader, c *contract.Call) error {
	for _, dst := range []*types.Address{&c.Sender, &c.Contract} {
		raw, err := r.Take(types.AddressLen)
		if err != nil {
			return err
		}
		copy(dst[:], raw)
	}
	var err error
	if c.Function, err = r.String(); err != nil {
		return err
	}
	nArgs, err := r.Count(1)
	if err != nil {
		return fmt.Errorf("args: %w", err)
	}
	if nArgs > 0 {
		c.Args = make([]any, nArgs)
		for i := range c.Args {
			if c.Args[i], err = readFlatArg(r); err != nil {
				return fmt.Errorf("arg %d: %w", i, err)
			}
		}
	}
	v, err := r.U64()
	if err != nil {
		return err
	}
	c.Value = types.Amount(v)
	g, err := r.U64()
	if err != nil {
		return err
	}
	c.GasLimit = gas.Gas(g)
	return nil
}

func readFlatArg(r *codec.Reader) (any, error) {
	tag, err := r.U8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case argUint64:
		return r.U64()
	case argInt:
		v, err := r.U64()
		return int(v), err
	case argBool:
		return r.Bool()
	case argString:
		return r.String()
	case argAddress:
		raw, err := r.Take(types.AddressLen)
		if err != nil {
			return nil, err
		}
		var a types.Address
		copy(a[:], raw)
		return a, nil
	case argHash:
		raw, err := r.Take(types.HashLen)
		if err != nil {
			return nil, err
		}
		var h types.Hash
		copy(h[:], raw)
		return h, nil
	case argAmount:
		v, err := r.U64()
		return types.Amount(v), err
	default:
		return nil, fmt.Errorf("%w: argument tag 0x%02x", codec.ErrFormat, tag)
	}
}
