package chain

import (
	"bytes"
	"strings"
	"testing"

	"contractstm/internal/codec"
	"contractstm/internal/types"
)

func TestBlockRoundTrip(t *testing.T) {
	orig := sealSample(6, types.HashString("state"))
	data, err := MarshalBlock(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalBlock(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Header.Hash() != orig.Header.Hash() {
		t.Fatal("header hash changed across round trip")
	}
	if len(got.Calls) != len(orig.Calls) || len(got.Profiles) != len(orig.Profiles) {
		t.Fatal("body sizes changed")
	}
	// Arguments (any-typed) must survive with their concrete types.
	if v, ok := got.Calls[2].Args[0].(uint64); !ok || v != 2 {
		t.Fatalf("arg round trip: %T %v", got.Calls[2].Args[0], got.Calls[2].Args[0])
	}
}

func TestBlockRoundTripAllArgTypes(t *testing.T) {
	b := sealSample(1, types.HashString("s"))
	b.Calls[0].Args = []any{
		uint64(7), int(3), true, "text",
		types.AddressFromUint64(9), types.HashString("h"), types.Amount(12),
	}
	// Re-seal: args changed the tx root.
	b = Seal(GenesisHeader(types.HashString("genesis")), b.Calls, b.Receipts, b.Schedule, b.Profiles, b.Header.StateRoot)
	data, err := MarshalBlock(b)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalBlock(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	args := got.Calls[0].Args
	if args[0].(uint64) != 7 || args[1].(int) != 3 || args[2].(bool) != true ||
		args[3].(string) != "text" || args[4].(types.Address) != types.AddressFromUint64(9) ||
		args[5].(types.Hash) != types.HashString("h") || args[6].(types.Amount) != 12 {
		t.Fatalf("args = %#v", args)
	}
}

func TestDecodeBlockRejectsTamperedBody(t *testing.T) {
	b := sealSample(3, types.HashString("s"))
	b.Receipts[0].GasUsed++ // body no longer matches header
	data, err := MarshalBlock(b)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if _, err := UnmarshalBlock(data); err == nil {
		t.Fatal("tampered block decoded without error")
	}
}

func TestDecodeBlockRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalBlock([]byte("not a block")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := UnmarshalBlock(nil); err == nil {
		t.Fatal("empty input decoded")
	}
}

func TestChainRoundTrip(t *testing.T) {
	c := New(types.HashString("genesis"))
	for i := 0; i < 3; i++ {
		n := 2 + i
		b := Seal(c.Head().Header, sampleCalls(n), sampleReceipts(n), sampleSchedule(n), sampleProfiles(n),
			types.HashString("s"+strings.Repeat("x", i)))
		if err := c.Append(b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if err := c.EncodeChain(&buf); err != nil {
		t.Fatalf("encode chain: %v", err)
	}
	got, err := DecodeChain(&buf)
	if err != nil {
		t.Fatalf("decode chain: %v", err)
	}
	if got.Length() != c.Length() {
		t.Fatalf("length %d, want %d", got.Length(), c.Length())
	}
	if got.Head().Header.Hash() != c.Head().Header.Hash() {
		t.Fatal("head hash mismatch after round trip")
	}
}

func TestDecodeChainRejectsBrokenLinkage(t *testing.T) {
	c := New(types.HashString("genesis"))
	b := Seal(c.Head().Header, sampleCalls(2), sampleReceipts(2), sampleSchedule(2), sampleProfiles(2), types.HashString("s"))
	if err := c.Append(b); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Break the linkage without touching the block's own commitments:
	// ParentHash is not covered by VerifyCommitments, so only the chain's
	// linkage check can catch it.
	tampered := b
	tampered.Header.ParentHash = types.HashString("somewhere else")
	genesis, _ := c.BlockAt(0)
	data := encodeChainBlocks(t, genesis.Header, tampered)
	if _, err := DecodeChain(bytes.NewReader(data)); err == nil {
		t.Fatal("chain stream with broken linkage decoded without error")
	}

	// Bit flips anywhere in the stream must never panic; whatever decodes
	// must preserve every verifiable invariant (a flip in a state root is
	// the validator's to catch, like in TestDecodeBlockBitFlips).
	var buf bytes.Buffer
	if err := c.EncodeChain(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	good := buf.Bytes()
	step := len(good)/61 + 1
	for i := 0; i < len(good); i += step {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0x41
		if got, err := DecodeChain(bytes.NewReader(mut)); err == nil {
			if verr := VerifyCommitments(got.Head()); verr != nil {
				t.Fatalf("flip at %d decoded a chain whose head fails commitments: %v", i, verr)
			}
		}
	}
}

// encodeChainBlocks hand-builds a flat chain stream from a genesis header
// and follow-on blocks, bypassing Chain.Append's checks so tests can
// construct invalid streams.
func encodeChainBlocks(t *testing.T, genesis Header, blocks ...Block) []byte {
	t.Helper()
	dst, start := codec.AppendHeader(nil, codec.KindChain)
	dst = codec.AppendU32(dst, uint32(1+len(blocks)))
	var err error
	if dst, err = AppendBlockWire(dst, Block{Header: genesis}); err != nil {
		t.Fatalf("encode genesis: %v", err)
	}
	for _, b := range blocks {
		if dst, err = AppendBlockWire(dst, b); err != nil {
			t.Fatalf("encode block: %v", err)
		}
	}
	codec.FinishHeader(dst, start)
	return dst
}

func TestDecodeChainRejectsEmptyStream(t *testing.T) {
	if _, err := DecodeChain(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream decoded")
	}
}
