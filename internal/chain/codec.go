package chain

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"contractstm/internal/types"
)

// Wire serialization for blocks: gob-based, suitable for persistence and
// for shipping blocks between nodes. Contract call arguments are `any`
// values; the concrete argument types contracts accept are registered
// here so gob can round-trip them.
//
// Integrity is independent of encoding: after decoding, callers verify
// header commitments (VerifyCommitments) and re-validate execution, so a
// corrupted or malicious stream can at worst produce a block that is then
// rejected.

// wireVersion guards against decoding blocks from incompatible builds.
const wireVersion uint32 = 1

// MaxWireBlock bounds one block's wire encoding; both the node's block
// upload handler and the cluster peer client cap reads at this, so the
// serve and fetch sides can never disagree on what fits.
const MaxWireBlock = 64 << 20

// wireBlock is the on-the-wire envelope.
type wireBlock struct {
	Version uint32
	Block   Block
}

var registerOnce sync.Once

func registerWireTypes() {
	registerOnce.Do(func() {
		gob.Register(uint64(0))
		gob.Register(int(0))
		gob.Register(false)
		gob.Register("")
		gob.Register(types.Address{})
		gob.Register(types.Hash{})
		gob.Register(types.Amount(0))
	})
}

// EncodeBlock writes b to w in wire format.
func EncodeBlock(w io.Writer, b Block) error {
	registerWireTypes()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(wireBlock{Version: wireVersion, Block: b}); err != nil {
		return fmt.Errorf("chain: encode block %d: %w", b.Header.Number, err)
	}
	return nil
}

// DecodeBlock reads one block from r and verifies its header commitments
// against the decoded body; it does NOT re-execute (that is the
// validator's job).
func DecodeBlock(r io.Reader) (Block, error) {
	registerWireTypes()
	dec := gob.NewDecoder(r)
	var wb wireBlock
	if err := dec.Decode(&wb); err != nil {
		return Block{}, fmt.Errorf("chain: decode block: %w", err)
	}
	if wb.Version != wireVersion {
		return Block{}, fmt.Errorf("chain: wire version %d, want %d", wb.Version, wireVersion)
	}
	if err := VerifyCommitments(wb.Block); err != nil {
		return Block{}, fmt.Errorf("chain: decoded block fails commitments: %w", err)
	}
	return wb.Block, nil
}

// MarshalBlock renders b as bytes (EncodeBlock into a buffer).
func MarshalBlock(b Block) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeBlock(&buf, b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBlock parses bytes produced by MarshalBlock.
func UnmarshalBlock(data []byte) (Block, error) {
	return DecodeBlock(bytes.NewReader(data))
}

// EncodeChain writes every block of c (including genesis) to w.
func (c *Chain) EncodeChain(w io.Writer) error {
	c.mu.Lock()
	blocks := make([]Block, len(c.blocks))
	copy(blocks, c.blocks)
	c.mu.Unlock()

	registerWireTypes()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(wireVersion); err != nil {
		return fmt.Errorf("chain: encode version: %w", err)
	}
	if err := enc.Encode(len(blocks)); err != nil {
		return fmt.Errorf("chain: encode length: %w", err)
	}
	for _, b := range blocks {
		if err := enc.Encode(b); err != nil {
			return fmt.Errorf("chain: encode block %d: %w", b.Header.Number, err)
		}
	}
	return nil
}

// DecodeChain reconstructs a chain from w's stream, re-verifying linkage
// and commitments block by block.
func DecodeChain(r io.Reader) (*Chain, error) {
	registerWireTypes()
	dec := gob.NewDecoder(r)
	var version uint32
	if err := dec.Decode(&version); err != nil {
		return nil, fmt.Errorf("chain: decode version: %w", err)
	}
	if version != wireVersion {
		return nil, fmt.Errorf("chain: wire version %d, want %d", version, wireVersion)
	}
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("chain: decode length: %w", err)
	}
	if n < 1 {
		return nil, fmt.Errorf("chain: stream has %d blocks, need at least genesis", n)
	}
	var genesis Block
	if err := dec.Decode(&genesis); err != nil {
		return nil, fmt.Errorf("chain: decode genesis: %w", err)
	}
	if genesis.Header.Number != 0 {
		return nil, fmt.Errorf("chain: first block has height %d, want 0", genesis.Header.Number)
	}
	c := New(genesis.Header.StateRoot)
	for i := 1; i < n; i++ {
		var b Block
		if err := dec.Decode(&b); err != nil {
			return nil, fmt.Errorf("chain: decode block %d: %w", i, err)
		}
		if err := c.Append(b); err != nil {
			return nil, fmt.Errorf("chain: replaying block %d: %w", i, err)
		}
	}
	return c, nil
}
