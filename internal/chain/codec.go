package chain

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"contractstm/internal/codec"
	"contractstm/internal/types"
)

// Wire serialization for blocks, suitable for persistence and for
// shipping blocks between nodes. The default format is the flat binary
// codec (flat.go, internal/codec): length-prefixed little-endian fields,
// no reflection, single-buffer encodes. Streams produced by the previous
// release's gob codec are still decoded — the first payload byte
// distinguishes the formats unambiguously (see internal/codec) — but
// nothing encodes gob anymore; the fallback lasts one release so old data
// directories and peers recover cleanly.
//
// Integrity is independent of encoding: after decoding, callers verify
// header commitments (VerifyCommitments) and re-validate execution, so a
// corrupted or malicious stream can at worst produce a block that is then
// rejected.

// wireVersion guards against decoding legacy gob blocks from
// incompatible builds.
const wireVersion uint32 = 1

// MaxWireBlock bounds one block's wire encoding; the node's block upload
// handler, the cluster peer client and the persistence WAL all cap reads
// at this, so the serve, fetch and recovery sides can never disagree on
// what fits. DecodeBlock additionally enforces the bound itself, so a
// caller that forgets the LimitReader still cannot be fed an unbounded
// stream.
const MaxWireBlock = 64 << 20

// ErrTooLarge reports a wire stream that exceeds MaxWireBlock before one
// block finished decoding.
var ErrTooLarge = errors.New("chain: wire block exceeds MaxWireBlock")

// cappedReader fails with ErrTooLarge once more than its budget has been
// read, unlike io.LimitReader's silent EOF truncation: decode errors then
// say "too large", not "unexpected EOF".
type cappedReader struct {
	r         io.Reader
	remaining int64
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, ErrTooLarge
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.r.Read(p)
	c.remaining -= int64(n)
	return n, err
}

// wireBlock is the legacy gob envelope.
type wireBlock struct {
	Version uint32
	Block   Block
}

func registerWireTypes() { types.RegisterWireValues() }

// EncodeBlock writes b to w in wire format (flat codec).
func EncodeBlock(w io.Writer, b Block) error {
	buf := codec.GetBuffer()
	defer buf.Release()
	enc, err := AppendBlockWire(buf.B, b)
	if err != nil {
		return err
	}
	buf.B = enc
	if _, err := w.Write(enc); err != nil {
		return fmt.Errorf("chain: encode block %d: %w", b.Header.Number, err)
	}
	return nil
}

// MarshalBlock renders b as bytes. The encode lands in a pooled scratch
// buffer and is copied out exactly once at its final size, so the append
// path never reallocates mid-encode.
func MarshalBlock(b Block) ([]byte, error) {
	buf := codec.GetBuffer()
	defer buf.Release()
	enc, err := AppendBlockWire(buf.B, b)
	if err != nil {
		return nil, err
	}
	buf.B = enc
	out := make([]byte, len(enc))
	copy(out, enc)
	return out, nil
}

// MarshalBlockGob renders b in the legacy gob wire format. Retained only
// for the one-release read-compatibility window: migration tests use it
// to fabricate gob-era data directories and peers; nothing on the live
// write path calls it.
func MarshalBlockGob(b Block) ([]byte, error) {
	registerWireTypes()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireBlock{Version: wireVersion, Block: b}); err != nil {
		return nil, fmt.Errorf("chain: encode block %d: %w", b.Header.Number, err)
	}
	return buf.Bytes(), nil
}

// DecodeBlock reads one block from r and verifies its header commitments
// against the decoded body; it does NOT re-execute (that is the
// validator's job). Input is untrusted: the stream is size-capped at
// MaxWireBlock, and any malformed input — truncated, version-skewed,
// corrupted — returns an error, never panics. The persistence WAL feeds
// disk bytes straight into this path on crash recovery. The first byte
// selects the format: flat (current) or gob (previous release).
func DecodeBlock(r io.Reader) (Block, error) {
	return decodeBlockCapped(r, MaxWireBlock)
}

// decodeBlockCapped is DecodeBlock with an explicit byte budget (tests
// exercise the budget without building a 64 MB block).
func decodeBlockCapped(r io.Reader, budget int64) (Block, error) {
	cr := &cappedReader{r: r, remaining: budget}
	var first [1]byte
	if _, err := io.ReadFull(cr, first[:]); err != nil {
		return Block{}, fmt.Errorf("chain: decode block: %w", err)
	}

	if codec.IsFlat(first[0]) {
		var hdr [codec.HeaderLen]byte
		hdr[0] = first[0]
		if _, err := io.ReadFull(cr, hdr[1:]); err != nil {
			return Block{}, fmt.Errorf("chain: decode block header: %w", err)
		}
		bodyLen := int64(binary.LittleEndian.Uint32(hdr[3:codec.HeaderLen]))
		total := int64(codec.HeaderLen) + bodyLen
		if total > budget {
			return Block{}, fmt.Errorf("chain: decode block: %d-byte block exceeds %d-byte cap: %w",
				total, budget, ErrTooLarge)
		}
		payload := make([]byte, total)
		copy(payload, hdr[:])
		if _, err := io.ReadFull(cr, payload[codec.HeaderLen:]); err != nil {
			return Block{}, fmt.Errorf("chain: decode block body: %w", err)
		}
		b, err := decodeFlatBlock(payload)
		if err != nil {
			return Block{}, fmt.Errorf("chain: decode block: %w", err)
		}
		return verifyDecoded(b)
	}

	// Legacy gob stream from the previous release.
	registerWireTypes()
	dec := gob.NewDecoder(io.MultiReader(bytes.NewReader(first[:]), cr))
	var wb wireBlock
	if err := dec.Decode(&wb); err != nil {
		if cr.remaining <= 0 {
			return Block{}, fmt.Errorf("chain: decode block: stream still undecoded after %d bytes (cap %d): %w",
				budget-cr.remaining, budget, ErrTooLarge)
		}
		return Block{}, fmt.Errorf("chain: decode block: %w", err)
	}
	if wb.Version != wireVersion {
		return Block{}, fmt.Errorf("chain: wire version %d, want %d", wb.Version, wireVersion)
	}
	return verifyDecoded(wb.Block)
}

func verifyDecoded(b Block) (Block, error) {
	if err := VerifyCommitments(b); err != nil {
		return Block{}, fmt.Errorf("chain: decoded block fails commitments: %w", err)
	}
	return b, nil
}

// UnmarshalBlock parses bytes produced by MarshalBlock (or, for one
// release, the legacy gob MarshalBlock), sniffing the format from the
// first byte.
func UnmarshalBlock(data []byte) (Block, error) {
	if int64(len(data)) > MaxWireBlock {
		return Block{}, fmt.Errorf("chain: decode block: %d-byte block exceeds %d-byte cap: %w",
			len(data), int64(MaxWireBlock), ErrTooLarge)
	}
	if len(data) > 0 && codec.IsFlat(data[0]) {
		b, err := decodeFlatBlock(data)
		if err != nil {
			return Block{}, fmt.Errorf("chain: decode block: %w", err)
		}
		return verifyDecoded(b)
	}
	return DecodeBlock(bytes.NewReader(data))
}

// EncodeChain writes every block of c (including genesis) to w as one
// flat stream: a chain-kind codec header whose body is a block count
// followed by each block's self-delimiting wire encoding.
func (c *Chain) EncodeChain(w io.Writer) error {
	c.mu.Lock()
	blocks := make([]Block, len(c.blocks))
	copy(blocks, c.blocks)
	c.mu.Unlock()

	buf := codec.GetBuffer()
	defer buf.Release()
	dst, start := codec.AppendHeader(buf.B, codec.KindChain)
	dst = codec.AppendU32(dst, uint32(len(blocks)))
	var err error
	for _, b := range blocks {
		if dst, err = AppendBlockWire(dst, b); err != nil {
			return err
		}
	}
	codec.FinishHeader(dst, start)
	buf.B = dst
	if _, err := w.Write(dst); err != nil {
		return fmt.Errorf("chain: encode chain: %w", err)
	}
	return nil
}

// DecodeChain reconstructs a chain from r's stream, re-verifying linkage
// and commitments block by block. Legacy gob chain streams decode via
// the same first-byte sniff as blocks.
func DecodeChain(r io.Reader) (*Chain, error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return nil, fmt.Errorf("chain: decode chain: %w", err)
	}
	if !codec.IsFlat(first[0]) {
		return decodeChainGob(io.MultiReader(bytes.NewReader(first[:]), r))
	}
	var hdr [codec.HeaderLen]byte
	hdr[0] = first[0]
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("chain: decode chain header: %w", err)
	}
	body := make([]byte, binary.LittleEndian.Uint32(hdr[3:codec.HeaderLen]))
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("chain: decode chain body: %w", err)
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("chain: decode chain: %w", codec.ErrTruncated)
	}
	n := int(binary.LittleEndian.Uint32(body[:4]))
	if n < 1 {
		return nil, fmt.Errorf("chain: stream has %d blocks, need at least genesis", n)
	}
	rest := body[4:]
	var c *Chain
	for i := 0; i < n; i++ {
		if len(rest) < codec.HeaderLen {
			return nil, fmt.Errorf("chain: decode block %d: %w", i, codec.ErrTruncated)
		}
		total := codec.HeaderLen + int(binary.LittleEndian.Uint32(rest[3:codec.HeaderLen]))
		if total > len(rest) || total > MaxWireBlock {
			return nil, fmt.Errorf("chain: decode block %d: %w", i, codec.ErrTruncated)
		}
		b, err := decodeFlatBlock(rest[:total])
		if err != nil {
			return nil, fmt.Errorf("chain: decode block %d: %w", i, err)
		}
		rest = rest[total:]
		if i == 0 {
			if b.Header.Number != 0 {
				return nil, fmt.Errorf("chain: first block has height %d, want 0", b.Header.Number)
			}
			c = New(b.Header.StateRoot)
			continue
		}
		if err := c.Append(b); err != nil {
			return nil, fmt.Errorf("chain: replaying block %d: %w", i, err)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("chain: decode chain: %d trailing bytes: %w", len(rest), codec.ErrFormat)
	}
	return c, nil
}

// decodeChainGob decodes the previous release's gob chain stream.
func decodeChainGob(r io.Reader) (*Chain, error) {
	registerWireTypes()
	dec := gob.NewDecoder(r)
	var version uint32
	if err := dec.Decode(&version); err != nil {
		return nil, fmt.Errorf("chain: decode version: %w", err)
	}
	if version != wireVersion {
		return nil, fmt.Errorf("chain: wire version %d, want %d", version, wireVersion)
	}
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("chain: decode length: %w", err)
	}
	if n < 1 {
		return nil, fmt.Errorf("chain: stream has %d blocks, need at least genesis", n)
	}
	var genesis Block
	if err := dec.Decode(&genesis); err != nil {
		return nil, fmt.Errorf("chain: decode genesis: %w", err)
	}
	if genesis.Header.Number != 0 {
		return nil, fmt.Errorf("chain: first block has height %d, want 0", genesis.Header.Number)
	}
	c := New(genesis.Header.StateRoot)
	for i := 1; i < n; i++ {
		var b Block
		if err := dec.Decode(&b); err != nil {
			return nil, fmt.Errorf("chain: decode block %d: %w", i, err)
		}
		if err := c.Append(b); err != nil {
			return nil, fmt.Errorf("chain: replaying block %d: %w", i, err)
		}
	}
	return c, nil
}
