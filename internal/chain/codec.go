package chain

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"contractstm/internal/types"
)

// Wire serialization for blocks: gob-based, suitable for persistence and
// for shipping blocks between nodes. Contract call arguments are `any`
// values; the concrete argument types contracts accept are registered
// here so gob can round-trip them.
//
// Integrity is independent of encoding: after decoding, callers verify
// header commitments (VerifyCommitments) and re-validate execution, so a
// corrupted or malicious stream can at worst produce a block that is then
// rejected.

// wireVersion guards against decoding blocks from incompatible builds.
const wireVersion uint32 = 1

// MaxWireBlock bounds one block's wire encoding; the node's block upload
// handler, the cluster peer client and the persistence WAL all cap reads
// at this, so the serve, fetch and recovery sides can never disagree on
// what fits. DecodeBlock additionally enforces the bound itself, so a
// caller that forgets the LimitReader still cannot be fed an unbounded
// stream.
const MaxWireBlock = 64 << 20

// ErrTooLarge reports a wire stream that exceeds MaxWireBlock before one
// block finished decoding.
var ErrTooLarge = errors.New("chain: wire block exceeds MaxWireBlock")

// cappedReader fails with ErrTooLarge once more than its budget has been
// read, unlike io.LimitReader's silent EOF truncation: decode errors then
// say "too large", not "unexpected EOF".
type cappedReader struct {
	r         io.Reader
	remaining int64
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, ErrTooLarge
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.r.Read(p)
	c.remaining -= int64(n)
	return n, err
}

// wireBlock is the on-the-wire envelope.
type wireBlock struct {
	Version uint32
	Block   Block
}

func registerWireTypes() { types.RegisterWireValues() }

// EncodeBlock writes b to w in wire format.
func EncodeBlock(w io.Writer, b Block) error {
	registerWireTypes()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(wireBlock{Version: wireVersion, Block: b}); err != nil {
		return fmt.Errorf("chain: encode block %d: %w", b.Header.Number, err)
	}
	return nil
}

// DecodeBlock reads one block from r and verifies its header commitments
// against the decoded body; it does NOT re-execute (that is the
// validator's job). Input is untrusted: the stream is size-capped at
// MaxWireBlock, and any malformed input — truncated, version-skewed,
// corrupted — returns an error, never panics. The persistence WAL feeds
// disk bytes straight into this path on crash recovery.
func DecodeBlock(r io.Reader) (Block, error) {
	return decodeBlockCapped(r, MaxWireBlock)
}

// decodeBlockCapped is DecodeBlock with an explicit byte budget (tests
// exercise the budget without building a 64 MB block).
func decodeBlockCapped(r io.Reader, budget int64) (Block, error) {
	registerWireTypes()
	cr := &cappedReader{r: r, remaining: budget}
	dec := gob.NewDecoder(cr)
	var wb wireBlock
	if err := dec.Decode(&wb); err != nil {
		if cr.remaining <= 0 {
			return Block{}, fmt.Errorf("chain: decode block: %w", ErrTooLarge)
		}
		return Block{}, fmt.Errorf("chain: decode block: %w", err)
	}
	if wb.Version != wireVersion {
		return Block{}, fmt.Errorf("chain: wire version %d, want %d", wb.Version, wireVersion)
	}
	if err := VerifyCommitments(wb.Block); err != nil {
		return Block{}, fmt.Errorf("chain: decoded block fails commitments: %w", err)
	}
	return wb.Block, nil
}

// MarshalBlock renders b as bytes (EncodeBlock into a buffer).
func MarshalBlock(b Block) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeBlock(&buf, b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBlock parses bytes produced by MarshalBlock.
func UnmarshalBlock(data []byte) (Block, error) {
	return DecodeBlock(bytes.NewReader(data))
}

// EncodeChain writes every block of c (including genesis) to w.
func (c *Chain) EncodeChain(w io.Writer) error {
	c.mu.Lock()
	blocks := make([]Block, len(c.blocks))
	copy(blocks, c.blocks)
	c.mu.Unlock()

	registerWireTypes()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(wireVersion); err != nil {
		return fmt.Errorf("chain: encode version: %w", err)
	}
	if err := enc.Encode(len(blocks)); err != nil {
		return fmt.Errorf("chain: encode length: %w", err)
	}
	for _, b := range blocks {
		if err := enc.Encode(b); err != nil {
			return fmt.Errorf("chain: encode block %d: %w", b.Header.Number, err)
		}
	}
	return nil
}

// DecodeChain reconstructs a chain from w's stream, re-verifying linkage
// and commitments block by block.
func DecodeChain(r io.Reader) (*Chain, error) {
	registerWireTypes()
	dec := gob.NewDecoder(r)
	var version uint32
	if err := dec.Decode(&version); err != nil {
		return nil, fmt.Errorf("chain: decode version: %w", err)
	}
	if version != wireVersion {
		return nil, fmt.Errorf("chain: wire version %d, want %d", version, wireVersion)
	}
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("chain: decode length: %w", err)
	}
	if n < 1 {
		return nil, fmt.Errorf("chain: stream has %d blocks, need at least genesis", n)
	}
	var genesis Block
	if err := dec.Decode(&genesis); err != nil {
		return nil, fmt.Errorf("chain: decode genesis: %w", err)
	}
	if genesis.Header.Number != 0 {
		return nil, fmt.Errorf("chain: first block has height %d, want 0", genesis.Header.Number)
	}
	c := New(genesis.Header.StateRoot)
	for i := 1; i < n; i++ {
		var b Block
		if err := dec.Decode(&b); err != nil {
			return nil, fmt.Errorf("chain: decode block %d: %w", i, err)
		}
		if err := c.Append(b); err != nil {
			return nil, fmt.Errorf("chain: replaying block %d: %w", i, err)
		}
	}
	return c, nil
}
