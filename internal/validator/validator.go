// Package validator implements the paper's Algorithm 2 and §4-§5 checks:
// compile a block's published schedule (S, H) into a deterministic
// fork-join program, re-execute it in parallel with no locks, no conflict
// detection and no rollback machinery, and reject the block if anything
// diverges from what the miner published:
//
//   - malformed metadata: H cyclic, S not a topological order of H,
//     commitments not matching the body;
//   - trace mismatch: the abstract locks a transaction would have acquired
//     differ from the miner's published profile;
//   - data race: two conflicting lock uses unordered by H;
//   - outcome mismatch: a transaction's receipt (reverted flag, gas used)
//     differs from the block's;
//   - state mismatch: the final state root differs from the header's.
//
// Validation is deterministic and can use any number of threads ("the
// validator is not required to match the miner's level of parallelism").
package validator

import (
	"errors"
	"fmt"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/types"
)

// ErrRejected wraps every validation failure: callers can treat any
// wrapped error as "reject the block".
var ErrRejected = errors.New("validator: block rejected")

// Config tunes a validation run.
type Config struct {
	// Workers is the fork-join pool size.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// Result reports a successful validation.
type Result struct {
	// Makespan is the run's duration in the runner's time unit.
	Makespan uint64
	// Receipts are the re-derived receipts (equal to the block's).
	Receipts []contract.Receipt
}

// Prechecked carries the outputs of the stateless validation phase so the
// stateful phase can reuse them instead of recomputing: the fork-join plan
// and the happens-before graph compiled from the block's schedule.
type Prechecked struct {
	plan  sched.Plan
	graph *sched.Graph
}

// Precheck runs every check in Validate that never touches contract.World:
// body/schedule commitments and schedule-graph construction (H acyclic, S a
// topological order). It is pure with respect to b — safe to run
// concurrently across a window of queued blocks (internal/importer's
// Phase A). The returned errors are byte-identical to the ones Validate
// produces for the same block, so a staged import pipeline that elects the
// first Precheck error by height rejects exactly like the serial path.
func Precheck(b chain.Block) (Prechecked, error) {
	if err := chain.VerifyCommitments(b); err != nil {
		return Prechecked{}, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	plan, graph, err := sched.ConstructValidator(len(b.Calls), b.Schedule)
	if err != nil {
		return Prechecked{}, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	return Prechecked{plan: plan, graph: graph}, nil
}

// Validate re-executes block b against w (which must hold the parent
// state) and verifies it end to end. On success the world has advanced to
// the block's post-state; on rejection the world state is unspecified and
// callers should restore a snapshot.
func Validate(runner runtime.Runner, w *contract.World, b chain.Block, cfg Config) (Result, error) {
	pre, err := Precheck(b)
	if err != nil {
		return Result{}, err
	}
	return ValidatePrechecked(runner, w, b, pre, cfg)
}

// ValidatePrechecked is the stateful phase of Validate: fork-join replay
// against world state plus the trace/race/receipt/state-root comparisons.
// pre must come from Precheck on the same block; the split exists so the
// staged import pipeline can run Precheck concurrently across a window and
// keep only this phase strictly sequential in height order.
func ValidatePrechecked(runner runtime.Runner, w *contract.World, b chain.Block, pre Prechecked, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	n := len(b.Calls)
	plan, graph := pre.plan, pre.graph

	// The replay execution loop lives in the engine layer (shared with the
	// engines' schedule derivation); validation layers the checks on top.
	run, err := engine.Replay(runner, w, b.Calls, plan, cfg.Workers)
	if err != nil {
		return Result{}, fmt.Errorf("%w: fork-join execution: %v", ErrRejected, err)
	}
	receipts, traces, makespan := run.Receipts, run.Traces, run.Makespan

	// Trace-vs-profile comparison (§4: "the validator's VM compares the
	// traces it generated with the lock profiles provided by the miner").
	for i := 0; i < n; i++ {
		if b.Profiles[i].Tx != types.TxID(i) {
			return Result{}, fmt.Errorf("%w: profile %d labelled %s", ErrRejected, i, b.Profiles[i].Tx)
		}
		if !traces[i].MatchesProfile(b.Profiles[i]) {
			return Result{}, fmt.Errorf("%w: %s trace does not match published lock profile", ErrRejected, types.TxID(i))
		}
	}
	// Race check (§5: reject "if the schedule has a data race").
	if err := sched.CheckRaces(graph, traces); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	// Outcome comparison: the block's receipts must match re-execution.
	for i := 0; i < n; i++ {
		got, want := receipts[i], b.Receipts[i]
		if got.Reverted != want.Reverted || got.GasUsed != want.GasUsed || got.Tx != want.Tx {
			return Result{}, fmt.Errorf("%w: %s receipt mismatch: re-executed %+v, block %+v",
				ErrRejected, types.TxID(i), got, want)
		}
	}
	// Final state comparison (§5: reject "if the schedule produces a final
	// state different from the one recorded in the block").
	root, err := w.StateRoot()
	if err != nil {
		return Result{}, fmt.Errorf("validator: state root: %w", err)
	}
	if root != b.Header.StateRoot {
		return Result{}, fmt.Errorf("%w: final state %s != header %s",
			ErrRejected, root.Short(), b.Header.StateRoot.Short())
	}
	return Result{Makespan: makespan, Receipts: receipts}, nil
}
