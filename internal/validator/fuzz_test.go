package validator

import (
	"math/rand"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/miner"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
	"contractstm/internal/workload"

	"contractstm/internal/runtime"
)

// mutateBlock applies one random structural mutation to a block and
// reports whether the mutation is guaranteed to be semantics-preserving
// (in which case the validator must ACCEPT). All mutations re-seal the
// header so the cheap commitment check cannot mask the semantic checks.
func mutateBlock(rng *rand.Rand, b chain.Block) (chain.Block, bool) {
	preserving := false
	switch rng.Intn(7) {
	case 0: // flip a receipt's reverted flag
		if len(b.Receipts) > 0 {
			i := rng.Intn(len(b.Receipts))
			b.Receipts[i].Reverted = !b.Receipts[i].Reverted
		}
	case 1: // perturb a receipt's gas
		if len(b.Receipts) > 0 {
			i := rng.Intn(len(b.Receipts))
			b.Receipts[i].GasUsed += 1
		}
	case 2: // drop a profile entry
		for _, i := range rng.Perm(len(b.Profiles)) {
			if len(b.Profiles[i].Entries) > 0 {
				b.Profiles[i].Entries = b.Profiles[i].Entries[1:]
				break
			}
		}
	case 3: // add a phantom lock to a profile
		if len(b.Profiles) > 0 {
			i := rng.Intn(len(b.Profiles))
			b.Profiles[i].Entries = append(b.Profiles[i].Entries, stm.ProfileEntry{
				Lock:    stm.LockID{Scope: "phantom", Key: "x"},
				Mode:    stm.ModeExclusive,
				Counter: uint64(rng.Intn(5) + 1),
			})
		}
	case 4: // drop all happens-before edges
		if len(b.Schedule.Edges) > 0 {
			b.Schedule.Edges = nil
		} else {
			preserving = true // nothing to drop: block unchanged
		}
	case 5: // over-serialize: add every consecutive edge of S (valid!)
		order := b.Schedule.Order
		for i := 1; i < len(order); i++ {
			b.Schedule.Edges = append(b.Schedule.Edges,
				sched.Edge{From: order[i-1], To: order[i]})
		}
		preserving = true
	case 6: // forge the state root
		b.Header.StateRoot = types.HashString("forged")
		// Keep the forged root through the re-seal below.
		return chain.Seal(chain.GenesisHeader(types.HashString("fuzz-genesis")),
			b.Calls, b.Receipts, b.Schedule, b.Profiles, types.HashString("forged")), false
	}
	return chain.Seal(chain.GenesisHeader(types.HashString("fuzz-genesis")),
		b.Calls, b.Receipts, b.Schedule, b.Profiles, b.Header.StateRoot), preserving
}

// TestValidatorMetamorphicTamperFuzz: for random workloads and random
// block mutations, the validator must accept semantics-preserving
// mutations and — the security property — never accept a mutated block
// whose re-execution state differs from the honest one.
func TestValidatorMetamorphicTamperFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	iterations := 30
	if testing.Short() {
		iterations = 10
	}
	accepted, rejected := 0, 0
	for it := 0; it < iterations; it++ {
		p := workload.Params{
			Kind:            workload.Kinds()[rng.Intn(4)],
			Transactions:    8 + rng.Intn(30),
			ConflictPercent: rng.Intn(101),
			Seed:            rng.Int63n(100000),
		}
		wl, err := workload.Generate(p)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		res, err := minerMine(t, wl)
		if err != nil {
			t.Fatalf("mine: %v", err)
		}
		honestRoot := res.Header.StateRoot

		mutated, preserving := mutateBlock(rng, res)
		wl.Reset()
		_, err = Validate(runtime.NewSimRunner(), wl.World, mutated, Config{Workers: 3})
		if preserving {
			if err != nil {
				t.Fatalf("it=%d %+v: semantics-preserving mutation rejected: %v", it, p, err)
			}
			accepted++
			continue
		}
		if err == nil {
			// Acceptance of a mutation is only sound if the resulting
			// state equals the honest one (e.g. the mutation was a no-op
			// for this block).
			root, rerr := wl.World.StateRoot()
			if rerr != nil {
				t.Fatalf("state root: %v", rerr)
			}
			if root != honestRoot {
				t.Fatalf("it=%d %+v: tampered block accepted with divergent state", it, p)
			}
			accepted++
			continue
		}
		rejected++
	}
	if rejected == 0 {
		t.Fatal("fuzz never exercised a rejection")
	}
	t.Logf("accepted=%d rejected=%d", accepted, rejected)
}

// minerMine mines the workload on the fuzz genesis and returns the block.
func minerMine(t *testing.T, wl *workload.Workload) (chain.Block, error) {
	t.Helper()
	res, err := miner.MineParallel(runtime.NewSimRunner(), wl.World,
		chain.GenesisHeader(types.HashString("fuzz-genesis")), wl.Calls, miner.Config{Workers: 3})
	if err != nil {
		return chain.Block{}, err
	}
	return res.Block, nil
}
