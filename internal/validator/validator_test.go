package validator

import (
	"errors"
	"strconv"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

func genesis() chain.Header { return chain.GenesisHeader(types.HashString("test-genesis")) }

// mineBlock generates a workload, mines it in parallel, and returns the
// workload (reset to pre-block state) plus the mined block.
func mineBlock(t *testing.T, p workload.Params) (*workload.Workload, chain.Block) {
	t.Helper()
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := miner.MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls, miner.Config{Workers: 3})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	w.Reset()
	return w, res.Block
}

// reseal recomputes header commitments after (malicious) body edits, so
// tampering tests exercise the validator's semantic checks rather than the
// cheap commitment comparison.
func reseal(b chain.Block) chain.Block {
	sealed := chain.Seal(genesis(), b.Calls, b.Receipts, b.Schedule, b.Profiles, b.Header.StateRoot)
	return sealed
}

func TestValidateHonestBlocks(t *testing.T) {
	for _, kind := range workload.Kinds() {
		for _, conflict := range []int{0, 15, 50, 100} {
			kind, conflict := kind, conflict
			t.Run(kind.String()+"/"+strconv.Itoa(conflict), func(t *testing.T) {
				w, block := mineBlock(t, workload.Params{
					Kind: kind, Transactions: 40, ConflictPercent: conflict, Seed: 42,
				})
				res, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: 3})
				if err != nil {
					t.Fatalf("honest block rejected: %v", err)
				}
				if len(res.Receipts) != 40 {
					t.Fatalf("receipts = %d", len(res.Receipts))
				}
			})
		}
	}
}

func TestValidateHonestBlockVariousWorkers(t *testing.T) {
	// "The validator is not required to match the miner's level of
	// parallelism" (§4).
	for _, workers := range []int{1, 2, 3, 6} {
		w, block := mineBlock(t, workload.Params{
			Kind: workload.KindMixed, Transactions: 45, ConflictPercent: 30, Seed: 5,
		})
		if _, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestValidateOnOSThreads(t *testing.T) {
	w, err := workload.Generate(workload.Params{
		Kind: workload.KindMixed, Transactions: 40, ConflictPercent: 20, Seed: 17,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := miner.MineParallel(runtime.NewOSRunner(nil), w.World, genesis(), w.Calls, miner.Config{Workers: 4})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	w.Reset()
	if _, err := Validate(runtime.NewOSRunner(nil), w.World, res.Block, Config{Workers: 4}); err != nil {
		t.Fatalf("validate on OS threads: %v", err)
	}
}

func TestValidateRejectsTamperedStateRoot(t *testing.T) {
	w, block := mineBlock(t, workload.Params{
		Kind: workload.KindBallot, Transactions: 30, ConflictPercent: 15, Seed: 1,
	})
	block.Header.StateRoot = types.HashString("lies")
	if _, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: 3}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestValidateRejectsBodyTamperingWithoutReseal(t *testing.T) {
	w, block := mineBlock(t, workload.Params{
		Kind: workload.KindBallot, Transactions: 30, ConflictPercent: 15, Seed: 1,
	})
	block.Receipts[3].Reverted = !block.Receipts[3].Reverted
	if _, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: 3}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected (commitment mismatch)", err)
	}
}

func TestValidateRejectsForgedReceipts(t *testing.T) {
	w, block := mineBlock(t, workload.Params{
		Kind: workload.KindBallot, Transactions: 30, ConflictPercent: 50, Seed: 1,
	})
	// Find a reverted receipt and forge it as committed, with a reseal so
	// commitments pass; re-execution must catch the lie.
	forged := -1
	for i, r := range block.Receipts {
		if r.Reverted {
			forged = i
			break
		}
	}
	if forged < 0 {
		t.Fatal("fixture: no reverted tx at 50% ballot conflict")
	}
	block.Receipts[forged].Reverted = false
	block = reseal(block)
	if _, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: 3}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected (receipt mismatch)", err)
	}
}

func TestValidateRejectsStrippedSchedule(t *testing.T) {
	// The central security property: a miner that publishes an
	// over-parallel schedule (dropping happens-before edges between
	// conflicting transactions) must be caught — the replay traces reveal
	// the data race.
	w, block := mineBlock(t, workload.Params{
		Kind: workload.KindAuction, Transactions: 30, ConflictPercent: 60, Seed: 2,
	})
	if len(block.Schedule.Edges) == 0 {
		t.Fatal("fixture: no edges to strip")
	}
	block.Schedule.Edges = nil
	// Also strip the conflicting locks out of the profiles, the way a
	// cheating miner would have to for H to look edge-free.
	for i := range block.Profiles {
		block.Profiles[i].Entries = nil
	}
	block = reseal(block)
	if _, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: 3}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestValidateRejectsDroppedEdgesKeepingProfiles(t *testing.T) {
	// Dropping edges while keeping honest profiles is inconsistent: the
	// happens-before graph rebuilt by the validator comes from the block's
	// edge list, and CheckRaces sees conflicting traces unordered.
	w, block := mineBlock(t, workload.Params{
		Kind: workload.KindEtherDoc, Transactions: 30, ConflictPercent: 80, Seed: 3,
	})
	if len(block.Schedule.Edges) == 0 {
		t.Fatal("fixture: no edges to strip")
	}
	block.Schedule.Edges = nil
	block = reseal(block)
	_, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: 3})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestValidateRejectsForgedProfiles(t *testing.T) {
	w, block := mineBlock(t, workload.Params{
		Kind: workload.KindBallot, Transactions: 30, ConflictPercent: 15, Seed: 4,
	})
	// Claim tx 0 held an extra lock it never touches.
	block.Profiles[0].Entries = append(block.Profiles[0].Entries, stm.ProfileEntry{
		Lock: stm.LockID{Scope: "phantom", Key: "x"}, Mode: stm.ModeExclusive, Counter: 1,
	})
	block = reseal(block)
	if _, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: 3}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected (trace mismatch)", err)
	}
}

func TestValidateRejectsCyclicSchedule(t *testing.T) {
	w, block := mineBlock(t, workload.Params{
		Kind: workload.KindBallot, Transactions: 10, ConflictPercent: 0, Seed: 5,
	})
	block.Schedule.Edges = append(block.Schedule.Edges,
		sched.Edge{From: 0, To: 1}, sched.Edge{From: 1, To: 0})
	block = reseal(block)
	if _, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: 3}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected (cyclic H)", err)
	}
}

func TestValidateRejectsWrongParentState(t *testing.T) {
	_, block := mineBlock(t, workload.Params{
		Kind: workload.KindBallot, Transactions: 20, ConflictPercent: 0, Seed: 6,
	})
	// Validate against a *different* world (wrong seed): traces may match,
	// but the final state cannot.
	other, err := workload.Generate(workload.Params{
		Kind: workload.KindBallot, Transactions: 20, ConflictPercent: 0, Seed: 7,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := Validate(runtime.NewSimRunner(), other.World, block, Config{Workers: 3}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestValidateAcceptsOverSerializedSchedule(t *testing.T) {
	// The paper observes a miner may publish a *slower but correct*
	// schedule (for example, fully sequential) and proposes incentives,
	// not validation, to discourage it. Adding every consecutive edge of S
	// to H keeps the block valid: the validator must accept it.
	w, block := mineBlock(t, workload.Params{
		Kind: workload.KindMixed, Transactions: 30, ConflictPercent: 15, Seed: 8,
	})
	order := block.Schedule.Order
	for i := 1; i < len(order); i++ {
		block.Schedule.Edges = append(block.Schedule.Edges,
			sched.Edge{From: order[i-1], To: order[i]})
	}
	block = reseal(block)
	if _, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: 3}); err != nil {
		t.Fatalf("over-serialized but correct schedule rejected: %v", err)
	}
}

func TestValidateAdvancesWorldState(t *testing.T) {
	w, block := mineBlock(t, workload.Params{
		Kind: workload.KindBallot, Transactions: 20, ConflictPercent: 0, Seed: 9,
	})
	if _, err := Validate(runtime.NewSimRunner(), w.World, block, Config{Workers: 3}); err != nil {
		t.Fatalf("validate: %v", err)
	}
	root, err := w.World.StateRoot()
	if err != nil {
		t.Fatalf("state root: %v", err)
	}
	if root != block.Header.StateRoot {
		t.Fatal("world did not advance to the block's post-state")
	}
}

func TestValidateEmptyBlock(t *testing.T) {
	w, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := miner.MineParallel(runtime.NewSimRunner(), w, genesis(), nil, miner.Config{Workers: 3})
	if err != nil {
		t.Fatalf("mine empty: %v", err)
	}
	if _, err := Validate(runtime.NewSimRunner(), w, res.Block, Config{Workers: 3}); err != nil {
		t.Fatalf("validate empty: %v", err)
	}
}

func TestValidatorFasterThanSerialOnLowConflict(t *testing.T) {
	// The headline property in simulated time: with 3 workers and low
	// conflict, validation beats the serial baseline.
	p := workload.Params{Kind: workload.KindBallot, Transactions: 200, ConflictPercent: 0, Seed: 10}
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	serial, err := miner.ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	w.Reset()
	res, err := miner.MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls, miner.Config{Workers: 3})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	w.Reset()
	vres, err := Validate(runtime.NewSimRunner(), w.World, res.Block, Config{Workers: 3})
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if vres.Makespan >= serial.Makespan {
		t.Fatalf("validator makespan %d >= serial %d: no speedup", vres.Makespan, serial.Makespan)
	}
	if res.Makespan >= serial.Makespan {
		t.Fatalf("miner makespan %d >= serial %d: no speedup", res.Makespan, serial.Makespan)
	}
	// Validators replay without conflict detection: faster than mining.
	if vres.Makespan >= res.Makespan {
		t.Fatalf("validator %d >= miner %d: replay should be cheaper", vres.Makespan, res.Makespan)
	}
}
