// Package importer is the staged catch-up import pipeline: deterministic
// parallel validation on followers, the paper's validator role scaled to
// cores.
//
// Validation splits into two phases. Phase A is stateless — decode,
// commitment verification, schedule-graph construction (H acyclic, S a
// topological order) and a window-internal header-linkage precheck —
// everything in validator.Validate that never touches contract.World. It
// runs concurrently across a bounded window of queued blocks on a worker
// pool, fed by a prefetcher that amortizes peer round-trips with range
// fetches (falling back to single-block fetches for old peers). Phase B is
// stateful — fork-join replay against world state, WAL append, chain
// append, receipts — and stays strictly sequential in height order with
// unchanged crash rules (it is node.ImportPrechecked, the same code path
// as the serial AcceptBlock).
//
// Determinism contract: Phase A results complete in arbitrary order, but a
// reorder buffer hands them to Phase B strictly by height, so the first
// error is elected by height — never by completion order — and a bad block
// at height h rejects with an error byte-identical to the serial path's,
// regardless of scheduling. The window-internal linkage precheck only
// stops the prefetcher early; the authoritative linkage verdict is the
// commit stage's, checked against the live head.
//
// The pipeline ships behind node.Config.ImportMode (off|shadow|on); the
// mode semantics live on node.ImportPrechecked.
package importer

import (
	"context"
	"errors"
	"fmt"

	"contractstm/internal/chain"
	"contractstm/internal/node"
	"contractstm/internal/validator"
)

// Source fetches blocks from a peer. cluster.Peer implements it; tests
// substitute in-memory fakes (including adversarial ones).
type Source interface {
	// Block fetches one block by height.
	Block(ctx context.Context, height uint64) (chain.Block, error)
	// Blocks fetches up to count consecutive blocks starting at from, in
	// height order. A short result is not an error (the peer served what
	// it had); any error makes the pipeline fall back to Block.
	Blocks(ctx context.Context, from uint64, count int) ([]chain.Block, error)
}

// Target consumes validated blocks strictly in height order.
// *node.Node implements it via ImportPrechecked.
type Target interface {
	ImportPrechecked(b chain.Block, pre validator.Prechecked, preErr error) error
}

// Config tunes the pipeline. The zero value gets defaults.
type Config struct {
	// Workers is the Phase A (stateless validation) pool size (default 4).
	Workers int
	// Window bounds how many fetched blocks may be in flight between the
	// prefetcher and the sequential commit stage (default 4×Workers, at
	// least 8). The window is a latency budget, not a parallelism knob:
	// it must hold enough prefetched blocks that the commit stage never
	// waits on a peer round trip, even when Phase A runs on one worker.
	Window int
	// Batch is the range-fetch size the prefetcher requests per peer
	// round-trip (default min(Window, 16)).
	Batch int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Window <= 0 {
		c.Window = 4 * c.Workers
		if c.Window < 8 {
			c.Window = 8
		}
	}
	if c.Batch <= 0 {
		c.Batch = c.Window
		if c.Batch > 16 {
			c.Batch = 16
		}
	}
	return c
}

// BlockError reports the pipeline's elected verdict: the lowest height
// whose import failed, with the underlying import error. Fetch-layer
// failures are returned unwrapped (they carry the source's own context).
type BlockError struct {
	Height uint64
	Err    error
}

// Error implements error.
func (e *BlockError) Error() string {
	return fmt.Sprintf("importer: height %d: %v", e.Height, e.Err)
}

// Unwrap exposes the import error for errors.Is/As.
func (e *BlockError) Unwrap() error { return e.Err }

// job is one block moving through the pipeline. done is closed by the
// Phase A worker once pre/preErr are populated; the commit stage receives
// jobs through a height-ordered channel, so waiting on done before
// committing is the reorder buffer.
type job struct {
	block  chain.Block
	pre    validator.Prechecked
	preErr error
	done   chan struct{}
}

// Run imports heights [from, to] from src into t through the staged
// pipeline and returns how many blocks were imported (already-known
// heights are skipped, not counted, not errors). The first failing height
// — elected by height order, exactly like the serial loop — is returned
// as a *BlockError; fetch failures and cancellation (context.Cause) pass
// through unwrapped.
func Run(ctx context.Context, t Target, src Source, from, to uint64, cfg Config) (imported int, err error) {
	if from > to {
		return 0, nil
	}
	cfg = cfg.withDefaults()

	pctx := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		jobs     = make(chan *job, cfg.Window) // Phase A worker feed
		ordered  = make(chan *job, cfg.Window) // commit feed, height order
		fetchErr error                         // set before ordered closes
	)

	// Prefetcher: walk [from, to] in order, range-fetching Batch blocks per
	// round-trip and degrading to single-block fetches when the peer does
	// not serve ranges. Every fetched block is sent to ordered (the commit
	// queue) first and jobs (the worker feed) second; ordered's capacity is
	// the pipeline's in-flight window.
	go func() {
		defer close(jobs)
		defer close(ordered)
		rangeOK := true
		havePrev := false
		var prev chain.Block
		h := from
		for h <= to {
			if pctx.Err() != nil {
				fetchErr = context.Cause(pctx)
				return
			}
			var batch []chain.Block
			if rangeOK {
				want := int(to-h) + 1
				if want > cfg.Batch {
					want = cfg.Batch
				}
				bs, err := src.Blocks(ctx, h, want)
				if err != nil || len(bs) == 0 {
					// Old peer (or transient failure): remember and fall
					// back to the single-block path, which also owns the
					// canonical fetch-error messages.
					rangeOK = false
				} else {
					batch = bs
				}
			}
			if batch == nil {
				b, err := src.Block(ctx, h)
				if err != nil {
					fetchErr = err
					return
				}
				batch = []chain.Block{b}
			}
			for _, b := range batch {
				if b.Header.Number != h {
					fetchErr = fmt.Errorf("importer: fetched height %d, want %d", b.Header.Number, h)
					return
				}
				// Window-internal linkage precheck: a block that does not
				// extend its predecessor makes every later fetch wasted
				// work. Enqueue it (the commit stage owns the canonical
				// bad-parent verdict against the live head) and stop
				// prefetching past it.
				linked := !havePrev || b.Header.ParentHash == prev.Header.Hash()
				j := &job{block: b, done: make(chan struct{})}
				select {
				case ordered <- j:
				case <-ctx.Done():
					fetchErr = context.Cause(pctx)
					return
				}
				select {
				case jobs <- j:
				case <-ctx.Done():
					fetchErr = context.Cause(pctx)
					return
				}
				if !linked {
					return
				}
				prev, havePrev = b, true
				h++
			}
		}
	}()

	// Phase A pool: stateless validation, any order, any parallelism —
	// "the validator is not required to match the miner's level of
	// parallelism" (§5).
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			for j := range jobs {
				j.pre, j.preErr = validator.Precheck(j.block)
				close(j.done)
			}
		}()
	}

	// Commit stage: strictly sequential in height order. Waiting on each
	// job's done channel in queue order is the deterministic reducer —
	// the first error is elected by height, not completion order.
	for j := range ordered {
		select {
		case <-j.done:
		case <-pctx.Done():
			return imported, context.Cause(pctx)
		}
		ierr := t.ImportPrechecked(j.block, j.pre, j.preErr)
		switch {
		case ierr == nil:
			imported++
		case errors.Is(ierr, node.ErrAlreadyKnown):
			// Idempotent, like the serial loop.
		default:
			cancel()
			return imported, &BlockError{Height: j.block.Header.Number, Err: ierr}
		}
	}
	return imported, fetchErr
}
