package importer_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/cluster"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/importer"
	"contractstm/internal/node"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/validator"
	"contractstm/internal/workload"
)

// fixtureParams is the shared workload shape: enough conflict that mined
// blocks carry happens-before edges (the raced-schedule fixture strips
// them) and every follower world is identical (same seed).
func fixtureParams(txs int) workload.Params {
	return workload.Params{
		Kind:            workload.KindToken,
		Transactions:    txs,
		ConflictPercent: 50,
		Seed:            11,
	}
}

// newNode builds a node on a fresh-but-identical genesis world. Every
// node in a test shares the deterministic sim runner, so serial and
// staged validation of the same bad block produce byte-identical errors.
func newNode(t *testing.T, kind engine.Kind, txs int, mode node.ImportMode) (*node.Node, *workload.Workload) {
	t.Helper()
	wl, err := workload.Generate(fixtureParams(txs))
	if err != nil {
		t.Fatalf("workload.Generate: %v", err)
	}
	n, err := node.New(node.Config{
		World: wl.World, Workers: 3, Runner: runtime.NewSimRunner(),
		Engine: kind, ImportMode: mode,
	})
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	return n, wl
}

// mineChain mines blocks×blockSize transactions into `blocks` blocks on a
// fresh miner and returns them (blocks[0] is height 1).
func mineChain(t *testing.T, kind engine.Kind, blocks, blockSize int) []chain.Block {
	t.Helper()
	miner, wl := newNode(t, kind, blocks*blockSize, node.ImportOff)
	miner.SubmitAll(wl.Calls)
	out := make([]chain.Block, 0, blocks)
	for i := 0; i < blocks; i++ {
		b, err := miner.MineOne(blockSize)
		if err != nil {
			t.Fatalf("mine block %d: %v", i+1, err)
		}
		out = append(out, b)
	}
	return out
}

// sliceSource serves a pre-built chain to the pipeline. noRange simulates
// an old peer without the range endpoint; the counters prove which fetch
// path ran (the prefetcher is a single goroutine, so plain ints are safe).
type sliceSource struct {
	blocks      []chain.Block
	noRange     bool
	rangeCalls  int
	singleCalls int
}

func (s *sliceSource) Block(_ context.Context, h uint64) (chain.Block, error) {
	s.singleCalls++
	if h == 0 || h > uint64(len(s.blocks)) {
		return chain.Block{}, fmt.Errorf("source: no block at height %d", h)
	}
	return s.blocks[h-1], nil
}

func (s *sliceSource) Blocks(_ context.Context, from uint64, count int) ([]chain.Block, error) {
	s.rangeCalls++
	if s.noRange {
		return nil, errors.New("source: range unsupported")
	}
	if from == 0 || from > uint64(len(s.blocks)) {
		return nil, fmt.Errorf("source: no block at height %d", from)
	}
	end := from - 1 + uint64(count)
	if end > uint64(len(s.blocks)) {
		end = uint64(len(s.blocks))
	}
	return s.blocks[from-1 : end], nil
}

// serialImport is the reference path: AcceptBlock one block at a time.
// It returns the import count and the first error with its height.
func serialImport(n *node.Node, blocks []chain.Block) (imported int, failHeight uint64, err error) {
	for _, b := range blocks {
		if aerr := n.AcceptBlock(b); aerr != nil {
			if errors.Is(aerr, node.ErrAlreadyKnown) {
				continue
			}
			return imported, b.Header.Number, aerr
		}
		imported++
	}
	return imported, 0, nil
}

// TestStagedMatchesSerialClean: on a clean chain, the staged pipeline
// (mode on) imports the same blocks to the same head as the serial path,
// for every engine, over both the range-fetch and the single-block
// fallback path.
func TestStagedMatchesSerialClean(t *testing.T) {
	const blocks, blockSize = 8, 16
	for _, kind := range engine.Kinds() {
		for _, noRange := range []bool{false, true} {
			name := kind.String()
			if noRange {
				name += "/no-range"
			}
			t.Run(name, func(t *testing.T) {
				chainBlocks := mineChain(t, kind, blocks, blockSize)

				serial, _ := newNode(t, kind, blocks*blockSize, node.ImportOff)
				sImported, _, sErr := serialImport(serial, chainBlocks)
				if sErr != nil || sImported != blocks {
					t.Fatalf("serial import = %d, %v", sImported, sErr)
				}

				staged, _ := newNode(t, kind, blocks*blockSize, node.ImportOn)
				src := &sliceSource{blocks: chainBlocks, noRange: noRange}
				pImported, pErr := importer.Run(context.Background(), staged, src, 1, uint64(blocks), importer.Config{Workers: 4})
				if pErr != nil || pImported != blocks {
					t.Fatalf("staged import = %d, %v", pImported, pErr)
				}
				if noRange && src.singleCalls < blocks {
					t.Fatalf("fallback path made %d single fetches, want %d", src.singleCalls, blocks)
				}
				if !noRange && src.singleCalls != 0 {
					t.Fatalf("range path made %d single fetches, want 0", src.singleCalls)
				}

				sh, ph := serial.Head().Header, staged.Head().Header
				if sh.Hash() != ph.Hash() || sh.StateRoot != ph.StateRoot {
					t.Fatalf("heads diverged: serial %s, staged %s", sh.Hash().Short(), ph.Hash().Short())
				}
			})
		}
	}
}

// TestAdversarialParity: for each engine and each adversarial fixture,
// the staged pipeline rejects at the same height with a byte-identical
// error to the serial path, and both followers stop on the same head.
func TestAdversarialParity(t *testing.T) {
	const blocks, blockSize, badIdx = 8, 16, 3
	fixtures := []struct {
		name  string
		apply func(t *testing.T, b chain.Block) chain.Block
	}{
		{"tampered-commitment", func(t *testing.T, b chain.Block) chain.Block {
			forged := b
			forged.Calls = append([]contract.Call(nil), b.Calls...)
			forged.Calls[0].Value++
			return forged
		}},
		{"raced-schedule", func(t *testing.T, b chain.Block) chain.Block {
			if len(b.Schedule.Edges) == 0 {
				t.Fatal("fixture block has no happens-before edges; raise conflict")
			}
			forged := b
			forged.Schedule.Edges = nil
			forged.Header.ScheduleHash = chain.ScheduleHashOf(forged.Schedule, forged.Profiles)
			return forged
		}},
		{"wrong-parent", func(t *testing.T, b chain.Block) chain.Block {
			forged := b
			forged.Header.ParentHash = types.HashString("adversarial parent")
			return forged
		}},
	}
	for _, kind := range engine.Kinds() {
		for _, fx := range fixtures {
			t.Run(kind.String()+"/"+fx.name, func(t *testing.T) {
				chainBlocks := mineChain(t, kind, blocks, blockSize)
				forged := append([]chain.Block(nil), chainBlocks...)
				forged[badIdx] = fx.apply(t, chainBlocks[badIdx])

				serial, _ := newNode(t, kind, blocks*blockSize, node.ImportOff)
				sImported, sHeight, sErr := serialImport(serial, forged)
				if sErr == nil {
					t.Fatal("serial path accepted the forged block")
				}
				if sImported != badIdx || sHeight != uint64(badIdx+1) {
					t.Fatalf("serial failed at height %d after %d imports, want %d after %d",
						sHeight, sImported, badIdx+1, badIdx)
				}

				staged, _ := newNode(t, kind, blocks*blockSize, node.ImportOn)
				src := &sliceSource{blocks: forged}
				pImported, pErr := importer.Run(context.Background(), staged, src, 1, uint64(blocks), importer.Config{Workers: 4})
				var be *importer.BlockError
				if !errors.As(pErr, &be) {
					t.Fatalf("staged error = %v, want *importer.BlockError", pErr)
				}
				if pImported != badIdx || be.Height != uint64(badIdx+1) {
					t.Fatalf("staged failed at height %d after %d imports, want %d after %d",
						be.Height, pImported, badIdx+1, badIdx)
				}
				if got, want := be.Err.Error(), sErr.Error(); got != want {
					t.Fatalf("error parity broken:\nstaged: %s\nserial: %s", got, want)
				}
				sh, ph := serial.Head().Header, staged.Head().Header
				if sh.Hash() != ph.Hash() {
					t.Fatalf("heads diverged after rejection: serial %s, staged %s",
						sh.Hash().Short(), ph.Hash().Short())
				}
			})
		}
	}
}

// TestShadowModeAuthoritativeAndCounting: in shadow mode the serial
// recomputation is authoritative — a bogus staged verdict is outvoted and
// counted, not obeyed — while in mode on the staged verdict is trusted
// and rejects the import.
func TestShadowModeAuthoritativeAndCounting(t *testing.T) {
	const blocks, blockSize = 2, 16
	chainBlocks := mineChain(t, engine.KindSpeculative, blocks, blockSize)

	shadow, _ := newNode(t, engine.KindSpeculative, blocks*blockSize, node.ImportShadow)
	bogus := errors.New("staged pipeline claims rejection")
	if err := shadow.ImportPrechecked(chainBlocks[0], validator.Prechecked{}, bogus); err != nil {
		t.Fatalf("shadow import with bogus staged verdict: %v (serial recomputation must win)", err)
	}
	if got := shadow.ImportDivergences(); got != 1 {
		t.Fatalf("divergences = %d, want 1", got)
	}
	// A matching verdict does not count as a divergence.
	pre, preErr := validator.Precheck(chainBlocks[1])
	if err := shadow.ImportPrechecked(chainBlocks[1], pre, preErr); err != nil {
		t.Fatalf("shadow import: %v", err)
	}
	if got := shadow.ImportDivergences(); got != 1 {
		t.Fatalf("divergences = %d after clean import, want 1", got)
	}
	if st := shadow.CurrentStatus(); st.ImportMode != "shadow" || st.ImportDivergences != 1 {
		t.Fatalf("status = mode %q divergences %d, want shadow/1", st.ImportMode, st.ImportDivergences)
	}

	trusting, _ := newNode(t, engine.KindSpeculative, blocks*blockSize, node.ImportOn)
	err := trusting.ImportPrechecked(chainBlocks[0], validator.Prechecked{}, bogus)
	if err == nil || err.Error() != "node: "+bogus.Error() {
		t.Fatalf("mode on must trust the staged verdict, got %v", err)
	}
	if h := trusting.Head().Header.Number; h != 0 {
		t.Fatalf("rejected import advanced head to %d", h)
	}
}

// TestShadowSoakOverHTTP is the promotion-gate soak: a follower in shadow
// mode catches up a real HTTP peer through the staged pipeline (range
// endpoint included) and must converge with zero verdict divergences.
// The CI import job runs it under -race.
func TestShadowSoakOverHTTP(t *testing.T) {
	const blocks, blockSize = 24, 16
	worlds, calls, err := cluster.GenerateWorlds(fixtureParams(blocks*blockSize), 2)
	if err != nil {
		t.Fatalf("GenerateWorlds: %v", err)
	}
	cl, err := cluster.New(cluster.Config{
		Worlds: worlds, Engine: engine.KindOCC, Workers: 3,
		ImportMode: node.ImportShadow,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(cl.Close)

	miner := cl.Node(0)
	miner.SubmitAll(calls)
	for i := 0; i < blocks; i++ {
		if _, err := miner.MineOne(blockSize); err != nil {
			t.Fatalf("mine block %d: %v", i+1, err)
		}
	}

	follower := cl.Node(1)
	imported, err := cluster.SyncWith(context.Background(), follower, cl.Peer(0), importer.Config{Workers: 4})
	if err != nil {
		t.Fatalf("SyncWith: %v", err)
	}
	if imported != blocks {
		t.Fatalf("imported = %d, want %d", imported, blocks)
	}
	if !cl.Converged() {
		t.Fatalf("heads diverged: %+v", cl.Heads())
	}
	if d := follower.ImportDivergences(); d != 0 {
		t.Fatalf("shadow soak saw %d verdict divergences, want 0", d)
	}
}
