package workload_test

// Every generated workload — the paper's four benchmarks plus the
// extension workloads — must execute under every execution engine: the
// scenario axis and the engine axis are fully crossed.

import (
	"fmt"
	"testing"

	"contractstm/internal/engine"
	"contractstm/internal/runtime"
	"contractstm/internal/workload"
)

func TestEveryWorkloadRunsUnderEveryEngine(t *testing.T) {
	kinds := append(workload.Kinds(), workload.KindToken, workload.KindDelegation)
	for _, kind := range kinds {
		for _, ek := range engine.Kinds() {
			kind, ek := kind, ek
			t.Run(fmt.Sprintf("%v/%v", kind, ek), func(t *testing.T) {
				wl, err := workload.Generate(workload.Params{
					Kind: kind, Transactions: 30, ConflictPercent: 25, Seed: 21,
				})
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				res, err := engine.MustNew(ek).ExecuteBlock(runtime.NewSimRunner(), wl.World, wl.Calls,
					engine.Options{Workers: 3})
				if err != nil {
					t.Fatalf("ExecuteBlock: %v", err)
				}
				if len(res.Receipts) != len(wl.Calls) {
					t.Fatalf("%d receipts for %d calls", len(res.Receipts), len(wl.Calls))
				}
				if len(res.Schedule.Order) != len(wl.Calls) {
					t.Fatalf("schedule order has %d entries for %d calls", len(res.Schedule.Order), len(wl.Calls))
				}
			})
		}
	}
}
