// Package workload generates the paper's benchmark blocks (§7.1): Ballot,
// SimpleAuction, EtherDoc and Mixed workloads parameterized by block size
// (number of transactions) and data-conflict percentage — "the percentage
// of transactions that contend with at least one other transaction for
// shared data".
//
// All generation is deterministic in the seed, so the same parameters
// always produce identical worlds and call lists; benchmarks restore the
// post-setup snapshot between runs instead of rebuilding.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"contractstm/internal/contract"
	"contractstm/internal/contracts"
	"contractstm/internal/gas"
	"contractstm/internal/storage"
	"contractstm/internal/types"
)

// Kind selects a benchmark workload.
type Kind int

const (
	// KindBallot is the voting workload: registered voters vote for one
	// proposal; conflict = voters attempting to double-vote.
	KindBallot Kind = iota + 1
	// KindAuction is the auction workload: outbid bidders withdraw;
	// conflict = bidPlusOne transactions all touching the highest bid.
	KindAuction
	// KindEtherDoc is the document-registry workload: existence checks;
	// conflict = ownership transfers all targeting the contract creator.
	KindEtherDoc
	// KindMixed combines the three in equal proportions.
	KindMixed
	// KindToken is an extension workload (not in the paper): token
	// transfers between disjoint pairs; conflict = transfers debiting one
	// hot account.
	KindToken
	// KindDelegation is an extension workload: Ballot delegations forming
	// chains. Each delegation walks its chain (reading every intermediate
	// voter record) before writing, so conflicting transactions overlap on
	// multi-key read sets — a sharper test of the lock manager than the
	// paper's single-key conflicts. Conflict% = fraction of delegations
	// targeting one hub voter.
	KindDelegation
	// KindHotCold is an extension workload: Token transfers with
	// Zipf-skewed key access. Conflict% of the transfers move value
	// *between* accounts of a small hot set, endpoints drawn under a Zipf
	// distribution — opposing transfers acquire their balance locks in
	// opposite orders (exclusive debit, then credit), so hot cross-traffic
	// deadlocks and retries under speculative mining. The cold majority
	// uses disjoint senders and recipients. The skew is what the lock-hint
	// selection policy (txpool.PolicyLockHint) is built for: the hot
	// accounts are identifiable from the calls alone (sender or argument),
	// so a feedback-informed miner spreads them across blocks while the
	// cold traffic fills every block to capacity.
	KindHotCold
	// KindFlooder is an adversarial extension workload: every transaction
	// is a token transfer from ONE sender to distinct recipients — the
	// shape of a spam flood against the ingest path. Under admission
	// control (internal/mempool) the per-sender slot cap and rate limit
	// throttle the whole workload to one sender's allowance; under
	// execution every call contends on the flooder's balance, so it also
	// degenerates the engines to serial. ConflictPercent is ignored — the
	// single sender IS the conflict.
	KindFlooder
)

// String implements fmt.Stringer; the names match the paper's benchmarks.
func (k Kind) String() string {
	switch k {
	case KindBallot:
		return "Ballot"
	case KindAuction:
		return "SimpleAuction"
	case KindEtherDoc:
		return "EtherDoc"
	case KindMixed:
		return "Mixed"
	case KindToken:
		return "Token"
	case KindDelegation:
		return "Delegation"
	case KindHotCold:
		return "HotCold"
	case KindFlooder:
		return "Flooder"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists the paper's four benchmarks in presentation order.
func Kinds() []Kind {
	return []Kind{KindBallot, KindAuction, KindEtherDoc, KindMixed}
}

// AllKinds lists every workload, the paper's four plus the extensions.
func AllKinds() []Kind {
	return append(Kinds(), KindToken, KindDelegation, KindHotCold, KindFlooder)
}

// ParseKind parses a workload name as commands accept it: the String()
// form ("SimpleAuction") or the short flag form ("auction"), case-
// insensitive. The one place the name→kind mapping lives, so a new
// workload is wired into every command at once.
func ParseKind(s string) (Kind, error) {
	lower := strings.ToLower(s)
	if lower == "auction" {
		return KindAuction, nil
	}
	for _, k := range AllKinds() {
		if strings.ToLower(k.String()) == lower {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown kind %q", s)
}

// Params parameterizes one generated block.
type Params struct {
	Kind Kind
	// Transactions is the block size (the paper sweeps 10..400).
	Transactions int
	// ConflictPercent is the paper's data-conflict percentage (0..100).
	ConflictPercent int
	// Seed makes generation deterministic.
	Seed int64
	// GasLimit is the per-transaction gas limit (default 1,000,000).
	GasLimit gas.Gas
}

func (p Params) withDefaults() Params {
	if p.GasLimit == 0 {
		p.GasLimit = 1_000_000
	}
	return p
}

// Workload is a generated world plus the block's calls and a post-setup
// snapshot for cheap resets between benchmark runs.
type Workload struct {
	Params Params
	World  *contract.World
	Calls  []contract.Call
	snap   storage.Snapshot
}

// Reset rewinds the world to its freshly-generated state.
func (w *Workload) Reset() { w.World.Restore(w.snap) }

// Generate builds the world and block for p.
func Generate(p Params) (*Workload, error) {
	p = p.withDefaults()
	if p.Transactions <= 0 {
		return nil, fmt.Errorf("workload: %d transactions", p.Transactions)
	}
	if p.ConflictPercent < 0 || p.ConflictPercent > 100 {
		return nil, fmt.Errorf("workload: conflict percent %d out of range", p.ConflictPercent)
	}
	world, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed*1000003 + int64(p.Kind)))

	var calls []contract.Call
	switch p.Kind {
	case KindBallot:
		calls, err = genBallot(world, p, 0, p.Transactions, p.ConflictPercent)
	case KindAuction:
		calls, err = genAuction(world, p, 0, p.Transactions, p.ConflictPercent)
	case KindEtherDoc:
		calls, err = genEtherDoc(world, p, 0, p.Transactions, p.ConflictPercent)
	case KindToken:
		calls, err = genToken(world, p, 0, p.Transactions, p.ConflictPercent)
	case KindDelegation:
		calls, err = genDelegation(world, p, 0, p.Transactions, p.ConflictPercent)
	case KindHotCold:
		calls, err = genHotCold(world, p, 0, p.Transactions, p.ConflictPercent)
	case KindFlooder:
		calls, err = genFlooder(world, p, 0, p.Transactions)
	case KindMixed:
		calls, err = genMixed(world, p)
	default:
		return nil, fmt.Errorf("workload: unknown kind %v", p.Kind)
	}
	if err != nil {
		return nil, err
	}
	// Deterministic shuffle so conflicting transactions are not adjacent
	// by construction.
	rng.Shuffle(len(calls), func(i, j int) { calls[i], calls[j] = calls[j], calls[i] })
	return &Workload{Params: p, World: world, Calls: calls, snap: world.Snapshot()}, nil
}

// conflictSplit partitions n transactions into contending and
// non-contending counts. pairwise workloads round the contending count to
// an even number.
func conflictSplit(n, percent int, pairwise bool) (contending, plain int) {
	c := n * percent / 100
	if pairwise {
		c -= c % 2
	}
	// A single "contending" transaction cannot contend with anything.
	if c == 1 {
		c = 0
	}
	return c, n - c
}

// Deterministic address derivation. Lanes keep Mixed's sub-workloads (and
// their actors and contracts) disjoint.

func contractAddr(kind Kind, lane int) types.Address {
	return types.AddressFromUint64(0xC0DE0000 + uint64(kind)<<8 + uint64(lane))
}

func actorAddr(seed int64, lane, i int) types.Address {
	return types.AddressFromUint64(uint64(seed)<<24 ^ (0xAC000000 + uint64(lane)<<20 + uint64(i)))
}

// genBallot builds the Ballot workload: every transaction votes for the
// same proposal (vote counts commute via increment mode); conflict% of the
// transactions form double-vote pairs contending on one voter's record.
func genBallot(world *contract.World, p Params, lane, n, conflictPct int) ([]contract.Call, error) {
	chair := actorAddr(p.Seed, lane, 999_999)
	addr := contractAddr(KindBallot, lane)
	ballot, err := contracts.NewBallot(world, addr, chair, []string{"alpha", "beta", "gamma"})
	if err != nil {
		return nil, err
	}
	contending, plain := conflictSplit(n, conflictPct, true)
	pairs := contending / 2

	calls := make([]contract.Call, 0, n)
	nextVoter := 0
	newVoter := func() (types.Address, error) {
		a := actorAddr(p.Seed, lane, nextVoter)
		nextVoter++
		return a, ballot.SeedVoter(world, a)
	}
	vote := func(sender types.Address) contract.Call {
		return contract.Call{Sender: sender, Contract: addr, Function: "vote",
			Args: []any{uint64(0)}, GasLimit: p.GasLimit}
	}
	for i := 0; i < plain; i++ {
		a, err := newVoter()
		if err != nil {
			return nil, err
		}
		calls = append(calls, vote(a))
	}
	for i := 0; i < pairs; i++ {
		a, err := newVoter()
		if err != nil {
			return nil, err
		}
		calls = append(calls, vote(a), vote(a)) // the second contends and reverts
	}
	return calls, nil
}

// genAuction builds the SimpleAuction workload: the contract is seeded
// with increasing bids so that `plain` bidders hold pending returns; the
// block withdraws them. Conflict transactions are bidPlusOne calls, each
// reading and raising the shared highest bid.
func genAuction(world *contract.World, p Params, lane, n, conflictPct int) ([]contract.Call, error) {
	beneficiary := actorAddr(p.Seed, lane, 999_998)
	addr := contractAddr(KindAuction, lane)
	auction, err := contracts.NewSimpleAuction(world, addr, beneficiary)
	if err != nil {
		return nil, err
	}
	contending, plain := conflictSplit(n, conflictPct, false)

	// Seed plain+1 increasing bids: the first `plain` bidders are outbid
	// and hold pending returns; fund the auction so withdrawals pay out.
	if err := world.Mint(contracts.Setup(world), addr, types.Amount(uint64(n+1)*uint64(n+2))); err != nil {
		return nil, err
	}
	for i := 0; i <= plain; i++ {
		bidder := actorAddr(p.Seed, lane, i)
		if err := auction.SeedBid(world, bidder, uint64(i+1)); err != nil {
			return nil, err
		}
	}

	calls := make([]contract.Call, 0, n)
	for i := 0; i < plain; i++ {
		calls = append(calls, contract.Call{
			Sender: actorAddr(p.Seed, lane, i), Contract: addr,
			Function: "withdraw", GasLimit: p.GasLimit,
		})
	}
	for i := 0; i < contending; i++ {
		calls = append(calls, contract.Call{
			Sender: actorAddr(p.Seed, lane, 500_000+i), Contract: addr,
			Function: "bidPlusOne", GasLimit: p.GasLimit,
		})
	}
	return calls, nil
}

// genEtherDoc builds the EtherDoc workload: the registry is seeded with one
// document per transaction; plain transactions check existence, contending
// transactions transfer ownership to the contract creator (all contending
// on the creator's document count).
func genEtherDoc(world *contract.World, p Params, lane, n, conflictPct int) ([]contract.Call, error) {
	addr := contractAddr(KindEtherDoc, lane)
	creator := actorAddr(p.Seed, lane, 999_997)
	etherdoc, err := contracts.NewEtherDoc(world, addr)
	if err != nil {
		return nil, err
	}
	contending, plain := conflictSplit(n, conflictPct, false)

	docHash := func(i int) types.Hash {
		return types.HashConcat(types.Uint64Bytes(uint64(p.Seed)), types.Uint64Bytes(uint64(lane)), types.Uint64Bytes(uint64(i)))
	}
	calls := make([]contract.Call, 0, n)
	for i := 0; i < plain; i++ {
		owner := actorAddr(p.Seed, lane, i)
		if err := etherdoc.SeedDocument(world, docHash(i), owner); err != nil {
			return nil, err
		}
		calls = append(calls, contract.Call{
			Sender: owner, Contract: addr,
			Function: "documentExists", Args: []any{docHash(i)}, GasLimit: p.GasLimit,
		})
	}
	for i := 0; i < contending; i++ {
		owner := actorAddr(p.Seed, lane, 500_000+i)
		if err := etherdoc.SeedDocument(world, docHash(500_000+i), owner); err != nil {
			return nil, err
		}
		calls = append(calls, contract.Call{
			Sender: owner, Contract: addr,
			Function: "transferOwnership", Args: []any{docHash(500_000 + i), creator}, GasLimit: p.GasLimit,
		})
	}
	return calls, nil
}

// genToken builds the extension Token workload: plain transactions move
// tokens between disjoint accounts; contending transactions all debit one
// hot account (exclusive on its balance).
func genToken(world *contract.World, p Params, lane, n, conflictPct int) ([]contract.Call, error) {
	addr := contractAddr(KindToken, lane)
	issuer := actorAddr(p.Seed, lane, 999_996)
	hot := actorAddr(p.Seed, lane, 999_995)
	token, err := contracts.NewToken(world, addr, issuer, 1_000_000_000)
	if err != nil {
		return nil, err
	}
	contending, plain := conflictSplit(n, conflictPct, false)

	// Genesis funding: every plain sender gets 1000; the hot account gets
	// enough for all contending debits.
	for i := 0; i < plain; i++ {
		if err := token.SeedBalance(world, actorAddr(p.Seed, lane, i), 1000); err != nil {
			return nil, err
		}
	}
	if contending > 0 {
		if err := token.SeedBalance(world, hot, uint64(contending)*10); err != nil {
			return nil, err
		}
	}

	calls := make([]contract.Call, 0, n)
	for i := 0; i < plain; i++ {
		from := actorAddr(p.Seed, lane, i)
		to := actorAddr(p.Seed, lane, 700_000+i)
		calls = append(calls, contract.Call{
			Sender: from, Contract: addr, Function: "transfer",
			Args: []any{to, uint64(7)}, GasLimit: p.GasLimit,
		})
	}
	for i := 0; i < contending; i++ {
		to := actorAddr(p.Seed, lane, 800_000+i)
		calls = append(calls, contract.Call{
			Sender: hot, Contract: addr, Function: "transfer",
			Args: []any{to, uint64(3)}, GasLimit: p.GasLimit,
		})
	}
	return calls, nil
}

// genDelegation builds the Delegation extension workload: every
// transaction is a Ballot delegate() call. Plain transactions delegate to
// a private proxy voter (disjoint two-key read/write sets); contending
// transactions all delegate to one hub voter, whose record every one of
// them reads and writes (weight accumulation).
func genDelegation(world *contract.World, p Params, lane, n, conflictPct int) ([]contract.Call, error) {
	chair := actorAddr(p.Seed, lane, 999_994)
	addr := contractAddr(KindDelegation, lane)
	ballot, err := contracts.NewBallot(world, addr, chair, []string{"alpha", "beta"})
	if err != nil {
		return nil, err
	}
	contending, plain := conflictSplit(n, conflictPct, false)

	hub := actorAddr(p.Seed, lane, 600_000)
	if err := ballot.SeedVoter(world, hub); err != nil {
		return nil, err
	}
	calls := make([]contract.Call, 0, n)
	for i := 0; i < plain; i++ {
		sender := actorAddr(p.Seed, lane, i)
		proxy := actorAddr(p.Seed, lane, 300_000+i)
		if err := ballot.SeedVoter(world, sender); err != nil {
			return nil, err
		}
		if err := ballot.SeedVoter(world, proxy); err != nil {
			return nil, err
		}
		calls = append(calls, contract.Call{
			Sender: sender, Contract: addr, Function: "delegate",
			Args: []any{proxy}, GasLimit: p.GasLimit,
		})
	}
	for i := 0; i < contending; i++ {
		sender := actorAddr(p.Seed, lane, 400_000+i)
		if err := ballot.SeedVoter(world, sender); err != nil {
			return nil, err
		}
		calls = append(calls, contract.Call{
			Sender: sender, Contract: addr, Function: "delegate",
			Args: []any{hub}, GasLimit: p.GasLimit,
		})
	}
	return calls, nil
}

// hotSetSize is KindHotCold's hot-account pool: small enough that a Zipf
// draw repeats senders within one block at realistic block sizes.
const hotSetSize = 4

// genHotCold builds the HotCold extension workload: cold transactions
// move tokens between disjoint accounts; hot transactions (conflict% of
// the block) move tokens between two distinct hot-set accounts, both
// endpoints drawn Zipf-skewed — so opposing hot transfers form lock
// cycles (each holds its sender's exclusive balance lock and wants the
// other's) and abort-and-retry under speculative mining. Generation is
// deterministic in the seed, Zipf draws included.
func genHotCold(world *contract.World, p Params, lane, n, conflictPct int) ([]contract.Call, error) {
	addr := contractAddr(KindHotCold, lane)
	issuer := actorAddr(p.Seed, lane, 999_993)
	token, err := contracts.NewToken(world, addr, issuer, 1_000_000_000)
	if err != nil {
		return nil, err
	}
	hot, cold := conflictSplit(n, conflictPct, false)

	rng := rand.New(rand.NewSource(p.Seed*7777777 + int64(lane)*31 + int64(KindHotCold)))
	// s=1.3, v=1 over [0, hotSetSize): a classic skew — the hottest
	// account takes roughly half the hot draws.
	zipf := rand.NewZipf(rng, 1.3, 1, hotSetSize-1)

	hotAccounts := make([]types.Address, hotSetSize)
	for i := range hotAccounts {
		hotAccounts[i] = actorAddr(p.Seed, lane, 900_000+i)
		if hot > 0 {
			if err := token.SeedBalance(world, hotAccounts[i], uint64(hot)*10); err != nil {
				return nil, err
			}
		}
	}

	calls := make([]contract.Call, 0, n)
	for i := 0; i < cold; i++ {
		from := actorAddr(p.Seed, lane, i)
		if err := token.SeedBalance(world, from, 1000); err != nil {
			return nil, err
		}
		to := actorAddr(p.Seed, lane, 700_000+i)
		calls = append(calls, contract.Call{
			Sender: from, Contract: addr, Function: "transfer",
			Args: []any{to, uint64(7)}, GasLimit: p.GasLimit,
		})
	}
	for i := 0; i < hot; i++ {
		from := int(zipf.Uint64())
		// A distinct hot counterparty: step past the sender so every hot
		// transfer crosses two hot balances.
		to := (from + 1 + int(zipf.Uint64())) % hotSetSize
		if to == from {
			to = (to + 1) % hotSetSize
		}
		calls = append(calls, contract.Call{
			Sender: hotAccounts[from], Contract: addr, Function: "transfer",
			Args: []any{hotAccounts[to], uint64(3)}, GasLimit: p.GasLimit,
		})
	}
	return calls, nil
}

// genFlooder builds the Flooder extension workload: n token transfers,
// all from one funded flooder account to distinct recipients. Every call
// is unique (distinct recipient → distinct content-derived TxID), so the
// flood defeats naive content dedup; only per-sender admission limits
// contain it.
func genFlooder(world *contract.World, p Params, lane, n int) ([]contract.Call, error) {
	addr := contractAddr(KindFlooder, lane)
	issuer := actorAddr(p.Seed, lane, 999_992)
	flooder := actorAddr(p.Seed, lane, 999_991)
	token, err := contracts.NewToken(world, addr, issuer, 1_000_000_000)
	if err != nil {
		return nil, err
	}
	if err := token.SeedBalance(world, flooder, uint64(n)*10); err != nil {
		return nil, err
	}
	calls := make([]contract.Call, 0, n)
	for i := 0; i < n; i++ {
		to := actorAddr(p.Seed, lane, 700_000+i)
		calls = append(calls, contract.Call{
			Sender: flooder, Contract: addr, Function: "transfer",
			Args: []any{to, uint64(3)}, GasLimit: p.GasLimit,
		})
	}
	return calls, nil
}

// genMixed builds the Mixed workload: Ballot, SimpleAuction and EtherDoc
// transactions in equal proportions, each lane's conflict added the same
// way as in its own benchmark (§7.1: "combines transactions on the above
// smart contracts in equal proportions").
func genMixed(world *contract.World, p Params) ([]contract.Call, error) {
	third := p.Transactions / 3
	counts := []int{third, third, p.Transactions - 2*third}
	gens := []func(*contract.World, Params, int, int, int) ([]contract.Call, error){
		genBallot, genAuction, genEtherDoc,
	}
	var calls []contract.Call
	for lane, gen := range gens {
		if counts[lane] == 0 {
			continue
		}
		cs, err := gen(world, p, lane, counts[lane], p.ConflictPercent)
		if err != nil {
			return nil, err
		}
		calls = append(calls, cs...)
	}
	return calls, nil
}
