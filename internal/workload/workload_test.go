package workload

import (
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
)

func TestGenerateSizes(t *testing.T) {
	for _, kind := range append(Kinds(), KindToken) {
		for _, n := range []int{1, 10, 50} {
			w, err := Generate(Params{Kind: kind, Transactions: n, ConflictPercent: 15, Seed: 1})
			if err != nil {
				t.Fatalf("%v n=%d: %v", kind, n, err)
			}
			if len(w.Calls) != n {
				t.Fatalf("%v n=%d: generated %d calls", kind, n, len(w.Calls))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		p := Params{Kind: kind, Transactions: 30, ConflictPercent: 40, Seed: 7}
		w1, err := Generate(p)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		w2, err := Generate(p)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		r1, _ := w1.World.StateRoot()
		r2, _ := w2.World.StateRoot()
		if r1 != r2 {
			t.Fatalf("%v: initial state roots differ", kind)
		}
		if chain.TxRootOf(w1.Calls) != chain.TxRootOf(w2.Calls) {
			t.Fatalf("%v: call lists differ", kind)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p1 := Params{Kind: KindBallot, Transactions: 30, ConflictPercent: 15, Seed: 1}
	p2 := p1
	p2.Seed = 2
	w1, _ := Generate(p1)
	w2, _ := Generate(p2)
	if chain.TxRootOf(w1.Calls) == chain.TxRootOf(w2.Calls) {
		t.Fatal("different seeds produced identical call lists")
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	if _, err := Generate(Params{Kind: KindBallot, Transactions: 0}); err == nil {
		t.Fatal("0 transactions accepted")
	}
	if _, err := Generate(Params{Kind: KindBallot, Transactions: 10, ConflictPercent: 101}); err == nil {
		t.Fatal("conflict 101 accepted")
	}
	if _, err := Generate(Params{Kind: Kind(99), Transactions: 10}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	w, err := Generate(Params{Kind: KindBallot, Transactions: 20, ConflictPercent: 0, Seed: 3})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	before, _ := w.World.StateRoot()
	if _, err := miner.ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, nil); err != nil {
		t.Fatalf("serial: %v", err)
	}
	after, _ := w.World.StateRoot()
	if before == after {
		t.Fatal("execution did not change state (vacuous test)")
	}
	w.Reset()
	restored, _ := w.World.StateRoot()
	if restored != before {
		t.Fatal("Reset did not restore the initial state")
	}
}

// countReverted executes the workload serially and counts reverted txs.
func countReverted(t *testing.T, w *Workload) int {
	t.Helper()
	res, err := miner.ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	n := 0
	for _, r := range res.Receipts {
		if r.Reverted {
			n++
		}
	}
	w.Reset()
	return n
}

func TestBallotConflictShapes(t *testing.T) {
	// 0% conflict: no double votes, nothing reverts.
	w, err := Generate(Params{Kind: KindBallot, Transactions: 40, ConflictPercent: 0, Seed: 5})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if n := countReverted(t, w); n != 0 {
		t.Fatalf("0%% conflict: %d reverts", n)
	}
	// 100% conflict: every pair is a double vote; half the block reverts.
	w, err = Generate(Params{Kind: KindBallot, Transactions: 40, ConflictPercent: 100, Seed: 5})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if n := countReverted(t, w); n != 20 {
		t.Fatalf("100%% conflict: %d reverts, want 20 (second vote of each pair)", n)
	}
}

func TestAuctionWorkloadExecutes(t *testing.T) {
	w, err := Generate(Params{Kind: KindAuction, Transactions: 30, ConflictPercent: 50, Seed: 9})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := miner.ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	// Withdraws commit; bidPlusOne commits (each strictly raises the bid).
	for i, r := range res.Receipts {
		if r.Reverted {
			t.Fatalf("tx %d (%s) reverted: %s", i, w.Calls[i].Function, r.Reason)
		}
	}
}

func TestEtherDocWorkloadExecutes(t *testing.T) {
	w, err := Generate(Params{Kind: KindEtherDoc, Transactions: 30, ConflictPercent: 50, Seed: 9})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := miner.ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for i, r := range res.Receipts {
		if r.Reverted {
			t.Fatalf("tx %d (%s) reverted: %s", i, w.Calls[i].Function, r.Reason)
		}
	}
}

func TestTokenWorkloadExecutes(t *testing.T) {
	w, err := Generate(Params{Kind: KindToken, Transactions: 30, ConflictPercent: 30, Seed: 9})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := miner.ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for i, r := range res.Receipts {
		if r.Reverted {
			t.Fatalf("tx %d reverted: %s", i, r.Reason)
		}
	}
}

func TestMixedCombinesContracts(t *testing.T) {
	w, err := Generate(Params{Kind: KindMixed, Transactions: 31, ConflictPercent: 15, Seed: 2})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(w.Calls) != 31 {
		t.Fatalf("generated %d calls", len(w.Calls))
	}
	targets := map[types.Address]bool{}
	for _, c := range w.Calls {
		targets[c.Contract] = true
	}
	if len(targets) != 3 {
		t.Fatalf("mixed block targets %d contracts, want 3", len(targets))
	}
}

func TestConflictSplit(t *testing.T) {
	cases := []struct {
		n, pct   int
		pairwise bool
		wantC    int
	}{
		{100, 0, false, 0},
		{100, 15, false, 15},
		{100, 100, false, 100},
		{100, 15, true, 14}, // rounded to even
		{10, 10, false, 0},  // single contender cannot contend
		{10, 10, true, 0},
	}
	for _, tc := range cases {
		c, p := conflictSplit(tc.n, tc.pct, tc.pairwise)
		if c != tc.wantC || p != tc.n-tc.wantC {
			t.Fatalf("conflictSplit(%d,%d,%v) = (%d,%d), want (%d,%d)",
				tc.n, tc.pct, tc.pairwise, c, p, tc.wantC, tc.n-tc.wantC)
		}
	}
}

func TestDelegationWorkloadExecutes(t *testing.T) {
	w, err := Generate(Params{Kind: KindDelegation, Transactions: 30, ConflictPercent: 40, Seed: 11})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := miner.ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for i, r := range res.Receipts {
		if r.Reverted {
			t.Fatalf("tx %d reverted: %s", i, r.Reason)
		}
	}
}

func TestDelegationWorkloadSerializableUnderMining(t *testing.T) {
	for _, conflict := range []int{0, 50, 100} {
		w, err := Generate(Params{Kind: KindDelegation, Transactions: 30, ConflictPercent: conflict, Seed: 3})
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		res, err := miner.MineParallel(runtime.NewSimRunner(), w.World,
			chain.GenesisHeader(types.HashString("wl")), w.Calls, miner.Config{Workers: 3})
		if err != nil {
			t.Fatalf("conflict=%d mine: %v", conflict, err)
		}
		w.Reset()
		replay, err := miner.ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, res.Block.Schedule.Order)
		if err != nil {
			t.Fatalf("conflict=%d replay: %v", conflict, err)
		}
		if replay.StateRoot != res.Block.Header.StateRoot {
			t.Fatalf("conflict=%d: delegation schedule not serializable", conflict)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range append(Kinds(), KindToken, KindDelegation, Kind(42)) {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

var _ = contract.Call{} // keep the import for helper extensions
