// Package des implements a deterministic discrete-event simulator of a small
// multiprocessor: a set of cooperative threads, each with its own virtual
// clock, scheduled one at a time in virtual-time order.
//
// Why this exists: the paper evaluates wall-clock speedups of a 3-thread pool
// on a 4-core Xeon. This reproduction must run on hosts with any number of
// physical cores (including one), so the benchmark harness executes the
// *identical* miner/validator code on simulated threads whose clocks advance
// by gas-proportional amounts. The simulation is single-threaded and fully
// deterministic: scheduling order is a pure function of (virtual time, thread
// id), so every experiment regenerates bit-identical results.
//
// Model:
//
//   - Each Thread runs on its own goroutine, but the simulator guarantees at
//     most one thread executes at any instant; all others are blocked in the
//     scheduler handshake. Shared state touched only by threads therefore
//     needs no locking in simulated runs (the same code paths remain safe
//     under real OS threads because they use ordinary mutexes).
//   - Advance(d) adds d to the calling thread's clock and yields; the
//     scheduler then resumes the runnable thread with the smallest clock
//     (ties broken by thread id).
//   - Park blocks the calling thread until some other thread calls Unpark on
//     it. Unpark advances the target's clock to the waker's clock if it lags
//     (you cannot be woken before the wake event happens).
//
// The package is intentionally minimal: pools, locks and fork-join layers are
// built on top of it in internal/runtime, internal/stm and internal/forkjoin.
package des

import (
	"errors"
	"fmt"
	"sort"
)

// state of a simulated thread.
type threadState int

const (
	stateRunnable threadState = iota + 1
	stateRunning
	stateParked
	stateDone
)

// ErrAllParked is returned by Run when every live thread is parked: a
// simulated deadlock. The STM layer's own deadlock detection should make
// this unreachable; seeing it indicates a bug in a layer above.
var ErrAllParked = errors.New("des: all live threads are parked (simulated deadlock)")

// Thread is a simulated thread of execution. All methods except Unpark must
// be called from the thread's own body function; Unpark may be called by any
// currently-running simulated thread.
type Thread struct {
	sim   *Simulator
	id    int
	name  string
	clock uint64
	state threadState
	// wakeToken records an Unpark that arrived while the thread was not
	// parked, so the next Park returns immediately (LockSupport semantics).
	wakeToken bool
	// resume is the scheduler -> thread handoff channel.
	resume chan struct{}
	body   func(*Thread)
}

// ID returns the thread's unique id (creation order, starting at 0).
func (t *Thread) ID() int { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Now returns the thread's current virtual clock.
func (t *Thread) Now() uint64 { return t.clock }

// Advance adds d units to the thread's virtual clock and yields to the
// scheduler, allowing lower-clock threads to run first.
func (t *Thread) Advance(d uint64) {
	t.clock += d
	t.state = stateRunnable
	t.yield()
}

// Work advances the clock by d scaled by the simulator's interference
// model: with k concurrently active threads (running or runnable — i.e.
// occupying a simulated core) and interference i per mille, the effective
// cost is d·(1 + i·(k-1)/1000). This models shared-resource contention
// (memory bandwidth, caches) that keeps real multiprocessors below ideal
// speedup; see Simulator.SetInterference. With interference 0 (the
// default) Work is identical to Advance.
func (t *Thread) Work(d uint64) {
	if im := t.sim.interferencePerMille; im > 0 {
		if k := t.sim.activeCount(); k > 1 {
			d += d * uint64(im) * uint64(k-1) / 1000
		}
	}
	t.Advance(d)
}

// Yield cedes the processor without advancing the clock. Other runnable
// threads at the same or earlier virtual time get to run.
func (t *Thread) Yield() {
	t.state = stateRunnable
	t.yield()
}

// Park blocks the calling thread until another thread Unparks it. If an
// Unpark already arrived since the last Park, it returns immediately,
// consuming the token.
func (t *Thread) Park() {
	if t.wakeToken {
		t.wakeToken = false
		return
	}
	t.state = stateParked
	t.yield()
}

// Unpark makes target runnable again (or stores a wake token if it is not
// parked). The target's clock is advanced to the caller's clock if behind:
// a thread cannot observe a wake before the wake happened.
func (t *Thread) Unpark(target *Thread) {
	if target.state == stateParked {
		if target.clock < t.clock {
			target.clock = t.clock
		}
		target.state = stateRunnable
		return
	}
	if target.state == stateDone {
		return
	}
	target.wakeToken = true
	// If the token races ahead of a Park the target will consume it; its
	// clock is already >= ours or will advance naturally before parking.
	if target.clock < t.clock {
		target.clock = t.clock
	}
}

// Spawn creates a new thread from within a running thread. The child starts
// at the parent's current clock.
func (t *Thread) Spawn(name string, body func(*Thread)) *Thread {
	return t.sim.spawn(name, t.clock, body)
}

// yield transfers control back to the scheduler and blocks until resumed.
func (t *Thread) yield() {
	t.sim.back <- struct{}{}
	<-t.resume
}

// Simulator owns a set of simulated threads and runs them to completion in
// deterministic virtual-time order. The zero value is not usable; call New.
type Simulator struct {
	threads []*Thread
	// back is the thread -> scheduler handoff channel (exactly one thread
	// can be running, so one channel suffices).
	back chan struct{}
	// started reports whether Run has begun (spawns then start immediately).
	started bool
	// makespan is the maximum clock observed across threads.
	makespan uint64
	// interferencePerMille scales Work costs by concurrently active
	// threads; see Thread.Work.
	interferencePerMille int
}

// New returns an empty simulator.
func New() *Simulator {
	return &Simulator{back: make(chan struct{})}
}

// Spawn registers a new thread before Run is called. The thread starts at
// virtual time 0.
func (s *Simulator) Spawn(name string, body func(*Thread)) *Thread {
	return s.spawn(name, 0, body)
}

func (s *Simulator) spawn(name string, startClock uint64, body func(*Thread)) *Thread {
	t := &Thread{
		sim:    s,
		id:     len(s.threads),
		name:   name,
		clock:  startClock,
		state:  stateRunnable,
		resume: make(chan struct{}),
		body:   body,
	}
	s.threads = append(s.threads, t)
	go func() {
		<-t.resume
		// The deferred completion signal also fires on runtime.Goexit
		// (e.g. t.FailNow inside a test body), so a vanishing thread fails
		// the test instead of deadlocking the scheduler.
		defer func() {
			t.state = stateDone
			s.back <- struct{}{}
		}()
		t.body(t)
	}()
	return t
}

// Run executes all threads to completion and returns the makespan: the
// maximum virtual clock reached by any thread. It returns ErrAllParked if
// the simulation deadlocks (some threads parked, none runnable).
func (s *Simulator) Run() (uint64, error) {
	if s.started {
		return 0, errors.New("des: Run called twice")
	}
	s.started = true
	for {
		next := s.pickRunnable()
		if next == nil {
			if s.liveCount() > 0 {
				return 0, fmt.Errorf("%w: %s", ErrAllParked, s.parkedNames())
			}
			return s.makespan, nil
		}
		next.state = stateRunning
		next.resume <- struct{}{}
		<-s.back
		if next.clock > s.makespan {
			s.makespan = next.clock
		}
	}
}

// pickRunnable returns the runnable thread with the smallest (clock, id),
// or nil when none is runnable.
func (s *Simulator) pickRunnable() *Thread {
	var best *Thread
	for _, t := range s.threads {
		if t.state != stateRunnable {
			continue
		}
		if best == nil || t.clock < best.clock || (t.clock == best.clock && t.id < best.id) {
			best = t
		}
	}
	return best
}

func (s *Simulator) liveCount() int {
	n := 0
	for _, t := range s.threads {
		if t.state != stateDone {
			n++
		}
	}
	return n
}

func (s *Simulator) parkedNames() string {
	var names []string
	for _, t := range s.threads {
		if t.state == stateParked {
			names = append(names, fmt.Sprintf("%s(id=%d,clock=%d)", t.name, t.id, t.clock))
		}
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Makespan reports the maximum virtual clock observed so far. Valid after
// Run returns.
func (s *Simulator) Makespan() uint64 { return s.makespan }

// SetInterference configures the per-mille cost increase per additional
// concurrently active thread applied by Thread.Work. For example, 150
// means three active threads run each unit of work at 1.30x cost —
// roughly the parallel efficiency the paper's JVM prototype exhibits.
func (s *Simulator) SetInterference(perMille int) {
	if perMille < 0 {
		perMille = 0
	}
	s.interferencePerMille = perMille
}

// activeCount returns how many threads currently occupy a simulated core
// (running or runnable); parked and finished threads are excluded.
func (s *Simulator) activeCount() int {
	n := 0
	for _, t := range s.threads {
		if t.state == stateRunnable || t.state == stateRunning {
			n++
		}
	}
	return n
}
