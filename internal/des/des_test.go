package des

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestSingleThreadMakespan(t *testing.T) {
	sim := New()
	sim.Spawn("t0", func(th *Thread) {
		th.Advance(10)
		th.Advance(5)
	})
	ms, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ms != 15 {
		t.Fatalf("makespan = %d, want 15", ms)
	}
}

func TestParallelThreadsOverlap(t *testing.T) {
	// Two threads each doing 100 units of work should finish at virtual time
	// 100, not 200 — that is the whole point of simulated parallelism.
	sim := New()
	for i := 0; i < 2; i++ {
		sim.Spawn("w", func(th *Thread) {
			for j := 0; j < 10; j++ {
				th.Advance(10)
			}
		})
	}
	ms, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ms != 100 {
		t.Fatalf("makespan = %d, want 100 (parallel overlap)", ms)
	}
}

func TestSchedulerOrdersByClockThenID(t *testing.T) {
	sim := New()
	var order []int
	// Thread 0 advances by 30s, thread 1 by 10s; interleaving must follow
	// virtual time.
	sim.Spawn("a", func(th *Thread) {
		th.Advance(30) // at 30
		order = append(order, 0)
		th.Advance(30) // at 60
		order = append(order, 0)
	})
	sim.Spawn("b", func(th *Thread) {
		for i := 0; i < 4; i++ {
			th.Advance(10)
			order = append(order, 1)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// b logs at t=10,20,30,40; a logs at t=30,60. At t=30 tie: a has id 0 but
	// b reached 30 first in schedule order... both runnable at 30; tie broken
	// by id, so a(0) before b(1).
	want := []int{1, 1, 0, 1, 1, 0}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	sim := New()
	var woken bool
	var consumer, producer *Thread
	consumer = sim.Spawn("consumer", func(th *Thread) {
		th.Park()
		woken = true
		if th.Now() < 50 {
			t.Errorf("consumer resumed at %d, want >= 50 (waker's clock)", th.Now())
		}
	})
	producer = sim.Spawn("producer", func(th *Thread) {
		th.Advance(50)
		th.Unpark(consumer)
	})
	_ = producer
	if _, err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !woken {
		t.Fatal("consumer never woke")
	}
}

func TestUnparkBeforeParkTokenSemantics(t *testing.T) {
	sim := New()
	var target *Thread
	target = sim.Spawn("target", func(th *Thread) {
		th.Advance(100) // waker's unpark arrives while we are runnable
		th.Park()       // must not block: token pending
		th.Advance(1)
	})
	sim.Spawn("waker", func(th *Thread) {
		th.Advance(10)
		th.Unpark(target)
	})
	ms, err := sim.Run()
	if err != nil {
		t.Fatalf("Run (token semantics broken?): %v", err)
	}
	if ms != 101 {
		t.Fatalf("makespan = %d, want 101", ms)
	}
}

func TestAllParkedIsDeadlock(t *testing.T) {
	sim := New()
	sim.Spawn("stuck", func(th *Thread) { th.Park() })
	_, err := sim.Run()
	if !errors.Is(err, ErrAllParked) {
		t.Fatalf("Run = %v, want ErrAllParked", err)
	}
}

func TestSpawnFromRunningThread(t *testing.T) {
	sim := New()
	var childRan bool
	sim.Spawn("parent", func(th *Thread) {
		th.Advance(20)
		th.Spawn("child", func(c *Thread) {
			if c.Now() != 20 {
				t.Errorf("child starts at %d, want parent clock 20", c.Now())
			}
			c.Advance(5)
			childRan = true
		})
		th.Advance(1)
	})
	ms, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
	if ms != 25 {
		t.Fatalf("makespan = %d, want 25", ms)
	}
}

func TestRunTwiceFails(t *testing.T) {
	sim := New()
	sim.Spawn("t", func(th *Thread) {})
	if _, err := sim.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		sim := New()
		var log []int
		for i := 0; i < 4; i++ {
			id := i
			sim.Spawn("w", func(th *Thread) {
				for j := 0; j < 5; j++ {
					th.Advance(uint64(1 + (id+j)%3))
					log = append(log, id)
				}
			})
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different log lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleavings diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestYieldDoesNotAdvanceClock(t *testing.T) {
	sim := New()
	sim.Spawn("y", func(th *Thread) {
		th.Yield()
		if th.Now() != 0 {
			t.Errorf("Yield advanced the clock to %d", th.Now())
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestManyThreadsComplete(t *testing.T) {
	sim := New()
	var done atomic.Int64
	for i := 0; i < 200; i++ {
		sim.Spawn("w", func(th *Thread) {
			th.Advance(uint64(th.ID()%7 + 1))
			done.Add(1)
		})
	}
	if _, err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done.Load() != 200 {
		t.Fatalf("completed = %d, want 200", done.Load())
	}
}

func TestUnparkDoneThreadIsNoop(t *testing.T) {
	sim := New()
	var first *Thread
	first = sim.Spawn("first", func(th *Thread) {})
	sim.Spawn("second", func(th *Thread) {
		th.Advance(5)
		th.Unpark(first) // first is long done
	})
	if _, err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
