package des

import "testing"

func TestWorkWithoutInterferenceEqualsAdvance(t *testing.T) {
	sim := New()
	sim.Spawn("w", func(th *Thread) {
		th.Work(100)
	})
	ms, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ms != 100 {
		t.Fatalf("makespan = %d, want 100 (zero interference)", ms)
	}
}

func TestWorkScalesWithActiveThreads(t *testing.T) {
	// Three active threads at 150 per-mille: each unit costs 1.30x.
	sim := New()
	sim.SetInterference(150)
	for i := 0; i < 3; i++ {
		sim.Spawn("w", func(th *Thread) {
			th.Work(1000)
		})
	}
	ms, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ms != 1300 {
		t.Fatalf("makespan = %d, want 1300 (1000 * 1.30)", ms)
	}
}

func TestWorkInterferenceIgnoresParkedThreads(t *testing.T) {
	// One worker parked: the single active thread pays no penalty.
	sim := New()
	sim.SetInterference(500)
	sim.Spawn("parked", func(th *Thread) {
		th.Park()
	})
	var worker *Thread
	worker = sim.Spawn("worker", func(th *Thread) {
		th.Work(100)
		// Wake the parked thread so the run completes.
		for _, other := range th.sim.threads {
			if other != th {
				th.Unpark(other)
			}
		}
	})
	_ = worker
	ms, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The worker's 100 units pass at factor 1.0 (the parked thread is not
	// active); makespan is the wake time, i.e. 100.
	if ms != 100 {
		t.Fatalf("makespan = %d, want 100 (parked threads must not interfere)", ms)
	}
}

func TestSetInterferenceNegativeClamped(t *testing.T) {
	sim := New()
	sim.SetInterference(-5)
	sim.Spawn("w", func(th *Thread) { th.Work(10) })
	ms, err := sim.Run()
	if err != nil || ms != 10 {
		t.Fatalf("ms=%d err=%v", ms, err)
	}
}

func TestInterferenceSerialSectionsUnscaled(t *testing.T) {
	// A chain handoff: A works, wakes B, B works. Never concurrent, so no
	// scaling despite interference being configured.
	sim := New()
	sim.SetInterference(300)
	var second *Thread
	second = sim.Spawn("second", func(th *Thread) {
		th.Park()
		th.Work(50)
	})
	sim.Spawn("first", func(th *Thread) {
		th.Work(50)
		th.Unpark(second)
	})
	ms, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Hmm: while "first" works, "second" is parked (inactive) => factor 1.
	// After the wake, "first" is done => "second" alone => factor 1.
	if ms != 100 {
		t.Fatalf("makespan = %d, want 100 (strictly serial handoff)", ms)
	}
}
