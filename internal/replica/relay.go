package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"contractstm/internal/api/client"
	"contractstm/internal/api/wire"
	"contractstm/internal/chain"
	"contractstm/internal/node"
)

// Defaults for RelayConfig's zero values.
const (
	// DefaultRelayBackoff is the first reconnect delay.
	DefaultRelayBackoff = 100 * time.Millisecond
	// DefaultRelayMaxBackoff caps the reconnect delay.
	DefaultRelayMaxBackoff = 5 * time.Second
	// relayFetchBatch is the range-fetch size used for gap fill.
	relayFetchBatch = 64
)

// RelayConfig assembles a Relay.
type RelayConfig struct {
	// Node is the local follower the relay applies upstream blocks to
	// (required). Each applied block republishes through the node's own
	// broker, which is the fan-out: downstream subscribers attach to
	// this node, not the upstream.
	Node *node.Node
	// Upstream is the client for the node being followed (required).
	Upstream *client.Client
	// Backoff and MaxBackoff shape the reconnect delay (0 = defaults).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// ErrorLog receives non-fatal relay faults (reconnects, gap-fill
	// retries). Nil discards.
	ErrorLog func(error)
}

// Relay consumes ONE upstream subscribe stream and turns every durable
// block event into a validated local import, which the local broker
// republishes to this node's own /v1/subscribe subscribers — thousands
// of downstream SSE connections cost the upstream miner exactly one.
//
// Reconnects resume with Last-Event-ID so the upstream replays the
// missed events; when the gap outran the upstream's replay ring (the
// reset signal), or events arrive with height gaps (a dropped
// subscriber), the relay fills the hole through the range endpoint —
// every filled block still goes through full local validation.
type Relay struct {
	n      *node.Node
	up     *client.Client
	base   time.Duration
	max    time.Duration
	errLog func(error)

	events         atomic.Int64
	reconnects     atomic.Int64
	gapsFilled     atomic.Int64
	upstreamHeight atomic.Uint64
}

// NewRelay builds a relay; Run starts it.
func NewRelay(cfg RelayConfig) (*Relay, error) {
	if cfg.Node == nil || cfg.Upstream == nil {
		return nil, errors.New("replica: relay needs a node and an upstream client")
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultRelayBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultRelayMaxBackoff
	}
	r := &Relay{
		n:      cfg.Node,
		up:     cfg.Upstream,
		base:   cfg.Backoff,
		max:    cfg.MaxBackoff,
		errLog: cfg.ErrorLog,
	}
	if r.errLog == nil {
		r.errLog = func(error) {}
	}
	return r, nil
}

// Status snapshots the relay's accounting in wire form.
func (r *Relay) Status() wire.RelayStatus {
	return wire.RelayStatus{
		Upstream:       r.up.URL(),
		Events:         r.events.Load(),
		Reconnects:     r.reconnects.Load(),
		GapsFilled:     r.gapsFilled.Load(),
		UpstreamHeight: r.upstreamHeight.Load(),
	}
}

// Run drives the relay until the context ends (returned as its cause)
// or a block the upstream serves fails local validation — divergence is
// fatal, not retryable. The subscribe stream is re-established with
// exponential backoff on every other failure.
func (r *Relay) Run(ctx context.Context) error {
	var lastSeq uint64
	haveSeq := false
	delay := r.base
	first := true
	for {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		var stream *client.Stream
		var err error
		if haveSeq {
			stream, err = r.up.Subscribe(ctx, client.WithLastEventID(lastSeq))
		} else {
			stream, err = r.up.Subscribe(ctx)
		}
		if err != nil {
			r.errLog(fmt.Errorf("replica: relay subscribe: %w", err))
			if !first {
				r.reconnects.Add(1)
			}
			first = false
			if !r.sleep(ctx, delay) {
				return context.Cause(ctx)
			}
			if delay *= 2; delay > r.max {
				delay = r.max
			}
			continue
		}
		if !first {
			r.reconnects.Add(1)
		}
		first = false
		delay = r.base
		// A fresh stream starts past whatever the upstream replayed; any
		// hole between our applied height and the stream is height-gap
		// filled as events arrive. Catch up eagerly first so the filling
		// stays incremental.
		if err := r.catchUp(ctx); err != nil {
			stream.Close()
			return err
		}
		err = r.consume(ctx, stream)
		if id, ok := stream.LastEventID(); ok {
			lastSeq, haveSeq = id, true
		}
		stream.Close()
		if err != nil {
			return err
		}
		if !r.sleep(ctx, delay) {
			return context.Cause(ctx)
		}
	}
}

// consume drains one stream until it breaks. A nil return means
// "reconnect"; a non-nil return is fatal (context end or local
// validation rejecting an upstream block).
func (r *Relay) consume(ctx context.Context, stream *client.Stream) error {
	for {
		ev, err := stream.Next()
		switch {
		case errors.Is(err, client.ErrStreamReset):
			// The gap outran the upstream's replay ring: range-fill up
			// to the upstream head, then keep consuming this stream.
			if err := r.catchUp(ctx); err != nil {
				return err
			}
			continue
		case errors.Is(err, client.ErrStreamDropped):
			r.errLog(errors.New("replica: relay dropped by upstream (fell behind)"))
			return nil
		case errors.Is(err, io.EOF):
			return nil
		case err != nil:
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			r.errLog(fmt.Errorf("replica: relay stream: %w", err))
			return nil
		}
		r.events.Add(1)
		r.observeHeight(ev.Block.Number)
		if err := r.apply(ctx, ev); err != nil {
			return err
		}
	}
}

// apply brings the local node up to the event's block: the common case
// imports exactly that block; a height gap (events lost to a drop)
// range-fills the hole first. Events at or under the local head are
// duplicates from replay overlap and are skipped.
func (r *Relay) apply(ctx context.Context, ev wire.Event) error {
	local := r.n.Height()
	if ev.Block.Number <= local {
		return nil
	}
	if gap := ev.Block.Number - local - 1; gap > 0 {
		if err := r.fillRange(ctx, local+1, ev.Block.Number-1); err != nil {
			return err
		}
	}
	b, err := r.up.Block(ctx, ev.Block.Number)
	if err != nil {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		// The fetch can fail transiently; the next event (or reconnect)
		// will gap-fill past this height.
		r.errLog(fmt.Errorf("replica: relay fetch block %d: %w", ev.Block.Number, err))
		return nil
	}
	return r.importBlock(b)
}

// catchUp range-fills from the local head to the upstream's durable
// head.
func (r *Relay) catchUp(ctx context.Context) error {
	head, err := r.up.Head(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		r.errLog(fmt.Errorf("replica: relay head: %w", err))
		return nil
	}
	r.observeHeight(head.Number)
	local := r.n.Height()
	if head.Number <= local {
		return nil
	}
	return r.fillRange(ctx, local+1, head.Number)
}

// fillRange imports [from, to] through the range endpoint, counting the
// blocks toward the gap-fill metric. Every block passes full local
// validation via the node's import path.
func (r *Relay) fillRange(ctx context.Context, from, to uint64) error {
	for h := from; h <= to; {
		count := int(to - h + 1)
		if count > relayFetchBatch {
			count = relayFetchBatch
		}
		blocks, err := r.up.Blocks(ctx, h, count)
		if err != nil {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			r.errLog(fmt.Errorf("replica: relay gap fill at %d: %w", h, err))
			return nil // transient; the stream or next reconnect retries
		}
		for _, b := range blocks {
			if err := r.importBlock(b); err != nil {
				return err
			}
			r.gapsFilled.Add(1)
		}
		h += uint64(len(blocks))
	}
	return nil
}

// importBlock runs one upstream block through the node's validated
// import. Rejection is fatal: the upstream served a block this node's
// deterministic validation refuses, which is divergence, not noise.
func (r *Relay) importBlock(b chain.Block) error {
	if _, err := r.n.ImportBlock(b); err != nil {
		return fmt.Errorf("replica: relay import block %d: %w", b.Header.Number, err)
	}
	return nil
}

// observeHeight ratchets the observed upstream height.
func (r *Relay) observeHeight(h uint64) {
	for {
		cur := r.upstreamHeight.Load()
		if h <= cur || r.upstreamHeight.CompareAndSwap(cur, h) {
			return
		}
	}
}

// sleep waits d or until the context ends, reporting whether to
// continue.
func (r *Relay) sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}
