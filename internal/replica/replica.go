package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"contractstm/internal/api/wire"
	"contractstm/internal/cluster"
	"contractstm/internal/contract"
	"contractstm/internal/importer"
	"contractstm/internal/node"
)

// Config assembles a Replica.
type Config struct {
	// Node is the follower to run as a read replica (required). It
	// should be import-only — the replica never mines; writes belong to
	// the upstream.
	Node *node.Node
	// Upstream is the base URL of the node to follow (required).
	Upstream string
	// HTTPClient customizes the upstream transport (nil = SDK default).
	HTTPClient *http.Client
	// ShadowWorld, when set, enables historical queries
	// (GET /v1/state/{addr}?height=H): a dedicated world built by the
	// same deterministic genesis setup as Node's, owned by the history
	// after New.
	ShadowWorld *contract.World
	// History tunes the historical materializer (Node, World and zero
	// values are filled in; ignored without ShadowWorld).
	History HistoryConfig
	// Import sizes the staged catch-up pipeline used before relaying
	// (zero values = importer defaults; ignored on an ImportOff node,
	// which catches up serially).
	Import importer.Config
	// Relay tunes the event relay (Node and Upstream are filled in).
	Relay RelayConfig
	// ErrorLog receives non-fatal faults (nil discards); it also
	// defaults Relay.ErrorLog.
	ErrorLog func(error)
}

// Replica bundles the three read-path roles of a follower: validated
// catch-up and live block application (the relay), bounded-staleness
// read serving (the node's API, stamped and gated by internal/api), and
// historical queries (the history materializer). The replica's status
// endpoint reports the relay's accounting under status.relay.
type Replica struct {
	n     *node.Node
	peer  *cluster.Peer
	relay *Relay
	hist  *History
	icfg  importer.Config
}

// New wires a follower node into a replica: attaches the history (when
// a shadow world is supplied), builds the relay, and decorates the
// node's status with the relay's accounting. Run starts following.
func New(cfg Config) (*Replica, error) {
	if cfg.Node == nil {
		return nil, errors.New("replica: nil node")
	}
	if cfg.Upstream == "" {
		return nil, errors.New("replica: no upstream URL")
	}
	peer := cluster.NewPeer(cfg.Upstream, cfg.HTTPClient)
	rcfg := cfg.Relay
	rcfg.Node = cfg.Node
	rcfg.Upstream = peer.Client()
	if rcfg.ErrorLog == nil {
		rcfg.ErrorLog = cfg.ErrorLog
	}
	relay, err := NewRelay(rcfg)
	if err != nil {
		return nil, err
	}
	r := &Replica{n: cfg.Node, peer: peer, relay: relay, icfg: cfg.Import}
	if cfg.ShadowWorld != nil {
		hcfg := cfg.History
		hcfg.World = cfg.ShadowWorld
		hist, err := AttachHistory(cfg.Node, hcfg)
		if err != nil {
			return nil, err
		}
		r.hist = hist
	}
	cfg.Node.SetStatusDecorator(func(st *wire.Status) {
		rs := relay.Status()
		st.Relay = &rs
	})
	return r, nil
}

// Relay returns the replica's event relay.
func (r *Replica) Relay() *Relay { return r.relay }

// History returns the historical materializer (nil without a shadow
// world).
func (r *Replica) History() *History { return r.hist }

// Node returns the underlying follower.
func (r *Replica) Node() *node.Node { return r.n }

// Run catches the follower up through the staged import pipeline, then
// relays the upstream event stream until the context ends. The initial
// sync tolerates an upstream that is momentarily unreachable only as
// far as the SDK's retry policy; a diverged chain fails immediately.
func (r *Replica) Run(ctx context.Context) error {
	if _, err := cluster.SyncWith(ctx, r.n, r.peer, r.icfg); err != nil {
		return fmt.Errorf("replica: initial sync: %w", err)
	}
	return r.relay.Run(ctx)
}
