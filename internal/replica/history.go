// Package replica turns any follower node into a first-class read
// replica and event relay: bounded-staleness /v1 reads served at the
// follower's durable height, historical balance queries materialized by
// nearest-snapshot-plus-tail-replay, and an SSE relay that consumes one
// upstream subscribe stream and re-fans it out through the follower's
// own broker — thousands of downstream subscribers cost the miner a
// single connection.
//
// The package sits above internal/node (it attaches to a node through
// the narrow node.HistoryReader and status-decorator hooks; the node
// never imports it) and rides the existing durability gate: everything
// a replica serves went through node.DurableBlock or the validated
// import path first, so a replica read can never expose a block a crash
// on the miner could void.
package replica

import (
	"container/list"
	"fmt"
	"sync"

	"contractstm/internal/api"
	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/node"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/storage"
	"contractstm/internal/types"
	"contractstm/internal/validator"
)

// Defaults for HistoryConfig's zero values.
const (
	// DefaultCheckpointEvery is the replay-checkpoint cadence in blocks.
	DefaultCheckpointEvery = 64
	// DefaultMaxCheckpoints bounds retained cadence checkpoints (the
	// seed is kept separately and never evicted).
	DefaultMaxCheckpoints = 8
	// DefaultMaxMaterialized bounds the LRU of exactly-materialized
	// heights.
	DefaultMaxMaterialized = 8
)

// HistoryConfig assembles a History.
type HistoryConfig struct {
	// Node is the follower the history reads blocks from (required).
	Node *node.Node
	// World is a dedicated shadow world built by the same deterministic
	// genesis setup as the node's (required). The history owns it after
	// AttachHistory: it is restored to the node's snapshot and replayed
	// forward, and must not be shared with anything else.
	World *contract.World
	// Workers sizes the tail-replay validation pool (0 = 3).
	Workers int
	// Runner executes tail replay (nil = real OS threads).
	Runner runtime.Runner
	// CheckpointEvery is the cadence, in blocks, at which forward replay
	// records a restore point (0 = DefaultCheckpointEvery).
	CheckpointEvery int
	// MaxCheckpoints bounds retained cadence checkpoints; the oldest is
	// dropped first, degrading to a longer replay from the seed rather
	// than an error (0 = DefaultMaxCheckpoints).
	MaxCheckpoints int
	// MaxMaterialized bounds the LRU of exactly-materialized heights
	// (0 = DefaultMaxMaterialized).
	MaxMaterialized int
}

// History materializes historical state reads for one node: it keeps a
// shadow world it can rewind to the nearest retained snapshot at or
// under a requested height and replay forward through the validator,
// with a bounded LRU of exactly-materialized heights so repeated
// queries near each other stay cheap. It implements node.HistoryReader.
//
// Blocks are pulled lazily through node.DurableBlock, so the durability
// gate is inherited: a height the node has not durably reached answers
// api.ErrHeightAhead, and one below the seed snapshot (the oldest state
// the history ever saw) answers api.ErrHeightUnavailable.
type History struct {
	n       *node.Node
	workers int
	runner  runtime.Runner
	every   int
	maxCkpt int
	maxLRU  int

	// applyMu serializes all materialization: the shadow world advances
	// (or rewinds) one request at a time, and tail replay runs the full
	// validator under it — a deliberate long-hold lock, named so (the
	// execMu idiom; never a bookkeeping "mu").
	applyMu sync.Mutex

	world   *contract.World
	applied uint64 // height the shadow world currently sits at
	floor   uint64 // seed height: nothing below it materializes
	seed    storage.Snapshot
	// ckpts are cadence restore points, ascending by height.
	ckpts []histEntry
	// lru is the exactly-materialized cache: list front = most recent,
	// byHeight indexes it. Never iterated as a map.
	lru      *list.List
	byHeight map[uint64]*list.Element
}

// histEntry is one retained restore point.
type histEntry struct {
	height uint64
	snap   storage.Snapshot
}

// AttachHistory seeds a History from the node's current state
// checkpoint and attaches it as the node's historical-read
// materializer. The history floor is the checkpoint height: a recovered
// or fast-synced node serves history from where its state is actually
// reconstructible, not from a genesis it may no longer hold.
func AttachHistory(n *node.Node, cfg HistoryConfig) (*History, error) {
	if n == nil || cfg.World == nil {
		return nil, fmt.Errorf("replica: history needs a node and a shadow world")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Runner == nil {
		cfg.Runner = runtime.NewOSRunner(nil)
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	if cfg.MaxCheckpoints <= 0 {
		cfg.MaxCheckpoints = DefaultMaxCheckpoints
	}
	if cfg.MaxMaterialized <= 0 {
		cfg.MaxMaterialized = DefaultMaxMaterialized
	}
	snap, err := n.SnapshotNow()
	if err != nil {
		return nil, fmt.Errorf("replica: history seed: %w", err)
	}
	if err := cfg.World.RestoreState(snap.State); err != nil {
		return nil, fmt.Errorf("replica: history seed at %d: %w", snap.Height(), err)
	}
	root, err := cfg.World.StateRoot()
	if err != nil {
		return nil, fmt.Errorf("replica: history seed: %w", err)
	}
	if root != snap.Header.StateRoot {
		return nil, fmt.Errorf("replica: history seed %d: shadow world hashes to %s, checkpoint claims %s — different genesis setup?",
			snap.Height(), root.Short(), snap.Header.StateRoot.Short())
	}
	h := &History{
		n:        n,
		workers:  cfg.Workers,
		runner:   cfg.Runner,
		every:    cfg.CheckpointEvery,
		maxCkpt:  cfg.MaxCheckpoints,
		maxLRU:   cfg.MaxMaterialized,
		world:    cfg.World,
		applied:  snap.Height(),
		floor:    snap.Height(),
		seed:     cfg.World.Snapshot(),
		lru:      list.New(),
		byHeight: make(map[uint64]*list.Element),
	}
	n.SetHistory(h)
	return h, nil
}

// Floor reports the oldest height the history can materialize.
func (h *History) Floor() uint64 { return h.floor }

// BalanceAtHeight implements node.HistoryReader: materialize the state
// at the requested height and read one balance from it.
func (h *History) BalanceAtHeight(addr types.Address, height uint64) (types.Amount, error) {
	h.applyMu.Lock()
	defer h.applyMu.Unlock()
	if height < h.floor {
		return 0, fmt.Errorf("replica: height %d below history floor %d: %w",
			height, h.floor, api.ErrHeightUnavailable)
	}
	if err := h.materialize(height); err != nil {
		return 0, err
	}
	return h.readBalance(addr)
}

// materialize brings the shadow world to exactly the given height:
// start from the best retained base at or under it (the current world,
// an LRU hit, a cadence checkpoint, or the seed), replay the durable
// tail through the validator, and cache the result. Caller holds
// applyMu.
func (h *History) materialize(height uint64) error {
	if h.applied == height {
		return nil
	}
	if base, ok := h.lookupLRU(height); ok {
		// Exact hit: restore, no replay.
		h.world.Restore(base)
		h.applied = height
		return nil
	}
	if baseH, snap, restore := h.bestBase(height); restore {
		h.world.Restore(snap)
		h.applied = baseH
	}
	pre := h.world.Snapshot()
	preApplied := h.applied
	for bh := h.applied + 1; bh <= height; bh++ {
		b, ok := h.n.DurableBlock(bh)
		if !ok {
			h.world.Restore(pre)
			h.applied = preApplied
			return fmt.Errorf("replica: block %d not durable yet: %w", bh, api.ErrHeightAhead)
		}
		if _, err := validator.Validate(h.runner, h.world, b, validator.Config{Workers: h.workers}); err != nil {
			h.world.Restore(pre)
			h.applied = preApplied
			return fmt.Errorf("replica: replay block %d: %w", bh, err)
		}
		h.applied = bh
		h.maybeCheckpoint()
	}
	h.cacheMaterialized(height)
	return nil
}

// bestBase picks the highest retained restore point at or under height.
// restore=false means the current world (already at or under height) is
// the best start and no rewind is needed.
func (h *History) bestBase(height uint64) (baseH uint64, snap storage.Snapshot, restore bool) {
	bestH := h.floor
	best := h.seed
	for _, e := range h.ckpts {
		if e.height <= height && e.height >= bestH {
			bestH, best = e.height, e.snap
		}
	}
	for el := h.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(histEntry)
		if e.height <= height && e.height >= bestH {
			bestH, best = e.height, e.snap
		}
	}
	if h.applied <= height && h.applied >= bestH {
		return h.applied, storage.Snapshot{}, false
	}
	return bestH, best, true
}

// maybeCheckpoint records a cadence restore point at the current
// applied height, evicting the oldest beyond the bound. Caller holds
// applyMu.
func (h *History) maybeCheckpoint() {
	if h.applied%uint64(h.every) != 0 {
		return
	}
	for _, e := range h.ckpts {
		if e.height == h.applied {
			return
		}
	}
	h.ckpts = append(h.ckpts, histEntry{height: h.applied, snap: h.world.Snapshot()})
	if len(h.ckpts) > h.maxCkpt {
		// Dropping the oldest only lengthens a cold replay (the seed
		// still floors the window); it never shrinks what is servable.
		h.ckpts = h.ckpts[1:]
	}
}

// lookupLRU returns the materialized snapshot at exactly height, marking
// it most recently used.
func (h *History) lookupLRU(height uint64) (storage.Snapshot, bool) {
	el, ok := h.byHeight[height]
	if !ok {
		return storage.Snapshot{}, false
	}
	h.lru.MoveToFront(el)
	return el.Value.(histEntry).snap, true
}

// cacheMaterialized stores the current world as the materialization of
// height, evicting the least recently used beyond the bound.
func (h *History) cacheMaterialized(height uint64) {
	if el, ok := h.byHeight[height]; ok {
		h.lru.MoveToFront(el)
		return
	}
	el := h.lru.PushFront(histEntry{height: height, snap: h.world.Snapshot()})
	h.byHeight[height] = el
	if h.lru.Len() > h.maxLRU {
		oldest := h.lru.Back()
		h.lru.Remove(oldest)
		delete(h.byHeight, oldest.Value.(histEntry).height)
	}
}

// readBalance reads one balance from the shadow world at its current
// height, through the same one-shot serial transaction idiom the node's
// live BalanceAt uses. Caller holds applyMu.
func (h *History) readBalance(addr types.Address) (types.Amount, error) {
	var bal types.Amount
	var readErr error
	if _, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSerial(0, th, gas.NewMeter(1_000_000), h.world.Schedule())
		bal, readErr = h.world.BalanceOf(tx, addr)
		if readErr != nil {
			_ = tx.Abort()
			return
		}
		readErr = tx.Commit()
	}); err != nil {
		return 0, fmt.Errorf("replica: balance read: %w", err)
	}
	if readErr != nil {
		return 0, fmt.Errorf("replica: balance read: %w", readErr)
	}
	return bal, nil
}
