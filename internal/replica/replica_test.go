package replica

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"contractstm/internal/api/client"
	"contractstm/internal/node"
)

// serveNode exposes a node over httptest.
func serveNode(t *testing.T, n *node.Node) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(n.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// startReplica builds a replica over a same-genesis follower and runs
// it until test cleanup.
func startReplica(t *testing.T, upstream string, cfg Config) *Replica {
	t.Helper()
	follower, _ := histNode(t)
	cfg.Node = follower
	cfg.Upstream = upstream
	if cfg.ErrorLog == nil {
		cfg.ErrorLog = func(err error) { t.Logf("replica fault: %v", err) }
	}
	rep, err := New(cfg)
	if err != nil {
		t.Fatalf("replica.New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("replica.Run: %v", err)
		}
	})
	return rep
}

// waitHeight polls until the node durably reaches height.
func waitHeight(t *testing.T, n *node.Node, height uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for n.Height() < height {
		if time.Now().After(deadline) {
			t.Fatalf("node stuck at height %d, want %d", n.Height(), height)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicaFollowsUpstream is the end-to-end read-path: initial sync
// catches up blocks mined before the replica existed, the relay applies
// blocks mined after, reads against the replica serve the upstream's
// chain, and the status document reports the relay's accounting.
func TestReplicaFollowsUpstream(t *testing.T) {
	up, calls := histNode(t)
	upSrv := serveNode(t, up)
	// Two blocks exist before the replica starts: the initial-sync path.
	mineChain(t, up, calls, 2)

	shadow, _ := histWorld(t)
	rep := startReplica(t, upSrv.URL, Config{ShadowWorld: shadow})
	waitHeight(t, rep.Node(), 2)

	// Hold the next blocks until the relay's stream is established —
	// otherwise initial sync could carry them and the relay-path
	// accounting below would have nothing to count.
	upSDK := client.New(upSrv.URL)
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := upSDK.Status(ctx)
		if err != nil {
			t.Fatalf("upstream status: %v", err)
		}
		if st.API != nil && st.API.Subscribers >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("relay never subscribed upstream")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Two more arrive live: the relay path.
	up.SubmitAll(calls[2*histBlockSize : histBlocks*histBlockSize])
	for i := 2; i < histBlocks; i++ {
		if _, err := up.MineOne(histBlockSize); err != nil {
			t.Fatalf("mine %d: %v", i+1, err)
		}
	}
	waitHeight(t, rep.Node(), histBlocks)
	if rep.Node().Head().Header.Hash() != up.Head().Header.Hash() {
		t.Fatal("replica head diverged from upstream")
	}

	// Reads through the replica's own API: live, bounded-staleness, and
	// historical.
	repSrv := serveNode(t, rep.Node())
	sdk := client.New(repSrv.URL)
	head, err := sdk.Head(ctx, client.WithMinHeight(histBlocks))
	if err != nil || head.Number != histBlocks {
		t.Fatalf("replica head = %+v, %v", head, err)
	}
	if b, err := sdk.BalanceInfo(ctx, up.Head().Calls[0].Sender, client.AtHeight(2)); err != nil || b.Height != 2 {
		t.Fatalf("historical read = %+v, %v", b, err)
	}

	// The status document carries the relay accounting.
	st, err := sdk.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Relay == nil || st.Relay.Upstream != upSrv.URL {
		t.Fatalf("status.relay = %+v", st.Relay)
	}
	// The two live blocks arrived through the relay — as stream events
	// or, when catch-up wins the race, as gap fills.
	if st.Relay.Events+st.Relay.GapsFilled < 2 || st.Relay.UpstreamHeight != histBlocks {
		t.Fatalf("relay accounting = %+v", st.Relay)
	}
}

// TestRelayReconnects: a dropped upstream stream is re-established and
// missed blocks are recovered — the counter proves the drop was seen,
// the height proves nothing was lost.
func TestRelayReconnects(t *testing.T) {
	up, calls := histNode(t)
	inner := up.Handler()
	var killFirst atomic.Bool
	killFirst.Store(true)
	// The first subscribe stream is accepted, then cut mid-stream — an
	// upstream restart as the relay sees it. The cut lands after the SSE
	// preamble so the SDK's transport-level retry cannot mask it.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/subscribe" && killFirst.Swap(false) {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("recorder not hijackable")
				return
			}
			conn, buf, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			_, _ = buf.WriteString("HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\r\n: subscribed\n\n")
			_ = buf.Flush()
			conn.Close()
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	rep := startReplica(t, srv.URL, Config{
		Relay: RelayConfig{Backoff: time.Millisecond},
	})
	mineChain(t, up, calls, histBlocks)
	waitHeight(t, rep.Node(), histBlocks)
	if rep.Node().Head().Header.Hash() != up.Head().Header.Hash() {
		t.Fatal("replica diverged across the reconnect")
	}
	deadline := time.Now().Add(10 * time.Second)
	for rep.Relay().Status().Reconnects < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("relay accounting = %+v, want at least one reconnect", rep.Relay().Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRelayFanOut: many downstream SSE subscribers ride the replica
// while the upstream carries exactly one subscribe connection — the
// whole point of the relay hub.
func TestRelayFanOut(t *testing.T) {
	const subscribers = 50
	up, calls := histNode(t)
	upSrv := serveNode(t, up)
	rep := startReplica(t, upSrv.URL, Config{})
	repSrv := serveNode(t, rep.Node())

	ctx := context.Background()
	sdk := client.New(repSrv.URL)
	streams := make([]*client.Stream, subscribers)
	for i := range streams {
		s, err := sdk.Subscribe(ctx)
		if err != nil {
			t.Fatalf("subscriber %d: %v", i, err)
		}
		defer s.Close()
		streams[i] = s
	}

	mineChain(t, up, calls, 1)
	var wg sync.WaitGroup
	fails := make(chan error, subscribers)
	for i, s := range streams {
		wg.Add(1)
		go func(i int, s *client.Stream) {
			defer wg.Done()
			ev, err := s.Next()
			if err != nil || ev.Block.Number != 1 {
				fails <- errors.New("subscriber missed the relayed block")
			}
		}(i, s)
	}
	wg.Wait()
	close(fails)
	if err := <-fails; err != nil {
		t.Fatal(err)
	}

	// The miner carries the relay's single subscription, no matter how
	// many clients sit behind the replica.
	upStatus, err := client.New(upSrv.URL).Status(ctx)
	if err != nil {
		t.Fatalf("upstream status: %v", err)
	}
	if upStatus.API == nil || upStatus.API.Subscribers != 1 {
		t.Fatalf("upstream subscribers = %+v, want exactly the relay", upStatus.API)
	}
}
