package replica

import (
	"errors"
	"testing"

	"contractstm/internal/api"
	"contractstm/internal/contract"
	"contractstm/internal/node"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

const (
	histBlocks    = 4
	histBlockSize = 6
)

func histParams() workload.Params {
	return workload.Params{
		Kind: workload.KindToken, Transactions: histBlocks * histBlockSize,
		ConflictPercent: 20, Seed: 47,
	}
}

// histWorld regenerates the deterministic genesis world and call list —
// callable repeatedly so upstream node, replica node and shadow world
// all start bit-identical.
func histWorld(t *testing.T) (*contract.World, []contract.Call) {
	t.Helper()
	wl, err := workload.Generate(histParams())
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return wl.World, wl.Calls
}

func histNode(t *testing.T) (*node.Node, []contract.Call) {
	t.Helper()
	world, calls := histWorld(t)
	n, err := node.New(node.Config{World: world, Workers: 3, Runner: runtime.NewSimRunner()})
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	return n, calls
}

// mineChain advances n by `blocks` blocks off the workload's call list.
func mineChain(t *testing.T, n *node.Node, calls []contract.Call, blocks int) {
	t.Helper()
	n.SubmitAll(calls[:blocks*histBlockSize])
	for i := 0; i < blocks; i++ {
		if _, err := n.MineOne(histBlockSize); err != nil {
			t.Fatalf("mine %d: %v", i+1, err)
		}
	}
}

// rootAt asserts the shadow world, materialized at height, hashes to
// exactly the state root the chain committed at that height.
func rootAt(t *testing.T, h *History, n *node.Node, height uint64) {
	t.Helper()
	h.applyMu.Lock()
	defer h.applyMu.Unlock()
	if err := h.materialize(height); err != nil {
		t.Fatalf("materialize %d: %v", height, err)
	}
	root, err := h.world.StateRoot()
	if err != nil {
		t.Fatalf("state root at %d: %v", height, err)
	}
	b, ok := n.BlockAt(height)
	if !ok {
		t.Fatalf("no block at %d", height)
	}
	if root != b.Header.StateRoot {
		t.Fatalf("height %d: materialized root %s, chain committed %s",
			height, root.Short(), b.Header.StateRoot.Short())
	}
}

// TestHistoryMaterializesExactHeights: every historical height
// reproduces the exact committed state root — forward from the seed,
// backward after overshooting, and repeatedly (LRU hits).
func TestHistoryMaterializesExactHeights(t *testing.T) {
	n, calls := histNode(t)
	shadow, _ := histWorld(t)
	h, err := AttachHistory(n, HistoryConfig{
		World: shadow, Runner: runtime.NewSimRunner(), CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatalf("AttachHistory: %v", err)
	}
	mineChain(t, n, calls, histBlocks)

	// Forward, backward, and revisits — an access pattern that forces
	// replay, rewind-to-checkpoint, and LRU hits.
	for _, height := range []uint64{2, 4, 1, 3, 2, 4} {
		rootAt(t, h, n, height)
	}
	// The balance route works over the same materialization (workload
	// accounts live in contract storage; the ledger read must still
	// succeed at a rewound height).
	if _, err := h.BalanceAtHeight(types.AddressFromUint64(1), 1); err != nil {
		t.Fatalf("BalanceAtHeight(1): %v", err)
	}
}

// TestHistoryHeightAhead: a height past the durable tip answers
// api.ErrHeightAhead (the retryable kind) and leaves the history able
// to serve once the block lands.
func TestHistoryHeightAhead(t *testing.T) {
	n, calls := histNode(t)
	shadow, _ := histWorld(t)
	h, err := AttachHistory(n, HistoryConfig{World: shadow, Runner: runtime.NewSimRunner()})
	if err != nil {
		t.Fatalf("AttachHistory: %v", err)
	}
	mineChain(t, n, calls, 2)

	if _, err := h.BalanceAtHeight(types.AddressFromUint64(1), 3); !errors.Is(err, api.ErrHeightAhead) {
		t.Fatalf("ahead err = %v", err)
	}
	// The failed attempt must not have corrupted the shadow world.
	rootAt(t, h, n, 2)

	// Once height 3 is durable the same query succeeds.
	n.SubmitAll(calls[2*histBlockSize : 3*histBlockSize])
	if _, err := n.MineOne(histBlockSize); err != nil {
		t.Fatalf("mine: %v", err)
	}
	rootAt(t, h, n, 3)
}

// TestHistoryFloor: a history attached to an already-advanced node
// floors at the attach-point checkpoint — heights below it answer
// api.ErrHeightUnavailable, heights above materialize normally.
func TestHistoryFloor(t *testing.T) {
	n, calls := histNode(t)
	mineChain(t, n, calls, 2)

	// The shadow world seeds from the node's height-2 checkpoint, so it
	// must accept that state regardless of its own starting content.
	shadow, _ := histWorld(t)
	h, err := AttachHistory(n, HistoryConfig{World: shadow, Runner: runtime.NewSimRunner()})
	if err != nil {
		t.Fatalf("AttachHistory: %v", err)
	}
	if h.Floor() != 2 {
		t.Fatalf("floor = %d, want 2", h.Floor())
	}
	if _, err := h.BalanceAtHeight(types.AddressFromUint64(1), 1); !errors.Is(err, api.ErrHeightUnavailable) {
		t.Fatalf("below-floor err = %v", err)
	}

	n.SubmitAll(calls[2*histBlockSize : histBlocks*histBlockSize])
	for i := 2; i < histBlocks; i++ {
		if _, err := n.MineOne(histBlockSize); err != nil {
			t.Fatalf("mine: %v", err)
		}
	}
	rootAt(t, h, n, 3)
	rootAt(t, h, n, 4)
}

// TestHistoryBoundedCaches: the materialized-height LRU and the cadence
// checkpoints stay within their configured bounds no matter the access
// pattern.
func TestHistoryBoundedCaches(t *testing.T) {
	n, calls := histNode(t)
	shadow, _ := histWorld(t)
	h, err := AttachHistory(n, HistoryConfig{
		World: shadow, Runner: runtime.NewSimRunner(),
		CheckpointEvery: 1, MaxCheckpoints: 2, MaxMaterialized: 2,
	})
	if err != nil {
		t.Fatalf("AttachHistory: %v", err)
	}
	mineChain(t, n, calls, histBlocks)

	for _, height := range []uint64{1, 2, 3, 4, 1, 4, 2} {
		rootAt(t, h, n, height)
	}
	h.applyMu.Lock()
	lruLen, ckpts := h.lru.Len(), len(h.ckpts)
	indexed := len(h.byHeight)
	h.applyMu.Unlock()
	if lruLen > 2 || indexed != lruLen {
		t.Fatalf("LRU len = %d (indexed %d), bound 2", lruLen, indexed)
	}
	if ckpts > 2 {
		t.Fatalf("checkpoints = %d, bound 2", ckpts)
	}
}

// TestHistoryRejectsForeignWorld: a shadow world with different genesis
// content cannot silently seed — the state-root cross-check refuses it.
func TestHistoryRejectsForeignWorld(t *testing.T) {
	n, _ := histNode(t)
	foreign, err := workload.Generate(workload.Params{
		Kind: workload.KindBallot, Transactions: 8, Seed: 1,
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	if _, err := AttachHistory(n, HistoryConfig{World: foreign.World, Runner: runtime.NewSimRunner()}); err == nil {
		t.Fatal("foreign shadow world accepted")
	}
}
