package node

import (
	"fmt"

	"contractstm/internal/chain"
	"contractstm/internal/validator"
)

// ImportMode selects how a follower consumes the staged import pipeline's
// concurrently-computed Phase A (stateless validation) results. It is the
// rollout switch for deterministic parallel validation (internal/importer):
//
//   - ImportOff: the staged pipeline is bypassed entirely — catch-up sync
//     fetches and validates one block at a time through the serial
//     AcceptBlock path, exactly the pre-pipeline behavior.
//   - ImportShadow: both paths run on every import. The pipeline's Phase A
//     verdict (computed concurrently, out of height order) is diffed
//     against a serial recomputation at commit time; any disagreement bumps
//     the divergence counter surfaced in /v1/status. The serial
//     recomputation is authoritative, so a divergence is an observability
//     event, not a consensus one.
//   - ImportOn: the pipeline's Phase A verdict is trusted — commit runs
//     only the stateful Phase B. Gated on a clean shadow soak.
//
// The mode governs only the catch-up/import pipeline; single-block gossip
// (AcceptBlock via POST /v1/blocks) and WAL recovery always validate
// serially.
type ImportMode int

const (
	// ImportOff is the zero value: serial imports, the safe default.
	ImportOff ImportMode = iota
	// ImportShadow runs both paths and diffs verdicts block-by-block.
	ImportShadow
	// ImportOn trusts the pipeline's stateless verdicts.
	ImportOn
)

// String renders the mode the way ParseImportMode reads it.
func (m ImportMode) String() string {
	switch m {
	case ImportShadow:
		return "shadow"
	case ImportOn:
		return "on"
	default:
		return "off"
	}
}

// ParseImportMode parses "off", "shadow" or "on" (the -import-mode flag).
func ParseImportMode(s string) (ImportMode, error) {
	switch s {
	case "off", "":
		return ImportOff, nil
	case "shadow":
		return ImportShadow, nil
	case "on":
		return ImportOn, nil
	default:
		return ImportOff, fmt.Errorf(`node: import mode %q (want "off", "shadow" or "on")`, s)
	}
}

// ImportMode reports the configured import rollout mode.
func (n *Node) ImportMode() ImportMode { return n.importMode }

// ImportDivergences reports how many shadow-mode imports saw the staged
// pipeline's Phase A verdict disagree with the serial recomputation.
func (n *Node) ImportDivergences() int64 { return n.importDivergences.Load() }

// ImportPrechecked imports a catch-up block whose stateless validation
// phase already ran on the staged pipeline (internal/importer). pre and
// preErr are the pipeline's Phase A outputs for b; how much they are
// trusted depends on Config.ImportMode — see ImportMode. Linkage against
// the live head, fork-join replay and the crash rules are identical to
// AcceptBlock in every mode; error strings are byte-identical to the
// serial path's by construction.
func (n *Node) ImportPrechecked(b chain.Block, pre validator.Prechecked, preErr error) error {
	switch n.importMode {
	case ImportShadow:
		serialPre, serialErr := validator.Precheck(b)
		if !sameVerdict(preErr, serialErr) {
			n.importDivergences.Add(1)
			n.errLog(fmt.Errorf("node: import shadow divergence at height %d: staged verdict %v, serial verdict %v",
				b.Header.Number, preErr, serialErr))
		}
		return n.acceptBlock(b, &serialPre, serialErr)
	case ImportOn:
		return n.acceptBlock(b, &pre, preErr)
	default:
		return n.acceptBlock(b, nil, nil)
	}
}

// sameVerdict compares two validation verdicts the way shadow mode diffs
// them: accept/reject agreement first, then the exact error text (the
// parity contract is byte-identical rejection messages).
func sameVerdict(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}
