package node

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"contractstm/internal/api"
	"contractstm/internal/api/wire"
	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/mempool"
	"contractstm/internal/persist"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// This file is the node's side of the versioned API: *Node implements
// api.Backend, and Handler exposes the api.Server built in New. The
// server owns HTTP concerns (schema, limits, timeouts, metrics); the
// node owns semantics — and in particular the durability gate: every
// block surface the API serves (blocks, head, receipts, events) is
// bounded by what the persistence layer has acknowledged.

// Handler returns the node's HTTP API: the /v1 routes plus the legacy
// unversioned aliases (deprecated, kept for one release). The handler is
// built once per node, so request metrics aggregate across callers.
func (n *Node) Handler() http.Handler { return n.server }

// SubmitTx implements api.Backend: the admission-controlled intake. It
// differs from Submit — the node's own trusted path — in three ways: the
// call runs the full admission pipeline (dedup, per-sender caps, rate
// limits, byte budget), a duplicate of a transaction the node already
// tracks short-circuits to the existing receipt instead of re-entering
// the pool, and eviction casualties get terminal evicted receipts so
// their submitters learn the outcome by polling. A transaction whose
// receipt is StatusEvicted may re-enter: eviction is terminal for that
// attempt, not for the payload. Receipt history is an LRU, so a
// duplicate older than the receipt window re-admits — acceptable,
// because re-executing a forgotten transaction is the pre-admission
// status quo, not a new hazard.
func (n *Node) SubmitTx(call contract.Call, priority uint8) api.SubmitResult {
	id := wire.TxIDOf(call)
	if rec, ok := n.receipts.Get(id); ok && rec.Status != wire.StatusEvicted {
		return api.SubmitResult{ID: id, Verdict: mempool.VerdictDuplicate.String(), Duplicate: true}
	}
	d := n.pool.Admit(call, priority)
	res := api.SubmitResult{
		ID:         id,
		Verdict:    d.Verdict.String(),
		Admitted:   d.Verdict.Admitted(),
		Duplicate:  d.Verdict == mempool.VerdictDuplicate,
		RetryAfter: d.RetryAfter,
	}
	if res.Admitted {
		n.receipts.MarkPending(id)
	}
	for _, dr := range d.Dropped {
		n.receipts.Record(dr.ID, wire.TxReceipt{ID: dr.ID.String(), Status: wire.StatusEvicted})
	}
	return res
}

// ImportBlock implements api.Backend over AcceptBlock, folding the
// idempotent re-import case into a non-error answer.
func (n *Node) ImportBlock(b chain.Block) (alreadyKnown bool, err error) {
	if err := n.AcceptBlock(b); err != nil {
		if errors.Is(err, ErrAlreadyKnown) {
			return true, nil
		}
		return false, err
	}
	return false, nil
}

// servedHeight is the highest height the wire API exposes: the durable
// height on a durable pipelining node, the sealed head otherwise. A
// syncing follower must never hold a block the miner could lose in a
// crash and fork.
func (n *Node) servedHeight() uint64 {
	if n.prod == nil || n.log == nil {
		return n.Height()
	}
	return n.durableHeight.Load()
}

// DurableBlock implements api.Backend: the block at height, only if it
// is at or under the durability line. The crash rule covers the pull
// path — the API must never hand out a sealed-not-durable block, or a
// client could hold state the node loses in a crash.
func (n *Node) DurableBlock(height uint64) (chain.Block, bool) {
	if height > n.servedHeight() {
		return chain.Block{}, false
	}
	return n.BlockAt(height)
}

// DurableHead implements api.Backend: the newest durable block. The
// sealed chain always holds its durable prefix, so the lookup cannot
// miss; a pruned chain's base is durable by construction.
func (n *Node) DurableHead() chain.Block {
	if b, ok := n.BlockAt(n.servedHeight()); ok {
		return b
	}
	return n.Head()
}

// Snapshot implements api.Backend.
func (n *Node) Snapshot() (persist.Snapshot, error) { return n.SnapshotNow() }

// SnapshotWire implements api.Backend: the cached framed snapshot bytes
// of a durable node (immutable between checkpoint writes), or nil.
func (n *Node) SnapshotWire() []byte {
	if n.log == nil {
		return nil
	}
	return n.log.LatestSnapshotWire()
}

// BalanceAt implements api.Backend: a read of one account's balance at
// the current block boundary. It runs a one-shot serial transaction on a
// simulated thread under execMu, so the read never interleaves with an
// executing block. On a pipelining node this reads the sealed state —
// balances, unlike receipts, are a point-in-time convenience query, not
// a durability promise.
func (n *Node) BalanceAt(addr types.Address) (types.Amount, error) {
	n.execMu.Lock()
	defer n.execMu.Unlock()
	var bal types.Amount
	var readErr error
	if _, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSerial(0, th, gas.NewMeter(1_000_000), n.world.Schedule())
		bal, readErr = n.world.BalanceOf(tx, addr)
		if readErr != nil {
			_ = tx.Abort()
			return
		}
		readErr = tx.Commit()
	}); err != nil {
		return 0, fmt.Errorf("node: balance read: %w", err)
	}
	if readErr != nil {
		return 0, fmt.Errorf("node: balance read: %w", readErr)
	}
	return bal, nil
}

// ReadStamp implements api.Backend: the durable height reads are served
// at, plus how long ago it advanced in milliseconds (0 before the first
// advance — a fresh non-durable node has no staleness clock yet).
func (n *Node) ReadStamp() (uint64, int64) {
	height := n.servedHeight()
	at := n.lastDurableAt.Load()
	if at == 0 {
		return height, 0
	}
	stale := time.Now().UnixMilli() - at
	if stale < 0 {
		stale = 0
	}
	return height, stale
}

// HistoryReader materializes historical state reads — the nearest-
// snapshot-plus-tail-replay machinery lives in internal/replica, behind
// this interface so the node does not import it. Implementations must
// be safe for concurrent use and must answer with api.ErrHeightAhead /
// api.ErrHeightUnavailable sentinels for out-of-window heights.
type HistoryReader interface {
	BalanceAtHeight(addr types.Address, height uint64) (types.Amount, error)
}

// SetHistory attaches (or, with nil, detaches) the historical-read
// materializer behind GET /v1/state/{addr}?height=H.
func (n *Node) SetHistory(h HistoryReader) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.history = h
}

// historyReader reads the attached materializer.
func (n *Node) historyReader() HistoryReader {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.history
}

// BalanceAtHeight implements api.Backend: a balance read at a
// historical block height. The durability gate applies before the
// history window is consulted — a height above the served height is
// "behind" (412 on the wire) even if the live world has sealed past it,
// because a replica read must never expose a block a crash could void.
func (n *Node) BalanceAtHeight(addr types.Address, height uint64) (types.Amount, error) {
	if height > n.servedHeight() {
		return 0, fmt.Errorf("node: height %d: %w", height, api.ErrHeightAhead)
	}
	hist := n.historyReader()
	if hist == nil {
		return 0, fmt.Errorf("node: no history attached: %w", api.ErrHeightUnavailable)
	}
	return hist.BalanceAtHeight(addr, height)
}

// SetStatusDecorator forwards to the API server's status hook — the
// replica relay reports itself in GET /v1/status through this.
func (n *Node) SetStatusDecorator(fn func(*wire.Status)) {
	n.server.SetStatusDecorator(fn)
}

// APIStatus implements api.Backend: CurrentStatus in wire form (hashes
// as hex strings). The API field stays nil; the serving layer fills it.
func (n *Node) APIStatus() wire.Status {
	st := n.CurrentStatus()
	return wire.Status{
		Height:            st.Height,
		HeadHash:          st.HeadHash.String(),
		PoolLen:           st.PoolLen,
		Engine:            st.Engine,
		MinedBlocks:       st.MinedBlocks,
		ValidatedBlocks:   st.ValidatedBlocks,
		TotalRetries:      st.TotalRetries,
		DurableHeight:     st.DurableHeight,
		PipelineDepth:     st.PipelineDepth,
		InFlight:          st.InFlight,
		Persistent:        st.Persistent,
		RecoveredBlocks:   st.RecoveredBlocks,
		SnapshotHeight:    st.SnapshotHeight,
		SnapshotErrors:    st.SnapshotErrors,
		WalAppends:        st.WalAppends,
		WalBytesWritten:   st.WalBytesWritten,
		WalFsyncs:         st.WalFsyncs,
		WalFsyncMicros:    st.WalFsyncMicros,
		WalGroupCommits:   st.WalGroupCommits,
		WalMaxGroup:       st.WalMaxGroup,
		ChainBase:         st.ChainBase,
		ImportMode:        st.ImportMode,
		ImportDivergences: st.ImportDivergences,
		Mempool: &wire.MempoolStatus{
			Admitted:       st.Mempool.Admitted,
			Replaced:       st.Mempool.Replaced,
			Duplicate:      st.Mempool.Duplicate,
			RateLimited:    st.Mempool.RateLimited,
			SenderLimit:    st.Mempool.SenderLimit,
			ShardSaturated: st.Mempool.ShardSaturated,
			PoolOverloaded: st.Mempool.PoolOverloaded,
			Evicted:        st.Mempool.Evicted,
			Bytes:          st.Mempool.Bytes,
			Shards:         len(st.Mempool.ShardOccupancy),
			ShardOccupancy: st.Mempool.ShardOccupancy,
		},
	}
}
