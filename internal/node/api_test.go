package node

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"contractstm/internal/api/client"
	"contractstm/internal/api/wire"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/gas"
	"contractstm/internal/persist"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// sdkFor serves n over httptest and returns a /v1 SDK client for it.
func sdkFor(t *testing.T, n *Node) *client.Client {
	t.Helper()
	return client.New(httpNode(t, n))
}

func transferTx(from, to types.Address, amount uint64) wire.TxSubmit {
	toArg, _ := wire.EncodeArg(to)
	amtArg, _ := wire.EncodeArg(amount)
	return wire.TxSubmit{
		Sender: from.String(), Contract: tokenAddr.String(), Function: "transfer",
		Args: []wire.Arg{toArg, amtArg}, GasLimit: 100_000,
	}
}

// TestV1ErrorPaths drives every /v1 route's failure modes and checks the
// HTTP status and the stable machine-readable error code of each.
func TestV1ErrorPaths(t *testing.T) {
	w, holders := newTokenWorld(t, 2)
	n, err := New(Config{
		World: w, Workers: 2, Runner: runtime.NewSimRunner(),
		MaxGasLimit: 500_000, MaxBodyBytes: 2048,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	url := httpNode(t, n)

	okTx, _ := json.Marshal(transferTx(holders[0], holders[1], 1))
	bigTx := append(bytes.Repeat([]byte(" "), 4096), okTx...)
	overGas := transferTx(holders[0], holders[1], 1)
	overGas.GasLimit = 1_000_000
	overGasBody, _ := json.Marshal(overGas)
	badSender, _ := json.Marshal(wire.TxSubmit{Sender: "junk", Contract: tokenAddr.String(), Function: "f"})
	badArg, _ := json.Marshal(wire.TxSubmit{Sender: holders[0].String(), Contract: tokenAddr.String(),
		Function: "f", Args: []wire.Arg{{Type: "uint64", Value: "abc"}}})
	noFn, _ := json.Marshal(wire.TxSubmit{Sender: holders[0].String(), Contract: tokenAddr.String()})

	cases := []struct {
		name        string
		method      string
		path        string
		contentType string
		body        []byte
		status      int
		code        string
	}{
		{"tx bad sender", "POST", "/v1/tx", "application/json", badSender, http.StatusBadRequest, wire.CodeBadAddress},
		{"tx bad arg", "POST", "/v1/tx", "application/json", badArg, http.StatusBadRequest, wire.CodeBadArg},
		{"tx missing function", "POST", "/v1/tx", "application/json", noFn, http.StatusBadRequest, wire.CodeMissingFunction},
		{"tx malformed json", "POST", "/v1/tx", "application/json", []byte("{"), http.StatusBadRequest, wire.CodeBadRequest},
		{"tx wrong content type", "POST", "/v1/tx", "text/plain", okTx, http.StatusUnsupportedMediaType, wire.CodeUnsupportedMedia},
		{"tx oversized body", "POST", "/v1/tx", "application/json", bigTx, http.StatusRequestEntityTooLarge, wire.CodeBodyTooLarge},
		{"tx gas over max", "POST", "/v1/tx", "application/json", overGasBody, http.StatusBadRequest, wire.CodeGasLimitTooHigh},
		{"receipt bad id", "GET", "/v1/tx/zzzz", "", nil, http.StatusBadRequest, wire.CodeBadRequest},
		{"receipt unknown id", "GET", "/v1/tx/" + types.HashString("ghost").String(), "", nil, http.StatusNotFound, wire.CodeTxNotFound},
		{"mine empty pool", "POST", "/v1/mine", "application/json", []byte(`{"blockSize":5}`), http.StatusConflict, wire.CodeMineFailed},
		{"mine wrong content type", "POST", "/v1/mine", "application/gob", []byte("x"), http.StatusUnsupportedMediaType, wire.CodeUnsupportedMedia},
		{"block bad height", "GET", "/v1/blocks/notanumber", "", nil, http.StatusBadRequest, wire.CodeBadRequest},
		{"block unknown height", "GET", "/v1/blocks/99", "", nil, http.StatusNotFound, wire.CodeBlockNotFound},
		{"import junk block", "POST", "/v1/blocks", "application/octet-stream", []byte("junk"), http.StatusBadRequest, wire.CodeBadRequest},
		{"state bad address", "GET", "/v1/state/xx", "", nil, http.StatusBadRequest, wire.CodeBadAddress},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, url+tc.path, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatalf("request: %v", err)
			}
			if tc.contentType != "" {
				req.Header.Set("Content-Type", tc.contentType)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("do: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error Content-Type = %q", ct)
			}
			var envelope wire.Error
			if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
				t.Fatalf("error decode: %v", err)
			}
			if envelope.Code != tc.code {
				t.Fatalf("code = %q, want %q (msg %q)", envelope.Code, tc.code, envelope.Message)
			}
			if envelope.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// TestV1ReceiptFlow is the end-to-end acceptance path on every engine at
// pipeline depths 1 and 4: submit over the SDK, observe pending, mine,
// and read a committed receipt with gas usage and block coordinates —
// plus an aborted receipt for a transfer that must revert.
func TestV1ReceiptFlow(t *testing.T) {
	for _, ek := range engine.Kinds() {
		for _, depth := range []int{1, 4} {
			t.Run(ek.String()+"/depth"+string(rune('0'+depth)), func(t *testing.T) {
				w, holders := newTokenWorld(t, 4)
				n, err := New(Config{
					World: w, Workers: 3, Runner: runtime.NewSimRunner(), Engine: ek,
					DataDir: t.TempDir(), Persist: persist.Options{SnapshotEvery: -1},
					PipelineDepth: depth,
				})
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				defer n.Close()
				sdk := sdkFor(t, n)
				ctx := context.Background()

				ok, err := sdk.SubmitTx(ctx, transferTx(holders[0], holders[1], 25))
				if err != nil {
					t.Fatalf("submit: %v", err)
				}
				// Insufficient funds: holders hold 1000, this must abort.
				bad, err := sdk.SubmitTx(ctx, transferTx(holders[2], holders[3], 5000))
				if err != nil {
					t.Fatalf("submit aborting tx: %v", err)
				}
				for _, id := range []string{ok.ID, bad.ID} {
					rec, err := sdk.Receipt(ctx, id)
					if err != nil {
						t.Fatalf("pending receipt: %v", err)
					}
					if rec.Status != wire.StatusPending {
						t.Fatalf("pre-mine status = %q", rec.Status)
					}
				}

				if _, err := n.MineOne(10); err != nil {
					t.Fatalf("mine: %v", err)
				}
				if err := n.Flush(); err != nil {
					t.Fatalf("flush: %v", err)
				}

				rec, err := sdk.WaitReceipt(ctx, ok.ID, time.Millisecond)
				if err != nil {
					t.Fatalf("receipt: %v", err)
				}
				if rec.Status != wire.StatusCommitted || rec.GasUsed == 0 || rec.BlockHeight != 1 {
					t.Fatalf("committed receipt = %+v", rec)
				}
				abortRec, err := sdk.WaitReceipt(ctx, bad.ID, time.Millisecond)
				if err != nil {
					t.Fatalf("abort receipt: %v", err)
				}
				if abortRec.Status != wire.StatusAborted || abortRec.GasUsed == 0 || abortRec.AbortReason == "" {
					t.Fatalf("aborted receipt = %+v", abortRec)
				}
				// The state-read route works against the same node (token
				// holdings live in contract storage, not the currency
				// ledger, so the world balance is simply zero here;
				// TestV1Balance covers a funded account).
				if _, err := sdk.Balance(ctx, holders[1]); err != nil {
					t.Fatalf("balance: %v", err)
				}
			})
		}
	}
}

// TestV1BlockRange drives the range-fetch endpoint end to end: full
// windows decode in height order, requests past the durable head come
// back short (never empty), a missing starting height answers 404
// block_not_found, and malformed parameters answer 400.
func TestV1BlockRange(t *testing.T) {
	const blocks = 5
	w, holders := newTokenWorld(t, 2)
	n, err := New(Config{World: w, Workers: 2, Runner: runtime.NewSimRunner()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	url := httpNode(t, n)
	sdk := client.New(url)
	ctx := context.Background()
	for i := 0; i < blocks; i++ {
		if _, err := sdk.SubmitTx(ctx, transferTx(holders[0], holders[1], 1+uint64(i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if _, err := n.MineOne(1); err != nil {
			t.Fatalf("mine %d: %v", i, err)
		}
	}

	got, err := sdk.Blocks(ctx, 1, 3)
	if err != nil {
		t.Fatalf("Blocks(1,3): %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("Blocks(1,3) = %d blocks", len(got))
	}
	for i, b := range got {
		want, _ := n.BlockAt(uint64(i + 1))
		if b.Header.Hash() != want.Header.Hash() {
			t.Fatalf("block %d hash mismatch", i+1)
		}
	}

	// Short answer: the node serves the durable prefix it has.
	if got, err = sdk.Blocks(ctx, 4, 64); err != nil || len(got) != 2 {
		t.Fatalf("Blocks(4,64) = %d blocks, %v; want the 2-block tail", len(got), err)
	}

	// Missing starting height: 404 with the stable machine code.
	var ae *client.APIError
	if _, err = sdk.Blocks(ctx, blocks+10, 2); !errors.As(err, &ae) ||
		ae.Status != http.StatusNotFound || ae.Code != wire.CodeBlockNotFound {
		t.Fatalf("Blocks past head err = %v, want 404 %s", err, wire.CodeBlockNotFound)
	}

	// Malformed parameters: 400 bad_request, checked over raw HTTP so the
	// SDK's own validation cannot mask the server's.
	for _, q := range []string{"from=abc&count=2", "from=1&count=junk", "from=1&count=0", "from=1"} {
		resp, err := http.Get(url + "/v1/blocks?" + q)
		if err != nil {
			t.Fatalf("GET ?%s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET ?%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestV1ReceiptNotVisibleBeforeDurable parks a pipelined node with a
// sealed-not-durable block and checks the crash rule on the client API:
// the receipt stays pending and the block is unserved until the
// durability verdict lands.
func TestV1ReceiptNotVisibleBeforeDurable(t *testing.T) {
	dir := t.TempDir()
	n, calls := pipeNode(t, engine.KindSerial, dir, 2, persist.Options{SnapshotEvery: -1}, nil)
	defer n.Close()
	n.SubmitAll(calls)
	sdk := sdkFor(t, n)
	ctx := context.Background()

	// Seal a block but do not submit it to the persist stage.
	block, err := n.mineOnePipelined(recBlockSize, false)
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	txID := wire.TxIDOf(block.Calls[0]).String()

	rec, err := sdk.Receipt(ctx, txID)
	if err != nil {
		t.Fatalf("receipt while sealed-not-durable: %v", err)
	}
	if rec.Status != wire.StatusPending {
		t.Fatalf("sealed-not-durable receipt status = %q, want pending", rec.Status)
	}
	if _, err := sdk.Block(ctx, 1); !client.IsCode(err, wire.CodeBlockNotFound) {
		t.Fatalf("sealed-not-durable block served: %v", err)
	}
	if head, err := sdk.Head(ctx); err != nil || head.Number != 0 {
		t.Fatalf("head = %+v, %v (want durable height 0)", head, err)
	}

	// Release the persist stage; the verdict makes everything visible.
	n.mu.Lock()
	entry := n.inflight[0]
	n.mu.Unlock()
	n.submitEntry(entry)
	if err := n.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	rec, err = sdk.WaitReceipt(ctx, txID, time.Millisecond)
	if err != nil {
		t.Fatalf("receipt after durable: %v", err)
	}
	if rec.Status == wire.StatusPending || rec.BlockHeight != 1 {
		t.Fatalf("post-durability receipt = %+v", rec)
	}
	if _, err := sdk.Block(ctx, 1); err != nil {
		t.Fatalf("durable block not served: %v", err)
	}
}

// TestV1Subscribe covers the event stream: durable blocks arrive in
// order with receipts, and a client disconnecting mid-subscribe detaches
// cleanly (the server's subscriber count drops).
func TestV1Subscribe(t *testing.T) {
	w, holders := newTokenWorld(t, 4)
	n := newTestNode(t, w)
	sdk := sdkFor(t, n)
	ctx := context.Background()

	stream, err := sdk.Subscribe(ctx)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	sub, err := sdk.SubmitTx(ctx, transferTx(holders[0], holders[1], 3))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := n.MineOne(10); err != nil {
		t.Fatalf("mine: %v", err)
	}
	ev, err := stream.Next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if ev.Block.Number != 1 || len(ev.Receipts) != 1 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Receipts[0].ID != sub.ID || ev.Receipts[0].Status != wire.StatusCommitted {
		t.Fatalf("event receipt = %+v", ev.Receipts[0])
	}

	// Disconnect mid-subscribe: the handler must notice and detach.
	stream.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := sdk.Status(ctx)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.API != nil && st.API.Subscribers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber not detached after disconnect: %+v", st.API)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Mining after the disconnect must not block or panic.
	n.Submit(contract.Call{
		Sender: holders[1], Contract: tokenAddr, Function: "transfer",
		Args: []any{holders[0], uint64(1)}, GasLimit: 100_000,
	})
	if _, err := n.MineOne(10); err != nil {
		t.Fatalf("mine after disconnect: %v", err)
	}
}

// TestV1LegacyAliases: the unversioned routes answer exactly like their
// /v1 counterparts and carry the deprecation headers.
func TestV1LegacyAliases(t *testing.T) {
	w, holders := newTokenWorld(t, 3)
	n := newTestNode(t, w)
	url := httpNode(t, n)

	// Submit + mine through the legacy routes.
	body, _ := json.Marshal(transferTx(holders[0], holders[1], 2))
	resp, err := http.Post(url+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("legacy tx: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy tx status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy route missing Deprecation header")
	}
	var sub wire.TxSubmitted
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("legacy tx decode: %v", err)
	}
	if sub.ID == "" || sub.PoolLen != 1 {
		t.Fatalf("legacy tx response = %+v (want v1 shape with legacy poolLen)", sub)
	}
	if _, err := n.MineOne(10); err != nil {
		t.Fatalf("mine: %v", err)
	}

	// Legacy and /v1 GET routes answer byte-identically.
	for _, path := range []string{"/head", "/status", "/blocks/1", "/snapshot"} {
		legacy, err := http.Get(url + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		legacyBody, _ := io.ReadAll(legacy.Body)
		legacy.Body.Close()
		v1, err := http.Get(url + "/v1" + path)
		if err != nil {
			t.Fatalf("GET /v1%s: %v", path, err)
		}
		v1Body, _ := io.ReadAll(v1.Body)
		v1.Body.Close()
		if legacy.StatusCode != v1.StatusCode {
			t.Fatalf("%s: legacy %d vs v1 %d", path, legacy.StatusCode, v1.StatusCode)
		}
		// The status payload embeds live API request counters, which the
		// probes themselves advance, and a non-durable node re-encodes
		// its snapshot per request (gob map order is unstable) — status
		// codes and headers are the contract for those two.
		if path == "/status" || path == "/snapshot" {
			continue
		}
		if !bytes.Equal(legacyBody, v1Body) {
			t.Fatalf("%s: legacy and v1 bodies differ:\n%s\nvs\n%s", path, legacyBody, v1Body)
		}
		if legacy.Header.Get("Deprecation") != "true" || v1.Header.Get("Deprecation") == "true" {
			t.Fatalf("%s: deprecation headers wrong", path)
		}
	}
}

// TestV1Balance: the state-read route reports the world currency ledger
// at the current block boundary.
func TestV1Balance(t *testing.T) {
	w, holders := newTokenWorld(t, 2)
	// Fund holder 0 in the currency ledger at genesis (setup-time mint,
	// the same pattern the contract tests use).
	if _, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSerial(0, th, gas.NewMeter(1_000_000), w.Schedule())
		if err := w.Mint(tx, holders[0], 777); err != nil {
			t.Errorf("Mint: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	n := newTestNode(t, w)
	sdk := sdkFor(t, n)
	ctx := context.Background()
	if bal, err := sdk.Balance(ctx, holders[0]); err != nil || bal != 777 {
		t.Fatalf("funded balance = %d, %v (want 777)", bal, err)
	}
	if bal, err := sdk.Balance(ctx, holders[1]); err != nil || bal != 0 {
		t.Fatalf("unfunded balance = %d, %v (want 0)", bal, err)
	}
}

// TestV1StatusMetrics: the serving layer's request accounting shows up
// under the status document's api key.
func TestV1StatusMetrics(t *testing.T) {
	w, _ := newTokenWorld(t, 2)
	n := newTestNode(t, w)
	sdk := sdkFor(t, n)
	ctx := context.Background()

	if _, err := sdk.Head(ctx); err != nil {
		t.Fatalf("head: %v", err)
	}
	_, _ = sdk.Receipt(ctx, types.HashString("nope").String()) // a counted error
	st, err := sdk.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.API == nil {
		t.Fatal("status.api missing")
	}
	if st.API.Requests < 3 || st.API.Errors < 1 {
		t.Fatalf("api metrics = %+v", st.API)
	}
	if st.API.ByRoute["GET /v1/head"] < 1 || st.API.ByRoute["GET /v1/tx/{id}"] < 1 {
		t.Fatalf("byRoute = %+v", st.API.ByRoute)
	}
}

// TestV1SnapshotContentLength: both snapshot paths (cached wire bytes on
// a durable node, generated on a non-durable one) declare an exact
// Content-Length — proxies and the SDK rely on it.
func TestV1SnapshotContentLength(t *testing.T) {
	for _, durable := range []bool{false, true} {
		name := "generated"
		if durable {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			w, holders := newTokenWorld(t, 3)
			cfg := Config{World: w, Workers: 2, Runner: runtime.NewSimRunner()}
			if durable {
				cfg.DataDir = t.TempDir()
				cfg.Persist = persist.Options{SnapshotEvery: 1}
			}
			n, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer n.Close()
			n.Submit(contract.Call{
				Sender: holders[0], Contract: tokenAddr, Function: "transfer",
				Args: []any{holders[1], uint64(1)}, GasLimit: 100_000,
			})
			if _, err := n.MineOne(5); err != nil {
				t.Fatalf("mine: %v", err)
			}
			url := httpNode(t, n)
			resp, err := http.Get(url + "/v1/snapshot")
			if err != nil {
				t.Fatalf("GET snapshot: %v", err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("snapshot status = %d", resp.StatusCode)
			}
			cl := resp.Header.Get("Content-Length")
			if cl == "" {
				t.Fatal("snapshot response missing Content-Length")
			}
			if want := len(body); cl != itoa(want) {
				t.Fatalf("Content-Length = %s, body = %d bytes", cl, want)
			}
		})
	}
}

// TestV1ErrorLogHook: response-encoding failures reach the node-level
// error hook instead of vanishing.
func TestV1ErrorLogHook(t *testing.T) {
	w, _ := newTokenWorld(t, 2)
	var logged []error
	n, err := New(Config{
		World: w, Workers: 2, Runner: runtime.NewSimRunner(),
		ErrorLog: func(e error) { logged = append(logged, e) },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	url := httpNode(t, n)
	// A client that disconnects before the body is written forces an
	// encode error on the server side.
	req, _ := http.NewRequest(http.MethodGet, url+"/v1/status", nil)
	ctx, cancel := context.WithCancel(context.Background())
	req = req.WithContext(ctx)
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	_, _ = http.DefaultClient.Do(req)
	// The hook firing is timing-dependent (the write may win the race),
	// so only assert that hooked errors, if any, are the encode kind.
	for _, e := range logged {
		if !strings.Contains(e.Error(), "encode") {
			t.Fatalf("unexpected hooked error: %v", e)
		}
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
