package node

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"testing"

	"contractstm/internal/api/client"
	"contractstm/internal/api/wire"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/persist"
)

// chainHeight parses the X-Chain-Height header off a response.
func chainHeight(t *testing.T, resp *http.Response) uint64 {
	t.Helper()
	raw := resp.Header.Get(wire.HeaderChainHeight)
	if raw == "" {
		t.Fatalf("%s missing %s header", resp.Request.URL, wire.HeaderChainHeight)
	}
	h, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		t.Fatalf("bad %s %q: %v", wire.HeaderChainHeight, raw, err)
	}
	return h
}

// TestV1ReadStamp: every response — success or error — carries the
// served height and a staleness figure, so replica-set clients can
// track each member's freshness without extra round trips.
func TestV1ReadStamp(t *testing.T) {
	w, holders := newTokenWorld(t, 2)
	n := newTestNode(t, w)
	url := httpNode(t, n)

	resp, err := http.Get(url + "/v1/head")
	if err != nil {
		t.Fatalf("head: %v", err)
	}
	resp.Body.Close()
	if h := chainHeight(t, resp); h != 0 {
		t.Fatalf("pre-mine stamped height = %d", h)
	}

	n.Submit(contract.Call{
		Sender: holders[0], Contract: tokenAddr, Function: "transfer",
		Args: []any{holders[1], uint64(1)}, GasLimit: 100_000,
	})
	if _, err := n.MineOne(5); err != nil {
		t.Fatalf("mine: %v", err)
	}

	// The stamp rides on errors too — a 404 still tells the client how
	// fresh the answering node is.
	resp, err = http.Get(url + "/v1/blocks/99")
	if err != nil {
		t.Fatalf("missing block: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing block status = %d", resp.StatusCode)
	}
	if h := chainHeight(t, resp); h != 1 {
		t.Fatalf("post-mine stamped height = %d", h)
	}
	stale := resp.Header.Get(wire.HeaderChainStaleness)
	if ms, err := strconv.ParseInt(stale, 10, 64); err != nil || ms < 0 {
		t.Fatalf("staleness header = %q, %v", stale, err)
	}
}

// TestV1MinHeightGate: the bounded-staleness precondition. A read
// demanding a height this node has not durably reached answers 412
// replica_behind with a retry hint instead of silently serving stale
// state; a satisfied floor passes through untouched.
func TestV1MinHeightGate(t *testing.T) {
	w, holders := newTokenWorld(t, 2)
	n := newTestNode(t, w)
	url := httpNode(t, n)
	sdk := client.New(url)
	ctx := context.Background()

	if _, err := sdk.SubmitTx(ctx, transferTx(holders[0], holders[1], 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := n.MineOne(5); err != nil {
		t.Fatalf("mine: %v", err)
	}

	// Behind the floor: 412 with the machine code and a retry hint.
	resp, err := http.Get(url + "/v1/head?min_height=5")
	if err != nil {
		t.Fatalf("gated head: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("behind-floor status = %d (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("412 without Retry-After hint")
	}
	if h := chainHeight(t, resp); h != 1 {
		t.Fatalf("412 stamped height = %d", h)
	}

	// The SDK surfaces it as a typed error with the stable code.
	var ae *client.APIError
	if _, err := sdk.Head(ctx, client.WithMinHeight(5)); !errors.As(err, &ae) ||
		ae.Status != http.StatusPreconditionFailed || ae.Code != wire.CodeReplicaBehind {
		t.Fatalf("SDK gated head err = %v", err)
	}

	// Satisfied floor: normal answer.
	if head, err := sdk.Head(ctx, client.WithMinHeight(1)); err != nil || head.Number != 1 {
		t.Fatalf("satisfied floor head = %+v, %v", head, err)
	}

	// Malformed floor: the considered 400, not a silent pass.
	resp, err = http.Get(url + "/v1/head?min_height=junk")
	if err != nil {
		t.Fatalf("bad floor: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad floor status = %d", resp.StatusCode)
	}
}

// TestV1BalanceHeightErrors: the historical-read route's error contract
// on a node with no history materializer — a height past the served tip
// is 412 (retryable: the node may catch up), a height the node cannot
// materialize is 404.
func TestV1BalanceHeightErrors(t *testing.T) {
	w, holders := newTokenWorld(t, 2)
	n := newTestNode(t, w)
	sdk := sdkFor(t, n)
	ctx := context.Background()

	if _, err := sdk.SubmitTx(ctx, transferTx(holders[0], holders[1], 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := n.MineOne(5); err != nil {
		t.Fatalf("mine: %v", err)
	}

	var ae *client.APIError
	if _, err := sdk.BalanceInfo(ctx, holders[0], client.AtHeight(9)); !errors.As(err, &ae) ||
		ae.Status != http.StatusPreconditionFailed {
		t.Fatalf("ahead-of-tip err = %v", err)
	}
	if _, err := sdk.BalanceInfo(ctx, holders[0], client.AtHeight(1)); !errors.As(err, &ae) ||
		ae.Status != http.StatusNotFound || ae.Code != wire.CodeHeightUnavailable {
		t.Fatalf("no-history err = %v", err)
	}
	// The latest-read path reports the height it answered at.
	if b, err := sdk.BalanceInfo(ctx, holders[0]); err != nil || b.Height != 1 {
		t.Fatalf("latest balance = %+v, %v", b, err)
	}
}

// TestV1SubscribeReplay: a reconnecting subscriber naming its last seen
// event id receives exactly the missed events, then the live stream,
// with no duplicates across the seam.
func TestV1SubscribeReplay(t *testing.T) {
	w, holders := newTokenWorld(t, 2)
	n := newTestNode(t, w)
	sdk := sdkFor(t, n)
	ctx := context.Background()

	stream, err := sdk.Subscribe(ctx)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	amount := uint64(0)
	mine := func() {
		t.Helper()
		// Distinct amounts: admission control dedupes byte-identical
		// resubmissions.
		amount++
		if _, err := sdk.SubmitTx(ctx, transferTx(holders[0], holders[1], amount)); err != nil {
			t.Fatalf("submit: %v", err)
		}
		if _, err := n.MineOne(5); err != nil {
			t.Fatalf("mine: %v", err)
		}
	}
	mine()
	ev, err := stream.Next()
	if err != nil || ev.Block.Number != 1 {
		t.Fatalf("first event = %+v, %v", ev, err)
	}
	lastID, ok := stream.LastEventID()
	if !ok {
		t.Fatal("stream did not track the event id")
	}
	stream.Close()

	// Two blocks land while disconnected.
	mine()
	mine()

	replayStream, err := sdk.Subscribe(ctx, client.WithLastEventID(lastID))
	if err != nil {
		t.Fatalf("resubscribe: %v", err)
	}
	defer replayStream.Close()
	for want := uint64(2); want <= 3; want++ {
		ev, err := replayStream.Next()
		if err != nil {
			t.Fatalf("replayed event %d: %v", want, err)
		}
		if ev.Block.Number != want {
			t.Fatalf("replayed block = %d, want %d", ev.Block.Number, want)
		}
	}
	// The seam: a block mined after the resubscribe arrives exactly
	// once, in order.
	mine()
	if ev, err := replayStream.Next(); err != nil || ev.Block.Number != 4 {
		t.Fatalf("live event after replay = %+v, %v", ev, err)
	}
}

// TestV1SubscribeReset: an event id the broker cannot bridge (another
// node's sequence space, or a gap that outran the ring) answers with an
// explicit reset event so the client resyncs through the block range
// endpoint — the stream itself stays live afterwards.
func TestV1SubscribeReset(t *testing.T) {
	w, holders := newTokenWorld(t, 2)
	n := newTestNode(t, w)
	sdk := sdkFor(t, n)
	ctx := context.Background()

	stream, err := sdk.Subscribe(ctx, client.WithLastEventID(999))
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer stream.Close()
	if _, err := stream.Next(); !errors.Is(err, client.ErrStreamReset) {
		t.Fatalf("foreign-id Next err = %v, want ErrStreamReset", err)
	}
	// Still live after the reset.
	if _, err := sdk.SubmitTx(ctx, transferTx(holders[0], holders[1], 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := n.MineOne(5); err != nil {
		t.Fatalf("mine: %v", err)
	}
	if ev, err := stream.Next(); err != nil || ev.Block.Number != 1 {
		t.Fatalf("post-reset event = %+v, %v", ev, err)
	}
}

// TestV1ReplicaReadNeverSeesParkedBlock extends the crash-rule fixture
// to the replica read path: while a sealed block is parked short of its
// durability verdict, the read stamp stays at the durable height and a
// bounded-staleness read demanding the sealed height answers 412 — a
// replica can never leak state a crash could still void.
func TestV1ReplicaReadNeverSeesParkedBlock(t *testing.T) {
	dir := t.TempDir()
	n, calls := pipeNode(t, engine.KindSerial, dir, 2, persist.Options{SnapshotEvery: -1}, nil)
	defer n.Close()
	n.SubmitAll(calls)
	url := httpNode(t, n)
	sdk := client.New(url)
	ctx := context.Background()

	// Seal a block but park it short of the persist stage.
	if _, err := n.mineOnePipelined(recBlockSize, false); err != nil {
		t.Fatalf("seal: %v", err)
	}

	resp, err := http.Get(url + "/v1/head")
	if err != nil {
		t.Fatalf("head: %v", err)
	}
	resp.Body.Close()
	if h := chainHeight(t, resp); h != 0 {
		t.Fatalf("parked block leaked into the read stamp: height %d", h)
	}
	var ae *client.APIError
	if _, err := sdk.Head(ctx, client.WithMinHeight(1)); !errors.As(err, &ae) ||
		ae.Status != http.StatusPreconditionFailed || ae.Code != wire.CodeReplicaBehind {
		t.Fatalf("min_height=1 against parked block = %v, want 412 replica_behind", err)
	}
	// The historical route is gated by the same served height.
	if _, err := sdk.BalanceInfo(ctx, tokenAddr, client.AtHeight(1)); !errors.As(err, &ae) ||
		ae.Status != http.StatusPreconditionFailed {
		t.Fatalf("historical read at parked height = %v, want 412", err)
	}

	// Release the verdict: the same reads now pass.
	n.mu.Lock()
	entry := n.inflight[0]
	n.mu.Unlock()
	n.submitEntry(entry)
	if err := n.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if head, err := sdk.Head(ctx, client.WithMinHeight(1)); err != nil || head.Number != 1 {
		t.Fatalf("post-durability gated head = %+v, %v", head, err)
	}
}
