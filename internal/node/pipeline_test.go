package node

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/persist"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

// pipeNode builds a durable pipelined node over the deterministic
// recovery world, with a recording publish hook.
func pipeNode(t *testing.T, ek engine.Kind, dataDir string, depth int, opts persist.Options, pub func(chain.Block)) (*Node, []contract.Call) {
	t.Helper()
	world, calls := recWorld(t)
	n, err := New(Config{
		World: world, Workers: 3, Engine: ek,
		Runner:  runtime.NewSimRunner(),
		DataDir: dataDir, Persist: opts,
		PipelineDepth: depth, Publish: pub,
	})
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	return n, calls
}

// refChain mines the uninterrupted reference run synchronously and
// returns per-height head hashes and state roots.
func refChain(t *testing.T, ek engine.Kind) ([]types.Hash, []types.Hash) {
	t.Helper()
	ref, calls := recNode(t, ek, "", persist.Options{})
	ref.SubmitAll(calls)
	heads := make([]types.Hash, recBlocks+1)
	roots := make([]types.Hash, recBlocks+1)
	heads[0], roots[0] = headAndRoot(ref)
	for b := 1; b <= recBlocks; b++ {
		if _, err := ref.MineOne(recBlockSize); err != nil {
			t.Fatalf("reference mine %d: %v", b, err)
		}
		heads[b], roots[b] = headAndRoot(ref)
	}
	return heads, roots
}

// TestPipelineDepthParity: for every engine, mining through the pipeline
// at depth 2 and 4 produces bit-identical blocks to the synchronous
// depth-1 run — the pipeline overlaps stages, it must not reorder or
// alter them — and publishes every block exactly once, in height order.
func TestPipelineDepthParity(t *testing.T) {
	for _, ek := range engine.Kinds() {
		ek := ek
		t.Run(ek.String(), func(t *testing.T) {
			t.Parallel()
			refHeads, refRoots := refChain(t, ek)
			for _, depth := range []int{2, 4} {
				var mu sync.Mutex
				var published []uint64
				pub := func(b chain.Block) {
					mu.Lock()
					published = append(published, b.Header.Number)
					mu.Unlock()
				}
				n, calls := pipeNode(t, ek, t.TempDir(), depth, persist.Options{SnapshotEvery: 2}, pub)
				n.SubmitAll(calls)
				mined, err := n.MinePipelined(recBlocks, recBlockSize)
				if err != nil {
					t.Fatalf("depth %d: %v", depth, err)
				}
				if mined != recBlocks {
					t.Fatalf("depth %d: mined %d blocks, want %d", depth, mined, recBlocks)
				}
				if h, r := headAndRoot(n); h != refHeads[recBlocks] || r != refRoots[recBlocks] {
					t.Fatalf("depth %d: chain diverged from synchronous reference", depth)
				}
				st := n.CurrentStatus()
				if st.DurableHeight != uint64(recBlocks) {
					t.Fatalf("depth %d: durable height %d after flush, want %d", depth, st.DurableHeight, recBlocks)
				}
				if st.PipelineDepth != depth || st.InFlight != 0 {
					t.Fatalf("depth %d: status pipeline %d in-flight %d", depth, st.PipelineDepth, st.InFlight)
				}
				mu.Lock()
				if len(published) != recBlocks {
					t.Fatalf("depth %d: published %d blocks, want %d", depth, len(published), recBlocks)
				}
				for i, h := range published {
					if h != uint64(i+1) {
						t.Fatalf("depth %d: publish order %v", depth, published)
					}
				}
				mu.Unlock()
				if err := n.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
			}
		})
	}
}

// TestPipelineCrashRecoveryEveryStage is the pipelined extension of the
// crash-recovery property test: for every engine, at every block height,
// kill the node at each pipeline stage —
//
//	sealed-not-durable:   the block executed and advanced the sealed
//	                      chain, but its WAL record never got its fsync;
//	durable-not-published: the WAL record is durable but no peer was told.
//
// Recovery must come back to a prefix of the sealed chain — exactly the
// durable prefix — and mining on from there must reproduce the reference
// run block for block.
func TestPipelineCrashRecoveryEveryStage(t *testing.T) {
	for _, ek := range engine.Kinds() {
		ek := ek
		t.Run(ek.String(), func(t *testing.T) {
			t.Parallel()
			refHeads, refRoots := refChain(t, ek)
			opts := persist.Options{SnapshotEvery: 2}
			for kill := 1; kill <= recBlocks; kill++ {
				for _, stage := range []string{"sealed-not-durable", "durable-not-published"} {
					dir := t.TempDir()
					n, calls := pipeNode(t, ek, dir, 2, opts, nil)
					n.SubmitAll(calls)
					// Mine the fully-settled prefix.
					for b := 1; b < kill; b++ {
						if _, err := n.MineOne(recBlockSize); err != nil {
							t.Fatalf("kill=%d %s: mine %d: %v", kill, stage, b, err)
						}
					}
					if err := n.Flush(); err != nil {
						t.Fatalf("kill=%d %s: flush: %v", kill, stage, err)
					}

					// The kill block stops at the stage under test.
					durableWant := kill - 1
					switch stage {
					case "sealed-not-durable":
						// Seal block `kill` but never hand it to the persist
						// stage: the WAL must not know it.
						if _, err := n.mineOnePipelined(recBlockSize, false); err != nil {
							t.Fatalf("kill=%d: seal: %v", kill, err)
						}
					case "durable-not-published":
						// Fully persist block `kill`; the publish hook is nil,
						// so no peer ever heard of it — recovery must keep it
						// anyway, because the WAL speaks, not the gossip.
						if _, err := n.MineOne(recBlockSize); err != nil {
							t.Fatalf("kill=%d: mine: %v", kill, err)
						}
						if err := n.Flush(); err != nil {
							t.Fatalf("kill=%d: flush: %v", kill, err)
						}
						durableWant = kill
					}
					sealedHead, _ := headAndRoot(n)
					if sealedHead != refHeads[kill] {
						t.Fatalf("kill=%d %s: sealed head diverged from reference", kill, stage)
					}
					n.Kill()

					re, calls := pipeNode(t, ek, dir, 2, opts, nil)
					gotHead, gotRoot := headAndRoot(re)
					if gotHead != refHeads[durableWant] || gotRoot != refRoots[durableWant] {
						t.Fatalf("kill=%d %s: recovered to head %s, want durable prefix at height %d",
							kill, stage, gotHead.Short(), durableWant)
					}
					// The crash lost the pool; resubmit the unmined suffix
					// (FIFO consumed durableWant*blockSize calls) and mine the
					// rest of the reference chain through the pipeline.
					re.SubmitAll(calls[durableWant*recBlockSize:])
					if _, err := re.MinePipelined(recBlocks-durableWant, recBlockSize); err != nil {
						t.Fatalf("kill=%d %s: post-recovery mine: %v", kill, stage, err)
					}
					if h, r := headAndRoot(re); h != refHeads[recBlocks] || r != refRoots[recBlocks] {
						t.Fatalf("kill=%d %s: post-recovery chain diverged", kill, stage)
					}
					if err := re.Close(); err != nil {
						t.Fatalf("close: %v", err)
					}
				}
			}
		})
	}
}

// TestPipelineAbortRollsBack: a persist failure mid-pipeline voids the
// sealed-not-durable suffix — the chain rewinds to the durable prefix,
// the world matches it, the aborted calls come back in arrival order, and
// the pipeline refuses further mining with the latched error.
func TestPipelineAbortRollsBack(t *testing.T) {
	dir := t.TempDir()
	n, calls := pipeNode(t, engine.KindSerial, dir, 3, persist.Options{SnapshotEvery: -1}, nil)
	n.SubmitAll(calls)
	if _, err := n.MineOne(recBlockSize); err != nil {
		t.Fatalf("mine 1: %v", err)
	}
	if err := n.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Sabotage the WAL under the writer: the next persist verdict fails.
	if err := n.log.Close(); err != nil {
		t.Fatalf("sabotage: %v", err)
	}
	// Mine until the failure surfaces (the seal itself may succeed — the
	// verdict is asynchronous).
	for i := 0; i < 10; i++ {
		if _, err := n.MineOne(recBlockSize); err != nil {
			break
		}
	}
	if err := n.Flush(); err == nil {
		t.Fatal("flush reported success over a closed WAL")
	}
	// Rolled back to the durable prefix.
	if got := n.Height(); got != 1 {
		t.Fatalf("height %d after abort, want durable prefix 1", got)
	}
	st := n.CurrentStatus()
	if st.DurableHeight != 1 || st.InFlight != 0 {
		t.Fatalf("status durable %d in-flight %d after abort", st.DurableHeight, st.InFlight)
	}
	// Every call beyond block 1 is back, in arrival order.
	pending := n.pool.PendingCalls()
	want := calls[recBlockSize:]
	if len(pending) != len(want) {
		t.Fatalf("pool holds %d calls after abort, want %d", len(pending), len(want))
	}
	for i := range want {
		if pending[i].Sender != want[i].Sender || pending[i].Function != want[i].Function {
			t.Fatalf("pool order broken at %d after abort", i)
		}
	}
	// Latched: no new blocks.
	if _, err := n.MineOne(recBlockSize); err == nil {
		t.Fatal("latched pipeline kept mining")
	}
}

// TestPipelineStatusSealedVsDurable: the status surface distinguishes the
// sealed head from the durable head while a block is in flight.
func TestPipelineStatusSealedVsDurable(t *testing.T) {
	dir := t.TempDir()
	n, calls := pipeNode(t, engine.KindSerial, dir, 2, persist.Options{SnapshotEvery: -1}, nil)
	n.SubmitAll(calls)
	entryBlock, err := n.mineOnePipelined(recBlockSize, false)
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	st := n.CurrentStatus()
	if st.Height != 1 || st.DurableHeight != 0 || st.InFlight != 1 {
		t.Fatalf("sealed-not-durable status: height %d durable %d in-flight %d",
			st.Height, st.DurableHeight, st.InFlight)
	}
	// Resume the parked persist stage and drain.
	n.mu.Lock()
	entry := n.inflight[0]
	n.mu.Unlock()
	if entry.block.Header.Hash() != entryBlock.Header.Hash() {
		t.Fatal("in-flight registry holds a different block")
	}
	n.submitEntry(entry)
	if err := n.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	st = n.CurrentStatus()
	if st.Height != 1 || st.DurableHeight != 1 || st.InFlight != 0 {
		t.Fatalf("drained status: height %d durable %d in-flight %d",
			st.Height, st.DurableHeight, st.InFlight)
	}
	if st.WalFsyncs == 0 || st.WalAppends != 1 || st.WalBytesWritten == 0 {
		t.Fatalf("WAL metrics missing: %+v", st)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestPipelineSnapshotNowIsDurableBounded: a checkpoint served to a
// fast-syncing joiner must never describe state the miner could lose in
// a crash. On a durable node SnapshotNow always has a persisted snapshot
// to serve (openDurable checkpoints genesis unconditionally), which is
// durable by construction; the live-encode fallback additionally drains
// the pipeline window before encoding, as defense in depth. Either way
// the served height must not exceed the durable height.
func TestPipelineSnapshotNowIsDurableBounded(t *testing.T) {
	dir := t.TempDir()
	n, calls := pipeNode(t, engine.KindSerial, dir, 2, persist.Options{SnapshotEvery: -1}, nil)
	n.SubmitAll(calls)
	// Mine without flushing: the block's fsync is (at best) racing us.
	if _, err := n.MineOne(recBlockSize); err != nil {
		t.Fatalf("mine: %v", err)
	}
	s, err := n.SnapshotNow()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if durable := n.CurrentStatus().DurableHeight; s.Height() > durable {
		t.Fatalf("served snapshot at height %d above durable height %d", s.Height(), durable)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestPipelineDepthOneIsSynchronous: PipelineDepth 1 must not change
// MineOne's contract — durable before return, no in-flight window.
func TestPipelineDepthOneIsSynchronous(t *testing.T) {
	dir := t.TempDir()
	n, calls := recNode(t, engine.KindSerial, dir, persist.Options{})
	n.SubmitAll(calls)
	if _, err := n.MineOne(recBlockSize); err != nil {
		t.Fatalf("mine: %v", err)
	}
	st := n.CurrentStatus()
	if st.DurableHeight != st.Height {
		t.Fatalf("synchronous node: durable %d != height %d", st.DurableHeight, st.Height)
	}
	if st.PipelineDepth != 0 || st.InFlight != 0 {
		t.Fatalf("synchronous node reports a pipeline: %+v", st)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Sanity for the non-durable case too: DurableHeight mirrors Height.
	wl, err := workload.Generate(recParams())
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	mem, err := New(Config{World: wl.World, Workers: 1, Runner: runtime.NewSimRunner()})
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	mem.SubmitAll(wl.Calls)
	if _, err := mem.MineOne(recBlockSize); err != nil {
		t.Fatalf("mine: %v", err)
	}
	if st := mem.CurrentStatus(); st.DurableHeight != st.Height {
		t.Fatalf("in-memory node: durable %d != height %d", st.DurableHeight, st.Height)
	}
}

// TestPipelineCloseDrains: Close on a pipelining node waits for in-flight
// verdicts, writes the overdue cadence checkpoint, and saves the
// post-drain mempool, so a graceful restart resumes with exactly the
// unmined suffix.
func TestPipelineCloseDrains(t *testing.T) {
	dir := t.TempDir()
	n, calls := pipeNode(t, engine.KindSerial, dir, 2, persist.Options{SnapshotEvery: 1}, nil)
	n.SubmitAll(calls)
	if _, err := n.MineOne(recBlockSize); err != nil {
		t.Fatalf("mine: %v", err)
	}
	// No Flush: Close must drain on its own.
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The cadence checkpoint due at block 1 must be on disk now — the
	// pipelined path defers snapshots to drain points and Close is one
	// (checked before reopening, whose own cadence resume would mask it).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read dir: %v", err)
	}
	found := false
	for _, e := range entries {
		if e.Name() == "snap-0000000000000001.snap" {
			found = true
		}
	}
	if !found {
		t.Fatal("Close left the due block-1 checkpoint unwritten")
	}
	re, _ := pipeNode(t, engine.KindSerial, dir, 2, persist.Options{SnapshotEvery: 1}, nil)
	defer re.Close()
	if got := re.Height(); got != 1 {
		t.Fatalf("reopened at height %d, want 1", got)
	}
	if got, want := re.PoolLen(), len(calls)-recBlockSize; got != want {
		t.Fatalf("restored pool %d calls, want %d", got, want)
	}
}

// TestPipelineServesOnlyDurable: the wire API's pull path (GET /head,
// GET /blocks/{h}) is gated at the durable height — a syncing peer must
// never receive a sealed-not-durable block the miner could still lose.
func TestPipelineServesOnlyDurable(t *testing.T) {
	dir := t.TempDir()
	n, calls := pipeNode(t, engine.KindSerial, dir, 2, persist.Options{SnapshotEvery: -1}, nil)
	n.SubmitAll(calls)
	if _, err := n.mineOnePipelined(recBlockSize, false); err != nil {
		t.Fatalf("seal: %v", err)
	}
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()

	getJSON := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var body map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	// Sealed head is 1, durable head is 0: the wire serves 0.
	if code, head := getJSON("/head"); code != http.StatusOK || head["number"].(float64) != 0 {
		t.Fatalf("/head = %d %v, want the durable height 0", code, head["number"])
	}
	if code, _ := getJSON("/blocks/1"); code != http.StatusNotFound {
		t.Fatalf("/blocks/1 served a sealed-not-durable block (status %d)", code)
	}

	// Drain: the block becomes durable and the wire serves it.
	n.mu.Lock()
	entry := n.inflight[0]
	n.mu.Unlock()
	n.submitEntry(entry)
	if err := n.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if code, head := getJSON("/head"); code != http.StatusOK || head["number"].(float64) != 1 {
		t.Fatalf("/head = %d %v after drain, want 1", code, head["number"])
	}
	if code, _ := getJSON("/blocks/1"); code != http.StatusOK {
		t.Fatalf("/blocks/1 = %d after drain, want 200", code)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
