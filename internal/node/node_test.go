package node

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"contractstm/internal/api/wire"
	"contractstm/internal/contract"
	"contractstm/internal/contracts"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/txpool"
	"contractstm/internal/types"
)

var (
	tokenAddr = types.AddressFromUint64(0x70C3)
	issuer    = types.AddressFromUint64(0x15EE)
)

// newTokenWorld builds a world with a deployed token and funded holders.
// Both miner and validator nodes must start from identical worlds, so the
// construction is deterministic.
func newTokenWorld(t *testing.T, holders int) (*contract.World, []types.Address) {
	t.Helper()
	w, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	token, err := contracts.NewToken(w, tokenAddr, issuer, 1_000_000)
	if err != nil {
		t.Fatalf("NewToken: %v", err)
	}
	addrs := make([]types.Address, holders)
	for i := range addrs {
		addrs[i] = types.AddressFromUint64(uint64(0x4000 + i))
		if err := token.SeedBalance(w, addrs[i], 1000); err != nil {
			t.Fatalf("SeedBalance: %v", err)
		}
	}
	return w, addrs
}

func newTestNode(t *testing.T, w *contract.World) *Node {
	t.Helper()
	n, err := New(Config{World: w, Workers: 3, Runner: runtime.NewSimRunner()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestNodeMineDirectly(t *testing.T) {
	w, holders := newTokenWorld(t, 8)
	n := newTestNode(t, w)
	for i, from := range holders {
		n.Submit(contract.Call{
			Sender: from, Contract: tokenAddr, Function: "transfer",
			Args: []any{holders[(i+1)%len(holders)], uint64(10)}, GasLimit: 100_000,
		})
	}
	block, err := n.MineOne(100)
	if err != nil {
		t.Fatalf("MineOne: %v", err)
	}
	if len(block.Calls) != 8 || n.Height() != 1 || n.PoolLen() != 0 {
		t.Fatalf("block=%d height=%d pool=%d", len(block.Calls), n.Height(), n.PoolLen())
	}
	if _, err := n.MineOne(100); err == nil {
		t.Fatal("mining an empty pool succeeded")
	}
}

func TestMinerToValidatorBlockTransferDirect(t *testing.T) {
	minerWorld, holders := newTokenWorld(t, 6)
	validatorWorld, _ := newTokenWorld(t, 6)
	m := newTestNode(t, minerWorld)
	v := newTestNode(t, validatorWorld)
	if m.Head().Header.Hash() != v.Head().Header.Hash() {
		t.Fatal("genesis mismatch between nodes")
	}
	for i, from := range holders {
		m.Submit(contract.Call{
			Sender: from, Contract: tokenAddr, Function: "transfer",
			Args: []any{holders[(i+1)%len(holders)], uint64(5)}, GasLimit: 100_000,
		})
	}
	block, err := m.MineOne(100)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if err := v.AcceptBlock(block); err != nil {
		t.Fatalf("validator rejected honest block: %v", err)
	}
	if v.Height() != 1 || v.Head().Header.Hash() != m.Head().Header.Hash() {
		t.Fatal("validator chain diverged")
	}
	// Tampered block rejected and state restored.
	forged := block
	forged.Header.StateRoot = types.HashString("forged")
	if err := v.AcceptBlock(forged); err == nil {
		t.Fatal("validator accepted forged block")
	}
	if v.Height() != 1 {
		t.Fatal("rejection changed chain height")
	}
}

// httpNode serves a node over httptest and returns its base URL.
func httpNode(t *testing.T, n *Node) string {
	t.Helper()
	srv := httptest.NewServer(n.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func TestHTTPEndToEnd(t *testing.T) {
	minerWorld, holders := newTokenWorld(t, 5)
	validatorWorld, _ := newTokenWorld(t, 5)
	m := newTestNode(t, minerWorld)
	v := newTestNode(t, validatorWorld)
	minerURL := httpNode(t, m)
	validatorURL := httpNode(t, v)

	// Submit transfers over HTTP.
	for i, from := range holders {
		toArg, err := wire.EncodeArg(holders[(i+1)%len(holders)])
		if err != nil {
			t.Fatalf("EncodeArg: %v", err)
		}
		amtArg, _ := wire.EncodeArg(uint64(7))
		resp, body := postJSON(t, minerURL+"/tx", wire.TxSubmit{
			Sender:   from.String(),
			Contract: tokenAddr.String(),
			Function: "transfer",
			Args:     []wire.Arg{toArg, amtArg},
			GasLimit: 100_000,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d: %s", resp.StatusCode, body)
		}
	}

	// Mine over HTTP.
	resp, body := postJSON(t, minerURL+"/mine", map[string]int{"blockSize": 50})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine status %d: %s", resp.StatusCode, body)
	}
	var mined map[string]any
	if err := json.Unmarshal(body, &mined); err != nil {
		t.Fatalf("mine response: %v", err)
	}
	if mined["txCount"].(float64) != 5 {
		t.Fatalf("mined txCount = %v", mined["txCount"])
	}

	// Fetch the block bytes and feed them to the validator node.
	blockResp, err := http.Get(minerURL + "/blocks/1")
	if err != nil {
		t.Fatalf("GET block: %v", err)
	}
	blockBytes, _ := io.ReadAll(blockResp.Body)
	blockResp.Body.Close()
	if blockResp.StatusCode != http.StatusOK {
		t.Fatalf("get block status %d", blockResp.StatusCode)
	}
	acceptResp, err := http.Post(validatorURL+"/blocks", "application/octet-stream", bytes.NewReader(blockBytes))
	if err != nil {
		t.Fatalf("POST block: %v", err)
	}
	acceptBody, _ := io.ReadAll(acceptResp.Body)
	acceptResp.Body.Close()
	if acceptResp.StatusCode != http.StatusOK {
		t.Fatalf("accept status %d: %s", acceptResp.StatusCode, acceptBody)
	}

	// Heads agree.
	for _, url := range []string{minerURL, validatorURL} {
		headResp, err := http.Get(url + "/head")
		if err != nil {
			t.Fatalf("GET head: %v", err)
		}
		var head map[string]any
		if err := json.NewDecoder(headResp.Body).Decode(&head); err != nil {
			t.Fatalf("head decode: %v", err)
		}
		headResp.Body.Close()
		if head["number"].(float64) != 1 {
			t.Fatalf("%s height = %v", url, head["number"])
		}
	}

	// Status endpoints.
	statusResp, err := http.Get(validatorURL + "/status")
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	var st wire.Status
	if err := json.NewDecoder(statusResp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	statusResp.Body.Close()
	if st.ValidatedBlocks != 1 || st.Height != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	w, _ := newTokenWorld(t, 2)
	n := newTestNode(t, w)
	url := httpNode(t, n)
	cases := []struct {
		name string
		body any
	}{
		{"bad sender", wire.TxSubmit{Sender: "nope", Contract: tokenAddr.String(), Function: "f"}},
		{"bad contract", wire.TxSubmit{Sender: issuer.String(), Contract: "zz", Function: "f"}},
		{"missing function", wire.TxSubmit{Sender: issuer.String(), Contract: tokenAddr.String()}},
		{"bad arg type", wire.TxSubmit{Sender: issuer.String(), Contract: tokenAddr.String(), Function: "f",
			Args: []wire.Arg{{Type: "float", Value: "1"}}}},
		{"bad arg value", wire.TxSubmit{Sender: issuer.String(), Contract: tokenAddr.String(), Function: "f",
			Args: []wire.Arg{{Type: "uint64", Value: "abc"}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, url+"/tx", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d body=%s", resp.StatusCode, body)
			}
		})
	}
	// Garbage block upload.
	resp, err := http.Post(url+"/blocks", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk block status = %d", resp.StatusCode)
	}
	// Missing block.
	getResp, err := http.Get(url + "/blocks/99")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing block status = %d", getResp.StatusCode)
	}
}

func TestNodeWithSpreadPolicy(t *testing.T) {
	w, holders := newTokenWorld(t, 4)
	n, err := New(Config{World: w, Workers: 3, Runner: runtime.NewSimRunner(),
		SelectionPolicy: txpool.PolicySpread})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Repeated submissions from one sender spread across blocks.
	for i := 0; i < 6; i++ {
		n.Submit(contract.Call{
			Sender: holders[0], Contract: tokenAddr, Function: "transfer",
			Args: []any{holders[1], uint64(1)}, GasLimit: 100_000,
		})
	}
	b1, err := n.MineOne(4)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if len(b1.Calls) != 4 {
		t.Fatalf("block 1 size = %d", len(b1.Calls))
	}
	for n.PoolLen() > 0 {
		if _, err := n.MineOne(4); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
}

// TestHTTPContentType checks every JSON-speaking endpoint declares
// application/json — including error responses, where the header must be
// set before WriteHeader flushes the header block.
func TestHTTPContentType(t *testing.T) {
	w, holders := newTokenWorld(t, 3)
	n := newTestNode(t, w)
	url := httpNode(t, n)

	wantJSON := func(resp *http.Response, what string) {
		t.Helper()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s Content-Type = %q, want application/json", what, ct)
		}
	}

	// Success paths: submit, mine, head, status.
	toArg, _ := wire.EncodeArg(holders[1])
	amtArg, _ := wire.EncodeArg(uint64(1))
	resp, _ := postJSON(t, url+"/tx", wire.TxSubmit{
		Sender: holders[0].String(), Contract: tokenAddr.String(),
		Function: "transfer", Args: []wire.Arg{toArg, amtArg}, GasLimit: 100_000,
	})
	wantJSON(resp, "POST /tx")
	resp, _ = postJSON(t, url+"/mine", map[string]int{"blockSize": 10})
	wantJSON(resp, "POST /mine")
	for _, path := range []string{"/head", "/status"} {
		getResp, err := http.Get(url + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		getResp.Body.Close()
		wantJSON(getResp, "GET "+path)
	}
	// Error paths.
	resp, _ = postJSON(t, url+"/tx", wire.TxSubmit{Sender: "junk"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tx status = %d", resp.StatusCode)
	}
	wantJSON(resp, "POST /tx (error)")
	getResp, err := http.Get(url + "/blocks/99")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing block status = %d", getResp.StatusCode)
	}
	wantJSON(getResp, "GET /blocks/99 (error)")
	// Block bytes stay binary.
	blockResp, err := http.Get(url + "/blocks/1")
	if err != nil {
		t.Fatalf("GET block: %v", err)
	}
	blockResp.Body.Close()
	if ct := blockResp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("block Content-Type = %q", ct)
	}
}

// TestAcceptBlockIdempotentAndForkDetection covers the import fast paths:
// re-importing a known block is ErrAlreadyKnown (no re-execution, height
// unchanged), and a different block for a committed height is ErrFork.
func TestAcceptBlockIdempotentAndForkDetection(t *testing.T) {
	minerWorld, holders := newTokenWorld(t, 4)
	validatorWorld, _ := newTokenWorld(t, 4)
	m := newTestNode(t, minerWorld)
	v := newTestNode(t, validatorWorld)
	for i, from := range holders {
		m.Submit(contract.Call{
			Sender: from, Contract: tokenAddr, Function: "transfer",
			Args: []any{holders[(i+1)%len(holders)], uint64(2)}, GasLimit: 100_000,
		})
	}
	block, err := m.MineOne(100)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if err := v.AcceptBlock(block); err != nil {
		t.Fatalf("first import: %v", err)
	}
	if err := v.AcceptBlock(block); !errors.Is(err, ErrAlreadyKnown) {
		t.Fatalf("duplicate import err = %v, want ErrAlreadyKnown", err)
	}
	if v.Height() != 1 {
		t.Fatalf("height = %d after duplicate import", v.Height())
	}
	// A competing block at the committed height is a fork.
	forged := block
	forged.Header.StateRoot = types.HashString("other-branch")
	if err := v.AcceptBlock(forged); !errors.Is(err, ErrFork) {
		t.Fatalf("conflicting import err = %v, want ErrFork", err)
	}
	// A block from the future (height gap) is rejected cheaply.
	gap := block
	gap.Header.Number = 5
	if err := v.AcceptBlock(gap); err == nil || errors.Is(err, ErrAlreadyKnown) {
		t.Fatalf("gapped import err = %v", err)
	}
	if v.Height() != 1 {
		t.Fatalf("height = %d after rejected imports", v.Height())
	}
}
