// Package node assembles the library into a runnable service: a mempool,
// a speculative parallel miner, a deterministic parallel validator and a
// hash-linked chain behind the versioned /v1 HTTP API of internal/api.
// It is the "downstream user" layer: cmd/nodesrv serves it, and the tests
// drive a miner node and a validator node end to end over HTTP.
//
// Endpoints (see docs/API.md; legacy unversioned aliases remain for one
// release):
//
//	POST /v1/tx            {sender, contract, function, args, value, gasLimit} → {id, poolLen}
//	GET  /v1/tx/{id}       → receipt (pending | committed | aborted), durable blocks only
//	POST /v1/mine          {blockSize}       → mines one block from the pool
//	POST /v1/blocks        (gob block bytes) → validate + append (validator nodes)
//	GET  /v1/blocks/N      → gob block bytes (durable blocks only)
//	GET  /v1/head          → durable head summary JSON
//	GET  /v1/status        → height, pool depth, stats, API metrics
//	GET  /v1/state/{addr}  → account balance
//	GET  /v1/snapshot      → state checkpoint (snapshot fast-sync)
//	GET  /v1/subscribe     → SSE stream of durable blocks + receipts
//
// Transactions arrive as JSON with a small typed argument encoding
// (wire.Arg); blocks travel in the chain package's gob wire format so the
// schedule metadata survives byte-exact. Every submitted transaction gets
// a content-derived ID (wire.TxIDOf); its receipt — status, gas used,
// abort reason, block coordinates, schedule position — becomes queryable
// only once the containing block is durable, which is the crash rule
// extended to the client API.
//
// With Config.DataDir set the node is durable: every appended block goes
// to a write-ahead log before it becomes visible, state snapshots are
// written periodically, and New recovers a previous run's chain by
// loading the newest snapshot and replaying the WAL tail through the
// validator — so recovery re-verifies the published (S, H) schedules
// exactly as a peer would.
//
// With Config.PipelineDepth > 1 block production is pipelined: MineOne
// returns once a block is sealed (selected, executed, appended to the
// chain) and hands the WAL append + fsync to an asynchronous group-commit
// writer, so the disk sync of block N overlaps the execution of block
// N+1. The chain head then has two notions: the sealed height (what
// mining builds on) and the durable height (what a crash provably keeps;
// Status reports both). The crash-consistency rule: a block is published
// to peers (Config.Publish) only after its WAL record is durable, in
// height order, and a persist failure rolls the sealed-not-durable suffix
// back — world restored, chain rewound, calls requeued at their original
// arrival position. PipelineDepth 1 (the default) is the fully
// synchronous path: durable before MineOne returns, exactly the
// pre-pipeline behavior.
package node

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"contractstm/internal/api"
	"contractstm/internal/api/wire"
	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/mempool"
	"contractstm/internal/miner"
	"contractstm/internal/persist"
	"contractstm/internal/pipeline"
	"contractstm/internal/runtime"
	"contractstm/internal/storage"
	"contractstm/internal/txpool"
	"contractstm/internal/types"
	"contractstm/internal/validator"
)

// Config assembles a node.
type Config struct {
	// World is the node's contract state at the current chain head.
	World *contract.World
	// Workers is the mining/validation pool size.
	Workers int
	// Runner executes mining and validation (nil = real OS threads).
	Runner runtime.Runner
	// SelectionPolicy picks block transactions from the pool.
	SelectionPolicy txpool.Policy
	// Engine selects the block-execution strategy (default speculative).
	Engine engine.Kind
	// DataDir, when non-empty, makes the node durable: blocks append to
	// a WAL under this directory, state snapshots are written on the
	// Persist cadence, and New transparently recovers a previous run's
	// chain. World must be the same genesis world (same deterministic
	// setup) the directory was created with.
	DataDir string
	// Persist tunes WAL fsync batching and snapshot cadence; zero values
	// mean the persist package defaults. Ignored without DataDir.
	Persist persist.Options
	// PipelineDepth bounds the sealed-not-durable window: how many mined
	// blocks may await their WAL fsync while the next one executes. 0 or
	// 1 selects the synchronous path (durable before MineOne returns).
	// Depth > 1 overlaps execution with persistence; see the package
	// comment for the sealed/durable distinction and the abort rule.
	PipelineDepth int
	// Publish, when non-nil, is called for every locally mined block once
	// it is durable (or immediately after sealing on a node without a
	// DataDir), serially and in height order — the safe point to announce
	// a block to peers. The hook must not call back into the node.
	Publish func(chain.Block)
	// DefaultBlockSize caps mined blocks when a mine request leaves the
	// size unset (0 = api.DefaultBlockSize, 100).
	DefaultBlockSize int
	// DefaultGasLimit is assigned to submitted transactions that leave
	// the gas limit unset (0 = api.DefaultGasLimit, 1e6).
	DefaultGasLimit uint64
	// MaxGasLimit rejects API-submitted transactions whose gas limit
	// exceeds it (0 = api.DefaultMaxGasLimit, 1e8).
	MaxGasLimit uint64
	// MaxBodyBytes bounds JSON request bodies on the API
	// (0 = api.DefaultMaxBodyBytes, 1 MiB).
	MaxBodyBytes int64
	// ReceiptCapacity bounds the in-memory receipt index
	// (0 = api.DefaultReceiptCapacity).
	ReceiptCapacity int
	// SubscriberBuffer sizes each /v1/subscribe subscriber's event
	// buffer (0 = api.DefaultSubscriberBuffer). Relay nodes serving many
	// downstream subscribers raise it.
	SubscriberBuffer int
	// EventReplayDepth is how many published events the broker retains
	// for Last-Event-ID reconnect replay (0 = api.DefaultEventReplayDepth,
	// negative disables replay).
	EventReplayDepth int
	// ErrorLog receives node- and API-level serving faults that would
	// otherwise be swallowed (response-encoding failures and the like).
	// Nil logs to the standard logger.
	ErrorLog func(error)
	// Mempool tunes the sharded pool and its admission pipeline (shard
	// count, per-sender slots and rate limits, byte budget). Zero-value
	// limits are permissive — the node behaves like the single-lock
	// pool. The clock (Mempool.Now) defaults to time.Now; the pool
	// itself never reads the wall clock.
	Mempool mempool.Config
	// ImportMode is the staged-import rollout switch (off|shadow|on);
	// see ImportMode's doc comment. The zero value is ImportOff: catch-up
	// sync stays on the serial one-block-at-a-time path.
	ImportMode ImportMode
}

// Node is a single in-process blockchain node.
type Node struct {
	// mu guards the bookkeeping state: chain, pool interactions tied to
	// chain state, and counters. It is never held across a block
	// execution, so status queries stay responsive while a block mines.
	mu sync.Mutex
	// execMu serializes world-mutating block work (mining and foreign-
	// block validation): the world advances one block at a time.
	execMu  sync.Mutex
	world   *contract.World
	chain   *chain.Chain
	pool    *mempool.Pool
	workers int
	runner  runtime.Runner
	policy  txpool.Policy
	eng     engine.Engine
	// log is the durable persistence log (nil without Config.DataDir).
	log *persist.Log
	// snapEvery is the snapshot cadence in blocks (<=0 disables);
	// sinceSnap counts appends since the last snapshot (both guarded by
	// execMu, not n.mu — see maybeSnapshot).
	snapEvery int
	sinceSnap int
	// snapshotErrs counts failed checkpoint writes (atomic: bumped under
	// execMu, read by CurrentStatus under n.mu). Non-zero means the WAL
	// is growing unpruned and recovery time with it — a durable node
	// whose snapshots silently stopped is a monitoring fact, not a
	// detail to swallow.
	snapshotErrs atomic.Int64
	// lastSnapHeight mirrors the log's newest snapshot height (atomic),
	// so CurrentStatus never calls into the persist.Log — whose mutex
	// Append/WriteSnapshot hold across fsyncs — while holding n.mu.
	lastSnapHeight atomic.Uint64
	// recoveredBlocks counts blocks replayed from the WAL by New.
	recoveredBlocks int
	// writer is the asynchronous group-commit WAL appender (nil unless
	// the node is durable with PipelineDepth > 1). All WAL block appends
	// go through it when present, so mined and imported blocks serialize
	// in one queue.
	writer *persist.Writer
	// prod coordinates the pipelined block lifecycle (nil when
	// PipelineDepth <= 1): window admission, back-pressure and the abort
	// pass on persist failure.
	prod *pipeline.Producer
	// inflight is the sealed-not-durable registry, oldest first. Entries
	// are appended under execMu (at seal) and popped from the front as
	// durability verdicts arrive; the abort pass drains it wholesale.
	// Guarded by n.mu.
	inflight []*inflightEntry
	// durableHeight is the newest block acknowledged by the persistence
	// layer (atomic; equals the sealed height on a non-durable node).
	durableHeight atomic.Uint64
	// lastDurableAt is when the durable height last advanced, in unix
	// milliseconds (atomic; 0 until the first advance). The API's
	// X-Chain-Staleness header derives from it.
	lastDurableAt atomic.Int64
	// history, when attached (SetHistory), materializes historical state
	// reads for the API's ?height=H queries. Guarded by n.mu.
	history HistoryReader
	// publish is the post-durability announce hook (Config.Publish;
	// guarded by n.mu so SetPublish can install it after construction).
	publish func(chain.Block)
	// receipts indexes per-transaction execution results by content-
	// derived ID; entries are recorded only once the containing block is
	// durable (the crash rule extends to the client API). events fans
	// durable blocks out to /v1/subscribe streams.
	receipts *api.ReceiptStore
	events   *api.Broker
	// server is the /v1 API layer (built once; Handler returns it).
	server *api.Server
	// errLog is the serving-fault hook (Config.ErrorLog or std log).
	errLog func(error)
	// importMode is the staged-import rollout switch (fixed at
	// construction); importDivergences counts shadow-mode verdict
	// disagreements between the pipeline's Phase A and the serial
	// recomputation (atomic: bumped under execMu, read by status).
	importMode        ImportMode
	importDivergences atomic.Int64
	// stats
	minedBlocks     int
	validatedBlocks int
	totalRetries    int
}

// inflightEntry is one sealed block awaiting its durability verdict,
// with everything the abort pass needs to un-seal it.
type inflightEntry struct {
	block chain.Block
	// sel returns the block's calls to their arrival position on abort.
	sel mempool.Selection
	// snap is the world state before the block executed.
	snap storage.Snapshot
	// retries is the block's execution retry count, un-tallied on abort.
	retries int
}

// New creates a node whose genesis commits to the world's current state.
func New(cfg Config) (*Node, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("node: nil world")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Runner == nil {
		cfg.Runner = runtime.NewOSRunner(nil)
	}
	if cfg.SelectionPolicy == 0 {
		cfg.SelectionPolicy = txpool.PolicyFIFO
	}
	if cfg.Engine == 0 {
		cfg.Engine = engine.KindSpeculative
	}
	eng, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	root, err := cfg.World.StateRoot()
	if err != nil {
		return nil, fmt.Errorf("node: state root: %w", err)
	}
	poolCfg := cfg.Mempool
	if poolCfg.Now == nil {
		poolCfg.Now = time.Now
	}
	n := &Node{
		world:   cfg.World,
		chain:   chain.New(root),
		pool:    mempool.New(poolCfg),
		workers: cfg.Workers,
		runner:  cfg.Runner,
		policy:  cfg.SelectionPolicy,
		eng:     eng,
	}
	n.importMode = cfg.ImportMode
	n.errLog = cfg.ErrorLog
	if n.errLog == nil {
		n.errLog = func(err error) { log.Printf("node: %v", err) }
	}
	n.receipts = api.NewReceiptStore(cfg.ReceiptCapacity)
	replayDepth := cfg.EventReplayDepth
	if replayDepth == 0 {
		replayDepth = api.DefaultEventReplayDepth
	} else if replayDepth < 0 {
		replayDepth = 0
	}
	n.events = api.NewBrokerRetaining(replayDepth)
	if cfg.DataDir != "" {
		if err := n.openDurable(cfg, root); err != nil {
			// Release the directory lock a partially-opened log holds, or
			// the next open attempt would fail with ErrLocked instead of
			// the real problem.
			if n.log != nil {
				_ = n.log.Close()
			}
			return nil, err
		}
	}
	n.publish = cfg.Publish
	if cfg.PipelineDepth > 1 {
		if n.log != nil {
			n.writer = persist.NewWriter(n.log)
		}
		n.prod = pipeline.New(cfg.PipelineDepth, n.abortPipeline)
	}
	n.server = api.NewServer(api.Config{
		Backend:          n,
		Receipts:         n.receipts,
		Events:           n.events,
		DefaultBlockSize: cfg.DefaultBlockSize,
		DefaultGasLimit:  cfg.DefaultGasLimit,
		MaxGasLimit:      cfg.MaxGasLimit,
		MaxBodyBytes:     cfg.MaxBodyBytes,
		SubscriberBuffer: cfg.SubscriberBuffer,
		ErrorLog:         n.errLog,
	})
	return n, nil
}

// SetPublish installs (or replaces) the post-durability publish hook.
// Call it before mining starts: a hook swapped mid-pipeline may miss
// blocks already past their publish stage.
func (n *Node) SetPublish(f func(chain.Block)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.publish = f
}

// publishHook reads the current hook.
func (n *Node) publishHook() func(chain.Block) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.publish
}

// openDurable opens the persistence log and recovers a previous run:
// restore the newest snapshot, replay the WAL tail through the
// validator, and restore the saved mempool. A fresh directory records a
// permanent genesis identity marker plus a restorable genesis snapshot;
// every reopen verifies the marker, so a data dir from a different
// genesis world fails loudly instead of being silently adopted — even
// after snapshot retention has pruned the genesis snapshot itself.
func (n *Node) openDurable(cfg Config, genesisRoot types.Hash) error {
	log, err := persist.Open(cfg.DataDir, cfg.Persist)
	if err != nil {
		return fmt.Errorf("node: %w", err)
	}
	opts := cfg.Persist.WithDefaults()
	n.log = log
	n.snapEvery = opts.SnapshotEvery

	if err := log.EnsureGenesis(chain.GenesisHeader(genesisRoot)); err != nil {
		return fmt.Errorf("node: %w", err)
	}
	snap := log.LatestSnapshot()
	switch {
	case snap == nil:
		// Fresh directory: checkpoint genesis.
		state, err := n.world.EncodeState()
		if err != nil {
			return fmt.Errorf("node: encode genesis state: %w", err)
		}
		if err := log.WriteSnapshot(persist.Snapshot{Header: chain.GenesisHeader(genesisRoot), State: state}); err != nil {
			return fmt.Errorf("node: genesis snapshot: %w", err)
		}
	case snap.Height() == 0:
		if snap.Header != chain.GenesisHeader(genesisRoot) {
			return fmt.Errorf("node: data dir %s belongs to a different genesis (snapshot root %s, world root %s)",
				cfg.DataDir, snap.Header.StateRoot.Short(), genesisRoot.Short())
		}
	default:
		if err := n.world.RestoreState(snap.State); err != nil {
			return fmt.Errorf("node: snapshot %d: %w", snap.Height(), err)
		}
		root, err := n.world.StateRoot()
		if err != nil {
			return fmt.Errorf("node: state root: %w", err)
		}
		if root != snap.Header.StateRoot {
			return fmt.Errorf("node: snapshot %d state hashes to %s, header claims %s",
				snap.Height(), root.Short(), snap.Header.StateRoot.Short())
		}
		n.chain = chain.NewAt(snap.Header)
	}

	// Replay the WAL tail through the full validation path: recovery
	// re-verifies every published schedule, so corrupt-but-well-framed
	// records cannot smuggle state in.
	from := n.chain.Head().Header.Number + 1
	if err := log.Blocks(from, func(b chain.Block) error {
		if err := n.replayBlock(b); err != nil {
			return err
		}
		n.recoveredBlocks++
		return nil
	}); err != nil {
		return fmt.Errorf("node: recover: %w", err)
	}

	calls, err := log.TakePool()
	if err != nil {
		return fmt.Errorf("node: recover pool: %w", err)
	}
	if len(calls) > 0 {
		// Restored calls were admitted in a previous life; they re-enter
		// through the trusted path, never re-run admission.
		n.pool.SubmitAllTrusted(calls)
	}

	// Resume the snapshot cadence where the previous run left it: the
	// replayed WAL tail counts against it, and an overdue checkpoint is
	// written now. Otherwise a node that crashes more often than every
	// SnapshotEvery blocks would never snapshot past genesis, and its
	// WAL — and recovery time — would grow without bound.
	if s := log.LatestSnapshot(); s != nil {
		n.lastSnapHeight.Store(s.Height())
		n.sinceSnap = int(n.chain.Head().Header.Number - s.Height())
		n.maybeSnapshot(0)
	}
	// Everything recovered from disk is by definition durable.
	n.markDurable(n.chain.Head().Header.Number)
	return nil
}

// replayBlock validates and appends one recovered block. Only New calls
// it, before the node is shared, so no locking.
func (n *Node) replayBlock(b chain.Block) error {
	snap := n.world.Snapshot()
	if _, err := validator.Validate(n.runner, n.world, b, validator.Config{Workers: n.workers}); err != nil {
		n.world.Restore(snap)
		return err
	}
	if err := n.chain.Append(b); err != nil {
		n.world.Restore(snap)
		return err
	}
	// Replayed blocks are durable by definition — their receipts are
	// queryable from the moment the node comes back up.
	n.recordDurable(b)
	return nil
}

// RecoveredBlocks reports how many blocks New replayed from the WAL.
func (n *Node) RecoveredBlocks() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.recoveredBlocks
}

// Flush drains the pipeline: it blocks until every sealed block has its
// durability verdict (and any abort pass has finished), then reports the
// pipeline's latched error, if any. A node without a pipeline is always
// drained. Do not call from a publish hook.
func (n *Node) Flush() error {
	if n.prod == nil {
		return nil
	}
	if err := n.prod.Flush(); err != nil {
		return fmt.Errorf("node: %w", err)
	}
	return nil
}

// Close persists the pending mempool and cleanly closes the WAL, first
// draining the pipeline so the mempool snapshot reflects every abort. A
// node without a DataDir has nothing to do beyond the drain. The node
// must be quiescent (callers stop serving first); mining after Close
// fails on the closed log.
func (n *Node) Close() error {
	flushErr := n.Flush()
	if n.writer != nil {
		// The writer's latched error, if any, already surfaced in Flush.
		_ = n.writer.Close()
	}
	n.execMu.Lock()
	defer n.execMu.Unlock()
	// The pipelined path defers cadence checkpoints to drain points, and
	// shutdown is the last one: an overdue snapshot writes now, so a node
	// whose mining stopped exactly at a cadence boundary matches the
	// synchronous path's disk state instead of leaving the whole WAL tail
	// for the next recovery to replay.
	if flushErr == nil {
		n.maybeSnapshot(0)
	}
	// n.mu guards the bookkeeping reads only; the pool save and WAL close
	// run outside it (execMu, still held, keeps the world quiescent, and
	// persist.Log serializes its own I/O internally).
	n.mu.Lock()
	log := n.log
	var pending []contract.Call
	if log != nil {
		pending = n.pool.PendingCalls()
	}
	n.mu.Unlock()
	if log == nil {
		return flushErr
	}
	if err := log.SavePool(pending); err != nil {
		return fmt.Errorf("node: close: %w", err)
	}
	if err := log.Close(); err != nil {
		return fmt.Errorf("node: close: %w", err)
	}
	return flushErr
}

// Kill simulates a crash: the WAL file handles and the data-dir lock are
// released so the directory can be reopened, but nothing graceful
// happens — no pool save, no shutdown courtesy. The durable state is
// exactly what the WAL already holds, which is the point: crash tests
// and demos recover from this. (An actual process kill releases the
// lock the same way, since advisory locks die with their descriptors.)
func (n *Node) Kill() {
	// A crashing pipeline runs no abort passes — the process is "gone",
	// so its in-memory world is nobody's business; only the WAL speaks.
	if n.prod != nil {
		n.prod.Latch(persist.ErrClosed)
	}
	if n.writer != nil {
		n.writer.Kill()
	}
	n.execMu.Lock()
	defer n.execMu.Unlock()
	n.mu.Lock()
	log := n.log
	n.mu.Unlock()
	if log != nil {
		_ = log.Close()
	}
}

// Submit queues a transaction and tracks it as pending in the receipt
// index, so a client polling the content-derived ID reads "pending"
// rather than "unknown" until the containing block is durable. The ID is
// returned so serving layers derive it exactly once.
func (n *Node) Submit(call contract.Call) types.Hash {
	id := wire.TxIDOf(call)
	n.receipts.MarkPending(id)
	n.pool.SubmitTrusted(call)
	return id
}

// SubmitAll queues a batch of transactions atomically: no other
// submitter's calls interleave inside the batch. Like Submit, this is
// the trusted intake — admission control (dedup, caps, rate limits)
// applies only to the API path (SubmitTx), because the node's own
// batches may legitimately contain byte-identical calls.
func (n *Node) SubmitAll(calls []contract.Call) {
	for _, c := range calls {
		n.receipts.MarkPending(wire.TxIDOf(c))
	}
	n.pool.SubmitAllTrusted(calls)
}

// recordDurable indexes a durable block's receipts and fans the block
// out to event-stream subscribers. It is called exactly at the points
// where a block crosses the durability line: the synchronous mine path,
// the pipelined durability verdict, foreign-block import, and WAL
// recovery — never for a sealed-not-durable block, which a crash could
// still void.
func (n *Node) recordDurable(b chain.Block) {
	recs := wire.ReceiptsOf(b)
	for i, c := range b.Calls {
		n.receipts.Record(wire.TxIDOf(c), recs[i])
	}
	n.events.Publish(wire.Event{Block: wire.BlockInfoOf(b), Receipts: recs})
}

// markDurable advances the durable height and stamps when it happened —
// the staleness clock behind the API's X-Chain-Staleness header. Every
// durable-height advance funnels through here.
func (n *Node) markDurable(height uint64) {
	n.durableHeight.Store(height)
	n.lastDurableAt.Store(time.Now().UnixMilli())
}

// PoolLen reports queued transactions.
func (n *Node) PoolLen() int { return n.pool.Len() }

// chainRef reads the chain pointer safely: InstallSnapshot swaps it at
// runtime (holding both execMu and n.mu), so readers must hold one of
// the two; the public accessors hold neither, hence this helper.
func (n *Node) chainRef() *chain.Chain {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.chain
}

// Height returns the chain height (genesis = 0).
func (n *Node) Height() uint64 {
	return n.chainRef().Head().Header.Number
}

// Head returns the chain head.
func (n *Node) Head() chain.Block { return n.chainRef().Head() }

// BlockAt returns a block by height.
func (n *Node) BlockAt(h uint64) (chain.Block, bool) { return n.chainRef().BlockAt(h) }

// MineOne selects up to blockSize transactions, executes them with the
// node's engine, appends the block and reports conflict feedback to the
// pool. It returns the sealed block. With PipelineDepth <= 1 the block is
// durable (per the WAL sync policy) before MineOne returns; with a deeper
// pipeline the persist + publish stages complete asynchronously, and a
// later persist failure rolls the block back and requeues its calls — see
// the package comment.
//
// Locking: execMu serializes the world mutation end to end, but n.mu is
// only taken for the short bookkeeping sections (selection against the
// current head, then seal-and-append), never across the execution itself.
func (n *Node) MineOne(blockSize int) (chain.Block, error) {
	if n.prod != nil {
		return n.mineOnePipelined(blockSize, true)
	}
	n.execMu.Lock()
	defer n.execMu.Unlock()

	sel, res, snap, err := n.executeSeal(blockSize)
	if err != nil {
		return chain.Block{}, err
	}

	// WAL first: a block must be durable before it becomes visible.
	// Persistence I/O runs under execMu alone — execMu already serializes
	// every appender, and fsyncs must not stall status queries on n.mu.
	// execMu also guarantees the seal raced nobody, so the chain append
	// after a successful WAL write cannot fail short of a bug.
	if err := n.persistBlock(res.Block); err != nil {
		n.world.Restore(snap)
		n.pool.RequeueBatch(sel)
		return chain.Block{}, fmt.Errorf("node: persist: %w", err)
	}
	n.markDurable(res.Block.Header.Number)

	n.mu.Lock()
	err = n.chain.Append(res.Block)
	if err == nil {
		n.reportFeedbackLocked(sel.Calls, res)
		n.minedBlocks++
		n.totalRetries += res.Stats.Retries
	}
	n.mu.Unlock()
	if err != nil {
		n.world.Restore(snap)
		n.pool.RequeueBatch(sel)
		return chain.Block{}, fmt.Errorf("node: append: %w", err)
	}
	// Durable and appended: receipts become visible and the block goes to
	// event-stream subscribers, before the peer publish hook so a peer
	// notified of the block can immediately query its receipts here.
	n.recordDurable(res.Block)
	n.maybeSnapshot(1)
	if publish := n.publishHook(); publish != nil {
		publish(res.Block)
	}
	return res.Block, nil
}

// executeSeal is the select + execute + seal stage shared by the
// synchronous and pipelined paths: pick a batch against the current head,
// run it through the engine and seal the result. On failure the world is
// restored and the batch requeued at its arrival position. Caller holds
// execMu; the returned snapshot is the world state before the block (the
// pipelined abort path restores it).
func (n *Node) executeSeal(blockSize int) (mempool.Selection, miner.Result, storage.Snapshot, error) {
	n.mu.Lock()
	sel, err := n.pool.SelectBatch(n.policy, blockSize)
	parent := n.chain.Head().Header
	n.mu.Unlock()
	if err != nil {
		return mempool.Selection{}, miner.Result{}, storage.Snapshot{}, fmt.Errorf("node: select: %w", err)
	}

	// Snapshot the world, execute outside n.mu, seal under it. execMu
	// guarantees the parent header cannot move underneath us.
	snap := n.world.Snapshot()
	res, err := miner.Mine(n.eng, n.runner, n.world, parent, sel.Calls,
		engine.Options{Workers: n.workers})
	if err != nil {
		n.world.Restore(snap)
		// The selection was destructive; a failed attempt must not lose
		// the clients' transactions.
		n.pool.RequeueBatch(sel)
		return mempool.Selection{}, miner.Result{}, storage.Snapshot{}, fmt.Errorf("node: mine: %w", err)
	}
	return sel, res, snap, nil
}

// reportFeedbackLocked feeds the engine's conflict observations back to
// the pool: retried transactions always (the spread policy's signal), and
// the full happens-before pair structure when the lock-hint policy is
// active. Caller holds n.mu.
func (n *Node) reportFeedbackLocked(calls []contract.Call, res miner.Result) {
	var conflicted []contract.Call
	for _, id := range res.Stats.RetriedTxs {
		conflicted = append(conflicted, calls[id])
	}
	n.pool.ReportConflicts(conflicted)
	if n.policy == txpool.PolicyLockHint && len(res.Stats.ConflictPairs) > 0 {
		pairs := make([][2]contract.Call, 0, len(res.Stats.ConflictPairs))
		for _, pr := range res.Stats.ConflictPairs {
			pairs = append(pairs, [2]contract.Call{calls[pr[0]], calls[pr[1]]})
		}
		n.pool.ReportConflictPairs(pairs)
	}
}

// mineOnePipelined runs the staged path: admit into the window (blocking
// while PipelineDepth blocks await their fsync — the back-pressure rule),
// seal the next block on the sealed head, register it in the in-flight
// list and hand it to the persist stage. With submit=false the block is
// left sealed-but-unsubmitted — the crash tests' way of parking the node
// at an exact pipeline stage.
func (n *Node) mineOnePipelined(blockSize int, submit bool) (chain.Block, error) {
	if err := n.prod.Admit(); err != nil {
		return chain.Block{}, fmt.Errorf("node: %w", err)
	}
	n.execMu.Lock()
	// A failure latched while we waited for the window: nothing may seal
	// on a suffix the abort pass is (or will be) rolling back.
	if err := n.prod.Err(); err != nil {
		n.execMu.Unlock()
		n.prod.Release()
		return chain.Block{}, fmt.Errorf("node: %w", err)
	}
	// Snapshot cadence: checkpoints need a durable boundary, so when one
	// is due the window drains first — a periodic group boundary.
	if err := n.maybeSnapshotPipelined(); err != nil {
		n.execMu.Unlock()
		n.prod.Release()
		return chain.Block{}, fmt.Errorf("node: %w", err)
	}

	sel, res, snap, err := n.executeSeal(blockSize)
	if err != nil {
		n.execMu.Unlock()
		n.prod.Release()
		return chain.Block{}, err
	}

	// Seal the chain head forward — sealed, not yet durable — and
	// register the entry before execMu drops, so the abort pass (which
	// runs under execMu) always sees every sealed block.
	entry := &inflightEntry{block: res.Block, sel: sel, snap: snap, retries: res.Stats.Retries}
	n.mu.Lock()
	err = n.chain.Append(res.Block)
	if err == nil {
		n.inflight = append(n.inflight, entry)
		n.reportFeedbackLocked(sel.Calls, res)
		n.minedBlocks++
		n.totalRetries += res.Stats.Retries
	}
	n.mu.Unlock()
	if err != nil {
		n.world.Restore(snap)
		n.pool.RequeueBatch(sel)
		n.execMu.Unlock()
		n.prod.Release()
		return chain.Block{}, fmt.Errorf("node: append: %w", err)
	}
	n.sinceSnap++ // sealed blocks count toward the cadence (execMu)
	// Hand off to the persist stage while still holding execMu: WAL
	// queue order must match chain order even against a concurrent
	// AcceptBlock. Enqueue never blocks on I/O.
	if submit {
		n.submitEntry(entry)
	}
	n.execMu.Unlock()
	return res.Block, nil
}

// submitEntry hands a sealed block to the persist stage. On a durable
// node the group-commit writer owns the fsync; without one there is
// nothing to wait for and the entry completes on the spot.
func (n *Node) submitEntry(e *inflightEntry) {
	if n.writer != nil {
		n.writer.Enqueue(e.block, func(err error) { n.entryDurable(e, err) })
		return
	}
	n.entryDurable(e, nil)
}

// entryDurable is the persist stage's verdict callback: on success the
// entry leaves the in-flight registry, the durable height advances and
// the block is published; on failure the producer schedules the abort
// pass. Verdicts arrive serially in height order (the writer goroutine
// delivers them), which is what makes the publish hook's ordering
// guarantee hold.
func (n *Node) entryDurable(e *inflightEntry, err error) {
	if err != nil {
		n.prod.Complete(err)
		return
	}
	n.mu.Lock()
	if len(n.inflight) > 0 && n.inflight[0] == e {
		n.inflight = n.inflight[1:]
	}
	publish := n.publish
	n.mu.Unlock()
	n.markDurable(e.block.Header.Number)
	// The durability line: receipts for this block become queryable now,
	// never at seal time — a crash between seal and this verdict voids
	// the block, and served receipts must not outlive their block.
	n.recordDurable(e.block)
	if publish != nil {
		publish(e.block)
	}
	n.prod.Complete(nil)
}

// abortPipeline is the producer's abort pass: a persist failure voids
// every sealed-not-durable block. The world rolls back to the oldest
// failed block's pre-state, the chain rewinds under it, and every failed
// batch goes back to the pool at its original arrival position — which is
// why RequeueBatch merges by arrival order rather than trusting abort
// order. Runs under execMu so it cannot race a concurrent seal.
func (n *Node) abortPipeline(cause error) {
	n.execMu.Lock()
	defer n.execMu.Unlock()
	n.mu.Lock()
	entries := n.inflight
	n.inflight = nil
	n.mu.Unlock()
	if len(entries) == 0 {
		return
	}
	oldest := entries[0]
	n.world.Restore(oldest.snap)
	n.mu.Lock()
	// Rewind cannot fail: sealed blocks sit strictly above the base.
	_ = n.chain.RewindTo(oldest.block.Header.Number - 1)
	n.minedBlocks -= len(entries)
	for _, e := range entries {
		// The aborted blocks' execution stats leave the tallies too, or
		// retries-per-mined-block reads would count phantom blocks.
		n.totalRetries -= e.retries
	}
	n.mu.Unlock()
	for _, e := range entries {
		n.pool.RequeueBatch(e.sel)
	}
	if n.sinceSnap -= len(entries); n.sinceSnap < 0 {
		n.sinceSnap = 0
	}
}

// maybeSnapshotPipelined drains the pipeline window and writes the due
// checkpoint, if any. Caller holds execMu. A latched writer surfaces its
// error; the caller backs off and lets the abort pass run.
func (n *Node) maybeSnapshotPipelined() error {
	if n.log == nil || n.snapEvery <= 0 || n.sinceSnap < n.snapEvery {
		return nil
	}
	if err := n.writer.Flush(); err != nil {
		return fmt.Errorf("pipeline flush: %w", err)
	}
	// Window drained: sealed == durable, the world sits exactly at the
	// chain head, and the checkpoint describes a recoverable boundary.
	n.maybeSnapshot(0)
	return nil
}

// persistBlock appends b to the WAL (no-op without persistence),
// returning once the block is acknowledged per the sync policy. On a
// pipelining node the write goes through the group-commit writer so it
// serializes behind any in-flight mined blocks. Caller holds execMu;
// n.mu is not needed and deliberately not held across the disk write.
func (n *Node) persistBlock(b chain.Block) error {
	if n.log == nil {
		return nil
	}
	if n.writer != nil {
		return n.writer.Append(b)
	}
	return n.log.Append(b)
}

// maybeSnapshot advances the cadence counter by delta blocks and writes
// a state checkpoint when it is due. The world is exactly at the chain
// head here: the caller holds execMu (which guards n.sinceSnap and keeps
// the chain pointer stable; n.mu is deliberately NOT held across the
// state encoding and snapshot fsyncs). A failed snapshot is dropped
// rather than failing the block: the WAL already holds the block, so
// durability is intact and only recovery speed suffers; the next cadence
// tick tries again — and the failure shows in Status.SnapshotErrors.
func (n *Node) maybeSnapshot(delta int) {
	if n.log == nil || n.snapEvery <= 0 {
		return
	}
	n.sinceSnap += delta
	if n.sinceSnap < n.snapEvery {
		return
	}
	n.sinceSnap = 0
	state, err := n.world.EncodeState()
	if err != nil {
		n.snapshotErrs.Add(1)
		return
	}
	head := n.chain.Head().Header
	if err := n.log.WriteSnapshot(persist.Snapshot{Header: head, State: state}); err != nil {
		n.snapshotErrs.Add(1)
		return
	}
	n.lastSnapHeight.Store(head.Number)
}

// Errors reported by block import.
var (
	// ErrAlreadyKnown reports an import of a block the chain already
	// holds. Imports are idempotent: callers (gossip, catch-up sync) may
	// treat it as success.
	ErrAlreadyKnown = errors.New("node: block already known")
	// ErrFork reports an import that conflicts with a different block
	// already committed at the same height — chain divergence.
	ErrFork = errors.New("node: fork: conflicting block for committed height")
)

// AcceptBlock validates a foreign block against the node's state and
// appends it — the validator-node path. On rejection the world state is
// restored. Like MineOne, it holds execMu (not n.mu) across the
// validation execution.
//
// Import is idempotent: a block already on the chain returns
// ErrAlreadyKnown without re-executing; a different block at an occupied
// height returns ErrFork. Both checks run before validation, so repeated
// gossip of old blocks costs two hashes, not a replay.
func (n *Node) AcceptBlock(b chain.Block) error {
	return n.acceptBlock(b, nil, nil)
}

// acceptBlock is the shared import core behind AcceptBlock (serial path)
// and ImportPrechecked (staged pipeline). A nil pre means the stateless
// checks have not run yet and the full serial validator executes; a
// non-nil pre carries Phase A's outputs — preErr (if any) is surfaced
// after the linkage checks, exactly where the serial path would have
// failed, and a nil preErr skips straight to the stateful Phase B with
// the cached plan. Either way the error strings match the serial path
// byte for byte.
func (n *Node) acceptBlock(b chain.Block, pre *validator.Prechecked, preErr error) error {
	n.execMu.Lock()
	defer n.execMu.Unlock()

	n.mu.Lock()
	head := n.chain.Head().Header
	n.mu.Unlock()
	if b.Header.Number <= head.Number {
		known, held := n.chain.HashAt(b.Header.Number)
		if !held {
			// A pruned (snapshot fast-synced) chain no longer holds this
			// height and cannot distinguish a duplicate from a fork; old
			// gossip on a converged chain is treated as already known.
			return ErrAlreadyKnown
		}
		if known == b.Header.Hash() {
			return ErrAlreadyKnown
		}
		return fmt.Errorf("%w: height %d has %s, got %s",
			ErrFork, b.Header.Number, known.Short(), b.Header.Hash().Short())
	}
	if b.Header.Number != head.Number+1 {
		return fmt.Errorf("node: accept: %w: got %d, want %d",
			chain.ErrBadNumber, b.Header.Number, head.Number+1)
	}
	if b.Header.ParentHash != head.Hash() {
		return fmt.Errorf("node: accept: %w: got %s, want %s",
			chain.ErrBadParent, b.Header.ParentHash.Short(), head.Hash().Short())
	}

	if pre != nil && preErr != nil {
		return fmt.Errorf("node: %w", preErr)
	}
	snap := n.world.Snapshot()
	var err error
	if pre != nil {
		_, err = validator.ValidatePrechecked(n.runner, n.world, b, *pre, validator.Config{Workers: n.workers})
	} else {
		_, err = validator.Validate(n.runner, n.world, b, validator.Config{Workers: n.workers})
	}
	if err != nil {
		n.world.Restore(snap)
		return fmt.Errorf("node: %w", err)
	}

	// WAL first, under execMu alone — see MineOne.
	if err := n.persistBlock(b); err != nil {
		n.world.Restore(snap)
		return fmt.Errorf("node: persist: %w", err)
	}
	n.markDurable(b.Header.Number)
	n.mu.Lock()
	err = n.chain.Append(b)
	if err == nil {
		n.validatedBlocks++
	}
	n.mu.Unlock()
	if err != nil {
		n.world.Restore(snap)
		return fmt.Errorf("node: append: %w", err)
	}
	n.recordDurable(b)
	n.maybeSnapshot(1)
	return nil
}

// MinePipelined mines up to blocks blocks of blockSize through the
// configured pipeline and then drains it, so on a nil error every mined
// block is durable and published. It stops early (without error) when the
// pool runs dry. The returned count is blocks sealed; if the pipeline
// aborted, the error says so and the aborted suffix's calls are back in
// the pool.
func (n *Node) MinePipelined(blocks, blockSize int) (int, error) {
	mined := 0
	for i := 0; i < blocks; i++ {
		if _, err := n.MineOne(blockSize); err != nil {
			if errors.Is(err, txpool.ErrEmpty) {
				break
			}
			_ = n.Flush()
			return mined, err
		}
		mined++
	}
	return mined, n.Flush()
}

// ErrStaleSnapshot reports an InstallSnapshot at or below the current
// head: installing it would rewind a chain that is already ahead.
var ErrStaleSnapshot = errors.New("node: snapshot not ahead of local head")

// InstallSnapshot adopts a state checkpoint from a peer — the receiving
// half of snapshot fast-sync. The encoded state must hash to the state
// root the checkpoint header claims (self-consistency); trust in the
// header itself is the fast-sync trade-off, exactly like trusting a
// configured genesis. The chain restarts pruned at the checkpoint
// height, the mempool is untouched, and a durable node drops its now
// disconnected history and re-roots its log at the checkpoint.
func (n *Node) InstallSnapshot(s persist.Snapshot) error {
	n.execMu.Lock()
	defer n.execMu.Unlock()
	// The in-memory swap happens under n.mu; the checkpoint's durability
	// write runs after it, outside the bookkeeping lock (execMu, still
	// held, is what keeps the world at a block boundary throughout).
	log, err := n.installSnapshotState(s)
	if err != nil {
		return err
	}
	if log != nil {
		if err := log.InstallSnapshot(s); err != nil {
			// State is installed and consistent; only durability of the
			// checkpoint failed. Surface it — the caller may retry sync
			// into a healthier directory.
			return fmt.Errorf("node: install snapshot: %w", err)
		}
	}
	return nil
}

// installSnapshotState swaps the node's in-memory world and chain to the
// checkpoint and returns the log (if any) for the caller's durability
// write. Caller holds execMu.
func (n *Node) installSnapshotState(s persist.Snapshot) (*persist.Log, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s.Height() <= n.chain.Head().Header.Number {
		return nil, fmt.Errorf("%w: snapshot %d, head %d", ErrStaleSnapshot, s.Height(), n.chain.Head().Header.Number)
	}
	old := n.world.Snapshot()
	if err := n.world.RestoreState(s.State); err != nil {
		n.world.Restore(old)
		return nil, fmt.Errorf("node: install snapshot: %w", err)
	}
	root, err := n.world.StateRoot()
	if err != nil {
		n.world.Restore(old)
		return nil, fmt.Errorf("node: install snapshot: state root: %w", err)
	}
	if root != s.Header.StateRoot {
		n.world.Restore(old)
		return nil, fmt.Errorf("node: install snapshot %d: state hashes to %s, header claims %s",
			s.Height(), root.Short(), s.Header.StateRoot.Short())
	}
	n.chain = chain.NewAt(s.Header)
	n.sinceSnap = 0
	n.lastSnapHeight.Store(s.Height())
	// The installed checkpoint is this chain's new root: everything the
	// node now holds is at least as durable as the snapshot itself.
	n.markDurable(s.Height())
	return n.log, nil
}

// SnapshotNow returns a state checkpoint: a durable node serves its
// newest persisted snapshot (cheap — no state encoding, no lock held
// against mining; the fast-syncing peer replays the tail through full
// validation anyway), a non-durable node generates one at the current
// head on the spot (holding execMu, so the world is at a block
// boundary). This is what GET /snapshot serves, which is why any node
// can seed a fast-syncing late joiner.
func (n *Node) SnapshotNow() (persist.Snapshot, error) {
	if n.log != nil {
		if s := n.log.LatestSnapshot(); s != nil {
			return *s, nil
		}
	}
	n.execMu.Lock()
	defer n.execMu.Unlock()
	// A durable pipelining node drains its window first: a generated
	// checkpoint must describe a durable boundary, never a sealed-not-
	// durable head a crash could void — the same rule the /head and
	// /blocks gates enforce. (execMu is held, so nothing new seals while
	// the writer drains; its verdicts take only n.mu.)
	if n.writer != nil {
		if err := n.writer.Flush(); err != nil {
			return persist.Snapshot{}, fmt.Errorf("node: snapshot: %w", err)
		}
	}
	head := n.chain.Head().Header
	state, err := n.world.EncodeState()
	if err != nil {
		return persist.Snapshot{}, fmt.Errorf("node: snapshot: %w", err)
	}
	return persist.Snapshot{Header: head, State: state}, nil
}

// Status summarizes the node.
type Status struct {
	Height          uint64     `json:"height"`
	HeadHash        types.Hash `json:"headHash"`
	PoolLen         int        `json:"poolLen"`
	Engine          string     `json:"engine"`
	MinedBlocks     int        `json:"minedBlocks"`
	ValidatedBlocks int        `json:"validatedBlocks"`
	TotalRetries    int        `json:"totalRetries"`
	// DurableHeight is the newest block the persistence layer has
	// acknowledged; Height - DurableHeight is the sealed-not-durable
	// pipeline window. On a node without a data dir it equals Height —
	// nothing is ever durable, so the distinction is vacuous.
	DurableHeight uint64 `json:"durableHeight"`
	// PipelineDepth and InFlight describe the production pipeline: the
	// configured window, and how many blocks currently sit between their
	// seal and their durability verdict (0 unless PipelineDepth > 1).
	PipelineDepth int `json:"pipelineDepth,omitempty"`
	InFlight      int `json:"inFlight,omitempty"`
	// Persistent reports whether the node runs with a durable data dir;
	// RecoveredBlocks and SnapshotHeight describe its recovery state.
	// SnapshotErrors counts failed checkpoint writes since start — any
	// non-zero value means the WAL is growing unpruned.
	Persistent      bool   `json:"persistent"`
	RecoveredBlocks int    `json:"recoveredBlocks,omitempty"`
	SnapshotHeight  uint64 `json:"snapshotHeight,omitempty"`
	SnapshotErrors  int64  `json:"snapshotErrors,omitempty"`
	// WAL I/O counters (persistent nodes): appends and framed bytes
	// written, fsync count and summed latency in microseconds, and how
	// group commits batched — the numbers that attribute a block rate to
	// the disk.
	WalAppends      int64 `json:"walAppends,omitempty"`
	WalBytesWritten int64 `json:"walBytesWritten,omitempty"`
	WalFsyncs       int64 `json:"walFsyncs,omitempty"`
	WalFsyncMicros  int64 `json:"walFsyncMicros,omitempty"`
	WalGroupCommits int64 `json:"walGroupCommits,omitempty"`
	WalMaxGroup     int   `json:"walMaxGroup,omitempty"`
	// ChainBase is the oldest height the node still holds (non-zero on a
	// fast-synced, pruned node).
	ChainBase uint64 `json:"chainBase,omitempty"`
	// Mempool is the sharded pool's admission accounting: cumulative
	// verdict counters, evictions, byte footprint and per-shard
	// occupancy.
	Mempool mempool.StatsSnapshot `json:"mempool"`
	// ImportMode is the staged-import rollout switch (off|shadow|on);
	// ImportDivergences counts shadow-mode verdict disagreements between
	// the pipeline's stateless phase and the serial recomputation. Any
	// non-zero value blocks promotion from shadow to on.
	ImportMode        string `json:"importMode"`
	ImportDivergences int64  `json:"importDivergences,omitempty"`
}

// CurrentStatus snapshots node statistics. It never blocks behind an
// in-flight block execution (see MineOne's locking discipline).
func (n *Node) CurrentStatus() Status {
	// n.eng is fixed at construction, so its kind is read before taking
	// the lock rather than calling into the engine under it.
	engineKind := n.eng.Kind().String()
	n.mu.Lock()
	defer n.mu.Unlock()
	head := n.chain.Head()
	st := Status{
		Height:          head.Header.Number,
		HeadHash:        head.Header.Hash(),
		PoolLen:         n.pool.Len(),
		Engine:          engineKind,
		MinedBlocks:     n.minedBlocks,
		ValidatedBlocks: n.validatedBlocks,
		TotalRetries:    n.totalRetries,
		DurableHeight:   head.Header.Number,
		InFlight:        len(n.inflight),
		ChainBase:       n.chain.Base(),
	}
	st.ImportMode = n.importMode.String()
	st.ImportDivergences = n.importDivergences.Load()
	if n.prod != nil {
		st.PipelineDepth = n.prod.Depth()
	}
	st.Mempool = n.pool.Stats()
	if n.log != nil {
		st.Persistent = true
		st.DurableHeight = n.durableHeight.Load()
		st.RecoveredBlocks = n.recoveredBlocks
		st.SnapshotErrors = n.snapshotErrs.Load()
		st.SnapshotHeight = n.lastSnapHeight.Load()
		// MetricsSnapshot is lock-free (atomic counters), so this cannot
		// stall the status path behind an in-flight fsync.
		m := n.log.MetricsSnapshot()
		st.WalAppends = m.Appends
		st.WalBytesWritten = m.BytesWritten
		st.WalFsyncs = m.Fsyncs
		st.WalFsyncMicros = m.FsyncTime.Microseconds()
		st.WalGroupCommits = m.GroupCommits
		st.WalMaxGroup = m.MaxGroup
	}
	return st
}
