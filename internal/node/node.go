// Package node assembles the library into a runnable service: a mempool,
// a speculative parallel miner, a deterministic parallel validator and a
// hash-linked chain behind a small JSON-over-HTTP API. It is the
// "downstream user" layer: cmd/nodesrv serves it, and the tests drive a
// miner node and a validator node end to end over HTTP.
//
// Endpoints:
//
//	POST /tx        {sender, contract, function, args, value, gasLimit}
//	POST /mine      {blockSize}                 → mines one block from the pool
//	POST /blocks    (gob block bytes)           → validate + append (validator nodes)
//	GET  /blocks/N                              → gob block bytes
//	GET  /head                                  → header summary JSON
//	GET  /status                                → height, pool depth, stats
//	GET  /snapshot                              → state checkpoint (snapshot fast-sync)
//
// Transactions arrive as JSON with a small typed argument encoding (see
// wireArg); blocks travel in the chain package's gob wire format so the
// schedule metadata survives byte-exact.
//
// With Config.DataDir set the node is durable: every appended block goes
// to a write-ahead log before it becomes visible, state snapshots are
// written periodically, and New recovers a previous run's chain by
// loading the newest snapshot and replaying the WAL tail through the
// validator — so recovery re-verifies the published (S, H) schedules
// exactly as a peer would.
package node

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/gas"
	"contractstm/internal/miner"
	"contractstm/internal/persist"
	"contractstm/internal/runtime"
	"contractstm/internal/txpool"
	"contractstm/internal/types"
	"contractstm/internal/validator"
)

// Config assembles a node.
type Config struct {
	// World is the node's contract state at the current chain head.
	World *contract.World
	// Workers is the mining/validation pool size.
	Workers int
	// Runner executes mining and validation (nil = real OS threads).
	Runner runtime.Runner
	// SelectionPolicy picks block transactions from the pool.
	SelectionPolicy txpool.Policy
	// Engine selects the block-execution strategy (default speculative).
	Engine engine.Kind
	// DataDir, when non-empty, makes the node durable: blocks append to
	// a WAL under this directory, state snapshots are written on the
	// Persist cadence, and New transparently recovers a previous run's
	// chain. World must be the same genesis world (same deterministic
	// setup) the directory was created with.
	DataDir string
	// Persist tunes WAL fsync batching and snapshot cadence; zero values
	// mean the persist package defaults. Ignored without DataDir.
	Persist persist.Options
}

// Node is a single in-process blockchain node.
type Node struct {
	// mu guards the bookkeeping state: chain, pool interactions tied to
	// chain state, and counters. It is never held across a block
	// execution, so status queries stay responsive while a block mines.
	mu sync.Mutex
	// execMu serializes world-mutating block work (mining and foreign-
	// block validation): the world advances one block at a time.
	execMu  sync.Mutex
	world   *contract.World
	chain   *chain.Chain
	pool    *txpool.Pool
	workers int
	runner  runtime.Runner
	policy  txpool.Policy
	eng     engine.Engine
	// log is the durable persistence log (nil without Config.DataDir).
	log *persist.Log
	// snapEvery is the snapshot cadence in blocks (<=0 disables);
	// sinceSnap counts appends since the last snapshot (both guarded by
	// execMu, not n.mu — see maybeSnapshot).
	snapEvery int
	sinceSnap int
	// snapshotErrs counts failed checkpoint writes (atomic: bumped under
	// execMu, read by CurrentStatus under n.mu). Non-zero means the WAL
	// is growing unpruned and recovery time with it — a durable node
	// whose snapshots silently stopped is a monitoring fact, not a
	// detail to swallow.
	snapshotErrs atomic.Int64
	// lastSnapHeight mirrors the log's newest snapshot height (atomic),
	// so CurrentStatus never calls into the persist.Log — whose mutex
	// Append/WriteSnapshot hold across fsyncs — while holding n.mu.
	lastSnapHeight atomic.Uint64
	// recoveredBlocks counts blocks replayed from the WAL by New.
	recoveredBlocks int
	// stats
	minedBlocks     int
	validatedBlocks int
	totalRetries    int
}

// New creates a node whose genesis commits to the world's current state.
func New(cfg Config) (*Node, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("node: nil world")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Runner == nil {
		cfg.Runner = runtime.NewOSRunner(nil)
	}
	if cfg.SelectionPolicy == 0 {
		cfg.SelectionPolicy = txpool.PolicyFIFO
	}
	if cfg.Engine == 0 {
		cfg.Engine = engine.KindSpeculative
	}
	eng, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	root, err := cfg.World.StateRoot()
	if err != nil {
		return nil, fmt.Errorf("node: state root: %w", err)
	}
	n := &Node{
		world:   cfg.World,
		chain:   chain.New(root),
		pool:    txpool.New(),
		workers: cfg.Workers,
		runner:  cfg.Runner,
		policy:  cfg.SelectionPolicy,
		eng:     eng,
	}
	if cfg.DataDir != "" {
		if err := n.openDurable(cfg, root); err != nil {
			// Release the directory lock a partially-opened log holds, or
			// the next open attempt would fail with ErrLocked instead of
			// the real problem.
			if n.log != nil {
				_ = n.log.Close()
			}
			return nil, err
		}
	}
	return n, nil
}

// openDurable opens the persistence log and recovers a previous run:
// restore the newest snapshot, replay the WAL tail through the
// validator, and restore the saved mempool. A fresh directory records a
// permanent genesis identity marker plus a restorable genesis snapshot;
// every reopen verifies the marker, so a data dir from a different
// genesis world fails loudly instead of being silently adopted — even
// after snapshot retention has pruned the genesis snapshot itself.
func (n *Node) openDurable(cfg Config, genesisRoot types.Hash) error {
	log, err := persist.Open(cfg.DataDir, cfg.Persist)
	if err != nil {
		return fmt.Errorf("node: %w", err)
	}
	opts := cfg.Persist.WithDefaults()
	n.log = log
	n.snapEvery = opts.SnapshotEvery

	if err := log.EnsureGenesis(chain.GenesisHeader(genesisRoot)); err != nil {
		return fmt.Errorf("node: %w", err)
	}
	snap := log.LatestSnapshot()
	switch {
	case snap == nil:
		// Fresh directory: checkpoint genesis.
		state, err := n.world.EncodeState()
		if err != nil {
			return fmt.Errorf("node: encode genesis state: %w", err)
		}
		if err := log.WriteSnapshot(persist.Snapshot{Header: chain.GenesisHeader(genesisRoot), State: state}); err != nil {
			return fmt.Errorf("node: genesis snapshot: %w", err)
		}
	case snap.Height() == 0:
		if snap.Header != chain.GenesisHeader(genesisRoot) {
			return fmt.Errorf("node: data dir %s belongs to a different genesis (snapshot root %s, world root %s)",
				cfg.DataDir, snap.Header.StateRoot.Short(), genesisRoot.Short())
		}
	default:
		if err := n.world.RestoreState(snap.State); err != nil {
			return fmt.Errorf("node: snapshot %d: %w", snap.Height(), err)
		}
		root, err := n.world.StateRoot()
		if err != nil {
			return fmt.Errorf("node: state root: %w", err)
		}
		if root != snap.Header.StateRoot {
			return fmt.Errorf("node: snapshot %d state hashes to %s, header claims %s",
				snap.Height(), root.Short(), snap.Header.StateRoot.Short())
		}
		n.chain = chain.NewAt(snap.Header)
	}

	// Replay the WAL tail through the full validation path: recovery
	// re-verifies every published schedule, so corrupt-but-well-framed
	// records cannot smuggle state in.
	from := n.chain.Head().Header.Number + 1
	if err := log.Blocks(from, func(b chain.Block) error {
		if err := n.replayBlock(b); err != nil {
			return err
		}
		n.recoveredBlocks++
		return nil
	}); err != nil {
		return fmt.Errorf("node: recover: %w", err)
	}

	calls, err := log.TakePool()
	if err != nil {
		return fmt.Errorf("node: recover pool: %w", err)
	}
	if len(calls) > 0 {
		n.pool.SubmitAll(calls)
	}

	// Resume the snapshot cadence where the previous run left it: the
	// replayed WAL tail counts against it, and an overdue checkpoint is
	// written now. Otherwise a node that crashes more often than every
	// SnapshotEvery blocks would never snapshot past genesis, and its
	// WAL — and recovery time — would grow without bound.
	if s := log.LatestSnapshot(); s != nil {
		n.lastSnapHeight.Store(s.Height())
		n.sinceSnap = int(n.chain.Head().Header.Number - s.Height())
		n.maybeSnapshot(0)
	}
	return nil
}

// replayBlock validates and appends one recovered block. Only New calls
// it, before the node is shared, so no locking.
func (n *Node) replayBlock(b chain.Block) error {
	snap := n.world.Snapshot()
	if _, err := validator.Validate(n.runner, n.world, b, validator.Config{Workers: n.workers}); err != nil {
		n.world.Restore(snap)
		return err
	}
	if err := n.chain.Append(b); err != nil {
		n.world.Restore(snap)
		return err
	}
	return nil
}

// RecoveredBlocks reports how many blocks New replayed from the WAL.
func (n *Node) RecoveredBlocks() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.recoveredBlocks
}

// Close persists the pending mempool and cleanly closes the WAL. A node
// without a DataDir has nothing to do. The node must be quiescent
// (callers stop serving first); mining after Close fails on the closed
// log.
func (n *Node) Close() error {
	n.execMu.Lock()
	defer n.execMu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.log == nil {
		return nil
	}
	if err := n.log.SavePool(n.pool.PendingCalls()); err != nil {
		return fmt.Errorf("node: close: %w", err)
	}
	if err := n.log.Close(); err != nil {
		return fmt.Errorf("node: close: %w", err)
	}
	return nil
}

// Kill simulates a crash: the WAL file handles and the data-dir lock are
// released so the directory can be reopened, but nothing graceful
// happens — no pool save, no shutdown courtesy. The durable state is
// exactly what the WAL already holds, which is the point: crash tests
// and demos recover from this. (An actual process kill releases the
// lock the same way, since advisory locks die with their descriptors.)
func (n *Node) Kill() {
	n.execMu.Lock()
	defer n.execMu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.log != nil {
		_ = n.log.Close()
	}
}

// Submit queues a transaction.
func (n *Node) Submit(call contract.Call) { n.pool.Submit(call) }

// SubmitAll queues a batch of transactions atomically: no other
// submitter's calls interleave inside the batch.
func (n *Node) SubmitAll(calls []contract.Call) { n.pool.SubmitAll(calls) }

// PoolLen reports queued transactions.
func (n *Node) PoolLen() int { return n.pool.Len() }

// chainRef reads the chain pointer safely: InstallSnapshot swaps it at
// runtime (holding both execMu and n.mu), so readers must hold one of
// the two; the public accessors hold neither, hence this helper.
func (n *Node) chainRef() *chain.Chain {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.chain
}

// Height returns the chain height (genesis = 0).
func (n *Node) Height() uint64 {
	return n.chainRef().Head().Header.Number
}

// Head returns the chain head.
func (n *Node) Head() chain.Block { return n.chainRef().Head() }

// BlockAt returns a block by height.
func (n *Node) BlockAt(h uint64) (chain.Block, bool) { return n.chainRef().BlockAt(h) }

// MineOne selects up to blockSize transactions, executes them with the
// node's engine, appends the block and reports conflict feedback to the
// pool. It returns the sealed block.
//
// Locking: execMu serializes the world mutation end to end, but n.mu is
// only taken for the short bookkeeping sections (selection against the
// current head, then seal-and-append), never across the execution itself.
func (n *Node) MineOne(blockSize int) (chain.Block, error) {
	n.execMu.Lock()
	defer n.execMu.Unlock()

	n.mu.Lock()
	calls, err := n.pool.Select(n.policy, blockSize)
	parent := n.chain.Head().Header
	n.mu.Unlock()
	if err != nil {
		return chain.Block{}, fmt.Errorf("node: select: %w", err)
	}

	// Snapshot the world, execute outside n.mu, seal/append under it.
	// execMu guarantees the parent header cannot move underneath us.
	snap := n.world.Snapshot()
	res, err := miner.Mine(n.eng, n.runner, n.world, parent, calls,
		engine.Options{Workers: n.workers})
	if err != nil {
		n.world.Restore(snap)
		// The selection was destructive; a failed attempt must not lose
		// the clients' transactions.
		n.pool.Requeue(calls)
		return chain.Block{}, fmt.Errorf("node: mine: %w", err)
	}

	// WAL first: a block must be durable before it becomes visible.
	// Persistence I/O runs under execMu alone — execMu already serializes
	// every appender, and fsyncs must not stall status queries on n.mu.
	// execMu also guarantees the seal raced nobody, so the chain append
	// after a successful WAL write cannot fail short of a bug.
	if err := n.persistBlock(res.Block); err != nil {
		n.world.Restore(snap)
		n.pool.Requeue(calls)
		return chain.Block{}, fmt.Errorf("node: persist: %w", err)
	}

	n.mu.Lock()
	err = n.chain.Append(res.Block)
	if err == nil {
		var conflicted []contract.Call
		for _, id := range res.Stats.RetriedTxs {
			conflicted = append(conflicted, calls[id])
		}
		n.pool.ReportConflicts(conflicted)
		n.minedBlocks++
		n.totalRetries += res.Stats.Retries
	}
	n.mu.Unlock()
	if err != nil {
		n.world.Restore(snap)
		n.pool.Requeue(calls)
		return chain.Block{}, fmt.Errorf("node: append: %w", err)
	}
	n.maybeSnapshot(1)
	return res.Block, nil
}

// persistBlock appends b to the WAL (no-op without persistence). Caller
// holds execMu, which serializes all appenders; n.mu is not needed and
// deliberately not held across the disk write.
func (n *Node) persistBlock(b chain.Block) error {
	if n.log == nil {
		return nil
	}
	return n.log.Append(b)
}

// maybeSnapshot advances the cadence counter by delta blocks and writes
// a state checkpoint when it is due. The world is exactly at the chain
// head here: the caller holds execMu (which guards n.sinceSnap and keeps
// the chain pointer stable; n.mu is deliberately NOT held across the
// state encoding and snapshot fsyncs). A failed snapshot is dropped
// rather than failing the block: the WAL already holds the block, so
// durability is intact and only recovery speed suffers; the next cadence
// tick tries again — and the failure shows in Status.SnapshotErrors.
func (n *Node) maybeSnapshot(delta int) {
	if n.log == nil || n.snapEvery <= 0 {
		return
	}
	n.sinceSnap += delta
	if n.sinceSnap < n.snapEvery {
		return
	}
	n.sinceSnap = 0
	state, err := n.world.EncodeState()
	if err != nil {
		n.snapshotErrs.Add(1)
		return
	}
	head := n.chain.Head().Header
	if err := n.log.WriteSnapshot(persist.Snapshot{Header: head, State: state}); err != nil {
		n.snapshotErrs.Add(1)
		return
	}
	n.lastSnapHeight.Store(head.Number)
}

// Errors reported by block import.
var (
	// ErrAlreadyKnown reports an import of a block the chain already
	// holds. Imports are idempotent: callers (gossip, catch-up sync) may
	// treat it as success.
	ErrAlreadyKnown = errors.New("node: block already known")
	// ErrFork reports an import that conflicts with a different block
	// already committed at the same height — chain divergence.
	ErrFork = errors.New("node: fork: conflicting block for committed height")
)

// AcceptBlock validates a foreign block against the node's state and
// appends it — the validator-node path. On rejection the world state is
// restored. Like MineOne, it holds execMu (not n.mu) across the
// validation execution.
//
// Import is idempotent: a block already on the chain returns
// ErrAlreadyKnown without re-executing; a different block at an occupied
// height returns ErrFork. Both checks run before validation, so repeated
// gossip of old blocks costs two hashes, not a replay.
func (n *Node) AcceptBlock(b chain.Block) error {
	n.execMu.Lock()
	defer n.execMu.Unlock()

	n.mu.Lock()
	head := n.chain.Head().Header
	n.mu.Unlock()
	if b.Header.Number <= head.Number {
		known, held := n.chain.HashAt(b.Header.Number)
		if !held {
			// A pruned (snapshot fast-synced) chain no longer holds this
			// height and cannot distinguish a duplicate from a fork; old
			// gossip on a converged chain is treated as already known.
			return ErrAlreadyKnown
		}
		if known == b.Header.Hash() {
			return ErrAlreadyKnown
		}
		return fmt.Errorf("%w: height %d has %s, got %s",
			ErrFork, b.Header.Number, known.Short(), b.Header.Hash().Short())
	}
	if b.Header.Number != head.Number+1 {
		return fmt.Errorf("node: accept: %w: got %d, want %d",
			chain.ErrBadNumber, b.Header.Number, head.Number+1)
	}
	if b.Header.ParentHash != head.Hash() {
		return fmt.Errorf("node: accept: %w: got %s, want %s",
			chain.ErrBadParent, b.Header.ParentHash.Short(), head.Hash().Short())
	}

	snap := n.world.Snapshot()
	if _, err := validator.Validate(n.runner, n.world, b, validator.Config{Workers: n.workers}); err != nil {
		n.world.Restore(snap)
		return fmt.Errorf("node: %w", err)
	}

	// WAL first, under execMu alone — see MineOne.
	if err := n.persistBlock(b); err != nil {
		n.world.Restore(snap)
		return fmt.Errorf("node: persist: %w", err)
	}
	n.mu.Lock()
	err := n.chain.Append(b)
	if err == nil {
		n.validatedBlocks++
	}
	n.mu.Unlock()
	if err != nil {
		n.world.Restore(snap)
		return fmt.Errorf("node: append: %w", err)
	}
	n.maybeSnapshot(1)
	return nil
}

// ErrStaleSnapshot reports an InstallSnapshot at or below the current
// head: installing it would rewind a chain that is already ahead.
var ErrStaleSnapshot = errors.New("node: snapshot not ahead of local head")

// InstallSnapshot adopts a state checkpoint from a peer — the receiving
// half of snapshot fast-sync. The encoded state must hash to the state
// root the checkpoint header claims (self-consistency); trust in the
// header itself is the fast-sync trade-off, exactly like trusting a
// configured genesis. The chain restarts pruned at the checkpoint
// height, the mempool is untouched, and a durable node drops its now
// disconnected history and re-roots its log at the checkpoint.
func (n *Node) InstallSnapshot(s persist.Snapshot) error {
	n.execMu.Lock()
	defer n.execMu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if s.Height() <= n.chain.Head().Header.Number {
		return fmt.Errorf("%w: snapshot %d, head %d", ErrStaleSnapshot, s.Height(), n.chain.Head().Header.Number)
	}
	old := n.world.Snapshot()
	if err := n.world.RestoreState(s.State); err != nil {
		n.world.Restore(old)
		return fmt.Errorf("node: install snapshot: %w", err)
	}
	root, err := n.world.StateRoot()
	if err != nil {
		n.world.Restore(old)
		return fmt.Errorf("node: install snapshot: state root: %w", err)
	}
	if root != s.Header.StateRoot {
		n.world.Restore(old)
		return fmt.Errorf("node: install snapshot %d: state hashes to %s, header claims %s",
			s.Height(), root.Short(), s.Header.StateRoot.Short())
	}
	n.chain = chain.NewAt(s.Header)
	n.sinceSnap = 0
	n.lastSnapHeight.Store(s.Height())
	if n.log != nil {
		if err := n.log.InstallSnapshot(s); err != nil {
			// State is installed and consistent; only durability of the
			// checkpoint failed. Surface it — the caller may retry sync
			// into a healthier directory.
			return fmt.Errorf("node: install snapshot: %w", err)
		}
	}
	return nil
}

// SnapshotNow returns a state checkpoint: a durable node serves its
// newest persisted snapshot (cheap — no state encoding, no lock held
// against mining; the fast-syncing peer replays the tail through full
// validation anyway), a non-durable node generates one at the current
// head on the spot (holding execMu, so the world is at a block
// boundary). This is what GET /snapshot serves, which is why any node
// can seed a fast-syncing late joiner.
func (n *Node) SnapshotNow() (persist.Snapshot, error) {
	if n.log != nil {
		if s := n.log.LatestSnapshot(); s != nil {
			return *s, nil
		}
	}
	n.execMu.Lock()
	defer n.execMu.Unlock()
	head := n.chain.Head().Header
	state, err := n.world.EncodeState()
	if err != nil {
		return persist.Snapshot{}, fmt.Errorf("node: snapshot: %w", err)
	}
	return persist.Snapshot{Header: head, State: state}, nil
}

// Status summarizes the node.
type Status struct {
	Height          uint64     `json:"height"`
	HeadHash        types.Hash `json:"headHash"`
	PoolLen         int        `json:"poolLen"`
	Engine          string     `json:"engine"`
	MinedBlocks     int        `json:"minedBlocks"`
	ValidatedBlocks int        `json:"validatedBlocks"`
	TotalRetries    int        `json:"totalRetries"`
	// Persistent reports whether the node runs with a durable data dir;
	// RecoveredBlocks and SnapshotHeight describe its recovery state.
	// SnapshotErrors counts failed checkpoint writes since start — any
	// non-zero value means the WAL is growing unpruned.
	Persistent      bool   `json:"persistent"`
	RecoveredBlocks int    `json:"recoveredBlocks,omitempty"`
	SnapshotHeight  uint64 `json:"snapshotHeight,omitempty"`
	SnapshotErrors  int64  `json:"snapshotErrors,omitempty"`
	// ChainBase is the oldest height the node still holds (non-zero on a
	// fast-synced, pruned node).
	ChainBase uint64 `json:"chainBase,omitempty"`
}

// CurrentStatus snapshots node statistics. It never blocks behind an
// in-flight block execution (see MineOne's locking discipline).
func (n *Node) CurrentStatus() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	head := n.chain.Head()
	st := Status{
		Height:          head.Header.Number,
		HeadHash:        head.Header.Hash(),
		PoolLen:         n.pool.Len(),
		Engine:          n.eng.Kind().String(),
		MinedBlocks:     n.minedBlocks,
		ValidatedBlocks: n.validatedBlocks,
		TotalRetries:    n.totalRetries,
		ChainBase:       n.chain.Base(),
	}
	if n.log != nil {
		st.Persistent = true
		st.RecoveredBlocks = n.recoveredBlocks
		st.SnapshotErrors = n.snapshotErrs.Load()
		st.SnapshotHeight = n.lastSnapHeight.Load()
	}
	return st
}

// --- HTTP layer -----------------------------------------------------------

// wireArg is the JSON encoding of one contract call argument.
type wireArg struct {
	// Type is one of "uint64", "int", "bool", "string", "address",
	// "hash", "amount".
	Type  string `json:"type"`
	Value string `json:"value"`
}

func decodeArg(a wireArg) (any, error) {
	switch a.Type {
	case "uint64":
		n, err := strconv.ParseUint(a.Value, 10, 64)
		return n, err
	case "int":
		n, err := strconv.Atoi(a.Value)
		return n, err
	case "bool":
		return a.Value == "true", nil
	case "string":
		return a.Value, nil
	case "address":
		return types.ParseAddress(a.Value)
	case "hash":
		return types.ParseHash(a.Value)
	case "amount":
		n, err := strconv.ParseUint(a.Value, 10, 64)
		return types.Amount(n), err
	default:
		return nil, fmt.Errorf("unknown argument type %q", a.Type)
	}
}

// EncodeArg renders a call argument for the wire (client helper).
func EncodeArg(v any) (wire wireArg, err error) {
	switch x := v.(type) {
	case uint64:
		return wireArg{Type: "uint64", Value: strconv.FormatUint(x, 10)}, nil
	case int:
		return wireArg{Type: "int", Value: strconv.Itoa(x)}, nil
	case bool:
		return wireArg{Type: "bool", Value: strconv.FormatBool(x)}, nil
	case string:
		return wireArg{Type: "string", Value: x}, nil
	case types.Address:
		return wireArg{Type: "address", Value: x.String()}, nil
	case types.Hash:
		return wireArg{Type: "hash", Value: x.String()}, nil
	case types.Amount:
		return wireArg{Type: "amount", Value: strconv.FormatUint(uint64(x), 10)}, nil
	default:
		return wireArg{}, fmt.Errorf("unsupported argument type %T", v)
	}
}

// wireTx is the JSON encoding of a submitted transaction.
type wireTx struct {
	Sender   string    `json:"sender"`
	Contract string    `json:"contract"`
	Function string    `json:"function"`
	Args     []wireArg `json:"args,omitempty"`
	Value    uint64    `json:"value,omitempty"`
	GasLimit uint64    `json:"gasLimit"`
}

// Handler returns the node's HTTP API.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tx", n.handleTx)
	mux.HandleFunc("POST /mine", n.handleMine)
	mux.HandleFunc("POST /blocks", n.handleAcceptBlock)
	mux.HandleFunc("GET /blocks/{height}", n.handleGetBlock)
	mux.HandleFunc("GET /head", n.handleHead)
	mux.HandleFunc("GET /status", n.handleStatus)
	mux.HandleFunc("GET /snapshot", n.handleSnapshot)
	return mux
}

// writeJSON sends v as a JSON response. The Content-Type header must be
// set before WriteHeader flushes the header block, so every JSON-speaking
// handler funnels through here.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (n *Node) handleTx(w http.ResponseWriter, r *http.Request) {
	var tx wireTx
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&tx); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sender, err := types.ParseAddress(tx.Sender)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	target, err := types.ParseAddress(tx.Contract)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(tx.Function) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing function"))
		return
	}
	args := make([]any, 0, len(tx.Args))
	for _, a := range tx.Args {
		v, err := decodeArg(a)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		args = append(args, v)
	}
	limit := gas.Gas(tx.GasLimit)
	if limit == 0 {
		limit = 1_000_000
	}
	n.Submit(contract.Call{
		Sender: sender, Contract: target, Function: tx.Function,
		Args: args, Value: types.Amount(tx.Value), GasLimit: limit,
	})
	writeJSON(w, http.StatusAccepted, map[string]int{"poolLen": n.PoolLen()})
}

func (n *Node) handleMine(w http.ResponseWriter, r *http.Request) {
	var req struct {
		BlockSize int `json:"blockSize"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.BlockSize <= 0 {
		req.BlockSize = 100
	}
	block, err := n.MineOne(req.BlockSize)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, headerSummary(block))
}

func (n *Node) handleAcceptBlock(w http.ResponseWriter, r *http.Request) {
	block, err := chain.DecodeBlock(io.LimitReader(r.Body, chain.MaxWireBlock))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := n.AcceptBlock(block); err != nil {
		if errors.Is(err, ErrAlreadyKnown) {
			// Idempotent import: re-gossiped blocks are fine.
			summary := headerSummary(block)
			summary["alreadyKnown"] = true
			writeJSON(w, http.StatusOK, summary)
			return
		}
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, headerSummary(block))
}

func (n *Node) handleGetBlock(w http.ResponseWriter, r *http.Request) {
	height, err := strconv.ParseUint(r.PathValue("height"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	block, ok := n.BlockAt(height)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no block at height %d", height))
		return
	}
	var buf bytes.Buffer
	if err := chain.EncodeBlock(&buf, block); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(buf.Bytes())
}

func (n *Node) handleHead(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, headerSummary(n.Head()))
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.CurrentStatus())
}

func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// Durable nodes serve the cached framed bytes: the snapshot is
	// immutable between writes, so per-request re-encoding would be
	// pure waste on the fast-sync seeding path.
	if n.log != nil {
		if raw := n.log.LatestSnapshotWire(); raw != nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(raw)
			return
		}
	}
	s, err := n.SnapshotNow()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	var buf bytes.Buffer
	if err := persist.EncodeSnapshot(&buf, s); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(buf.Bytes())
}

// headerSummary is the JSON view of a block header plus body sizes.
func headerSummary(b chain.Block) map[string]any {
	return map[string]any{
		"number":       b.Header.Number,
		"hash":         b.Header.Hash().String(),
		"parentHash":   b.Header.ParentHash.String(),
		"stateRoot":    b.Header.StateRoot.String(),
		"txCount":      len(b.Calls),
		"edges":        len(b.Schedule.Edges),
		"scheduleHash": b.Header.ScheduleHash.String(),
	}
}
