// Package node assembles the library into a runnable service: a mempool,
// a speculative parallel miner, a deterministic parallel validator and a
// hash-linked chain behind a small JSON-over-HTTP API. It is the
// "downstream user" layer: cmd/nodesrv serves it, and the tests drive a
// miner node and a validator node end to end over HTTP.
//
// Endpoints:
//
//	POST /tx        {sender, contract, function, args, value, gasLimit}
//	POST /mine      {blockSize}                 → mines one block from the pool
//	POST /blocks    (gob block bytes)           → validate + append (validator nodes)
//	GET  /blocks/N                              → gob block bytes
//	GET  /head                                  → header summary JSON
//	GET  /status                                → height, pool depth, stats
//
// Transactions arrive as JSON with a small typed argument encoding (see
// wireArg); blocks travel in the chain package's gob wire format so the
// schedule metadata survives byte-exact.
package node

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/gas"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/txpool"
	"contractstm/internal/types"
	"contractstm/internal/validator"
)

// Config assembles a node.
type Config struct {
	// World is the node's contract state at the current chain head.
	World *contract.World
	// Workers is the mining/validation pool size.
	Workers int
	// Runner executes mining and validation (nil = real OS threads).
	Runner runtime.Runner
	// SelectionPolicy picks block transactions from the pool.
	SelectionPolicy txpool.Policy
	// Engine selects the block-execution strategy (default speculative).
	Engine engine.Kind
}

// Node is a single in-process blockchain node.
type Node struct {
	// mu guards the bookkeeping state: chain, pool interactions tied to
	// chain state, and counters. It is never held across a block
	// execution, so status queries stay responsive while a block mines.
	mu sync.Mutex
	// execMu serializes world-mutating block work (mining and foreign-
	// block validation): the world advances one block at a time.
	execMu  sync.Mutex
	world   *contract.World
	chain   *chain.Chain
	pool    *txpool.Pool
	workers int
	runner  runtime.Runner
	policy  txpool.Policy
	eng     engine.Engine
	// stats
	minedBlocks     int
	validatedBlocks int
	totalRetries    int
}

// New creates a node whose genesis commits to the world's current state.
func New(cfg Config) (*Node, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("node: nil world")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Runner == nil {
		cfg.Runner = runtime.NewOSRunner(nil)
	}
	if cfg.SelectionPolicy == 0 {
		cfg.SelectionPolicy = txpool.PolicyFIFO
	}
	if cfg.Engine == 0 {
		cfg.Engine = engine.KindSpeculative
	}
	eng, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	root, err := cfg.World.StateRoot()
	if err != nil {
		return nil, fmt.Errorf("node: state root: %w", err)
	}
	return &Node{
		world:   cfg.World,
		chain:   chain.New(root),
		pool:    txpool.New(),
		workers: cfg.Workers,
		runner:  cfg.Runner,
		policy:  cfg.SelectionPolicy,
		eng:     eng,
	}, nil
}

// Submit queues a transaction.
func (n *Node) Submit(call contract.Call) { n.pool.Submit(call) }

// SubmitAll queues a batch of transactions atomically: no other
// submitter's calls interleave inside the batch.
func (n *Node) SubmitAll(calls []contract.Call) { n.pool.SubmitAll(calls) }

// PoolLen reports queued transactions.
func (n *Node) PoolLen() int { return n.pool.Len() }

// Height returns the chain height (genesis = 0).
func (n *Node) Height() uint64 {
	return n.chain.Head().Header.Number
}

// Head returns the chain head.
func (n *Node) Head() chain.Block { return n.chain.Head() }

// BlockAt returns a block by height.
func (n *Node) BlockAt(h uint64) (chain.Block, bool) { return n.chain.BlockAt(h) }

// MineOne selects up to blockSize transactions, executes them with the
// node's engine, appends the block and reports conflict feedback to the
// pool. It returns the sealed block.
//
// Locking: execMu serializes the world mutation end to end, but n.mu is
// only taken for the short bookkeeping sections (selection against the
// current head, then seal-and-append), never across the execution itself.
func (n *Node) MineOne(blockSize int) (chain.Block, error) {
	n.execMu.Lock()
	defer n.execMu.Unlock()

	n.mu.Lock()
	calls, err := n.pool.Select(n.policy, blockSize)
	parent := n.chain.Head().Header
	n.mu.Unlock()
	if err != nil {
		return chain.Block{}, fmt.Errorf("node: select: %w", err)
	}

	// Snapshot the world, execute outside n.mu, seal/append under it.
	// execMu guarantees the parent header cannot move underneath us.
	snap := n.world.Snapshot()
	res, err := miner.Mine(n.eng, n.runner, n.world, parent, calls,
		engine.Options{Workers: n.workers})
	if err != nil {
		n.world.Restore(snap)
		// The selection was destructive; a failed attempt must not lose
		// the clients' transactions.
		n.pool.Requeue(calls)
		return chain.Block{}, fmt.Errorf("node: mine: %w", err)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.chain.Append(res.Block); err != nil {
		n.world.Restore(snap)
		n.pool.Requeue(calls)
		return chain.Block{}, fmt.Errorf("node: append: %w", err)
	}
	var conflicted []contract.Call
	for _, id := range res.Stats.RetriedTxs {
		conflicted = append(conflicted, calls[id])
	}
	n.pool.ReportConflicts(conflicted)
	n.minedBlocks++
	n.totalRetries += res.Stats.Retries
	return res.Block, nil
}

// Errors reported by block import.
var (
	// ErrAlreadyKnown reports an import of a block the chain already
	// holds. Imports are idempotent: callers (gossip, catch-up sync) may
	// treat it as success.
	ErrAlreadyKnown = errors.New("node: block already known")
	// ErrFork reports an import that conflicts with a different block
	// already committed at the same height — chain divergence.
	ErrFork = errors.New("node: fork: conflicting block for committed height")
)

// AcceptBlock validates a foreign block against the node's state and
// appends it — the validator-node path. On rejection the world state is
// restored. Like MineOne, it holds execMu (not n.mu) across the
// validation execution.
//
// Import is idempotent: a block already on the chain returns
// ErrAlreadyKnown without re-executing; a different block at an occupied
// height returns ErrFork. Both checks run before validation, so repeated
// gossip of old blocks costs two hashes, not a replay.
func (n *Node) AcceptBlock(b chain.Block) error {
	n.execMu.Lock()
	defer n.execMu.Unlock()

	n.mu.Lock()
	head := n.chain.Head().Header
	n.mu.Unlock()
	if b.Header.Number <= head.Number {
		known, _ := n.chain.HashAt(b.Header.Number)
		if known == b.Header.Hash() {
			return ErrAlreadyKnown
		}
		return fmt.Errorf("%w: height %d has %s, got %s",
			ErrFork, b.Header.Number, known.Short(), b.Header.Hash().Short())
	}
	if b.Header.Number != head.Number+1 {
		return fmt.Errorf("node: accept: %w: got %d, want %d",
			chain.ErrBadNumber, b.Header.Number, head.Number+1)
	}
	if b.Header.ParentHash != head.Hash() {
		return fmt.Errorf("node: accept: %w: got %s, want %s",
			chain.ErrBadParent, b.Header.ParentHash.Short(), head.Hash().Short())
	}

	snap := n.world.Snapshot()
	if _, err := validator.Validate(n.runner, n.world, b, validator.Config{Workers: n.workers}); err != nil {
		n.world.Restore(snap)
		return fmt.Errorf("node: %w", err)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.chain.Append(b); err != nil {
		n.world.Restore(snap)
		return fmt.Errorf("node: append: %w", err)
	}
	n.validatedBlocks++
	return nil
}

// Status summarizes the node.
type Status struct {
	Height          uint64     `json:"height"`
	HeadHash        types.Hash `json:"headHash"`
	PoolLen         int        `json:"poolLen"`
	Engine          string     `json:"engine"`
	MinedBlocks     int        `json:"minedBlocks"`
	ValidatedBlocks int        `json:"validatedBlocks"`
	TotalRetries    int        `json:"totalRetries"`
}

// CurrentStatus snapshots node statistics. It never blocks behind an
// in-flight block execution (see MineOne's locking discipline).
func (n *Node) CurrentStatus() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	head := n.chain.Head()
	return Status{
		Height:          head.Header.Number,
		HeadHash:        head.Header.Hash(),
		PoolLen:         n.pool.Len(),
		Engine:          n.eng.Kind().String(),
		MinedBlocks:     n.minedBlocks,
		ValidatedBlocks: n.validatedBlocks,
		TotalRetries:    n.totalRetries,
	}
}

// --- HTTP layer -----------------------------------------------------------

// wireArg is the JSON encoding of one contract call argument.
type wireArg struct {
	// Type is one of "uint64", "int", "bool", "string", "address",
	// "hash", "amount".
	Type  string `json:"type"`
	Value string `json:"value"`
}

func decodeArg(a wireArg) (any, error) {
	switch a.Type {
	case "uint64":
		n, err := strconv.ParseUint(a.Value, 10, 64)
		return n, err
	case "int":
		n, err := strconv.Atoi(a.Value)
		return n, err
	case "bool":
		return a.Value == "true", nil
	case "string":
		return a.Value, nil
	case "address":
		return types.ParseAddress(a.Value)
	case "hash":
		return types.ParseHash(a.Value)
	case "amount":
		n, err := strconv.ParseUint(a.Value, 10, 64)
		return types.Amount(n), err
	default:
		return nil, fmt.Errorf("unknown argument type %q", a.Type)
	}
}

// EncodeArg renders a call argument for the wire (client helper).
func EncodeArg(v any) (wire wireArg, err error) {
	switch x := v.(type) {
	case uint64:
		return wireArg{Type: "uint64", Value: strconv.FormatUint(x, 10)}, nil
	case int:
		return wireArg{Type: "int", Value: strconv.Itoa(x)}, nil
	case bool:
		return wireArg{Type: "bool", Value: strconv.FormatBool(x)}, nil
	case string:
		return wireArg{Type: "string", Value: x}, nil
	case types.Address:
		return wireArg{Type: "address", Value: x.String()}, nil
	case types.Hash:
		return wireArg{Type: "hash", Value: x.String()}, nil
	case types.Amount:
		return wireArg{Type: "amount", Value: strconv.FormatUint(uint64(x), 10)}, nil
	default:
		return wireArg{}, fmt.Errorf("unsupported argument type %T", v)
	}
}

// wireTx is the JSON encoding of a submitted transaction.
type wireTx struct {
	Sender   string    `json:"sender"`
	Contract string    `json:"contract"`
	Function string    `json:"function"`
	Args     []wireArg `json:"args,omitempty"`
	Value    uint64    `json:"value,omitempty"`
	GasLimit uint64    `json:"gasLimit"`
}

// Handler returns the node's HTTP API.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tx", n.handleTx)
	mux.HandleFunc("POST /mine", n.handleMine)
	mux.HandleFunc("POST /blocks", n.handleAcceptBlock)
	mux.HandleFunc("GET /blocks/{height}", n.handleGetBlock)
	mux.HandleFunc("GET /head", n.handleHead)
	mux.HandleFunc("GET /status", n.handleStatus)
	return mux
}

// writeJSON sends v as a JSON response. The Content-Type header must be
// set before WriteHeader flushes the header block, so every JSON-speaking
// handler funnels through here.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (n *Node) handleTx(w http.ResponseWriter, r *http.Request) {
	var tx wireTx
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&tx); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sender, err := types.ParseAddress(tx.Sender)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	target, err := types.ParseAddress(tx.Contract)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(tx.Function) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing function"))
		return
	}
	args := make([]any, 0, len(tx.Args))
	for _, a := range tx.Args {
		v, err := decodeArg(a)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		args = append(args, v)
	}
	limit := gas.Gas(tx.GasLimit)
	if limit == 0 {
		limit = 1_000_000
	}
	n.Submit(contract.Call{
		Sender: sender, Contract: target, Function: tx.Function,
		Args: args, Value: types.Amount(tx.Value), GasLimit: limit,
	})
	writeJSON(w, http.StatusAccepted, map[string]int{"poolLen": n.PoolLen()})
}

func (n *Node) handleMine(w http.ResponseWriter, r *http.Request) {
	var req struct {
		BlockSize int `json:"blockSize"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.BlockSize <= 0 {
		req.BlockSize = 100
	}
	block, err := n.MineOne(req.BlockSize)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, headerSummary(block))
}

func (n *Node) handleAcceptBlock(w http.ResponseWriter, r *http.Request) {
	block, err := chain.DecodeBlock(io.LimitReader(r.Body, chain.MaxWireBlock))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := n.AcceptBlock(block); err != nil {
		if errors.Is(err, ErrAlreadyKnown) {
			// Idempotent import: re-gossiped blocks are fine.
			summary := headerSummary(block)
			summary["alreadyKnown"] = true
			writeJSON(w, http.StatusOK, summary)
			return
		}
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, headerSummary(block))
}

func (n *Node) handleGetBlock(w http.ResponseWriter, r *http.Request) {
	height, err := strconv.ParseUint(r.PathValue("height"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	block, ok := n.BlockAt(height)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no block at height %d", height))
		return
	}
	var buf bytes.Buffer
	if err := chain.EncodeBlock(&buf, block); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(buf.Bytes())
}

func (n *Node) handleHead(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, headerSummary(n.Head()))
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.CurrentStatus())
}

// headerSummary is the JSON view of a block header plus body sizes.
func headerSummary(b chain.Block) map[string]any {
	return map[string]any{
		"number":       b.Header.Number,
		"hash":         b.Header.Hash().String(),
		"parentHash":   b.Header.ParentHash.String(),
		"stateRoot":    b.Header.StateRoot.String(),
		"txCount":      len(b.Calls),
		"edges":        len(b.Schedule.Edges),
		"scheduleHash": b.Header.ScheduleHash.String(),
	}
}
