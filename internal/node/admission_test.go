package node

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"contractstm/internal/api/wire"
	"contractstm/internal/mempool"
	"contractstm/internal/persist"
	"contractstm/internal/runtime"
)

// TestResubmitAfterDurableReturnsExistingReceipt is the idempotency
// regression test: a client that resubmits a transaction after it
// committed (a retry across a lost 202, say) must get the same ID back
// and must NOT re-enqueue the call — the durable receipt stands.
func TestResubmitAfterDurableReturnsExistingReceipt(t *testing.T) {
	w, holders := newTokenWorld(t, 2)
	n, err := New(Config{
		World: w, Workers: 2, Runner: runtime.NewSimRunner(),
		DataDir: t.TempDir(), Persist: persist.Options{SnapshotEvery: -1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer n.Close()
	sdk := sdkFor(t, n)
	ctx := context.Background()

	tx := transferTx(holders[0], holders[1], 25)
	first, err := sdk.SubmitTx(ctx, tx)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := n.MineOne(10); err != nil {
		t.Fatalf("mine: %v", err)
	}
	if err := n.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	rec, err := sdk.Receipt(ctx, first.ID)
	if err != nil || rec.Status != wire.StatusCommitted {
		t.Fatalf("committed receipt = %+v, err %v", rec, err)
	}

	// The byte-identical resubmission: the node answers 409 tx_duplicate,
	// which the SDK folds into a success carrying the derived ID.
	again, err := sdk.SubmitTx(ctx, tx)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if again.ID != first.ID {
		t.Fatalf("resubmit ID = %s, want %s", again.ID, first.ID)
	}
	if again.Verdict != "duplicate" {
		t.Fatalf("resubmit verdict = %q", again.Verdict)
	}
	// The receipt is untouched — still the committed one, same block.
	rec2, err := sdk.Receipt(ctx, first.ID)
	if err != nil || rec2.Status != wire.StatusCommitted || rec2.BlockHeight != rec.BlockHeight {
		t.Fatalf("receipt after resubmit = %+v, err %v", rec2, err)
	}
	// And nothing re-entered the pool.
	st, err := sdk.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.PoolLen != 0 {
		t.Fatalf("pool len = %d after duplicate resubmit", st.PoolLen)
	}
}

// TestSubmitShedsWith429AndRetryAfter drives the raw HTTP mapping of
// admission verdicts: a rate-limited sender gets 429, the verdict name
// as the machine-readable code, and a Retry-After hint; the mempool
// counters surface in /v1/status.
func TestSubmitShedsWith429AndRetryAfter(t *testing.T) {
	w, holders := newTokenWorld(t, 3)
	now := time.Unix(2000, 0)
	n, err := New(Config{
		World: w, Workers: 2, Runner: runtime.NewSimRunner(),
		Mempool: mempool.Config{
			RatePerSec: 1, Burst: 1,
			Now: func() time.Time { return now },
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	url := httpNode(t, n)

	resp, _ := postJSON(t, url+"/v1/tx", transferTx(holders[0], holders[1], 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", resp.StatusCode)
	}
	// Same sender, distinct transaction, bucket empty: shed.
	resp, body := postJSON(t, url+"/v1/tx", transferTx(holders[0], holders[1], 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled submit status = %d (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" at rate 1/s", ra)
	}
	var envelope wire.Error
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("error decode: %v (body %s)", err, body)
	}
	if envelope.Code != mempool.VerdictRateLimited.String() {
		t.Fatalf("code = %q, want %q", envelope.Code, mempool.VerdictRateLimited.String())
	}
	// A different sender is not throttled.
	resp, _ = postJSON(t, url+"/v1/tx", transferTx(holders[2], holders[1], 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other sender status = %d", resp.StatusCode)
	}

	// The shed shows up in the status counters.
	st := n.APIStatus()
	if st.Mempool == nil {
		t.Fatal("status has no mempool section")
	}
	if st.Mempool.Admitted != 2 || st.Mempool.RateLimited != 1 {
		t.Fatalf("mempool counters = %+v", st.Mempool)
	}
}
