package node

import (
	"testing"

	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/persist"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

// Durable-node tests. workload.Generate is deterministic in its params,
// so "the same genesis world" is regenerated at will — exactly how a
// restarted process rebuilds its genesis before recovery. The simulated
// runner makes mining itself deterministic, so a recovered node's
// subsequent blocks can be compared bit-for-bit against an uninterrupted
// run even for the parallel engines.

const (
	recBlocks    = 4
	recBlockSize = 6
)

func recParams() workload.Params {
	return workload.Params{
		Kind: workload.KindToken, Transactions: recBlocks * recBlockSize,
		ConflictPercent: 20, Seed: 41,
	}
}

// recWorld regenerates the deterministic genesis world and call list.
func recWorld(t *testing.T) (*contract.World, []contract.Call) {
	t.Helper()
	wl, err := workload.Generate(recParams())
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return wl.World, wl.Calls
}

// recNode builds a node over a fresh copy of the deterministic world.
func recNode(t *testing.T, ek engine.Kind, dataDir string, opts persist.Options) (*Node, []contract.Call) {
	t.Helper()
	world, calls := recWorld(t)
	n, err := New(Config{
		World: world, Workers: 3, Engine: ek,
		Runner:  runtime.NewSimRunner(),
		DataDir: dataDir, Persist: opts,
	})
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	return n, calls
}

// headAndRoot snapshots the identity of a node's chain tip.
func headAndRoot(n *Node) (types.Hash, types.Hash) {
	h := n.Head().Header
	return h.Hash(), h.StateRoot
}

// TestCrashRecoveryEveryBlock is the property-style crash test: for every
// engine and every kill point N, a node that mined N blocks and died
// without any shutdown courtesy must recover from its data dir to the
// identical head hash and state root, and its subsequent mining must
// reproduce the uninterrupted run block for block.
func TestCrashRecoveryEveryBlock(t *testing.T) {
	for _, ek := range engine.Kinds() {
		ek := ek
		t.Run(ek.String(), func(t *testing.T) {
			t.Parallel()
			// The uninterrupted reference run.
			ref, calls := recNode(t, ek, "", persist.Options{})
			ref.SubmitAll(calls)
			refHeads := make([]types.Hash, recBlocks+1)
			refRoots := make([]types.Hash, recBlocks+1)
			refHeads[0], refRoots[0] = headAndRoot(ref)
			for b := 1; b <= recBlocks; b++ {
				if _, err := ref.MineOne(recBlockSize); err != nil {
					t.Fatalf("reference mine %d: %v", b, err)
				}
				refHeads[b], refRoots[b] = headAndRoot(ref)
			}

			// SnapshotEvery 2 exercises both recovery flavors across the
			// kill points: snapshot + WAL tail, and pure WAL replay.
			opts := persist.Options{SnapshotEvery: 2}
			for kill := 1; kill <= recBlocks; kill++ {
				dir := t.TempDir()
				n, calls := recNode(t, ek, dir, opts)
				n.SubmitAll(calls)
				for b := 1; b <= kill; b++ {
					if _, err := n.MineOne(recBlockSize); err != nil {
						t.Fatalf("kill=%d: mine %d: %v", kill, b, err)
					}
				}
				if h, _ := headAndRoot(n); h != refHeads[kill] {
					t.Fatalf("kill=%d: pre-crash head diverged from reference", kill)
				}
				// Crash: no graceful Close, no pool save — Kill drops the
				// file handles (and data-dir lock) the way a dead process
				// would.
				n.Kill()

				re, calls := recNode(t, ek, dir, opts)
				gotHead, gotRoot := headAndRoot(re)
				if gotHead != refHeads[kill] || gotRoot != refRoots[kill] {
					t.Fatalf("kill=%d: recovered to head %s root %s, want %s %s",
						kill, gotHead.Short(), gotRoot.Short(), refHeads[kill].Short(), refRoots[kill].Short())
				}
				// The crash lost the pool; resubmit the unmined suffix (FIFO
				// selection consumed exactly kill*blockSize calls) and check
				// the recovered node keeps mining the reference chain.
				re.SubmitAll(calls[kill*recBlockSize:])
				for b := kill + 1; b <= recBlocks; b++ {
					if _, err := re.MineOne(recBlockSize); err != nil {
						t.Fatalf("kill=%d: post-recovery mine %d: %v", kill, b, err)
					}
					if h, r := headAndRoot(re); h != refHeads[b] || r != refRoots[b] {
						t.Fatalf("kill=%d: post-recovery block %d diverged from reference", kill, b)
					}
				}
				if err := re.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
			}
		})
	}
}

// TestRecoveryRejectsForeignGenesis: a data dir belongs to one genesis
// world; reopening it under a different one must fail loudly — also in
// the adversarial case where the foreign world has the same contracts
// (so a state restore would "work") and snapshot retention has already
// pruned the genesis snapshot.
func TestRecoveryRejectsForeignGenesis(t *testing.T) {
	// Every block snapshots, so by the third block the genesis snapshot
	// file is pruned and only the permanent identity marker remembers
	// where this directory came from.
	opts := persist.Options{SnapshotEvery: 1}
	dir := t.TempDir()
	n, calls := recNode(t, engine.KindSerial, dir, opts)
	n.SubmitAll(calls)
	for b := 1; b <= 3; b++ {
		if _, err := n.MineOne(recBlockSize); err != nil {
			t.Fatalf("mine: %v", err)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// A structurally different world.
	other, err := workload.Generate(workload.Params{
		Kind: workload.KindBallot, Transactions: 4, ConflictPercent: 0, Seed: 9,
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	if _, err := New(Config{World: other.World, Workers: 1, DataDir: dir, Persist: opts}); err == nil {
		t.Fatal("foreign genesis world reopened someone else's data dir")
	}

	// The same deterministic setup but a different seed: identical
	// object names, different genesis state. RestoreState alone would
	// succeed, so only the identity marker stands between this and
	// silently adopting the wrong chain.
	sameShape, err := workload.Generate(func() workload.Params {
		p := recParams()
		p.Seed++
		return p
	}())
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	if _, err := New(Config{World: sameShape.World, Workers: 1, DataDir: dir, Persist: opts}); err == nil {
		t.Fatal("same-shape foreign genesis adopted the data dir")
	}

	// The rightful world still opens it.
	re, _ := recNode(t, engine.KindSerial, dir, opts)
	if re.Head().Header.Number != 3 {
		t.Fatalf("rightful reopen at height %d, want 3", re.Head().Header.Number)
	}
	if err := re.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestPoolSurvivesRestart is the txpool restart-gap fix: submitted but
// unmined calls must survive a graceful shutdown and land back in the
// reopened node's pool, in order.
func TestPoolSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	n, calls := recNode(t, engine.KindSerial, dir, persist.Options{})
	n.SubmitAll(calls)
	if _, err := n.MineOne(recBlockSize); err != nil {
		t.Fatalf("mine: %v", err)
	}
	pending := n.PoolLen()
	if pending == 0 {
		t.Fatal("test needs unmined calls in the pool")
	}
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, _ := recNode(t, engine.KindSerial, dir, persist.Options{})
	if got := re.PoolLen(); got != pending {
		t.Fatalf("restored pool %d calls, want %d", got, pending)
	}
	// The restored calls are the original unmined suffix, still in order:
	// mining them reproduces the uninterrupted chain.
	ref, refCalls := recNode(t, engine.KindSerial, "", persist.Options{})
	ref.SubmitAll(refCalls)
	for b := 1; b <= recBlocks; b++ {
		if _, err := ref.MineOne(recBlockSize); err != nil {
			t.Fatalf("reference mine: %v", err)
		}
	}
	for b := 2; b <= recBlocks; b++ {
		if _, err := re.MineOne(recBlockSize); err != nil {
			t.Fatalf("post-restart mine: %v", err)
		}
	}
	if re.Head().Header.Hash() != ref.Head().Header.Hash() {
		t.Fatal("chain mined from the restored pool diverged from reference")
	}
	if err := re.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The pool file was consumed: a crash-reopen now must not resurrect
	// stale calls... but Close above re-saved the current pool, so drain
	// it first and close again.
	re2, _ := recNode(t, engine.KindSerial, dir, persist.Options{})
	for re2.PoolLen() > 0 {
		if _, err := re2.MineOne(recBlockSize); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	if err := re2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re3, _ := recNode(t, engine.KindSerial, dir, persist.Options{})
	defer re3.Close()
	if got := re3.PoolLen(); got != 0 {
		t.Fatalf("drained node restored %d pool calls, want 0", got)
	}
}

// TestStatusReportsPersistence: the status surface carries the durable
// node's recovery facts.
func TestStatusReportsPersistence(t *testing.T) {
	dir := t.TempDir()
	n, calls := recNode(t, engine.KindSerial, dir, persist.Options{SnapshotEvery: 2})
	n.SubmitAll(calls)
	for b := 1; b <= 3; b++ {
		if _, err := n.MineOne(recBlockSize); err != nil {
			t.Fatalf("mine: %v", err)
		}
	}
	// Crash (no graceful Close) and recover.
	n.Kill()
	re, _ := recNode(t, engine.KindSerial, dir, persist.Options{SnapshotEvery: 2})
	defer re.Close()
	st := re.CurrentStatus()
	if !st.Persistent {
		t.Fatal("status not persistent")
	}
	if st.SnapshotHeight != 2 {
		t.Fatalf("snapshot height %d, want 2", st.SnapshotHeight)
	}
	if st.RecoveredBlocks != 1 {
		t.Fatalf("recovered %d blocks, want 1 (WAL tail after snapshot)", st.RecoveredBlocks)
	}
	if st.Height != 3 {
		t.Fatalf("height %d, want 3", st.Height)
	}
}
