package node

// Engine interop at the node layer: a miner node running any execution
// engine must produce blocks that a plain validator node (which knows
// nothing about engines) accepts over the block-transfer path.

import (
	"testing"

	"contractstm/internal/contract"
	"contractstm/internal/contracts"
	"contractstm/internal/engine"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
)

// engineWorld builds one deterministic token world for engine tests.
func engineWorld(t *testing.T) (*contract.World, []contract.Call) {
	t.Helper()
	w, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	addr := types.AddressFromUint64(0x70CE)
	issuer := types.AddressFromUint64(0x1551)
	token, err := contracts.NewToken(w, addr, issuer, 1_000_000)
	if err != nil {
		t.Fatalf("NewToken: %v", err)
	}
	var calls []contract.Call
	for i := 0; i < 24; i++ {
		from := types.AddressFromUint64(0xA000 + uint64(i))
		if err := token.SeedBalance(w, from, 500); err != nil {
			t.Fatalf("seed: %v", err)
		}
		calls = append(calls, contract.Call{
			Sender: from, Contract: addr, Function: "transfer",
			Args: []any{types.AddressFromUint64(0xB000 + uint64(i)), uint64(5)}, GasLimit: 100_000,
		})
	}
	return w, calls
}

func TestNodeEnginesInterop(t *testing.T) {
	for _, ek := range engine.Kinds() {
		ek := ek
		t.Run(ek.String(), func(t *testing.T) {
			mw, calls := engineWorld(t)
			vw, _ := engineWorld(t)

			minerNode, err := New(Config{World: mw, Workers: 3, Runner: runtime.NewSimRunner(), Engine: ek})
			if err != nil {
				t.Fatalf("miner node: %v", err)
			}
			// The validator node keeps the default engine: validation is
			// engine-agnostic by construction.
			validatorNode, err := New(Config{World: vw, Workers: 3, Runner: runtime.NewSimRunner()})
			if err != nil {
				t.Fatalf("validator node: %v", err)
			}

			for _, c := range calls {
				minerNode.Submit(c)
			}
			block, err := minerNode.MineOne(len(calls))
			if err != nil {
				t.Fatalf("MineOne: %v", err)
			}
			if err := validatorNode.AcceptBlock(block); err != nil {
				t.Fatalf("validator rejected %v-engine block: %v", ek, err)
			}
			if got := minerNode.CurrentStatus().Engine; got != ek.String() {
				t.Fatalf("status engine = %q, want %q", got, ek)
			}
			if minerNode.Height() != 1 || validatorNode.Height() != 1 {
				t.Fatalf("heights = %d/%d, want 1/1", minerNode.Height(), validatorNode.Height())
			}
		})
	}
}

func TestNodeRejectsUnknownEngine(t *testing.T) {
	w, _ := engineWorld(t)
	if _, err := New(Config{World: w, Engine: engine.Kind(99)}); err == nil {
		t.Fatal("New accepted an unknown engine kind")
	}
}
