package wire

import (
	"errors"
	"fmt"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/sched"
	"contractstm/internal/types"
)

func TestArgRoundTrip(t *testing.T) {
	vals := []any{uint64(7), int(3), true, "hello",
		types.AddressFromUint64(1), types.HashString("h"), types.Amount(5)}
	for _, v := range vals {
		a, err := EncodeArg(v)
		if err != nil {
			t.Fatalf("EncodeArg(%v): %v", v, err)
		}
		back, err := DecodeArg(a)
		if err != nil {
			t.Fatalf("DecodeArg(%+v): %v", a, err)
		}
		if fmt.Sprintf("%T:%v", back, back) != fmt.Sprintf("%T:%v", v, v) {
			t.Fatalf("round trip %v -> %v", v, back)
		}
	}
	if _, err := EncodeArg(3.14); err == nil {
		t.Fatal("float arg encoded")
	}
	if _, err := DecodeArg(Arg{Type: "float", Value: "1"}); err == nil {
		t.Fatal("unknown arg type decoded")
	}
}

func testCall(fn string, amount uint64) contract.Call {
	return contract.Call{
		Sender:   types.AddressFromUint64(1),
		Contract: types.AddressFromUint64(2),
		Function: fn,
		Args:     []any{types.AddressFromUint64(3), amount},
		GasLimit: gas.Gas(100_000),
	}
}

// TestTxIDOf: content-derived IDs are deterministic, distinct for
// distinct calls, and survive the wire round trip — any node (and the
// submitting client itself) derives the same ID.
func TestTxIDOf(t *testing.T) {
	a, b := testCall("transfer", 5), testCall("transfer", 6)
	if TxIDOf(a) != TxIDOf(a) {
		t.Fatal("same call, different IDs")
	}
	if TxIDOf(a) == TxIDOf(b) {
		t.Fatal("different calls share an ID")
	}
	sub, err := SubmitOf(a)
	if err != nil {
		t.Fatalf("SubmitOf: %v", err)
	}
	back, err := sub.Call()
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if TxIDOf(back) != TxIDOf(a) {
		t.Fatal("wire round trip changed the content-derived ID")
	}
}

// TestSubmitCallErrorCodes: every decode failure carries its stable
// machine code.
func TestSubmitCallErrorCodes(t *testing.T) {
	good, _ := SubmitOf(testCall("f", 1))
	cases := []struct {
		name   string
		mutate func(*TxSubmit)
		code   string
	}{
		{"bad sender", func(s *TxSubmit) { s.Sender = "nope" }, CodeBadAddress},
		{"bad contract", func(s *TxSubmit) { s.Contract = "zz" }, CodeBadAddress},
		{"missing function", func(s *TxSubmit) { s.Function = "  " }, CodeMissingFunction},
		{"bad arg type", func(s *TxSubmit) { s.Args = []Arg{{Type: "float", Value: "1"}} }, CodeBadArg},
		{"bad arg value", func(s *TxSubmit) { s.Args = []Arg{{Type: "uint64", Value: "abc"}} }, CodeBadArg},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sub := good
			tc.mutate(&sub)
			_, err := sub.Call()
			var we *Error
			if !errors.As(err, &we) || we.Code != tc.code {
				t.Fatalf("err = %v, want code %s", err, tc.code)
			}
		})
	}
}

// TestReceiptsOf: receipts map block execution results onto the wire —
// committed vs aborted status, gas, block coordinates, and the schedule
// position read off the published serial order S.
func TestReceiptsOf(t *testing.T) {
	calls := []contract.Call{testCall("a", 1), testCall("b", 2)}
	receipts := []contract.Receipt{
		{Tx: 0, GasUsed: 42},
		{Tx: 1, Reverted: true, GasUsed: 7, Reason: "insufficient funds"},
	}
	s := sched.Schedule{Order: []types.TxID{1, 0}}
	b := chain.Seal(chain.GenesisHeader(types.HashString("root")), calls, receipts, s, nil, types.HashString("post"))

	out := ReceiptsOf(b)
	if len(out) != 2 {
		t.Fatalf("receipts = %d", len(out))
	}
	if out[0].Status != StatusCommitted || out[0].GasUsed != 42 || out[0].ScheduleIndex != 1 || out[0].TxIndex != 0 {
		t.Fatalf("receipt 0 = %+v", out[0])
	}
	if out[1].Status != StatusAborted || out[1].AbortReason != "insufficient funds" || out[1].ScheduleIndex != 0 {
		t.Fatalf("receipt 1 = %+v", out[1])
	}
	for i, r := range out {
		if r.ID != TxIDOf(calls[i]).String() {
			t.Fatalf("receipt %d ID mismatch", i)
		}
		if r.BlockHeight != 1 || r.BlockHash != b.Header.Hash().String() {
			t.Fatalf("receipt %d block coords = %+v", i, r)
		}
	}
}

// TestBlockInfoOf keeps the legacy head-summary JSON keys stable.
func TestBlockInfoOf(t *testing.T) {
	calls := []contract.Call{testCall("a", 1)}
	receipts := []contract.Receipt{{Tx: 0}}
	s := sched.Schedule{Order: []types.TxID{0}, Edges: []sched.Edge{{From: 0, To: 0}}}
	b := chain.Seal(chain.GenesisHeader(types.HashString("root")), calls, receipts, s, nil, types.HashString("post"))
	info := BlockInfoOf(b)
	if info.Number != 1 || info.TxCount != 1 || info.Edges != 1 {
		t.Fatalf("info = %+v", info)
	}
	if info.Hash != b.Header.Hash().String() || info.ParentHash != b.Header.ParentHash.String() {
		t.Fatalf("info hashes = %+v", info)
	}
}
