// Package wire is the typed schema of the node's versioned client API
// (/v1): request and response DTOs for transaction submission, receipts,
// blocks, chain head, node status, state reads and event streams, plus
// the stable machine-readable error codes every /v1 handler speaks.
//
// The package is deliberately free of server and client logic — it is
// the contract between internal/api (the server), internal/api/client
// (the Go SDK) and any foreign-language client that speaks the JSON.
// Hashes and addresses travel as 0x-prefixed hex strings; gas and
// amounts as JSON numbers.
//
// Transaction identity is content-derived: TxIDOf hashes the call's
// canonical encoding (the same bytes the block's transaction Merkle root
// commits to), so every node — miner or validator — derives the same ID
// for the same call without coordination, and a client can recompute the
// ID of anything it submitted. Two byte-identical calls share an ID; the
// receipt then describes the most recent execution.
package wire

import (
	"fmt"
	"strconv"
	"strings"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/types"
)

// Machine-readable error codes. Codes are append-only across releases:
// clients dispatch on Code, never on the human-readable message.
const (
	// CodeBadRequest is a malformed request body or parameter.
	CodeBadRequest = "bad_request"
	// CodeBadAddress is an unparseable account or contract address.
	CodeBadAddress = "bad_address"
	// CodeBadArg is an argument with an unknown type tag or unparseable
	// value.
	CodeBadArg = "bad_arg"
	// CodeMissingFunction is a tx submit without a function name.
	CodeMissingFunction = "missing_function"
	// CodeUnsupportedMedia is a request body with a content type the
	// endpoint does not accept.
	CodeUnsupportedMedia = "unsupported_media_type"
	// CodeBodyTooLarge is a request body over the server's byte limit.
	CodeBodyTooLarge = "body_too_large"
	// CodeGasLimitTooHigh is a tx submit whose gas limit exceeds the
	// node's configured maximum.
	CodeGasLimitTooHigh = "gas_limit_too_high"
	// CodeTxNotFound is a receipt query for an ID the node does not know
	// (never submitted here, evicted, or pruned under a snapshot).
	CodeTxNotFound = "tx_not_found"
	// CodeBlockNotFound is a block query above the durable head or below
	// a pruned chain's base.
	CodeBlockNotFound = "block_not_found"
	// CodeMineFailed is a mining request the node could not satisfy
	// (empty pool, execution failure, pipeline abort).
	CodeMineFailed = "mine_failed"
	// CodeBlockRejected is an uploaded block the validator refused.
	CodeBlockRejected = "block_rejected"
	// CodeSnapshotUnavailable is a snapshot request the node cannot
	// serve.
	CodeSnapshotUnavailable = "snapshot_unavailable"
	// CodeInternal is an unexpected server-side failure.
	CodeInternal = "internal"

	// Read-replica codes (bounded-staleness reads). CodeReplicaBehind
	// answers 412 Precondition Failed: the serving node's durable height
	// is below the client's min_height (or a requested historical height
	// is above it). The answer carries X-Chain-Height plus a Retry-After
	// hint — the read is well-formed, the replica just has not caught up.
	CodeReplicaBehind = "replica_behind"
	// CodeHeightUnavailable answers 404: the requested historical height
	// sits below what the node's history window still materializes (the
	// chain is pruned there, or no history is attached at all).
	CodeHeightUnavailable = "height_unavailable"
)

// Response headers carrying the bounded-staleness read contract: the
// durable height the node serves reads at, and how stale that height is
// in milliseconds. Stamped on every response so clients (and the SDK's
// ReplicaSet) track replica freshness without extra round-trips.
const (
	HeaderChainHeight    = "X-Chain-Height"
	HeaderChainStaleness = "X-Chain-Staleness"

	// Admission-control codes (POST /v1/tx). CodeTxDuplicate answers 409
	// — the transaction is already queued or executed here, and the
	// caller's existing receipt stands. The remaining four answer 429
	// with a Retry-After header; each names the admission stage that shed
	// the submission, and the code string equals the "verdict" value an
	// accepted submit reports.

	// CodeTxDuplicate is a submit whose content-derived ID the node
	// already tracks (queued or executed); the existing receipt stands.
	CodeTxDuplicate = "tx_duplicate"
	// CodeRateLimited is a submit shed by the sender's token-bucket rate
	// limit.
	CodeRateLimited = "rate_limited"
	// CodeSenderLimit is a submit shed by the per-sender slot cap (and
	// not outranking any of the sender's queued transactions).
	CodeSenderLimit = "sender_limit"
	// CodeShardSaturated is a submit shed because the sender's mempool
	// shard is at its entry cap.
	CodeShardSaturated = "shard_saturated"
	// CodePoolOverloaded is a submit shed by the mempool byte budget
	// with nothing cheaper to evict.
	CodePoolOverloaded = "pool_overloaded"
)

// Error is the JSON error envelope every /v1 handler returns on non-2xx.
// Message is for humans and unstable; Code is the machine contract. The
// legacy "error" JSON key is kept so pre-v1 clients keep parsing.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"error"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// Arg is the JSON encoding of one contract call argument: a type tag and
// the value rendered as a string.
type Arg struct {
	// Type is one of "uint64", "int", "bool", "string", "address",
	// "hash", "amount".
	Type  string `json:"type"`
	Value string `json:"value"`
}

// DecodeArg converts a wire argument to its in-memory value.
func DecodeArg(a Arg) (any, error) {
	switch a.Type {
	case "uint64":
		n, err := strconv.ParseUint(a.Value, 10, 64)
		return n, err
	case "int":
		n, err := strconv.Atoi(a.Value)
		return n, err
	case "bool":
		return a.Value == "true", nil
	case "string":
		return a.Value, nil
	case "address":
		return types.ParseAddress(a.Value)
	case "hash":
		return types.ParseHash(a.Value)
	case "amount":
		n, err := strconv.ParseUint(a.Value, 10, 64)
		return types.Amount(n), err
	default:
		return nil, fmt.Errorf("unknown argument type %q", a.Type)
	}
}

// EncodeArg renders a call argument for the wire.
func EncodeArg(v any) (Arg, error) {
	switch x := v.(type) {
	case uint64:
		return Arg{Type: "uint64", Value: strconv.FormatUint(x, 10)}, nil
	case int:
		return Arg{Type: "int", Value: strconv.Itoa(x)}, nil
	case bool:
		return Arg{Type: "bool", Value: strconv.FormatBool(x)}, nil
	case string:
		return Arg{Type: "string", Value: x}, nil
	case types.Address:
		return Arg{Type: "address", Value: x.String()}, nil
	case types.Hash:
		return Arg{Type: "hash", Value: x.String()}, nil
	case types.Amount:
		return Arg{Type: "amount", Value: strconv.FormatUint(uint64(x), 10)}, nil
	default:
		return Arg{}, fmt.Errorf("unsupported argument type %T", v)
	}
}

// EncodeArgs renders a full argument list for the wire.
func EncodeArgs(vals []any) ([]Arg, error) {
	out := make([]Arg, 0, len(vals))
	for _, v := range vals {
		a, err := EncodeArg(v)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// TxSubmit is the POST /v1/tx request body.
type TxSubmit struct {
	Sender   string `json:"sender"`
	Contract string `json:"contract"`
	Function string `json:"function"`
	Args     []Arg  `json:"args,omitempty"`
	Value    uint64 `json:"value,omitempty"`
	// GasLimit bounds the call's execution steps; 0 selects the node's
	// configured default.
	GasLimit uint64 `json:"gasLimit"`
	// Priority is the submission's mempool lane (0-255, higher first).
	// Higher-priority transactions are selected first and may replace a
	// sender's queued lower-priority transactions at the slot cap.
	// Priority is intake-side quality of service, not consensus state.
	Priority uint8 `json:"priority,omitempty"`
}

// SubmitOf renders a contract call as a submit request (client helper).
func SubmitOf(c contract.Call) (TxSubmit, error) {
	args, err := EncodeArgs(c.Args)
	if err != nil {
		return TxSubmit{}, err
	}
	return TxSubmit{
		Sender:   c.Sender.String(),
		Contract: c.Contract.String(),
		Function: c.Function,
		Args:     args,
		Value:    uint64(c.Value),
		GasLimit: uint64(c.GasLimit),
	}, nil
}

// Call decodes the submit request into a contract call. Failures are
// *Error values with the matching machine code; gas-limit defaulting and
// capping are the server's policy, not the schema's.
func (t TxSubmit) Call() (contract.Call, error) {
	sender, err := types.ParseAddress(t.Sender)
	if err != nil {
		return contract.Call{}, &Error{Code: CodeBadAddress, Message: "sender: " + err.Error()}
	}
	target, err := types.ParseAddress(t.Contract)
	if err != nil {
		return contract.Call{}, &Error{Code: CodeBadAddress, Message: "contract: " + err.Error()}
	}
	if strings.TrimSpace(t.Function) == "" {
		return contract.Call{}, &Error{Code: CodeMissingFunction, Message: "missing function"}
	}
	args := make([]any, 0, len(t.Args))
	for i, a := range t.Args {
		v, err := DecodeArg(a)
		if err != nil {
			return contract.Call{}, &Error{Code: CodeBadArg, Message: fmt.Sprintf("arg %d: %v", i, err)}
		}
		args = append(args, v)
	}
	return contract.Call{
		Sender: sender, Contract: target, Function: t.Function,
		Args: args, Value: types.Amount(t.Value), GasLimit: gas.Gas(t.GasLimit),
	}, nil
}

// TxSubmitted is the POST /v1/tx response: the content-derived
// transaction ID to poll receipts with, and the pool depth after the
// submit (the legacy field pre-v1 clients read).
type TxSubmitted struct {
	ID      string `json:"id"`
	PoolLen int    `json:"poolLen"`
	// Verdict is the admission outcome for an accepted submit:
	// "admitted", or "replaced" when the transaction displaced a queued
	// lower-priority transaction from the same sender. Empty from
	// pre-admission servers.
	Verdict string `json:"verdict,omitempty"`
}

// TxIDOf derives a call's transaction ID: the hash of its canonical
// encoding — the same bytes the block's transaction root commits to.
func TxIDOf(c contract.Call) types.Hash {
	return types.HashBytes(c.EncodeForHash())
}

// Transaction statuses as reported by receipts.
const (
	// StatusPending: submitted here, not yet part of a durable block.
	StatusPending = "pending"
	// StatusCommitted: executed and committed in a durable block.
	StatusCommitted = "committed"
	// StatusAborted: executed, aborted (reverted), gas consumed; still
	// part of a durable block's schedule.
	StatusAborted = "aborted"
	// StatusEvicted: dropped from the mempool under memory pressure (or
	// replaced by a higher-priority transaction) before ever executing.
	// Terminal for this submission, but the same transaction may be
	// resubmitted — eviction does not make its ID a duplicate.
	StatusEvicted = "evicted"
)

// TxReceipt is the GET /v1/tx/{id} response: one transaction's execution
// digest, served only once the containing block is durable. A pending
// transaction answers with Status "pending" and zero block fields.
type TxReceipt struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// GasUsed is the gas the execution consumed (aborts consume too).
	GasUsed uint64 `json:"gasUsed,omitempty"`
	// AbortReason is the human-readable revert reason, aborted only.
	AbortReason string `json:"abortReason,omitempty"`
	// BlockHeight and BlockHash locate the durable containing block.
	BlockHeight uint64 `json:"blockHeight,omitempty"`
	BlockHash   string `json:"blockHash,omitempty"`
	// TxIndex is the transaction's position in the block's call list
	// (its TxID in the paper's sense).
	TxIndex int `json:"txIndex"`
	// ScheduleIndex is the transaction's position in the published
	// serial order S — where the validator's replay commits it.
	ScheduleIndex int `json:"scheduleIndex"`
}

// BlockInfo is the JSON view of a block header plus body sizes, served
// by GET /v1/head, GET /v1/blocks info responses, POST /v1/mine and the
// event stream. Field names predate /v1 (the legacy head summary used
// the same keys), so pre-v1 clients keep parsing.
type BlockInfo struct {
	Number       uint64 `json:"number"`
	Hash         string `json:"hash"`
	ParentHash   string `json:"parentHash"`
	StateRoot    string `json:"stateRoot"`
	TxCount      int    `json:"txCount"`
	Edges        int    `json:"edges"`
	ScheduleHash string `json:"scheduleHash"`
	// AlreadyKnown marks an idempotent re-import (POST /v1/blocks only).
	AlreadyKnown bool `json:"alreadyKnown,omitempty"`
}

// BlockInfoOf summarizes a sealed block for the wire.
func BlockInfoOf(b chain.Block) BlockInfo {
	return BlockInfo{
		Number:       b.Header.Number,
		Hash:         b.Header.Hash().String(),
		ParentHash:   b.Header.ParentHash.String(),
		StateRoot:    b.Header.StateRoot.String(),
		TxCount:      len(b.Calls),
		Edges:        len(b.Schedule.Edges),
		ScheduleHash: b.Header.ScheduleHash.String(),
	}
}

// ReceiptsOf derives the wire receipts of a (durable) block: one per
// call, IDs content-derived, schedule positions read off the published
// serial order S.
func ReceiptsOf(b chain.Block) []TxReceipt {
	schedPos := make([]int, len(b.Calls))
	for pos, tx := range b.Schedule.Order {
		if int(tx) < len(schedPos) {
			schedPos[int(tx)] = pos
		}
	}
	hash := b.Header.Hash().String()
	out := make([]TxReceipt, len(b.Calls))
	for i, c := range b.Calls {
		r := TxReceipt{
			ID:            TxIDOf(c).String(),
			Status:        StatusCommitted,
			BlockHeight:   b.Header.Number,
			BlockHash:     hash,
			TxIndex:       i,
			ScheduleIndex: schedPos[i],
		}
		if i < len(b.Receipts) {
			r.GasUsed = uint64(b.Receipts[i].GasUsed)
			if b.Receipts[i].Reverted {
				r.Status = StatusAborted
				r.AbortReason = b.Receipts[i].Reason
			}
		}
		out[i] = r
	}
	return out
}

// Mine is the POST /v1/mine request body.
type Mine struct {
	// BlockSize caps transactions in the mined block; 0 selects the
	// node's configured default.
	BlockSize int `json:"blockSize"`
}

// Balance is the GET /v1/state/{address} response: a state read of one
// account's balance at the current block boundary, or — with ?height=H —
// at a materialized historical height.
type Balance struct {
	Address string `json:"address"`
	Balance uint64 `json:"balance"`
	// Height is the block height the balance was read at: the node's
	// served (durable) height for latest reads, the requested height for
	// historical ones. Omitted by pre-replica servers.
	Height uint64 `json:"height,omitempty"`
}

// APIMetrics is the server's per-process request accounting, embedded in
// Status by the /v1 layer.
type APIMetrics struct {
	// Requests and Errors count handled requests and non-2xx answers.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// ByRoute breaks requests down per route pattern.
	ByRoute map[string]int64 `json:"byRoute,omitempty"`
	// Subscribers is the number of live event-stream subscriptions.
	Subscribers int `json:"subscribers"`
	// EventsDropped counts subscriptions terminated for falling behind.
	EventsDropped int64 `json:"eventsDropped"`
}

// Status is the GET /v1/status response. It mirrors the node's status
// fields (hashes as hex strings) and adds the API layer's own metrics.
type Status struct {
	Height          uint64 `json:"height"`
	HeadHash        string `json:"headHash"`
	PoolLen         int    `json:"poolLen"`
	Engine          string `json:"engine"`
	MinedBlocks     int    `json:"minedBlocks"`
	ValidatedBlocks int    `json:"validatedBlocks"`
	TotalRetries    int    `json:"totalRetries"`
	// DurableHeight is the newest block the persistence layer has
	// acknowledged; Height - DurableHeight is the sealed-not-durable
	// pipeline window.
	DurableHeight   uint64 `json:"durableHeight"`
	PipelineDepth   int    `json:"pipelineDepth,omitempty"`
	InFlight        int    `json:"inFlight,omitempty"`
	Persistent      bool   `json:"persistent"`
	RecoveredBlocks int    `json:"recoveredBlocks,omitempty"`
	SnapshotHeight  uint64 `json:"snapshotHeight,omitempty"`
	SnapshotErrors  int64  `json:"snapshotErrors,omitempty"`
	WalAppends      int64  `json:"walAppends,omitempty"`
	WalBytesWritten int64  `json:"walBytesWritten,omitempty"`
	WalFsyncs       int64  `json:"walFsyncs,omitempty"`
	WalFsyncMicros  int64  `json:"walFsyncMicros,omitempty"`
	WalGroupCommits int64  `json:"walGroupCommits,omitempty"`
	WalMaxGroup     int    `json:"walMaxGroup,omitempty"`
	ChainBase       uint64 `json:"chainBase,omitempty"`
	// ImportMode is the staged-import rollout switch (off|shadow|on;
	// empty from pre-pipeline servers); ImportDivergences counts
	// shadow-mode verdict disagreements between the parallel stateless
	// phase and the serial recomputation — the shadow→on promotion gate.
	ImportMode        string `json:"importMode,omitempty"`
	ImportDivergences int64  `json:"importDivergences,omitempty"`
	// Mempool reports the sharded pool's admission counters and
	// occupancy (nil from pre-admission servers).
	Mempool *MempoolStatus `json:"mempool,omitempty"`
	// API is filled in by the serving layer (nil when the status was
	// produced outside an API server).
	API *APIMetrics `json:"api,omitempty"`
	// Relay reports the node's upstream event-relay loop (nil unless the
	// node runs as a read replica with a relay attached).
	Relay *RelayStatus `json:"relay,omitempty"`
}

// RelayStatus is the read-replica relay's accounting inside
// GET /v1/status: one upstream Subscribe connection feeding the local
// broker, with gap-fill on reconnect.
type RelayStatus struct {
	// Upstream is the base URL of the node the relay follows.
	Upstream string `json:"upstream"`
	// Events counts upstream block events applied or republished.
	Events int64 `json:"events"`
	// Reconnects counts upstream stream re-establishments (the initial
	// connect is not counted).
	Reconnects int64 `json:"reconnects"`
	// GapsFilled counts blocks fetched through the range endpoint
	// because the event stream skipped past them (drop or reconnect).
	GapsFilled int64 `json:"gapsFilled"`
	// UpstreamHeight is the newest block height observed on the
	// upstream stream; local durable height lagging it is the replica's
	// current staleness in blocks.
	UpstreamHeight uint64 `json:"upstreamHeight"`
}

// MempoolStatus is the sharded mempool's admission accounting inside
// GET /v1/status: cumulative counters per admission verdict, eviction
// count, and current occupancy overall and per shard.
type MempoolStatus struct {
	Admitted       int64 `json:"admitted"`
	Replaced       int64 `json:"replaced,omitempty"`
	Duplicate      int64 `json:"duplicate,omitempty"`
	RateLimited    int64 `json:"rateLimited,omitempty"`
	SenderLimit    int64 `json:"senderLimit,omitempty"`
	ShardSaturated int64 `json:"shardSaturated,omitempty"`
	PoolOverloaded int64 `json:"poolOverloaded,omitempty"`
	Evicted        int64 `json:"evicted,omitempty"`
	// Bytes is the pool's current encoded-byte footprint; Shards the
	// configured stripe count; ShardOccupancy the queued count per shard.
	Bytes          int64 `json:"bytes"`
	Shards         int   `json:"shards"`
	ShardOccupancy []int `json:"shardOccupancy,omitempty"`
}

// Event is one event-stream entry (GET /v1/subscribe): a block that just
// became durable, with its receipts. Events are emitted in height order.
type Event struct {
	// Seq is the server-assigned monotonic sequence number; gaps tell a
	// resubscribing client it missed events and should catch up via
	// GET /v1/blocks.
	Seq uint64 `json:"seq"`
	// Block is the durable block's summary.
	Block BlockInfo `json:"block"`
	// Receipts are the block's transaction receipts.
	Receipts []TxReceipt `json:"receipts,omitempty"`
}
