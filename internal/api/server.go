// Package api is the node's versioned HTTP serving layer: the /v1
// routes (typed wire schema, transaction receipts, event streams), the
// legacy unversioned aliases kept for one release, and the server
// middleware — request body limits, per-route timeouts and request
// metrics.
//
// The package is deliberately independent of internal/node: the server
// talks to the node through the narrow Backend interface, and the
// receipt store and event broker are passed in by the node, which owns
// feeding them (receipts are recorded only once a block is durable — the
// crash rule extends to the client API). internal/api/client is the Go
// SDK for this surface; internal/api/wire is the schema both sides
// share.
package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"contractstm/internal/api/wire"
	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/persist"
	"contractstm/internal/types"
)

// Defaults for Config's zero values.
const (
	// DefaultBlockSize caps mined blocks when the request leaves the
	// size unset.
	DefaultBlockSize = 100
	// DefaultGasLimit is assigned to submitted transactions that leave
	// the gas limit unset.
	DefaultGasLimit = 1_000_000
	// DefaultMaxGasLimit rejects submitted gas limits above it.
	DefaultMaxGasLimit = 100_000_000
	// DefaultMaxBodyBytes bounds JSON request bodies.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultTimeout bounds non-streaming request handling.
	DefaultTimeout = 60 * time.Second
)

// SubmitResult is the backend's admission outcome for one transaction
// submit. The server maps it onto the HTTP surface: admitted → 202,
// duplicate → 409 (the existing receipt stands), everything else →
// 429 with a Retry-After header.
type SubmitResult struct {
	// ID is the content-derived transaction ID — meaningful for every
	// outcome, so a shed caller can still correlate.
	ID types.Hash
	// Verdict is the wire-stable verdict name ("admitted", "replaced",
	// "duplicate", "rate_limited", "sender_limit", "shard_saturated",
	// "pool_overloaded"). For shed submissions it doubles as the error
	// code.
	Verdict string
	// Admitted reports the transaction is queued (admitted or replaced).
	Admitted bool
	// Duplicate reports a known-identical transaction.
	Duplicate bool
	// RetryAfter is the pool's back-off hint for shed submissions (0 =
	// no estimate; the server clamps the header to at least 1s).
	RetryAfter time.Duration
}

// Backend is the node surface the server serves. Implementations:
// *node.Node. Every method must be safe for concurrent use.
type Backend interface {
	// SubmitTx runs a transaction through mempool admission at the given
	// priority lane, marking it pending in the receipt store on success
	// (the backend owns the store's write side).
	SubmitTx(call contract.Call, priority uint8) SubmitResult
	// PoolLen reports queued transactions.
	PoolLen() int
	// MineOne mines one block of at most blockSize transactions.
	MineOne(blockSize int) (chain.Block, error)
	// ImportBlock validates and appends a foreign block; alreadyKnown
	// reports an idempotent re-import (a 2xx answer, not an error).
	ImportBlock(b chain.Block) (alreadyKnown bool, err error)
	// DurableBlock returns the block at the given height if the node
	// holds it and it is durable (the crash rule gates the wire API).
	DurableBlock(height uint64) (chain.Block, bool)
	// DurableHead returns the newest durable block.
	DurableHead() chain.Block
	// APIStatus snapshots node statistics in wire form (API field nil;
	// the server fills it).
	APIStatus() wire.Status
	// Snapshot produces the state checkpoint GET /v1/snapshot serves
	// when no cached wire encoding exists.
	Snapshot() (persist.Snapshot, error)
	// SnapshotWire returns the cached framed snapshot bytes, or nil.
	SnapshotWire() []byte
	// BalanceAt reads an account balance at the current block boundary.
	BalanceAt(types.Address) (types.Amount, error)
	// ReadStamp reports the durable height every read is served at plus
	// the node's staleness bound in milliseconds — time elapsed since
	// that height was reached (0 when unknown, e.g. before any block).
	ReadStamp() (height uint64, stalenessMillis int64)
	// BalanceAtHeight reads an account balance at a historical block
	// height. ErrHeightAhead means the node has not durably reached the
	// height yet (412); ErrHeightUnavailable means the height fell out
	// of the node's history window or no history is attached (404).
	BalanceAtHeight(types.Address, uint64) (types.Amount, error)
}

// Sentinel errors Backend.BalanceAtHeight maps historical-read failures
// onto; the server translates them to replica_behind (412) and
// height_unavailable (404).
var (
	ErrHeightAhead       = errors.New("height ahead of served height")
	ErrHeightUnavailable = errors.New("height not materializable")
)

// Config assembles a Server.
type Config struct {
	// Backend is the node (required).
	Backend Backend
	// Receipts is the receipt index the backend records into (required).
	Receipts *ReceiptStore
	// Events is the durable-block broker the backend publishes to
	// (required for /v1/subscribe; nil disables the route).
	Events *Broker
	// DefaultBlockSize, DefaultGasLimit, MaxGasLimit and MaxBodyBytes
	// tune request handling; zero selects the package defaults.
	DefaultBlockSize int
	DefaultGasLimit  uint64
	MaxGasLimit      uint64
	MaxBodyBytes     int64
	// Timeout bounds every non-streaming request (0 = DefaultTimeout,
	// negative = none). The event stream is exempt.
	Timeout time.Duration
	// SubscriberBuffer sizes each /v1/subscribe subscriber's event
	// buffer (<=0 selects DefaultSubscriberBuffer). Relays serving
	// thousands of downstream subscribers raise it so a scheduling
	// hiccup does not cascade into drops.
	SubscriberBuffer int
	// ErrorLog receives server-side serving faults (response encoding
	// failures — malformed DTOs must not be silent). Nil discards.
	ErrorLog func(error)
}

// Server is the node's HTTP API: /v1 plus legacy aliases.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	handler http.Handler

	// statusDecorator, when set, amends the status DTO before it is
	// served — the replica relay injects its accounting here. Stored
	// atomically because the relay attaches after the server starts.
	statusDecorator atomic.Pointer[func(*wire.Status)]

	// request metrics (lock-free; read by the status handler).
	requests atomic.Int64
	errs     atomic.Int64
	routeMu  sync.Mutex
	byRoute  map[string]*atomic.Int64
}

// SetStatusDecorator installs (or, with nil, removes) a hook that may
// amend every GET /v1/status response before encoding. Safe to call
// while the server is serving.
func (s *Server) SetStatusDecorator(fn func(*wire.Status)) {
	if fn == nil {
		s.statusDecorator.Store(nil)
		return
	}
	s.statusDecorator.Store(&fn)
}

// NewServer builds the API server for a backend.
func NewServer(cfg Config) *Server {
	if cfg.DefaultBlockSize <= 0 {
		cfg.DefaultBlockSize = DefaultBlockSize
	}
	if cfg.DefaultGasLimit == 0 {
		cfg.DefaultGasLimit = DefaultGasLimit
	}
	if cfg.MaxGasLimit == 0 {
		cfg.MaxGasLimit = DefaultMaxGasLimit
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), byRoute: make(map[string]*atomic.Int64)}

	// /v1 routes. Every non-streaming handler runs under the timeout
	// middleware; the subscribe stream must not (TimeoutHandler buffers
	// writes, which would break flushing).
	// The two binary download routes skip the timeout middleware too:
	// http.TimeoutHandler buffers the whole response before copying it
	// out, which would add a full-body copy on exactly the paths the
	// cached wire encodings exist to keep cheap.
	s.route("POST /v1/tx", s.handleTx, true)
	s.route("GET /v1/tx/{id}", s.handleReceipt, true)
	s.route("POST /v1/mine", s.handleMine, true)
	s.route("POST /v1/blocks", s.handleImportBlock, true)
	s.route("GET /v1/blocks/{height}", s.handleGetBlock, false)
	s.route("GET /v1/blocks", s.handleGetBlockRange, false)
	s.route("GET /v1/head", s.handleHead, true)
	s.route("GET /v1/status", s.handleStatus, true)
	s.route("GET /v1/state/{address}", s.handleBalance, true)
	s.route("GET /v1/snapshot", s.handleSnapshot, false)
	s.route("GET /v1/subscribe", s.handleSubscribe, false)

	// Legacy unversioned aliases, kept for one release. Same handlers
	// (the v1 responses are supersets of the legacy shapes); answers
	// carry a Deprecation header pointing clients at /v1.
	s.alias("POST /tx", s.handleTx, true)
	s.alias("POST /mine", s.handleMine, true)
	s.alias("POST /blocks", s.handleImportBlock, true)
	s.alias("GET /blocks/{height}", s.handleGetBlock, false)
	s.alias("GET /head", s.handleHead, true)
	s.alias("GET /status", s.handleStatus, true)
	s.alias("GET /snapshot", s.handleSnapshot, false)

	s.handler = s.mux
	return s
}

// route registers pattern with the metrics middleware, and — for
// non-streaming routes — the timeout middleware.
func (s *Server) route(pattern string, h http.HandlerFunc, timed bool) {
	var handler http.Handler = h
	if timed && s.cfg.Timeout > 0 {
		handler = http.TimeoutHandler(handler, s.cfg.Timeout, "request timed out")
	}
	s.mux.Handle(pattern, s.measure(pattern, handler))
}

// alias registers a deprecated unversioned route over the same handler,
// under the same middleware decision its /v1 twin made.
func (s *Server) alias(pattern string, h http.HandlerFunc, timed bool) {
	s.route(pattern, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1>; rel="successor-version"`)
		h(w, r)
	}, timed)
}

// statusRecorder captures the response code for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards flushing so the SSE stream works through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// measure wraps a route with request counting.
func (s *Server) measure(pattern string, h http.Handler) http.Handler {
	s.routeMu.Lock()
	counter, ok := s.byRoute[pattern]
	if !ok {
		counter = &atomic.Int64{}
		s.byRoute[pattern] = counter
	}
	s.routeMu.Unlock()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		counter.Add(1)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		if s.stampAndGate(rec, r) {
			h.ServeHTTP(rec, r)
		}
		if rec.code >= 400 {
			s.errs.Add(1)
		}
	})
}

// stampAndGate stamps X-Chain-Height and X-Chain-Staleness onto the
// response and enforces a GET's min_height precondition: a node behind
// the client's height floor answers 412 replica_behind with a
// Retry-After hint instead of silently serving a stale read. Reports
// whether the request may proceed to its handler.
func (s *Server) stampAndGate(w http.ResponseWriter, r *http.Request) bool {
	height, staleMillis := s.cfg.Backend.ReadStamp()
	hdr := w.Header()
	hdr.Set(wire.HeaderChainHeight, strconv.FormatUint(height, 10))
	hdr.Set(wire.HeaderChainStaleness, strconv.FormatInt(staleMillis, 10))
	if r.Method != http.MethodGet {
		return true
	}
	minStr := r.URL.Query().Get("min_height")
	if minStr == "" {
		return true
	}
	minHeight, err := strconv.ParseUint(minStr, 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Errorf("bad min_height %q", minStr))
		return false
	}
	if height < minHeight {
		hdr.Set("Retry-After", "1")
		s.fail(w, http.StatusPreconditionFailed, wire.CodeReplicaBehind,
			fmt.Errorf("serving height %d, below requested min_height %d", height, minHeight))
		return false
	}
	return true
}

// Metrics snapshots the server's request accounting.
func (s *Server) Metrics() wire.APIMetrics {
	m := wire.APIMetrics{
		Requests: s.requests.Load(),
		Errors:   s.errs.Load(),
		ByRoute:  make(map[string]int64),
	}
	s.routeMu.Lock()
	for pattern, c := range s.byRoute {
		if n := c.Load(); n > 0 {
			m.ByRoute[pattern] = n
		}
	}
	s.routeMu.Unlock()
	if s.cfg.Events != nil {
		m.Subscribers = s.cfg.Events.Subscribers()
		m.EventsDropped = s.cfg.Events.Dropped()
	}
	return m
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// logErr surfaces a serving fault through the configured hook.
func (s *Server) logErr(err error) {
	if s.cfg.ErrorLog != nil && err != nil {
		s.cfg.ErrorLog(err)
	}
}

// writeJSON sends v as a JSON response. The Content-Type header must be
// set before WriteHeader flushes the header block, so every JSON-speaking
// handler funnels through here. Encoding failures (a malformed DTO, a
// client gone mid-write) go to the error hook instead of vanishing.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logErr(fmt.Errorf("api: encode response: %w", err))
	}
}

// fail sends the error envelope. Wire errors keep their code; everything
// else is wrapped under the given fallback code.
func (s *Server) fail(w http.ResponseWriter, httpCode int, code string, err error) {
	var we *wire.Error
	if errors.As(err, &we) {
		s.writeJSON(w, httpCode, we)
		return
	}
	s.writeJSON(w, httpCode, &wire.Error{Code: code, Message: err.Error()})
}

// decodeBody JSON-decodes a bounded request body, mapping the failure
// modes to wire errors: wrong content type 415, oversized body 413,
// malformed JSON 400. A nil dst just enforces type and bounds.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" && !jsonContentType(ct) {
		s.fail(w, http.StatusUnsupportedMediaType, wire.CodeUnsupportedMedia,
			fmt.Errorf("content type %q, want application/json", ct))
		return false
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	err := json.NewDecoder(body).Decode(dst)
	if err == nil || (err == io.EOF && allowEmptyBody(dst)) {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.fail(w, http.StatusRequestEntityTooLarge, wire.CodeBodyTooLarge,
			fmt.Errorf("request body over %d bytes", s.cfg.MaxBodyBytes))
		return false
	}
	s.fail(w, http.StatusBadRequest, wire.CodeBadRequest, err)
	return false
}

// jsonContentType accepts application/json with optional parameters.
// Media types are case-insensitive (RFC 7231).
func jsonContentType(ct string) bool {
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == "application/json"
}

// allowEmptyBody reports whether an empty body is acceptable for the
// destination DTO (mine requests default everything).
func allowEmptyBody(dst any) bool {
	_, ok := dst.(*wire.Mine)
	return ok
}

// handleTx is POST /v1/tx: validate, assign the content-derived ID,
// run mempool admission. Accepted submits answer 202; a duplicate
// answers 409 (the caller's existing receipt stands); shed submits
// answer 429 with the admission stage as the error code and a
// Retry-After header carrying the pool's back-off hint.
func (s *Server) handleTx(w http.ResponseWriter, r *http.Request) {
	var tx wire.TxSubmit
	if !s.decodeBody(w, r, &tx) {
		return
	}
	call, err := tx.Call()
	if err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	if call.GasLimit == 0 {
		call.GasLimit = gas.Gas(s.cfg.DefaultGasLimit)
	}
	if uint64(call.GasLimit) > s.cfg.MaxGasLimit {
		s.fail(w, http.StatusBadRequest, wire.CodeGasLimitTooHigh,
			fmt.Errorf("gas limit %d over node maximum %d", call.GasLimit, s.cfg.MaxGasLimit))
		return
	}
	res := s.cfg.Backend.SubmitTx(call, tx.Priority)
	switch {
	case res.Admitted:
		s.writeJSON(w, http.StatusAccepted, wire.TxSubmitted{
			ID: res.ID.String(), PoolLen: s.cfg.Backend.PoolLen(), Verdict: res.Verdict,
		})
	case res.Duplicate:
		s.fail(w, http.StatusConflict, wire.CodeTxDuplicate,
			fmt.Errorf("transaction %s already submitted; existing receipt stands", res.ID.Short()))
	default:
		w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSeconds(res.RetryAfter), 10))
		s.fail(w, http.StatusTooManyRequests, res.Verdict,
			fmt.Errorf("transaction %s shed by admission control (%s)", res.ID.Short(), res.Verdict))
	}
}

// retryAfterSeconds renders a back-off hint as whole seconds for the
// Retry-After header, rounding up with a 1-second floor — the header
// has no sub-second form, and "retry immediately" defeats shedding.
func retryAfterSeconds(d time.Duration) int64 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// handleReceipt is GET /v1/tx/{id}: the receipt lifecycle query.
func (s *Server) handleReceipt(w http.ResponseWriter, r *http.Request) {
	id, err := types.ParseHash(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest, fmt.Errorf("tx id: %w", err))
		return
	}
	rec, ok := s.cfg.Receipts.Get(id)
	if !ok {
		s.fail(w, http.StatusNotFound, wire.CodeTxNotFound,
			fmt.Errorf("no receipt for %s (unknown, evicted, or not yet submitted here)", id.Short()))
		return
	}
	s.writeJSON(w, http.StatusOK, rec)
}

// handleMine is POST /v1/mine.
func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	var req wire.Mine
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.BlockSize <= 0 {
		req.BlockSize = s.cfg.DefaultBlockSize
	}
	block, err := s.cfg.Backend.MineOne(req.BlockSize)
	if err != nil {
		s.fail(w, http.StatusConflict, wire.CodeMineFailed, err)
		return
	}
	s.writeJSON(w, http.StatusOK, wire.BlockInfoOf(block))
}

// handleImportBlock is POST /v1/blocks: the validator-node import path.
// Blocks travel in the chain package's gob wire format, not JSON.
func (s *Server) handleImportBlock(w http.ResponseWriter, r *http.Request) {
	block, err := chain.DecodeBlock(io.LimitReader(r.Body, chain.MaxWireBlock))
	if err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	known, err := s.cfg.Backend.ImportBlock(block)
	if err != nil {
		s.fail(w, http.StatusConflict, wire.CodeBlockRejected, err)
		return
	}
	info := wire.BlockInfoOf(block)
	info.AlreadyKnown = known
	s.writeJSON(w, http.StatusOK, info)
}

// handleGetBlock is GET /v1/blocks/{height}: gob block bytes, durable
// blocks only (the crash rule covers the pull path).
func (s *Server) handleGetBlock(w http.ResponseWriter, r *http.Request) {
	height, err := strconv.ParseUint(r.PathValue("height"), 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	block, ok := s.cfg.Backend.DurableBlock(height)
	if !ok {
		s.fail(w, http.StatusNotFound, wire.CodeBlockNotFound,
			fmt.Errorf("no durable block at height %d", height))
		return
	}
	raw, err := chain.MarshalBlock(block)
	if err != nil {
		s.logErr(fmt.Errorf("api: encode block %d: %w", height, err))
		s.fail(w, http.StatusInternalServerError, wire.CodeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	_, _ = w.Write(raw)
}

// MaxRangeBlocks caps GET /v1/blocks?from=&count= — the most blocks one
// range fetch returns regardless of the requested count.
const MaxRangeBlocks = 64

// handleGetBlockRange is GET /v1/blocks?from=&count=: up to count durable
// blocks starting at height from, streamed as concatenated self-delimiting
// flat-codec frames (each decodable with chain.DecodeBlock). The response
// may be short — the node serves the durable prefix it has — but never
// empty: a missing starting height answers 404, so a catch-up client can
// distinguish "nothing there" from "partial". Counts above MaxRangeBlocks
// are clamped, not rejected, keeping the bound server-owned.
func (s *Server) handleGetBlockRange(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Errorf("range fetch: bad from %q", q.Get("from")))
		return
	}
	count, err := strconv.Atoi(q.Get("count"))
	if err != nil || count <= 0 {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Errorf("range fetch: bad count %q", q.Get("count")))
		return
	}
	if count > MaxRangeBlocks {
		count = MaxRangeBlocks
	}
	var frames [][]byte
	total := 0
	for i := 0; i < count; i++ {
		h := from + uint64(i)
		if h < from {
			break // uint64 wraparound on a huge from
		}
		block, ok := s.cfg.Backend.DurableBlock(h)
		if !ok {
			break
		}
		raw, err := chain.MarshalBlock(block)
		if err != nil {
			s.logErr(fmt.Errorf("api: encode block %d: %w", h, err))
			s.fail(w, http.StatusInternalServerError, wire.CodeInternal, err)
			return
		}
		frames = append(frames, raw)
		total += len(raw)
	}
	if len(frames) == 0 {
		s.fail(w, http.StatusNotFound, wire.CodeBlockNotFound,
			fmt.Errorf("no durable block at height %d", from))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(total))
	for _, raw := range frames {
		if _, err := w.Write(raw); err != nil {
			return
		}
	}
}

// handleHead is GET /v1/head: the durable chain tip.
func (s *Server) handleHead(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, wire.BlockInfoOf(s.cfg.Backend.DurableHead()))
}

// handleStatus is GET /v1/status: node status plus the API layer's own
// request metrics, run through the status decorator when one is
// attached (the replica relay reports itself this way).
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Backend.APIStatus()
	m := s.Metrics()
	st.API = &m
	if fn := s.statusDecorator.Load(); fn != nil {
		(*fn)(&st)
	}
	s.writeJSON(w, http.StatusOK, st)
}

// handleBalance is GET /v1/state/{address}: a balance read at the
// current block boundary, or — with ?height=H — at a materialized
// historical height (nearest snapshot plus tail replay on nodes with
// history attached). A height the node has not durably reached answers
// 412 replica_behind; one below the history window answers 404
// height_unavailable.
func (s *Server) handleBalance(w http.ResponseWriter, r *http.Request) {
	addr, err := types.ParseAddress(r.PathValue("address"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadAddress, err)
		return
	}
	if hs := r.URL.Query().Get("height"); hs != "" {
		height, err := strconv.ParseUint(hs, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadRequest,
				fmt.Errorf("bad height %q", hs))
			return
		}
		bal, err := s.cfg.Backend.BalanceAtHeight(addr, height)
		switch {
		case errors.Is(err, ErrHeightAhead):
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusPreconditionFailed, wire.CodeReplicaBehind, err)
			return
		case errors.Is(err, ErrHeightUnavailable):
			s.fail(w, http.StatusNotFound, wire.CodeHeightUnavailable, err)
			return
		case err != nil:
			s.fail(w, http.StatusInternalServerError, wire.CodeInternal, err)
			return
		}
		s.writeJSON(w, http.StatusOK, wire.Balance{
			Address: addr.String(), Balance: uint64(bal), Height: height,
		})
		return
	}
	bal, err := s.cfg.Backend.BalanceAt(addr)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, wire.CodeInternal, err)
		return
	}
	served, _ := s.cfg.Backend.ReadStamp()
	s.writeJSON(w, http.StatusOK, wire.Balance{
		Address: addr.String(), Balance: uint64(bal), Height: served,
	})
}

// handleSnapshot is GET /v1/snapshot: the state checkpoint for snapshot
// fast-sync. Durable nodes serve the cached framed bytes — immutable
// between writes, so per-request re-encoding would be pure waste.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if raw := s.cfg.Backend.SnapshotWire(); raw != nil {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
		_, _ = w.Write(raw)
		return
	}
	snap, err := s.cfg.Backend.Snapshot()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, wire.CodeSnapshotUnavailable, err)
		return
	}
	var buf bytes.Buffer
	if err := persist.EncodeSnapshot(&buf, snap); err != nil {
		s.logErr(fmt.Errorf("api: encode snapshot: %w", err))
		s.fail(w, http.StatusInternalServerError, wire.CodeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

// handleSubscribe is GET /v1/subscribe: a server-sent-event stream of
// durable blocks and their receipts, in height order, each carrying its
// broker sequence number as the SSE id. A reconnecting client sends the
// standard Last-Event-ID header and the missed events are replayed from
// the broker's retained ring; a gap that outran the ring (or an id from
// another node) is answered with an `event: reset` before whatever can
// still be replayed, telling the client to resync through GET
// /v1/blocks instead of trusting the stream to be gapless. A subscriber
// that cannot keep up is disconnected (the broker never back-pressures
// block production); the dropped event tells it to reconnect with
// Last-Event-ID set.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Events == nil {
		s.fail(w, http.StatusNotFound, wire.CodeBadRequest, errors.New("event stream not enabled"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, wire.CodeInternal, errors.New("streaming unsupported"))
		return
	}
	// Subscribe before replaying: events published between the replay
	// read and the live loop land in the buffer and are deduplicated by
	// sequence number below, so the client sees every event exactly once.
	sub := s.cfg.Events.Subscribe(s.cfg.SubscriberBuffer)
	defer sub.Close()

	var replay []wire.Event
	needReset := false
	replayed := false // whether a delivered-through floor applies
	var seenThrough uint64
	if lastID := r.Header.Get("Last-Event-ID"); lastID != "" {
		afterSeq, err := strconv.ParseUint(lastID, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, wire.CodeBadRequest,
				fmt.Errorf("bad Last-Event-ID %q", lastID))
			return
		}
		var complete bool
		replay, complete = s.cfg.Events.Replay(afterSeq)
		if complete {
			replayed = true
			seenThrough = afterSeq
		} else {
			// The gap outran the ring (or the id came from another
			// node): signal a reset, then replay whatever the ring still
			// holds so the client reaches the live edge — it must fill
			// the signalled hole through GET /v1/blocks itself.
			needReset = true
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, ": subscribed\n\n")
	if needReset {
		_, _ = io.WriteString(w, "event: reset\ndata: {}\n\n")
	}
	flusher.Flush()

	writeEvent := func(ev wire.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			s.logErr(fmt.Errorf("api: encode event: %w", err))
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: block\ndata: %s\n\n", ev.Seq, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	for _, ev := range replay {
		if !writeEvent(ev) {
			return
		}
		replayed = true
		seenThrough = ev.Seq
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				// Dropped for falling behind: tell the client before the
				// connection closes so resubscribing is a protocol step,
				// not a guess.
				_, _ = io.WriteString(w, "event: dropped\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			if replayed && ev.Seq <= seenThrough {
				continue // already delivered through the replay pass
			}
			if !writeEvent(ev) {
				return
			}
		}
	}
}
