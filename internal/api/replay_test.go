package api

import (
	"testing"

	"contractstm/internal/api/wire"
)

func publishN(b *Broker, n int) {
	for i := 0; i < n; i++ {
		b.Publish(wire.Event{Block: wire.BlockInfo{Number: uint64(i + 1)}})
	}
}

// TestBrokerReplayTail: a reconnecting subscriber that names its last
// seen sequence gets exactly the missed tail, complete.
func TestBrokerReplayTail(t *testing.T) {
	b := NewBrokerRetaining(8)
	publishN(b, 5)
	evs, complete := b.Replay(1) // saw seq 0 and 1, missed 2..4
	if !complete || len(evs) != 3 {
		t.Fatalf("Replay(1) = %d events, complete=%v", len(evs), complete)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+2) {
			t.Fatalf("replayed event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestBrokerReplayCaughtUp: naming the newest sequence replays nothing
// and reports completeness.
func TestBrokerReplayCaughtUp(t *testing.T) {
	b := NewBrokerRetaining(8)
	publishN(b, 3)
	evs, complete := b.Replay(2)
	if !complete || len(evs) != 0 {
		t.Fatalf("caught-up Replay = %d events, complete=%v", len(evs), complete)
	}
}

// TestBrokerReplayGapOutranRing: when the gap exceeds the retained
// window, the broker hands back everything it still has and reports the
// replay incomplete — the caller must resync through the block range
// endpoint.
func TestBrokerReplayGapOutranRing(t *testing.T) {
	b := NewBrokerRetaining(4)
	publishN(b, 10) // ring holds seqs 6..9
	evs, complete := b.Replay(1)
	if complete {
		t.Fatal("gap past the ring reported complete")
	}
	if len(evs) != 4 || evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("partial replay = %+v", evs)
	}
}

// TestBrokerReplayFutureID: a sequence from another broker epoch (a
// restarted server) is not replayable and must not be treated as caught
// up.
func TestBrokerReplayFutureID(t *testing.T) {
	b := NewBrokerRetaining(8)
	publishN(b, 2)
	if evs, complete := b.Replay(99); complete || len(evs) != 0 {
		t.Fatalf("future-id Replay = %d events, complete=%v", len(evs), complete)
	}
}

// TestBrokerReplayDisabled: retention 0 keeps no ring; any replay
// request that actually needs events comes back incomplete.
func TestBrokerReplayDisabled(t *testing.T) {
	b := NewBrokerRetaining(0)
	publishN(b, 3)
	if evs, complete := b.Replay(0); complete || len(evs) != 0 {
		t.Fatalf("disabled-ring Replay = %d events, complete=%v", len(evs), complete)
	}
	// Caught-up is still reportable without a ring.
	if _, complete := b.Replay(2); !complete {
		t.Fatal("caught-up subscriber reported incomplete on a ring-less broker")
	}
}

// TestBrokerReplayCopies: replayed slices are caller-owned; publishing
// past the ring boundary must not mutate them.
func TestBrokerReplayCopies(t *testing.T) {
	b := NewBrokerRetaining(2)
	publishN(b, 2)
	evs, _ := b.Replay(0)
	if len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("replay = %+v", evs)
	}
	publishN(b, 4) // rolls the ring over completely
	if evs[0].Seq != 1 || evs[0].Block.Number != 2 {
		t.Fatalf("replayed event mutated by later publishes: %+v", evs[0])
	}
}

// TestBrokerNextSeq tracks the sequence the next publish will take.
func TestBrokerNextSeq(t *testing.T) {
	b := NewBroker()
	if b.NextSeq() != 0 {
		t.Fatalf("fresh NextSeq = %d", b.NextSeq())
	}
	publishN(b, 3)
	if b.NextSeq() != 3 {
		t.Fatalf("NextSeq after 3 = %d", b.NextSeq())
	}
}
