package api

import (
	"fmt"
	"testing"

	"contractstm/internal/api/wire"
	"contractstm/internal/types"
)

func id(i int) types.Hash { return types.HashString(fmt.Sprintf("tx-%d", i)) }

func TestReceiptStorePendingThenRecord(t *testing.T) {
	s := NewReceiptStore(8)
	s.MarkPending(id(1))
	rec, ok := s.Get(id(1))
	if !ok || rec.Status != wire.StatusPending {
		t.Fatalf("pending lookup = %+v ok=%v", rec, ok)
	}
	if rec.TxIndex != -1 || rec.ScheduleIndex != -1 {
		t.Fatalf("pending marker carries block coordinates: %+v", rec)
	}
	s.Record(id(1), wire.TxReceipt{ID: id(1).String(), Status: wire.StatusCommitted, GasUsed: 9, BlockHeight: 3})
	rec, _ = s.Get(id(1))
	if rec.Status != wire.StatusCommitted || rec.GasUsed != 9 {
		t.Fatalf("recorded receipt = %+v", rec)
	}
	// A resubmission of identical bytes must not mask the recorded
	// outcome.
	s.MarkPending(id(1))
	if rec, _ = s.Get(id(1)); rec.Status != wire.StatusCommitted {
		t.Fatalf("MarkPending overwrote a durable receipt: %+v", rec)
	}
	if _, ok := s.Get(id(2)); ok {
		t.Fatal("unknown ID found")
	}
}

func TestReceiptStoreBounded(t *testing.T) {
	const cap = 16
	s := NewReceiptStore(cap)
	for i := 0; i < 5*cap; i++ {
		s.Record(id(i), wire.TxReceipt{ID: id(i).String(), Status: wire.StatusCommitted})
	}
	if s.Len() != cap {
		t.Fatalf("len = %d, want %d", s.Len(), cap)
	}
	// Oldest evicted, newest kept.
	if _, ok := s.Get(id(0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := s.Get(id(5*cap - 1)); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestBrokerDeliversInOrder(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(4)
	defer sub.Close()
	for i := 0; i < 3; i++ {
		b.Publish(wire.Event{Block: wire.BlockInfo{Number: uint64(i + 1)}})
	}
	for i := 0; i < 3; i++ {
		ev := <-sub.C
		if ev.Seq != uint64(i) || ev.Block.Number != uint64(i+1) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

// TestBrokerDropsSlowSubscriber: a full buffer never blocks Publish —
// the subscriber is cut loose instead, and the accounting shows it.
func TestBrokerDropsSlowSubscriber(t *testing.T) {
	b := NewBroker()
	slow := b.Subscribe(1)
	fast := b.Subscribe(16)
	defer fast.Close()
	// First fills slow's buffer; second overflows it → dropped.
	b.Publish(wire.Event{})
	b.Publish(wire.Event{})
	b.Publish(wire.Event{})
	if b.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1 (slow dropped)", b.Subscribers())
	}
	if b.Dropped() != 1 {
		t.Fatalf("dropped = %d", b.Dropped())
	}
	// The slow channel holds its buffered event, then reports closure.
	<-slow.C
	if _, ok := <-slow.C; ok {
		t.Fatal("dropped subscription channel not closed")
	}
	// The fast subscriber saw everything.
	for i := 0; i < 3; i++ {
		if ev := <-fast.C; ev.Seq != uint64(i) {
			t.Fatalf("fast missed event %d", i)
		}
	}
	// Closing twice is fine; publishing after close doesn't panic.
	slow.Close()
	b.Publish(wire.Event{})
}
