package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"contractstm/internal/api/wire"
	"contractstm/internal/chain"
	"contractstm/internal/types"
)

// ReplicaSetConfig assembles a ReplicaSet.
type ReplicaSetConfig struct {
	// Primary is the upstream (write) node — every SubmitTx, Mine and
	// SendBlock goes here, and reads fall back to it when every replica
	// is ejected (required).
	Primary *Client
	// Replicas are the read-serving followers, tried round-robin. Empty
	// means every read also goes to the primary.
	Replicas []*Client
	// MaxLag is the bounded-staleness contract in blocks: reads carry
	// min_height = bestKnownHeight - MaxLag, so a replica further behind
	// answers 412 and is ejected instead of serving the stale read
	// (0 = no bound).
	MaxLag uint64
	// MaxInFlight caps concurrent reads per replica; excess reads spill
	// to the next replica in rotation instead of queueing (0 = no cap).
	MaxInFlight int
	// Cooldown is how long an ejected replica sits out before it is
	// retried (0 = 500ms).
	Cooldown time.Duration
}

// DefaultCooldown is the ejection sit-out when the config leaves it
// unset.
const DefaultCooldown = 500 * time.Millisecond

// ReplicaSet routes idempotent reads across a set of read replicas —
// round-robin, skipping ejected members — while writes always go to the
// primary. A replica is ejected for a cooldown period when it errors at
// the transport level, answers 5xx, or proves too stale (412
// replica_behind against the set's MaxLag bound); reads spill to the
// next member, and to the primary when nobody is eligible. Safe for
// concurrent use.
type ReplicaSet struct {
	primary  *Client
	slots    []*replicaSlot
	rr       atomic.Uint64
	maxLag   uint64
	cooldown time.Duration
}

// replicaSlot is one replica plus its routing state.
type replicaSlot struct {
	c *Client
	// sem caps in-flight reads (nil = uncapped).
	sem chan struct{}
	// ejectedUntil is a unix-nano deadline before which the slot is
	// skipped (atomic; 0 = healthy).
	ejectedUntil atomic.Int64
}

// NewReplicaSet builds the routing set.
func NewReplicaSet(cfg ReplicaSetConfig) (*ReplicaSet, error) {
	if cfg.Primary == nil {
		return nil, errors.New("api client: replica set needs a primary")
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	rs := &ReplicaSet{primary: cfg.Primary, maxLag: cfg.MaxLag, cooldown: cfg.Cooldown}
	for _, c := range cfg.Replicas {
		slot := &replicaSlot{c: c}
		if cfg.MaxInFlight > 0 {
			slot.sem = make(chan struct{}, cfg.MaxInFlight)
		}
		rs.slots = append(rs.slots, slot)
	}
	return rs, nil
}

// Primary returns the write-side client.
func (rs *ReplicaSet) Primary() *Client { return rs.primary }

// Replicas reports the set size.
func (rs *ReplicaSet) Replicas() int { return len(rs.slots) }

// BestKnownHeight is the newest durable height observed across the
// whole set (primary included) — the reference point the MaxLag bound
// measures staleness against.
func (rs *ReplicaSet) BestKnownHeight() uint64 {
	best := rs.primary.ObservedHeight()
	for _, s := range rs.slots {
		if h := s.c.ObservedHeight(); h > best {
			best = h
		}
	}
	return best
}

// minHeight computes the read's staleness floor under MaxLag (0 = no
// floor).
func (rs *ReplicaSet) minHeight() uint64 {
	if rs.maxLag == 0 {
		return 0
	}
	best := rs.BestKnownHeight()
	if best <= rs.maxLag {
		return 0
	}
	return best - rs.maxLag
}

// ejectable classifies an error as replica-specific: transport
// failures, 5xx answers and 412 replica_behind mean "try another
// member"; any other 4xx is the server's considered refusal and is
// returned as-is (another replica would refuse identically).
func ejectable(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return true // transport-level: the member, not the request
	}
	return ae.Status >= 500 ||
		(ae.Status == http.StatusPreconditionFailed && ae.Code == wire.CodeReplicaBehind)
}

// read runs fn against replicas in rotation, ejecting members that fail
// in a replica-specific way, and falls back to the primary when every
// member is ejected, busy, or has failed this attempt.
func (rs *ReplicaSet) read(ctx context.Context, fn func(*Client) error) error {
	n := len(rs.slots)
	var lastErr error
	for i := 0; i < n; i++ {
		slot := rs.slots[rs.rr.Add(1)%uint64(n)]
		if until := slot.ejectedUntil.Load(); until != 0 {
			if time.Now().UnixNano() < until {
				continue
			}
			slot.ejectedUntil.Store(0) // cooldown over: re-admit
		}
		if slot.sem != nil {
			select {
			case slot.sem <- struct{}{}:
			default:
				continue // at capacity: spill to the next member
			}
		}
		err := fn(slot.c)
		if slot.sem != nil {
			<-slot.sem
		}
		if err == nil {
			return nil
		}
		if !ejectable(err) {
			return err
		}
		slot.ejectedUntil.Store(time.Now().Add(rs.cooldown).UnixNano())
		lastErr = err
	}
	// Primary fallback: correctness beats load-spreading when the
	// replica tier is unavailable.
	if err := fn(rs.primary); err != nil {
		if lastErr != nil {
			return fmt.Errorf("%w (after replica error: %v)", err, lastErr)
		}
		return err
	}
	return nil
}

// withLag appends the set's min_height floor to a read's options.
func (rs *ReplicaSet) withLag(opts []ReadOpt) []ReadOpt {
	if m := rs.minHeight(); m > 0 {
		opts = append(opts[:len(opts):len(opts)], WithMinHeight(m))
	}
	return opts
}

// Balance reads an account balance from a replica within the staleness
// bound.
func (rs *ReplicaSet) Balance(ctx context.Context, addr types.Address, opts ...ReadOpt) (types.Amount, error) {
	b, err := rs.BalanceInfo(ctx, addr, opts...)
	return types.Amount(b.Balance), err
}

// BalanceInfo is Balance returning the full DTO including the serving
// height.
func (rs *ReplicaSet) BalanceInfo(ctx context.Context, addr types.Address, opts ...ReadOpt) (wire.Balance, error) {
	opts = rs.withLag(opts)
	var out wire.Balance
	err := rs.read(ctx, func(c *Client) error {
		var err error
		out, err = c.BalanceInfo(ctx, addr, opts...)
		return err
	})
	return out, err
}

// Receipt reads a transaction receipt from a replica. Receipts are
// durable-gated server-side, so any member's answer respects the crash
// rule; a member that has not seen the receipt yet answers 404, which
// is not replica-specific — callers polling for durability should poll
// with WaitReceipt against one member or bound staleness via MaxLag.
func (rs *ReplicaSet) Receipt(ctx context.Context, id string, opts ...ReadOpt) (wire.TxReceipt, error) {
	opts = rs.withLag(opts)
	var out wire.TxReceipt
	err := rs.read(ctx, func(c *Client) error {
		var err error
		out, err = c.Receipt(ctx, id, opts...)
		return err
	})
	return out, err
}

// Head reads the durable chain tip from a replica within the staleness
// bound.
func (rs *ReplicaSet) Head(ctx context.Context, opts ...ReadOpt) (wire.BlockInfo, error) {
	opts = rs.withLag(opts)
	var out wire.BlockInfo
	err := rs.read(ctx, func(c *Client) error {
		var err error
		out, err = c.Head(ctx, opts...)
		return err
	})
	return out, err
}

// Status reads node status from a replica.
func (rs *ReplicaSet) Status(ctx context.Context) (wire.Status, error) {
	var out wire.Status
	err := rs.read(ctx, func(c *Client) error {
		var err error
		out, err = c.Status(ctx)
		return err
	})
	return out, err
}

// Block fetches a durable block from a replica.
func (rs *ReplicaSet) Block(ctx context.Context, height uint64) (chain.Block, error) {
	var out chain.Block
	err := rs.read(ctx, func(c *Client) error {
		var err error
		out, err = c.Block(ctx, height)
		return err
	})
	return out, err
}

// SubmitTx routes the write to the primary — admission control and the
// mempool live there; replicas never accept writes.
func (rs *ReplicaSet) SubmitTx(ctx context.Context, tx wire.TxSubmit) (wire.TxSubmitted, error) {
	return rs.primary.SubmitTx(ctx, tx)
}

// Mine routes the mine request to the primary.
func (rs *ReplicaSet) Mine(ctx context.Context, blockSize int) (wire.BlockInfo, error) {
	return rs.primary.Mine(ctx, blockSize)
}

// SendBlock routes the block import to the primary.
func (rs *ReplicaSet) SendBlock(ctx context.Context, b chain.Block) error {
	return rs.primary.SendBlock(ctx, b)
}
