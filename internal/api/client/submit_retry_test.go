package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"contractstm/internal/api/wire"
	"contractstm/internal/types"
)

// submitTx builds a well-formed submission the client can derive a
// local TxID from.
func submitTx(t *testing.T) wire.TxSubmit {
	t.Helper()
	toArg, err := wire.EncodeArg(types.AddressFromUint64(0xB0B))
	if err != nil {
		t.Fatalf("encode arg: %v", err)
	}
	amtArg, _ := wire.EncodeArg(uint64(5))
	return wire.TxSubmit{
		Sender:   types.AddressFromUint64(0xA11CE).String(),
		Contract: types.AddressFromUint64(0x70C3).String(),
		Function: "transfer",
		Args:     []wire.Arg{toArg, amtArg},
		GasLimit: 100_000,
	}
}

// sheddingServer answers 429 (with an optional Retry-After hint) for
// the first `sheds` submissions, then admits.
func sheddingServer(t *testing.T, sheds int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if int(hits.Add(1)) <= sheds {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(&wire.Error{Code: "rate_limited", Message: "shed"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(wire.TxSubmitted{ID: "ok", PoolLen: 1, Verdict: "admitted"})
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

// TestSubmitRetriesThroughFlood: a flooded server sheds with 429 and
// the SDK keeps backing off until the submission is eventually
// admitted.
func TestSubmitRetriesThroughFlood(t *testing.T) {
	srv, hits := sheddingServer(t, 3, "")
	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond}))
	out, err := c.SubmitTx(context.Background(), submitTx(t))
	if err != nil {
		t.Fatalf("SubmitTx: %v", err)
	}
	if out.Verdict != "admitted" || hits.Load() != 4 {
		t.Fatalf("out=%+v hits=%d", out, hits.Load())
	}
}

// TestSubmitRetryAfterCappedByMaxBackoff: the server's Retry-After hint
// steers the wait but never past the client's cap — a 30-second hint
// must not stall a client configured to give up faster.
func TestSubmitRetryAfterCappedByMaxBackoff(t *testing.T) {
	srv, _ := sheddingServer(t, 1, "30")
	c := New(srv.URL, WithRetry(RetryPolicy{
		MaxAttempts: 2, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
	}))
	start := time.Now()
	out, err := c.SubmitTx(context.Background(), submitTx(t))
	if err != nil {
		t.Fatalf("SubmitTx: %v", err)
	}
	if out.Verdict != "admitted" {
		t.Fatalf("out = %+v", out)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("waited %v — Retry-After hint not capped by MaxBackoff", elapsed)
	}
}

// TestSubmitRetryAfterParsed: the typed error surfaces the hint so
// callers running their own retry loops can honor it too.
func TestSubmitRetryAfterParsed(t *testing.T) {
	srv, _ := sheddingServer(t, 99, strconv.Itoa(7))
	c := New(srv.URL, WithRetry(NoRetry))
	_, err := c.SubmitTx(context.Background(), submitTx(t))
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != http.StatusTooManyRequests || ae.RetryAfter != 7*time.Second {
		t.Fatalf("APIError = %+v", ae)
	}
}

// TestSubmitExhaustsRetryBudget: a persistent flood eventually
// surfaces the 429 instead of retrying forever.
func TestSubmitExhaustsRetryBudget(t *testing.T) {
	srv, hits := sheddingServer(t, 99, "")
	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}))
	_, err := c.SubmitTx(context.Background(), submitTx(t))
	if !IsCode(err, "rate_limited") {
		t.Fatalf("err = %v, want rate_limited APIError", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("hits = %d, want the full retry budget", hits.Load())
	}
}

// TestSubmitDuplicateFoldsToSuccess: 409 tx_duplicate is an
// idempotent success — the SDK returns the locally derived ID so the
// caller can poll the existing receipt.
func TestSubmitDuplicateFoldsToSuccess(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(&wire.Error{Code: wire.CodeTxDuplicate, Message: "already have it"})
	}))
	t.Cleanup(srv.Close)

	tx := submitTx(t)
	call, err := tx.Call()
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}))
	out, err := c.SubmitTx(context.Background(), tx)
	if err != nil {
		t.Fatalf("SubmitTx: %v", err)
	}
	if out.Verdict != "duplicate" || out.ID != wire.TxIDOf(call).String() {
		t.Fatalf("out = %+v, want duplicate with the derived ID", out)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d — duplicates must not be retried", hits.Load())
	}
}
