package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"contractstm/internal/api/wire"
	"contractstm/internal/chain"
	"contractstm/internal/sched"
	"contractstm/internal/types"
)

// zeroBlock is a minimal sealed block (encoding succeeds; the test
// server rejects it anyway).
func zeroBlock() chain.Block {
	return chain.Seal(chain.GenesisHeader(types.HashString("g")), nil, nil,
		sched.Schedule{}, nil, types.HashString("s"))
}

// flaky serves failures until `failures` requests have been seen, then
// answers ok with the given JSON body.
func flaky(t *testing.T, failures int, status int, okBody any) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(hits.Add(1)) <= failures {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(&wire.Error{Code: wire.CodeInternal, Message: "transient"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(okBody)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

// TestRetryOn5xx: idempotent requests survive transient server errors.
func TestRetryOn5xx(t *testing.T) {
	srv, hits := flaky(t, 2, http.StatusInternalServerError, wire.BlockInfo{Number: 7})
	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}))
	head, err := c.Head(context.Background())
	if err != nil {
		t.Fatalf("Head: %v", err)
	}
	if head.Number != 7 || hits.Load() != 3 {
		t.Fatalf("head=%+v hits=%d", head, hits.Load())
	}
}

// TestRetryExhaustion: the last failure surfaces as a typed APIError.
func TestRetryExhaustion(t *testing.T) {
	srv, hits := flaky(t, 99, http.StatusInternalServerError, nil)
	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}))
	_, err := c.Head(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError || ae.Code != wire.CodeInternal {
		t.Fatalf("err = %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", hits.Load())
	}
}

// TestNoRetryOn4xx: a considered refusal is final — resending identical
// bytes cannot change the server's mind.
func TestNoRetryOn4xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(&wire.Error{Code: wire.CodeTxNotFound, Message: "nope"})
	}))
	t.Cleanup(srv.Close)
	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond}))
	_, err := c.Receipt(context.Background(), "0xabcd")
	if !IsCode(err, wire.CodeTxNotFound) {
		t.Fatalf("err = %v, want tx_not_found", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("4xx retried: hits = %d", hits.Load())
	}
}

// TestSendBlockNeverRetried: block delivery retries belong to the
// caller's strategy (cluster.Broadcaster), not the transport.
func TestSendBlockNeverRetried(t *testing.T) {
	srv, hits := flaky(t, 99, http.StatusInternalServerError, nil)
	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond}))
	err := c.SendBlock(context.Background(), zeroBlock())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("SendBlock retried: hits = %d", hits.Load())
	}
}

// TestContextCancelsRetry: cancellation wins over the backoff schedule.
func TestContextCancelsRetry(t *testing.T) {
	srv, _ := flaky(t, 99, http.StatusInternalServerError, nil)
	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 50, Backoff: 50 * time.Millisecond}))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Head(ctx); err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatal("retry loop ignored cancellation")
	}
}

// TestErrorEnvelopeFallback: a non-JSON error body still yields a usable
// APIError (pre-v1 peers, proxies).
func TestErrorEnvelopeFallback(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text failure", http.StatusBadGateway)
	}))
	t.Cleanup(srv.Close)
	c := New(srv.URL, WithRetry(NoRetry))
	_, err := c.Status(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadGateway || ae.Code != "" {
		t.Fatalf("err = %v", err)
	}
	if ae.Message != "plain text failure" {
		t.Fatalf("message = %q", ae.Message)
	}
}
