package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"contractstm/internal/api/wire"
	"contractstm/internal/types"
)

// fakeReplica is a /v1 stub that answers head reads at a fixed height
// (stamping the header like the real server) and counts hits. behavior
// can be swapped atomically to simulate failures.
type fakeReplica struct {
	srv    *httptest.Server
	hits   atomic.Int64
	height atomic.Uint64
	fail   atomic.Int32 // 0 = healthy, else the HTTP status to answer
}

func newFakeReplica(t *testing.T, height uint64) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.height.Store(height)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		h := f.height.Load()
		w.Header().Set(wire.HeaderChainHeight, strconv.FormatUint(h, 10))
		w.Header().Set(wire.HeaderChainStaleness, "0")
		w.Header().Set("Content-Type", "application/json")
		if status := int(f.fail.Load()); status != 0 {
			w.WriteHeader(status)
			code := wire.CodeInternal
			if status == http.StatusPreconditionFailed {
				code = wire.CodeReplicaBehind
			}
			_ = json.NewEncoder(w).Encode(&wire.Error{Code: code, Message: "stub failure"})
			return
		}
		if min := r.URL.Query().Get("min_height"); min != "" {
			floor, _ := strconv.ParseUint(min, 10, 64)
			if h < floor {
				w.WriteHeader(http.StatusPreconditionFailed)
				_ = json.NewEncoder(w).Encode(&wire.Error{Code: wire.CodeReplicaBehind, Message: "behind"})
				return
			}
		}
		switch {
		case r.Method == http.MethodPost:
			_ = json.NewEncoder(w).Encode(wire.TxSubmitted{ID: "0xstub"})
		default:
			_ = json.NewEncoder(w).Encode(wire.BlockInfo{Number: h})
		}
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) client() *Client { return New(f.srv.URL, WithRetry(NoRetry)) }

func testSet(t *testing.T, cfg ReplicaSetConfig) *ReplicaSet {
	t.Helper()
	rs, err := NewReplicaSet(cfg)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	return rs
}

// TestReplicaSetSpreadsReads: idempotent reads rotate across every
// healthy member and never touch the primary.
func TestReplicaSetSpreadsReads(t *testing.T) {
	primary := newFakeReplica(t, 10)
	r1, r2 := newFakeReplica(t, 10), newFakeReplica(t, 10)
	rs := testSet(t, ReplicaSetConfig{
		Primary:  primary.client(),
		Replicas: []*Client{r1.client(), r2.client()},
	})
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := rs.Head(ctx); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if r1.hits.Load() != 3 || r2.hits.Load() != 3 {
		t.Fatalf("replica hits = %d/%d, want 3/3", r1.hits.Load(), r2.hits.Load())
	}
	if primary.hits.Load() != 0 {
		t.Fatalf("primary served %d reads", primary.hits.Load())
	}
}

// TestReplicaSetEjectsFailing: a 5xx member is ejected for the cooldown
// — traffic shifts to the healthy member — then re-admitted once the
// cooldown lapses and it recovers.
func TestReplicaSetEjectsFailing(t *testing.T) {
	primary := newFakeReplica(t, 10)
	bad, good := newFakeReplica(t, 10), newFakeReplica(t, 10)
	bad.fail.Store(http.StatusInternalServerError)
	rs := testSet(t, ReplicaSetConfig{
		Primary:  primary.client(),
		Replicas: []*Client{bad.client(), good.client()},
		Cooldown: 30 * time.Millisecond,
	})
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := rs.Head(ctx); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	// The bad member was tried at most once before ejection kicked in.
	if bad.hits.Load() > 2 {
		t.Fatalf("ejected member kept serving: %d hits", bad.hits.Load())
	}
	if good.hits.Load() < 5 {
		t.Fatalf("healthy member hits = %d", good.hits.Load())
	}
	// Recovery after the cooldown: the member rejoins the rotation.
	bad.fail.Store(0)
	time.Sleep(50 * time.Millisecond)
	before := bad.hits.Load()
	for i := 0; i < 4; i++ {
		if _, err := rs.Head(ctx); err != nil {
			t.Fatalf("post-recovery read %d: %v", i, err)
		}
	}
	if bad.hits.Load() == before {
		t.Fatal("recovered member never re-admitted")
	}
}

// TestReplicaSetEjectsStale: a member that answers 412 replica_behind
// against the MaxLag floor is treated as unhealthy, not as an error for
// the caller — the read lands on a fresher member.
func TestReplicaSetEjectsStale(t *testing.T) {
	primary := newFakeReplica(t, 20)
	stale, fresh := newFakeReplica(t, 5), newFakeReplica(t, 20)
	rs := testSet(t, ReplicaSetConfig{
		Primary:  primary.client(),
		Replicas: []*Client{stale.client(), fresh.client()},
		MaxLag:   2,
	})
	ctx := context.Background()
	// Prime the set's height observation off the primary.
	if _, err := rs.Primary().Head(ctx); err != nil {
		t.Fatalf("prime: %v", err)
	}
	if rs.BestKnownHeight() != 20 {
		t.Fatalf("best known height = %d", rs.BestKnownHeight())
	}
	for i := 0; i < 4; i++ {
		head, err := rs.Head(ctx)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if head.Number != 20 {
			t.Fatalf("stale read served: height %d", head.Number)
		}
	}
	if stale.hits.Load() > 2 {
		t.Fatalf("stale member kept serving: %d hits", stale.hits.Load())
	}
}

// TestReplicaSetPrimaryFallback: with every replica down, reads land on
// the primary — availability beats load-spreading.
func TestReplicaSetPrimaryFallback(t *testing.T) {
	primary := newFakeReplica(t, 10)
	down := newFakeReplica(t, 10)
	down.fail.Store(http.StatusBadGateway)
	rs := testSet(t, ReplicaSetConfig{
		Primary:  primary.client(),
		Replicas: []*Client{down.client()},
	})
	head, err := rs.Head(context.Background())
	if err != nil {
		t.Fatalf("fallback read: %v", err)
	}
	if head.Number != 10 || primary.hits.Load() != 1 {
		t.Fatalf("head = %+v, primary hits = %d", head, primary.hits.Load())
	}
}

// TestReplicaSetConsideredRefusalNotEjected: a 4xx is the server's
// answer to the request, not a replica fault — it surfaces immediately
// and the member stays in rotation.
func TestReplicaSetConsideredRefusalNotEjected(t *testing.T) {
	primary := newFakeReplica(t, 10)
	r1 := newFakeReplica(t, 10)
	r1.fail.Store(http.StatusNotFound)
	rs := testSet(t, ReplicaSetConfig{
		Primary:  primary.client(),
		Replicas: []*Client{r1.client()},
	})
	if _, err := rs.Head(context.Background()); !IsCode(err, wire.CodeInternal) {
		t.Fatalf("4xx err = %v, want the member's own refusal", err)
	}
	if primary.hits.Load() != 0 {
		t.Fatal("4xx triggered primary fallback")
	}
	// Still in rotation: the next read goes straight back to it.
	r1.fail.Store(0)
	if _, err := rs.Head(context.Background()); err != nil {
		t.Fatalf("read after refusal: %v", err)
	}
	if r1.hits.Load() != 2 {
		t.Fatalf("member hits = %d, want 2 (not ejected)", r1.hits.Load())
	}
}

// TestReplicaSetWritesToPrimary: writes never touch replicas.
func TestReplicaSetWritesToPrimary(t *testing.T) {
	primary := newFakeReplica(t, 10)
	r1 := newFakeReplica(t, 10)
	rs := testSet(t, ReplicaSetConfig{
		Primary:  primary.client(),
		Replicas: []*Client{r1.client()},
	})
	if _, err := rs.SubmitTx(context.Background(), wire.TxSubmit{
		Sender: types.AddressFromUint64(1).String(), Contract: types.AddressFromUint64(2).String(),
		Function: "f", GasLimit: 1,
	}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if primary.hits.Load() != 1 || r1.hits.Load() != 0 {
		t.Fatalf("hits primary=%d replica=%d", primary.hits.Load(), r1.hits.Load())
	}
}

// TestReplicaSetMaxInFlightSpills: a member at its concurrency cap is
// skipped, not queued behind.
func TestReplicaSetMaxInFlightSpills(t *testing.T) {
	primary := newFakeReplica(t, 10)
	slow := newFakeReplica(t, 10)
	fast := newFakeReplica(t, 10)
	rs := testSet(t, ReplicaSetConfig{
		Primary:     primary.client(),
		Replicas:    []*Client{slow.client(), fast.client()},
		MaxInFlight: 1,
	})
	// Saturate the slow member's slot by hand, then read: every request
	// must spill past it.
	rs.slots[0].sem <- struct{}{}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := rs.Head(ctx); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if slow.hits.Load() != 0 {
		t.Fatalf("saturated member served %d reads", slow.hits.Load())
	}
	if fast.hits.Load() != 4 {
		t.Fatalf("spill target hits = %d", fast.hits.Load())
	}
}

// TestClientObservesHeight: the SDK ratchets the stamped height and
// tracks the latest staleness off every response.
func TestClientObservesHeight(t *testing.T) {
	f := newFakeReplica(t, 7)
	c := f.client()
	if _, err := c.Head(context.Background()); err != nil {
		t.Fatalf("head: %v", err)
	}
	if c.ObservedHeight() != 7 {
		t.Fatalf("observed height = %d", c.ObservedHeight())
	}
	// The ratchet never regresses on a stale answer.
	f.height.Store(3)
	if _, err := c.Head(context.Background()); err != nil {
		t.Fatalf("head: %v", err)
	}
	if c.ObservedHeight() != 7 {
		t.Fatalf("observed height regressed to %d", c.ObservedHeight())
	}
	if c.ObservedStaleness() != 0 {
		t.Fatalf("observed staleness = %d", c.ObservedStaleness())
	}
}
