// Package client is the Go SDK for the node's versioned /v1 API
// (internal/api): typed methods over the wire schema, context-first,
// with a bounded retry policy for idempotent requests.
//
// Everything that speaks HTTP to a node lives here — cluster.Peer, the
// cmd tools and the benchmarks are built on this client, so transport
// concerns (retries, error decoding, body limits) exist exactly once.
//
// Retry policy: GETs are idempotent and are retried on transport errors
// and 5xx answers with exponential backoff. A 4xx answer is the server's
// considered refusal and is never retried — with two exceptions around
// transaction submission, where the mempool's admission control makes
// retrying well-defined. A 429 answer is explicit back-pressure, not a
// refusal: SubmitTx honors the server's Retry-After hint (falling back
// to capped, jittered exponential backoff) and resubmits until admitted
// or the attempt budget runs out. A 409 tx_duplicate means the node
// already tracks this exact transaction — admission dedups by content-
// derived ID — so the SDK folds it into success: the submission landed,
// poll the receipt. Transport-errored submits are still never resent
// blindly (the response, not the submission, may be what was lost);
// poll the content-derived ID (wire.TxIDOf) first. Block import
// (POST /v1/blocks) is left to the caller's delivery strategy
// (cluster.Broadcaster owns broadcast retries).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"contractstm/internal/api/wire"
	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/persist"
	"contractstm/internal/types"
)

// APIError is a non-2xx answer from the node: the machine-readable code
// from the wire error envelope plus the HTTP status.
type APIError struct {
	Status  int
	Code    string
	Message string
	// RetryAfter is the server's Retry-After hint on a 429 answer (zero
	// when the server sent none): how long the client should wait before
	// resubmitting. SubmitTx honors it automatically.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("api client: status %d (%s): %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("api client: status %d: %s", e.Status, e.Message)
}

// IsCode reports whether err is an *APIError carrying the given wire
// code.
func IsCode(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// RetryPolicy bounds retries of idempotent requests and of submissions
// shed with 429.
type RetryPolicy struct {
	// MaxAttempts is tries per request (<=0 selects 3).
	MaxAttempts int
	// Backoff is the first retry's delay, doubling per attempt
	// (<=0 selects 25ms).
	Backoff time.Duration
	// MaxBackoff caps the per-attempt delay, including server-supplied
	// Retry-After hints (<=0 selects 2s).
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// NoRetry disables retries (single attempt per request).
var NoRetry = RetryPolicy{MaxAttempts: 1, Backoff: time.Nanosecond}

// Client is a typed client for one node's /v1 API.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy

	// Freshness observed from the bounded-staleness response headers
	// (X-Chain-Height / X-Chain-Staleness), updated on every response.
	// ReplicaSet's staleness-aware routing reads these.
	obsHeight    atomic.Uint64
	obsStaleness atomic.Int64
}

// ObservedHeight reports the newest X-Chain-Height header this client
// has seen (0 before any response from a stamping server).
func (c *Client) ObservedHeight() uint64 { return c.obsHeight.Load() }

// ObservedStaleness reports the most recent X-Chain-Staleness header in
// milliseconds (0 before any).
func (c *Client) ObservedStaleness() int64 { return c.obsStaleness.Load() }

// observe records the bounded-staleness headers from a response. Heights
// only ratchet up — an old response arriving late must not roll the
// freshness estimate back.
func (c *Client) observe(resp *http.Response) {
	if v := resp.Header.Get(wire.HeaderChainHeight); v != "" {
		if h, err := strconv.ParseUint(v, 10, 64); err == nil {
			for {
				cur := c.obsHeight.Load()
				if h <= cur || c.obsHeight.CompareAndSwap(cur, h) {
					break
				}
			}
		}
	}
	if v := resp.Header.Get(wire.HeaderChainStaleness); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil {
			c.obsStaleness.Store(s)
		}
	}
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying HTTP client.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithRetry replaces the retry policy for idempotent requests.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// New returns a client for the node served at baseURL.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		hc:    &http.Client{Timeout: 30 * time.Second},
		retry: RetryPolicy{}.withDefaults(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// URL returns the client's base URL.
func (c *Client) URL() string { return c.base }

// do performs one request built by build (a fresh request per attempt so
// bodies re-send cleanly), retrying per policy when retryable.
func (c *Client) do(ctx context.Context, retryable bool, build func() (*http.Request, error)) (*http.Response, error) {
	policy := c.retry
	if !retryable {
		policy = NoRetry
	}
	delay := policy.Backoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req.WithContext(ctx))
		switch {
		case err != nil:
			lastErr = err
		case resp.StatusCode >= 500:
			c.observe(resp)
			lastErr = decodeError(resp)
		default:
			c.observe(resp)
			return resp, nil
		}
		if attempt >= policy.MaxAttempts || ctx.Err() != nil {
			return nil, lastErr
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		delay *= 2
	}
}

// getJSON fetches path and decodes the response into out.
func (c *Client) getJSON(ctx context.Context, path string, limit int64, out any) error {
	resp, err := c.do(ctx, true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+path, nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, limit)).Decode(out); err != nil {
		return fmt.Errorf("api client: decode %s: %w", path, err)
	}
	return nil
}

// postJSON posts body to path and decodes the response into out.
func (c *Client) postJSON(ctx context.Context, path string, retryable bool, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("api client: encode %s: %w", path, err)
	}
	resp, err := c.do(ctx, retryable, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out); err != nil {
		return fmt.Errorf("api client: decode %s: %w", path, err)
	}
	return nil
}

// decodeError drains a non-2xx response into an *APIError.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	ae := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	var envelope wire.Error
	if json.Unmarshal(body, &envelope) == nil && envelope.Message != "" {
		ae.Code, ae.Message = envelope.Code, envelope.Message
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.ParseInt(s, 10, 64); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// SubmitTx submits a transaction and returns its content-derived ID.
//
// Back-pressure handling: a 429 answer (rate_limited, sender_limit,
// shard_saturated, pool_overloaded) is retried up to the policy's
// attempt budget, waiting the server's Retry-After hint when present
// and a capped, jittered exponential backoff otherwise. A 409
// tx_duplicate is folded into success — the node already tracks this
// exact transaction, so the submission is effectively landed and the
// caller should poll the receipt. Transport errors are NOT retried: a
// lost response does not mean a lost submission; poll Receipt with the
// locally derivable ID (wire.TxIDOf) before resending.
func (c *Client) SubmitTx(ctx context.Context, tx wire.TxSubmit) (wire.TxSubmitted, error) {
	policy := c.retry.withDefaults()
	delay := policy.Backoff
	for attempt := 1; ; attempt++ {
		var out wire.TxSubmitted
		err := c.postJSON(ctx, "/v1/tx", false, tx, &out)
		if err == nil {
			return out, nil
		}
		var ae *APIError
		if !errors.As(err, &ae) {
			return wire.TxSubmitted{}, err
		}
		if ae.Status == http.StatusConflict && ae.Code == wire.CodeTxDuplicate {
			// The node holds (or held) this exact transaction; report the
			// locally derivable ID so the caller can poll its receipt.
			if call, cerr := tx.Call(); cerr == nil {
				return wire.TxSubmitted{ID: wire.TxIDOf(call).String(), Verdict: "duplicate"}, nil
			}
			return wire.TxSubmitted{Verdict: "duplicate"}, nil
		}
		if ae.Status != http.StatusTooManyRequests || attempt >= policy.MaxAttempts {
			return wire.TxSubmitted{}, err
		}
		wait := delay
		if ae.RetryAfter > 0 {
			wait = ae.RetryAfter
		}
		if wait > policy.MaxBackoff {
			wait = policy.MaxBackoff
		}
		// Full jitter desynchronizes a shed fleet: every client backing
		// off the same hint would otherwise return as one thundering herd.
		wait = time.Duration(rand.Int64N(int64(wait)) + 1)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return wire.TxSubmitted{}, ctx.Err()
		}
		delay *= 2
	}
}

// SubmitCall submits a contract call (SubmitTx over SubmitOf).
func (c *Client) SubmitCall(ctx context.Context, call contract.Call) (wire.TxSubmitted, error) {
	tx, err := wire.SubmitOf(call)
	if err != nil {
		return wire.TxSubmitted{}, fmt.Errorf("api client: %w", err)
	}
	return c.SubmitTx(ctx, tx)
}

// Receipt fetches a transaction's current receipt: status pending until
// the containing block is durable, committed/aborted after. Unknown IDs
// answer an *APIError with code wire.CodeTxNotFound. WithMinHeight
// bounds how stale the serving node may be.
func (c *Client) Receipt(ctx context.Context, id string, opts ...ReadOpt) (wire.TxReceipt, error) {
	var out wire.TxReceipt
	err := c.getJSON(ctx, "/v1/tx/"+id+renderOpts(opts), 1<<16, &out)
	return out, err
}

// WaitReceipt polls Receipt until the transaction reaches a final
// (durable) status, the context ends, or the ID becomes unknown. poll
// <= 0 selects 10ms.
func (c *Client) WaitReceipt(ctx context.Context, id string, poll time.Duration) (wire.TxReceipt, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	for {
		rec, err := c.Receipt(ctx, id)
		if err != nil {
			return wire.TxReceipt{}, err
		}
		if rec.Status != wire.StatusPending {
			return rec, nil
		}
		select {
		case <-ctx.Done():
			return rec, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Head fetches the node's durable chain tip. WithMinHeight bounds how
// stale the serving node may be.
func (c *Client) Head(ctx context.Context, opts ...ReadOpt) (wire.BlockInfo, error) {
	var out wire.BlockInfo
	err := c.getJSON(ctx, "/v1/head"+renderOpts(opts), 1<<16, &out)
	return out, err
}

// Status fetches node status including API metrics.
func (c *Client) Status(ctx context.Context) (wire.Status, error) {
	var out wire.Status
	err := c.getJSON(ctx, "/v1/status", 1<<20, &out)
	return out, err
}

// Mine asks the node to mine one block of at most blockSize transactions
// (0 = node default). Mining is not idempotent and never retried.
func (c *Client) Mine(ctx context.Context, blockSize int) (wire.BlockInfo, error) {
	var out wire.BlockInfo
	err := c.postJSON(ctx, "/v1/mine", false, wire.Mine{BlockSize: blockSize}, &out)
	return out, err
}

// ReadOpt tunes one bounded-staleness read.
type ReadOpt func(*readOpts)

type readOpts struct {
	minHeight uint64
	haveMin   bool
	atHeight  uint64
	haveAt    bool
}

// WithMinHeight requires the serving node's durable height to be at
// least h: a node behind it answers 412 replica_behind (surfaced as an
// *APIError with code wire.CodeReplicaBehind) instead of a stale read.
func WithMinHeight(h uint64) ReadOpt {
	return func(o *readOpts) { o.minHeight, o.haveMin = h, true }
}

// AtHeight asks for the state at an exact historical block height,
// materialized server-side from the nearest snapshot plus tail replay.
// Heights the node has not reached answer 412 replica_behind; heights
// below its history window answer 404 height_unavailable.
func AtHeight(h uint64) ReadOpt {
	return func(o *readOpts) { o.atHeight, o.haveAt = h, true }
}

// renderOpts folds a read's options into their query-string form.
func renderOpts(opts []ReadOpt) string {
	var o readOpts
	for _, opt := range opts {
		opt(&o)
	}
	return o.query()
}

// query renders the options as a query string ("" when default).
func (o readOpts) query() string {
	q := url.Values{}
	if o.haveMin {
		q.Set("min_height", strconv.FormatUint(o.minHeight, 10))
	}
	if o.haveAt {
		q.Set("height", strconv.FormatUint(o.atHeight, 10))
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// Balance reads an account balance at the node's current block boundary
// — or, with AtHeight, at a historical one; WithMinHeight bounds how
// stale the serving node may be.
func (c *Client) Balance(ctx context.Context, addr types.Address, opts ...ReadOpt) (types.Amount, error) {
	b, err := c.BalanceInfo(ctx, addr, opts...)
	return types.Amount(b.Balance), err
}

// BalanceInfo is Balance returning the full wire DTO, including the
// height the read was served at.
func (c *Client) BalanceInfo(ctx context.Context, addr types.Address, opts ...ReadOpt) (wire.Balance, error) {
	var out wire.Balance
	if err := c.getJSON(ctx, "/v1/state/"+addr.String()+renderOpts(opts), 1<<16, &out); err != nil {
		return wire.Balance{}, err
	}
	return out, nil
}

// Block fetches and decodes the node's durable block at height. The
// decode path re-verifies header commitments, so a corrupted stream is
// rejected here; execution-level trust comes from block import. Missing
// heights answer an *APIError with code wire.CodeBlockNotFound.
func (c *Client) Block(ctx context.Context, height uint64) (chain.Block, error) {
	resp, err := c.do(ctx, true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/blocks/%d", c.base, height), nil)
	})
	if err != nil {
		return chain.Block{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return chain.Block{}, decodeError(resp)
	}
	b, err := chain.DecodeBlock(io.LimitReader(resp.Body, chain.MaxWireBlock))
	if err != nil {
		return chain.Block{}, fmt.Errorf("api client: block %d: %w", height, err)
	}
	return b, nil
}

// Blocks fetches up to count consecutive durable blocks starting at
// height from — the range endpoint (GET /v1/blocks?from=&count=) that
// amortizes per-block round-trips during catch-up sync. The server
// streams self-delimiting flat-codec frames and may answer short (it
// serves the durable prefix it has; counts above the server's cap are
// clamped); the returned slice is in height order, never empty on
// success. Old servers without the route answer a plain 404/405 —
// callers fall back to Block.
func (c *Client) Blocks(ctx context.Context, from uint64, count int) ([]chain.Block, error) {
	if count <= 0 {
		return nil, fmt.Errorf("api client: blocks: count %d", count)
	}
	resp, err := c.do(ctx, true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/v1/blocks?from=%d&count=%d", c.base, from, count), nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	br := bufio.NewReader(io.LimitReader(resp.Body, int64(count)*chain.MaxWireBlock))
	var blocks []chain.Block
	for len(blocks) < count {
		if _, err := br.Peek(1); err == io.EOF {
			break
		}
		b, err := chain.DecodeBlock(br)
		if err != nil {
			return nil, fmt.Errorf("api client: blocks from %d: frame %d: %w", from, len(blocks), err)
		}
		if want := from + uint64(len(blocks)); b.Header.Number != want {
			return nil, fmt.Errorf("api client: blocks from %d: got height %d, want %d", from, b.Header.Number, want)
		}
		blocks = append(blocks, b)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("api client: blocks from %d: empty response", from)
	}
	return blocks, nil
}

// SendBlock ships a sealed block for import. A 2xx answer — including
// the node reporting it already knew the block — is success. Never
// retried here; delivery strategies own their retries.
func (c *Client) SendBlock(ctx context.Context, b chain.Block) error {
	raw, err := chain.MarshalBlock(b)
	if err != nil {
		return fmt.Errorf("api client: send block %d: %w", b.Header.Number, err)
	}
	resp, err := c.do(ctx, false, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/blocks", bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	return nil
}

// Snapshot fetches the node's state checkpoint (snapshot fast-sync).
func (c *Client) Snapshot(ctx context.Context) (persist.Snapshot, error) {
	resp, err := c.do(ctx, true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/snapshot", nil)
	})
	if err != nil {
		return persist.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return persist.Snapshot{}, decodeError(resp)
	}
	s, err := persist.DecodeSnapshot(io.LimitReader(resp.Body, persist.MaxSnapshotWire))
	if err != nil {
		return persist.Snapshot{}, fmt.Errorf("api client: snapshot: %w", err)
	}
	return s, nil
}

// Stream is a live event subscription (GET /v1/subscribe).
type Stream struct {
	resp    *http.Response
	scanner *bufio.Scanner
	cancel  context.CancelFunc
	// lastID is the newest SSE id (event sequence number) seen, and
	// haveID whether any was. Feed it back via WithLastEventID on
	// reconnect for gap-free resumption.
	lastID uint64
	haveID bool
}

// ErrStreamDropped reports that the server disconnected this subscriber
// for falling behind; resubscribe with WithLastEventID(LastEventID())
// to replay the gap.
var ErrStreamDropped = errors.New("api client: subscription dropped by server (fell behind)")

// ErrStreamReset reports that the server could not replay the gap after
// the Last-Event-ID this subscription presented (the gap outran the
// server's replay ring, or the id belongs to another node): events may
// be missing — resync through Blocks before trusting the stream. The
// stream stays usable; subsequent Next calls deliver what the server
// still has.
var ErrStreamReset = errors.New("api client: event gap not replayable; resync via blocks")

// SubscribeOpt tunes a subscription.
type SubscribeOpt func(*subscribeOpts)

type subscribeOpts struct {
	lastEventID uint64
	haveLastID  bool
}

// WithLastEventID resumes after the given event sequence number: the
// server replays every retained event after it before going live, or
// signals ErrStreamReset when it cannot.
func WithLastEventID(seq uint64) SubscribeOpt {
	return func(o *subscribeOpts) { o.lastEventID, o.haveLastID = seq, true }
}

// Subscribe opens the durable-block event stream. The stream lives until
// Close, the context ends, or the server drops a lagging subscriber
// (Next returns ErrStreamDropped).
func (c *Client) Subscribe(ctx context.Context, opts ...SubscribeOpt) (*Stream, error) {
	var o subscribeOpts
	for _, opt := range opts {
		opt(&o)
	}
	ctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/subscribe", nil)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("api client: subscribe: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if o.haveLastID {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(o.lastEventID, 10))
	}
	// The stream outlives any request deadline: use a client without the
	// SDK's overall timeout (http.Client.Timeout covers reading the
	// response body, which would cut the subscription off mid-stream).
	// Lifetime control is the context's job.
	stream := *c.hc
	stream.Timeout = 0
	resp, err := stream.Do(req)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("api client: subscribe: %w", err)
	}
	c.observe(resp)
	if resp.StatusCode != http.StatusOK {
		defer cancel()
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	return &Stream{resp: resp, scanner: sc, cancel: cancel}, nil
}

// LastEventID reports the newest event sequence number this stream has
// delivered (and whether any was): what to hand WithLastEventID on
// reconnect.
func (s *Stream) LastEventID() (uint64, bool) { return s.lastID, s.haveID }

// Next blocks for the next event. It returns ErrStreamDropped when the
// server disconnected a lagging subscriber, ErrStreamReset when a
// requested replay gap was not fully coverable (stream stays usable),
// and io.EOF on a clean close.
func (s *Stream) Next() (wire.Event, error) {
	var event string
	for s.scanner.Scan() {
		line := s.scanner.Text()
		switch {
		case strings.HasPrefix(line, ":"):
			// Comment / keep-alive.
		case strings.HasPrefix(line, "id: "):
			if id, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64); err == nil {
				s.lastID, s.haveID = id, true
			}
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			switch event {
			case "dropped":
				return wire.Event{}, ErrStreamDropped
			case "reset":
				return wire.Event{}, ErrStreamReset
			}
			var ev wire.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				return wire.Event{}, fmt.Errorf("api client: event decode: %w", err)
			}
			s.lastID, s.haveID = ev.Seq, true
			return ev, nil
		}
	}
	if err := s.scanner.Err(); err != nil {
		return wire.Event{}, err
	}
	return wire.Event{}, io.EOF
}

// Close terminates the subscription.
func (s *Stream) Close() {
	s.cancel()
	_ = s.resp.Body.Close()
}
