package api

import (
	"sync"
	"sync/atomic"

	"contractstm/internal/api/wire"
)

// DefaultSubscriberBuffer is how many undelivered events a subscriber
// may lag before the broker drops it.
const DefaultSubscriberBuffer = 64

// DefaultEventReplayDepth is how many published events the broker
// retains for Last-Event-ID reconnect replay.
const DefaultEventReplayDepth = 64

// Broker fans durable-block events out to event-stream subscribers.
// Publish never blocks the caller — the node publishes from its block
// pipeline, and a stalled client must never back-pressure mining — so a
// subscriber whose buffer is full is dropped (its channel closed); the
// client observes the close, resubscribes with Last-Event-ID, and the
// server replays the gap from the broker's retained ring (falling back
// to a reset signal when the gap outruns the ring).
type Broker struct {
	mu   sync.Mutex
	next uint64 // next event sequence number
	subs map[*Subscription]struct{}
	// ring holds the last retain published events, oldest first, for
	// reconnect replay. Sequence numbers are dense: ring[i].Seq ==
	// next - len(ring) + i.
	ring   []wire.Event
	retain int
	// dropped counts subscriptions terminated for falling behind.
	dropped atomic.Int64
}

// Subscription is one subscriber's event feed. C is closed when the
// subscriber is dropped (buffer overflow) or Close is called.
type Subscription struct {
	C      <-chan wire.Event
	ch     chan wire.Event
	broker *Broker
	once   sync.Once
}

// Close detaches the subscription and closes C.
func (s *Subscription) Close() {
	s.broker.remove(s)
	s.once.Do(func() { close(s.ch) })
}

// NewBroker returns an empty broker retaining DefaultEventReplayDepth
// events for reconnect replay.
func NewBroker() *Broker { return NewBrokerRetaining(DefaultEventReplayDepth) }

// NewBrokerRetaining returns an empty broker that keeps the last depth
// published events for Replay (0 disables replay).
func NewBrokerRetaining(depth int) *Broker {
	if depth < 0 {
		depth = 0
	}
	return &Broker{subs: make(map[*Subscription]struct{}), retain: depth}
}

// Subscribe attaches a new subscriber with the given buffer (<=0 selects
// DefaultSubscriberBuffer). Events published after this call are
// delivered; there is no replay.
func (b *Broker) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	s := &Subscription{broker: b, ch: make(chan wire.Event, buffer)}
	s.C = s.ch
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// remove detaches s without closing its channel.
func (b *Broker) remove(s *Subscription) {
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
}

// Publish assigns ev the next sequence number and delivers it to every
// subscriber that has room, dropping those that do not. It never blocks.
func (b *Broker) Publish(ev wire.Event) {
	b.mu.Lock()
	ev.Seq = b.next
	b.next++
	if b.retain > 0 {
		if len(b.ring) == b.retain {
			copy(b.ring, b.ring[1:])
			b.ring[len(b.ring)-1] = ev
		} else {
			b.ring = append(b.ring, ev)
		}
	}
	var drop []*Subscription
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			drop = append(drop, s)
		}
	}
	for _, s := range drop {
		delete(b.subs, s)
	}
	b.mu.Unlock()
	for _, s := range drop {
		b.dropped.Add(1)
		s.once.Do(func() { close(s.ch) })
	}
}

// Replay returns the retained events with sequence numbers strictly
// greater than afterSeq, oldest first, plus whether the result is
// complete — i.e. no event between afterSeq and the newest published
// one has aged out of the ring. An afterSeq the broker has not reached
// yet (a stale id from another node, or another epoch of this one)
// reports incomplete with no events: the caller should signal a reset
// rather than silently skip. The returned slice is the caller's own.
func (b *Broker) Replay(afterSeq uint64) ([]wire.Event, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if afterSeq+1 > b.next {
		return nil, false // id from the future: epoch mismatch
	}
	if afterSeq+1 == b.next {
		return nil, true // already caught up
	}
	oldest := b.next - uint64(len(b.ring))
	if afterSeq+1 < oldest {
		out := make([]wire.Event, len(b.ring))
		copy(out, b.ring)
		return out, false
	}
	tail := b.ring[afterSeq+1-oldest:]
	out := make([]wire.Event, len(tail))
	copy(out, tail)
	return out, true
}

// NextSeq reports the sequence number the next published event will
// carry.
func (b *Broker) NextSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Subscribers reports live subscriptions.
func (b *Broker) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Dropped reports subscriptions terminated for falling behind.
func (b *Broker) Dropped() int64 { return b.dropped.Load() }
