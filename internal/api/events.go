package api

import (
	"sync"
	"sync/atomic"

	"contractstm/internal/api/wire"
)

// DefaultSubscriberBuffer is how many undelivered events a subscriber
// may lag before the broker drops it.
const DefaultSubscriberBuffer = 64

// Broker fans durable-block events out to event-stream subscribers.
// Publish never blocks the caller — the node publishes from its block
// pipeline, and a stalled client must never back-pressure mining — so a
// subscriber whose buffer is full is dropped (its channel closed); the
// client observes the close, resubscribes, and catches up through
// GET /v1/blocks using the sequence gap.
type Broker struct {
	mu   sync.Mutex
	next uint64 // next event sequence number
	subs map[*Subscription]struct{}
	// dropped counts subscriptions terminated for falling behind.
	dropped atomic.Int64
}

// Subscription is one subscriber's event feed. C is closed when the
// subscriber is dropped (buffer overflow) or Close is called.
type Subscription struct {
	C      <-chan wire.Event
	ch     chan wire.Event
	broker *Broker
	once   sync.Once
}

// Close detaches the subscription and closes C.
func (s *Subscription) Close() {
	s.broker.remove(s)
	s.once.Do(func() { close(s.ch) })
}

// NewBroker returns an empty broker.
func NewBroker() *Broker { return &Broker{subs: make(map[*Subscription]struct{})} }

// Subscribe attaches a new subscriber with the given buffer (<=0 selects
// DefaultSubscriberBuffer). Events published after this call are
// delivered; there is no replay.
func (b *Broker) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	s := &Subscription{broker: b, ch: make(chan wire.Event, buffer)}
	s.C = s.ch
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// remove detaches s without closing its channel.
func (b *Broker) remove(s *Subscription) {
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
}

// Publish assigns ev the next sequence number and delivers it to every
// subscriber that has room, dropping those that do not. It never blocks.
func (b *Broker) Publish(ev wire.Event) {
	b.mu.Lock()
	ev.Seq = b.next
	b.next++
	var drop []*Subscription
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			drop = append(drop, s)
		}
	}
	for _, s := range drop {
		delete(b.subs, s)
	}
	b.mu.Unlock()
	for _, s := range drop {
		b.dropped.Add(1)
		s.once.Do(func() { close(s.ch) })
	}
}

// Subscribers reports live subscriptions.
func (b *Broker) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Dropped reports subscriptions terminated for falling behind.
func (b *Broker) Dropped() int64 { return b.dropped.Load() }
