package api

import (
	"container/list"
	"sync"

	"contractstm/internal/types"

	"contractstm/internal/api/wire"
)

// DefaultReceiptCapacity bounds the receipt store when the node config
// leaves it zero.
const DefaultReceiptCapacity = 4096

// ReceiptStore is the bounded receipt index behind GET /v1/tx/{id}: a
// map from content-derived transaction ID to the transaction's current
// lifecycle state (pending, or a full receipt once its block is
// durable), evicting least-recently-written entries past the capacity.
//
// The store never decides durability — callers record receipts only for
// blocks the persistence layer has acknowledged (the node's crash rule),
// so everything the store serves is crash-stable by construction.
type ReceiptStore struct {
	mu  sync.Mutex
	cap int
	// entries maps tx ID to its list element; the list is LRU order,
	// front = most recently written.
	entries map[types.Hash]*list.Element
	lru     *list.List
}

// receiptEntry is one tracked transaction.
type receiptEntry struct {
	id types.Hash
	r  wire.TxReceipt
}

// NewReceiptStore returns a store bounded to capacity entries
// (<=0 selects DefaultReceiptCapacity).
func NewReceiptStore(capacity int) *ReceiptStore {
	if capacity <= 0 {
		capacity = DefaultReceiptCapacity
	}
	return &ReceiptStore{
		cap:     capacity,
		entries: make(map[types.Hash]*list.Element),
		lru:     list.New(),
	}
}

// MarkPending records a submitted-but-not-yet-durable transaction, so a
// client that just submitted polls "pending" rather than "not found".
// A transaction that already has a durable receipt is left alone — a
// resubmission of identical bytes must not mask the recorded outcome.
func (s *ReceiptStore) MarkPending(id types.Hash) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[id]; ok {
		if el.Value.(*receiptEntry).r.Status == wire.StatusPending {
			s.lru.MoveToFront(el)
		}
		return
	}
	s.put(id, wire.TxReceipt{ID: id.String(), Status: wire.StatusPending, TxIndex: -1, ScheduleIndex: -1})
}

// Record stores a durable receipt, overwriting any pending marker (or a
// previous execution of byte-identical calls).
func (s *ReceiptStore) Record(id types.Hash, r wire.TxReceipt) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[id]; ok {
		el.Value.(*receiptEntry).r = r
		s.lru.MoveToFront(el)
		return
	}
	s.put(id, r)
}

// put inserts a fresh entry, evicting the oldest past capacity. Caller
// holds s.mu.
func (s *ReceiptStore) put(id types.Hash, r wire.TxReceipt) {
	s.entries[id] = s.lru.PushFront(&receiptEntry{id: id, r: r})
	for s.lru.Len() > s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*receiptEntry).id)
	}
}

// Get returns the transaction's current receipt (possibly a pending
// marker) and whether the store knows the ID at all.
func (s *ReceiptStore) Get(id types.Hash) (wire.TxReceipt, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[id]
	if !ok {
		return wire.TxReceipt{}, false
	}
	return el.Value.(*receiptEntry).r, true
}

// Len reports tracked transactions (pending and receipted).
func (s *ReceiptStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}
