package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"contractstm/internal/chain"
)

// Defaults for Broadcaster's retry schedule.
const (
	// DefaultMaxAttempts is how many times a delivery is tried per peer.
	DefaultMaxAttempts = 3
	// DefaultBackoff is the first retry's delay; it doubles per attempt.
	DefaultBackoff = 25 * time.Millisecond
)

// Broadcaster pushes newly-mined blocks to a set of peers, retrying each
// failed delivery with exponential backoff. Deliveries to distinct peers
// run concurrently; a slow or dead peer never delays the others.
type Broadcaster struct {
	// Peers are the delivery targets.
	Peers []*Peer
	// MaxAttempts bounds tries per peer per block (0 = DefaultMaxAttempts).
	MaxAttempts int
	// Backoff is the first retry delay, doubling per attempt (0 =
	// DefaultBackoff).
	Backoff time.Duration
	// Sleep is the delay function (tests inject a recorder; nil =
	// time.Sleep honoring ctx cancellation).
	Sleep func(time.Duration)
}

// Delivery is one peer's outcome for one broadcast block.
type Delivery struct {
	// Peer is the target's base URL.
	Peer string
	// Attempts is how many tries were made (>= 1).
	Attempts int
	// Err is the final failure, nil on success.
	Err error
}

// Broadcast ships b to every peer and reports per-peer outcomes, indexed
// like Peers. It returns once every delivery has succeeded or exhausted
// its attempts.
//
// Retry policy: transport errors and 5xx answers are retried; a 4xx
// rejection is final for this broadcast (the peer validated and refused —
// resending identical bytes cannot change its mind; catch-up is Sync's
// job). Rejections surface in Delivery.Err as *RemoteError.
func (b *Broadcaster) Broadcast(ctx context.Context, blk chain.Block) []Delivery {
	attempts := b.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	backoff := b.Backoff
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	sleep := b.Sleep
	if sleep == nil {
		sleep = func(d time.Duration) {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
	}

	out := make([]Delivery, len(b.Peers))
	var wg sync.WaitGroup
	for i, p := range b.Peers {
		wg.Add(1)
		go func(i int, p *Peer) {
			defer wg.Done()
			d := Delivery{Peer: p.URL()}
			delay := backoff
			for d.Attempts < attempts {
				d.Attempts++
				d.Err = p.SendBlock(ctx, blk)
				if d.Err == nil || ctx.Err() != nil || finalRejection(d.Err) {
					break
				}
				if d.Attempts < attempts {
					sleep(delay)
					delay *= 2
				}
			}
			out[i] = d
		}(i, p)
	}
	wg.Wait()
	return out
}

// finalRejection reports whether err is a peer's considered refusal (4xx)
// rather than a transient transport or server failure.
func finalRejection(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Status >= 400 && re.Status < 500
}

// Failed filters deliveries down to the failures.
func Failed(ds []Delivery) []Delivery {
	var out []Delivery
	for _, d := range ds {
		if d.Err != nil {
			out = append(out, d)
		}
	}
	return out
}
