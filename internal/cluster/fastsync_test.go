package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"contractstm/internal/engine"
	"contractstm/internal/node"
	"contractstm/internal/persist"
)

// TestFastSyncLateJoiner is the acceptance scenario: a late joiner
// fetches the miner's newest state checkpoint over the wire, installs
// it, and replays only the blocks after it — converging without
// replaying the full chain, and holding a pruned chain below the
// checkpoint.
func TestFastSyncLateJoiner(t *testing.T) {
	const blocks, blockSize = 7, 6
	// One extra block's worth of calls stays pooled for the post-sync act.
	worlds, calls := newClusterWorlds(t, 2, (blocks+1)*blockSize)
	dir := t.TempDir()
	cl, err := New(Config{
		Worlds: worlds[:1], Engine: engine.KindSpeculative, Workers: 3,
		DataDirs: []string{dir},
		// Snapshots at heights 3 and 6; head ends at 7, so fast-sync
		// must install 6 and re-validate exactly one tail block.
		Persist: persist.Options{SnapshotEvery: 3, SyncEvery: -1},
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(cl.Close)
	miner := cl.Node(0)
	miner.SubmitAll(calls)
	for b := 0; b < blocks; b++ {
		if _, err := miner.MineOne(blockSize); err != nil {
			t.Fatalf("mine %d: %v", b+1, err)
		}
	}

	late, err := node.New(node.Config{World: worlds[1], Workers: 3, Engine: engine.KindSpeculative})
	if err != nil {
		t.Fatalf("late node: %v", err)
	}
	res, err := FastSync(context.Background(), late, cl.Peer(0))
	if err != nil {
		t.Fatalf("fast-sync: %v", err)
	}
	if !res.Installed || res.SnapshotHeight != 6 {
		t.Fatalf("installed=%v at %d, want snapshot 6", res.Installed, res.SnapshotHeight)
	}
	if res.Imported != 1 {
		t.Fatalf("imported %d tail blocks, want 1 (not the full chain)", res.Imported)
	}
	if late.Head().Header.Hash() != miner.Head().Header.Hash() {
		t.Fatal("late joiner did not converge to the miner's head")
	}
	st := late.CurrentStatus()
	if st.ChainBase != 6 {
		t.Fatalf("late joiner chain base %d, want 6", st.ChainBase)
	}
	if _, ok := late.BlockAt(1); ok {
		t.Fatal("fast-synced node claims to hold pruned history")
	}

	// The fast-synced node keeps working as a follower: new blocks from
	// the miner import through full validation.
	blk, err := miner.MineOne(blockSize)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if err := late.AcceptBlock(blk); err != nil {
		t.Fatalf("fast-synced node rejected the next block: %v", err)
	}
	if late.Head().Header.Hash() != miner.Head().Header.Hash() {
		t.Fatal("fast-synced node diverged on the next block")
	}
}

// TestFastSyncStaleSnapshotDegrades: when the peer's checkpoint is not
// ahead of the local head, fast-sync must not install anything and must
// still converge by plain catch-up.
func TestFastSyncStaleSnapshotDegrades(t *testing.T) {
	const blocks, blockSize = 3, 5
	worlds, calls := newClusterWorlds(t, 2, blocks*blockSize)
	// Non-durable miner with no snapshots beyond on-demand: the endpoint
	// serves a head checkpoint, so give the late joiner the same height
	// first, then check idempotence of a second fast-sync.
	cl, err := New(Config{Worlds: worlds[:1], Engine: engine.KindSerial, Workers: 2})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(cl.Close)
	miner := cl.Node(0)
	miner.SubmitAll(calls)
	for b := 0; b < blocks; b++ {
		if _, err := miner.MineOne(blockSize); err != nil {
			t.Fatalf("mine: %v", err)
		}
	}
	late, err := node.New(node.Config{World: worlds[1], Workers: 2, Engine: engine.KindSerial})
	if err != nil {
		t.Fatalf("late node: %v", err)
	}
	first, err := FastSync(context.Background(), late, cl.Peer(0))
	if err != nil {
		t.Fatalf("fast-sync: %v", err)
	}
	if !first.Installed {
		t.Fatalf("first fast-sync should install the on-demand head checkpoint, got %+v", first)
	}
	// Second run: the checkpoint equals the local head — stale, skipped.
	again, err := FastSync(context.Background(), late, cl.Peer(0))
	if err != nil {
		t.Fatalf("repeat fast-sync: %v", err)
	}
	if again.Installed || again.Imported != 0 {
		t.Fatalf("repeat fast-sync did work: %+v", again)
	}
	if late.Head().Header.Hash() != miner.Head().Header.Hash() {
		t.Fatal("not converged")
	}
}

// TestFastSyncFallsBackWithoutEndpoint: a peer that does not serve
// /snapshot (an older build) degrades fast-sync to a full catch-up.
func TestFastSyncFallsBackWithoutEndpoint(t *testing.T) {
	const blocks, blockSize = 3, 5
	worlds, calls := newClusterWorlds(t, 2, blocks*blockSize)
	miner, err := node.New(node.Config{World: worlds[0], Workers: 2, Engine: engine.KindSerial})
	if err != nil {
		t.Fatalf("miner: %v", err)
	}
	miner.SubmitAll(calls)
	for b := 0; b < blocks; b++ {
		if _, err := miner.MineOne(blockSize); err != nil {
			t.Fatalf("mine: %v", err)
		}
	}
	// An "old" node: the full wire API minus the snapshot endpoint.
	inner := miner.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/snapshot") || strings.HasPrefix(r.URL.Path, "/v1/snapshot") {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	peer := NewPeer(srv.URL, nil)
	if _, err := peer.Snapshot(context.Background()); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Snapshot: %v, want ErrNoSnapshot", err)
	}
	late, err := node.New(node.Config{World: worlds[1], Workers: 2, Engine: engine.KindSerial})
	if err != nil {
		t.Fatalf("late node: %v", err)
	}
	res, err := FastSync(context.Background(), late, peer)
	if err != nil {
		t.Fatalf("fast-sync: %v", err)
	}
	if res.Installed {
		t.Fatal("installed a snapshot from a peer without the endpoint")
	}
	if res.Imported != blocks {
		t.Fatalf("imported %d, want the full %d-block catch-up", res.Imported, blocks)
	}
	if late.Head().Header.Hash() != miner.Head().Header.Hash() {
		t.Fatal("not converged")
	}
}

// TestInstallSnapshotRejectsLyingHeader: a checkpoint whose state does
// not hash to its header's state root must be refused with the local
// state intact.
func TestInstallSnapshotRejectsLyingHeader(t *testing.T) {
	const blocks, blockSize = 2, 5
	worlds, calls := newClusterWorlds(t, 2, blocks*blockSize)
	cl, err := New(Config{Worlds: worlds[:1], Engine: engine.KindSerial, Workers: 2})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(cl.Close)
	miner := cl.Node(0)
	miner.SubmitAll(calls)
	for b := 0; b < blocks; b++ {
		if _, err := miner.MineOne(blockSize); err != nil {
			t.Fatalf("mine: %v", err)
		}
	}
	s, err := cl.Peer(0).Snapshot(context.Background())
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	s.Header.StateRoot[0] ^= 0xff // the header now lies about the state

	late, err := node.New(node.Config{World: worlds[1], Workers: 2, Engine: engine.KindSerial})
	if err != nil {
		t.Fatalf("late node: %v", err)
	}
	preRoot, _ := worlds[1].StateRoot()
	if err := late.InstallSnapshot(s); err == nil {
		t.Fatal("lying checkpoint installed")
	}
	if postRoot, _ := worlds[1].StateRoot(); postRoot != preRoot {
		t.Fatal("failed install left the world state modified")
	}
	if late.Head().Header.Number != 0 {
		t.Fatal("failed install moved the chain")
	}
}
