package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/node"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

// clusterParams is the shared workload shape: enough conflict that blocks
// carry happens-before edges (the tamper tests need a non-trivial
// schedule to corrupt).
func clusterParams(txs int) workload.Params {
	return workload.Params{
		Kind:            workload.KindToken,
		Transactions:    txs,
		ConflictPercent: 50,
		Seed:            7,
	}
}

// newClusterWorlds generates n identical worlds plus the miner's call
// list.
func newClusterWorlds(t *testing.T, n, txs int) ([]*contract.World, []contract.Call) {
	t.Helper()
	worlds, calls, err := GenerateWorlds(clusterParams(txs), n)
	if err != nil {
		t.Fatalf("GenerateWorlds: %v", err)
	}
	return worlds, calls
}

func newTestCluster(t *testing.T, nodes, txs int, eng engine.Kind) (*Cluster, []contract.Call) {
	t.Helper()
	worlds, calls := newClusterWorlds(t, nodes, txs)
	cl, err := New(Config{Worlds: worlds, Engine: eng, Workers: 3})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(cl.Close)
	return cl, calls
}

// TestFollowerConvergesPerEngine is the headline scenario: for each of
// the three engines, a miner node seals blocks and followers — given
// only wire-encoded blocks over HTTP — reach the same head hash and
// state root by replaying the published schedule.
func TestFollowerConvergesPerEngine(t *testing.T) {
	const (
		blocks    = 3
		blockSize = 16
		followers = 2
	)
	for _, eng := range engine.Kinds() {
		t.Run(eng.String(), func(t *testing.T) {
			cl, calls := newTestCluster(t, followers+1, blocks*blockSize, eng)
			miner := cl.Node(0)
			miner.SubmitAll(calls)
			bcast := cl.Broadcaster(0)
			for b := 0; b < blocks; b++ {
				blk, err := miner.MineOne(blockSize)
				if err != nil {
					t.Fatalf("mine block %d: %v", b+1, err)
				}
				if failed := Failed(bcast.Broadcast(context.Background(), blk)); len(failed) > 0 {
					t.Fatalf("broadcast block %d: %+v", b+1, failed)
				}
			}
			if !cl.Converged() {
				t.Fatalf("heads diverged: %+v", cl.Heads())
			}
			minerHead := miner.Head().Header
			if minerHead.Number != blocks {
				t.Fatalf("miner height = %d, want %d", minerHead.Number, blocks)
			}
			for i := 1; i <= followers; i++ {
				h := cl.Node(i).Head().Header
				if h.Hash() != minerHead.Hash() {
					t.Fatalf("follower %d head %s != miner %s", i, h.Hash().Short(), minerHead.Hash().Short())
				}
				if h.StateRoot != minerHead.StateRoot {
					t.Fatalf("follower %d state root diverged", i)
				}
			}
		})
	}
}

// corruptSchedule reverses a block's published serial order and re-seals
// the schedule hash so the tampering survives the wire decode's
// commitment check: only deterministic re-validation can catch it.
func corruptSchedule(t *testing.T, b chain.Block) chain.Block {
	t.Helper()
	if len(b.Schedule.Edges) == 0 {
		t.Fatal("block schedule has no edges; tamper test needs conflicts")
	}
	forged := b
	forged.Schedule.Order = make([]types.TxID, 0, len(b.Schedule.Order))
	for i := len(b.Schedule.Order) - 1; i >= 0; i-- {
		forged.Schedule.Order = append(forged.Schedule.Order, b.Schedule.Order[i])
	}
	forged.Header.ScheduleHash = chain.ScheduleHashOf(forged.Schedule, forged.Profiles)
	return forged
}

// TestWireRoundTripAndRejections drives a block through the real wire
// path — GET /blocks/{h} → DecodeBlock → POST /blocks → AcceptBlock —
// and exercises every rejection: tampered schedule, wrong parent,
// duplicate import, and corrupted bytes.
func TestWireRoundTripAndRejections(t *testing.T) {
	const blockSize = 16
	cl, calls := newTestCluster(t, 2, 2*blockSize, engine.KindSpeculative)
	miner, follower := cl.Node(0), cl.Node(1)
	miner.SubmitAll(calls)
	var mined []chain.Block
	for b := 0; b < 2; b++ {
		blk, err := miner.MineOne(blockSize)
		if err != nil {
			t.Fatalf("mine: %v", err)
		}
		mined = append(mined, blk)
	}
	ctx := context.Background()
	minerPeer, followerPeer := cl.Peer(0), cl.Peer(1)

	// Round-trip block 1: fetch wire bytes from the miner, decode, push
	// to the follower, accepted through full validation.
	blk1, err := minerPeer.Block(ctx, 1)
	if err != nil {
		t.Fatalf("fetch block 1: %v", err)
	}
	if blk1.Header.Hash() != mined[0].Header.Hash() {
		t.Fatal("wire round-trip changed the block hash")
	}
	if err := followerPeer.SendBlock(ctx, blk1); err != nil {
		t.Fatalf("send block 1: %v", err)
	}
	if follower.Height() != 1 {
		t.Fatalf("follower height = %d", follower.Height())
	}

	// Duplicate import: idempotent, height unchanged.
	if err := followerPeer.SendBlock(ctx, blk1); err != nil {
		t.Fatalf("duplicate send: %v", err)
	}
	if follower.Height() != 1 {
		t.Fatalf("duplicate import advanced height to %d", follower.Height())
	}

	// Tampered schedule: commitments re-sealed, so it survives decode and
	// must die in validation — without advancing the follower's head.
	forged := corruptSchedule(t, mined[1])
	err = followerPeer.SendBlock(ctx, forged)
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusConflict {
		t.Fatalf("tampered schedule err = %v, want 409", err)
	}
	if follower.Height() != 1 {
		t.Fatalf("tampered schedule advanced height to %d", follower.Height())
	}

	// Honest block 2 still lands afterwards (rejection restored state).
	if err := followerPeer.SendBlock(ctx, mined[1]); err != nil {
		t.Fatalf("send block 2 after tamper: %v", err)
	}

	// Wrong parent: block 2 into a fresh node still at genesis.
	fresh, _ := newTestCluster(t, 1, blockSize, engine.KindSpeculative)
	err = fresh.Peer(0).SendBlock(ctx, mined[1])
	if !errors.As(err, &re) || re.Status != http.StatusConflict {
		t.Fatalf("wrong parent err = %v, want 409", err)
	}
	if fresh.Node(0).Height() != 0 {
		t.Fatalf("wrong-parent import advanced fresh node to %d", fresh.Node(0).Height())
	}

	// Corrupted bytes die at decode with 400.
	resp, err := http.Post(cl.URL(1)+"/blocks", "application/octet-stream", http.NoBody)
	if err != nil {
		t.Fatalf("POST empty block: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty block status = %d", resp.StatusCode)
	}
}

// TestCatchUpSync joins a follower late: the miner has sealed several
// blocks before the follower syncs from its head to the miner's.
func TestCatchUpSync(t *testing.T) {
	const (
		blocks    = 4
		blockSize = 12
	)
	cl, calls := newTestCluster(t, 2, blocks*blockSize, engine.KindOCC)
	miner, follower := cl.Node(0), cl.Node(1)
	miner.SubmitAll(calls)
	for b := 0; b < blocks; b++ {
		if _, err := miner.MineOne(blockSize); err != nil {
			t.Fatalf("mine: %v", err)
		}
	}
	imported, err := Sync(context.Background(), follower, cl.Peer(0))
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if imported != blocks {
		t.Fatalf("imported %d blocks, want %d", imported, blocks)
	}
	if !cl.Converged() {
		t.Fatalf("heads diverged after sync: %+v", cl.Heads())
	}
	// Synced-up sync is a no-op.
	if imported, err = Sync(context.Background(), follower, cl.Peer(0)); err != nil || imported != 0 {
		t.Fatalf("re-sync = (%d, %v), want (0, nil)", imported, err)
	}
	// Syncing the miner from the follower (equal heads) is a no-op too.
	if imported, err = Sync(context.Background(), miner, cl.Peer(1)); err != nil || imported != 0 {
		t.Fatalf("reverse sync = (%d, %v), want (0, nil)", imported, err)
	}
}

// TestSyncCancelledBeforeFirstFetch: a sync whose context is already
// cancelled must stop before the initial head fetch — zero requests on
// the wire — and propagate the cancellation cause, not a bare
// context.Canceled.
func TestSyncCancelledBeforeFirstFetch(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "must not be reached", http.StatusInternalServerError)
	}))
	defer srv.Close()

	worlds, _ := newClusterWorlds(t, 1, 4)
	n, err := node.New(node.Config{World: worlds[0], Workers: 1})
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}

	cause := errors.New("operator aborted the sync")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)

	imported, err := Sync(ctx, n, NewPeer(srv.URL, srv.Client()))
	if !errors.Is(err, cause) {
		t.Fatalf("Sync err = %v, want the cancellation cause %v", err, cause)
	}
	if imported != 0 {
		t.Fatalf("imported = %d, want 0", imported)
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("cancelled sync still made %d requests", got)
	}
}

// TestSyncDetectsDivergence lets two nodes mine different blocks at the
// same height; syncing either from the other must fail with ErrDiverged
// and leave both chains untouched.
func TestSyncDetectsDivergence(t *testing.T) {
	const blockSize = 12
	cl, calls := newTestCluster(t, 2, 3*blockSize, engine.KindSpeculative)
	a, b := cl.Node(0), cl.Node(1)
	// Different transactions per node → different block 1.
	a.SubmitAll(calls[:2*blockSize])
	b.SubmitAll(calls[2*blockSize:])
	if _, err := a.MineOne(blockSize); err != nil {
		t.Fatalf("mine a: %v", err)
	}
	if _, err := b.MineOne(blockSize); err != nil {
		t.Fatalf("mine b: %v", err)
	}
	if _, err := Sync(context.Background(), b, cl.Peer(0)); !errors.Is(err, ErrDiverged) {
		t.Fatalf("sync err = %v, want ErrDiverged", err)
	}
	if a.Height() != 1 || b.Height() != 1 {
		t.Fatalf("divergence check mutated chains: %d/%d", a.Height(), b.Height())
	}
	// The deeper-chain side detects it too.
	if _, err := a.MineOne(blockSize); err != nil {
		t.Fatalf("mine a2: %v", err)
	}
	if _, err := Sync(context.Background(), a, cl.Peer(1)); !errors.Is(err, ErrDiverged) {
		t.Fatalf("ahead-side sync err = %v, want ErrDiverged", err)
	}
}

// TestBroadcastRetryAndBackoff fronts a follower with a transport that
// fails the first two deliveries; the broadcaster must retry with
// growing backoff and succeed on the third attempt. A dead peer must
// exhaust its attempts and surface the failure.
func TestBroadcastRetryAndBackoff(t *testing.T) {
	worlds, calls := newClusterWorlds(t, 2, 16)
	minerNode, err := node.New(node.Config{World: worlds[0], Workers: 3})
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	followerNode, err := node.New(node.Config{World: worlds[1], Workers: 3})
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	minerNode.SubmitAll(calls)
	blk, err := minerNode.MineOne(16)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}

	var hits atomic.Int32
	inner := followerNode.Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	// Sleep is called from one goroutine per peer; guard the recorder.
	var (
		sleptMu sync.Mutex
		slept   []time.Duration
	)
	bcast := &Broadcaster{
		Peers:       []*Peer{NewPeer(flaky.URL, nil), NewPeer("http://127.0.0.1:1", nil)},
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Sleep: func(d time.Duration) {
			sleptMu.Lock()
			slept = append(slept, d)
			sleptMu.Unlock()
		},
	}
	ds := bcast.Broadcast(context.Background(), blk)
	if ds[0].Err != nil || ds[0].Attempts != 3 {
		t.Fatalf("flaky delivery = %+v", ds[0])
	}
	if followerNode.Height() != 1 {
		t.Fatalf("follower height = %d", followerNode.Height())
	}
	if ds[1].Err == nil || ds[1].Attempts != 3 {
		t.Fatalf("dead peer delivery = %+v", ds[1])
	}
	if len(Failed(ds)) != 1 {
		t.Fatalf("Failed = %+v", Failed(ds))
	}
	// Backoff doubled between the flaky peer's attempts (the dead peer's
	// sleeps interleave; check the recorded set contains both steps).
	var sawBase, sawDoubled bool
	for _, d := range slept {
		sawBase = sawBase || d == time.Millisecond
		sawDoubled = sawDoubled || d == 2*time.Millisecond
	}
	if !sawBase || !sawDoubled {
		t.Fatalf("backoff schedule = %v", slept)
	}
}

// TestBroadcastStopsOnRejection checks a 4xx refusal is not retried: the
// peer validated the block and said no.
func TestBroadcastStopsOnRejection(t *testing.T) {
	cl, calls := newTestCluster(t, 2, 32, engine.KindSerial)
	miner := cl.Node(0)
	miner.SubmitAll(calls)
	var blks []chain.Block
	for b := 0; b < 2; b++ {
		blk, err := miner.MineOne(16)
		if err != nil {
			t.Fatalf("mine: %v", err)
		}
		blks = append(blks, blk)
	}
	// Send block 2 first: wrong parent for the genesis-level follower.
	bcast := cl.Broadcaster(0)
	// t.Error, not t.Fatal: Sleep runs on a broadcast worker goroutine.
	bcast.Sleep = func(time.Duration) { t.Error("rejection must not back off") }
	ds := bcast.Broadcast(context.Background(), blks[1])
	if len(ds) != 1 || ds[0].Err == nil || ds[0].Attempts != 1 {
		t.Fatalf("deliveries = %+v", ds)
	}
}
