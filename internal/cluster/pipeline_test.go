package cluster

import (
	"testing"

	"contractstm/internal/engine"
	"contractstm/internal/persist"
)

// TestPipelinePublishConvergence: a miner running the block pipeline at
// depths 1, 2 and 4 publishes through the durable-only hook; followers
// re-validate every published schedule and the cluster converges on the
// miner's head. Because the hook fires in height order after each WAL
// fsync, followers never reject a block for a missing parent and never
// hold a block the miner could lose in a crash.
func TestPipelinePublishConvergence(t *testing.T) {
	for _, depth := range []int{1, 2, 4} {
		depth := depth
		for _, ek := range []engine.Kind{engine.KindSerial, engine.KindSpeculative} {
			ek := ek
			t.Run(ek.String()+"/depth", func(t *testing.T) {
				const (
					blocks    = 4
					blockSize = 8
				)
				worlds, calls := newClusterWorlds(t, 3, blocks*blockSize)
				dirs := []string{t.TempDir(), "", ""} // miner durable, followers in-memory
				cl, err := New(Config{
					Worlds: worlds, Engine: ek, Workers: 3,
					DataDirs: dirs, Persist: persist.Options{SnapshotEvery: -1},
					PipelineDepth: depth,
				})
				if err != nil {
					t.Fatalf("cluster.New: %v", err)
				}
				defer cl.Close()
				cl.PublishVia(0)

				miner := cl.Node(0)
				miner.SubmitAll(calls)
				mined, err := miner.MinePipelined(blocks, blockSize)
				if err != nil {
					t.Fatalf("depth %d: mine: %v", depth, err)
				}
				if mined != blocks {
					t.Fatalf("depth %d: mined %d, want %d", depth, mined, blocks)
				}
				// MinePipelined drained the pipeline; every durable block was
				// published synchronously inside the hook, so the followers
				// are already converged — no polling needed.
				if !cl.Converged() {
					heads := cl.Heads()
					t.Fatalf("depth %d: cluster did not converge: miner %d, followers %d/%d",
						depth, heads[0].Number, heads[1].Number, heads[2].Number)
				}
				if got := miner.Height(); got != uint64(blocks) {
					t.Fatalf("depth %d: miner height %d, want %d", depth, got, blocks)
				}
				for i := 1; i < cl.Len(); i++ {
					st := cl.Node(i).CurrentStatus()
					if st.ValidatedBlocks != blocks {
						t.Fatalf("depth %d: follower %d validated %d blocks, want %d",
							depth, i, st.ValidatedBlocks, blocks)
					}
				}
			})
		}
	}
}
