// Package cluster is the multi-node subsystem: it propagates sealed
// blocks between in-process or networked nodes so that *other* machines
// re-validate a miner's published (S, H) schedule — the paper's core
// claim, exercised across process boundaries for the first time.
//
// The pieces:
//
//   - Peer: a client view of one remote node, built on the versioned
//     /v1 SDK (internal/api/client) — the cluster layer owns no raw
//     HTTP;
//   - Broadcaster: pushes newly-mined blocks to all peers with bounded
//     retry/backoff;
//   - Sync: catch-up — a lagging or newly-joined node walks from its head
//     to a peer's head, fetching and validator-gating each block, with
//     divergence detection;
//   - Cluster: a harness running N in-process nodes over httptest
//     transports (tests, benchmarks) or real TCP (cmd/clusterdemo).
//
// Every imported block goes through node.AcceptBlock, i.e. the full
// deterministic fork-join validation; the cluster layer adds transport,
// retries and chain-level divergence checks, never trust.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"contractstm/internal/api/client"
	"contractstm/internal/api/wire"
	"contractstm/internal/chain"
	"contractstm/internal/persist"
	"contractstm/internal/types"
)

// ErrNoBlock reports a requested height the peer does not have.
var ErrNoBlock = errors.New("cluster: peer has no block at height")

// ErrNoSnapshot reports a peer that does not serve state checkpoints;
// fast-sync falls back to full catch-up.
var ErrNoSnapshot = errors.New("cluster: peer serves no snapshot")

// RemoteError is a non-2xx response from a peer: the peer was reachable
// and answered, so retrying without changing anything is usually futile
// (the block was rejected), unlike a transport error.
type RemoteError struct {
	Status int
	// Code is the machine-readable wire error code ("" from pre-v1
	// peers).
	Code string
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: peer status %d: %s", e.Status, e.Msg)
}

// Peer is a client view of one remote node's wire API. The transport —
// requests, bounded retries of idempotent fetches, error decoding — is
// the /v1 SDK's; Peer adds the cluster layer's error vocabulary.
type Peer struct {
	c *client.Client
}

// NewPeer returns a peer client for a node served at baseURL. A nil
// client gets a default with a conservative timeout.
func NewPeer(baseURL string, hc *http.Client) *Peer {
	opts := []client.Option{}
	if hc != nil {
		opts = append(opts, client.WithHTTPClient(hc))
	}
	return &Peer{c: client.New(baseURL, opts...)}
}

// URL returns the peer's base URL.
func (p *Peer) URL() string { return p.c.URL() }

// Client exposes the underlying SDK client (receipt queries, event
// subscriptions and other non-cluster calls).
func (p *Peer) Client() *client.Client { return p.c }

// peerErr converts an SDK failure into the cluster error vocabulary:
// non-2xx answers become *RemoteError; transport errors pass through.
func peerErr(err error) error {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return &RemoteError{Status: ae.Status, Code: ae.Code, Msg: ae.Message}
	}
	return err
}

// Head is a peer's chain-tip summary.
type Head struct {
	Number    uint64
	Hash      types.Hash
	StateRoot types.Hash
}

// Head fetches the peer's durable chain tip.
func (p *Peer) Head(ctx context.Context) (Head, error) {
	info, err := p.c.Head(ctx)
	if err != nil {
		return Head{}, fmt.Errorf("cluster: head: %w", peerErr(err))
	}
	h := Head{Number: info.Number}
	if h.Hash, err = types.ParseHash(info.Hash); err != nil {
		return Head{}, fmt.Errorf("cluster: head hash: %w", err)
	}
	if h.StateRoot, err = types.ParseHash(info.StateRoot); err != nil {
		return Head{}, fmt.Errorf("cluster: head state root: %w", err)
	}
	return h, nil
}

// Block fetches and decodes the peer's block at the given height. The
// decode path re-verifies header commitments, so a corrupted stream is
// rejected here; execution-level trust still comes from AcceptBlock.
func (p *Peer) Block(ctx context.Context, height uint64) (chain.Block, error) {
	b, err := p.c.Block(ctx, height)
	if err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
			return chain.Block{}, fmt.Errorf("%w %d (%s)", ErrNoBlock, height, p.URL())
		}
		return chain.Block{}, fmt.Errorf("cluster: block %d: %w", height, peerErr(err))
	}
	return b, nil
}

// Blocks fetches up to count consecutive blocks starting at from — the
// range endpoint that amortizes catch-up round-trips. The result may be
// short (the peer serves what it has durable); a missing starting height
// maps to ErrNoBlock like the single-block fetch. Old peers without the
// route answer an error here — the import pipeline falls back to Block,
// which also owns the canonical fetch-error messages.
func (p *Peer) Blocks(ctx context.Context, from uint64, count int) ([]chain.Block, error) {
	bs, err := p.c.Blocks(ctx, from, count)
	if err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound && ae.Code == wire.CodeBlockNotFound {
			return nil, fmt.Errorf("%w %d (%s)", ErrNoBlock, from, p.URL())
		}
		return nil, fmt.Errorf("cluster: blocks [%d,+%d): %w", from, count, peerErr(err))
	}
	return bs, nil
}

// Snapshot fetches the peer's current state checkpoint: the head header
// plus encoded world state. The decode path verifies the frame checksum;
// the *claims* in the checkpoint are verified by node.InstallSnapshot
// (state must hash to the header's root), and trusting the header itself
// is the fast-sync trade-off.
func (p *Peer) Snapshot(ctx context.Context) (persist.Snapshot, error) {
	s, err := p.c.Snapshot(ctx)
	if err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
			return persist.Snapshot{}, fmt.Errorf("%w (%s)", ErrNoSnapshot, p.URL())
		}
		return persist.Snapshot{}, fmt.Errorf("cluster: snapshot: %w", peerErr(err))
	}
	return s, nil
}

// SendBlock ships a sealed block to the peer for import. A 2xx answer —
// including the peer reporting it already knew the block — is success;
// any other answer is a *RemoteError carrying the peer's reason. The SDK
// does not retry block import; the Broadcaster owns delivery retries.
func (p *Peer) SendBlock(ctx context.Context, b chain.Block) error {
	if err := p.c.SendBlock(ctx, b); err != nil {
		return fmt.Errorf("cluster: send block %d: %w", b.Header.Number, peerErr(err))
	}
	return nil
}

// Receipt fetches a transaction receipt from the peer — a convenience
// passthrough for demos and tools that already hold a Peer.
func (p *Peer) Receipt(ctx context.Context, id string) (wire.TxReceipt, error) {
	r, err := p.c.Receipt(ctx, id)
	if err != nil {
		return wire.TxReceipt{}, fmt.Errorf("cluster: receipt: %w", peerErr(err))
	}
	return r, nil
}
