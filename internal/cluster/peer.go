// Package cluster is the multi-node subsystem: it propagates sealed
// blocks between in-process or networked nodes so that *other* machines
// re-validate a miner's published (S, H) schedule — the paper's core
// claim, exercised across process boundaries for the first time.
//
// The pieces:
//
//   - Peer: a client for the node wire API (GET /head, GET /blocks/{h},
//     POST /blocks);
//   - Broadcaster: pushes newly-mined blocks to all peers with bounded
//     retry/backoff;
//   - Sync: catch-up — a lagging or newly-joined node walks from its head
//     to a peer's head, fetching and validator-gating each block, with
//     divergence detection;
//   - Cluster: a harness running N in-process nodes over httptest
//     transports (tests, benchmarks) or real TCP (cmd/clusterdemo).
//
// Every imported block goes through node.AcceptBlock, i.e. the full
// deterministic fork-join validation; the cluster layer adds transport,
// retries and chain-level divergence checks, never trust.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"contractstm/internal/chain"
	"contractstm/internal/persist"
	"contractstm/internal/types"
)

// ErrNoBlock reports a requested height the peer does not have.
var ErrNoBlock = errors.New("cluster: peer has no block at height")

// ErrNoSnapshot reports a peer that does not serve state checkpoints
// (an older build); fast-sync falls back to full catch-up.
var ErrNoSnapshot = errors.New("cluster: peer serves no snapshot")

// RemoteError is a non-2xx response from a peer: the peer was reachable
// and answered, so retrying without changing anything is usually futile
// (the block was rejected), unlike a transport error.
type RemoteError struct {
	Status int
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: peer status %d: %s", e.Status, e.Msg)
}

// Peer is a client for one remote node's wire API.
type Peer struct {
	base   string
	client *http.Client
}

// NewPeer returns a peer client for a node served at baseURL. A nil
// client gets a default with a conservative timeout.
func NewPeer(baseURL string, client *http.Client) *Peer {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Peer{base: strings.TrimRight(baseURL, "/"), client: client}
}

// URL returns the peer's base URL.
func (p *Peer) URL() string { return p.base }

// Head is a peer's chain-tip summary, as served by GET /head.
type Head struct {
	Number    uint64
	Hash      types.Hash
	StateRoot types.Hash
}

// Head fetches the peer's chain tip.
func (p *Peer) Head(ctx context.Context) (Head, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/head", nil)
	if err != nil {
		return Head{}, fmt.Errorf("cluster: head request: %w", err)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return Head{}, fmt.Errorf("cluster: head: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Head{}, remoteError(resp)
	}
	var wire struct {
		Number    uint64 `json:"number"`
		Hash      string `json:"hash"`
		StateRoot string `json:"stateRoot"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&wire); err != nil {
		return Head{}, fmt.Errorf("cluster: head decode: %w", err)
	}
	h := Head{Number: wire.Number}
	if h.Hash, err = types.ParseHash(wire.Hash); err != nil {
		return Head{}, fmt.Errorf("cluster: head hash: %w", err)
	}
	if h.StateRoot, err = types.ParseHash(wire.StateRoot); err != nil {
		return Head{}, fmt.Errorf("cluster: head state root: %w", err)
	}
	return h, nil
}

// Block fetches and decodes the peer's block at the given height. The
// decode path re-verifies header commitments, so a corrupted stream is
// rejected here; execution-level trust still comes from AcceptBlock.
func (p *Peer) Block(ctx context.Context, height uint64) (chain.Block, error) {
	url := fmt.Sprintf("%s/blocks/%d", p.base, height)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return chain.Block{}, fmt.Errorf("cluster: block request: %w", err)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return chain.Block{}, fmt.Errorf("cluster: block %d: %w", height, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return chain.Block{}, fmt.Errorf("%w %d (%s)", ErrNoBlock, height, p.base)
	}
	if resp.StatusCode != http.StatusOK {
		return chain.Block{}, remoteError(resp)
	}
	b, err := chain.DecodeBlock(io.LimitReader(resp.Body, chain.MaxWireBlock))
	if err != nil {
		return chain.Block{}, fmt.Errorf("cluster: block %d: %w", height, err)
	}
	return b, nil
}

// Snapshot fetches the peer's current state checkpoint (GET /snapshot):
// the head header plus encoded world state. The decode path verifies the
// frame checksum; the *claims* in the checkpoint are verified by
// node.InstallSnapshot (state must hash to the header's root), and
// trusting the header itself is the fast-sync trade-off.
func (p *Peer) Snapshot(ctx context.Context) (persist.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/snapshot", nil)
	if err != nil {
		return persist.Snapshot{}, fmt.Errorf("cluster: snapshot request: %w", err)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return persist.Snapshot{}, fmt.Errorf("cluster: snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return persist.Snapshot{}, fmt.Errorf("%w (%s)", ErrNoSnapshot, p.base)
	}
	if resp.StatusCode != http.StatusOK {
		return persist.Snapshot{}, remoteError(resp)
	}
	s, err := persist.DecodeSnapshot(io.LimitReader(resp.Body, persist.MaxSnapshotWire))
	if err != nil {
		return persist.Snapshot{}, fmt.Errorf("cluster: snapshot: %w", err)
	}
	return s, nil
}

// SendBlock ships a sealed block to the peer for import. A 2xx answer —
// including the peer reporting it already knew the block — is success;
// any other answer is a *RemoteError carrying the peer's reason.
func (p *Peer) SendBlock(ctx context.Context, b chain.Block) error {
	raw, err := chain.MarshalBlock(b)
	if err != nil {
		return fmt.Errorf("cluster: send block %d: %w", b.Header.Number, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+"/blocks", bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("cluster: send request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: send block %d: %w", b.Header.Number, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return remoteError(resp)
	}
	return nil
}

// remoteError drains a peer's error body into a *RemoteError.
func remoteError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(body))
	var wire struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &wire) == nil && wire.Error != "" {
		msg = wire.Error
	}
	return &RemoteError{Status: resp.StatusCode, Msg: msg}
}
