package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/node"
	"contractstm/internal/persist"
	"contractstm/internal/runtime"
	"contractstm/internal/txpool"
	"contractstm/internal/workload"
)

// GenerateWorlds builds n identical genesis worlds for params — workload
// generation is deterministic in the seed, so every copy shares one state
// root — plus the generated call list for the miner to submit. It is the
// one way the harness, the benchmarks and the demo set up a cluster whose
// nodes agree at genesis.
func GenerateWorlds(params workload.Params, n int) ([]*contract.World, []contract.Call, error) {
	worlds := make([]*contract.World, n)
	var calls []contract.Call
	for i := range worlds {
		wl, err := workload.Generate(params)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: generate world %d: %w", i, err)
		}
		worlds[i] = wl.World
		if i == 0 {
			calls = wl.Calls
		}
	}
	return worlds, calls, nil
}

// Config assembles an in-process cluster: one node per world, each served
// over its own HTTP transport with a peer client pointing at it.
type Config struct {
	// Worlds holds one genesis world per node. All nodes must start from
	// identical state (same state root), or their genesis blocks — and
	// everything after — would differ.
	Worlds []*contract.World
	// Engine selects every node's block-execution engine.
	Engine engine.Kind
	// Workers is each node's mining/validation pool size.
	Workers int
	// Runner executes mining and validation (nil = real OS threads).
	Runner runtime.Runner
	// SelectionPolicy picks block transactions from each node's pool.
	SelectionPolicy txpool.Policy
	// Listen, when non-empty, binds node i to the TCP address Listen[i]
	// (length must match Worlds; use "127.0.0.1:0" for an ephemeral
	// port). Empty means httptest transports — in-process sockets, ideal
	// for tests and benchmarks.
	Listen []string
	// DataDirs, when non-empty, gives node i the durable data directory
	// DataDirs[i] (length must match Worlds; "" leaves that node
	// in-memory).
	DataDirs []string
	// Persist tunes durable nodes' WAL sync and snapshot cadence.
	Persist persist.Options
	// PipelineDepth sets every node's sealed-not-durable window (0/1 =
	// synchronous mining). A pipelining miner publishes blocks to its
	// peers only once they are durable — wire it with PublishVia.
	PipelineDepth int
	// Client overrides the HTTP client the peer handles use.
	Client *http.Client
	// ImportMode sets every node's staged-import rollout switch
	// (off|shadow|on); the zero value keeps catch-up sync serial.
	ImportMode node.ImportMode
}

// Cluster runs N in-process nodes behind HTTP servers. Node 0 is the
// conventional miner in the harness helpers, but nothing in the wiring
// privileges it — any node can mine, accept and serve blocks.
type Cluster struct {
	nodes  []*node.Node
	urls   []string
	stops  []func()
	client *http.Client
}

// New builds and starts a cluster. Callers own Close.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Worlds) == 0 {
		return nil, fmt.Errorf("cluster: no worlds")
	}
	if len(cfg.Listen) > 0 && len(cfg.Listen) != len(cfg.Worlds) {
		return nil, fmt.Errorf("cluster: %d listen addresses for %d worlds", len(cfg.Listen), len(cfg.Worlds))
	}
	if len(cfg.DataDirs) > 0 && len(cfg.DataDirs) != len(cfg.Worlds) {
		return nil, fmt.Errorf("cluster: %d data dirs for %d worlds", len(cfg.DataDirs), len(cfg.Worlds))
	}
	c := &Cluster{client: cfg.Client}
	for i, w := range cfg.Worlds {
		var dataDir string
		if len(cfg.DataDirs) > 0 {
			dataDir = cfg.DataDirs[i]
		}
		n, err := node.New(node.Config{
			World:           w,
			Workers:         cfg.Workers,
			Runner:          cfg.Runner,
			SelectionPolicy: cfg.SelectionPolicy,
			Engine:          cfg.Engine,
			DataDir:         dataDir,
			Persist:         cfg.Persist,
			PipelineDepth:   cfg.PipelineDepth,
			ImportMode:      cfg.ImportMode,
		})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		// Nodes must share a genesis whenever both still hold block 0 — a
		// recovered node is legitimately ahead of a fresh one, but a
		// *different* chain should fail at construction, not as baffling
		// per-block rejections later. Only fast-synced (pruned) chains,
		// which no longer hold genesis, skip the check.
		if i > 0 {
			mine, okA := n.BlockAt(0)
			theirs, okB := c.nodes[0].BlockAt(0)
			if okA && okB && mine.Header.Hash() != theirs.Header.Hash() {
				c.Close()
				return nil, fmt.Errorf("cluster: node %d genesis differs from node 0 (worlds not identical)", i)
			}
		}
		url, stop, err := serve(n, cfg.Listen, i)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		c.urls = append(c.urls, url)
		c.stops = append(c.stops, stop)
	}
	return c, nil
}

// serve exposes a node over httptest or a real TCP listener.
func serve(n *node.Node, listen []string, i int) (url string, stop func(), err error) {
	if len(listen) == 0 {
		srv := httptest.NewServer(n.Handler())
		return srv.URL, srv.Close, nil
	}
	ln, err := net.Listen("tcp", listen[i])
	if err != nil {
		return "", nil, fmt.Errorf("cluster: node %d listen %s: %w", i, listen[i], err)
	}
	srv := &http.Server{Handler: n.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// Close shuts down every node's HTTP server, then closes the nodes
// (durable ones flush their WAL and save their mempool).
func (c *Cluster) Close() {
	for _, stop := range c.stops {
		stop()
	}
	for _, n := range c.nodes {
		_ = n.Close()
	}
}

// Len returns the number of nodes.
func (c *Cluster) Len() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *node.Node { return c.nodes[i] }

// URL returns node i's base URL.
func (c *Cluster) URL(i int) string { return c.urls[i] }

// Peer returns a client view of node i.
func (c *Cluster) Peer(i int) *Peer { return NewPeer(c.urls[i], c.client) }

// PeersExcept returns clients for every node but i — the broadcast
// targets from node i's point of view.
func (c *Cluster) PeersExcept(i int) []*Peer {
	var out []*Peer
	for j := range c.nodes {
		if j != i {
			out = append(out, c.Peer(j))
		}
	}
	return out
}

// Broadcaster returns a broadcaster from node i to every other node.
func (c *Cluster) Broadcaster(i int) *Broadcaster {
	return &Broadcaster{Peers: c.PeersExcept(i)}
}

// PublishVia wires node i's publish hook to broadcast every durable
// block to the other nodes. The node invokes the hook serially in height
// order, and only after the block's WAL record is durable — so followers
// can never hold a block the miner might lose in a crash, and never see
// height N+1 before height N. The broadcast itself is synchronous within
// the hook, which back-pressures the pipeline on slow followers instead
// of queueing unboundedly ahead of them.
func (c *Cluster) PublishVia(i int) {
	bcast := c.Broadcaster(i)
	c.nodes[i].SetPublish(func(b chain.Block) {
		// Failed deliveries are the broadcaster's retry/backoff business;
		// a permanently dead peer catches up via Sync later.
		_ = bcast.Broadcast(context.Background(), b)
	})
}

// Heads returns every node's head header, indexed like the nodes.
func (c *Cluster) Heads() []chain.Header {
	out := make([]chain.Header, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Head().Header
	}
	return out
}

// Converged reports whether every node shares node 0's head hash.
func (c *Cluster) Converged() bool {
	heads := c.Heads()
	for _, h := range heads[1:] {
		if h.Hash() != heads[0].Hash() {
			return false
		}
	}
	return true
}
