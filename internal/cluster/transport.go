package cluster

import (
	"net/http"
	"time"
)

// LatencyTransport injects a fixed round-trip delay before every
// request, modeling the wire between a follower and a peer one network
// hop away. The delay is pure sleep, so it overlaps with server-side
// compute exactly as real network latency would — benchmarks use it to
// restore the per-request cost a loopback listener hides, and replica
// read sweeps use it to model client-observed read latency.
type LatencyTransport struct {
	// RTT is the simulated round-trip time added to every request
	// (0 = none).
	RTT time.Duration
	// Base performs the actual request (nil = http.DefaultTransport).
	Base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *LatencyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.RTT > 0 {
		timer := time.NewTimer(t.RTT)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
