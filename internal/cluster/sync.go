package cluster

import (
	"context"
	"errors"
	"fmt"

	"contractstm/internal/chain"
	"contractstm/internal/importer"
	"contractstm/internal/node"
)

// ErrDiverged reports that the local node and the remote peer have
// committed different blocks at the same height: the chains have forked
// and no amount of catch-up fetching can reconcile them.
var ErrDiverged = errors.New("cluster: chains diverged")

// FastSyncResult reports what a FastSync did.
type FastSyncResult struct {
	// Installed reports whether a snapshot was adopted; SnapshotHeight
	// is its height when so.
	Installed      bool
	SnapshotHeight uint64
	// Imported counts blocks imported by the catch-up tail (each through
	// full validation).
	Imported int
}

// FastSync brings n up to date with the peer the fast way: fetch the
// peer's state checkpoint, install it when it is ahead of the local
// head, then catch-up Sync only the blocks after it — a late joiner
// replays the tail instead of the whole chain. Peers that serve no
// snapshot (or a stale one) degrade gracefully to plain Sync.
//
// Trust: the installed state must hash to the checkpoint header's state
// root (node.InstallSnapshot refuses otherwise), and every block after
// the checkpoint goes through full deterministic validation. The
// checkpoint header itself is taken on faith, like a configured genesis
// — that is the fast-sync trade-off, and nodes that must verify the
// whole history should use Sync.
func FastSync(ctx context.Context, n *node.Node, p *Peer) (FastSyncResult, error) {
	var res FastSyncResult
	s, err := p.Snapshot(ctx)
	switch {
	case errors.Is(err, ErrNoSnapshot):
		// Older peer: full catch-up.
	case err != nil:
		return res, err
	case s.Height() > n.Head().Header.Number:
		if err := n.InstallSnapshot(s); err != nil {
			return res, fmt.Errorf("cluster: fast-sync: %w", err)
		}
		res.Installed = true
		res.SnapshotHeight = s.Height()
	}
	res.Imported, err = Sync(ctx, n, p)
	return res, err
}

// Sync brings n up to date with the peer: while the peer's head is ahead,
// fetch each missing height in order and import it through the node's
// validator-gated import path. It returns how many blocks were imported.
//
// The loop re-reads the peer's head after each pass, so blocks mined
// while catching up are picked up too; it terminates when the heads agree
// (same height, same hash), the peer falls behind, the context is
// cancelled (context.Cause is propagated, checked before the first fetch),
// or anything fails.
//
// How the catch-up gap is imported depends on the node's import mode:
// ImportOff walks it one block at a time through the serial AcceptBlock;
// shadow and on run the staged pipeline (internal/importer) — windowed
// range prefetch, parallel stateless validation, strictly sequential
// commit — with default sizing. SyncWith exposes the pipeline knobs.
//
// Divergence — the peer committing a different block at a height n also
// holds — is detected both from head comparison and from import-time fork
// or bad-parent rejections, and reported as ErrDiverged.
func Sync(ctx context.Context, n *node.Node, p *Peer) (imported int, err error) {
	return SyncWith(ctx, n, p, importer.Config{})
}

// SyncWith is Sync with explicit staged-pipeline sizing (worker pool,
// prefetch window, range-fetch batch); icfg is ignored on an ImportOff
// node, which syncs serially.
func SyncWith(ctx context.Context, n *node.Node, p *Peer, icfg importer.Config) (imported int, err error) {
	for {
		if ctx.Err() != nil {
			return imported, context.Cause(ctx)
		}
		remote, err := p.Head(ctx)
		if err != nil {
			return imported, err
		}
		local := n.Head().Header
		switch {
		case remote.Number == local.Number:
			if remote.Hash != local.Hash() {
				return imported, fmt.Errorf("%w: height %d: local %s, peer %s (%s)",
					ErrDiverged, local.Number, local.Hash().Short(), remote.Hash.Short(), p.URL())
			}
			return imported, nil
		case remote.Number < local.Number:
			// We are ahead; the shared prefix must still agree.
			if known, ok := n.BlockAt(remote.Number); ok && known.Header.Hash() != remote.Hash {
				return imported, fmt.Errorf("%w: height %d: local %s, peer %s (%s)",
					ErrDiverged, remote.Number, known.Header.Hash().Short(), remote.Hash.Short(), p.URL())
			}
			return imported, nil
		}
		count, err := syncRange(ctx, n, p, local.Number+1, remote.Number, icfg)
		imported += count
		if err != nil {
			return imported, err
		}
	}
}

// syncRange imports the catch-up gap [from, to], serially on an ImportOff
// node and through the staged pipeline otherwise. Both paths produce
// byte-identical errors for the same bad block — the parity contract the
// importer tests pin down.
func syncRange(ctx context.Context, n *node.Node, p *Peer, from, to uint64, icfg importer.Config) (imported int, err error) {
	if n.ImportMode() == node.ImportOff {
		for h := from; h <= to; h++ {
			if ctx.Err() != nil {
				return imported, context.Cause(ctx)
			}
			blk, err := p.Block(ctx, h)
			if err != nil {
				return imported, err
			}
			if err := n.AcceptBlock(blk); err != nil {
				if werr := wrapImportErr(err, h, p); werr != nil {
					return imported, werr
				}
				continue // already known
			}
			imported++
		}
		return imported, nil
	}
	imported, err = importer.Run(ctx, n, p, from, to, icfg)
	if err != nil {
		var be *importer.BlockError
		if errors.As(err, &be) {
			return imported, wrapImportErr(be.Err, be.Height, p)
		}
		return imported, err
	}
	return imported, nil
}

// wrapImportErr maps one block's import rejection into the cluster error
// vocabulary — shared by the serial and staged paths so their messages
// match byte for byte. Already-known blocks map to nil (idempotent skip).
func wrapImportErr(err error, h uint64, p *Peer) error {
	switch {
	case errors.Is(err, node.ErrAlreadyKnown):
		return nil
	case errors.Is(err, node.ErrFork), errors.Is(err, chain.ErrBadParent):
		return fmt.Errorf("%w: %v", ErrDiverged, err)
	default:
		return fmt.Errorf("cluster: import height %d from %s: %w", h, p.URL(), err)
	}
}
