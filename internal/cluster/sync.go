package cluster

import (
	"context"
	"errors"
	"fmt"

	"contractstm/internal/chain"
	"contractstm/internal/node"
)

// ErrDiverged reports that the local node and the remote peer have
// committed different blocks at the same height: the chains have forked
// and no amount of catch-up fetching can reconcile them.
var ErrDiverged = errors.New("cluster: chains diverged")

// Sync brings n up to date with the peer: while the peer's head is ahead,
// fetch each missing height in order and import it through the node's
// validator-gated AcceptBlock. It returns how many blocks were imported.
//
// The loop re-reads the peer's head after each pass, so blocks mined
// while catching up are picked up too; it terminates when the heads agree
// (same height, same hash), the peer falls behind, or anything fails.
//
// Divergence — the peer committing a different block at a height n also
// holds — is detected both from head comparison and from import-time fork
// or bad-parent rejections, and reported as ErrDiverged.
func Sync(ctx context.Context, n *node.Node, p *Peer) (imported int, err error) {
	for {
		remote, err := p.Head(ctx)
		if err != nil {
			return imported, err
		}
		local := n.Head().Header
		switch {
		case remote.Number == local.Number:
			if remote.Hash != local.Hash() {
				return imported, fmt.Errorf("%w: height %d: local %s, peer %s (%s)",
					ErrDiverged, local.Number, local.Hash().Short(), remote.Hash.Short(), p.URL())
			}
			return imported, nil
		case remote.Number < local.Number:
			// We are ahead; the shared prefix must still agree.
			if known, ok := n.BlockAt(remote.Number); ok && known.Header.Hash() != remote.Hash {
				return imported, fmt.Errorf("%w: height %d: local %s, peer %s (%s)",
					ErrDiverged, remote.Number, known.Header.Hash().Short(), remote.Hash.Short(), p.URL())
			}
			return imported, nil
		}
		for h := local.Number + 1; h <= remote.Number; h++ {
			if ctx.Err() != nil {
				return imported, ctx.Err()
			}
			blk, err := p.Block(ctx, h)
			if err != nil {
				return imported, err
			}
			if err := n.AcceptBlock(blk); err != nil {
				switch {
				case errors.Is(err, node.ErrAlreadyKnown):
					continue
				case errors.Is(err, node.ErrFork), errors.Is(err, chain.ErrBadParent):
					return imported, fmt.Errorf("%w: %v", ErrDiverged, err)
				default:
					return imported, fmt.Errorf("cluster: import height %d from %s: %w", h, p.URL(), err)
				}
			}
			imported++
		}
	}
}
