package runtime

import (
	"sync"
	"sync/atomic"
	"testing"

	"contractstm/internal/gas"
)

func TestSimRunnerParallelMakespan(t *testing.T) {
	r := NewSimRunner()
	ms, err := r.Run(3, func(th Thread) {
		th.Work(100)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ms != 100 {
		t.Fatalf("3 workers x 100 gas: makespan = %d, want 100", ms)
	}
}

func TestSimRunnerSerialMakespan(t *testing.T) {
	r := NewSimRunner()
	ms, err := r.Run(1, func(th Thread) {
		for i := 0; i < 5; i++ {
			th.Work(100)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ms != 500 {
		t.Fatalf("makespan = %d, want 500", ms)
	}
}

func TestSimRunnerWorkerIDs(t *testing.T) {
	r := NewSimRunner()
	var mu sync.Mutex
	seen := map[int]bool{}
	_, err := r.Run(4, func(th Thread) {
		mu.Lock()
		seen[th.ID()] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Fatalf("worker %d never ran; saw %v", i, seen)
		}
	}
}

func TestSimRunnerZeroWorkers(t *testing.T) {
	if _, err := NewSimRunner().Run(0, func(Thread) {}); err == nil {
		t.Fatal("Run(0) succeeded, want error")
	}
}

func TestSimParkUnparkAcrossWorkers(t *testing.T) {
	r := NewSimRunner()
	var threads [2]Thread
	var mu sync.Mutex
	var consumerTime uint64
	_, err := r.Run(2, func(th Thread) {
		mu.Lock()
		threads[th.ID()] = th
		mu.Unlock()
		if th.ID() == 0 {
			th.Park()
			consumerTime = th.Now()
			return
		}
		th.Work(77)
		mu.Lock()
		target := threads[0]
		mu.Unlock()
		th.Unpark(target)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if consumerTime != 77 {
		t.Fatalf("consumer woke at %d, want 77", consumerTime)
	}
}

func TestOSRunnerRunsAllWorkers(t *testing.T) {
	var count atomic.Int32
	ms, err := NewOSRunner(nil).Run(4, func(th Thread) {
		count.Add(1)
		th.Work(10) // no-op burn
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count.Load() != 4 {
		t.Fatalf("ran %d workers, want 4", count.Load())
	}
	if ms == 0 {
		t.Fatal("wall-clock makespan should be nonzero")
	}
}

func TestOSParkUnpark(t *testing.T) {
	var threads [2]Thread
	var mu sync.Mutex
	ready := make(chan struct{})
	var order []string
	_, err := NewOSRunner(nil).Run(2, func(th Thread) {
		mu.Lock()
		threads[th.ID()] = th
		mu.Unlock()
		if th.ID() == 0 {
			close(ready)
			th.Park()
			mu.Lock()
			order = append(order, "woke")
			mu.Unlock()
			return
		}
		<-ready
		mu.Lock()
		target := threads[0]
		order = append(order, "unpark")
		mu.Unlock()
		th.Unpark(target)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "unpark" || order[1] != "woke" {
		t.Fatalf("order = %v", order)
	}
}

func TestOSUnparkBeforeParkToken(t *testing.T) {
	// Unpark-then-Park must not block.
	done := make(chan struct{})
	_, err := NewOSRunner(nil).Run(1, func(th Thread) {
		th.Unpark(th) // self-token
		th.Park()     // consumes it
		close(done)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	<-done
}

func TestSpinBurnZeroFactorIsNil(t *testing.T) {
	if SpinBurn(0) != nil {
		t.Fatal("SpinBurn(0) should be nil (disabled)")
	}
	if SpinBurn(-1) != nil {
		t.Fatal("SpinBurn(-1) should be nil (disabled)")
	}
}

func TestSpinBurnRuns(t *testing.T) {
	burn := SpinBurn(3)
	if burn == nil {
		t.Fatal("SpinBurn(3) = nil")
	}
	burn(gas.Gas(100)) // must not panic or hang
}

func TestSimRunnerDeterministicMakespan(t *testing.T) {
	run := func() uint64 {
		ms, err := NewSimRunner().Run(3, func(th Thread) {
			for i := 0; i < 10; i++ {
				th.Work(gas.Gas(1 + (th.ID()+i)%5))
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return ms
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic makespans: %d vs %d", a, b)
	}
}
