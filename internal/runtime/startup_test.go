package runtime

import (
	"sync/atomic"
	"testing"

	"contractstm/internal/gas"
)

func TestWithStartupWorkAddsFixedCost(t *testing.T) {
	base := NewSimRunner()
	wrapped := WithStartupWork(base, 500)
	ms, err := wrapped.Run(3, func(th Thread) {
		th.Work(100)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Startup and body overlap across workers: makespan = 500 + 100.
	if ms != 600 {
		t.Fatalf("makespan = %d, want 600", ms)
	}
}

func TestWithStartupWorkZeroIsIdentity(t *testing.T) {
	base := NewSimRunner()
	if WithStartupWork(base, 0) != Runner(base) {
		t.Fatal("zero-cost wrapper should return the runner unchanged")
	}
}

func TestWithStartupWorkOnOSRunner(t *testing.T) {
	var ran atomic.Int32
	wrapped := WithStartupWork(NewOSRunner(nil), gas.Gas(10))
	_, err := wrapped.Run(2, func(th Thread) {
		// Work is a no-op with a nil burner; the wrapper must still
		// delegate correctly.
		ran.Add(1)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != 2 {
		t.Fatalf("body ran %d times, want 2", ran.Load())
	}
}

func TestSimRunnerInterferenceConfig(t *testing.T) {
	// Two concurrently-active workers at 500 per-mille: each unit costs
	// 1.5x.
	r := NewSimRunnerInterference(500)
	ms, err := r.Run(2, func(th Thread) {
		th.Work(100)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ms != 150 {
		t.Fatalf("makespan = %d, want 150", ms)
	}
}
