// Package runtime abstracts "a pool of P threads" over two back-ends:
//
//   - simulated threads (internal/des) with deterministic virtual time, used
//     by the benchmark harness so that parallel speedups are measurable and
//     bit-reproducible on any host, including single-core machines; and
//   - real OS goroutines, used by tests (including the race detector) and by
//     the optional wall-clock benchmark mode.
//
// The miner, validator, STM and fork-join layers are written once against
// the Thread interface and run unchanged on either back-end.
package runtime

import (
	"fmt"
	"sync"
	"time"

	"contractstm/internal/des"
	"contractstm/internal/gas"
)

// Thread is one executor in a pool. Exactly one unit of contract execution
// runs on a thread at a time; the STM layer uses Park/Unpark to implement
// blocking abstract-lock acquisition on both back-ends.
type Thread interface {
	// ID returns the worker index within its pool (0-based).
	ID() int
	// Work consumes g units of computational cost: virtual time on the
	// simulated back-end, an optional calibrated spin on the real back-end.
	Work(g gas.Gas)
	// Now returns the thread's notion of elapsed time: virtual clock units
	// (== gas) for simulated threads, nanoseconds since pool start for real
	// threads.
	Now() uint64
	// Park blocks the calling thread until Unpark is called on it. A single
	// pending wake token is retained if Unpark arrives first.
	Park()
	// Unpark wakes target (or leaves it a wake token). The caller must be a
	// thread of the same runner.
	Unpark(target Thread)
}

// Runner executes P worker bodies to completion and reports the makespan.
type Runner interface {
	// Run invokes body once per worker, concurrently, and returns the
	// makespan: the maximum per-thread completion time in the runner's time
	// unit (virtual gas units or nanoseconds).
	Run(workers int, body func(Thread)) (uint64, error)
}

// --- Simulated back-end -----------------------------------------------

// SimThread adapts a des.Thread to the Thread interface.
type SimThread struct {
	inner *des.Thread
}

var _ Thread = (*SimThread)(nil)

// ID implements Thread.
func (t *SimThread) ID() int { return t.inner.ID() }

// Work implements Thread: one gas unit is one unit of virtual time,
// scaled by the simulator's interference model when configured.
func (t *SimThread) Work(g gas.Gas) { t.inner.Work(uint64(g)) }

// Now implements Thread.
func (t *SimThread) Now() uint64 { return t.inner.Now() }

// Park implements Thread.
func (t *SimThread) Park() { t.inner.Park() }

// Unpark implements Thread.
func (t *SimThread) Unpark(target Thread) {
	st, ok := target.(*SimThread)
	if !ok {
		panic(fmt.Sprintf("runtime: SimThread.Unpark on foreign thread %T", target))
	}
	t.inner.Unpark(st.inner)
}

// SimRunner runs workers on a fresh discrete-event simulation per Run call.
type SimRunner struct {
	interferencePerMille int
}

var _ Runner = (*SimRunner)(nil)

// NewSimRunner returns a simulated-time runner with ideal (zero
// interference) cores.
func NewSimRunner() *SimRunner { return &SimRunner{} }

// NewSimRunnerInterference returns a simulated-time runner whose cores
// contend for shared resources: each unit of work costs an extra
// perMille/1000 per additional concurrently active thread (see
// des.Simulator.SetInterference). The benchmark harness uses this to model
// the sub-ideal parallel efficiency of the paper's 4-core JVM testbed.
func NewSimRunnerInterference(perMille int) *SimRunner {
	return &SimRunner{interferencePerMille: perMille}
}

// Run implements Runner. The returned makespan is in virtual time units
// (gas). The error surfaces simulated deadlocks, which indicate a bug in a
// coordination layer above.
func (r *SimRunner) Run(workers int, body func(Thread)) (uint64, error) {
	if workers <= 0 {
		return 0, fmt.Errorf("runtime: Run with %d workers", workers)
	}
	sim := des.New()
	sim.SetInterference(r.interferencePerMille)
	for i := 0; i < workers; i++ {
		sim.Spawn(fmt.Sprintf("worker-%d", i), func(dt *des.Thread) {
			body(&SimThread{inner: dt})
		})
	}
	return sim.Run()
}

// WithStartupWork decorates a runner so every worker performs a fixed
// amount of work before its body runs. The miner and validator use it to
// model thread-pool dispatch latency, which is what makes tiny blocks not
// worth parallelizing (the paper's Figure 1 shows no speedup — even
// slowdown — below roughly 50 transactions). Serial baselines do not pay
// it.
func WithStartupWork(r Runner, cost gas.Gas) Runner {
	if cost == 0 {
		return r
	}
	return &startupRunner{inner: r, cost: cost}
}

type startupRunner struct {
	inner Runner
	cost  gas.Gas
}

var _ Runner = (*startupRunner)(nil)

// Run implements Runner.
func (r *startupRunner) Run(workers int, body func(Thread)) (uint64, error) {
	return r.inner.Run(workers, func(th Thread) {
		th.Work(r.cost)
		body(th)
	})
}

// --- Real OS back-end ---------------------------------------------------

// OSThread is a Thread backed by a plain goroutine.
type OSThread struct {
	id    int
	start time.Time
	park  chan struct{} // buffered(1): carries at most one wake token
	burn  func(gas.Gas)
}

var _ Thread = (*OSThread)(nil)

// ID implements Thread.
func (t *OSThread) ID() int { return t.id }

// Work implements Thread. With a nil burn function it is a no-op, which is
// what correctness tests want (fast, race-detector friendly).
func (t *OSThread) Work(g gas.Gas) {
	if t.burn != nil {
		t.burn(g)
	}
}

// Now implements Thread: nanoseconds since the pool started.
func (t *OSThread) Now() uint64 { return uint64(time.Since(t.start)) }

// Park implements Thread.
func (t *OSThread) Park() { <-t.park }

// Unpark implements Thread. The buffered channel retains one wake token if
// the target has not parked yet; further tokens are dropped, matching
// Park/Unpark (LockSupport) semantics.
func (t *OSThread) Unpark(target Thread) {
	ot, ok := target.(*OSThread)
	if !ok {
		panic(fmt.Sprintf("runtime: OSThread.Unpark on foreign thread %T", target))
	}
	select {
	case ot.park <- struct{}{}:
	default:
	}
}

// SpinBurn returns a Work implementation that spends roughly cost-
// proportional CPU time by hashing. factor scales iterations per gas unit;
// 0 disables burning.
func SpinBurn(factor int) func(gas.Gas) {
	if factor <= 0 {
		return nil
	}
	return func(g gas.Gas) {
		// A small integer mix loop; sink prevents dead-code elimination.
		n := int(g) * factor
		var sink uint64 = 0x9e3779b97f4a7c15
		for i := 0; i < n; i++ {
			sink ^= sink << 13
			sink ^= sink >> 7
			sink ^= sink << 17
		}
		spinSink = sink
	}
}

// spinSink defeats dead-code elimination of SpinBurn loops.
var spinSink uint64 //nolint:unused // written to keep the optimizer honest

// OSRunner runs workers on real goroutines.
type OSRunner struct {
	burn func(gas.Gas)
}

var _ Runner = (*OSRunner)(nil)

// NewOSRunner returns a real-thread runner. burn may be nil (no CPU burning)
// or SpinBurn(k) for wall-clock benchmarking.
func NewOSRunner(burn func(gas.Gas)) *OSRunner { return &OSRunner{burn: burn} }

// Run implements Runner. The makespan is wall-clock nanoseconds from start
// to the last worker's completion.
func (r *OSRunner) Run(workers int, body func(Thread)) (uint64, error) {
	if workers <= 0 {
		return 0, fmt.Errorf("runtime: Run with %d workers", workers)
	}
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		t := &OSThread{id: i, start: start, park: make(chan struct{}, 1), burn: r.burn}
		go func() {
			defer wg.Done()
			body(t)
		}()
	}
	wg.Wait()
	return uint64(time.Since(start)), nil
}
