// Package crypto provides the hashing substrate for the blockchain layer:
// domain-separated digests and a binary Merkle tree used to commit to
// transaction lists and contract state.
//
// The paper's validator rejects a block when "the schedule produces a final
// state different from the one recorded in the block"; state commitments are
// what make that check O(1) to express and tamper-evident.
package crypto

import (
	"crypto/sha256"

	"contractstm/internal/types"
)

// Domain-separation tags. Hashing a leaf and an interior node with different
// prefixes defeats second-preimage attacks that graft subtrees as leaves.
const (
	tagLeaf  byte = 0x00
	tagNode  byte = 0x01
	tagEmpty byte = 0x02
)

// emptyRoot is the Merkle root of an empty leaf list, computed lazily.
func emptyRoot() types.Hash {
	return sha256.Sum256([]byte{tagEmpty})
}

// MerkleRoot computes the root of a binary Merkle tree over the given leaves.
// Odd nodes at each level are promoted unpaired (Bitcoin-style duplication is
// deliberately avoided: duplication admits known malleability).
func MerkleRoot(leaves []types.Hash) types.Hash {
	if len(leaves) == 0 {
		return emptyRoot()
	}
	level := make([]types.Hash, len(leaves))
	for i, leaf := range leaves {
		level[i] = hashLeaf(leaf)
	}
	for len(level) > 1 {
		next := make([]types.Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

func hashLeaf(h types.Hash) types.Hash {
	buf := make([]byte, 1+types.HashLen)
	buf[0] = tagLeaf
	copy(buf[1:], h[:])
	return sha256.Sum256(buf)
}

func hashNode(l, r types.Hash) types.Hash {
	buf := make([]byte, 1+2*types.HashLen)
	buf[0] = tagNode
	copy(buf[1:], l[:])
	copy(buf[1+types.HashLen:], r[:])
	return sha256.Sum256(buf)
}

// Proof is a Merkle inclusion proof for a single leaf.
type Proof struct {
	// Index is the 0-based position of the proven leaf.
	Index int
	// Path lists sibling hashes from the leaf level up to the root.
	Path []types.Hash
	// Right[i] reports whether Path[i] is the right sibling at level i.
	Right []bool
}

// MerkleProve builds an inclusion proof for leaves[index].
// It returns false when index is out of range.
func MerkleProve(leaves []types.Hash, index int) (Proof, bool) {
	if index < 0 || index >= len(leaves) {
		return Proof{}, false
	}
	proof := Proof{Index: index}
	level := make([]types.Hash, len(leaves))
	for i, leaf := range leaves {
		level[i] = hashLeaf(leaf)
	}
	pos := index
	for len(level) > 1 {
		sib := pos ^ 1
		if sib < len(level) {
			proof.Path = append(proof.Path, level[sib])
			proof.Right = append(proof.Right, sib > pos)
		}
		next := make([]types.Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
		pos /= 2
	}
	return proof, true
}

// MerkleVerify checks that leaf is included under root according to proof.
func MerkleVerify(root types.Hash, leaf types.Hash, proof Proof) bool {
	cur := hashLeaf(leaf)
	for i, sib := range proof.Path {
		if proof.Right[i] {
			cur = hashNode(cur, sib)
		} else {
			cur = hashNode(sib, cur)
		}
	}
	return cur == root
}

// StateRoot commits to a set of key/value pairs. Callers pass pre-sorted,
// canonical entries; each entry is hashed as a leaf of H(key)||H(value).
type StateEntry struct {
	Key   []byte
	Value []byte
}

// StateRootOf computes a deterministic commitment over canonical entries.
// Entries MUST already be sorted by key; this package does not sort so that
// the storage layer controls canonical ordering (and its cost) itself.
func StateRootOf(entries []StateEntry) types.Hash {
	leaves := make([]types.Hash, len(entries))
	for i, e := range entries {
		leaves[i] = types.HashConcat([]byte{tagLeaf}, e.Key, []byte{tagNode}, e.Value)
	}
	return MerkleRoot(leaves)
}
