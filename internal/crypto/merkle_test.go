package crypto

import (
	"math/rand"
	"testing"
	"testing/quick"

	"contractstm/internal/types"
)

func leaves(n int) []types.Hash {
	out := make([]types.Hash, n)
	for i := range out {
		out[i] = types.HashBytes([]byte{byte(i), byte(i >> 8)})
	}
	return out
}

func TestMerkleRootEmpty(t *testing.T) {
	r1 := MerkleRoot(nil)
	r2 := MerkleRoot([]types.Hash{})
	if r1 != r2 {
		t.Fatal("empty roots differ for nil vs empty slice")
	}
	if r1.IsZero() {
		t.Fatal("empty root should not be the zero hash")
	}
}

func TestMerkleRootSingleLeafIsNotRawLeaf(t *testing.T) {
	leaf := types.HashString("only")
	root := MerkleRoot([]types.Hash{leaf})
	if root == leaf {
		t.Fatal("single-leaf root equals the raw leaf; leaf hashing must be domain-separated")
	}
}

func TestMerkleRootDeterministic(t *testing.T) {
	ls := leaves(17)
	if MerkleRoot(ls) != MerkleRoot(ls) {
		t.Fatal("MerkleRoot is not deterministic")
	}
}

func TestMerkleRootSensitiveToEveryLeaf(t *testing.T) {
	for n := 1; n <= 9; n++ {
		base := MerkleRoot(leaves(n))
		for i := 0; i < n; i++ {
			mut := leaves(n)
			mut[i] = types.HashString("tampered")
			if MerkleRoot(mut) == base {
				t.Fatalf("n=%d: tampering leaf %d did not change the root", n, i)
			}
		}
	}
}

func TestMerkleRootSensitiveToOrder(t *testing.T) {
	ls := leaves(4)
	swapped := leaves(4)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if MerkleRoot(ls) == MerkleRoot(swapped) {
		t.Fatal("swapping leaves did not change the root")
	}
}

func TestMerkleRootSensitiveToLength(t *testing.T) {
	if MerkleRoot(leaves(3)) == MerkleRoot(leaves(4)[:3:3]) {
		// identical prefix, same content: roots equal is fine; this guards the
		// comparison below from a silly fixture bug.
		t.Log("prefix roots equal as expected")
	}
	if MerkleRoot(leaves(3)) == MerkleRoot(leaves(4)) {
		t.Fatal("adding a leaf did not change the root")
	}
}

func TestMerkleProveVerifyAllIndices(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 64, 100} {
		ls := leaves(n)
		root := MerkleRoot(ls)
		for i := 0; i < n; i++ {
			proof, ok := MerkleProve(ls, i)
			if !ok {
				t.Fatalf("n=%d: MerkleProve(%d) failed", n, i)
			}
			if !MerkleVerify(root, ls[i], proof) {
				t.Fatalf("n=%d: proof for leaf %d did not verify", n, i)
			}
		}
	}
}

func TestMerkleVerifyRejectsWrongLeaf(t *testing.T) {
	ls := leaves(8)
	root := MerkleRoot(ls)
	proof, _ := MerkleProve(ls, 3)
	if MerkleVerify(root, types.HashString("imposter"), proof) {
		t.Fatal("proof verified a leaf that is not in the tree")
	}
}

func TestMerkleVerifyRejectsWrongRoot(t *testing.T) {
	ls := leaves(8)
	proof, _ := MerkleProve(ls, 3)
	if MerkleVerify(types.HashString("bogus root"), ls[3], proof) {
		t.Fatal("proof verified against a bogus root")
	}
}

func TestMerkleProveOutOfRange(t *testing.T) {
	ls := leaves(4)
	if _, ok := MerkleProve(ls, -1); ok {
		t.Fatal("MerkleProve(-1) succeeded")
	}
	if _, ok := MerkleProve(ls, 4); ok {
		t.Fatal("MerkleProve(len) succeeded")
	}
}

// Property: every leaf of a random-size tree proves and verifies; a mutated
// leaf never verifies with the original proof.
func TestMerkleProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		ls := make([]types.Hash, n)
		for i := range ls {
			var b [16]byte
			rng.Read(b[:])
			ls[i] = types.HashBytes(b[:])
		}
		root := MerkleRoot(ls)
		i := rng.Intn(n)
		proof, ok := MerkleProve(ls, i)
		if !ok || !MerkleVerify(root, ls[i], proof) {
			return false
		}
		bad := ls[i]
		bad[0] ^= 1
		return !MerkleVerify(root, bad, proof)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStateRootOfDistinguishesKeyAndValue(t *testing.T) {
	a := []StateEntry{{Key: []byte("k1"), Value: []byte("v1")}}
	b := []StateEntry{{Key: []byte("k1v"), Value: []byte("1")}}
	if StateRootOf(a) == StateRootOf(b) {
		t.Fatal("state root does not separate key and value boundaries")
	}
}

func TestStateRootOfEmpty(t *testing.T) {
	if StateRootOf(nil) != MerkleRoot(nil) {
		t.Fatal("empty state root should equal empty merkle root")
	}
}

func TestStateRootOfValueSensitivity(t *testing.T) {
	a := []StateEntry{{Key: []byte("k"), Value: []byte("1")}}
	b := []StateEntry{{Key: []byte("k"), Value: []byte("2")}}
	if StateRootOf(a) == StateRootOf(b) {
		t.Fatal("changing a value did not change the state root")
	}
}

func BenchmarkMerkleRoot1000(b *testing.B) {
	ls := leaves(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MerkleRoot(ls)
	}
}
