package stm

import (
	"testing"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
)

func TestNestedCommitMergesUndoIntoParent(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	value := 0
	singleThread(t, func(th runtime.Thread) {
		parent := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		parent.LogUndo(func() { value -= 1 })
		value += 1

		child, err := parent.BeginNested()
		if err != nil {
			t.Fatalf("BeginNested: %v", err)
		}
		child.LogUndo(func() { value -= 10 })
		value += 10
		if err := child.Commit(); err != nil {
			t.Fatalf("child commit: %v", err)
		}

		// Parent abort must now undo the child's committed effects too:
		// "a child action's effects become permanent only when the parent
		// commits" (§3).
		if err := parent.Abort(); err != nil {
			t.Fatalf("parent abort: %v", err)
		}
	})
	if value != 0 {
		t.Fatalf("value = %d, want 0 after parent abort", value)
	}
}

func TestNestedAbortDoesNotAbortParent(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	value := 0
	singleThread(t, func(th runtime.Thread) {
		parent := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		parent.LogUndo(func() { value -= 1 })
		value += 1

		child, err := parent.BeginNested()
		if err != nil {
			t.Fatalf("BeginNested: %v", err)
		}
		child.LogUndo(func() { value -= 10 })
		value += 10
		if err := child.Abort(); err != nil {
			t.Fatalf("child abort: %v", err)
		}
		if value != 1 {
			t.Errorf("after child abort value = %d, want 1 (parent effect intact)", value)
		}
		if parent.Status() != StatusActive {
			t.Errorf("parent status = %v, want active", parent.Status())
		}
		if err := parent.Commit(); err != nil {
			t.Fatalf("parent commit: %v", err)
		}
	})
	if value != 1 {
		t.Fatalf("value = %d, want 1", value)
	}
}

func TestNestedLocksKeptByRootOnChildAbort(t *testing.T) {
	// Documented deviation: a child's locks stay with the root after the
	// child aborts, so the root's profile includes them.
	mgr := NewManager(gas.DefaultSchedule())
	childLock := LockID{Scope: "m", Key: "child"}
	singleThread(t, func(th runtime.Thread) {
		parent := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		child, err := parent.BeginNested()
		if err != nil {
			t.Fatalf("BeginNested: %v", err)
		}
		if err := child.Access(childLock, ModeExclusive, 5); err != nil {
			t.Fatalf("child access: %v", err)
		}
		if err := child.Abort(); err != nil {
			t.Fatalf("child abort: %v", err)
		}
		if err := parent.Commit(); err != nil {
			t.Fatalf("parent commit: %v", err)
		}
		p := parent.Profile()
		if len(p.Entries) != 1 || p.Entries[0].Lock != childLock {
			t.Fatalf("profile = %+v, want aborted child's lock retained", p)
		}
	})
}

func TestNestedChildInheritsParentLocks(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "m", Key: "k"}
	singleThread(t, func(th runtime.Thread) {
		parent := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		if err := parent.Access(lock, ModeExclusive, 5); err != nil {
			t.Fatalf("parent access: %v", err)
		}
		child, err := parent.BeginNested()
		if err != nil {
			t.Fatalf("BeginNested: %v", err)
		}
		// The child re-accessing the parent's lock must take the fast path
		// (no new acquisition).
		before := mgr.Stats().Acquisitions
		if err := child.Access(lock, ModeShared, 5); err != nil {
			t.Fatalf("child access: %v", err)
		}
		if after := mgr.Stats().Acquisitions; after != before {
			t.Fatalf("child re-acquired an inherited lock (%d -> %d)", before, after)
		}
		if err := child.Commit(); err != nil {
			t.Fatalf("child commit: %v", err)
		}
		if err := parent.Commit(); err != nil {
			t.Fatalf("parent commit: %v", err)
		}
	})
}

func TestDeepNesting(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	value := 0
	singleThread(t, func(th runtime.Thread) {
		root := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		cur := root
		for depth := 0; depth < 5; depth++ {
			child, err := cur.BeginNested()
			if err != nil {
				t.Fatalf("nest depth %d: %v", depth, err)
			}
			d := depth
			child.LogUndo(func() { value -= 1 << d })
			value += 1 << d
			cur = child
		}
		// Chain is root -> c1(+1) -> c2(+2) -> c3(+4) -> c4(+8) -> c5(+16).
		// Commit the innermost three (c5, c4, c3): their undo logs merge
		// into c2. Abort c2: undoes 16, 8, 4 and its own 2. Commit c1 and
		// the root: only c1's +1 survives.
		for i := 0; i < 3; i++ {
			if err := cur.Commit(); err != nil {
				t.Errorf("commit: %v", err)
			}
			cur = cur.parent
		}
		if err := cur.Abort(); err != nil {
			t.Errorf("abort c2: %v", err)
		}
		cur = cur.parent
		if err := cur.Commit(); err != nil {
			t.Errorf("commit c1: %v", err)
		}
		if cur.parent != root {
			t.Error("nesting bookkeeping broken")
		}
		if err := root.Commit(); err != nil {
			t.Errorf("root commit: %v", err)
		}
	})
	if value != 1 {
		t.Fatalf("value = %d, want 1", value)
	}
}

func TestOverlayBasics(t *testing.T) {
	o := NewOverlay()
	applied := map[string]any{}
	apply := func(k string) func(any, bool) {
		return func(v any, del bool) {
			if del {
				delete(applied, k)
				return
			}
			applied[k] = v
		}
	}
	key1 := OverlayKey{Obj: 1, Key: "a"}
	o.Put(key1, 10, false, apply("a"))
	if v, del, ok := o.Get(key1); !ok || del || v != 10 {
		t.Fatalf("Get = (%v, %v, %v)", v, del, ok)
	}
	o.Put(key1, 20, false, apply("a")) // overwrite
	if o.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after overwrite", o.Len())
	}
	o.Put(OverlayKey{Obj: 1, Key: "b"}, 5, false, apply("b"))
	o.Apply()
	if applied["a"] != 20 || applied["b"] != 5 {
		t.Fatalf("applied = %v", applied)
	}
	if o.Len() != 0 {
		t.Fatal("Apply must clear the overlay")
	}
}

func TestOverlayDelete(t *testing.T) {
	o := NewOverlay()
	applied := map[string]any{"a": 1}
	key := OverlayKey{Obj: 1, Key: "a"}
	o.Put(key, nil, true, func(v any, del bool) {
		if del {
			delete(applied, "a")
		}
	})
	if _, del, ok := o.Get(key); !ok || !del {
		t.Fatal("buffered delete not visible")
	}
	o.Apply()
	if _, exists := applied["a"]; exists {
		t.Fatal("delete not applied")
	}
}

func TestOverlayMergeChildWins(t *testing.T) {
	parent := NewOverlay()
	child := NewOverlay()
	key := OverlayKey{Obj: 1, Key: "a"}
	var got any
	parent.Put(key, "parent", false, func(v any, del bool) { got = v })
	child.Put(key, "child", false, func(v any, del bool) { got = v })
	parent.Merge(child)
	parent.Apply()
	if got != "child" {
		t.Fatalf("got %v, want child value to win", got)
	}
}

func TestLazyPolicyAbortDropsOverlay(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	value := 0
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyLazy)
		ov := tx.Overlay()
		if ov == nil {
			t.Fatal("lazy tx must expose an overlay")
		}
		ov.Put(OverlayKey{Obj: 1, Key: "x"}, 42, false, func(v any, del bool) { value = v.(int) })
		if err := tx.Abort(); err != nil {
			t.Fatalf("abort: %v", err)
		}
	})
	if value != 0 {
		t.Fatalf("aborted lazy tx applied its overlay: value = %d", value)
	}
}

func TestLazyPolicyCommitAppliesOverlay(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	value := 0
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyLazy)
		tx.Overlay().Put(OverlayKey{Obj: 1, Key: "x"}, 42, false, func(v any, del bool) { value = v.(int) })
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	})
	if value != 42 {
		t.Fatalf("value = %d, want 42", value)
	}
}

func TestLazyNestedCommitMergesOverlay(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	value := 0
	singleThread(t, func(th runtime.Thread) {
		parent := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyLazy)
		child, err := parent.BeginNested()
		if err != nil {
			t.Fatalf("BeginNested: %v", err)
		}
		child.Overlay().Put(OverlayKey{Obj: 1, Key: "x"}, 7, false, func(v any, del bool) { value = v.(int) })
		if err := child.Commit(); err != nil {
			t.Fatalf("child commit: %v", err)
		}
		if value != 0 {
			t.Error("child commit must not reach storage before parent commit")
		}
		if err := parent.Commit(); err != nil {
			t.Fatalf("parent commit: %v", err)
		}
	})
	if value != 7 {
		t.Fatalf("value = %d, want 7", value)
	}
}

func TestLazyNestedAbortDiscardsChildOverlay(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	value := 0
	singleThread(t, func(th runtime.Thread) {
		parent := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyLazy)
		parent.Overlay().Put(OverlayKey{Obj: 1, Key: "keep"}, 1, false, func(v any, del bool) { value += v.(int) })
		child, err := parent.BeginNested()
		if err != nil {
			t.Fatalf("BeginNested: %v", err)
		}
		child.Overlay().Put(OverlayKey{Obj: 1, Key: "drop"}, 100, false, func(v any, del bool) { value += v.(int) })
		if err := child.Abort(); err != nil {
			t.Fatalf("child abort: %v", err)
		}
		if err := parent.Commit(); err != nil {
			t.Fatalf("parent commit: %v", err)
		}
	})
	if value != 1 {
		t.Fatalf("value = %d, want 1 (child overlay discarded)", value)
	}
}

func TestNonLazyTxHasNilOverlay(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	singleThread(t, func(th runtime.Thread) {
		if tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(1000), PolicyEager); tx.Overlay() != nil {
			t.Error("eager tx exposes an overlay")
		}
		if tx := BeginSerial(0, th, gas.NewMeter(1000), gas.DefaultSchedule()); tx.Overlay() != nil {
			t.Error("serial tx exposes an overlay")
		}
		if tx := BeginReplay(0, th, gas.NewMeter(1000), gas.DefaultSchedule()); tx.Overlay() != nil {
			t.Error("replay tx exposes an overlay")
		}
	})
}

func TestChargeStep(t *testing.T) {
	singleThread(t, func(th runtime.Thread) {
		meter := gas.NewMeter(100)
		tx := BeginSerial(0, th, meter, gas.DefaultSchedule())
		if err := tx.ChargeStep(40); err != nil {
			t.Fatalf("ChargeStep: %v", err)
		}
		if meter.Used() != 40 {
			t.Fatalf("used = %d, want 40", meter.Used())
		}
		if err := tx.ChargeStep(100); err == nil {
			t.Fatal("over-limit ChargeStep succeeded")
		}
	})
}
