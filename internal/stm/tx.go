package stm

import (
	"fmt"
	"sort"
	"sync"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
)

// traceSeenPool recycles the per-root read/write-set maps of replay and
// OCC transactions. An OCC block execution begins one root per transaction
// per round; reusing the maps (cleared, buckets kept) removes that
// allocation from the hot path. Maps re-enter the pool via Tx.Recycle.
var traceSeenPool = sync.Pool{
	New: func() any { return make(map[LockID]Mode) },
}

// Executor is the interface through which boosted storage objects perform
// operations. A *Tx implements it in all three kinds (speculative, serial,
// replay), so storage and contract code is written exactly once.
type Executor interface {
	// Access charges cost to the gas meter, advances the executing thread's
	// clock, and — depending on kind — acquires the abstract lock
	// (speculative) or records it in the trace (replay). It returns
	// ErrDeadlock if blocking would deadlock, or a gas.ErrOutOfGas-wrapping
	// error if the meter is exhausted.
	Access(l LockID, mode Mode, cost gas.Gas) error
	// LogUndo registers an inverse operation; aborting or reverting the
	// transaction replays inverses most-recent-first.
	LogUndo(inverse func())
	// Overlay returns the transaction-local write buffer when running
	// speculatively under PolicyLazy, or nil when operations should be
	// applied in place.
	Overlay() *Overlay
	// ChargeStep charges n units of pure computation (no lock).
	ChargeStep(n uint64) error
	// Thread returns the executing thread.
	Thread() runtime.Thread
	// Schedule returns the cost schedule in force.
	Schedule() gas.Schedule
}

// Tx is a (possibly nested) transaction. Roots are created by Begin*;
// children by BeginNested. A Tx must only be used from its own thread.
type Tx struct {
	id     types.TxID
	kind   Kind
	policy Policy
	mgr    *Manager // non-nil only for KindSpeculative
	thread runtime.Thread
	meter  *gas.Meter
	sched  gas.Schedule
	status Status

	parent *Tx
	root   *Tx

	// held is root-only: every abstract lock the transaction family holds,
	// with combined modes. Owner-thread-local (the manager's lock table is
	// the cross-thread view).
	held map[LockID]Mode
	// undo is this frame's inverse log.
	undo []func()
	// overlay is this frame's lazy write buffer (PolicyLazy only).
	overlay *Overlay
	// traceSeen is root-only (KindReplay): combined modes per lock.
	traceSeen map[LockID]Mode
	// profile is root-only: set at commit/revert of a speculative root.
	profile Profile
	// retries counts speculative abort-and-retry cycles (set by the miner).
	retries int
}

var _ Executor = (*Tx)(nil)

// BeginSpeculative starts a root speculative transaction against the given
// lock manager (one manager per block).
func BeginSpeculative(mgr *Manager, id types.TxID, th runtime.Thread, meter *gas.Meter, policy Policy) *Tx {
	t := newRoot(KindSpeculative, id, th, meter, mgr.sched)
	t.mgr = mgr
	t.policy = policy
	// Only the speculative regime takes abstract locks, so only its roots
	// carry a held map (the other kinds read it never and write it never).
	t.held = make(map[LockID]Mode)
	if policy == PolicyLazy {
		t.overlay = NewOverlay()
	}
	th.Work(mgr.sched.SpecTxSetup)
	return t
}

// BeginSerial starts a root transaction for the serial baseline: no locks,
// no trace, but inverse logging so a throw can revert.
func BeginSerial(id types.TxID, th runtime.Thread, meter *gas.Meter, sched gas.Schedule) *Tx {
	return newRoot(KindSerial, id, th, meter, sched)
}

// BeginReplay starts a root transaction for the validator's deterministic
// replay: no locks; every access is recorded in a thread-local trace.
func BeginReplay(id types.TxID, th runtime.Thread, meter *gas.Meter, sched gas.Schedule) *Tx {
	t := newRoot(KindReplay, id, th, meter, sched)
	t.traceSeen = traceSeenPool.Get().(map[LockID]Mode)
	return t
}

// BeginOCC starts a root transaction for the optimistic batch regime: no
// locks, writes buffered in an isolated overlay, accesses recorded in a
// thread-local read/write set. Commit does NOT apply the overlay — the OCC
// engine validates the attempt against concurrently committed transactions
// first and then applies PendingWrites itself (or discards the attempt).
func BeginOCC(id types.TxID, th runtime.Thread, meter *gas.Meter, sched gas.Schedule) *Tx {
	t := newRoot(KindOCC, id, th, meter, sched)
	t.traceSeen = traceSeenPool.Get().(map[LockID]Mode)
	t.overlay = acquireIsolatedOverlay()
	th.Work(sched.SpecTxSetup)
	return t
}

func newRoot(kind Kind, id types.TxID, th runtime.Thread, meter *gas.Meter, sched gas.Schedule) *Tx {
	t := &Tx{
		id:     id,
		kind:   kind,
		policy: PolicyEager,
		thread: th,
		meter:  meter,
		sched:  sched,
		status: StatusActive,
	}
	t.root = t
	return t
}

// ID returns the transaction id.
func (t *Tx) ID() types.TxID { return t.id }

// Kind returns the execution regime.
func (t *Tx) Kind() Kind { return t.kind }

// Status returns the lifecycle state.
func (t *Tx) Status() Status { return t.status }

// Thread implements Executor.
func (t *Tx) Thread() runtime.Thread { return t.thread }

// Schedule implements Executor.
func (t *Tx) Schedule() gas.Schedule { return t.sched }

// Meter returns the transaction's gas meter.
func (t *Tx) Meter() *gas.Meter { return t.meter }

// Retries reports how many speculative attempts were aborted before this
// one; the miner maintains it across retry loops.
func (t *Tx) Retries() int { return t.retries }

// SetRetries records the retry count (miner bookkeeping).
func (t *Tx) SetRetries(n int) { t.retries = n }

// BeginNested starts a child speculative action for a nested contract call.
// The child inherits the family's locks (they are keyed by root), keeps its
// own inverse log and overlay, and can commit or abort independently of its
// parent (§3).
func (t *Tx) BeginNested() (*Tx, error) {
	if t.status != StatusActive {
		return nil, fmt.Errorf("begin nested under %s transaction: %w", t.status, ErrTxDone)
	}
	child := &Tx{
		id:     t.id,
		kind:   t.kind,
		policy: t.policy,
		mgr:    t.mgr,
		thread: t.thread,
		meter:  t.meter,
		sched:  t.sched,
		status: StatusActive,
		parent: t,
		root:   t.root,
	}
	if (t.policy == PolicyLazy && t.kind == KindSpeculative) || t.kind == KindOCC {
		// The child frame chains to the parent's overlay so nested reads
		// see the ancestors' buffered writes; child writes stay local
		// until commit-time Merge.
		child.overlay = NewChildOverlay(t.overlay)
	}
	return child, nil
}

// Access implements Executor. See the interface documentation.
func (t *Tx) Access(l LockID, mode Mode, cost gas.Gas) error {
	if t.status != StatusActive {
		return fmt.Errorf("access %s on %s transaction: %w", l, t.status, ErrTxDone)
	}
	if err := t.meter.Charge(cost); err != nil {
		return err
	}
	t.thread.Work(cost)
	switch t.kind {
	case KindSpeculative:
		t.thread.Work(t.sched.LockOverhead)
		root := t.root
		if cur, held := root.held[l]; held && Combine(cur, mode) == cur {
			return nil // fast path: already held strongly enough
		}
		return t.mgr.acquire(root, t.thread, l, mode)
	case KindReplay, KindOCC:
		if t.kind == KindOCC {
			// Read/write-set bookkeeping plus overlay buffering: pricier
			// than the validator's bare trace, far cheaper than a lock.
			t.thread.Work(t.sched.OCCOverhead)
		} else {
			t.thread.Work(t.sched.TraceOverhead)
		}
		root := t.root
		if cur, seen := root.traceSeen[l]; seen {
			root.traceSeen[l] = Combine(cur, mode)
		} else {
			root.traceSeen[l] = mode
		}
		return nil
	case KindSerial:
		return nil
	default:
		return fmt.Errorf("stm: unknown transaction kind %v", t.kind)
	}
}

// LogUndo implements Executor.
func (t *Tx) LogUndo(inverse func()) {
	t.undo = append(t.undo, inverse)
}

// Overlay implements Executor.
func (t *Tx) Overlay() *Overlay {
	if t.kind == KindOCC {
		return t.overlay
	}
	if t.kind == KindSpeculative && t.policy == PolicyLazy {
		return t.overlay
	}
	return nil
}

// ChargeStep implements Executor: n units of pure computation.
func (t *Tx) ChargeStep(n uint64) error {
	if err := t.meter.Charge(gas.Gas(n) * t.sched.Step); err != nil {
		return err
	}
	t.thread.Work(gas.Gas(n) * t.sched.Step)
	return nil
}

// rollback replays this frame's inverse log most-recent-first, charging
// undo work, and drops the frame's overlay.
func (t *Tx) rollback() {
	if n := len(t.undo); n > 0 {
		t.thread.Work(t.sched.UndoPerOp * gas.Gas(n))
		for i := n - 1; i >= 0; i-- {
			t.undo[i]()
		}
	}
	t.undo = nil
	if t.overlay != nil {
		t.overlay.Clear()
	}
}

// Commit completes the transaction successfully.
//
// Nested: the child's inverse log is appended to the parent's and its
// overlay merged into the parent's; inherited and newly-acquired locks stay
// with the root (they were keyed there all along).
//
// Root speculative: the lazy overlay (if any) is applied to the underlying
// storage while all locks are still held, then every held lock's use
// counter is bumped and the profile recorded, then locks are released and
// grantable waiters woken.
func (t *Tx) Commit() error {
	if t.status != StatusActive {
		return fmt.Errorf("commit %s transaction: %w", t.status, ErrTxDone)
	}
	if t.parent != nil {
		t.parent.undo = append(t.parent.undo, t.undo...)
		t.undo = nil
		if t.overlay != nil {
			parentOv := t.parent.overlay
			if parentOv == nil {
				return fmt.Errorf("stm: lazy child committing into non-lazy parent")
			}
			parentOv.Merge(t.overlay)
		}
		t.status = StatusCommitted
		return nil
	}
	if t.overlay != nil && t.kind != KindOCC {
		// OCC roots keep their writes pending: the engine validates the
		// attempt first and applies (or discards) PendingWrites itself.
		t.overlay.Apply()
	}
	if t.kind == KindSpeculative {
		entries := t.mgr.releaseAll(t, t.thread, true)
		t.profile = Profile{Tx: t.id, Entries: entries}
	}
	t.status = StatusCommitted
	return nil
}

// Abort undoes the transaction's effects. For a nested action, the parent
// stays active and — deviating from the paper, see the package comment —
// the child's locks remain with the root. For a speculative root, all locks
// are released without bumping use counters: the attempt leaves no mark on
// the discovered schedule and the transaction may be retried.
func (t *Tx) Abort() error {
	if t.status != StatusActive {
		return fmt.Errorf("abort %s transaction: %w", t.status, ErrTxDone)
	}
	t.rollback()
	if t.parent == nil && t.kind == KindSpeculative {
		t.mgr.releaseAll(t, t.thread, false)
	}
	t.status = StatusAborted
	return nil
}

// Revert completes a transaction whose contract body threw: state effects
// are undone, but the transaction remains part of the schedule — its locks'
// use counters are bumped and a profile is produced — because its execution
// observed shared state and consumed gas, and the validator will replay it.
// Only valid on roots.
func (t *Tx) Revert() error {
	if t.parent != nil {
		return fmt.Errorf("stm: Revert on nested transaction (aborting children is the caller's job)")
	}
	if t.status != StatusActive {
		return fmt.Errorf("revert %s transaction: %w", t.status, ErrTxDone)
	}
	t.rollback()
	if t.kind == KindSpeculative {
		entries := t.mgr.releaseAll(t, t.thread, true)
		t.profile = Profile{Tx: t.id, Entries: entries}
	}
	t.status = StatusReverted
	return nil
}

// Profile returns the scheduling metadata registered at Commit/Revert of a
// speculative root. Zero value otherwise.
func (t *Tx) Profile() Profile { return t.profile }

// PendingWrites returns an OCC root's buffered writes after Commit: the
// engine applies them once the attempt survives validation. Nil for every
// other kind, and empty after a Revert (the rollback discarded them).
func (t *Tx) PendingWrites() *Overlay {
	if t.kind != KindOCC || t.parent != nil {
		return nil
	}
	return t.overlay
}

// TraceResult returns the deduplicated, sorted trace of a replay root.
func (t *Tx) TraceResult() Trace {
	return t.TraceResultInto(nil)
}

// TraceResultInto is TraceResult with a caller-supplied entry buffer:
// entries are appended into buf[:0], reusing its backing array when it is
// large enough. Engines that re-execute transactions across rounds pass
// the discarded attempt's trace storage here instead of allocating anew.
func (t *Tx) TraceResultInto(buf []TraceEntry) Trace {
	entries := buf[:0]
	for l, m := range t.traceSeen {
		entries = append(entries, TraceEntry{Lock: l, Mode: m})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Lock.Less(entries[j].Lock) })
	return Trace{Tx: t.id, Entries: entries}
}

// Recycle returns a settled root's pooled read/write-set map for reuse by
// a later BeginReplay/BeginOCC. Call it only after the transaction has
// committed, aborted, or reverted AND its TraceResult has been taken; the
// trace map is gone afterwards. The overlay is deliberately NOT released
// here — for OCC roots the engine still holds PendingWrites and releases
// the overlay itself once the writes are applied or discarded.
func (t *Tx) Recycle() {
	if t.parent != nil || t.status == StatusActive {
		return
	}
	if t.traceSeen != nil {
		clear(t.traceSeen)
		traceSeenPool.Put(t.traceSeen)
		t.traceSeen = nil
	}
}

// HeldLocks returns a sorted snapshot of the family's held locks (tests).
func (t *Tx) HeldLocks() []LockID {
	out := make([]LockID, 0, len(t.root.held))
	for l := range t.root.held {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
