package stm

import (
	"errors"
	"testing"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
)

func TestModeCompatibility(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{ModeShared, ModeShared, true},
		{ModeIncrement, ModeIncrement, true},
		{ModeExclusive, ModeExclusive, false},
		{ModeShared, ModeExclusive, false},
		{ModeExclusive, ModeShared, false},
		{ModeShared, ModeIncrement, false},
		{ModeIncrement, ModeShared, false},
		{ModeIncrement, ModeExclusive, false},
	}
	for _, tc := range cases {
		if got := Compatible(tc.a, tc.b); got != tc.want {
			t.Errorf("Compatible(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCombine(t *testing.T) {
	if Combine(ModeShared, ModeShared) != ModeShared {
		t.Error("shared+shared should stay shared")
	}
	if Combine(ModeIncrement, ModeIncrement) != ModeIncrement {
		t.Error("increment+increment should stay increment")
	}
	if Combine(ModeShared, ModeIncrement) != ModeExclusive {
		t.Error("shared+increment must escalate to exclusive")
	}
	if Combine(ModeShared, ModeExclusive) != ModeExclusive {
		t.Error("shared+exclusive must be exclusive")
	}
}

func TestLockIDOrderingAndString(t *testing.T) {
	a := LockID{Scope: "a", Key: "1"}
	b := LockID{Scope: "a", Key: "2"}
	c := LockID{Scope: "b", Key: "0"}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("LockID.Less ordering broken")
	}
	if a.String() != "a[1]" {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestEnumStrings(t *testing.T) {
	for _, s := range []string{
		ModeShared.String(), ModeIncrement.String(), ModeExclusive.String(),
		KindSpeculative.String(), KindSerial.String(), KindReplay.String(),
		PolicyEager.String(), PolicyLazy.String(),
		StatusActive.String(), StatusCommitted.String(), StatusAborted.String(), StatusReverted.String(),
	} {
		if s == "" {
			t.Fatal("empty enum string")
		}
	}
	if Mode(99).String() == "" || Kind(99).String() == "" || Policy(99).String() == "" || Status(99).String() == "" {
		t.Fatal("unknown enum values must still render")
	}
}

// singleThread runs body on a one-worker sim pool and returns the makespan.
func singleThread(t *testing.T, body func(th runtime.Thread)) uint64 {
	t.Helper()
	ms, err := runtime.NewSimRunner().Run(1, body)
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	return ms
}

func TestSpeculativeCommitProducesProfile(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lockA := LockID{Scope: "m", Key: "a"}
	lockB := LockID{Scope: "m", Key: "b"}
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		if err := tx.Access(lockA, ModeExclusive, 10); err != nil {
			t.Errorf("access A: %v", err)
		}
		if err := tx.Access(lockB, ModeShared, 10); err != nil {
			t.Errorf("access B: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
		p := tx.Profile()
		if p.Tx != 0 || len(p.Entries) != 2 {
			t.Fatalf("profile = %+v, want 2 entries", p)
		}
		// Sorted by lock: a before b.
		if p.Entries[0].Lock != lockA || p.Entries[0].Mode != ModeExclusive || p.Entries[0].Counter != 1 {
			t.Errorf("entry 0 = %+v", p.Entries[0])
		}
		if p.Entries[1].Lock != lockB || p.Entries[1].Mode != ModeShared || p.Entries[1].Counter != 1 {
			t.Errorf("entry 1 = %+v", p.Entries[1])
		}
	})
}

func TestUseCountersIncrementAcrossCommits(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "m", Key: "k"}
	singleThread(t, func(th runtime.Thread) {
		for i := 0; i < 3; i++ {
			tx := BeginSpeculative(mgr, types.TxID(i), th, gas.NewMeter(1_000_000), PolicyEager)
			if err := tx.Access(lock, ModeExclusive, 10); err != nil {
				t.Errorf("access: %v", err)
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
			}
			if got := tx.Profile().Entries[0].Counter; got != uint64(i+1) {
				t.Errorf("tx %d counter = %d, want %d", i, got, i+1)
			}
		}
	})
	if mgr.Counter(lock) != 3 {
		t.Fatalf("final counter = %d, want 3", mgr.Counter(lock))
	}
}

func TestAbortDoesNotBumpCounter(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "m", Key: "k"}
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		if err := tx.Access(lock, ModeExclusive, 10); err != nil {
			t.Errorf("access: %v", err)
		}
		if err := tx.Abort(); err != nil {
			t.Errorf("abort: %v", err)
		}
	})
	if mgr.Counter(lock) != 0 {
		t.Fatalf("aborted tx bumped counter to %d", mgr.Counter(lock))
	}
}

func TestUndoLogReplayedInReverseOrder(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	var log []int
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		tx.LogUndo(func() { log = append(log, 1) })
		tx.LogUndo(func() { log = append(log, 2) })
		tx.LogUndo(func() { log = append(log, 3) })
		if err := tx.Abort(); err != nil {
			t.Errorf("abort: %v", err)
		}
	})
	if len(log) != 3 || log[0] != 3 || log[1] != 2 || log[2] != 1 {
		t.Fatalf("undo order = %v, want [3 2 1]", log)
	}
}

func TestRevertUndoesButKeepsSchedulePresence(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "m", Key: "k"}
	value := 10
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		if err := tx.Access(lock, ModeExclusive, 10); err != nil {
			t.Errorf("access: %v", err)
		}
		old := value
		tx.LogUndo(func() { value = old })
		value = 99
		if err := tx.Revert(); err != nil {
			t.Errorf("revert: %v", err)
		}
		if len(tx.Profile().Entries) != 1 {
			t.Errorf("reverted tx must still publish a profile, got %+v", tx.Profile())
		}
		if tx.Status() != StatusReverted {
			t.Errorf("status = %v", tx.Status())
		}
	})
	if value != 10 {
		t.Fatalf("revert did not undo: value = %d", value)
	}
	if mgr.Counter(lock) != 1 {
		t.Fatalf("reverted tx must bump counters (schedule presence); counter = %d", mgr.Counter(lock))
	}
}

func TestOutOfGasSurfacesFromAccess(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(5), PolicyEager)
		err := tx.Access(LockID{Scope: "m", Key: "k"}, ModeShared, 10)
		if !errors.Is(err, gas.ErrOutOfGas) {
			t.Errorf("err = %v, want ErrOutOfGas", err)
		}
	})
}

func TestDoneTxRejectsFurtherUse(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
		if err := tx.Access(LockID{Scope: "m"}, ModeShared, 1); !errors.Is(err, ErrTxDone) {
			t.Errorf("Access after commit = %v, want ErrTxDone", err)
		}
		if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
			t.Errorf("double commit = %v, want ErrTxDone", err)
		}
		if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
			t.Errorf("abort after commit = %v, want ErrTxDone", err)
		}
		if _, err := tx.BeginNested(); !errors.Is(err, ErrTxDone) {
			t.Errorf("BeginNested after commit = %v, want ErrTxDone", err)
		}
	})
}

func TestSerialKindNeedsNoManager(t *testing.T) {
	var value int
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSerial(0, th, gas.NewMeter(1_000_000), gas.DefaultSchedule())
		if err := tx.Access(LockID{Scope: "m", Key: "k"}, ModeExclusive, 10); err != nil {
			t.Errorf("access: %v", err)
		}
		tx.LogUndo(func() { value = 0 })
		value = 7
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if value != 7 {
		t.Fatalf("value = %d, want 7", value)
	}
}

func TestSerialRevertUndoes(t *testing.T) {
	value := 1
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSerial(0, th, gas.NewMeter(1_000_000), gas.DefaultSchedule())
		tx.LogUndo(func() { value = 1 })
		value = 2
		if err := tx.Revert(); err != nil {
			t.Errorf("revert: %v", err)
		}
	})
	if value != 1 {
		t.Fatalf("serial revert did not undo: value = %d", value)
	}
}

func TestReplayTraceRecordsAndCombines(t *testing.T) {
	lock := LockID{Scope: "m", Key: "k"}
	other := LockID{Scope: "m", Key: "z"}
	singleThread(t, func(th runtime.Thread) {
		tx := BeginReplay(3, th, gas.NewMeter(1_000_000), gas.DefaultSchedule())
		_ = tx.Access(lock, ModeShared, 1)
		_ = tx.Access(lock, ModeExclusive, 1) // combine -> exclusive
		_ = tx.Access(other, ModeIncrement, 1)
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
		tr := tx.TraceResult()
		if tr.Tx != 3 || len(tr.Entries) != 2 {
			t.Fatalf("trace = %+v", tr)
		}
		if tr.Entries[0].Lock != lock || tr.Entries[0].Mode != ModeExclusive {
			t.Errorf("entry 0 = %+v, want %v exclusive", tr.Entries[0], lock)
		}
		if tr.Entries[1].Lock != other || tr.Entries[1].Mode != ModeIncrement {
			t.Errorf("entry 1 = %+v", tr.Entries[1])
		}
	})
}

func TestTraceMatchesProfile(t *testing.T) {
	lock := LockID{Scope: "m", Key: "k"}
	p := Profile{Tx: 1, Entries: []ProfileEntry{{Lock: lock, Mode: ModeExclusive, Counter: 5}}}
	good := Trace{Tx: 1, Entries: []TraceEntry{{Lock: lock, Mode: ModeExclusive}}}
	if !good.MatchesProfile(p) {
		t.Fatal("matching trace rejected")
	}
	badMode := Trace{Tx: 1, Entries: []TraceEntry{{Lock: lock, Mode: ModeShared}}}
	if badMode.MatchesProfile(p) {
		t.Fatal("mode mismatch accepted")
	}
	badLock := Trace{Tx: 1, Entries: []TraceEntry{{Lock: LockID{Scope: "m", Key: "other"}, Mode: ModeExclusive}}}
	if badLock.MatchesProfile(p) {
		t.Fatal("lock mismatch accepted")
	}
	empty := Trace{Tx: 1}
	if empty.MatchesProfile(p) {
		t.Fatal("missing entries accepted")
	}
}

func TestFastPathAlreadyHeld(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "m", Key: "k"}
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		if err := tx.Access(lock, ModeExclusive, 10); err != nil {
			t.Errorf("first access: %v", err)
		}
		// Re-access in any weaker/equal mode must not deadlock or re-queue.
		if err := tx.Access(lock, ModeShared, 10); err != nil {
			t.Errorf("re-access shared: %v", err)
		}
		if err := tx.Access(lock, ModeExclusive, 10); err != nil {
			t.Errorf("re-access exclusive: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
		if n := len(tx.Profile().Entries); n != 1 {
			t.Errorf("profile entries = %d, want 1 (no duplicates)", n)
		}
	})
	stats := mgr.Stats()
	if stats.Acquisitions != 1 {
		t.Fatalf("acquisitions = %d, want 1 (fast path must not re-acquire)", stats.Acquisitions)
	}
}

func TestSharedUpgradeToExclusiveWhenSoleHolder(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "m", Key: "k"}
	singleThread(t, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, 0, th, gas.NewMeter(1_000_000), PolicyEager)
		if err := tx.Access(lock, ModeShared, 10); err != nil {
			t.Errorf("shared: %v", err)
		}
		if err := tx.Access(lock, ModeExclusive, 10); err != nil {
			t.Errorf("upgrade: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
		if got := tx.Profile().Entries[0].Mode; got != ModeExclusive {
			t.Errorf("profile mode = %v, want exclusive after upgrade", got)
		}
	})
}
