package stm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
)

// TestThreeCycleDeadlockDetected exercises transitive wait-for detection:
// worker i takes lock i then lock (i+1)%3. A 3-cycle can only be caught by
// following the wait-for graph through an intermediate blocked transaction
// — a pairwise check would miss it.
func TestThreeCycleDeadlockDetected(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	locks := []LockID{
		{Scope: "c", Key: "0"},
		{Scope: "c", Key: "1"},
		{Scope: "c", Key: "2"},
	}
	var mu sync.Mutex
	deadlocks, commits := 0, 0
	_, err := runtime.NewSimRunner().Run(3, func(th runtime.Thread) {
		first := locks[th.ID()]
		second := locks[(th.ID()+1)%3]
		for attempt := 0; attempt < 8; attempt++ {
			tx := BeginSpeculative(mgr, types.TxID(th.ID()), th, gas.NewMeter(1_000_000), PolicyEager)
			if err := tx.Access(first, ModeExclusive, 5); err != nil {
				t.Errorf("first access: %v", err)
				return
			}
			th.Work(50) // overlap all three holders
			err := tx.Access(second, ModeExclusive, 5)
			if errors.Is(err, ErrDeadlock) {
				mu.Lock()
				deadlocks++
				mu.Unlock()
				if aerr := tx.Abort(); aerr != nil {
					t.Errorf("abort: %v", aerr)
				}
				th.Work(gas.Gas(10 * (th.ID() + 1))) // staggered backoff
				continue
			}
			if err != nil {
				t.Errorf("second access: %v", err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
			}
			mu.Lock()
			commits++
			mu.Unlock()
			return
		}
		t.Error("worker starved")
	})
	if err != nil {
		t.Fatalf("run (an undetected 3-cycle deadlocks the simulation): %v", err)
	}
	if commits != 3 {
		t.Fatalf("commits = %d, want 3", commits)
	}
	if deadlocks == 0 {
		t.Fatal("expected at least one detected deadlock in the 3-cycle")
	}
}

// TestProfileCountersUniquePerLock checks the §4 invariant the validator
// depends on: across any concurrent execution, committed holders of one
// lock receive distinct, gapless use-counter values.
func TestProfileCountersUniquePerLock(t *testing.T) {
	prop := func(seed uint8) bool {
		mgr := NewManager(gas.DefaultSchedule())
		lock := LockID{Scope: "p", Key: "k"}
		perWorker := 3
		workers := 3
		var mu sync.Mutex
		var counters []uint64
		_, err := runtime.NewSimRunner().Run(workers, func(th runtime.Thread) {
			for i := 0; i < perWorker; i++ {
				tx := BeginSpeculative(mgr, types.TxID(th.ID()*10+i), th, gas.NewMeter(1_000_000), PolicyEager)
				if err := tx.Access(lock, ModeExclusive, 5); err != nil {
					// Single lock: deadlock impossible.
					return
				}
				th.Work(gas.Gas(1 + (int(seed)+th.ID()+i)%7))
				if err := tx.Commit(); err != nil {
					return
				}
				mu.Lock()
				counters = append(counters, tx.Profile().Entries[0].Counter)
				mu.Unlock()
			}
		})
		if err != nil {
			return false
		}
		if len(counters) != perWorker*workers {
			return false
		}
		seen := make(map[uint64]bool, len(counters))
		var max uint64
		for _, c := range counters {
			if c == 0 || seen[c] {
				return false
			}
			seen[c] = true
			if c > max {
				max = c
			}
		}
		return max == uint64(len(counters)) // gapless
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWaiterDoesNotStarveUnderChurn floods one exclusive lock from three
// workers and checks everyone finishes (grant-on-release wakes waiters).
func TestWaiterDoesNotStarveUnderChurn(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "s", Key: "hot"}
	const perWorker = 25
	var mu sync.Mutex
	done := 0
	_, err := runtime.NewSimRunner().Run(3, func(th runtime.Thread) {
		for i := 0; i < perWorker; i++ {
			tx := BeginSpeculative(mgr, types.TxID(th.ID()*100+i), th, gas.NewMeter(1_000_000), PolicyEager)
			if err := tx.Access(lock, ModeExclusive, 2); err != nil {
				t.Errorf("access: %v", err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			mu.Lock()
			done++
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if done != 75 {
		t.Fatalf("done = %d, want 75", done)
	}
	if mgr.Counter(lock) != 75 {
		t.Fatalf("final counter = %d, want 75", mgr.Counter(lock))
	}
}

// TestMixedModeQueueing interleaves readers, incrementers and writers on
// one lock and verifies every transaction completes with a coherent
// profile mode.
func TestMixedModeQueueing(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "mix", Key: "k"}
	modes := []Mode{ModeShared, ModeIncrement, ModeExclusive}
	var mu sync.Mutex
	completed := 0
	_, err := runtime.NewSimRunner().Run(3, func(th runtime.Thread) {
		for i := 0; i < 12; i++ {
			mode := modes[(th.ID()+i)%3]
			tx := BeginSpeculative(mgr, types.TxID(th.ID()*100+i), th, gas.NewMeter(1_000_000), PolicyEager)
			if err := tx.Access(lock, mode, 3); err != nil {
				t.Errorf("access %v: %v", mode, err)
				return
			}
			th.Work(5)
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			if got := tx.Profile().Entries[0].Mode; got != mode {
				t.Errorf("profile mode = %v, want %v", got, mode)
			}
			mu.Lock()
			completed++
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if completed != 36 {
		t.Fatalf("completed = %d, want 36", completed)
	}
}
