package stm

import (
	"sort"
	"sync"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
)

// Manager is the abstract-lock table for one block being mined. It tracks
// holders, waiters, per-lock use counters, and the wait-for graph used for
// deadlock detection. A miner creates a fresh Manager per block, which
// implements the paper's "when a miner starts a block, it sets these
// counters to zero".
//
// Manager is safe for concurrent use by multiple threads (real or
// simulated); all state is guarded by a single mutex. Blocking waits never
// hold the mutex: a waiter enqueues itself, releases the mutex, and parks on
// its runtime.Thread until granted.
type Manager struct {
	mu    sync.Mutex
	sched gas.Schedule
	locks map[LockID]*lockState
	// waitingOn maps a root transaction to its (single) pending lock
	// request; it is the wait-for graph's edge source.
	waitingOn map[*Tx]*waiter
	// stats
	acquisitions uint64
	waits        uint64
	deadlocks    uint64
}

// lockState is one abstract lock's runtime state.
type lockState struct {
	// holders maps each holding root transaction to its (combined) mode.
	holders map[*Tx]Mode
	// waiters are pending requests in arrival order. Grants are
	// compatibility-driven rather than strictly FIFO: a compatible waiter
	// behind an incompatible one is granted anyway, so the only blocking
	// relation is waiter→holder, which keeps deadlock detection complete.
	waiters []*waiter
	// counter is the paper's use counter: incremented once per lock per
	// committing (or reverting) holder.
	counter uint64
}

// waiter is one blocked lock request.
type waiter struct {
	tx      *Tx
	thread  runtime.Thread
	lock    LockID
	mode    Mode // the full target mode (combined, for upgrades)
	granted bool
}

// NewManager returns an empty lock table using the given cost schedule.
func NewManager(sched gas.Schedule) *Manager {
	return &Manager{
		sched:     sched,
		locks:     make(map[LockID]*lockState),
		waitingOn: make(map[*Tx]*waiter),
	}
}

// Stats reports cumulative counters for diagnostics and benchmarks.
type Stats struct {
	// Acquisitions counts granted lock requests (including upgrades).
	Acquisitions uint64
	// Waits counts requests that had to block before being granted.
	Waits uint64
	// Deadlocks counts requests refused with ErrDeadlock.
	Deadlocks uint64
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Acquisitions: m.acquisitions, Waits: m.waits, Deadlocks: m.deadlocks}
}

// acquire obtains lock l in mode mode on behalf of root, blocking while
// incompatible holders exist. It returns ErrDeadlock when blocking would
// close a wait-for cycle; the caller must then abort the transaction.
// On success the caller's root.held has been updated.
func (m *Manager) acquire(root *Tx, th runtime.Thread, l LockID, mode Mode) error {
	m.mu.Lock()
	ls := m.locks[l]
	if ls == nil {
		ls = &lockState{holders: make(map[*Tx]Mode)}
		m.locks[l] = ls
	}

	target := mode
	if cur, held := ls.holders[root]; held {
		target = Combine(cur, mode)
		if target == cur {
			// Already held strongly enough.
			m.mu.Unlock()
			return nil
		}
	}

	if m.grantable(ls, root, target) {
		ls.holders[root] = target
		root.held[l] = target
		m.acquisitions++
		m.mu.Unlock()
		return nil
	}

	// Must wait. Refuse immediately if waiting would deadlock: the
	// requester whose edge closes the cycle is always the victim, so
	// detection at enqueue time is complete.
	if m.wouldDeadlock(root, ls, target) {
		m.deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	w := &waiter{tx: root, thread: th, lock: l, mode: target}
	ls.waiters = append(ls.waiters, w)
	m.waitingOn[root] = w
	m.waits++
	m.mu.Unlock()

	for {
		th.Park()
		m.mu.Lock()
		if w.granted {
			root.held[l] = w.mode
			m.mu.Unlock()
			return nil
		}
		// Spurious wake (stale token from another coordination layer):
		// park again.
		m.mu.Unlock()
	}
}

// grantable reports whether root may hold ls in the given mode right now:
// every other holder must be compatible. Called with m.mu held.
func (m *Manager) grantable(ls *lockState, root *Tx, mode Mode) bool {
	//chainvet:allow(detmap) ∀-predicate: the answer is a conjunction over holders, identical under any iteration order, and nothing per-element escapes.
	for h, hm := range ls.holders {
		if h == root {
			continue
		}
		if !Compatible(hm, mode) {
			return false
		}
	}
	return true
}

// wouldDeadlock reports whether blocking root on ls (requesting mode) closes
// a cycle: some incompatible holder (transitively) waits on a lock held by
// root. Called with m.mu held.
func (m *Manager) wouldDeadlock(root *Tx, ls *lockState, mode Mode) bool {
	visited := make(map[*Tx]bool)
	var reachesRoot func(tx *Tx) bool
	reachesRoot = func(tx *Tx) bool {
		if tx == root {
			return true
		}
		if visited[tx] {
			return false
		}
		visited[tx] = true
		w := m.waitingOn[tx]
		if w == nil {
			return false
		}
		next := m.locks[w.lock]
		//chainvet:allow(detmap) ∃-search: cycle existence is a disjunction over holders; which holder closes the cycle first does not change the verdict, and only the boolean escapes.
		for h, hm := range next.holders {
			if h == tx || Compatible(hm, w.mode) {
				continue
			}
			if reachesRoot(h) {
				return true
			}
		}
		return false
	}
	//chainvet:allow(detmap) ∃-search: same disjunction at the outer level — deadlock either exists or it does not, regardless of holder order.
	for h, hm := range ls.holders {
		if h == root || Compatible(hm, mode) {
			continue
		}
		if reachesRoot(h) {
			return true
		}
	}
	return false
}

// releaseAll drops every lock held by root. With bump=true (commit and
// revert paths) each lock's use counter is incremented and a profile entry
// recorded, per §4; with bump=false (speculative abort) the locks simply
// vanish from the schedule. Waiters that become grantable are granted and
// their threads unparked by the calling thread.
func (m *Manager) releaseAll(root *Tx, th runtime.Thread, bump bool) []ProfileEntry {
	m.mu.Lock()
	var entries []ProfileEntry
	var toWake []runtime.Thread
	//chainvet:allow(detmap) Each lock's use counter is independent, so the published counters do not depend on release order; the entries slice is sorted by lock before it returns, and wake order only races threads that re-serialize on m.mu anyway.
	for l, mode := range root.held {
		ls := m.locks[l]
		if ls == nil {
			continue
		}
		if bump {
			ls.counter++
			entries = append(entries, ProfileEntry{Lock: l, Mode: mode, Counter: ls.counter})
		}
		delete(ls.holders, root)
		toWake = append(toWake, m.grantWaiters(ls)...)
	}
	delete(m.waitingOn, root)
	m.mu.Unlock()

	for _, t := range toWake {
		th.Unpark(t)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Lock.Less(entries[j].Lock) })
	return entries
}

// grantWaiters grants every waiter now compatible with the holders,
// returning the threads to unpark. Called with m.mu held.
func (m *Manager) grantWaiters(ls *lockState) []runtime.Thread {
	var wake []runtime.Thread
	remaining := ls.waiters[:0]
	for _, w := range ls.waiters {
		if m.grantable(ls, w.tx, w.mode) {
			ls.holders[w.tx] = w.mode
			w.granted = true
			delete(m.waitingOn, w.tx)
			m.acquisitions++
			wake = append(wake, w.thread)
			continue
		}
		remaining = append(remaining, w)
	}
	ls.waiters = remaining
	return wake
}

// Counter returns lock l's current use counter (for tests and diagnostics).
func (m *Manager) Counter(l LockID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ls := m.locks[l]; ls != nil {
		return ls.counter
	}
	return 0
}

// ProfileEntry is one (lock, mode, use-counter) triple registered by a
// committing transaction; the block carries one Profile per transaction.
type ProfileEntry struct {
	Lock    LockID `json:"lock"`
	Mode    Mode   `json:"mode"`
	Counter uint64 `json:"counter"`
}

// Profile is the scheduling metadata one transaction contributes to the
// block (§4): the abstract locks it held at completion with their counter
// values. Entries are sorted by lock for canonical encoding.
type Profile struct {
	Tx      types.TxID     `json:"tx"`
	Entries []ProfileEntry `json:"entries"`
}

// TraceEntry is one (lock, mode) pair recorded by the validator's replay.
type TraceEntry struct {
	Lock LockID `json:"lock"`
	Mode Mode   `json:"mode"`
}

// Trace is the validator-side analogue of Profile: the locks a transaction
// would have acquired, recorded thread-locally during deterministic replay.
// Entries are deduplicated (modes combined) and sorted by lock.
type Trace struct {
	Tx      types.TxID   `json:"tx"`
	Entries []TraceEntry `json:"entries"`
}

// MatchesProfile reports whether the trace matches a miner profile: the
// same lock set with the same combined modes. Counter values are not
// compared here — they order transactions and are checked by the schedule
// verifier (internal/sched).
func (tr Trace) MatchesProfile(p Profile) bool {
	if len(tr.Entries) != len(p.Entries) {
		return false
	}
	for i, e := range tr.Entries {
		if e.Lock != p.Entries[i].Lock || e.Mode != p.Entries[i].Mode {
			return false
		}
	}
	return true
}
