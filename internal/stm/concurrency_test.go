package stm

import (
	"errors"
	"sync"
	"testing"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
)

func TestExclusiveLockSerializesCriticalSections(t *testing.T) {
	lock := LockID{Scope: "m", Key: "k"}
	newBody := func(mgr *Manager, inCS *int, violations *int, mu *sync.Mutex) func(runtime.Thread) {
		return func(th runtime.Thread) {
			for i := 0; i < 20; i++ {
				tx := BeginSpeculative(mgr, types.TxID(th.ID()*100+i), th, gas.NewMeter(1_000_000), PolicyEager)
				if err := tx.Access(lock, ModeExclusive, 5); err != nil {
					if errors.Is(err, ErrDeadlock) {
						_ = tx.Abort()
						continue
					}
					t.Errorf("access: %v", err)
					return
				}
				mu.Lock()
				*inCS++
				if *inCS > 1 {
					*violations++
				}
				mu.Unlock()
				th.Work(3)
				mu.Lock()
				*inCS--
				mu.Unlock()
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
				}
			}
		}
	}
	t.Run("sim", func(t *testing.T) {
		mgr := NewManager(gas.DefaultSchedule())
		var inCS, violations int
		var mu sync.Mutex
		if _, err := runtime.NewSimRunner().Run(3, newBody(mgr, &inCS, &violations, &mu)); err != nil {
			t.Fatalf("run: %v", err)
		}
		if violations != 0 {
			t.Fatalf("%d mutual-exclusion violations", violations)
		}
	})
	t.Run("os", func(t *testing.T) {
		mgr := NewManager(gas.DefaultSchedule())
		var inCS, violations int
		var mu sync.Mutex
		if _, err := runtime.NewOSRunner(nil).Run(3, newBody(mgr, &inCS, &violations, &mu)); err != nil {
			t.Fatalf("run: %v", err)
		}
		if violations != 0 {
			t.Fatalf("%d mutual-exclusion violations", violations)
		}
	})
}

func TestSharedHoldersOverlap(t *testing.T) {
	// Two readers of the same lock must both hold it concurrently in the
	// simulator: the second must not wait for the first (makespan check).
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "m", Key: "k"}
	ms, err := runtime.NewSimRunner().Run(2, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, types.TxID(th.ID()), th, gas.NewMeter(1_000_000), PolicyEager)
		if err := tx.Access(lock, ModeShared, 10); err != nil {
			t.Errorf("access: %v", err)
		}
		th.Work(100)
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Each worker: setup(30) + access(10+14) + 100 work ≈ 154; overlapping
	// readers keep the makespan near one worker's cost, far below 2x.
	sched := gas.DefaultSchedule()
	oneWorker := uint64(sched.SpecTxSetup) + 10 + uint64(sched.LockOverhead) + 100
	if ms > oneWorker+20 {
		t.Fatalf("makespan %d suggests readers serialized (one worker ≈ %d)", ms, oneWorker)
	}
}

func TestIncrementHoldersOverlap(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "ballot", Key: "proposal0"}
	counter := 0
	var mu sync.Mutex
	ms, err := runtime.NewSimRunner().Run(3, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, types.TxID(th.ID()), th, gas.NewMeter(1_000_000), PolicyEager)
		if err := tx.Access(lock, ModeIncrement, 10); err != nil {
			t.Errorf("access: %v", err)
		}
		mu.Lock()
		counter++
		mu.Unlock()
		th.Work(100)
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if counter != 3 {
		t.Fatalf("counter = %d", counter)
	}
	sched := gas.DefaultSchedule()
	oneWorker := uint64(sched.SpecTxSetup) + 10 + uint64(sched.LockOverhead) + 100
	if ms > oneWorker+20 {
		t.Fatalf("makespan %d suggests increments serialized (one worker ≈ %d)", ms, oneWorker)
	}
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	// Worker 1's exclusive access must wait for worker 0's commit; the
	// simulator makespan must therefore be ~2x one critical section.
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "m", Key: "k"}
	ms, err := runtime.NewSimRunner().Run(2, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, types.TxID(th.ID()), th, gas.NewMeter(1_000_000), PolicyEager)
		if err := tx.Access(lock, ModeExclusive, 10); err != nil {
			t.Errorf("access: %v", err)
		}
		th.Work(100)
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if ms < 200 {
		t.Fatalf("makespan %d too small: exclusive sections overlapped", ms)
	}
}

func TestDeadlockDetectedAndVictimAborts(t *testing.T) {
	// Classic ABBA: worker 0 takes A then B; worker 1 takes B then A.
	// Exactly one of them must receive ErrDeadlock; after its abort the
	// other completes. Deterministic in the simulator.
	mgr := NewManager(gas.DefaultSchedule())
	lockA := LockID{Scope: "m", Key: "A"}
	lockB := LockID{Scope: "m", Key: "B"}
	var mu sync.Mutex
	deadlocks, commits := 0, 0
	_, err := runtime.NewSimRunner().Run(2, func(th runtime.Thread) {
		first, second := lockA, lockB
		if th.ID() == 1 {
			first, second = lockB, lockA
		}
		for attempt := 0; attempt < 5; attempt++ {
			tx := BeginSpeculative(mgr, types.TxID(th.ID()), th, gas.NewMeter(1_000_000), PolicyEager)
			if err := tx.Access(first, ModeExclusive, 5); err != nil {
				t.Errorf("first access: %v", err)
				return
			}
			th.Work(50) // ensure overlap so both hold their first lock
			err := tx.Access(second, ModeExclusive, 5)
			if errors.Is(err, ErrDeadlock) {
				mu.Lock()
				deadlocks++
				mu.Unlock()
				if aerr := tx.Abort(); aerr != nil {
					t.Errorf("abort: %v", aerr)
				}
				th.Work(10) // backoff
				continue
			}
			if err != nil {
				t.Errorf("second access: %v", err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
			}
			mu.Lock()
			commits++
			mu.Unlock()
			return
		}
		t.Error("worker never committed within 5 attempts")
	})
	if err != nil {
		t.Fatalf("run (undetected deadlock would surface as ErrAllParked): %v", err)
	}
	if commits != 2 {
		t.Fatalf("commits = %d, want 2", commits)
	}
	if deadlocks == 0 {
		t.Fatal("expected at least one ErrDeadlock")
	}
}

func TestUpgradeDeadlockBetweenTwoReaders(t *testing.T) {
	// Both workers take the lock shared, then both try to upgrade to
	// exclusive: each waits on the other → deadlock must be detected.
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "m", Key: "k"}
	var mu sync.Mutex
	deadlocks, commits := 0, 0
	_, err := runtime.NewSimRunner().Run(2, func(th runtime.Thread) {
		for attempt := 0; attempt < 5; attempt++ {
			tx := BeginSpeculative(mgr, types.TxID(th.ID()), th, gas.NewMeter(1_000_000), PolicyEager)
			if err := tx.Access(lock, ModeShared, 5); err != nil {
				t.Errorf("shared access: %v", err)
				return
			}
			th.Work(50)
			err := tx.Access(lock, ModeExclusive, 5)
			if errors.Is(err, ErrDeadlock) {
				mu.Lock()
				deadlocks++
				mu.Unlock()
				if aerr := tx.Abort(); aerr != nil {
					t.Errorf("abort: %v", aerr)
				}
				th.Work(10)
				continue
			}
			if err != nil {
				t.Errorf("upgrade: %v", err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
			}
			mu.Lock()
			commits++
			mu.Unlock()
			return
		}
		t.Error("worker never committed")
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if commits != 2 || deadlocks == 0 {
		t.Fatalf("commits=%d deadlocks=%d", commits, deadlocks)
	}
}

func TestCommitWakesWaiter(t *testing.T) {
	// Both workers contend for one exclusive lock with no deadlock
	// possibility; both must eventually commit (waiter is woken).
	newBody := func(mgr *Manager) func(runtime.Thread) {
		return func(th runtime.Thread) {
			tx := BeginSpeculative(mgr, types.TxID(th.ID()), th, gas.NewMeter(1_000_000), PolicyEager)
			if err := tx.Access(LockID{Scope: "w", Key: "k"}, ModeExclusive, 5); err != nil {
				t.Errorf("access: %v", err)
				return
			}
			th.Work(20)
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
			}
		}
	}
	t.Run("sim", func(t *testing.T) {
		if _, err := runtime.NewSimRunner().Run(2, newBody(NewManager(gas.DefaultSchedule()))); err != nil {
			t.Fatalf("sim run: %v", err)
		}
	})
	t.Run("os", func(t *testing.T) {
		if _, err := runtime.NewOSRunner(nil).Run(2, newBody(NewManager(gas.DefaultSchedule()))); err != nil {
			t.Fatalf("os run: %v", err)
		}
	})
}

func TestStatsCounters(t *testing.T) {
	mgr := NewManager(gas.DefaultSchedule())
	lock := LockID{Scope: "m", Key: "k"}
	_, err := runtime.NewSimRunner().Run(2, func(th runtime.Thread) {
		tx := BeginSpeculative(mgr, types.TxID(th.ID()), th, gas.NewMeter(1_000_000), PolicyEager)
		if err := tx.Access(lock, ModeExclusive, 5); err != nil {
			t.Errorf("access: %v", err)
			return
		}
		th.Work(20)
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := mgr.Stats()
	if s.Acquisitions != 2 {
		t.Errorf("acquisitions = %d, want 2", s.Acquisitions)
	}
	if s.Waits != 1 {
		t.Errorf("waits = %d, want 1 (second worker must have blocked)", s.Waits)
	}
	if s.Deadlocks != 0 {
		t.Errorf("deadlocks = %d, want 0", s.Deadlocks)
	}
}
