package stm

import (
	"testing"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
)

// TestOverlayReleaseClearsState pins the pooling contract: an overlay that
// comes back from the pool must behave exactly like a fresh one — no stale
// entries, deltas, or isolation leaking from its previous life.
func TestOverlayReleaseClearsState(t *testing.T) {
	o := acquireIsolatedOverlay()
	k := OverlayKey{Obj: 1, Key: "x"}
	o.Put(k, uint64(7), false, func(any, bool) {})
	o.Add(OverlayKey{Obj: 2, Key: "y"}, 3, func(int64) {})
	o.Release()

	// Drain the pool until our overlay (or a fresh one) comes out; either
	// way it must be empty.
	got := acquireIsolatedOverlay()
	if got.Len() != 0 {
		t.Fatalf("pooled overlay came back with %d entries", got.Len())
	}
	if _, _, ok := got.Get(k); ok {
		t.Fatal("stale absolute entry visible after Release")
	}
	if _, ok := got.Delta(OverlayKey{Obj: 2, Key: "y"}); ok {
		t.Fatal("stale delta visible after Release")
	}
	if !got.Isolated() {
		t.Fatal("acquired overlay must be isolated")
	}
	got.Release()
}

// TestChildOverlayReleaseNoOp pins the ownership rule that makes pooling
// safe: a committing child's entries transfer to the parent by Merge, so
// releasing (or clearing) the child afterwards must not disturb them.
func TestChildOverlayReleaseNoOp(t *testing.T) {
	parent := NewIsolatedOverlay()
	child := NewChildOverlay(parent)
	k := OverlayKey{Obj: 9, Key: "slot"}
	child.Put(k, "v", false, func(any, bool) {})
	parent.Merge(child)

	child.Release() // must be a no-op: child frames are never pooled
	child.Clear()   // and clearing the child must not recycle merged entries

	if v, _, ok := parent.Get(k); !ok || v != "v" {
		t.Fatalf("merged entry lost after child Release/Clear: %v %v", v, ok)
	}
}

// TestOverlayEntryFreelistReuse pins that Clear recycles entry structs and
// that recycled entries carry no stale fields into their next use.
func TestOverlayEntryFreelistReuse(t *testing.T) {
	o := NewOverlay()
	k := OverlayKey{Obj: 3, Key: "k"}
	o.Put(k, uint64(1), true, func(any, bool) {})
	o.Clear()
	if len(o.free) != 1 {
		t.Fatalf("freelist has %d entries after Clear, want 1", len(o.free))
	}
	o.Add(k, 5, func(int64) {})
	if len(o.free) != 0 {
		t.Fatal("Add did not draw from the freelist")
	}
	d, ok := o.Delta(k)
	if !ok || d != 5 {
		t.Fatalf("recycled entry carried stale state: delta=%d ok=%v", d, ok)
	}
	if v, del, ok := o.Get(k); ok {
		t.Fatalf("recycled delta entry still reads as absolute: %v %v", v, del)
	}
}

// TestTxRecycleLifecycle pins Recycle's safety rules: it is a no-op on
// active roots and on children, and after recycling a settled OCC root its
// overlay — still referenced by the engine via PendingWrites — survives.
func TestTxRecycleLifecycle(t *testing.T) {
	singleThread(t, func(th runtime.Thread) {
		tx := BeginOCC(1, th, gas.NewMeter(1_000_000), gas.DefaultSchedule())
		tx.Recycle() // active: must not recycle the live trace map
		if err := tx.Access(LockID{Scope: "s", Key: "k"}, ModeExclusive, 1); err != nil {
			t.Fatalf("access: %v", err)
		}
		ov := tx.Overlay()
		ov.Put(OverlayKey{Obj: 1, Key: "k"}, uint64(1), false, func(any, bool) {})
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		tr := tx.TraceResult()
		if len(tr.Entries) != 1 {
			t.Fatalf("trace entries = %d, want 1", len(tr.Entries))
		}
		tx.Recycle()
		wr := tx.PendingWrites()
		if wr == nil || wr.Len() != 1 {
			t.Fatal("Recycle must leave the pending-writes overlay intact")
		}
		wr.Apply()
		wr.Release()

		// A fresh pooled root must start with an empty trace.
		tx2 := BeginOCC(2, th, gas.NewMeter(1_000_000), gas.DefaultSchedule())
		if got := tx2.TraceResult(); len(got.Entries) != 0 {
			t.Fatalf("recycled trace map leaked %d entries into a new root", len(got.Entries))
		}
	})
}
