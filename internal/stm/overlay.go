package stm

import (
	"sort"
	"sync"
)

// Overlay is a transaction-local write buffer used by PolicyLazy and by the
// OCC execution regime: instead of mutating boosted storage in place and
// logging inverses, writes land here and are applied to the underlying
// object at commit, while reads consult the overlay first
// (read-your-writes). Aborting a buffered transaction simply discards the
// overlay — no inverse replay needed.
//
// Keys are (object id, key) pairs; object ids are allocated by the storage
// layer (one per boosted object). Each entry carries an apply closure bound
// to its object so the overlay itself stays storage-agnostic.
//
// Entries come in two flavours:
//
//   - absolute entries (Put): the final buffered value (or delete) wins;
//   - delta entries (Add): accumulated commutative int64 deltas, applied
//     with a delta closure. Buffering deltas rather than absolute values is
//     what keeps increment-mode operations commutative across transactions
//     that buffer concurrently.
//
// Nested frames chain: a child frame's reads fall through to its ancestor
// frames (a nested action must see its parent's buffered writes), while
// its writes stay local until Merge at child commit — so aborting the
// child discards exactly the child's effects.
//
// Overlay is owner-thread-local and needs no locking.
type Overlay struct {
	entries map[OverlayKey]*overlayEntry
	// parent is the enclosing frame's overlay (nil for a root frame);
	// lookups walk the chain newest-frame-first.
	parent *Overlay
	// isolated marks an OCC overlay: the transaction runs with no abstract
	// locks, so *every* mutation — including increments and appends, which
	// the lazy mining policy applies in place under lock protection — must
	// be buffered here to keep the round's execution read-only on shared
	// state.
	isolated bool
	// free recycles entry structs across Clear/reuse cycles so a pooled
	// overlay's steady state allocates neither map buckets nor entries.
	free []*overlayEntry
}

// OverlayKey addresses one semantic unit of one boosted object.
type OverlayKey struct {
	Obj uint64
	Key string
}

type overlayEntry struct {
	val     any
	deleted bool
	apply   func(val any, deleted bool)
	// delta entries: isDelta set, delta accumulated, applyDelta bound.
	isDelta    bool
	delta      int64
	applyDelta func(delta int64)
}

// NewOverlay returns an empty overlay for the lazy write policy.
func NewOverlay() *Overlay {
	return &Overlay{entries: make(map[OverlayKey]*overlayEntry)}
}

// NewIsolatedOverlay returns an empty overlay for the OCC regime; see the
// isolated field.
func NewIsolatedOverlay() *Overlay {
	return &Overlay{entries: make(map[OverlayKey]*overlayEntry), isolated: true}
}

// overlayPool recycles root OCC overlays across execution rounds: the OCC
// engine begins one overlay per transaction per round, and without reuse
// each one costs a fresh map plus an entry struct per buffered write.
// Pooled overlays keep their map buckets (cleared, not reallocated) and
// their entry freelist.
var overlayPool = sync.Pool{
	New: func() any {
		return &Overlay{entries: make(map[OverlayKey]*overlayEntry)}
	},
}

// acquireIsolatedOverlay returns a pooled overlay configured for OCC.
func acquireIsolatedOverlay() *Overlay {
	o := overlayPool.Get().(*Overlay)
	o.isolated = true
	return o
}

// Release recycles a root overlay obtained from BeginOCC back into the
// internal pool, once its writes have been applied or discarded. Child
// frames are never pooled (the call is a no-op for them): a committing
// child's entries transfer into its parent by Merge, so recycling the
// child could alias live parent state. Callers must not touch o after
// Release.
func (o *Overlay) Release() {
	if o.parent != nil {
		return
	}
	o.Clear()
	o.parent = nil
	overlayPool.Put(o)
}

// NewChildOverlay returns an empty overlay for a nested frame of parent:
// reads fall through to the parent chain, writes stay local until Merge.
// The child inherits the parent's isolation regime.
func NewChildOverlay(parent *Overlay) *Overlay {
	return &Overlay{
		entries:  make(map[OverlayKey]*overlayEntry),
		parent:   parent,
		isolated: parent.isolated,
	}
}

// Isolated reports whether this overlay must buffer every mutation (OCC),
// rather than only the operations the lazy policy buffers.
func (o *Overlay) Isolated() bool { return o.isolated }

// lookup resolves key across the frame chain, newest frame first. Deltas
// buffered in frames newer than the nearest absolute entry fold on top of
// it (they happened after the write); frames older than an absolute entry
// are overwritten by it. With no absolute entry anywhere, the accumulated
// delta applies to the underlying raw value.
func (o *Overlay) lookup(key OverlayKey) (val any, deleted bool, delta int64, hasAbs, hasDelta bool) {
	for f := o; f != nil; f = f.parent {
		e, ok := f.entries[key]
		if !ok {
			continue
		}
		if e.isDelta {
			delta += e.delta
			hasDelta = true
			continue
		}
		if delta != 0 {
			// Deltas are only buffered against verified uint64 counters;
			// a buffered delete counts as zero (canonical-zero convention).
			cur, _ := e.val.(uint64)
			if e.deleted {
				cur = 0
			}
			return uint64(int64(cur) + delta), false, 0, true, hasDelta
		}
		return e.val, e.deleted, 0, true, hasDelta
	}
	return nil, false, delta, false, hasDelta
}

// Put buffers a write (or delete) of key. apply is invoked at commit with
// the final buffered value; later Puts to the same key replace earlier ones,
// including any accumulated delta (a write overwrites prior increments).
func (o *Overlay) Put(key OverlayKey, val any, deleted bool, apply func(val any, deleted bool)) {
	if e, ok := o.entries[key]; ok {
		e.val, e.deleted, e.apply = val, deleted, apply
		e.isDelta, e.delta, e.applyDelta = false, 0, nil
		return
	}
	e := o.newEntry()
	e.val, e.deleted, e.apply = val, deleted, apply
	o.entries[key] = e
}

// Add buffers a commutative int64 delta against the uint64 counter at key.
// Deltas accumulate; a delta arriving after an absolute Put folds into the
// buffered value instead (read-your-writes for increments after writes).
// applyDelta is invoked at commit with the accumulated delta.
func (o *Overlay) Add(key OverlayKey, delta int64, applyDelta func(delta int64)) {
	e, ok := o.entries[key]
	if !ok {
		e = o.newEntry()
		e.isDelta, e.delta, e.applyDelta = true, delta, applyDelta
		o.entries[key] = e
		return
	}
	if e.isDelta {
		e.delta += delta
		e.applyDelta = applyDelta
		return
	}
	// Fold into the buffered absolute value. Callers verify the slot holds
	// a uint64 counter before buffering a delta; a buffered delete counts
	// as zero (the storage layer's canonical-zero convention).
	cur, _ := e.val.(uint64)
	if e.deleted {
		cur = 0
	}
	e.val, e.deleted = uint64(int64(cur)+delta), false
}

// Get returns the effective buffered absolute value for key across the
// frame chain, if any frame buffered one (newer deltas folded in).
// deleted reports a buffered delete. Pure delta state is not visible
// here — use Delta.
func (o *Overlay) Get(key OverlayKey) (val any, deleted, ok bool) {
	v, del, _, hasAbs, _ := o.lookup(key)
	if !hasAbs {
		return nil, false, false
	}
	return v, del, true
}

// Delta returns the total delta buffered against key across the frame
// chain when no frame holds an absolute entry for it.
func (o *Overlay) Delta(key OverlayKey) (int64, bool) {
	_, _, d, hasAbs, hasDelta := o.lookup(key)
	if hasAbs || !hasDelta {
		return 0, false
	}
	return d, true
}

// Len reports the number of buffered entries.
func (o *Overlay) Len() int { return len(o.entries) }

// Merge folds a committing child overlay into this one; the child's entries
// win on key collisions (the child executed later), except that child
// deltas accumulate into parent deltas or fold into parent absolute values.
func (o *Overlay) Merge(child *Overlay) {
	//chainvet:allow(detmap) Per-key fold: each key occurs once and updates only its own slot in the parent (Add accumulates deltas commutatively), so the merged overlay is identical under any iteration order.
	for k, e := range child.entries {
		if e.isDelta {
			o.Add(k, e.delta, e.applyDelta)
			continue
		}
		o.entries[k] = e
		// Ownership of e transfers to the parent; drop the child's
		// reference so a later child Clear cannot recycle a live entry.
		delete(child.entries, k)
	}
}

// Apply writes every buffered entry to its underlying object, in
// deterministic (object id, key) order, then clears the overlay. For lazy
// speculative transactions the caller must still hold the transaction's
// abstract locks; for OCC transactions the engine's commit round provides
// the required mutual exclusion.
func (o *Overlay) Apply() {
	keys := make([]OverlayKey, 0, len(o.entries))
	for k := range o.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Obj != keys[j].Obj {
			return keys[i].Obj < keys[j].Obj
		}
		return keys[i].Key < keys[j].Key
	})
	for _, k := range keys {
		e := o.entries[k]
		if e.isDelta {
			e.applyDelta(e.delta)
			continue
		}
		e.apply(e.val, e.deleted)
	}
	o.Clear()
}

// Clear discards all buffered entries. The map buckets and entry structs
// are retained for reuse: entries move to the freelist (with their closure
// and value fields zeroed so they pin nothing) and the map is cleared in
// place.
func (o *Overlay) Clear() {
	//chainvet:allow(detmap) Recycling only: entries are zeroed before entering the freelist, so which interchangeable struct a later newEntry pops is unobservable.
	for k, e := range o.entries {
		*e = overlayEntry{}
		o.free = append(o.free, e)
		delete(o.entries, k)
	}
}

// newEntry pops a recycled entry from the freelist, or allocates one.
func (o *Overlay) newEntry() *overlayEntry {
	if n := len(o.free); n > 0 {
		e := o.free[n-1]
		o.free[n-1] = nil
		o.free = o.free[:n-1]
		return e
	}
	return new(overlayEntry)
}
