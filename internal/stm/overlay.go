package stm

import "sort"

// Overlay is a transaction-local write buffer used by PolicyLazy: instead of
// mutating boosted storage in place and logging inverses, writes land here
// and are applied to the underlying object at commit, while reads consult
// the overlay first (read-your-writes). Aborting a lazy transaction simply
// discards the overlay — no inverse replay needed.
//
// Keys are (object id, key) pairs; object ids are allocated by the storage
// layer (one per boosted object). Each entry carries an apply closure bound
// to its object so the overlay itself stays storage-agnostic.
//
// Overlay is owner-thread-local and needs no locking.
type Overlay struct {
	entries map[OverlayKey]*overlayEntry
}

// OverlayKey addresses one semantic unit of one boosted object.
type OverlayKey struct {
	Obj uint64
	Key string
}

type overlayEntry struct {
	val     any
	deleted bool
	apply   func(val any, deleted bool)
}

// NewOverlay returns an empty overlay.
func NewOverlay() *Overlay {
	return &Overlay{entries: make(map[OverlayKey]*overlayEntry)}
}

// Put buffers a write (or delete) of key. apply is invoked at commit with
// the final buffered value; later Puts to the same key replace earlier ones.
func (o *Overlay) Put(key OverlayKey, val any, deleted bool, apply func(val any, deleted bool)) {
	if e, ok := o.entries[key]; ok {
		e.val, e.deleted, e.apply = val, deleted, apply
		return
	}
	o.entries[key] = &overlayEntry{val: val, deleted: deleted, apply: apply}
}

// Get returns the buffered value for key, if any. deleted reports a
// buffered delete.
func (o *Overlay) Get(key OverlayKey) (val any, deleted, ok bool) {
	e, found := o.entries[key]
	if !found {
		return nil, false, false
	}
	return e.val, e.deleted, true
}

// Len reports the number of buffered entries.
func (o *Overlay) Len() int { return len(o.entries) }

// Merge folds a committing child overlay into this one; the child's entries
// win on key collisions (the child executed later).
func (o *Overlay) Merge(child *Overlay) {
	for k, e := range child.entries {
		o.entries[k] = e
	}
}

// Apply writes every buffered entry to its underlying object, in
// deterministic (object id, key) order, then clears the overlay. The caller
// must still hold the transaction's abstract locks.
func (o *Overlay) Apply() {
	keys := make([]OverlayKey, 0, len(o.entries))
	for k := range o.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Obj != keys[j].Obj {
			return keys[i].Obj < keys[j].Obj
		}
		return keys[i].Key < keys[j].Key
	})
	for _, k := range keys {
		e := o.entries[k]
		e.apply(e.val, e.deleted)
	}
	o.Clear()
}

// Clear discards all buffered entries.
func (o *Overlay) Clear() {
	o.entries = make(map[OverlayKey]*overlayEntry)
}
