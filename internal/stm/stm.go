// Package stm implements the paper's speculative execution runtime: a
// from-scratch software-transactional-memory layer in the style of
// transactional boosting (Herlihy & Koskinen, PPoPP'08), specialized for
// smart-contract storage operations.
//
// The central objects are:
//
//   - abstract locks (LockID + Mode): every storage operation maps to an
//     abstract lock chosen so that operations mapping to distinct locks
//     commute (§3 "Storage Operations"). Locks support three modes —
//     exclusive, shared (read) and increment (commutative update) — as
//     allowed by the paper's footnote 3;
//   - inverse logs: each speculative operation records an undo closure;
//     aborting replays the log most-recent-first;
//   - nested speculative actions for contract→contract calls;
//   - use counters and lock profiles: at commit, every held lock's counter
//     is bumped and the (lock, counter, mode) triples are registered, which
//     is exactly the scheduling metadata the miner publishes in the block
//     (§4) and from which the happens-before graph is rebuilt.
//
// The same transaction type also runs in two non-speculative kinds used by
// the serial baseline miner and by the validator's deterministic replay, so
// contract code is written once and executed under all three regimes.
//
// # Deviation from the paper (documented in DESIGN.md)
//
// The paper states that when a nested action aborts "any abstract locks it
// acquired are released". We instead retain a failed child's locks in the
// parent until the parent completes. Releasing them early would let another
// transaction commit a conflicting write that the aborted child had already
// observed, which makes the child's behaviour unreproducible by the
// validator's lock-free deterministic replay. Retaining the locks is
// strictly more conservative: it can only reduce concurrency, never
// correctness, and it makes validation sound.
package stm

import (
	"encoding/hex"
	"errors"
	"fmt"
)

// Mode classifies how a storage operation uses its abstract lock.
type Mode int

const (
	// ModeShared is a read: shared ops on the same lock commute.
	ModeShared Mode = iota + 1
	// ModeIncrement is a commutative update such as "+= d" whose inverse is
	// "-= d". Increments commute with each other but not with reads or
	// writes: a reader interleaved between two increments observes
	// different values depending on order.
	ModeIncrement
	// ModeExclusive is a general read-write operation; it commutes with
	// nothing on the same lock.
	ModeExclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeShared:
		return "shared"
	case ModeIncrement:
		return "increment"
	case ModeExclusive:
		return "exclusive"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Compatible reports whether two operations holding modes a and b on the
// same abstract lock commute. Shared–shared and increment–increment pairs
// commute; every other pairing conflicts.
func Compatible(a, b Mode) bool {
	return a == b && a != ModeExclusive
}

// Combine returns the weakest single mode that subsumes both a and b for a
// transaction that performed operations in both modes on one lock.
func Combine(a, b Mode) Mode {
	if a == b {
		return a
	}
	return ModeExclusive
}

// LockID names an abstract lock. Scope identifies the boosted object (for
// example "ballot/voters") and Key the semantic unit within it (a map key,
// an array index, or "" for a whole scalar). Two storage operations with
// different LockIDs are guaranteed to commute by construction of the
// storage layer.
type LockID struct {
	Scope string
	Key   string
}

// String renders the lock as "scope[key]"; binary keys (addresses,
// hashes, big-endian indices) are hex-encoded for readability.
func (l LockID) String() string {
	key := l.Key
	for i := 0; i < len(key); i++ {
		if key[i] < 0x20 || key[i] > 0x7e {
			key = "0x" + hex.EncodeToString([]byte(l.Key))
			break
		}
	}
	return l.Scope + "[" + key + "]"
}

// Less orders locks lexicographically; used for deterministic profiles.
func (l LockID) Less(other LockID) bool {
	if l.Scope != other.Scope {
		return l.Scope < other.Scope
	}
	return l.Key < other.Key
}

// Kind selects the execution regime a transaction runs under.
type Kind int

const (
	// KindSpeculative is the miner's regime: abstract locks, inverse logs,
	// conflict blocking, deadlock aborts, lock profiles at commit.
	KindSpeculative Kind = iota + 1
	// KindSerial is the baseline regime: no locks, no traces; inverse logs
	// are still kept so a contract throw can revert its own effects.
	KindSerial
	// KindReplay is the validator's regime: no locks; a thread-local trace
	// records the (lock, mode) pairs the transaction would have acquired,
	// for comparison against the miner's published profile.
	KindReplay
	// KindOCC is the optimistic batch regime (Block-STM style): no locks
	// and no blocking. Every write lands in an isolated per-transaction
	// overlay, every access is recorded in a thread-local read/write set
	// (the same trace machinery KindReplay uses), and the engine decides
	// after a validate round whether to apply the buffered writes or
	// discard the attempt and re-execute.
	KindOCC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSpeculative:
		return "speculative"
	case KindSerial:
		return "serial"
	case KindReplay:
		return "replay"
	case KindOCC:
		return "occ"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Policy selects how speculative writes reach the underlying storage.
type Policy int

const (
	// PolicyEager applies operations in place and records inverses,
	// matching the paper's primary design ("The scheme described here is
	// eager", §3).
	PolicyEager Policy = iota + 1
	// PolicyLazy buffers writes in a transaction-local overlay applied at
	// commit, matching the paper's sketched alternative ("An alternative
	// lazy implementation could buffer changes…", §3). Aborts become cheap
	// (drop the overlay) at the price of commit-time work and overlay
	// lookups on every read.
	PolicyLazy
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyEager:
		return "eager"
	case PolicyLazy:
		return "lazy"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ErrDeadlock is returned by Access when granting the request would close a
// cycle in the wait-for graph. The requester is always the victim: it must
// abort (releasing its locks) and may retry.
var ErrDeadlock = errors.New("stm: deadlock detected, transaction must abort")

// ErrTxDone is returned when a finished transaction is used again.
var ErrTxDone = errors.New("stm: transaction already completed")

// Status describes a transaction's lifecycle state.
type Status int

const (
	// StatusActive means the transaction may still perform operations.
	StatusActive Status = iota + 1
	// StatusCommitted means effects are permanent (for a nested action,
	// merged into the parent).
	StatusCommitted
	// StatusAborted means effects were undone and, for a root speculative
	// transaction, its locks were released without bumping use counters:
	// the attempt never becomes part of the discovered schedule.
	StatusAborted
	// StatusReverted means the transaction executed a contract throw: its
	// state effects were undone, but it remains part of the schedule (its
	// locks' use counters were bumped and a profile was produced), because
	// its control flow consumed gas and observed shared state.
	StatusReverted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	case StatusReverted:
		return "reverted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}
