package sched

import (
	"fmt"
	"testing"

	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// BenchmarkAddEdgeHotSpot models the hot-lock edge pattern BuildHappensBefore
// produces for a shared counter written by every transaction: one node
// accumulates an edge to every other, and each edge is re-asserted several
// times (once per repeated lock use). With the linear duplicate scan this
// was quadratic in the hot node's degree; the seen-set makes it linear.
func BenchmarkAddEdgeHotSpot(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := NewGraph(n)
				for rep := 0; rep < 4; rep++ {
					for to := 1; to < n; to++ {
						g.AddEdge(0, to)
					}
				}
				if g.EdgeCount() != n-1 {
					b.Fatalf("edges = %d", g.EdgeCount())
				}
			}
		})
	}
}

// BenchmarkCheckRacesHotLock models a validator race check over a block
// whose transactions all touch one lock exclusively, each several times (a
// ballot counter updated in a loop). Without the (tx, mode) dedup the
// pairwise loop ran over every raw trace entry — (n·uses)² pairs; with it,
// n² over distinct users.
func BenchmarkCheckRacesHotLock(b *testing.B) {
	const repeats = 8
	for _, n := range []int{64, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			g := NewGraph(n)
			for i := 1; i < n; i++ {
				g.AddEdge(i-1, i)
			}
			hot := stm.LockID{Scope: "bench", Key: "hot"}
			traces := make([]stm.Trace, n)
			for i := range traces {
				tr := stm.Trace{Tx: types.TxID(i)}
				for r := 0; r < repeats; r++ {
					tr.Entries = append(tr.Entries, stm.TraceEntry{Lock: hot, Mode: stm.ModeExclusive})
				}
				traces[i] = tr
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := CheckRaces(g, traces); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
