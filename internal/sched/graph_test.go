package sched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"contractstm/internal/stm"
	"contractstm/internal/types"
)

func lock(k string) stm.LockID { return stm.LockID{Scope: "t", Key: k} }

func prof(tx int, entries ...stm.ProfileEntry) stm.Profile {
	return stm.Profile{Tx: types.TxID(tx), Entries: entries}
}

func entry(k string, m stm.Mode, c uint64) stm.ProfileEntry {
	return stm.ProfileEntry{Lock: lock(k), Mode: m, Counter: c}
}

func TestBuildHappensBeforeChainsExclusives(t *testing.T) {
	// Three txs hold lock "a" exclusively with counters 1,2,3: must chain
	// 0 -> 1 -> 2 with no shortcut edge required.
	g, err := BuildHappensBefore(3, []stm.Profile{
		prof(0, entry("a", stm.ModeExclusive, 1)),
		prof(1, entry("a", stm.ModeExclusive, 2)),
		prof(2, entry("a", stm.ModeExclusive, 3)),
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if got := g.Succs(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("succs(0) = %v, want [1]", got)
	}
	if got := g.Succs(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("succs(1) = %v, want [2]", got)
	}
}

func TestBuildHappensBeforeNoEdgesBetweenCompatible(t *testing.T) {
	// Shared(1), Shared(2): no edges. Increment(1), Increment(2) on another
	// lock: no edges either.
	g, err := BuildHappensBefore(4, []stm.Profile{
		prof(0, entry("r", stm.ModeShared, 1)),
		prof(1, entry("r", stm.ModeShared, 2)),
		prof(2, entry("i", stm.ModeIncrement, 1)),
		prof(3, entry("i", stm.ModeIncrement, 2)),
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if g.EdgeCount() != 0 {
		t.Fatalf("edges = %v, want none", g.Edges())
	}
}

func TestBuildHappensBeforeReaderWriterGroups(t *testing.T) {
	// writer(1), reader(2), reader(3), writer(4):
	// w0 -> r1, w0 -> ... edges: w0->r1, w0->r2? No: r1 and r2 form a group
	// with edges from w0 each; w3 gets edges from both readers.
	g, err := BuildHappensBefore(4, []stm.Profile{
		prof(0, entry("a", stm.ModeExclusive, 1)),
		prof(1, entry("a", stm.ModeShared, 2)),
		prof(2, entry("a", stm.ModeShared, 3)),
		prof(3, entry("a", stm.ModeExclusive, 4)),
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	wantEdges := map[Edge]bool{
		{From: 0, To: 1}: true,
		{From: 0, To: 2}: true,
		{From: 1, To: 3}: true,
		{From: 2, To: 3}: true,
	}
	got := g.Edges()
	if len(got) != len(wantEdges) {
		t.Fatalf("edges = %v, want %v", got, wantEdges)
	}
	for _, e := range got {
		if !wantEdges[e] {
			t.Fatalf("unexpected edge %v", e)
		}
	}
}

func TestBuildHappensBeforeSharedThenIncrementConflict(t *testing.T) {
	// Shared and increment modes conflict: must be ordered.
	g, err := BuildHappensBefore(2, []stm.Profile{
		prof(0, entry("a", stm.ModeShared, 1)),
		prof(1, entry("a", stm.ModeIncrement, 2)),
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("edges = %v, want one", g.Edges())
	}
}

func TestBuildHappensBeforeDuplicateCounterRejected(t *testing.T) {
	_, err := BuildHappensBefore(2, []stm.Profile{
		prof(0, entry("a", stm.ModeExclusive, 1)),
		prof(1, entry("a", stm.ModeExclusive, 1)),
	})
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestBuildHappensBeforeOutOfRangeTx(t *testing.T) {
	_, err := BuildHappensBefore(1, []stm.Profile{prof(5, entry("a", stm.ModeShared, 1))})
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestTopoSortDeterministicAndValid(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(3, 1)
	g.AddEdge(1, 0)
	g.AddEdge(4, 0)
	order1, err := TopoSort(g)
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	order2, _ := TopoSort(g)
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatal("TopoSort not deterministic")
		}
	}
	if err := VerifyOrder(g, order1); err != nil {
		t.Fatalf("VerifyOrder on own output: %v", err)
	}
	// Smallest-first tie-break: 2, 3, 4 are sources; 2 first.
	if order1[0] != 2 {
		t.Fatalf("order = %v, want 2 first", order1)
	}
}

func TestTopoSortCyclic(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, err := TopoSort(g); !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestVerifyOrderRejectsBadOrders(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	cases := []struct {
		name  string
		order []types.TxID
		want  error
	}{
		{"reversed edge", []types.TxID{1, 0, 2}, ErrBadOrder},
		{"wrong length", []types.TxID{0, 1}, ErrMalformed},
		{"duplicate", []types.TxID{0, 0, 1}, ErrMalformed},
		{"out of range", []types.TxID{0, 1, 7}, ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := VerifyOrder(g, tc.order); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestCriticalPath(t *testing.T) {
	// 0 -> 1 -> 2 and 3 independent; unit weights: critical path 3.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	unit := []uint64{1, 1, 1, 1}
	cp, err := CriticalPath(g, unit)
	if err != nil || cp != 3 {
		t.Fatalf("CriticalPath = (%d,%v), want 3", cp, err)
	}
	// Weighted: the independent tx 3 dominates.
	cp, err = CriticalPath(g, []uint64{1, 1, 1, 10})
	if err != nil || cp != 10 {
		t.Fatalf("weighted CriticalPath = (%d,%v), want 10", cp, err)
	}
}

func TestReachabilityAndOrdered(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	reach, err := Reachability(g)
	if err != nil {
		t.Fatalf("Reachability: %v", err)
	}
	if !Ordered(reach, 0, 2) {
		t.Error("0 should reach 2 transitively")
	}
	if !Ordered(reach, 2, 0) {
		t.Error("Ordered must be symmetric in its arguments")
	}
	if Ordered(reach, 0, 3) {
		t.Error("3 is independent of 0")
	}
}

func TestCheckRacesDetectsUnorderedConflict(t *testing.T) {
	g := NewGraph(2) // no edges
	traces := []stm.Trace{
		{Tx: 0, Entries: []stm.TraceEntry{{Lock: lock("a"), Mode: stm.ModeExclusive}}},
		{Tx: 1, Entries: []stm.TraceEntry{{Lock: lock("a"), Mode: stm.ModeShared}}},
	}
	if err := CheckRaces(g, traces); !errors.Is(err, ErrRace) {
		t.Fatalf("err = %v, want ErrRace", err)
	}
	// Adding the ordering edge fixes it.
	g.AddEdge(0, 1)
	if err := CheckRaces(g, traces); err != nil {
		t.Fatalf("ordered conflict flagged: %v", err)
	}
}

func TestCheckRacesAllowsCompatibleUnordered(t *testing.T) {
	g := NewGraph(2)
	traces := []stm.Trace{
		{Tx: 0, Entries: []stm.TraceEntry{{Lock: lock("a"), Mode: stm.ModeIncrement}}},
		{Tx: 1, Entries: []stm.TraceEntry{{Lock: lock("a"), Mode: stm.ModeIncrement}}},
	}
	if err := CheckRaces(g, traces); err != nil {
		t.Fatalf("compatible unordered accesses flagged: %v", err)
	}
}

func TestBuildScheduleAndConstructValidatorRoundTrip(t *testing.T) {
	profiles := []stm.Profile{
		prof(0, entry("a", stm.ModeExclusive, 1)),
		prof(1, entry("a", stm.ModeExclusive, 2), entry("b", stm.ModeExclusive, 1)),
		prof(2, entry("b", stm.ModeExclusive, 2)),
		prof(3), // independent
	}
	s, g, err := BuildSchedule(4, profiles)
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	if err := VerifyOrder(g, s.Order); err != nil {
		t.Fatalf("own order invalid: %v", err)
	}
	plan, g2, err := ConstructValidator(4, s)
	if err != nil {
		t.Fatalf("ConstructValidator: %v", err)
	}
	if g2.EdgeCount() != g.EdgeCount() {
		t.Fatalf("round-trip edge count %d != %d", g2.EdgeCount(), g.EdgeCount())
	}
	if len(plan.Preds[1]) != 1 || plan.Preds[1][0] != 0 {
		t.Fatalf("preds(1) = %v, want [0]", plan.Preds[1])
	}
	if len(plan.Preds[3]) != 0 {
		t.Fatalf("preds(3) = %v, want none", plan.Preds[3])
	}
}

func TestConstructValidatorRejectsTamperedSchedules(t *testing.T) {
	s := Schedule{
		Order: []types.TxID{0, 1},
		Edges: []Edge{{From: 1, To: 0}}, // contradicts the order
	}
	if _, _, err := ConstructValidator(2, s); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("err = %v, want ErrBadOrder", err)
	}
	s = Schedule{Order: []types.TxID{0, 1}, Edges: []Edge{{From: 0, To: 9}}}
	if _, _, err := ConstructValidator(2, s); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	// Cyclic H: also rejected (cycle makes VerifyOrder fail for any order).
	s = Schedule{Order: []types.TxID{0, 1}, Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 0}}}
	if _, _, err := ConstructValidator(2, s); err == nil {
		t.Fatal("cyclic schedule accepted")
	}
}

func TestMetrics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	m, err := Metrics(g)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.Transactions != 4 || m.Edges != 1 || m.CriticalPathLen != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.MaxWidth != 2 {
		t.Fatalf("MaxWidth = %f, want 2", m.MaxWidth)
	}
}

// Property: schedules built from random single-lock exclusive profiles are
// always valid chains: topological order sorted by counter.
func TestScheduleChainProperty(t *testing.T) {
	propFn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		perm := rng.Perm(n)
		profiles := make([]stm.Profile, n)
		for i := 0; i < n; i++ {
			profiles[i] = prof(i, entry("a", stm.ModeExclusive, uint64(perm[i]+1)))
		}
		s, g, err := BuildSchedule(n, profiles)
		if err != nil {
			return false
		}
		if err := VerifyOrder(g, s.Order); err != nil {
			return false
		}
		// Order must equal counters ascending.
		for i := 1; i < n; i++ {
			if perm[s.Order[i-1]] >= perm[s.Order[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(propFn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random DAGs (edges only low->high), TopoSort output always
// satisfies VerifyOrder and Reachability agrees with edge transitivity for
// direct edges.
func TestTopoSortProperty(t *testing.T) {
	propFn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := NewGraph(n)
		for i := 0; i < n*2; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a < b {
				g.AddEdge(a, b)
			}
		}
		order, err := TopoSort(g)
		if err != nil {
			return false
		}
		if err := VerifyOrder(g, order); err != nil {
			return false
		}
		reach, err := Reachability(g)
		if err != nil {
			return false
		}
		for from, ss := range g.succs {
			for _, to := range ss {
				if !Ordered(reach, from, to) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(propFn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
