// Package sched builds and validates the scheduling metadata at the heart
// of the paper's proposal: the happens-before graph H derived from the
// miner's lock profiles, the serial order S obtained by topological sort
// (Algorithm 1), and the fork-join plan the validator executes
// (Algorithm 2). It also implements the validator-side safety checks: H
// must be acyclic, S must be one of its topological orders, and the traces
// collected during replay must be race-free under H.
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// Errors reported by graph construction and verification.
var (
	// ErrCyclic reports a cycle in a claimed happens-before graph.
	ErrCyclic = errors.New("sched: happens-before graph is cyclic")
	// ErrBadOrder reports a serial order that is not a topological order of
	// the happens-before graph.
	ErrBadOrder = errors.New("sched: serial order is not a topological order of H")
	// ErrRace reports two conflicting lock accesses unordered by H.
	ErrRace = errors.New("sched: data race: conflicting accesses unordered by happens-before")
	// ErrMalformed reports structurally invalid schedule metadata.
	ErrMalformed = errors.New("sched: malformed schedule")
)

// Edge is one happens-before constraint: From must complete before To runs.
type Edge struct {
	From types.TxID `json:"from"`
	To   types.TxID `json:"to"`
}

// Graph is a happens-before DAG over the transactions 0..N-1 of one block.
type Graph struct {
	n     int
	succs [][]int
	preds [][]int
	// edgeSet dedups AddEdge in O(1); a hot lock (one ballot counter
	// touched by every transaction) otherwise turns the per-edge linear
	// scan of succs[from] quadratic.
	edgeSet map[uint64]struct{}
}

// NewGraph returns an edgeless graph over n transactions.
func NewGraph(n int) *Graph {
	return &Graph{
		n:       n,
		succs:   make([][]int, n),
		preds:   make([][]int, n),
		edgeSet: make(map[uint64]struct{}),
	}
}

// N returns the number of transactions.
func (g *Graph) N() int { return g.n }

// AddEdge inserts from→to, ignoring duplicates and self-edges.
func (g *Graph) AddEdge(from, to int) {
	if from == to || from < 0 || to < 0 || from >= g.n || to >= g.n {
		return
	}
	key := uint64(from)<<32 | uint64(to)
	if _, dup := g.edgeSet[key]; dup {
		return
	}
	g.edgeSet[key] = struct{}{}
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
}

// Preds returns tx's immediate happens-before predecessors, sorted.
func (g *Graph) Preds(tx int) []int {
	out := append([]int(nil), g.preds[tx]...)
	sort.Ints(out)
	return out
}

// Succs returns tx's immediate successors, sorted.
func (g *Graph) Succs(tx int) []int {
	out := append([]int(nil), g.succs[tx]...)
	sort.Ints(out)
	return out
}

// Edges returns all edges sorted by (from, to); the canonical encoding for
// blocks.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for from, ss := range g.succs {
		for _, to := range ss {
			out = append(out, Edge{From: types.TxID(from), To: types.TxID(to)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, ss := range g.succs {
		n += len(ss)
	}
	return n
}

// GraphFromEdges rebuilds a graph from its canonical edge list (validator
// side). It rejects out-of-range endpoints.
func GraphFromEdges(n int, edges []Edge) (*Graph, error) {
	g := NewGraph(n)
	for _, e := range edges {
		if int(e.From) >= n || int(e.To) >= n || e.From == e.To {
			return nil, fmt.Errorf("%w: edge %d->%d with %d transactions", ErrMalformed, e.From, e.To, n)
		}
		g.AddEdge(int(e.From), int(e.To))
	}
	return g, nil
}

// holderRec is one committed transaction's use of one lock.
type holderRec struct {
	tx      int
	mode    stm.Mode
	counter uint64
}

// BuildHappensBefore derives H from the lock profiles the transactions
// registered at commit (§4): for each abstract lock, committed holders are
// ordered by use counter, runs of mutually-compatible holders (same
// non-exclusive mode) are grouped, and each holder gets an edge from every
// member of the immediately preceding conflicting group. Compatible holders
// get no mutual edges — that is what keeps Ballot's commuting vote
// increments parallel for the validator too.
func BuildHappensBefore(n int, profiles []stm.Profile) (*Graph, error) {
	perLock := make(map[stm.LockID][]holderRec)
	for _, p := range profiles {
		if int(p.Tx) >= n {
			return nil, fmt.Errorf("%w: profile for %s with %d transactions", ErrMalformed, p.Tx, n)
		}
		for _, e := range p.Entries {
			perLock[e.Lock] = append(perLock[e.Lock], holderRec{tx: int(p.Tx), mode: e.Mode, counter: e.Counter})
		}
	}
	g := NewGraph(n)
	//chainvet:allow(detmap) Edge-set union: each lock contributes its own edges (ordered within the lock by use counter), and AddEdge into the adjacency set commutes across locks, so the resulting graph is order-independent.
	for lock, hs := range perLock {
		sort.Slice(hs, func(i, j int) bool { return hs[i].counter < hs[j].counter })
		for i := 1; i < len(hs); i++ {
			if hs[i].counter == hs[i-1].counter {
				return nil, fmt.Errorf("%w: duplicate counter %d on lock %s", ErrMalformed, hs[i].counter, lock)
			}
		}
		var prevGroup, curGroup []holderRec
		for _, h := range hs {
			if len(curGroup) > 0 && !stm.Compatible(curGroup[0].mode, h.mode) {
				prevGroup, curGroup = curGroup, nil
			}
			for _, p := range prevGroup {
				g.AddEdge(p.tx, h.tx)
			}
			curGroup = append(curGroup, h)
		}
	}
	return g, nil
}

// txHeap is a min-heap of transaction ids for deterministic Kahn sorting.
type txHeap []int

func (h txHeap) Len() int            { return len(h) }
func (h txHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h txHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *txHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *txHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopoSort returns the deterministic topological order of g (Kahn's
// algorithm, smallest-id-first tie-breaking), or ErrCyclic.
func TopoSort(g *Graph) ([]types.TxID, error) {
	indeg := make([]int, g.n)
	for _, ss := range g.succs {
		for _, to := range ss {
			indeg[to]++
		}
	}
	h := &txHeap{}
	for i := 0; i < g.n; i++ {
		if indeg[i] == 0 {
			heap.Push(h, i)
		}
	}
	order := make([]types.TxID, 0, g.n)
	for h.Len() > 0 {
		v := heap.Pop(h).(int)
		order = append(order, types.TxID(v))
		for _, to := range g.succs[v] {
			indeg[to]--
			if indeg[to] == 0 {
				heap.Push(h, to)
			}
		}
	}
	if len(order) != g.n {
		return nil, fmt.Errorf("%w: %d of %d transactions ordered", ErrCyclic, len(order), g.n)
	}
	return order, nil
}

// VerifyOrder checks that order is a permutation of 0..N-1 and a
// topological order of g.
func VerifyOrder(g *Graph, order []types.TxID) error {
	if len(order) != g.n {
		return fmt.Errorf("%w: order has %d entries for %d transactions", ErrMalformed, len(order), g.n)
	}
	pos := make([]int, g.n)
	seen := make([]bool, g.n)
	for i, tx := range order {
		if int(tx) >= g.n || seen[tx] {
			return fmt.Errorf("%w: entry %d (%s)", ErrMalformed, i, tx)
		}
		seen[tx] = true
		pos[tx] = i
	}
	for from, ss := range g.succs {
		for _, to := range ss {
			if pos[from] >= pos[to] {
				return fmt.Errorf("%w: edge %d->%d but positions %d>=%d", ErrBadOrder, from, to, pos[from], pos[to])
			}
		}
	}
	return nil
}

// CriticalPath returns the weight of the heaviest path through g, where
// weight[i] is transaction i's cost (use 1 for hop counts). It is the
// validator's inherent lower bound on parallel execution time, and the
// paper suggests rewarding miners for schedules with short critical paths.
func CriticalPath(g *Graph, weight []uint64) (uint64, error) {
	if len(weight) != g.n {
		return 0, fmt.Errorf("%w: %d weights for %d transactions", ErrMalformed, len(weight), g.n)
	}
	order, err := TopoSort(g)
	if err != nil {
		return 0, err
	}
	finish := make([]uint64, g.n)
	var max uint64
	for _, tx := range order {
		v := int(tx)
		var start uint64
		for _, p := range g.preds[v] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[v] = start + weight[v]
		if finish[v] > max {
			max = finish[v]
		}
	}
	return max, nil
}

// Reachability computes the transitive closure of g as bitsets: bit t of
// row f reports f⇝t. O(V·E/64); blocks are at most a few hundred
// transactions, so rows are a handful of words.
func Reachability(g *Graph) ([][]uint64, error) {
	order, err := TopoSort(g)
	if err != nil {
		return nil, err
	}
	words := (g.n + 63) / 64
	reach := make([][]uint64, g.n)
	for i := range reach {
		reach[i] = make([]uint64, words)
	}
	// Walk in reverse topological order: successors are final when visited.
	for i := len(order) - 1; i >= 0; i-- {
		v := int(order[i])
		row := reach[v]
		for _, s := range g.succs[v] {
			row[s/64] |= 1 << (uint(s) % 64)
			for w, bits := range reach[s] {
				row[w] |= bits
			}
		}
	}
	return reach, nil
}

// Ordered reports whether a⇝b or b⇝a in the closure.
func Ordered(reach [][]uint64, a, b int) bool {
	if reach[a][b/64]&(1<<(uint(b)%64)) != 0 {
		return true
	}
	return reach[b][a/64]&(1<<(uint(a)%64)) != 0
}

// CheckRaces verifies that every pair of transactions whose traces touch
// the same lock in conflicting modes is ordered by H. This is the
// validator's "data race (an unsynchronized concurrent access)" check (§5).
func CheckRaces(g *Graph, traces []stm.Trace) error {
	reach, err := Reachability(g)
	if err != nil {
		return err
	}
	type use struct {
		tx   int
		mode stm.Mode
	}
	// Dedup repeat (tx, mode) uses of one lock while grouping: a
	// transaction hammering one hot lock contributes one entry per mode,
	// not one per access, keeping the pairwise check below quadratic only
	// in *distinct* users rather than in raw trace length.
	type lockUse struct {
		lock stm.LockID
		u    use
	}
	perLock := make(map[stm.LockID][]use)
	seen := make(map[lockUse]struct{})
	for _, tr := range traces {
		if int(tr.Tx) >= g.n {
			return fmt.Errorf("%w: trace for %s with %d transactions", ErrMalformed, tr.Tx, g.n)
		}
		for _, e := range tr.Entries {
			lu := lockUse{lock: e.Lock, u: use{tx: int(tr.Tx), mode: e.Mode}}
			if _, dup := seen[lu]; dup {
				continue
			}
			seen[lu] = struct{}{}
			perLock[e.Lock] = append(perLock[e.Lock], lu.u)
		}
	}
	//chainvet:allow(detmap) ∃-check: the accept/reject verdict is a conjunction over all lock-use pairs, so iteration order can only change which offending pair an ErrRace names, never whether the block verifies.
	for lock, uses := range perLock {
		for i := 0; i < len(uses); i++ {
			for j := i + 1; j < len(uses); j++ {
				a, b := uses[i], uses[j]
				if a.tx == b.tx || stm.Compatible(a.mode, b.mode) {
					continue
				}
				if !Ordered(reach, a.tx, b.tx) {
					return fmt.Errorf("%w: %s and %s on lock %s (%s vs %s)",
						ErrRace, types.TxID(a.tx), types.TxID(b.tx), lock, a.mode, b.mode)
				}
			}
		}
	}
	return nil
}

// Schedule bundles the miner's published metadata: the serial order S and
// the happens-before edges of H (Algorithm 1's output, stored in the
// block).
type Schedule struct {
	Order []types.TxID `json:"order"`
	Edges []Edge       `json:"edges"`
}

// BuildSchedule runs the data half of Algorithm 1: derive H from the
// profiles and produce the serial order S by topological sort.
func BuildSchedule(n int, profiles []stm.Profile) (Schedule, *Graph, error) {
	g, err := BuildHappensBefore(n, profiles)
	if err != nil {
		return Schedule{}, nil, err
	}
	order, err := TopoSort(g)
	if err != nil {
		return Schedule{}, nil, err
	}
	return Schedule{Order: order, Edges: g.Edges()}, g, nil
}

// Plan is the validator's fork-join program (Algorithm 2): for each
// transaction, the tasks it must join before executing. Preds is indexed by
// transaction id.
type Plan struct {
	Order []types.TxID
	Preds [][]int
}

// ConstructValidator compiles a published schedule into a fork-join plan,
// verifying the schedule's integrity first (H acyclic and S one of its
// topological orders). This is Algorithm 2.
func ConstructValidator(n int, s Schedule) (Plan, *Graph, error) {
	g, err := GraphFromEdges(n, s.Edges)
	if err != nil {
		return Plan{}, nil, err
	}
	if err := VerifyOrder(g, s.Order); err != nil {
		return Plan{}, nil, err
	}
	plan := Plan{Order: s.Order, Preds: make([][]int, n)}
	for tx := 0; tx < n; tx++ {
		plan.Preds[tx] = g.Preds(tx)
	}
	return plan, g, nil
}

// ParallelismMetrics summarizes a schedule's inherent parallelism; the
// paper proposes rewarding miners by critical-path length, and
// cmd/scheduleviz prints these.
type ParallelismMetrics struct {
	// Transactions is the block size.
	Transactions int
	// Edges is the number of happens-before constraints.
	Edges int
	// CriticalPathLen is the longest chain length (unit weights).
	CriticalPathLen uint64
	// MaxWidth is Transactions/CriticalPathLen rounded up — an upper bound
	// proxy for achievable speedup.
	MaxWidth float64
}

// Metrics computes ParallelismMetrics for g.
func Metrics(g *Graph) (ParallelismMetrics, error) {
	weights := make([]uint64, g.n)
	for i := range weights {
		weights[i] = 1
	}
	cp, err := CriticalPath(g, weights)
	if err != nil {
		return ParallelismMetrics{}, err
	}
	m := ParallelismMetrics{
		Transactions:    g.n,
		Edges:           g.EdgeCount(),
		CriticalPathLen: cp,
	}
	if cp > 0 {
		m.MaxWidth = float64(g.n) / float64(cp)
	}
	return m, nil
}
