// Package contract is the smart-contract execution framework: the analogue
// of the paper's JVM/Scala contract host (§6). It provides the world state
// (account balances plus a contract registry), the per-invocation
// environment (msg context, gas, throw/revert), nested contract calls as
// nested speculative actions, and the execution wrapper that converts a
// contract invocation into a committed, reverted, or retryable transaction.
//
// # Control flow
//
// Contract code is written in direct style, like Solidity: it does not
// thread errors. Inside a contract function, failures are panics carrying
// typed signals, recovered exactly once at the transaction boundary
// (Execute) or the nested-call boundary (Env.CallContract):
//
//   - Throw / Require / storage failures → the transaction reverts
//     (effects undone, gas consumed, still part of the block schedule);
//   - abstract-lock deadlock → the speculative attempt aborts and the miner
//     retries it (invisible to contract authors);
//   - out of gas → revert, with the whole gas limit consumed.
//
// This mirrors the paper's prototype, where "the Solidity throw operation
// … is emulated by throwing a Java runtime exception caught by the miner".
package contract

import (
	"errors"
	"fmt"

	"contractstm/internal/gas"
	"contractstm/internal/stm"
	"contractstm/internal/storage"
	"contractstm/internal/types"
)

// Msg is the invocation context available to contract code, mirroring
// Solidity's msg global.
type Msg struct {
	// Sender is the account that (directly) invoked the current frame: the
	// transaction's sender, or the calling contract for nested calls.
	Sender types.Address
	// Value is the currency amount attached to the call.
	Value types.Amount
}

// Contract is a deployed smart contract: a named set of functions over
// boosted storage. Implementations dispatch on the function name and panic
// via Env.Throw for contract-level failures.
type Contract interface {
	// ContractAddress returns the contract's account address.
	ContractAddress() types.Address
	// Invoke runs the named function. It returns the function's result and
	// panics (through Env helpers) to signal throws.
	Invoke(env *Env, function string, args []any) any
}

// Call describes one requested contract invocation: the unit the miner
// packs into blocks ("transaction" in blockchain terms, §1 fn. 1).
type Call struct {
	// Sender is the externally-owned account issuing the call.
	Sender types.Address
	// Contract is the callee's address.
	Contract types.Address
	// Function is the contract function name.
	Function string
	// Args are the function arguments (uint64, string, bool,
	// types.Address, types.Hash or types.Amount).
	Args []any
	// Value is the currency attached to the call.
	Value types.Amount
	// GasLimit bounds the call's execution steps.
	GasLimit gas.Gas
}

// EncodeForHash renders the call canonically for Merkle commitment.
func (c Call) EncodeForHash() []byte {
	out := c.Sender.Bytes()
	out = append(out, c.Contract.Bytes()...)
	out = append(out, byte(len(c.Function)))
	out = append(out, c.Function...)
	out = append(out, types.Uint64Bytes(uint64(c.Value))...)
	out = append(out, types.Uint64Bytes(uint64(c.GasLimit))...)
	for _, a := range c.Args {
		out = append(out, encodeArg(a)...)
	}
	return out
}

// encodeArg canonically encodes one argument with a type tag.
func encodeArg(a any) []byte {
	switch x := a.(type) {
	case uint64:
		return append([]byte{0x01}, types.Uint64Bytes(x)...)
	case int:
		return append([]byte{0x02}, types.Uint64Bytes(uint64(x))...)
	case bool:
		if x {
			return []byte{0x03, 1}
		}
		return []byte{0x03, 0}
	case string:
		out := append([]byte{0x04}, types.Uint32Bytes(uint32(len(x)))...)
		return append(out, x...)
	case types.Address:
		return append([]byte{0x05}, x.Bytes()...)
	case types.Hash:
		return append([]byte{0x06}, x.Bytes()...)
	case types.Amount:
		return append([]byte{0x07}, types.Uint64Bytes(uint64(x))...)
	default:
		// Unknown argument types hash by their formatted representation;
		// contracts validate argument types themselves at invoke time.
		s := fmt.Sprintf("%T:%v", a, a)
		out := append([]byte{0xff}, types.Uint32Bytes(uint32(len(s)))...)
		return append(out, s...)
	}
}

// World is the global chain state: balances, deployed contracts, and the
// store that owns all boosted objects.
type World struct {
	store     *storage.Store
	balances  *storage.Map
	contracts map[types.Address]Contract
	sched     gas.Schedule
}

// NewWorld creates an empty world using the given cost schedule.
func NewWorld(sched gas.Schedule) (*World, error) {
	store := storage.NewStore()
	balances, err := storage.NewMap(store, "world/balances")
	if err != nil {
		return nil, err
	}
	return &World{
		store:     store,
		balances:  balances,
		contracts: make(map[types.Address]Contract),
		sched:     sched,
	}, nil
}

// Store returns the world's boosted-object store.
func (w *World) Store() *storage.Store { return w.store }

// Schedule returns the world's gas schedule.
func (w *World) Schedule() gas.Schedule { return w.sched }

// Deploy registers a contract. Deployment is a setup-time operation, not a
// transaction (the paper's benchmarks likewise pre-initialize contracts).
func (w *World) Deploy(c Contract) error {
	addr := c.ContractAddress()
	if _, dup := w.contracts[addr]; dup {
		return fmt.Errorf("contract: address %s already deployed", addr)
	}
	w.contracts[addr] = c
	return nil
}

// ContractAt returns the contract deployed at addr.
func (w *World) ContractAt(addr types.Address) (Contract, bool) {
	c, ok := w.contracts[addr]
	return c, ok
}

// Mint credits an account outside any transaction (genesis/setup only).
func (w *World) Mint(th stm.Executor, addr types.Address, amount types.Amount) error {
	return w.balances.AddUint(th, storage.KeyAddr(addr), uint64(amount))
}

// BalanceOf reads an account balance transactionally.
func (w *World) BalanceOf(ex stm.Executor, addr types.Address) (types.Amount, error) {
	n, err := w.balances.GetUint(ex, storage.KeyAddr(addr))
	return types.Amount(n), err
}

// StateRoot commits to the full world state.
func (w *World) StateRoot() (types.Hash, error) { return w.store.StateRoot() }

// Snapshot and Restore delegate to the store (benchmark plumbing).
func (w *World) Snapshot() storage.Snapshot { return w.store.Snapshot() }
func (w *World) Restore(s storage.Snapshot) { w.store.Restore(s) }

// EncodeState renders the full world state as self-describing bytes for
// durable persistence (state snapshots). The world must be quiescent —
// at a block boundary, no transactions in flight.
func (w *World) EncodeState() ([]byte, error) {
	return w.store.EncodeSnapshot(w.store.Snapshot())
}

// RestoreState replaces the world state with previously encoded state.
// The decoding world must have been built by the same genesis setup
// (same objects, same contracts); mismatches are errors, not silent
// corruption. Contract code and balances-of-record both live in the
// store, so this is a complete state replacement.
func (w *World) RestoreState(data []byte) error {
	snap, err := w.store.DecodeSnapshot(data)
	if err != nil {
		return fmt.Errorf("contract: restore state: %w", err)
	}
	w.store.Restore(snap)
	return nil
}

// throwSignal is the panic payload of a contract throw.
type throwSignal struct{ reason string }

// retrySignal is the panic payload of a speculative conflict abort
// (deadlock); the miner retries the transaction.
type retrySignal struct{ err error }

// Env is the per-frame execution environment handed to contract functions.
type Env struct {
	world *World
	tx    *stm.Tx
	msg   Msg
	// self is the currently-executing contract's address (msg.sender for
	// its nested calls).
	self types.Address
	// depth counts nested call frames; bounded like the EVM's call depth.
	depth int
}

// MaxCallDepth bounds nested contract calls, mirroring the EVM's limit
// (1024 there; smaller here because simulated workloads never approach it).
const MaxCallDepth = 128

// newEnv builds the root environment for a transaction.
func newEnv(w *World, tx *stm.Tx, call Call) *Env {
	return &Env{
		world: w,
		tx:    tx,
		msg:   Msg{Sender: call.Sender, Value: call.Value},
		self:  call.Contract,
	}
}

// Msg returns the current invocation context.
func (e *Env) Msg() Msg { return e.msg }

// Self returns the executing contract's address.
func (e *Env) Self() types.Address { return e.self }

// Ex returns the stm executor for direct storage operations.
func (e *Env) Ex() stm.Executor { return e.tx }

// World returns the world (read-only registry access for contracts).
func (e *Env) World() *World { return e.world }

// Throw aborts the current transaction like Solidity's throw: effects are
// rolled back and the transaction is recorded as reverted.
func (e *Env) Throw(format string, args ...any) {
	panic(throwSignal{reason: fmt.Sprintf(format, args...)})
}

// Require throws unless cond holds.
func (e *Env) Require(cond bool, reason string) {
	if !cond {
		e.Throw("%s", reason)
	}
}

// Do checks a storage/stm error inside contract code: deadlocks become
// retry signals (handled by the miner), everything else becomes a throw.
func (e *Env) Do(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, stm.ErrDeadlock) {
		panic(retrySignal{err: err})
	}
	// Out of gas, out of range, type errors: contract-level throw.
	panic(throwSignal{reason: err.Error()})
}

// UseGas charges n computation steps (hash rounds, loop iterations, …).
func (e *Env) UseGas(n uint64) {
	e.Do(e.tx.ChargeStep(n))
}

// Balance returns an account's balance.
func (e *Env) Balance(addr types.Address) types.Amount {
	amt, err := e.world.BalanceOf(e.tx, addr)
	e.Do(err)
	return amt
}

// Transfer moves amount from the executing contract's account to `to`,
// throwing on insufficient balance. The debit is exclusive (it reads the
// balance); the credit is a commutative increment.
func (e *Env) Transfer(to types.Address, amount types.Amount) {
	e.transferFrom(e.self, to, amount)
}

// TransferFromSender moves amount from msg.sender to `to` (used to collect
// payments attached conceptually to a call).
func (e *Env) TransferFromSender(to types.Address, amount types.Amount) {
	e.transferFrom(e.msg.Sender, to, amount)
}

func (e *Env) transferFrom(from, to types.Address, amount types.Amount) {
	if amount == 0 {
		return
	}
	err := e.world.balances.SubUint(e.tx, storage.KeyAddr(from), uint64(amount))
	if err != nil && errors.Is(err, storage.ErrUnderflow) {
		e.Throw("insufficient balance: %s needs %d: %v", from.Short(), amount, err)
	}
	e.Do(err)
	e.Do(e.world.balances.AddUint(e.tx, storage.KeyAddr(to), uint64(amount)))
}

// CallContract invokes another contract as a nested speculative action
// (§3): the callee can commit or abort independently; a callee throw is
// reported to the caller as an error with the caller's effects intact.
// Deadlock signals propagate — the whole transaction retries.
func (e *Env) CallContract(target types.Address, function string, args ...any) (result any, err error) {
	if e.depth+1 > MaxCallDepth {
		e.Throw("call depth %d exceeds limit", e.depth+1)
	}
	e.Do(e.tx.ChargeStep(uint64(e.world.sched.Call)))
	callee, ok := e.world.contracts[target]
	if !ok {
		e.Throw("no contract at %s", target.Short())
	}
	child, nerr := e.tx.BeginNested()
	e.Do(nerr)
	childEnv := &Env{
		world: e.world,
		tx:    child,
		msg:   Msg{Sender: e.self},
		self:  target,
		depth: e.depth + 1,
	}
	defer func() {
		r := recover()
		switch sig := r.(type) {
		case nil:
			err = child.Commit()
		case throwSignal:
			if aerr := child.Abort(); aerr != nil {
				panic(aerr)
			}
			result = nil
			err = fmt.Errorf("contract: callee threw: %s", sig.reason)
		default:
			// retrySignal and genuine bugs unwind through the caller.
			if child.Status() == stm.StatusActive {
				_ = child.Abort()
			}
			panic(r)
		}
	}()
	result = callee.Invoke(childEnv, function, args)
	return result, nil
}
