package contract

import (
	"fmt"

	"contractstm/internal/gas"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// OutcomeKind classifies how a transaction execution ended.
type OutcomeKind int

const (
	// OutcomeCommitted means the contract function completed and its
	// effects are permanent.
	OutcomeCommitted OutcomeKind = iota + 1
	// OutcomeReverted means the contract threw (or ran out of gas): its
	// effects were undone, but the transaction stays in the block and in
	// the published schedule.
	OutcomeReverted
	// OutcomeRetry means a speculative conflict (deadlock victim) aborted
	// the attempt; the miner must re-execute. Never surfaces to blocks.
	OutcomeRetry
)

// String implements fmt.Stringer.
func (k OutcomeKind) String() string {
	switch k {
	case OutcomeCommitted:
		return "committed"
	case OutcomeReverted:
		return "reverted"
	case OutcomeRetry:
		return "retry"
	default:
		return fmt.Sprintf("outcome(%d)", int(k))
	}
}

// Outcome is the result of executing one transaction attempt.
type Outcome struct {
	Kind OutcomeKind
	// Result is the contract function's return value (committed only).
	Result any
	// Reason is the throw reason (reverted) or conflict description
	// (retry).
	Reason string
	// GasUsed is the gas consumed by the attempt.
	GasUsed gas.Gas
}

// Receipt is the durable, consensus-relevant digest of an execution,
// stored in the block and re-derived (and checked) by validators.
type Receipt struct {
	Tx       types.TxID `json:"tx"`
	Reverted bool       `json:"reverted"`
	GasUsed  gas.Gas    `json:"gasUsed"`
	Reason   string     `json:"reason,omitempty"`
}

// EncodeForHash renders the receipt canonically for Merkle commitment.
// The human-readable Reason is deliberately excluded: equivalent reverts
// must hash identically across implementations.
func (r Receipt) EncodeForHash() []byte {
	out := types.Uint32Bytes(uint32(r.Tx))
	if r.Reverted {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return append(out, types.Uint64Bytes(uint64(r.GasUsed))...)
}

// Execute runs one contract call under an already-begun root transaction
// and settles it: Commit on success, Revert on a contract throw, Abort on a
// speculative conflict. It never lets contract panics escape except for
// genuine bugs (non-signal panics), which propagate.
func Execute(w *World, tx *stm.Tx, call Call) (out Outcome) {
	defer func() {
		r := recover()
		switch sig := r.(type) {
		case nil:
			return
		case throwSignal:
			if err := tx.Revert(); err != nil {
				panic(fmt.Sprintf("contract: revert after throw failed: %v", err))
			}
			out = Outcome{Kind: OutcomeReverted, Reason: sig.reason, GasUsed: tx.Meter().Used()}
		case retrySignal:
			if err := tx.Abort(); err != nil {
				panic(fmt.Sprintf("contract: abort after conflict failed: %v", err))
			}
			out = Outcome{Kind: OutcomeRetry, Reason: sig.err.Error(), GasUsed: tx.Meter().Used()}
		default:
			panic(r)
		}
	}()

	env := newEnv(w, tx, call)
	env.Do(tx.ChargeStep(uint64(w.sched.TxBase)))

	callee, ok := w.contracts[call.Contract]
	if !ok {
		env.Throw("no contract at %s", call.Contract.Short())
	}
	if call.Value > 0 {
		env.TransferFromSender(call.Contract, call.Value)
	}
	result := callee.Invoke(env, call.Function, call.Args)
	if err := tx.Commit(); err != nil {
		panic(fmt.Sprintf("contract: commit failed: %v", err))
	}
	return Outcome{Kind: OutcomeCommitted, Result: result, GasUsed: tx.Meter().Used()}
}

// ReceiptFor converts an outcome into the block receipt for tx id.
func ReceiptFor(id types.TxID, out Outcome) Receipt {
	return Receipt{
		Tx:       id,
		Reverted: out.Kind == OutcomeReverted,
		GasUsed:  out.GasUsed,
		Reason:   out.Reason,
	}
}
