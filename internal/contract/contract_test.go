package contract

import (
	"fmt"
	"strings"
	"testing"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/storage"
	"contractstm/internal/types"
)

// counterContract is a minimal test contract: a named counter with an
// increment guarded by an owner check, a failing function, and a nested
// call into another counter.
type counterContract struct {
	addr  types.Address
	owner types.Address
	count *storage.Map
}

func newCounter(t *testing.T, w *World, addr, owner types.Address) *counterContract {
	t.Helper()
	m, err := storage.NewMap(w.Store(), "counter/"+addr.Short())
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	c := &counterContract{addr: addr, owner: owner, count: m}
	if err := w.Deploy(c); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return c
}

func (c *counterContract) ContractAddress() types.Address { return c.addr }

func (c *counterContract) Invoke(env *Env, fn string, args []any) any {
	switch fn {
	case "inc":
		env.Do(c.count.AddUint(env.Ex(), "n", args[0].(uint64)))
		return nil
	case "incThenThrow":
		env.Do(c.count.AddUint(env.Ex(), "n", 5))
		env.Throw("deliberate failure")
		return nil
	case "get":
		n, err := c.count.GetUint(env.Ex(), "n")
		env.Do(err)
		return n
	case "ownerOnly":
		env.Require(env.Msg().Sender == c.owner, "not owner")
		return nil
	case "burn":
		env.UseGas(args[0].(uint64))
		return nil
	case "callOther":
		res, err := env.CallContract(args[0].(types.Address), args[1].(string), args[2:]...)
		if err != nil {
			// Swallow the callee's failure; caller proceeds (CALL-style).
			return err.Error()
		}
		return res
	case "callOtherStrict":
		res, err := env.CallContract(args[0].(types.Address), args[1].(string), args[2:]...)
		if err != nil {
			env.Throw("propagating callee failure: %v", err)
		}
		return res
	case "pay":
		env.Transfer(args[0].(types.Address), args[1].(types.Amount))
		return nil
	case "forceRetry":
		env.Do(fmt.Errorf("synthetic conflict: %w", stm.ErrDeadlock))
		return nil
	case "recurse":
		if _, err := env.CallContract(c.addr, "recurse"); err != nil {
			env.Throw("%v", err)
		}
		return nil
	default:
		env.Throw("unknown function %q", fn)
		return nil
	}
}

// execOne runs one call speculatively on a single simulated thread against
// a fresh manager and returns the outcome.
func execOne(t *testing.T, w *World, call Call) Outcome {
	t.Helper()
	var out Outcome
	mgr := stm.NewManager(w.Schedule())
	_, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSpeculative(mgr, 0, th, gas.NewMeter(call.GasLimit), stm.PolicyEager)
		out = Execute(w, tx, call)
	})
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	return out
}

func testWorld(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(gas.DefaultSchedule())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

var (
	addrA  = types.AddressFromUint64(1)
	addrB  = types.AddressFromUint64(2)
	sender = types.AddressFromUint64(100)
)

func TestExecuteCommit(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	out := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "inc", Args: []any{uint64(3)}, GasLimit: 100_000})
	if out.Kind != OutcomeCommitted {
		t.Fatalf("outcome = %+v, want committed", out)
	}
	if out.GasUsed == 0 {
		t.Fatal("committed call used no gas")
	}
	got := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "get", GasLimit: 100_000})
	if got.Result.(uint64) != 3 {
		t.Fatalf("counter = %v, want 3", got.Result)
	}
}

func TestExecuteThrowRevertsState(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	rootBefore, _ := w.StateRoot()
	out := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "incThenThrow", GasLimit: 100_000})
	if out.Kind != OutcomeReverted {
		t.Fatalf("outcome = %+v, want reverted", out)
	}
	if !strings.Contains(out.Reason, "deliberate failure") {
		t.Fatalf("reason = %q", out.Reason)
	}
	rootAfter, _ := w.StateRoot()
	if rootBefore != rootAfter {
		t.Fatal("throw did not revert state")
	}
}

func TestExecuteRequire(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	ok := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "ownerOnly", GasLimit: 100_000})
	if ok.Kind != OutcomeCommitted {
		t.Fatalf("owner call = %+v", ok)
	}
	bad := execOne(t, w, Call{Sender: addrB, Contract: addrA, Function: "ownerOnly", GasLimit: 100_000})
	if bad.Kind != OutcomeReverted || !strings.Contains(bad.Reason, "not owner") {
		t.Fatalf("non-owner call = %+v", bad)
	}
}

func TestExecuteOutOfGas(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	out := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "burn", Args: []any{uint64(1_000_000)}, GasLimit: 500})
	if out.Kind != OutcomeReverted {
		t.Fatalf("outcome = %+v, want reverted on out-of-gas", out)
	}
	if out.GasUsed != 500 {
		t.Fatalf("gas used = %d, want full limit 500", out.GasUsed)
	}
}

func TestExecuteUnknownContract(t *testing.T) {
	w := testWorld(t)
	out := execOne(t, w, Call{Sender: sender, Contract: addrB, Function: "x", GasLimit: 100_000})
	if out.Kind != OutcomeReverted || !strings.Contains(out.Reason, "no contract") {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestExecuteUnknownFunction(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	out := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "nope", GasLimit: 100_000})
	if out.Kind != OutcomeReverted || !strings.Contains(out.Reason, "unknown function") {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestExecuteRetrySignal(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	out := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "forceRetry", GasLimit: 100_000})
	if out.Kind != OutcomeRetry {
		t.Fatalf("outcome = %+v, want retry", out)
	}
}

func TestTransfers(t *testing.T) {
	w := testWorld(t)
	c := newCounter(t, w, addrA, sender)
	_ = c
	// Seed the contract's balance at genesis.
	_, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSerial(0, th, gas.NewMeter(1_000_000), w.Schedule())
		if err := w.Mint(tx, addrA, 100); err != nil {
			t.Errorf("Mint: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "pay", Args: []any{addrB, types.Amount(40)}, GasLimit: 100_000})
	if out.Kind != OutcomeCommitted {
		t.Fatalf("pay = %+v", out)
	}
	// Check balances.
	_, err = runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSerial(1, th, gas.NewMeter(1_000_000), w.Schedule())
		a, _ := w.BalanceOf(tx, addrA)
		b, _ := w.BalanceOf(tx, addrB)
		if a != 60 || b != 40 {
			t.Errorf("balances = %d/%d, want 60/40", a, b)
		}
		_ = tx.Commit()
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Overdraft throws and rolls back.
	out = execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "pay", Args: []any{addrB, types.Amount(1000)}, GasLimit: 100_000})
	if out.Kind != OutcomeReverted || !strings.Contains(out.Reason, "insufficient balance") {
		t.Fatalf("overdraft = %+v", out)
	}
}

func TestNestedCallCommits(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	newCounter(t, w, addrB, sender)
	out := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "callOther",
		Args: []any{addrB, "inc", uint64(9)}, GasLimit: 100_000})
	if out.Kind != OutcomeCommitted {
		t.Fatalf("outcome = %+v", out)
	}
	got := execOne(t, w, Call{Sender: sender, Contract: addrB, Function: "get", GasLimit: 100_000})
	if got.Result.(uint64) != 9 {
		t.Fatalf("callee counter = %v, want 9", got.Result)
	}
}

func TestNestedCalleeThrowLeavesCallerIntact(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	newCounter(t, w, addrB, sender)
	// Caller increments itself, then calls B.incThenThrow (which increments
	// B and throws). B's effects must vanish; A's must survive.
	out := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "inc", Args: []any{uint64(1)}, GasLimit: 100_000})
	if out.Kind != OutcomeCommitted {
		t.Fatalf("setup inc = %+v", out)
	}
	out = execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "callOther",
		Args: []any{addrB, "incThenThrow"}, GasLimit: 100_000})
	if out.Kind != OutcomeCommitted {
		t.Fatalf("caller must commit despite callee throw: %+v", out)
	}
	if msg, ok := out.Result.(string); !ok || !strings.Contains(msg, "callee threw") {
		t.Fatalf("caller result = %v, want callee-threw error text", out.Result)
	}
	b := execOne(t, w, Call{Sender: sender, Contract: addrB, Function: "get", GasLimit: 100_000})
	if b.Result.(uint64) != 0 {
		t.Fatalf("callee counter = %v, want 0 (aborted)", b.Result)
	}
}

func TestNestedCalleeThrowPropagatedByStrictCaller(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	newCounter(t, w, addrB, sender)
	out := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "callOtherStrict",
		Args: []any{addrB, "incThenThrow"}, GasLimit: 100_000})
	if out.Kind != OutcomeReverted {
		t.Fatalf("strict caller must revert: %+v", out)
	}
}

func TestNestedMsgSenderIsCaller(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	// B's owner is contract A, so ownerOnly succeeds only via A.
	b := &counterContract{addr: addrB, owner: addrA}
	m, err := storage.NewMap(w.Store(), "counter/b2")
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	b.count = m
	if err := w.Deploy(b); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	direct := execOne(t, w, Call{Sender: sender, Contract: addrB, Function: "ownerOnly", GasLimit: 100_000})
	if direct.Kind != OutcomeReverted {
		t.Fatalf("direct call should fail owner check: %+v", direct)
	}
	viaA := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "callOtherStrict",
		Args: []any{addrB, "ownerOnly"}, GasLimit: 100_000})
	if viaA.Kind != OutcomeCommitted {
		t.Fatalf("nested call should pass owner check (msg.sender = A): %+v", viaA)
	}
}

func TestCallDepthLimit(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	out := execOne(t, w, Call{Sender: sender, Contract: addrA, Function: "recurse", GasLimit: 10_000_000})
	if out.Kind != OutcomeReverted {
		t.Fatalf("unbounded recursion = %+v, want reverted", out)
	}
}

func TestDeployDuplicate(t *testing.T) {
	w := testWorld(t)
	newCounter(t, w, addrA, sender)
	dup := &counterContract{addr: addrA}
	if err := w.Deploy(dup); err == nil {
		t.Fatal("duplicate deploy succeeded")
	}
}

func TestEncodeForHashDistinguishesCalls(t *testing.T) {
	base := Call{Sender: sender, Contract: addrA, Function: "f", Args: []any{uint64(1)}, GasLimit: 10}
	variants := []Call{
		{Sender: addrB, Contract: addrA, Function: "f", Args: []any{uint64(1)}, GasLimit: 10},
		{Sender: sender, Contract: addrB, Function: "f", Args: []any{uint64(1)}, GasLimit: 10},
		{Sender: sender, Contract: addrA, Function: "g", Args: []any{uint64(1)}, GasLimit: 10},
		{Sender: sender, Contract: addrA, Function: "f", Args: []any{uint64(2)}, GasLimit: 10},
		{Sender: sender, Contract: addrA, Function: "f", Args: []any{uint64(1)}, GasLimit: 11},
		{Sender: sender, Contract: addrA, Function: "f", Args: []any{uint64(1)}, Value: 5, GasLimit: 10},
		{Sender: sender, Contract: addrA, Function: "f", Args: []any{"1"}, GasLimit: 10},
		{Sender: sender, Contract: addrA, Function: "f", Args: []any{true, uint64(1)}, GasLimit: 10},
	}
	enc := string(base.EncodeForHash())
	for i, v := range variants {
		if string(v.EncodeForHash()) == enc {
			t.Fatalf("variant %d encodes identically to base", i)
		}
	}
}

func TestEncodeArgAllKinds(t *testing.T) {
	args := []any{uint64(1), int(2), true, false, "s", addrA, types.HashString("h"), types.Amount(3), 3.5}
	seen := map[string]bool{}
	for _, a := range args {
		enc := string(encodeArg(a))
		if seen[enc] {
			t.Fatalf("encoding collision on %v", a)
		}
		seen[enc] = true
	}
}

func TestReceiptEncodeForHash(t *testing.T) {
	a := Receipt{Tx: 1, Reverted: false, GasUsed: 100}
	b := Receipt{Tx: 1, Reverted: true, GasUsed: 100}
	c := Receipt{Tx: 1, Reverted: false, GasUsed: 101}
	d := Receipt{Tx: 1, Reverted: false, GasUsed: 100, Reason: "ignored"}
	if string(a.EncodeForHash()) == string(b.EncodeForHash()) {
		t.Fatal("reverted flag not hashed")
	}
	if string(a.EncodeForHash()) == string(c.EncodeForHash()) {
		t.Fatal("gas not hashed")
	}
	if string(a.EncodeForHash()) != string(d.EncodeForHash()) {
		t.Fatal("reason must not affect the hash")
	}
}

func TestOutcomeKindString(t *testing.T) {
	for _, k := range []OutcomeKind{OutcomeCommitted, OutcomeReverted, OutcomeRetry, OutcomeKind(99)} {
		if k.String() == "" {
			t.Fatal("empty outcome string")
		}
	}
}
