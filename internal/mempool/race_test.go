package mempool

import (
	"sync"
	"testing"

	"contractstm/internal/contract"
	"contractstm/internal/txpool"
	"contractstm/internal/types"
)

// TestConcurrentSubmitSelectRequeue is the -race exercise for the
// sharded pool: trusted submitters and an admission flooder land
// transactions across every shard while a churn loop selects and
// requeues cross-shard batches. Afterwards a full drain must account
// for every queued transaction exactly once, with each sender's calls
// still in its own submission order — the arrival-order merge surviving
// arbitrary interleavings of RequeueBatch and Submit.
func TestConcurrentSubmitSelectRequeue(t *testing.T) {
	const (
		submitters   = 4
		perSubmitter = 400
		admitSenders = 3
		perAdmit     = 200
	)
	p := New(Config{Shards: 8})

	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				p.SubmitTrusted(testCall(uint64(g), uint64(i)))
			}
		}()
	}
	var admitted [admitSenders]int
	for g := 0; g < admitSenders; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perAdmit; i++ {
				if d := p.Admit(testCall(uint64(100+g), uint64(i)), 0); d.Verdict.Admitted() {
					admitted[g]++
				}
			}
		}()
	}
	// Churn: select cross-shard batches and put them straight back while
	// the floods are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			sel, err := p.SelectBatch(txpool.PolicyFIFO, 16)
			if err != nil {
				continue
			}
			p.RequeueBatch(sel)
		}
	}()
	wg.Wait()

	wantTotal := submitters * perSubmitter
	for g := 0; g < admitSenders; g++ {
		if admitted[g] != perAdmit {
			t.Fatalf("admit sender %d: %d of %d admitted (no limits configured)", g, admitted[g], perAdmit)
		}
		wantTotal += admitted[g]
	}
	if p.Len() != wantTotal {
		t.Fatalf("pool len = %d, want %d", p.Len(), wantTotal)
	}

	// Drain completely and check per-sender FIFO: requeue churn must not
	// reorder any sender's stream.
	lastNonce := map[types.Address]int{}
	drained := 0
	for {
		sel, err := p.SelectBatch(txpool.PolicyFIFO, 64)
		if err != nil {
			break
		}
		for _, c := range sel.Calls {
			drained++
			got := nonceOf(c)
			if last, seen := lastNonce[c.Sender]; seen && got <= last {
				t.Fatalf("sender %v: nonce %d after %d — per-sender order lost", c.Sender, got, last)
			}
			lastNonce[c.Sender] = got
		}
	}
	if drained != wantTotal {
		t.Fatalf("drained %d, want %d", drained, wantTotal)
	}
}

// nonceOf recovers testCall's nonce from the amount argument.
func nonceOf(c contract.Call) int {
	return int(c.Args[1].(uint64))
}
